// Tests for profiler/: measured stage statistics, histograms with heavy
// hitters, group cardinality, and combine selectivity.

#include <gtest/gtest.h>

#include "test_workflows.h"

namespace stubby {
namespace {

using ::stubby::testing::MakeChain;
using ::stubby::testing::ProfileInPlace;

TEST(ProfilerTest, StageStatsMeasureSelectivity) {
  // A filter passing ~40% of rows must profile with ~0.4 selectivity.
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "x"});
  std::vector<Row> rows;
  Rng rng(3);
  for (int i = 0; i < 4000; ++i) {
    rows.push_back(Row{rng.NextInt(0, 9), rng.NextDouble(0, 100)});
  }
  Layout layout;
  ASSERT_TRUE(
      f.AddBase("IN", schema, layout, 4, rows, testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("OUT", Schema({"k", "c"}), true).ok());
  WorkflowFactory::JobDef j;
  j.id = "J";
  j.inputs = {In("IN", {Stage::Map(FilterRangeMap("f", schema, "x", 0, 40))})};
  j.map_output_schema = schema;
  j.reduce_stages = {Stage::Reduce(
      AggReduce("count", schema, {"k"}, {{"x", AggOp::kCount, "c"}}), {"k"})};
  j.output = "OUT";
  ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  ProfileInPlace(&f);

  const JobVertex& job = *(*f.plan().GetJob("J"));
  const Stage& filter = job.branches[0].inputs[0].map_stages[0];
  ASSERT_TRUE(filter.stats.has_value());
  EXPECT_NEAR(filter.stats->record_selectivity, 0.4, 0.05);
  const Stage& reduce = job.branches[0].reduce_stages[0];
  ASSERT_TRUE(reduce.stats.has_value());
  // 10 groups out of ~1600 filtered rows.
  EXPECT_NEAR(reduce.stats->record_selectivity, 10.0 / 1600.0, 0.005);
  EXPECT_NEAR(reduce.stats->groups_per_record, 10.0 / 1600.0, 0.005);
}

TEST(ProfilerTest, ProfileCarriesHistogramsAndGroups) {
  auto f = MakeChain(4000, /*distinct_k=*/50, /*distinct_z=*/40);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  const JobVertex& jp = *(*f->plan().GetJob("Jp"));
  const auto& profile = jp.branches[0].annotations.profile;
  ASSERT_TRUE(profile.has_value());
  const KeyHistogram* hk = profile->FindHistogram("K");
  ASSERT_NE(hk, nullptr);
  EXPECT_EQ(hk->distinct, 50u);
  EXPECT_NEAR(hk->min, 0, 1);
  EXPECT_NEAR(hk->max, 49, 1);
  // Roughly uniform: no heavy hitter dominates.
  EXPECT_LT(hk->max_key_fraction, 0.1);
  // 4000 draws over 50*40 = 2000 possible (K,Z) groups hit about
  // 2000*(1-exp(-2)) ~ 1729 of them.
  EXPECT_NEAR(profile->k2_distinct_groups, 1729, 120);
  EXPECT_GT(profile->avg_input_record_bytes, 8);
}

TEST(ProfilerTest, HeavyHittersAreExtracted) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    // Value 7 carries ~50% of the mass.
    int64_t k = (i % 2 == 0) ? 7 : rng.NextInt(100, 1000);
    rows.push_back(Row{k, 1.0});
  }
  Layout layout;
  ASSERT_TRUE(f.AddBase("IN", schema, layout, 4, rows, testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("OUT", Schema({"k", "s"}), true).ok());
  WorkflowFactory::JobDef j;
  j.id = "J";
  j.inputs = {In("IN", {})};
  j.map_output_schema = schema;
  j.reduce_stages = {Stage::Reduce(
      AggReduce("sum", schema, {"k"}, {{"v", AggOp::kSum, "s"}}), {"k"})};
  j.output = "OUT";
  ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  ProfileInPlace(&f);

  const auto& profile =
      (*f.plan().GetJob("J"))->branches[0].annotations.profile;
  ASSERT_TRUE(profile.has_value());
  const KeyHistogram* h = profile->FindHistogram("k");
  ASSERT_NE(h, nullptr);
  EXPECT_NEAR(h->max_key_fraction, 0.5, 0.05);
  ASSERT_FALSE(h->heavy_hitters.empty());
  EXPECT_DOUBLE_EQ(h->heavy_hitters[0].first, 7.0);
  EXPECT_NEAR(h->heavy_hitters[0].second, 0.5, 0.05);
  EXPECT_NEAR(profile->k2_max_group_fraction, 0.5, 0.05);
  // The histogram+hitters must still integrate to ~1.
  EXPECT_NEAR(h->FractionInRange(-1e9, 1e9), 1.0, 0.02);
}

TEST(ProfilerTest, CombineSelectivityMeasured) {
  // Small logical size => few map tasks => many rows per task over only 10
  // groups, so per-task combining collapses heavily.
  auto f = MakeChain(4000, /*distinct_k=*/5, /*distinct_z=*/2,
                     /*logical_bytes=*/2 * testing::kGB);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  const auto& profile =
      (*f->plan().GetJob("Jp"))->branches[0].annotations.profile;
  ASSERT_TRUE(profile.has_value());
  // Only 10 groups: combining collapses heavily at any task granularity.
  EXPECT_LT(profile->combine_selectivity, 0.2);
}

TEST(ProfilerTest, NoiseIsDeterministicAndBounded) {
  auto f1 = MakeChain(2000);
  auto f2 = MakeChain(2000);
  ASSERT_TRUE(f1.ok() && f2.ok());
  ProfilerOptions opts;
  opts.noise = 0.1;
  Profiler profiler(ClusterSpec{}, opts);
  Dfs d1 = f1->dfs(), d2 = f2->dfs();
  ASSERT_TRUE(profiler.ProfilePlan(&f1->plan(), &d1).ok());
  ASSERT_TRUE(profiler.ProfilePlan(&f2->plan(), &d2).ok());
  const Stage& s1 = (*f1->plan().GetJob("Jp"))->branches[0].reduce_stages[0];
  const Stage& s2 = (*f2->plan().GetJob("Jp"))->branches[0].reduce_stages[0];
  EXPECT_DOUBLE_EQ(s1.stats->record_selectivity,
                   s2.stats->record_selectivity);  // deterministic
  // Noise within 10% of the exact measurement.
  auto exact = MakeChain(2000);
  ProfileInPlace(&*exact);
  const Stage& se =
      (*exact->plan().GetJob("Jp"))->branches[0].reduce_stages[0];
  EXPECT_NEAR(s1.stats->record_selectivity, se.stats->record_selectivity,
              0.11 * se.stats->record_selectivity);
}

}  // namespace
}  // namespace stubby

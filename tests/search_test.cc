// Tests for optimizer/unit and optimizer/search: dynamic optimization-unit
// generation (the Figure 9 traversal), in-unit enumeration, cost-based
// subplan choice, and the information-spectrum fallback.

#include <gtest/gtest.h>

#include "cost/whatif.h"
#include "optimizer/search.h"
#include "optimizer/vertical.h"
#include "test_workflows.h"

namespace stubby {
namespace {

using ::stubby::testing::MakeChain;
using ::stubby::testing::MakeSiblings;
using ::stubby::testing::ProfileInPlace;

TEST(UnitTest, ChainTraversal) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  std::set<std::string> processed;
  auto u1 = NextUnit(f->plan(), processed);
  ASSERT_TRUE(u1.has_value());
  EXPECT_EQ(u1->producers, std::vector<std::string>{"Jp"});
  EXPECT_EQ(u1->consumers, std::vector<std::string>{"Jc"});
  processed.insert("Jp");
  auto u2 = NextUnit(f->plan(), processed);
  ASSERT_TRUE(u2.has_value());
  EXPECT_EQ(u2->producers, std::vector<std::string>{"Jc"});
  EXPECT_TRUE(u2->consumers.empty());
  processed.insert("Jc");
  EXPECT_FALSE(NextUnit(f->plan(), processed).has_value());
}

TEST(UnitTest, SiblingsAreOneUnitOfConcurrentProducers) {
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  auto u = NextUnit(f->plan(), {});
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->producers, (std::vector<std::string>{"Ja", "Jb"}));
  EXPECT_EQ(u->AllJobs().size(), 2u);
}

TEST(SearchTest, EnumerationCoversPackingCombinations) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  WhatIfEngine whatif(f->plan().cluster());
  std::vector<std::shared_ptr<Transformation>> group = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
  };
  UnitOptimizer optimizer(group, &whatif, UnitSearchOptions{});
  auto unit = NextUnit(f->plan(), {});
  ASSERT_TRUE(unit.has_value());
  auto subplans = optimizer.EnumerateSubplans(f->plan(), *unit);
  ASSERT_TRUE(subplans.ok());
  // Original, intra-packed, intra+inter-packed.
  EXPECT_EQ(subplans->size(), 3u);
  for (const auto& sp : *subplans) {
    EXPECT_TRUE(sp.plan.Validate().ok());
    EXPECT_GT(sp.cost, 0.0);
  }
}

TEST(SearchTest, PicksCheapestSubplanAndReportsRenames) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  WhatIfEngine whatif(f->plan().cluster());
  std::vector<std::shared_ptr<Transformation>> group = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
  };
  UnitOptimizer optimizer(group, &whatif, UnitSearchOptions{});
  auto unit = NextUnit(f->plan(), {});
  auto result = optimizer.Optimize(f->plan(), *unit);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->plan.Validate().ok());
  // Whatever it picked must be at least as good as the original's cost.
  double original_cost = whatif.Cost(f->plan()).cost;
  EXPECT_LE(result->cost, original_cost + 1e-9);
  // The chain should pack into one job here (shuffle elimination wins).
  if (result->plan.num_jobs() == 1) {
    EXPECT_EQ(result->renames.at("Jp"), "Jp+Jc");
    EXPECT_EQ(result->renames.at("Jc"), "Jp+Jc");
  }
}

TEST(SearchTest, FallbackModeMinimizesJobCount) {
  // No profiles: costing falls back to job count; the structural search
  // still packs (fewer jobs = lower fallback cost) but configurations are
  // left untouched.
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  WhatIfEngine whatif(f->plan().cluster());
  ASSERT_TRUE(whatif.Cost(f->plan()).fallback);
  std::vector<std::shared_ptr<Transformation>> group = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
  };
  UnitOptimizer optimizer(group, &whatif, UnitSearchOptions{});
  auto unit = NextUnit(f->plan(), {});
  auto result = optimizer.Optimize(f->plan(), *unit);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->fallback);
  EXPECT_EQ(result->plan.num_jobs(), 1u);
  // Configurations untouched in fallback mode.
  EXPECT_EQ((*result->plan.GetJob("Jp+Jc"))->config, JobConfig{});
}

TEST(SearchTest, ConfigurationSearchImprovesCost) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  WhatIfEngine whatif(f->plan().cluster());
  UnitSearchOptions with_config;
  with_config.enable_configuration = true;
  UnitSearchOptions without_config;
  without_config.enable_configuration = false;
  UnitOptimizer a({}, &whatif, with_config);
  UnitOptimizer b({}, &whatif, without_config);
  auto unit = NextUnit(f->plan(), {});
  auto ra = a.Optimize(f->plan(), *unit);
  auto rb = b.Optimize(f->plan(), *unit);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_LT(ra->cost, rb->cost);  // default configs are far from tuned
}

TEST(SearchTest, DeterministicBySeed) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  WhatIfEngine whatif(f->plan().cluster());
  std::vector<std::shared_ptr<Transformation>> group = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
  };
  UnitSearchOptions opts;
  opts.seed = 99;
  UnitOptimizer optimizer(group, &whatif, opts);
  auto unit = NextUnit(f->plan(), {});
  auto r1 = optimizer.Optimize(f->plan(), *unit);
  auto r2 = optimizer.Optimize(f->plan(), *unit);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(r1->cost, r2->cost);
  EXPECT_EQ(PlanSignature(r1->plan), PlanSignature(r2->plan));
}

}  // namespace
}  // namespace stubby

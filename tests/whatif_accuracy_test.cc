// Estimator-accuracy properties, parameterized over all eight workflows:
// the what-if engine's predictions for a profiled plan must track the
// simulator's observed execution — per-job task counts exactly, input
// volumes tightly, and the overall makespan within a modest factor. This
// is the regression net behind Figure 14.

#include <gtest/gtest.h>

#include <algorithm>

#include "cost/whatif.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "workloads/registry.h"

namespace stubby {
namespace {

class WhatIfAccuracy : public ::testing::TestWithParam<std::string> {
 protected:
  struct Prepared {
    Workload workload;
    WorkloadOptions options;
  };

  Result<Prepared> MakeProfiled() {
    WorkloadOptions options;
    options.sample_rows = 6000;
    STUBBY_ASSIGN_OR_RETURN(Workload w, MakeWorkload(GetParam(), options));
    Profiler profiler(options.cluster);
    Dfs dfs = w.dfs;
    STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&w.plan, &dfs));
    return Prepared{std::move(w), options};
  }

  static void Compare(const Plan& plan, const WorkflowDataflow& actual,
                      const WorkflowDataflow& predicted,
                      double makespan_factor, double task_tolerance = 0.05) {
    ASSERT_EQ(actual.jobs.size(), predicted.jobs.size());
    for (const auto& a : actual.jobs) {
      const JobDataflow* p = predicted.FindJob(a.job_id);
      ASSERT_NE(p, nullptr) << a.job_id;
      // Map-task counts differ by split rounding and (on transformed
      // plans) by intermediate-volume estimation error; reduce counts are
      // exact.
      EXPECT_NEAR(p->num_map_tasks, a.num_map_tasks,
                  std::max(8.0, task_tolerance * a.num_map_tasks))
          << a.job_id;
      EXPECT_EQ(p->num_reduce_tasks, a.num_reduce_tasks) << a.job_id;
      // Input volumes are derived from annotations + upstream predictions;
      // they must track the observation closely.
      if (a.map_input_bytes > 0) {
        EXPECT_NEAR(static_cast<double>(p->map_input_bytes),
                    static_cast<double>(a.map_input_bytes),
                    0.35 * a.map_input_bytes)
            << a.job_id;
      }
    }
    EXPECT_GT(predicted.makespan_sec, actual.makespan_sec / makespan_factor);
    EXPECT_LT(predicted.makespan_sec, actual.makespan_sec * makespan_factor);
    (void)plan;
  }
};

TEST_P(WhatIfAccuracy, TracksTheProfiledPlan) {
  auto prep = MakeProfiled();
  ASSERT_TRUE(prep.ok()) << prep.status();
  WhatIfEngine whatif(prep->options.cluster);
  auto predicted = whatif.PredictDataflow(prep->workload.plan);
  ASSERT_TRUE(predicted.ok()) << predicted.status();
  WorkflowRunner runner(prep->options.cluster);
  Dfs dfs = prep->workload.dfs;
  auto actual = runner.Run(prep->workload.plan, &dfs);
  ASSERT_TRUE(actual.ok());
  // The profiled plan itself should be predicted tightly.
  Compare(prep->workload.plan, *actual, *predicted, 1.7);
}

TEST_P(WhatIfAccuracy, TracksTheOptimizedPlan) {
  auto prep = MakeProfiled();
  ASSERT_TRUE(prep.ok()) << prep.status();
  auto report = StubbyOptimizer().Optimize(prep->workload.plan);
  ASSERT_TRUE(report.ok());
  WhatIfEngine whatif(prep->options.cluster);
  auto predicted = whatif.PredictDataflow(report->plan);
  ASSERT_TRUE(predicted.ok()) << predicted.status();
  WorkflowRunner runner(prep->options.cluster);
  Dfs dfs = prep->workload.dfs;
  auto actual = runner.Run(report->plan, &dfs);
  ASSERT_TRUE(actual.ok());
  // Transformed + re-configured plans are predicted with more error (the
  // profiles were measured under the original plan), but must stay within
  // a small factor — enough to rank subplans (Figure 14).
  Compare(report->plan, *actual, *predicted, 3.0, /*task_tolerance=*/0.15);
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, WhatIfAccuracy,
                         ::testing::ValuesIn(AllWorkloadAbbrs()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace stubby

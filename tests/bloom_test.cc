// Bloom predicate transfer (mr/bloom_filter.h + optimizer/bloom.h): the
// filter's determinism under partitioned builds, its zero-false-negative
// guarantee, batch-vs-row probe parity (empty batches and broadcast
// columns included), the STUBBY_BLOOM env knob, and the end-to-end A/B on
// a selective join — bloom-on must cut shuffle bytes by at least 30% and
// the simulated makespan measurably while terminal outputs stay
// bit-identical to bloom-off, at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "exec/workflow_runner.h"
#include "mr/bloom_filter.h"
#include "mr/tuple.h"
#include "optimizer/bloom.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "reuse/result_store.h"
#include "workloads/builder.h"
#include "workloads/udfs.h"

namespace stubby {
namespace {

constexpr uint64_t kGB = 1ull << 30;

// --- filter unit tests ------------------------------------------------------

TEST(BloomFilterTest, PartitionedBuildMatchesSerialBuild) {
  // The executor builds one partial filter per build partition and
  // OR-merges them; the result must not depend on how the inserts were
  // split across partials. Compare a serial build against several
  // partitionings through the full observable surface: every probe answer
  // and the set-bit fraction.
  Rng rng(11);
  std::vector<uint64_t> hashes;
  for (int i = 0; i < 4000; ++i) hashes.push_back(rng.NextUint64(~0ull));

  BloomFilter serial(18, 6, kBloomFilterSeed);
  for (uint64_t h : hashes) serial.Insert(h);

  for (int pieces : {2, 3, 8}) {
    SCOPED_TRACE("pieces=" + std::to_string(pieces));
    std::vector<BloomFilter> partials;
    for (int p = 0; p < pieces; ++p) {
      partials.emplace_back(18, 6, kBloomFilterSeed);
    }
    for (size_t i = 0; i < hashes.size(); ++i) {
      partials[i % static_cast<size_t>(pieces)].Insert(hashes[i]);
    }
    BloomFilter merged(18, 6, kBloomFilterSeed);
    for (const BloomFilter& p : partials) merged.UnionWith(p);

    EXPECT_EQ(serial.FillFraction(), merged.FillFraction());
    Rng probe_rng(12);
    for (int i = 0; i < 20000; ++i) {
      const uint64_t h = probe_rng.NextUint64(~0ull);
      ASSERT_EQ(serial.MayContain(h), merged.MayContain(h)) << h;
    }
    for (uint64_t h : hashes) ASSERT_TRUE(merged.MayContain(h));
  }
}

TEST(BloomFilterTest, NoFalseNegativesOnRandomizedKeys) {
  for (uint64_t seed : {1ull, 7ull, 99ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    BloomFilter filter(BloomFilter::SizeForKeys(5000), 6, kBloomFilterSeed);
    std::vector<uint64_t> inserted;
    for (int i = 0; i < 5000; ++i) {
      inserted.push_back(rng.NextUint64(~0ull));
      filter.Insert(inserted.back());
    }
    for (uint64_t h : inserted) {
      ASSERT_TRUE(filter.MayContain(h)) << h;  // the ledger guarantee
    }
    // Sized at ~10 bits/key the false-positive rate must stay small; this
    // also catches a degenerate all-bits-set filter.
    Rng miss_rng(seed + 1000);
    int fp = 0;
    const int probes = 20000;
    for (int i = 0; i < probes; ++i) {
      if (filter.MayContain(miss_rng.NextUint64(~0ull))) ++fp;
    }
    EXPECT_LT(fp, probes / 20) << "false-positive rate above 5%";
  }
}

TEST(BloomFilterTest, SizeForKeysScalesAndCaps) {
  EXPECT_EQ(BloomFilter::SizeForKeys(0), 10);
  EXPECT_LE(BloomFilter::SizeForKeys(100), BloomFilter::SizeForKeys(100000));
  EXPECT_EQ(BloomFilter::SizeForKeys(1ull << 40), 24);  // capped
  // >= 10 bits per key when under the cap.
  const int b = BloomFilter::SizeForKeys(1000);
  EXPECT_GE((1ull << b), 10000u);
}

// --- probe function: batch vs row parity ------------------------------------

std::vector<Row> MakeProbeRows(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row{Value(rng.NextInt(0, 199)), Value(rng.NextInt(0, 9)),
                       Value(rng.NextInt(0, 99))});
  }
  return rows;
}

TEST(BloomProbeMapFnTest, BatchProbeMatchesRowProbe) {
  const Schema schema({"K", "G", "V"});
  const std::vector<size_t> key_idx = {0};
  auto filter =
      std::make_shared<BloomFilter>(14, 6, kBloomFilterSeed);
  std::vector<Row> build = MakeProbeRows(120, 5);
  for (const Row& r : build) filter->Insert(HashOnFields(r, key_idx));

  BloomProbeMapFn unbound("probe", schema, {"K"});
  EXPECT_FALSE(unbound.bound());
  auto bound = unbound.Bind(filter);
  ASSERT_TRUE(bound->bound());

  const std::vector<Row> rows = MakeProbeRows(1000, 6);
  VectorEmitter row_path;
  for (const Row& r : rows) bound->Map(r, &row_path);
  // The probe actually dropped something and kept something.
  EXPECT_GT(row_path.rows().size(), 0u);
  EXPECT_LT(row_path.rows().size(), rows.size());

  RowBatch batch = RowBatch::FromRows(rows, schema.fields().size());
  bound->MapBatch(&batch);
  EXPECT_TRUE(RowsBitIdentical(row_path.rows(), batch.ToRows()));

  // Unbound = pass-through on both paths.
  VectorEmitter pass;
  for (const Row& r : rows) unbound.Map(r, &pass);
  RowBatch pass_batch = RowBatch::FromRows(rows, schema.fields().size());
  unbound.MapBatch(&pass_batch);
  EXPECT_TRUE(RowsBitIdentical(pass.rows(), rows));
  EXPECT_TRUE(RowsBitIdentical(pass_batch.ToRows(), rows));
}

TEST(BloomProbeMapFnTest, EmptyBatchAndBroadcastColumns) {
  const Schema schema({"K", "G", "V"});
  auto filter =
      std::make_shared<BloomFilter>(12, 6, kBloomFilterSeed);
  for (const Row& r : MakeProbeRows(60, 9)) {
    filter->Insert(HashOnFields(r, {0}));
  }
  // Keys span a dense and a broadcast column: HashOnFields must read the
  // broadcast value through the stride-0 path identically to the row path.
  BloomProbeMapFn fn("probe", schema, {"K", "G"});
  auto bound = fn.Bind(filter);

  RowBatch empty = RowBatch::FromRows({}, schema.fields().size());
  bound->MapBatch(&empty);
  EXPECT_EQ(empty.num_rows(), 0u);

  const int n = 500;
  Rng rng(10);
  auto k_col = std::make_shared<RowBatch::Column>();
  auto v_col = std::make_shared<RowBatch::Column>();
  for (int i = 0; i < n; ++i) {
    k_col->push_back(Value(rng.NextInt(0, 199)));
    v_col->push_back(Value(rng.NextInt(0, 99)));
  }
  auto g_col = std::make_shared<RowBatch::Column>(
      RowBatch::Column{Value(static_cast<int64_t>(3))});
  RowBatch batch = RowBatch::FromColumns({k_col, g_col, v_col}, {1, 0, 1},
                                         static_cast<size_t>(n));
  const std::vector<Row> rows = batch.ToRows();
  bound->MapBatch(&batch);

  VectorEmitter row_path;
  auto row_bound = fn.Bind(filter);
  for (const Row& r : rows) row_bound->Map(r, &row_path);
  EXPECT_TRUE(RowsBitIdentical(row_path.rows(), batch.ToRows()));
}

TEST(BloomTransferFromEnvTest, ParsesStubbyBloom) {
  unsetenv("STUBBY_BLOOM");
  EXPECT_FALSE(BloomTransferFromEnv());
  EXPECT_TRUE(BloomTransferFromEnv(/*fallback=*/true));
  setenv("STUBBY_BLOOM", "0", 1);
  EXPECT_FALSE(BloomTransferFromEnv(/*fallback=*/true));
  setenv("STUBBY_BLOOM", "1", 1);
  EXPECT_TRUE(BloomTransferFromEnv());
  unsetenv("STUBBY_BLOOM");
}

// --- end-to-end A/B ---------------------------------------------------------

/// A selective inner join: R is filtered to a 20-wide key window over a
/// 200-key space (the build side), S is four times R's logical size and
/// unfiltered (the probe side) — roughly 90% of S's rows have no join
/// partner and exist only to be shuffled and discarded, unless the
/// bloom-transfer transformation drops them map-side.
Result<WorkflowFactory> MakeSelectiveJoin() {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(77);
  Schema base({"K", "G", "V"});
  auto rows_of = [&](int n) {
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) {
      rows.push_back(Row{Value(rng.NextInt(0, 199)), Value(rng.NextInt(0, 9)),
                         Value(rng.NextInt(0, 99))});
    }
    return rows;
  };
  STUBBY_RETURN_NOT_OK(
      f.AddBase("R", base, Layout{}, 4, rows_of(400), kGB));
  STUBBY_RETURN_NOT_OK(
      f.AddBase("S", base, Layout{}, 4, rows_of(3000), 4 * kGB));

  Schema tagged({"K", "G", "V", "T"});
  std::vector<AggSpec> aggs = {{"V", AggOp::kSum, "BS"}};
  STUBBY_RETURN_NOT_OK(
      f.AddDataset("OUT", AggOutputSchema({"K"}, aggs), true));

  WorkflowFactory::JobDef j;
  j.id = "JB";
  j.inputs = {
      In("R", {Stage::Map(FilterRangeMap("filter_r", base, "K", 40, 60)),
               Stage::Map(AppendConstMap("tag_r", base, "T",
                                         Value(static_cast<int64_t>(0))))}),
      In("S", {Stage::Map(AppendConstMap("tag_s", base, "T",
                                         Value(static_cast<int64_t>(1))))})};
  j.map_output_schema = tagged;
  j.reduce_stages = {Stage::Reduce(
      InnerJoinReduce("join_jb", tagged, {"K"}, "T", {0, 1}, aggs), {"K"})};
  JoinAnnotation ja;
  ja.filterable_inputs = {0, 1};
  j.join_ann = ja;
  FilterAnnotation fa;
  fa.field = "K";
  fa.lo = 40;
  fa.hi = 60;
  j.filter_ann = fa;
  j.output = "OUT";
  STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  return f;
}

std::vector<Row> SortedOut(const Dfs& dfs) {
  auto ds = dfs.Get("OUT");
  EXPECT_TRUE(ds.ok()) << ds.status();
  std::vector<Row> rows = ds.ok() ? (*ds)->AllRows() : std::vector<Row>{};
  std::sort(rows.begin(), rows.end());
  return rows;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(BloomTransferEndToEndTest, CutsShuffleAndKeepsOutputsBitIdentical) {
  auto f = MakeSelectiveJoin();
  ASSERT_TRUE(f.ok()) << f.status();
  // Profiles give the transform its pass-fraction estimate (the build-side
  // key histogram against the filter annotation's window).
  Profiler profiler(ClusterSpec{});
  Dfs profile_dfs = f->dfs();
  ASSERT_TRUE(profiler.ProfilePlan(&f->plan(), &profile_dfs).ok());

  StubbyOptions off_opts;
  StubbyOptions on_opts;
  on_opts.bloom_transfer = true;
  auto off = StubbyOptimizer(off_opts).Optimize(f->plan());
  ASSERT_TRUE(off.ok()) << off.status();
  auto on = StubbyOptimizer(on_opts).Optimize(f->plan());
  ASSERT_TRUE(on.ok()) << on.status();

  // The transform was enumerated, priced, and won on this shape; the
  // conditions ledger records the guarantee it rode in on.
  bool applied = false;
  for (const std::string& t : on->applied) {
    if (t.find("bloom transfer") != std::string::npos) applied = true;
  }
  EXPECT_TRUE(applied);
  EXPECT_LE(on->estimated_cost, off->estimated_cost);
  bool bloom_branch = false;
  bool ledger = false;
  for (const auto& [jid, job] : on->plan.jobs()) {
    if (job.conditions.bloom_transfer) ledger = true;
    for (const Branch& b : job.branches) {
      if (b.bloom.has_value()) bloom_branch = true;
    }
  }
  EXPECT_TRUE(bloom_branch);
  EXPECT_TRUE(ledger);

  // Execute both plans: bit-identical terminal outputs (integer data, so
  // no tolerance), >= 30% fewer shuffle bytes, and a measurably smaller
  // simulated makespan with the filter on.
  auto run = [&](const Plan& plan) {
    Dfs dfs = f->dfs();
    WorkflowRunner runner(plan.cluster());
    auto flow = runner.Run(plan, &dfs);
    EXPECT_TRUE(flow.ok()) << flow.status();
    uint64_t shuffle = 0;
    for (const JobDataflow& j : flow->jobs) shuffle += j.map_output_bytes;
    return std::make_tuple(SortedOut(dfs), shuffle, flow->makespan_sec);
  };
  auto [off_rows, off_shuffle, off_makespan] = run(off->plan);
  auto [on_rows, on_shuffle, on_makespan] = run(on->plan);

  EXPECT_TRUE(RowsBitIdentical(on_rows, off_rows));
  EXPECT_GT(on_rows.size(), 0u);  // the join produces something to protect
  ASSERT_GT(off_shuffle, 0u);
  EXPECT_LE(on_shuffle * 10, off_shuffle * 7)
      << "shuffle cut below 30%: " << on_shuffle << " vs " << off_shuffle;
  EXPECT_LT(on_makespan, off_makespan);
}

TEST(BloomTransferEndToEndTest, ThreadCountInvariance) {
  auto f = MakeSelectiveJoin();
  ASSERT_TRUE(f.ok()) << f.status();
  Profiler profiler(ClusterSpec{});
  Dfs profile_dfs = f->dfs();
  ASSERT_TRUE(profiler.ProfilePlan(&f->plan(), &profile_dfs).ok());

  StubbyOptions on_opts;
  on_opts.bloom_transfer = true;
  auto on = StubbyOptimizer(on_opts).Optimize(f->plan());
  ASSERT_TRUE(on.ok()) << on.status();

  // The partitioned filter build must leave outputs, makespan bits, and
  // the per-job accounting (the bloom build counters included) identical
  // at every thread count.
  struct Snapshot {
    std::vector<Row> out;
    double makespan = 0.0;
    std::string dataflow;
  };
  std::map<int, Snapshot> by_threads;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    Dfs dfs = f->dfs();
    WorkflowRunner runner(on->plan.cluster(), &pool);
    auto flow = runner.Run(on->plan, &dfs);
    ASSERT_TRUE(flow.ok()) << flow.status();
    Snapshot s;
    auto ds = dfs.Get("OUT");
    ASSERT_TRUE(ds.ok()) << ds.status();
    s.out = (*ds)->AllRows();  // raw order, no canonical sort
    s.makespan = flow->makespan_sec;
    for (const JobDataflow& j : flow->jobs) s.dataflow += j.ToString() + "\n";
    by_threads[threads] = std::move(s);
  }
  const Snapshot& base = by_threads.at(1);
  EXPECT_NE(base.dataflow.find("bloom="), std::string::npos)
      << "build-pass accounting missing: " << base.dataflow;
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Snapshot& got = by_threads.at(threads);
    EXPECT_TRUE(RowsBitIdentical(got.out, base.out));
    EXPECT_TRUE(SameBits(got.makespan, base.makespan))
        << got.makespan << " vs " << base.makespan;
    EXPECT_EQ(got.dataflow, base.dataflow);
  }
}

}  // namespace
}  // namespace stubby

// End-to-end tests of the Stubby optimizer, parameterized over all eight
// evaluation workflows: the optimized plan must validate, produce the same
// results as the original, and not cost more. Plus ablation switches and
// the information spectrum.

#include <gtest/gtest.h>

#include "baselines/pig_baseline.h"
#include "common/threading.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "reuse/result_store.h"
#include "reuse/session.h"
#include "test_workflows.h"
#include "workloads/registry.h"

namespace stubby {
namespace {

class StubbyOnWorkload : public ::testing::TestWithParam<std::string> {
 protected:
  // Small samples keep the full 8-workflow sweep fast.
  static constexpr int kRows = 6000;

  Result<Workload> MakeProfiled() {
    WorkloadOptions options;
    options.sample_rows = kRows;
    STUBBY_ASSIGN_OR_RETURN(Workload w, MakeWorkload(GetParam(), options));
    Profiler profiler(options.cluster);
    Dfs dfs = w.dfs;
    STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&w.plan, &dfs));
    return w;
  }

  static std::vector<Row> OutputRows(const Plan& plan, const Dfs& dfs,
                                     const std::string& id) {
    auto ds = dfs.Get(id);
    return ds.ok() ? (*ds)->AllRows() : std::vector<Row>{};
  }
};

TEST_P(StubbyOnWorkload, OptimizedPlanIsEquivalentAndNoWorse) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();

  StubbyOptimizer optimizer;
  auto report = optimizer.Optimize(w->plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->plan.Validate().ok());
  EXPECT_FALSE(report->fallback);

  WorkflowRunner runner(w->plan.cluster());
  Dfs original_dfs = w->dfs;
  auto original = runner.Run(w->plan, &original_dfs);
  ASSERT_TRUE(original.ok()) << original.status();
  Dfs optimized_dfs = w->dfs;
  auto optimized = runner.Run(report->plan, &optimized_dfs);
  ASSERT_TRUE(optimized.ok()) << optimized.status();

  // Equivalence on every terminal output.
  for (const auto& [id, ds] : w->plan.datasets()) {
    if (!ds.is_workflow_output) continue;
    EXPECT_TRUE(RowsApproxEqual(OutputRows(w->plan, original_dfs, id),
                                OutputRows(report->plan, optimized_dfs, id),
                                1e-6))
        << GetParam() << " output " << id;
  }
  // Simulated performance must not regress (it should usually improve).
  EXPECT_LE(optimized->makespan_sec, original->makespan_sec * 1.05)
      << GetParam();
}

TEST_P(StubbyOnWorkload, BeatsOrMatchesTheBaseline) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();
  auto baseline = PigBaseline(w->plan);
  ASSERT_TRUE(baseline.ok());
  StubbyOptimizer optimizer;
  auto report = optimizer.Optimize(w->plan);
  ASSERT_TRUE(report.ok());

  WorkflowRunner runner(w->plan.cluster());
  Dfs bdfs = w->dfs, sdfs = w->dfs;
  auto tb = runner.Run(*baseline, &bdfs);
  auto ts = runner.Run(report->plan, &sdfs);
  ASSERT_TRUE(tb.ok() && ts.ok());
  EXPECT_LE(ts->makespan_sec, tb->makespan_sec * 1.02) << GetParam();
}

TEST_P(StubbyOnWorkload, CostCacheIsTransparent) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();
  StubbyOptions uncached_options;
  uncached_options.enable_cost_cache = false;
  auto cached = StubbyOptimizer().Optimize(w->plan);
  auto uncached = StubbyOptimizer(uncached_options).Optimize(w->plan);
  ASSERT_TRUE(cached.ok() && uncached.ok());
  // Memoization must be invisible: same plan, same cost bits, same
  // transformation trail, same search trajectory.
  EXPECT_EQ(PlanSignature(cached->plan), PlanSignature(uncached->plan));
  EXPECT_EQ(cached->estimated_cost, uncached->estimated_cost);
  EXPECT_EQ(cached->applied, uncached->applied);
  EXPECT_EQ(cached->costing.rrs_evaluations,
            uncached->costing.rrs_evaluations);
  // ... while actually engaging: jobs replay from the memo and full-plan
  // prediction passes collapse to (nearly) one.
  EXPECT_GT(cached->costing.job_cache_hits, 0u);
  EXPECT_LT(cached->costing.full_predictions,
            uncached->costing.full_predictions);
}

TEST_P(StubbyOnWorkload, OptimizationIsDeterministic) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();
  StubbyOptimizer optimizer;
  auto r1 = optimizer.Optimize(w->plan);
  auto r2 = optimizer.Optimize(w->plan);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(PlanSignature(r1->plan), PlanSignature(r2->plan));
  EXPECT_DOUBLE_EQ(r1->estimated_cost, r2->estimated_cost);
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, StubbyOnWorkload,
                         ::testing::ValuesIn(AllWorkloadAbbrs()),
                         [](const auto& info) { return info.param; });

TEST(StubbyTest, SubspaceSwitchesRestrictTransformations) {
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);

  StubbyOptions no_packing;
  no_packing.enable_intra_vertical = false;
  no_packing.enable_inter_vertical = false;
  no_packing.enable_horizontal = false;
  no_packing.enable_partition_function = false;
  auto report = StubbyOptimizer(no_packing).Optimize(f->plan());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->plan.num_jobs(), 2u);  // structure untouched
  EXPECT_TRUE(report->applied.empty());
}

TEST(StubbyTest, MissingSchemaAnnotationsDisableVerticalPacking) {
  // Information spectrum: without schema annotations Stubby must not
  // consider intra-job vertical packing (Section 8's example), yet it can
  // still tune configurations.
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);
  Plan plan = f->plan();
  for (const auto& [jid, job] : f->plan().jobs()) {
    (*plan.GetMutableJob(jid))->branches[0].annotations.schema.reset();
  }
  auto report = StubbyOptimizer().Optimize(plan);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->plan.num_jobs(), 2u);
  for (const auto& line : report->applied) {
    EXPECT_EQ(line.find("intra-pack"), std::string::npos) << line;
  }
}

TEST(StubbyTest, FlippedPhaseOrderStillValidAndEquivalent) {
  auto f = ::stubby::testing::MakeSiblings();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);
  StubbyOptions flipped;
  flipped.flip_phase_order = true;
  auto report = StubbyOptimizer(flipped).Optimize(f->plan());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->plan.Validate().ok());
  ::stubby::testing::ExpectEquivalent(*f, f->plan(), report->plan);
}

// The task-parallel core's contract: thread count moves wall time only.
// Execute and optimize the BR workflow (the largest: 7 jobs, the Figure 1
// running example) at 1, 2, and all hardware threads, and require every
// observable — output rows, makespan, chosen plan, cost bits, applied
// trail, and the full costing-counter set — to be identical.
class ThreadCountInvariance : public ::testing::Test {
 protected:
  static std::vector<int> ThreadCounts() {
    // Oversubscription past the hardware width is deliberate: results may
    // not depend on the physical core count either.
    std::vector<int> counts = {1, 2, 4, 8};
    if (ThreadPool::HardwareThreads() > 8) {
      counts.push_back(ThreadPool::HardwareThreads());
    }
    return counts;
  }

  static Result<Workload> MakeProfiledBR() {
    WorkloadOptions options;
    options.sample_rows = 6000;
    STUBBY_ASSIGN_OR_RETURN(Workload w, MakeWorkload("BR", options));
    Profiler profiler(options.cluster);
    Dfs dfs = w.dfs;
    STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&w.plan, &dfs));
    return w;
  }

  /// Exact textual digest of every workflow output dataset, in dataset-id
  /// order then row order — any bit-level divergence shows up here.
  static std::string OutputDigest(const Plan& plan, const Dfs& dfs) {
    std::string digest;
    for (const auto& [id, ds] : plan.datasets()) {
      if (!ds.is_workflow_output) continue;
      digest += id + ":\n";
      auto data = dfs.Get(id);
      if (!data.ok()) continue;
      for (const Row& row : (*data)->AllRows()) {
        digest += row.ToString();
        digest += '\n';
      }
    }
    return digest;
  }

  static void ExpectSameCounters(const CostInstrumentation& a,
                                 const CostInstrumentation& b) {
    EXPECT_EQ(a.whatif_invocations, b.whatif_invocations);
    EXPECT_EQ(a.plan_cache_hits, b.plan_cache_hits);
    EXPECT_EQ(a.plan_cache_misses, b.plan_cache_misses);
    EXPECT_EQ(a.full_predictions, b.full_predictions);
    EXPECT_EQ(a.incremental_predictions, b.incremental_predictions);
    EXPECT_EQ(a.job_predictions, b.job_predictions);
    EXPECT_EQ(a.job_cache_hits, b.job_cache_hits);
    EXPECT_EQ(a.rrs_evaluations, b.rrs_evaluations);
    EXPECT_EQ(a.reuse_priced_candidates, b.reuse_priced_candidates);
  }
};

TEST_F(ThreadCountInvariance, ExecutionIsBitIdentical) {
  auto w = MakeProfiledBR();
  ASSERT_TRUE(w.ok()) << w.status();

  std::string ref_digest;
  double ref_makespan = 0.0;
  bool first = true;
  for (int threads : ThreadCounts()) {
    ThreadPool pool(threads);
    WorkflowRunner runner(w->plan.cluster(), &pool);
    Dfs dfs = w->dfs;
    auto flow = runner.Run(w->plan, &dfs);
    ASSERT_TRUE(flow.ok()) << flow.status();
    const std::string digest = OutputDigest(w->plan, dfs);
    ASSERT_FALSE(digest.empty());
    if (first) {
      ref_digest = digest;
      ref_makespan = flow->makespan_sec;
      first = false;
    } else {
      EXPECT_EQ(digest, ref_digest) << "threads=" << threads;
      EXPECT_EQ(flow->makespan_sec, ref_makespan) << "threads=" << threads;
    }

    // The vectorized-exec switch joins the invariance contract: a batch-off
    // run at this width must reproduce the same digest and makespan bits.
    WorkflowRunner row_runner(w->plan.cluster(), &pool, ExecOptions{false});
    Dfs row_dfs = w->dfs;
    auto row_flow = row_runner.Run(w->plan, &row_dfs);
    ASSERT_TRUE(row_flow.ok()) << row_flow.status();
    EXPECT_EQ(OutputDigest(w->plan, row_dfs), ref_digest)
        << "vectorized off, threads=" << threads;
    EXPECT_EQ(row_flow->makespan_sec, ref_makespan)
        << "vectorized off, threads=" << threads;

    // So does the columnar-storage switch: batches on, row-major storage.
    WorkflowRunner col_off_runner(w->plan.cluster(), &pool,
                                  ExecOptions{true, false});
    Dfs col_off_dfs = w->dfs;
    auto col_off_flow = col_off_runner.Run(w->plan, &col_off_dfs);
    ASSERT_TRUE(col_off_flow.ok()) << col_off_flow.status();
    EXPECT_EQ(OutputDigest(w->plan, col_off_dfs), ref_digest)
        << "columnar off, threads=" << threads;
    EXPECT_EQ(col_off_flow->makespan_sec, ref_makespan)
        << "columnar off, threads=" << threads;
  }
}

TEST_F(ThreadCountInvariance, OptimizationIsBitIdentical) {
  auto w = MakeProfiledBR();
  ASSERT_TRUE(w.ok()) << w.status();

  std::optional<OptimizeReport> ref;
  for (int threads : ThreadCounts()) {
    ThreadPool pool(threads);
    StubbyOptions opts;
    opts.pool = &pool;
    auto report = StubbyOptimizer(opts).Optimize(w->plan);
    ASSERT_TRUE(report.ok()) << report.status();
    if (!ref) {
      ref = std::move(*report);
      continue;
    }
    EXPECT_EQ(PlanSignature(report->plan), PlanSignature(ref->plan))
        << "threads=" << threads;
    EXPECT_EQ(report->estimated_cost, ref->estimated_cost)
        << "threads=" << threads;
    EXPECT_EQ(report->applied, ref->applied) << "threads=" << threads;
    EXPECT_EQ(report->units_processed, ref->units_processed);
    EXPECT_EQ(report->subplans_enumerated, ref->subplans_enumerated);
    ExpectSameCounters(report->costing, ref->costing);
  }
}

TEST_F(ThreadCountInvariance, ReuseAwareSearchIsBitIdentical) {
  // The reuse-aware unit search (store probes + rewritten-candidate pricing
  // inside the parallel costing batch) must keep the whole determinism
  // contract: plans, cost bits, applied logs, costing counters, reuse
  // counters, and the store's post-run state are identical at every width.
  auto w = MakeProfiledBR();
  ASSERT_TRUE(w.ok()) << w.status();

  // Warm a store with one session run, then freeze its bytes: every width
  // starts from a byte-identical catalog.
  ResultStore warm;
  ReuseSession warmup(&warm);
  StubbyOptions warmup_opts;
  warmup_opts.reuse_whole_workflow = false;
  auto first = warmup.Run(w->plan, w->dfs, warmup_opts);
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string warm_bytes = warm.Serialize();

  std::optional<OptimizeReport> ref;
  std::optional<std::string> ref_store;
  for (int threads : ThreadCounts()) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto store = ResultStore::Deserialize(warm_bytes);
    ASSERT_TRUE(store.ok());
    ThreadPool pool(threads);
    StubbyOptions opts = warmup_opts;
    opts.reuse_store = &*store;
    opts.reuse_dfs = &w->dfs;
    opts.pool = &pool;
    auto report = StubbyOptimizer(opts).Optimize(w->plan);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_GT(report->reuse.search_probes, 0u) << report->reuse.ToString();
    // The signature memo must be doing real work: hits mean candidates
    // shared signatures, and misses bound the digest computations well
    // below one per configured candidate.
    EXPECT_GT(report->reuse.probe_cache_hits, 0u) << report->reuse.ToString();
    if (!ref) {
      ref = std::move(*report);
      ref_store = store->Serialize();
      continue;
    }
    // reuse.ToString() covers the probe_cache hit/miss counters too: the
    // memo is pre-seeded serially and overlay-merged in candidate order,
    // so even its observability counters are width-invariant.
    EXPECT_EQ(PlanSignature(report->plan), PlanSignature(ref->plan));
    EXPECT_EQ(report->estimated_cost, ref->estimated_cost);
    EXPECT_EQ(report->applied, ref->applied);
    EXPECT_EQ(report->reuse.ToString(), ref->reuse.ToString());
    ExpectSameCounters(report->costing, ref->costing);
    EXPECT_EQ(store->Serialize(), *ref_store);
  }

  // A steal-free schedule (static round-robin) must produce the same bits:
  // stealing only permutes execution order.
  {
    SCOPED_TRACE("threads=8 stealing=off");
    auto store = ResultStore::Deserialize(warm_bytes);
    ASSERT_TRUE(store.ok());
    ThreadPool::Options pool_opts;
    pool_opts.work_stealing = false;
    ThreadPool pool(8, pool_opts);
    StubbyOptions opts = warmup_opts;
    opts.reuse_store = &*store;
    opts.reuse_dfs = &w->dfs;
    opts.pool = &pool;
    auto report = StubbyOptimizer(opts).Optimize(w->plan);
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_EQ(PlanSignature(report->plan), PlanSignature(ref->plan));
    EXPECT_EQ(report->estimated_cost, ref->estimated_cost);
    EXPECT_EQ(report->reuse.ToString(), ref->reuse.ToString());
    ExpectSameCounters(report->costing, ref->costing);
    EXPECT_EQ(store->Serialize(), *ref_store);
  }
}

TEST_F(ThreadCountInvariance, ProbeCacheIsTransparent) {
  // The signature memo is pure wall-time: with the cache off, the chosen
  // plan, cost bits, applied trail, store mutations, and every reuse
  // counter except the probe_cache observability pair must be identical —
  // and the pair itself must read all-zero.
  auto w = MakeProfiledBR();
  ASSERT_TRUE(w.ok()) << w.status();

  ResultStore warm;
  ReuseSession warmup(&warm);
  StubbyOptions base_opts;
  base_opts.reuse_whole_workflow = false;
  auto first = warmup.Run(w->plan, w->dfs, base_opts);
  ASSERT_TRUE(first.ok()) << first.status();
  const std::string warm_bytes = warm.Serialize();

  auto run = [&](bool memo) -> Result<std::pair<OptimizeReport, std::string>> {
    STUBBY_ASSIGN_OR_RETURN(ResultStore store,
                            ResultStore::Deserialize(warm_bytes));
    ThreadPool pool(4);
    StubbyOptions opts = base_opts;
    opts.reuse_store = &store;
    opts.reuse_dfs = &w->dfs;
    opts.pool = &pool;
    opts.reuse_probe_cache = memo;
    STUBBY_ASSIGN_OR_RETURN(OptimizeReport report,
                            StubbyOptimizer(opts).Optimize(w->plan));
    return std::make_pair(std::move(report), store.Serialize());
  };
  auto with = run(true);
  ASSERT_TRUE(with.ok()) << with.status();
  auto without = run(false);
  ASSERT_TRUE(without.ok()) << without.status();

  const OptimizeReport& a = with->first;
  const OptimizeReport& b = without->first;
  EXPECT_EQ(PlanSignature(a.plan), PlanSignature(b.plan));
  EXPECT_EQ(a.estimated_cost, b.estimated_cost);
  EXPECT_EQ(a.applied, b.applied);
  ExpectSameCounters(a.costing, b.costing);
  EXPECT_EQ(with->second, without->second);  // identical store mutations

  EXPECT_GT(a.reuse.probe_cache_hits, 0u) << a.reuse.ToString();
  EXPECT_EQ(b.reuse.probe_cache_hits, 0u) << b.reuse.ToString();
  EXPECT_EQ(b.reuse.probe_cache_misses, 0u) << b.reuse.ToString();
  // The memo must strictly reduce signature digest computations on BR.
  EXPECT_LT(a.reuse.signature_keys_computed, b.reuse.signature_keys_computed);
  ReuseStats masked = a.reuse;
  masked.probe_cache_hits = b.reuse.probe_cache_hits;
  masked.probe_cache_misses = b.reuse.probe_cache_misses;
  masked.signature_keys_computed = b.reuse.signature_keys_computed;
  EXPECT_EQ(masked.ToString(), b.reuse.ToString());
}

TEST_F(ThreadCountInvariance, OwnedPoolViaThreadsOptionMatchesBorrowedPool) {
  auto w = MakeProfiledBR();
  ASSERT_TRUE(w.ok()) << w.status();

  StubbyOptions serial;
  auto base = StubbyOptimizer(serial).Optimize(w->plan);
  ASSERT_TRUE(base.ok());

  StubbyOptions owned;
  owned.threads = 2;  // optimizer creates (and owns) the pool itself
  auto parallel = StubbyOptimizer(owned).Optimize(w->plan);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(PlanSignature(parallel->plan), PlanSignature(base->plan));
  EXPECT_EQ(parallel->estimated_cost, base->estimated_cost);
  EXPECT_EQ(parallel->applied, base->applied);
  ExpectSameCounters(parallel->costing, base->costing);
}

TEST(StubbyTest, ReportsOverheadAndUnits) {
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);
  auto report = StubbyOptimizer().Optimize(f->plan());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->units_processed, 0);
  EXPECT_GT(report->subplans_enumerated, 0);
  EXPECT_GT(report->optimization_time_sec, 0.0);
  EXPECT_GT(report->estimated_cost, 0.0);
}

}  // namespace
}  // namespace stubby

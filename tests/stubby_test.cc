// End-to-end tests of the Stubby optimizer, parameterized over all eight
// evaluation workflows: the optimized plan must validate, produce the same
// results as the original, and not cost more. Plus ablation switches and
// the information spectrum.

#include <gtest/gtest.h>

#include "baselines/pig_baseline.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "test_workflows.h"
#include "workloads/registry.h"

namespace stubby {
namespace {

class StubbyOnWorkload : public ::testing::TestWithParam<std::string> {
 protected:
  // Small samples keep the full 8-workflow sweep fast.
  static constexpr int kRows = 6000;

  Result<Workload> MakeProfiled() {
    WorkloadOptions options;
    options.sample_rows = kRows;
    STUBBY_ASSIGN_OR_RETURN(Workload w, MakeWorkload(GetParam(), options));
    Profiler profiler(options.cluster);
    Dfs dfs = w.dfs;
    STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&w.plan, &dfs));
    return w;
  }

  static std::vector<Row> OutputRows(const Plan& plan, const Dfs& dfs,
                                     const std::string& id) {
    auto ds = dfs.Get(id);
    return ds.ok() ? (*ds)->AllRows() : std::vector<Row>{};
  }
};

TEST_P(StubbyOnWorkload, OptimizedPlanIsEquivalentAndNoWorse) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();

  StubbyOptimizer optimizer;
  auto report = optimizer.Optimize(w->plan);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->plan.Validate().ok());
  EXPECT_FALSE(report->fallback);

  WorkflowRunner runner(w->plan.cluster());
  Dfs original_dfs = w->dfs;
  auto original = runner.Run(w->plan, &original_dfs);
  ASSERT_TRUE(original.ok()) << original.status();
  Dfs optimized_dfs = w->dfs;
  auto optimized = runner.Run(report->plan, &optimized_dfs);
  ASSERT_TRUE(optimized.ok()) << optimized.status();

  // Equivalence on every terminal output.
  for (const auto& [id, ds] : w->plan.datasets()) {
    if (!ds.is_workflow_output) continue;
    EXPECT_TRUE(RowsApproxEqual(OutputRows(w->plan, original_dfs, id),
                                OutputRows(report->plan, optimized_dfs, id),
                                1e-6))
        << GetParam() << " output " << id;
  }
  // Simulated performance must not regress (it should usually improve).
  EXPECT_LE(optimized->makespan_sec, original->makespan_sec * 1.05)
      << GetParam();
}

TEST_P(StubbyOnWorkload, BeatsOrMatchesTheBaseline) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();
  auto baseline = PigBaseline(w->plan);
  ASSERT_TRUE(baseline.ok());
  StubbyOptimizer optimizer;
  auto report = optimizer.Optimize(w->plan);
  ASSERT_TRUE(report.ok());

  WorkflowRunner runner(w->plan.cluster());
  Dfs bdfs = w->dfs, sdfs = w->dfs;
  auto tb = runner.Run(*baseline, &bdfs);
  auto ts = runner.Run(report->plan, &sdfs);
  ASSERT_TRUE(tb.ok() && ts.ok());
  EXPECT_LE(ts->makespan_sec, tb->makespan_sec * 1.02) << GetParam();
}

TEST_P(StubbyOnWorkload, CostCacheIsTransparent) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();
  StubbyOptions uncached_options;
  uncached_options.enable_cost_cache = false;
  auto cached = StubbyOptimizer().Optimize(w->plan);
  auto uncached = StubbyOptimizer(uncached_options).Optimize(w->plan);
  ASSERT_TRUE(cached.ok() && uncached.ok());
  // Memoization must be invisible: same plan, same cost bits, same
  // transformation trail, same search trajectory.
  EXPECT_EQ(PlanSignature(cached->plan), PlanSignature(uncached->plan));
  EXPECT_EQ(cached->estimated_cost, uncached->estimated_cost);
  EXPECT_EQ(cached->applied, uncached->applied);
  EXPECT_EQ(cached->costing.rrs_evaluations,
            uncached->costing.rrs_evaluations);
  // ... while actually engaging: jobs replay from the memo and full-plan
  // prediction passes collapse to (nearly) one.
  EXPECT_GT(cached->costing.job_cache_hits, 0u);
  EXPECT_LT(cached->costing.full_predictions,
            uncached->costing.full_predictions);
}

TEST_P(StubbyOnWorkload, OptimizationIsDeterministic) {
  auto w = MakeProfiled();
  ASSERT_TRUE(w.ok()) << w.status();
  StubbyOptimizer optimizer;
  auto r1 = optimizer.Optimize(w->plan);
  auto r2 = optimizer.Optimize(w->plan);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(PlanSignature(r1->plan), PlanSignature(r2->plan));
  EXPECT_DOUBLE_EQ(r1->estimated_cost, r2->estimated_cost);
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, StubbyOnWorkload,
                         ::testing::ValuesIn(AllWorkloadAbbrs()),
                         [](const auto& info) { return info.param; });

TEST(StubbyTest, SubspaceSwitchesRestrictTransformations) {
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);

  StubbyOptions no_packing;
  no_packing.enable_intra_vertical = false;
  no_packing.enable_inter_vertical = false;
  no_packing.enable_horizontal = false;
  no_packing.enable_partition_function = false;
  auto report = StubbyOptimizer(no_packing).Optimize(f->plan());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->plan.num_jobs(), 2u);  // structure untouched
  EXPECT_TRUE(report->applied.empty());
}

TEST(StubbyTest, MissingSchemaAnnotationsDisableVerticalPacking) {
  // Information spectrum: without schema annotations Stubby must not
  // consider intra-job vertical packing (Section 8's example), yet it can
  // still tune configurations.
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);
  Plan plan = f->plan();
  for (const auto& [jid, job] : f->plan().jobs()) {
    (*plan.GetMutableJob(jid))->branches[0].annotations.schema.reset();
  }
  auto report = StubbyOptimizer().Optimize(plan);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->plan.num_jobs(), 2u);
  for (const auto& line : report->applied) {
    EXPECT_EQ(line.find("intra-pack"), std::string::npos) << line;
  }
}

TEST(StubbyTest, FlippedPhaseOrderStillValidAndEquivalent) {
  auto f = ::stubby::testing::MakeSiblings();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);
  StubbyOptions flipped;
  flipped.flip_phase_order = true;
  auto report = StubbyOptimizer(flipped).Optimize(f->plan());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->plan.Validate().ok());
  ::stubby::testing::ExpectEquivalent(*f, f->plan(), report->plan);
}

TEST(StubbyTest, ReportsOverheadAndUnits) {
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);
  auto report = StubbyOptimizer().Optimize(f->plan());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->units_processed, 0);
  EXPECT_GT(report->subplans_enumerated, 0);
  EXPECT_GT(report->optimization_time_sec, 0.0);
  EXPECT_GT(report->estimated_cost, 0.0);
}

}  // namespace
}  // namespace stubby

// Tests for exec/wrappers: pipeline execution, streaming group-by, tee
// side-outputs, and the combiner runner.

#include <gtest/gtest.h>

#include "exec/wrappers.h"
#include "workloads/udfs.h"

namespace stubby {
namespace {

class CollectTee : public TeeSink {
 public:
  void TeeEmit(const std::string& id, const Row& row) override {
    rows[id].push_back(row);
  }
  std::map<std::string, std::vector<Row>> rows;
};

TEST(PipelineRunnerTest, EmptyPipelinePassesThrough) {
  VectorEmitter out;
  auto runner = PipelineRunner::Make({}, Schema({"a"}), &out, nullptr);
  ASSERT_TRUE(runner.ok());
  (*runner)->Emit(Row{int64_t{1}});
  (*runner)->Finish();
  ASSERT_EQ(out.rows().size(), 1u);
  EXPECT_EQ((*runner)->counters().rows_in, 1u);
  EXPECT_EQ((*runner)->counters().rows_out, 1u);
}

TEST(PipelineRunnerTest, MapStageTransformsRows) {
  Schema in({"a", "b"});
  std::vector<Stage> stages = {Stage::Map(ProjectMap("proj", in, {"b"}))};
  VectorEmitter out;
  auto runner = PipelineRunner::Make(stages, in, &out, nullptr);
  ASSERT_TRUE(runner.ok());
  (*runner)->Emit(Row{int64_t{1}, int64_t{2}});
  (*runner)->Finish();
  ASSERT_EQ(out.rows().size(), 1u);
  EXPECT_EQ(out.rows()[0], (Row{int64_t{2}}));
}

TEST(PipelineRunnerTest, GroupedStageFlushesOnKeyChange) {
  Schema in({"k", "v"});
  std::vector<Stage> stages = {Stage::Reduce(
      AggReduce("sum", in, {"k"}, {{"v", AggOp::kSum, "s"}}), {"k"})};
  VectorEmitter out;
  auto runner = PipelineRunner::Make(stages, in, &out, nullptr);
  ASSERT_TRUE(runner.ok());
  // Clustered stream: k=1,1,2 — two groups.
  (*runner)->Emit(Row{int64_t{1}, int64_t{10}});
  (*runner)->Emit(Row{int64_t{1}, int64_t{5}});
  (*runner)->Emit(Row{int64_t{2}, int64_t{7}});
  (*runner)->Finish();
  ASSERT_EQ(out.rows().size(), 2u);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 1);
  EXPECT_DOUBLE_EQ(out.rows()[0][1].AsDouble(), 15.0);
  EXPECT_DOUBLE_EQ(out.rows()[1][1].AsDouble(), 7.0);
}

TEST(PipelineRunnerTest, ChainedMapReduceMapWorks) {
  Schema in({"k", "v"});
  Schema mid({"k", "s"});
  auto to_double = std::make_shared<LambdaMapFn>(
      "double", mid, mid, [](const Row& r, Emitter* out) {
        out->Emit(Row{r[0], r[1].AsDouble() * 2});
      });
  std::vector<Stage> stages = {
      Stage::Reduce(AggReduce("sum", in, {"k"}, {{"v", AggOp::kSum, "s"}}),
                    {"k"}),
      Stage::Map(to_double),
  };
  VectorEmitter out;
  auto runner = PipelineRunner::Make(stages, in, &out, nullptr);
  ASSERT_TRUE(runner.ok());
  (*runner)->Emit(Row{int64_t{1}, int64_t{3}});
  (*runner)->Emit(Row{int64_t{1}, int64_t{4}});
  (*runner)->Finish();
  ASSERT_EQ(out.rows().size(), 1u);
  EXPECT_DOUBLE_EQ(out.rows()[0][1].AsDouble(), 14.0);
}

TEST(PipelineRunnerTest, GroupFieldMissingFails) {
  Schema in({"k", "v"});
  std::vector<Stage> stages = {Stage::Reduce(
      AggReduce("sum", in, {"k"}, {{"v", AggOp::kSum, "s"}}), {"zzz"})};
  VectorEmitter out;
  EXPECT_FALSE(PipelineRunner::Make(stages, in, &out, nullptr).ok());
}

TEST(PipelineRunnerTest, TeeMaterializesIntermediateRows) {
  Schema in({"a", "b"});
  Stage project = Stage::Map(ProjectMap("proj", in, {"b"}));
  project.tee_dataset = "side";
  Schema projected({"b"});
  auto inc = std::make_shared<LambdaMapFn>(
      "inc", projected, projected, [](const Row& r, Emitter* out) {
        out->Emit(Row{r[0].AsInt() + 1});
      });
  std::vector<Stage> stages = {project, Stage::Map(inc)};
  VectorEmitter out;
  CollectTee tee;
  auto runner = PipelineRunner::Make(stages, in, &out, &tee);
  ASSERT_TRUE(runner.ok());
  (*runner)->Emit(Row{int64_t{1}, int64_t{10}});
  (*runner)->Finish();
  ASSERT_EQ(out.rows().size(), 1u);
  EXPECT_EQ(out.rows()[0][0].AsInt(), 11);  // final got the increment
  ASSERT_EQ(tee.rows["side"].size(), 1u);
  EXPECT_EQ(tee.rows["side"][0][0].AsInt(), 10);  // tee saw the raw value
}

TEST(PipelineRunnerTest, CpuUnitsAccumulatePerStage) {
  Schema in({"a"});
  auto pass = std::make_shared<LambdaMapFn>(
      "pass", in, in, [](const Row& r, Emitter* out) { out->Emit(r); },
      /*cpu_weight=*/2.0);
  std::vector<Stage> stages = {Stage::Map(pass), Stage::Map(pass)};
  VectorEmitter out;
  auto runner = PipelineRunner::Make(stages, in, &out, nullptr);
  ASSERT_TRUE(runner.ok());
  for (int i = 0; i < 5; ++i) (*runner)->Emit(Row{int64_t{i}});
  (*runner)->Finish();
  EXPECT_DOUBLE_EQ((*runner)->counters().cpu_units, 5 * 2.0 + 5 * 2.0);
}

TEST(RunCombinerTest, CombinesSortedRuns) {
  Schema in({"k", "v"});
  auto combiner =
      AggCombine("c", in, {"k"}, {{"v", AggOp::kSum, "v"}});
  std::vector<Row> sorted = {
      Row{int64_t{1}, 2.0}, Row{int64_t{1}, 3.0}, Row{int64_t{2}, 4.0}};
  double cpu = 0;
  std::vector<Row> out = RunCombiner(*combiner, sorted, {0}, &cpu);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0][1].AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(out[1][1].AsDouble(), 4.0);
  EXPECT_GT(cpu, 0.0);
}

TEST(RunCombinerTest, NonAlgebraicOpsPassThrough) {
  Schema in({"k", "v"});
  auto combiner =
      AggCombine("c", in, {"k"}, {{"v", AggOp::kCount, "v"}});
  std::vector<Row> sorted = {Row{int64_t{1}, 2.0}, Row{int64_t{1}, 3.0}};
  double cpu = 0;
  std::vector<Row> out = RunCombiner(*combiner, sorted, {0}, &cpu);
  EXPECT_EQ(out.size(), 2u);  // count is not combinable in-place
}

}  // namespace
}  // namespace stubby

// Tests for cost/: the phase-time model, the cluster scheduler, annotation
// adjustment, and the what-if engine (prediction accuracy, fallback).

#include <gtest/gtest.h>

#include "cost/adjust.h"
#include "cost/cost_cache.h"
#include "cost/phase_model.h"
#include "cost/schedule.h"
#include "cost/whatif.h"
#include "test_workflows.h"

namespace stubby {
namespace {

using ::stubby::testing::MakeChain;
using ::stubby::testing::ProfileInPlace;
using ::stubby::testing::RunOn;

JobDataflow BaseFlow() {
  JobDataflow df;
  df.job_id = "J";
  df.num_map_tasks = 100;
  df.num_reduce_tasks = 50;
  df.map_input_records = 1'000'000;
  df.map_input_bytes = 1ull << 30;
  df.map_input_stored_bytes = 1ull << 30;
  df.map_cpu_units = 1'000'000;
  df.map_output_records = 1'000'000;
  df.map_output_bytes = 1ull << 30;
  df.combine_output_records = 1'000'000;
  df.combine_output_bytes = 1ull << 30;
  df.reduce_input_records = 1'000'000;
  df.reduce_input_bytes = 1ull << 30;
  df.reduce_cpu_units = 1'000'000;
  df.output_records = 1'000'000;
  df.output_bytes = 1ull << 30;
  df.max_map_task_input_bytes = (1ull << 30) / 100;
  df.max_reduce_input_bytes = (1ull << 30) / 50;
  df.nonempty_reduce_partitions = 50;
  return df;
}

TEST(PhaseModelTest, MoreDataTakesLonger) {
  PhaseTimeModel model((ClusterSpec()));
  JobConfig cfg;
  cfg.num_reduce_tasks = 50;
  JobDataflow small = BaseFlow();
  JobDataflow big = BaseFlow();
  big.map_input_bytes *= 4;
  big.map_input_stored_bytes *= 4;
  big.map_output_bytes *= 4;
  big.combine_output_bytes *= 4;
  big.reduce_input_bytes *= 4;
  big.output_bytes *= 4;
  EXPECT_GT(model.StandaloneJobTime(big, cfg),
            model.StandaloneJobTime(small, cfg));
}

TEST(PhaseModelTest, SkewSlowsTheSlowestTask) {
  PhaseTimeModel model((ClusterSpec()));
  JobConfig cfg;
  JobDataflow uniform = BaseFlow();
  JobDataflow skewed = BaseFlow();
  skewed.max_reduce_input_bytes *= 10;
  JobTaskTimes tu = model.TaskTimes(uniform, cfg);
  JobTaskTimes ts = model.TaskTimes(skewed, cfg);
  EXPECT_NEAR(tu.reduce_avg_sec, ts.reduce_avg_sec, 1e-9);
  EXPECT_GT(ts.reduce_max_sec, tu.reduce_max_sec * 5);
}

TEST(PhaseModelTest, SmallSortBufferCausesMoreSpillIo) {
  PhaseTimeModel model((ClusterSpec()));
  JobConfig big_buf;
  big_buf.io_sort_mb = 512;
  JobConfig tiny_buf;
  tiny_buf.io_sort_mb = 16;
  JobDataflow df = BaseFlow();
  df.num_map_tasks = 4;  // ~256 MB of map output per task
  EXPECT_GT(model.TaskTimes(df, tiny_buf).map_avg_sec,
            model.TaskTimes(df, big_buf).map_avg_sec);
  EXPECT_GT(model.SpillCount(512.0 * 1024 * 1024, tiny_buf, 1),
            model.SpillCount(512.0 * 1024 * 1024, big_buf, 1));
}

TEST(PhaseModelTest, PackedPipelinesShrinkTheBuffer) {
  PhaseTimeModel model((ClusterSpec()));
  JobConfig cfg;
  EXPECT_GE(model.SpillCount(600.0 * 1024 * 1024, cfg, 4),
            model.SpillCount(600.0 * 1024 * 1024, cfg, 1));
}

TEST(PhaseModelTest, MergePasses) {
  EXPECT_EQ(PhaseTimeModel::MergePasses(1, 10), 0);
  EXPECT_EQ(PhaseTimeModel::MergePasses(10, 10), 1);
  EXPECT_EQ(PhaseTimeModel::MergePasses(100, 10), 2);
  EXPECT_EQ(PhaseTimeModel::MergePasses(101, 10), 3);
}

TEST(PhaseModelTest, MapOutputCompressionTradesCpuForIo) {
  ClusterSpec cluster;
  cluster.network_mbps = 10;  // shuffle-bound cluster
  PhaseTimeModel model(cluster);
  JobConfig off;
  JobConfig on;
  on.compress_map_output = true;
  JobDataflow df = BaseFlow();
  JobTaskTimes t_off = model.TaskTimes(df, off);
  JobTaskTimes t_on = model.TaskTimes(df, on);
  EXPECT_LT(t_on.reduce_avg_sec, t_off.reduce_avg_sec);
}

TEST(ScheduleTest, SingleJobWaves) {
  ClusterSpec cluster;  // 150 map slots, 102 reduce slots
  ScheduledJob j;
  j.id = "J";
  j.times.map_tasks = 300;  // exactly two map waves
  j.times.map_avg_sec = 10;
  j.times.map_max_sec = 10;
  j.times.reduce_tasks = 0;
  j.times.job_overhead_sec = 5;
  auto res = SimulateCluster({j}, cluster);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->makespan_sec, 5 + 2 * 10, 1e-6);
}

TEST(ScheduleTest, DependentJobsSerialize) {
  ClusterSpec cluster;
  ScheduledJob a, b;
  a.id = "A";
  a.times.map_tasks = 10;
  a.times.map_avg_sec = a.times.map_max_sec = 10;
  b = a;
  b.id = "B";
  b.deps = {"A"};
  auto res = SimulateCluster({a, b}, cluster);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->job_finish_sec.at("A"), 10, 1e-6);
  EXPECT_NEAR(res->makespan_sec, 20, 1e-6);
}

TEST(ScheduleTest, IndependentJobsOverlapWhenSlotsAllow) {
  ClusterSpec cluster;
  ScheduledJob a, b;
  a.id = "A";
  a.times.map_tasks = 50;
  a.times.map_avg_sec = a.times.map_max_sec = 10;
  b = a;
  b.id = "B";
  auto res = SimulateCluster({a, b}, cluster);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->makespan_sec, 10, 1e-6);  // 100 tasks <= 150 slots
}

TEST(ScheduleTest, SlotContentionSerializes) {
  ClusterSpec cluster;
  ScheduledJob a, b;
  a.id = "A";
  a.times.map_tasks = 150;
  a.times.map_avg_sec = a.times.map_max_sec = 10;
  b = a;
  b.id = "B";
  auto res = SimulateCluster({a, b}, cluster);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->makespan_sec, 20, 1e-6);
}

TEST(ScheduleTest, ReducesWaitForOwnMapsOnly) {
  ClusterSpec cluster;
  ScheduledJob a;
  a.id = "A";
  a.times.map_tasks = 10;
  a.times.map_avg_sec = a.times.map_max_sec = 10;
  a.times.reduce_tasks = 10;
  a.times.reduce_avg_sec = a.times.reduce_max_sec = 7;
  auto res = SimulateCluster({a}, cluster);
  ASSERT_TRUE(res.ok());
  EXPECT_NEAR(res->makespan_sec, 17, 1e-6);
}

TEST(ScheduleTest, RejectsUnknownDependency) {
  ScheduledJob a;
  a.id = "A";
  a.deps = {"GHOST"};
  EXPECT_FALSE(SimulateCluster({a}, ClusterSpec()).ok());
}

TEST(ScheduleTest, RejectsDuplicateIds) {
  ScheduledJob a;
  a.id = "A";
  EXPECT_FALSE(SimulateCluster({a, a}, ClusterSpec()).ok());
}

TEST(AdjustTest, ComposeStatsMultipliesSelectivitiesAndSumsCpu) {
  // The paper's example: packed map selectivity = product of the old map
  // and reduce selectivities; CPU cost = sum (input-weighted).
  Schema s({"a"});
  Stage m = Stage::Map(MakeIdentityMap(s),
                       StageStats{0.5, 0.6, 2.0, 1.0});
  Stage r = Stage::Reduce(DistinctReduce("d", s, {"a"}), {"a"},
                          StageStats{0.2, 0.3, 4.0, 0.2});
  StageStats combined = ComposeStats({m, r});
  EXPECT_DOUBLE_EQ(combined.record_selectivity, 0.1);
  EXPECT_DOUBLE_EQ(combined.byte_selectivity, 0.18);
  EXPECT_DOUBLE_EQ(combined.cpu_per_record, 2.0 + 0.5 * 4.0);
}

TEST(AdjustTest, MergeDirectionPicksTheSurvivingShuffle) {
  JobAnnotations producer, consumer;
  SchemaAnnotation ps, cs;
  ps.k1 = FieldSet{"a"};
  ps.k2 = FieldSet{"p2"};
  ps.k3 = FieldSet{"pm"};
  cs.k2 = FieldSet{"c2"};
  cs.k3 = FieldSet{"out"};
  producer.schema = ps;
  consumer.schema = cs;
  ProfileAnnotation pp, cp;
  pp.k2_distinct_groups = 111;
  cp.k2_distinct_groups = 222;
  producer.profile = pp;
  consumer.profile = cp;

  JobAnnotations into_producer = MergeForVerticalPack(
      producer, consumer, PackDirection::kConsumerIntoProducer);
  EXPECT_EQ(*into_producer.schema->k2, FieldSet{"p2"});
  EXPECT_EQ(*into_producer.schema->k3, FieldSet{"out"});
  EXPECT_DOUBLE_EQ(into_producer.profile->k2_distinct_groups, 111);

  JobAnnotations into_consumer = MergeForVerticalPack(
      producer, consumer, PackDirection::kProducerIntoConsumer);
  EXPECT_EQ(*into_consumer.schema->k2, FieldSet{"c2"});
  EXPECT_EQ(*into_consumer.schema->k1, FieldSet{"a"});
  EXPECT_DOUBLE_EQ(into_consumer.profile->k2_distinct_groups, 222);
}

TEST(WhatIfTest, FallsBackWithoutProfiles) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  WhatIfEngine whatif(f->plan().cluster());
  EXPECT_FALSE(whatif.IsCostable(f->plan()));  // not profiled yet
  CostEstimate est = whatif.Cost(f->plan());
  EXPECT_TRUE(est.fallback);
  EXPECT_DOUBLE_EQ(est.cost, 2.0);  // job count
}

TEST(WhatIfTest, PredictsProfiledPlansCloseToActual) {
  auto f = MakeChain(4000);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  WhatIfEngine whatif(f->plan().cluster());
  ASSERT_TRUE(whatif.IsCostable(f->plan()));
  auto predicted = whatif.PredictDataflow(f->plan());
  ASSERT_TRUE(predicted.ok());
  WorkflowDataflow actual = RunOn(*f, f->plan());
  // The profiled plan itself should be predicted tightly.
  EXPECT_NEAR(predicted->makespan_sec, actual.makespan_sec,
              0.25 * actual.makespan_sec);
  const JobDataflow* pa = predicted->FindJob("Jp");
  const JobDataflow* aa = actual.FindJob("Jp");
  ASSERT_TRUE(pa != nullptr && aa != nullptr);
  EXPECT_EQ(pa->num_map_tasks, aa->num_map_tasks);
  EXPECT_NEAR(static_cast<double>(pa->map_output_bytes),
              static_cast<double>(aa->map_output_bytes),
              0.05 * aa->map_output_bytes);
}

TEST(WhatIfTest, KeyHistogramRangeAndQuantile) {
  KeyHistogram h;
  h.field = "x";
  h.min = 0;
  h.max = 100;
  h.bucket_fractions = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(h.FractionInRange(0, 50), 0.5, 1e-9);
  EXPECT_NEAR(h.FractionInRange(-10, 1000), 1.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.5), 50, 1.0);
  // With a heavy hitter holding 40% at x=10 the quantile shifts left.
  h.bucket_fractions = {0.15, 0.15, 0.15, 0.15};
  h.heavy_hitters = {{10.0, 0.4}};
  EXPECT_NEAR(h.FractionInRange(9, 11), 0.4 + 0.6 * 0.02, 0.01);
  EXPECT_LE(h.Quantile(0.4), 10.5);
}

TEST(CostCacheTest, JobDigestIsContentSensitive) {
  auto f = MakeChain(4000);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  const Plan& plan = f->plan();
  auto jp = plan.GetJob("Jp");
  ASSERT_TRUE(jp.ok());
  // Identical content digests identically, and the structure-prefix +
  // configuration-suffix split recomposes to the full content digest.
  EXPECT_EQ(JobContentDigest(**jp).value(), JobContentDigest(**jp).value());
  CostDigest split = JobStructureDigest(**jp);
  MixJobConfiguration(&split, **jp);
  EXPECT_EQ(split.value(), JobContentDigest(**jp).value());

  const CostKey base = JobContentDigest(**jp).value();
  Plan other = plan;
  (*other.GetMutableJob("Jp"))->config.num_reduce_tasks += 1;
  EXPECT_NE(JobContentDigest(**other.GetJob("Jp")).value(), base);

  other = plan;
  (*other.GetMutableJob("Jp"))->config.io_sort_mb += 16.0;
  EXPECT_NE(JobContentDigest(**other.GetJob("Jp")).value(), base);

  other = plan;
  (*other.GetMutableJob("Jp"))->branches[0].inputs[0].prune_fraction = 0.5;
  EXPECT_NE(JobContentDigest(**other.GetJob("Jp")).value(), base);

  other = plan;
  JobVertex* job = *other.GetMutableJob("Jp");
  ASSERT_TRUE(job->branches[0].annotations.profile.has_value());
  job->branches[0].annotations.profile->combine_selectivity *= 0.5;
  EXPECT_NE(JobContentDigest(*job).value(), base);
}

TEST(CostCacheTest, PlanDigestCoversBaseDatasetsAndMatchesPrecomputed) {
  auto f = MakeChain(4000);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  const Plan& plan = f->plan();
  EXPECT_EQ(PlanCostDigest(plan), PlanCostDigest(plan));
  // Assembling the plan key from precomputed per-job digests is identical.
  EXPECT_EQ(PlanCostDigestFrom(plan, JobContentDigests(plan)),
            PlanCostDigest(plan));
  // Base dataset annotations feed the key (they seed the prediction).
  Plan other = plan;
  auto ds = other.GetMutableDataset("IN");
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE((*ds)->annotation.bytes.has_value());
  *(*ds)->annotation.bytes += 1;
  EXPECT_NE(PlanCostDigest(other), PlanCostDigest(plan));
  // Input size predictions feed the job-memo key.
  PredictedDataset p;
  p.records = 10.0;
  CostDigest a, b;
  MixPredictedDataset(&a, p);
  p.bytes += 1.0;
  MixPredictedDataset(&b, p);
  EXPECT_NE(a.value(), b.value());
}

TEST(CostCacheTest, PlanMemoEvictsLeastRecentlyUsed) {
  CostCache cache(CostCache::Options{.plan_capacity = 2, .job_capacity = 4});
  const CostKey k1{1, 1}, k2{2, 2}, k3{3, 3};
  CostEstimate est;
  est.cost = 1.0;
  cache.InsertPlan(k1, est);
  est.cost = 2.0;
  cache.InsertPlan(k2, est);
  ASSERT_NE(cache.FindPlan(k1), nullptr);  // refresh: k2 becomes LRU
  est.cost = 3.0;
  cache.InsertPlan(k3, est);
  EXPECT_EQ(cache.plan_entries(), 2u);
  EXPECT_EQ(cache.plan_evictions(), 1u);
  EXPECT_EQ(cache.FindPlan(k2), nullptr);
  ASSERT_NE(cache.FindPlan(k1), nullptr);
  EXPECT_DOUBLE_EQ(cache.FindPlan(k1)->cost, 1.0);
  EXPECT_DOUBLE_EQ(cache.FindPlan(k3)->cost, 3.0);
}

TEST(CostCacheTest, CachedCostingIsBitIdentical) {
  auto f = MakeChain(4000);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  WhatIfEngine plain(f->plan().cluster());
  const CostEstimate reference = plain.Cost(f->plan());

  WhatIfEngine cached(f->plan().cluster());
  CostCache cache;
  CostInstrumentation stats;
  cached.set_cache(&cache);
  cached.set_instrumentation(&stats);
  const CostEstimate first = cached.Cost(f->plan());
  const CostEstimate again = cached.Cost(f->plan());  // whole-plan memo hit

  EXPECT_EQ(reference.cost, first.cost);  // exactly, not approximately
  EXPECT_EQ(reference.fallback, first.fallback);
  EXPECT_EQ(reference.dataflow.makespan_sec, first.dataflow.makespan_sec);
  EXPECT_EQ(reference.dataflow.job_finish_sec, first.dataflow.job_finish_sec);
  EXPECT_EQ(first.cost, again.cost);
  EXPECT_EQ(first.dataflow.job_finish_sec, again.dataflow.job_finish_sec);
  EXPECT_EQ(stats.whatif_invocations, 2u);
  EXPECT_EQ(stats.plan_cache_misses, 1u);
  EXPECT_EQ(stats.plan_cache_hits, 1u);
  EXPECT_EQ(stats.full_predictions, 1u);

  // Changing one downstream job's configuration replays the untouched
  // upstream job from the per-job memo: an incremental prediction.
  Plan variant = f->plan();
  (*variant.GetMutableJob("Jc"))->config.io_sort_mb += 16.0;
  const CostEstimate changed = cached.Cost(variant);
  EXPECT_EQ(changed.cost, plain.Cost(variant).cost);
  EXPECT_EQ(stats.plan_cache_misses, 2u);
  EXPECT_EQ(stats.incremental_predictions, 1u);
  EXPECT_GT(stats.job_cache_hits, 0u);
}

TEST(WhatIfTest, PruningShrinksPredictedInput) {
  auto f = MakeChain(4000);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  WhatIfEngine whatif(f->plan().cluster());
  Plan pruned = f->plan();
  auto jc = pruned.GetMutableJob("Jc");
  (*jc)->branches[0].inputs[0].prune_partitions = {0, 1};
  (*jc)->branches[0].inputs[0].prune_fraction = 0.25;
  auto full = whatif.PredictDataflow(f->plan());
  auto less = whatif.PredictDataflow(pruned);
  ASSERT_TRUE(full.ok() && less.ok());
  EXPECT_LT(less->FindJob("Jc")->map_input_bytes,
            full->FindJob("Jc")->map_input_bytes / 2);
}

}  // namespace
}  // namespace stubby

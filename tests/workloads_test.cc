// Tests for workloads/: every Table 1 workflow builds, validates, carries
// the advertised annotations, runs end-to-end, and is deterministic.

#include <gtest/gtest.h>

#include "exec/workflow_runner.h"
#include "workloads/generators.h"
#include "workloads/registry.h"

namespace stubby {
namespace {

class WorkloadCase : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadCase, BuildsAndValidates) {
  WorkloadOptions options;
  options.sample_rows = 4000;
  auto w = MakeWorkload(GetParam(), options);
  ASSERT_TRUE(w.ok()) << w.status();
  EXPECT_TRUE(w->plan.Validate().ok());
  EXPECT_GT(w->plan.num_jobs(), 2u);
  EXPECT_GT(w->dataset_logical_bytes, 0u);
  // Base datasets exist in the DFS with the advertised logical size.
  uint64_t logical = 0;
  for (const auto& [id, ds] : w->plan.datasets()) {
    if (!ds.is_base_input) continue;
    auto stored = w->dfs.Get(id);
    ASSERT_TRUE(stored.ok()) << id;
    logical += (*stored)->logical_bytes();
    // Annotations match the stored reality.
    ASSERT_TRUE(ds.annotation.bytes.has_value());
    EXPECT_EQ(*ds.annotation.bytes, (*stored)->logical_bytes());
    ASSERT_TRUE(ds.annotation.num_partitions.has_value());
    EXPECT_EQ(static_cast<size_t>(*ds.annotation.num_partitions),
              (*stored)->num_partitions());
  }
  EXPECT_NEAR(static_cast<double>(logical),
              static_cast<double>(w->dataset_logical_bytes),
              0.02 * w->dataset_logical_bytes);
}

TEST_P(WorkloadCase, RunsEndToEndAndProducesOutputs) {
  WorkloadOptions options;
  options.sample_rows = 4000;
  auto w = MakeWorkload(GetParam(), options);
  ASSERT_TRUE(w.ok()) << w.status();
  WorkflowRunner runner(options.cluster);
  Dfs dfs = w->dfs;
  auto flow = runner.Run(w->plan, &dfs);
  ASSERT_TRUE(flow.ok()) << flow.status();
  EXPECT_GT(flow->makespan_sec, 0.0);
  for (const auto& [id, ds] : w->plan.datasets()) {
    if (!ds.is_workflow_output) continue;
    auto out = dfs.Get(id);
    ASSERT_TRUE(out.ok()) << id;
    EXPECT_GT((*out)->num_rows(), 0u) << id;
  }
}

TEST_P(WorkloadCase, DeterministicBySeed) {
  WorkloadOptions options;
  options.sample_rows = 2000;
  auto w1 = MakeWorkload(GetParam(), options);
  auto w2 = MakeWorkload(GetParam(), options);
  ASSERT_TRUE(w1.ok() && w2.ok());
  for (const auto& [id, ds] : w1->plan.datasets()) {
    if (!ds.is_base_input) continue;
    auto a = w1->dfs.Get(id);
    auto b = w2->dfs.Get(id);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ((*a)->AllRows(), (*b)->AllRows()) << id;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkflows, WorkloadCase,
                         ::testing::ValuesIn(AllWorkloadAbbrs()),
                         [](const auto& info) { return info.param; });

TEST(RegistryTest, UnknownWorkloadFails) {
  EXPECT_FALSE(MakeWorkload("ZZ").ok());
}

TEST(RegistryTest, TableOneOrder) {
  EXPECT_EQ(AllWorkloadAbbrs(),
            (std::vector<std::string>{"IR", "SN", "LA", "WG", "BA", "BR",
                                      "PJ", "US"}));
}

TEST(GeneratorsTest, SchemasAndDistributions) {
  Rng rng(1);
  auto docs = GenDocWords(1000, 50, 100, 1.1, &rng);
  EXPECT_EQ(docs.schema, Schema({"D", "W"}));
  EXPECT_EQ(docs.rows.size(), 1000u);

  auto li = GenLineitem(500, 100, 50, 10, &rng);
  EXPECT_EQ(li.schema.size(), 6u);
  for (const Row& r : li.rows) {
    EXPECT_GE(r[3].AsInt(), 1);
    EXPECT_LE(r[3].AsInt(), 50);
    EXPECT_GT(r[4].AsDouble(), 0.0);
  }

  auto visits = GenUserVisits(500, 365, 100, 50, &rng);
  for (const Row& r : visits.rows) {
    EXPECT_GE(r[0].AsInt(), 0);
    EXPECT_LT(r[0].AsInt(), 365);
  }

  auto ranks = GenRanks(10, &rng);
  EXPECT_EQ(ranks.rows.size(), 10u);
  EXPECT_DOUBLE_EQ(ranks.rows[0][1].AsDouble(), 1.0);
}

}  // namespace
}  // namespace stubby

// Adaptive suffix re-optimization (optimizer/reoptimize.h +
// exec/adaptive_runner.h): the no-op contract under accurate profiles, the
// suffix-only splice under injected mis-profiles (the executed prefix never
// re-runs), thread-count invariance of the whole adaptive loop, the
// profile-perturbation injector's determinism, and the stubbyd `reoptimize`
// knob (daemon trace == sequential session loop).

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/threading.h"
#include "exec/adaptive_runner.h"
#include "exec/workflow_runner.h"
#include "optimizer/reoptimize.h"
#include "optimizer/stubby.h"
#include "profiler/perturb.h"
#include "reuse/result_store.h"
#include "reuse/session.h"
#include "service/stubbyd.h"
#include "test_workflows.h"

namespace stubby {
namespace {

using ::stubby::testing::MakeChain;
using ::stubby::testing::ProfileInPlace;

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// The chain plan with every profile-derived statistic skewed by seeded
/// factors (magnitude 4: each statistic lands log-uniformly in [0.2, 5]).
/// The data itself is untouched, so execution — and the oracle — are
/// unchanged; only predictions lie.
Plan PerturbedChain(const WorkflowFactory& f, uint64_t seed = 3) {
  Plan plan = const_cast<WorkflowFactory&>(f).plan();
  PerturbOptions p;
  p.seed = seed;
  p.magnitude = 4.0;
  EXPECT_TRUE(PerturbProfiles(&plan, p).ok());
  return plan;
}

std::vector<Row> OutRows(const Dfs& dfs, const std::string& id = "OUT") {
  auto ds = dfs.Get(id);
  EXPECT_TRUE(ds.ok()) << ds.status();
  return ds.ok() ? (*ds)->AllRows() : std::vector<Row>{};
}

TEST(PerturbTest, DeterministicAndDataPreserving) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);

  // PlanSignature is structural and ignores annotations, so the injector's
  // effect is observed on the annotation values themselves.
  auto in_records = [](const Plan& p) {
    return p.datasets().at("IN").annotation.num_records.value_or(0);
  };
  Plan a = PerturbedChain(*f);
  Plan b = PerturbedChain(*f);
  EXPECT_EQ(in_records(a), in_records(b));  // pure function of (plan, opts)

  // The injector actually moved the input-size annotation...
  const uint64_t clean = in_records(f->plan());
  EXPECT_NE(clean, in_records(a));

  // ...a different seed moves it differently,
  Plan c = PerturbedChain(*f, /*seed=*/4);
  EXPECT_NE(in_records(a), in_records(c));

  // and magnitude 0 disables the injector entirely.
  Plan d = const_cast<WorkflowFactory&>(*f).plan();
  PerturbOptions off;
  off.magnitude = 0.0;
  ASSERT_TRUE(PerturbProfiles(&d, off).ok());
  EXPECT_EQ(in_records(d), clean);

  // Execution of the perturbed plan is bit-identical to the clean plan:
  // only annotations moved, never data or job semantics.
  Dfs clean_dfs = f->dfs();
  Dfs skew_dfs = f->dfs();
  WorkflowRunner runner(f->plan().cluster());
  ASSERT_TRUE(runner.Run(f->plan(), &clean_dfs).ok());
  ASSERT_TRUE(runner.Run(a, &skew_dfs).ok());
  EXPECT_TRUE(RowsBitIdentical(OutRows(clean_dfs), OutRows(skew_dfs)));
}

TEST(ReoptimizeFromEnvTest, ParsesStubbyReopt) {
  unsetenv("STUBBY_REOPT");
  EXPECT_FALSE(ReoptimizeFromEnv());
  EXPECT_TRUE(ReoptimizeFromEnv(/*fallback=*/true));
  setenv("STUBBY_REOPT", "0", 1);
  EXPECT_FALSE(ReoptimizeFromEnv(/*fallback=*/true));
  setenv("STUBBY_REOPT", "1", 1);
  EXPECT_TRUE(ReoptimizeFromEnv());
  unsetenv("STUBBY_REOPT");
}

TEST(BuildSuffixPlanTest, PromotesExecutedOutputsToObservedBaseInputs) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);

  // Execute the full chain once so MID exists physically.
  Dfs dfs = f->dfs();
  WorkflowRunner runner(f->plan().cluster());
  ASSERT_TRUE(runner.Run(f->plan(), &dfs).ok());

  auto suffix = BuildSuffixPlan(f->plan(), {"Jp"}, dfs);
  ASSERT_TRUE(suffix.ok()) << suffix.status();
  EXPECT_EQ(suffix->num_jobs(), 1u);
  EXPECT_TRUE(suffix->GetJob("Jc").ok());

  // MID became a base input annotated with the *observed* dataset, not
  // whatever the original (possibly wrong) profile claimed.
  const DatasetVertex& mid = suffix->datasets().at("MID");
  EXPECT_TRUE(mid.is_base_input);
  auto stored = dfs.Get("MID");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(mid.annotation.num_records, (*stored)->logical_rows());
  EXPECT_EQ(mid.annotation.bytes, (*stored)->logical_bytes());

  // The suffix is a valid standalone plan, and re-optimizing it yields an
  // executable single-job plan costed from the corrected profiles.
  StubbyOptions opts;
  auto replan = ReoptimizeSuffix(*suffix, dfs, opts, nullptr);
  ASSERT_TRUE(replan.ok()) << replan.status();
  EXPECT_GE(replan->plan.num_jobs(), 1u);
  EXPECT_TRUE(replan->plan.Validate().ok());
}

TEST(AdaptiveRunnerTest, NoOpBelowThresholdBitIdenticalToWorkflowRunner) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);

  Dfs plain_dfs = f->dfs();
  WorkflowRunner plain(f->plan().cluster());
  auto plain_flow = plain.Run(f->plan(), &plain_dfs);
  ASSERT_TRUE(plain_flow.ok()) << plain_flow.status();

  StubbyOptions opts;
  opts.reoptimize = true;  // default threshold: accurate profiles stay under
  Dfs adaptive_dfs = f->dfs();
  AdaptiveRunner runner(f->plan().cluster(), nullptr, ExecOptions{}, opts);
  auto run = runner.Run(f->plan(), &adaptive_dfs);
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_EQ(run->stats.reoptimizations, 0u)
      << "accurate profiles fired a re-optimization (max_rel_error="
      << run->stats.max_rel_error << ")";
  EXPECT_GE(run->stats.checks, 1u);  // two jobs -> one mid-run check
  EXPECT_EQ(run->stats.jobs_executed, 2u);
  EXPECT_EQ(PlanSignature(run->final_plan), PlanSignature(f->plan()));

  // Exact no-op: same makespan bits, same per-job accounting, same output
  // bits as the plain runner.
  EXPECT_TRUE(SameBits(run->dataflow.makespan_sec, plain_flow->makespan_sec))
      << run->dataflow.makespan_sec << " vs " << plain_flow->makespan_sec;
  ASSERT_EQ(run->dataflow.jobs.size(), plain_flow->jobs.size());
  for (size_t i = 0; i < run->dataflow.jobs.size(); ++i) {
    EXPECT_EQ(run->dataflow.jobs[i].ToString(),
              plain_flow->jobs[i].ToString());
  }
  EXPECT_TRUE(RowsBitIdentical(OutRows(adaptive_dfs), OutRows(plain_dfs)));
}

TEST(AdaptiveRunnerTest, MisprofileTriggersSuffixOnlyReplan) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);
  Plan perturbed = PerturbedChain(*f);

  // Oracle: the clean plan as written.
  Dfs oracle_dfs = f->dfs();
  WorkflowRunner plain(f->plan().cluster());
  ASSERT_TRUE(plain.Run(f->plan(), &oracle_dfs).ok());

  StubbyOptions opts;
  opts.reoptimize = true;
  // Tight threshold: any surviving skew on Jp's observed map phases trips
  // the check (magnitude-4 factors land within 5% of 1 only by accident).
  opts.reoptimize_threshold = 0.05;
  Dfs dfs = f->dfs();
  AdaptiveRunner runner(perturbed.cluster(), nullptr, ExecOptions{}, opts);
  auto run = runner.Run(perturbed, &dfs);
  ASSERT_TRUE(run.ok()) << run.status();

  // The check fired and a suffix was replanned...
  EXPECT_GE(run->stats.reoptimizations, 1u) << run->stats.ToString();
  EXPECT_GT(run->stats.max_rel_error, opts.reoptimize_threshold);
  EXPECT_GE(run->stats.suffix_jobs_replanned, 1u);

  // ...but the executed prefix never re-ran: every job id executed exactly
  // once, and the executed set covers the original workflow.
  std::set<std::string> seen;
  for (const std::string& jid : run->stats.executed_order) {
    EXPECT_TRUE(seen.insert(jid).second)
        << "job " << jid << " executed twice: " << run->stats.ToString();
  }
  EXPECT_EQ(run->stats.jobs_executed, run->stats.executed_order.size());
  EXPECT_EQ(run->stats.executed_order.front(), "Jp");

  // Outputs still match the oracle (the replanned suffix may aggregate in
  // a different order, so tolerance-aware).
  EXPECT_TRUE(RowsApproxEqual(OutRows(dfs), OutRows(oracle_dfs), 1e-6));
}

TEST(AdaptiveRunnerTest, ReduceOnlyMisprofileTriggersReplan) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);

  // Skew ONLY Jp's reduce-stage statistics. Map-side predictions stay
  // exact, so every map-phase error term reads ~0 — only the reduce-side
  // terms folded into MaxRelativeError (job output records/bytes, and
  // reduce input when the combiner is inactive) can trip the check. Before
  // those terms existed, this mis-profile sailed through unnoticed.
  Plan perturbed = const_cast<WorkflowFactory&>(*f).plan();
  auto jp = perturbed.GetMutableJob("Jp");
  ASSERT_TRUE(jp.ok()) << jp.status();
  Stage& reduce = (*jp)->branches[0].reduce_stages[0];
  ASSERT_TRUE(reduce.stats.has_value());
  reduce.stats->record_selectivity *= 4.0;
  reduce.stats->byte_selectivity *= 4.0;

  // Oracle: the clean plan as written (the skew never touches data).
  Dfs oracle_dfs = f->dfs();
  WorkflowRunner plain(f->plan().cluster());
  ASSERT_TRUE(plain.Run(f->plan(), &oracle_dfs).ok());

  StubbyOptions opts;
  opts.reoptimize = true;
  opts.reoptimize_threshold = 0.05;
  Dfs dfs = f->dfs();
  AdaptiveRunner runner(perturbed.cluster(), nullptr, ExecOptions{}, opts);
  auto run = runner.Run(perturbed, &dfs);
  ASSERT_TRUE(run.ok()) << run.status();

  EXPECT_GE(run->stats.reoptimizations, 1u)
      << "reduce-side error terms failed to fire: "
      << run->stats.ToString();
  EXPECT_GT(run->stats.max_rel_error, opts.reoptimize_threshold);
  EXPECT_TRUE(RowsApproxEqual(OutRows(dfs), OutRows(oracle_dfs), 1e-6));
}

TEST(AdaptiveRunnerTest, ThreadCountInvariance) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);
  Plan perturbed = PerturbedChain(*f);

  StubbyOptions opts;
  opts.reoptimize = true;
  opts.reoptimize_threshold = 0.05;  // force the splice path on every run

  struct Snapshot {
    std::string stats;
    std::string final_plan;
    double makespan = 0.0;
    std::vector<Row> out;
  };
  std::map<int, Snapshot> by_threads;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    Dfs dfs = f->dfs();
    AdaptiveRunner runner(perturbed.cluster(), &pool, ExecOptions{}, opts);
    auto run = runner.Run(perturbed, &dfs);
    ASSERT_TRUE(run.ok()) << run.status();
    by_threads[threads] = {run->stats.ToString(),
                           PlanSignature(run->final_plan),
                           run->dataflow.makespan_sec, OutRows(dfs)};
  }
  const Snapshot& base = by_threads.at(1);
  EXPECT_NE(base.stats.find("reoptimizations=1"), std::string::npos)
      << base.stats;
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const Snapshot& got = by_threads.at(threads);
    EXPECT_EQ(got.stats, base.stats);
    EXPECT_EQ(got.final_plan, base.final_plan);
    EXPECT_TRUE(SameBits(got.makespan, base.makespan))
        << got.makespan << " vs " << base.makespan;
    EXPECT_TRUE(RowsBitIdentical(got.out, base.out));
  }
}

TEST(ReoptSessionTest, ReoptOnIsBitIdenticalToOffWithAccurateProfiles) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    ReuseSession session(nullptr);
    StubbyOptions off;
    auto r_off = session.Run(f->plan(), f->dfs(), off, &pool);
    ASSERT_TRUE(r_off.ok()) << r_off.status();
    StubbyOptions on = off;
    on.reoptimize = true;
    auto r_on = session.Run(f->plan(), f->dfs(), on, &pool);
    ASSERT_TRUE(r_on.ok()) << r_on.status();

    EXPECT_EQ(r_on->adaptive.reoptimizations, 0u);
    EXPECT_EQ(PlanSignature(r_on->report.plan),
              PlanSignature(r_off->report.plan));
    EXPECT_TRUE(SameBits(r_on->report.estimated_cost,
                         r_off->report.estimated_cost));
    EXPECT_TRUE(SameBits(r_on->simulated_cost, r_off->simulated_cost))
        << r_on->simulated_cost << " vs " << r_off->simulated_cost;
    ASSERT_EQ(r_on->outputs.size(), r_off->outputs.size());
    for (const auto& [id, rows] : r_off->outputs) {
      EXPECT_TRUE(RowsBitIdentical(rows, r_on->outputs.at(id))) << id;
    }
  }
}

TEST(ReoptServiceTest, DaemonKnobMatchesSequentialSessions) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);
  // Perturbed submissions: runs that splice mid-execution must still commit
  // through the wave-OCC protocol exactly like a sequential loop. The low
  // threshold matches the splice-forcing runner tests above.
  auto plan = std::make_shared<const Plan>(PerturbedChain(*f));
  auto dfs = std::make_shared<const Dfs>(f->dfs());

  StubbyOptions sub_opts;
  sub_opts.reoptimize_threshold = 0.05;

  // Sequential baseline: fresh store, re-opt forced on per session.
  ResultStore seq_store;
  ReuseSession seq_session(&seq_store);
  StubbyOptions seq_opts = sub_opts;
  seq_opts.reoptimize = true;
  std::vector<ReuseSessionResult> sequential;
  for (int i = 0; i < 3; ++i) {
    auto r = seq_session.Run(*plan, *dfs, seq_opts);
    ASSERT_TRUE(r.ok()) << r.status();
    sequential.push_back(std::move(*r));
  }
  // The first sequential run actually spliced; later runs are elided via
  // the whole-workflow hit, so they never execute (and never adapt).
  EXPECT_GE(sequential[0].adaptive.reoptimizations, 1u)
      << sequential[0].adaptive.ToString();

  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions service_options;
    service_options.wave_size = 3;
    service_options.reoptimize = true;  // the daemon-side knob under test
    ThreadPool pool(threads);
    StubbyService service(service_options, &pool);
    for (int i = 0; i < 3; ++i) {
      Submission sub;
      sub.tenant = "t" + std::to_string(i);
      sub.name = "reopt";
      sub.plan = plan;
      sub.dfs = dfs;
      sub.options = sub_opts;  // reoptimize itself left off: the knob forces it
      ASSERT_TRUE(service.Submit(std::move(sub)).ok());
    }
    std::vector<RequestResult> results = service.Drain();
    ASSERT_EQ(results.size(), 3u);
    for (int i = 0; i < 3; ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      ASSERT_TRUE(results[i].status.ok()) << results[i].status;
      const ReuseSessionResult& got = results[i].session;
      const ReuseSessionResult& want = sequential[i];
      EXPECT_EQ(PlanSignature(got.report.plan),
                PlanSignature(want.report.plan));
      EXPECT_TRUE(SameBits(got.report.estimated_cost,
                           want.report.estimated_cost));
      EXPECT_EQ(got.reuse.ToString(), want.reuse.ToString());
      EXPECT_EQ(got.adaptive.ToString(), want.adaptive.ToString());
      ASSERT_EQ(got.outputs.size(), want.outputs.size());
      for (const auto& [id, rows] : want.outputs) {
        EXPECT_TRUE(RowsBitIdentical(rows, got.outputs.at(id))) << id;
      }
    }
    EXPECT_EQ(service.store().Serialize(), seq_store.Serialize());
  }
}

}  // namespace
}  // namespace stubby

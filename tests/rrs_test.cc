// Tests for optimizer/rrs: Recursive Random Search behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "optimizer/rrs.h"

namespace stubby {
namespace {

double Sphere(const std::vector<double>& x) {
  double s = 0;
  for (double v : x) s += (v - 0.7) * (v - 0.7);
  return s;
}

TEST(RrsTest, ConvergesOnSmoothFunction) {
  RrsOptions opts;
  opts.budget = 200;
  RecursiveRandomSearch rrs(opts, 42);
  auto [point, value] = rrs.Minimize(4, Sphere, {});
  EXPECT_LT(value, 0.02);
  for (double v : point) EXPECT_NEAR(v, 0.7, 0.25);
}

TEST(RrsTest, RespectsBudget) {
  int evals = 0;
  RrsOptions opts;
  opts.budget = 37;
  RecursiveRandomSearch rrs(opts, 1);
  rrs.Minimize(3, [&](const std::vector<double>& x) {
    ++evals;
    return Sphere(x);
  }, {});
  EXPECT_LE(evals, 37);
  EXPECT_GE(evals, 30);
}

TEST(RrsTest, DeterministicBySeed) {
  RrsOptions opts;
  opts.budget = 80;
  auto run = [&](uint64_t seed) {
    RecursiveRandomSearch rrs(opts, seed);
    return rrs.Minimize(3, Sphere, {});
  };
  auto [p1, v1] = run(5);
  auto [p2, v2] = run(5);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(v1, v2);
}

TEST(RrsTest, SeedsAreEvaluatedFirst) {
  // With a tiny budget, a perfect seed must win.
  RrsOptions opts;
  opts.budget = 3;
  RecursiveRandomSearch rrs(opts, 9);
  std::vector<double> perfect(5, 0.7);
  auto [point, value] = rrs.Minimize(5, Sphere, {perfect});
  EXPECT_EQ(point, perfect);
  EXPECT_NEAR(value, 0.0, 1e-12);
}

TEST(RrsTest, ZeroDimensionsReturnsSeedlessDefault) {
  RecursiveRandomSearch rrs(RrsOptions{}, 3);
  auto [point, value] = rrs.Minimize(
      0, [](const std::vector<double>&) { return 1.0; }, {});
  EXPECT_TRUE(point.empty());
}

TEST(RrsTest, BeatsPureRandomOnNarrowValley) {
  // A narrow quadratic valley: exploitation should find deeper points than
  // the same budget of uniform samples.
  auto valley = [](const std::vector<double>& x) {
    double s = 0;
    for (double v : x) s += (v - 0.31) * (v - 0.31);
    return s;
  };
  RrsOptions rrs_opts;
  rrs_opts.budget = 120;
  RecursiveRandomSearch rrs(rrs_opts, 17);
  auto [rp, rv] = rrs.Minimize(6, valley, {});

  RrsOptions rand_opts;
  rand_opts.budget = 120;
  rand_opts.explore_samples = 120;  // never exploits
  rand_opts.exploit_samples = 0;
  rand_opts.init_radius = 0;
  RecursiveRandomSearch pure(rand_opts, 17);
  auto [pp, pv] = pure.Minimize(6, valley, {});
  EXPECT_LT(rv, pv);
}

}  // namespace
}  // namespace stubby

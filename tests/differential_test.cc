// Differential plan-equivalence harness: seeded random workflows executed
// unoptimized as the oracle, then through every optimizer/reuse mode — the
// reuse-blind search, a cold-store reuse-aware search, a warm-store
// reuse-aware search (twice, so the second run prices store hits inside the
// unit search), the post-hoc rewrite path, the warm search with the
// signature probe memo on vs off, the reuse-blind session with the
// columnar batch executor off, and the reuse-blind session with
// column-native storage off — at 1 and 4 threads. Every
// emitted plan must produce bit-identical workflow outputs (after a
// canonical row sort; optimized plans may emit rows in a different order),
// and plans, cost bits, and reuse counters must not depend on thread count.
// The batch-off and columnar-off legs additionally pin down the
// transparency contracts of StubbyOptions::vectorized_exec and
// ::columnar_storage: raw output order, makespan bits, and per-job
// dataflow accounting match the default run exactly. A final daemon leg
// replays each seed through stubbyd (three tenants, one wave) and asserts
// bit-identity with a sequential fresh-session loop at 1 and 4 threads.
//
// The generator sticks to integer-valued fields: integer sums stay exact in
// doubles (≤ 2^53), so kSum/kMax/kMin/kCount/kAvg are bit-exact and
// order-invariant and the oracle comparison is meaningful down to the bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/threading.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "optimizer/transform.h"
#include "profiler/profiler.h"
#include "reuse/result_store.h"
#include "reuse/session.h"
#include "service/stubbyd.h"
#include "workloads/builder.h"
#include "workloads/udfs.h"

namespace stubby {
namespace {

constexpr uint64_t kGB = 1ull << 30;

// --- seeded workflow generator ---------------------------------------------

struct JobSpec {
  WorkflowFactory::JobDef def;
  std::string output_id;
  Schema output_schema;
  bool consumed = false;  ///< some later job reads output_id
};

/// Random 1–4 job workflow over one integer base: chains and siblings of
/// map-only jobs (filter / project / append-const stages) and annotated
/// group-by aggregation jobs; half the seeds append a diamond (one
/// producer feeding two filtered consumers whose outputs rejoin in a
/// multi-input aggregate). Pure function of `seed`.
Result<WorkflowFactory> MakeRandomWorkflow(uint64_t seed) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(seed * 2654435761ull + 17);

  Schema base_schema({"K", "G", "V"});
  const int rows = 600 + static_cast<int>(rng.NextInt(0, 600));
  std::vector<Row> data;
  data.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    data.push_back(Row{rng.NextInt(0, 19), rng.NextInt(0, 9),
                       rng.NextInt(0, 99)});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddBase("BASE", base_schema, Layout{}, 4, std::move(data), 2 * kGB));

  struct Avail {
    std::string id;
    Schema schema;
    int spec_index;  ///< producing JobSpec, or -1 for the base
  };
  std::vector<Avail> avail = {{"BASE", base_schema, -1}};
  std::vector<JobSpec> specs;

  const int num_jobs = 1 + static_cast<int>(rng.NextInt(0, 3));
  int const_counter = 0;
  for (int j = 0; j < num_jobs; ++j) {
    // Chain off the newest dataset most of the time; occasionally branch
    // off an earlier one to get sibling consumers (horizontal candidates).
    size_t pick = avail.size() - 1;
    if (avail.size() > 1 && rng.NextInt(0, 2) == 0) {
      pick = static_cast<size_t>(rng.NextInt(0, avail.size() - 1));
    }
    Avail& in = avail[pick];
    if (in.spec_index >= 0) specs[in.spec_index].consumed = true;

    Schema cur = in.schema;
    std::vector<Stage> stages;
    const int num_stages = static_cast<int>(rng.NextInt(0, 2));
    for (int s = 0; s < num_stages; ++s) {
      const std::string tag =
          "j" + std::to_string(j) + "s" + std::to_string(s);
      switch (rng.NextInt(0, 2)) {
        case 0: {  // filter on a random field over an integer range
          const auto& field = cur.fields()[static_cast<size_t>(
              rng.NextInt(0, cur.fields().size() - 1))];
          const double lo = static_cast<double>(rng.NextInt(0, 30));
          const double hi = lo + static_cast<double>(rng.NextInt(10, 80));
          stages.push_back(
              Stage::Map(FilterRangeMap("filter_" + tag, cur, field, lo, hi)));
          break;
        }
        case 1: {  // project onto a random subset (≥ 2 fields, order kept)
          std::vector<std::string> keep;
          for (const std::string& field : cur.fields()) {
            if (rng.NextInt(0, 1) == 0) keep.push_back(field);
          }
          for (size_t k = 0; keep.size() < 2 && k < cur.fields().size(); ++k) {
            const std::string& field = cur.fields()[k];
            if (std::find(keep.begin(), keep.end(), field) == keep.end()) {
              keep.push_back(field);
            }
          }
          std::sort(keep.begin(), keep.end(), [&](const auto& a,
                                                  const auto& b) {
            return cur.IndexOf(a) < cur.IndexOf(b);
          });
          stages.push_back(Stage::Map(ProjectMap("project_" + tag, cur, keep)));
          cur = Schema(keep);
          break;
        }
        default: {  // append an integer constant column
          const std::string field = "C" + std::to_string(const_counter++);
          std::vector<std::string> fields = cur.fields();
          stages.push_back(Stage::Map(
              AppendConstMap("append_" + tag, cur, field,
                             Value(rng.NextInt(0, 5)))));
          fields.push_back(field);
          cur = Schema(fields);
          break;
        }
      }
    }

    JobSpec spec;
    spec.def.id = "J" + std::to_string(j);
    spec.def.inputs = {In(in.id, std::move(stages))};
    spec.def.map_output_schema = cur;
    spec.output_id = "D" + std::to_string(j);

    const bool reduce = cur.fields().size() >= 2 && rng.NextInt(0, 2) != 0;
    if (reduce) {
      const std::string group = cur.fields()[0];
      std::vector<AggSpec> aggs;
      const int num_aggs = 1 + static_cast<int>(rng.NextInt(0, 1));
      for (int a = 0; a < num_aggs; ++a) {
        const auto& field = cur.fields()[static_cast<size_t>(
            rng.NextInt(1, cur.fields().size() - 1))];
        static const AggOp kOps[] = {AggOp::kSum, AggOp::kMax, AggOp::kMin,
                                     AggOp::kCount, AggOp::kAvg};
        aggs.push_back({field, kOps[rng.NextInt(0, 4)],
                        "A" + std::to_string(j) + "_" + std::to_string(a)});
      }
      spec.output_schema = AggOutputSchema({group}, aggs);
      spec.def.reduce_stages = {Stage::Reduce(
          AggReduce("agg_j" + std::to_string(j), cur, {group}, aggs),
          {group})};
      SchemaAnnotation sa;
      sa.k1 = FieldSet{group};
      sa.k2 = FieldSet{group};
      sa.k3 = FieldSet{group};
      FieldSet rest;
      for (const std::string& field : cur.fields()) {
        if (field != group) rest.insert(field);
      }
      sa.v1 = rest;
      sa.v2 = rest;
      FieldSet produced;
      for (const AggSpec& a : aggs) produced.insert(a.out_field);
      sa.v3 = produced;
      spec.def.schema_ann = sa;
    } else {
      spec.output_schema = cur;
    }
    spec.def.output = spec.output_id;
    avail.push_back({spec.output_id, spec.output_schema,
                     static_cast<int>(specs.size())});
    specs.push_back(std::move(spec));
  }

  // Diamond sharing: one producer feeds two filtered consumers whose
  // outputs a rejoin job reads as two branch inputs of one branch.
  // Vertical packing of the diamond tees the shared stream (a tee-stage
  // pipeline is ineligible for the batch path, exercising its row
  // fallback), and the rejoin exercises multi-input shuffle merging.
  if (rng.NextInt(0, 1) == 0) {
    size_t pick = static_cast<size_t>(rng.NextInt(0, avail.size() - 1));
    Avail& p = avail[pick];
    if (p.spec_index >= 0) specs[p.spec_index].consumed = true;
    const Schema ps = p.schema;
    std::vector<std::string> arms;
    for (int arm = 0; arm < 2; ++arm) {
      const std::string tag = "d" + std::to_string(arm);
      const auto& field = ps.fields()[static_cast<size_t>(
          rng.NextInt(0, ps.fields().size() - 1))];
      const double lo = static_cast<double>(rng.NextInt(0, 20));
      const double hi = lo + static_cast<double>(rng.NextInt(30, 90));
      JobSpec spec;
      spec.def.id = "JD" + std::to_string(arm);
      spec.def.inputs = {In(p.id, {Stage::Map(FilterRangeMap(
                                "filter_" + tag, ps, field, lo, hi))})};
      spec.def.map_output_schema = ps;
      spec.output_id = "DD" + std::to_string(arm);
      spec.output_schema = ps;
      spec.def.output = spec.output_id;
      spec.consumed = true;  // the rejoin below reads it
      arms.push_back(spec.output_id);
      specs.push_back(std::move(spec));
    }
    const std::string group = ps.fields()[0];
    std::vector<AggSpec> aggs = {{ps.fields()[1], AggOp::kSum, "DS"}};
    JobSpec spec;
    spec.def.id = "JDj";
    spec.def.inputs = {In(arms[0], {}), In(arms[1], {})};
    spec.def.map_output_schema = ps;
    spec.output_schema = AggOutputSchema({group}, aggs);
    spec.def.reduce_stages = {Stage::Reduce(
        AggReduce("agg_dj", ps, {group}, aggs), {group})};
    SchemaAnnotation sa;
    sa.k1 = FieldSet{group};
    sa.k2 = FieldSet{group};
    sa.k3 = FieldSet{group};
    FieldSet rest;
    for (const std::string& field : ps.fields()) {
      if (field != group) rest.insert(field);
    }
    sa.v1 = rest;
    sa.v2 = rest;
    sa.v3 = FieldSet{"DS"};
    spec.def.schema_ann = sa;
    spec.output_id = "DDJ";
    spec.def.output = spec.output_id;
    specs.push_back(std::move(spec));
  }

  // Multi-input join: half the seeds add a second base relation and a job
  // that reads BOTH bases as branch inputs of one shuffle (a filtered arm
  // over BASE merged with an unfiltered arm over BASE2) into a grouped
  // aggregate — the cross-relation join shape stubbyd traces replay, which
  // the single-base chains above never produce.
  if (rng.NextInt(0, 1) == 0) {
    const int rows2 = 300 + static_cast<int>(rng.NextInt(0, 300));
    std::vector<Row> data2;
    data2.reserve(static_cast<size_t>(rows2));
    for (int i = 0; i < rows2; ++i) {
      data2.push_back(Row{rng.NextInt(0, 19), rng.NextInt(0, 9),
                          rng.NextInt(0, 99)});
    }
    STUBBY_RETURN_NOT_OK(f.AddBase("BASE2", base_schema, Layout{}, 4,
                                   std::move(data2), kGB));
    const auto& field = base_schema.fields()[static_cast<size_t>(
        rng.NextInt(0, base_schema.fields().size() - 1))];
    const double lo = static_cast<double>(rng.NextInt(0, 20));
    const double hi = lo + static_cast<double>(rng.NextInt(30, 90));
    const std::string group = base_schema.fields()[0];
    std::vector<AggSpec> aggs = {{base_schema.fields()[2], AggOp::kSum,
                                  "JS"}};
    JobSpec spec;
    spec.def.id = "JX";
    spec.def.inputs = {In("BASE", {Stage::Map(FilterRangeMap(
                              "filter_jx", base_schema, field, lo, hi))}),
                       In("BASE2", {})};
    spec.def.map_output_schema = base_schema;
    spec.output_schema = AggOutputSchema({group}, aggs);
    spec.def.reduce_stages = {Stage::Reduce(
        AggReduce("agg_jx", base_schema, {group}, aggs), {group})};
    SchemaAnnotation sa;
    sa.k1 = FieldSet{group};
    sa.k2 = FieldSet{group};
    sa.k3 = FieldSet{group};
    FieldSet rest;
    for (const std::string& bf : base_schema.fields()) {
      if (bf != group) rest.insert(bf);
    }
    sa.v1 = rest;
    sa.v2 = rest;
    sa.v3 = FieldSet{"JS"};
    spec.def.schema_ann = sa;
    spec.output_id = "DJX";
    spec.def.output = spec.output_id;
    specs.push_back(std::move(spec));
  }

  // Unconsumed outputs are the workflow terminals (the last job's always is).
  for (JobSpec& spec : specs) {
    STUBBY_RETURN_NOT_OK(
        f.AddDataset(spec.output_id, spec.output_schema, !spec.consumed));
  }
  for (JobSpec& spec : specs) {
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(spec.def)));
  }
  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  return f;
}

// --- oracle + comparison helpers -------------------------------------------

using Outputs = std::map<std::string, std::vector<Row>>;

Outputs Canonical(const Outputs& raw) {
  Outputs sorted = raw;
  for (auto& [id, rows] : sorted) std::sort(rows.begin(), rows.end());
  return sorted;
}

/// Bit-level equality after the canonical sort (doubles by bit pattern).
void ExpectBitIdentical(const Outputs& got, const Outputs& want,
                        const std::string& label) {
  Outputs a = Canonical(got);
  Outputs b = Canonical(want);
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [id, rows] : a) {
    ASSERT_EQ(b.count(id), 1u) << label << " missing output " << id;
    EXPECT_TRUE(RowsBitIdentical(rows, b.at(id)))
        << label << " output " << id << " differs";
  }
}

/// One unoptimized execution: terminal outputs plus the observables the
/// vectorized-exec A/B legs compare (makespan bits, per-job dataflow).
struct OracleRun {
  Outputs outputs;
  double makespan = 0.0;
  std::string dataflow;  ///< JobDataflow::ToString per job, newline-joined
};

/// Runs the plan as written — no optimizer, no reuse — and collects the
/// terminal outputs. This is the oracle every emitted plan must match.
Result<OracleRun> RunUnoptimized(const Plan& plan, const Dfs& dfs,
                                 ExecOptions exec = ExecOptions{}) {
  Dfs run_dfs = dfs;
  WorkflowRunner runner(plan.cluster(), nullptr, exec);
  STUBBY_ASSIGN_OR_RETURN(WorkflowDataflow flow, runner.Run(plan, &run_dfs));
  OracleRun run;
  run.makespan = flow.makespan_sec;
  for (const JobDataflow& j : flow.jobs) run.dataflow += j.ToString() + "\n";
  for (const auto& [id, v] : plan.datasets()) {
    if (!v.is_workflow_output) continue;
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr out, run_dfs.Get(id));
    run.outputs.emplace(id, out->AllRows());
  }
  return run;
}

/// Everything one mode run produced that must be thread-count invariant.
struct ModeResult {
  std::string plan_signature;
  double estimated_cost = 0.0;
  std::string reuse_counters;
  Outputs outputs;
};

ModeResult Capture(const ReuseSessionResult& r) {
  ModeResult m;
  m.plan_signature = PlanSignature(r.report.plan);
  m.estimated_cost = r.report.estimated_cost;
  m.reuse_counters = r.reuse.ToString();
  m.outputs = r.outputs;
  return m;
}

bool SameCostBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// --- the harness ------------------------------------------------------------

class DifferentialEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialEquivalence, EveryEmittedPlanMatchesTheOracle) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  auto f = MakeRandomWorkflow(seed);
  ASSERT_TRUE(f.ok()) << f.status();

  // Odd seeds get full stage profiles: detailed costing and the RRS
  // configuration search run for real. Even seeds stay unprofiled and
  // exercise the job-count fallback path (including its reuse tie rule).
  if (seed % 2 == 1) {
    Profiler profiler(ClusterSpec{});
    Dfs profile_dfs = f->dfs();
    ASSERT_TRUE(profiler.ProfilePlan(&f->plan(), &profile_dfs).ok());
  }

  auto oracle = RunUnoptimized(f->plan(), f->dfs());
  ASSERT_TRUE(oracle.ok()) << oracle.status();

  // Executor-level transparency: the unoptimized plan with the batch
  // executor off, and with batches on but column-native storage off, must
  // reproduce raw outputs, makespan bits, and the per-job dataflow
  // accounting exactly.
  for (const auto& [label, exec] :
       std::initializer_list<std::pair<const char*, ExecOptions>>{
           {"batch-off", ExecOptions{false}},
           {"columnar-off", ExecOptions{true, false}}}) {
    auto oracle_off = RunUnoptimized(f->plan(), f->dfs(), exec);
    ASSERT_TRUE(oracle_off.ok()) << oracle_off.status();
    for (const auto& [id, rows] : oracle->outputs) {
      ASSERT_EQ(oracle_off->outputs.count(id), 1u) << id;
      EXPECT_TRUE(RowsBitIdentical(rows, oracle_off->outputs.at(id)))
          << label << " oracle output " << id << " differs";
    }
    EXPECT_TRUE(SameCostBits(oracle->makespan, oracle_off->makespan))
        << label << ": " << oracle->makespan << " vs "
        << oracle_off->makespan;
    EXPECT_EQ(oracle->dataflow, oracle_off->dataflow) << label;
  }

  // Modes, per thread count: blind, cold, warm1, warm2, posthoc.
  std::map<int, std::vector<ModeResult>> by_threads;
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    StubbyOptions opts;

    // Reuse-blind: no store at all.
    ReuseSession blind_session(nullptr);
    auto blind = blind_session.Run(f->plan(), f->dfs(), opts, &pool);
    ASSERT_TRUE(blind.ok()) << blind.status();
    ExpectBitIdentical(blind->outputs, oracle->outputs, "blind");

    // Batch-off session: the full optimize+execute path with
    // vectorized_exec off must emit the same plan and cost bits as the
    // blind run, and its raw (pre-sort) outputs and simulated makespan
    // must match bit-for-bit.
    StubbyOptions batch_off_opts = opts;
    batch_off_opts.vectorized_exec = false;
    ReuseSession batch_off_session(nullptr);
    auto batch_off =
        batch_off_session.Run(f->plan(), f->dfs(), batch_off_opts, &pool);
    ASSERT_TRUE(batch_off.ok()) << batch_off.status();
    ExpectBitIdentical(batch_off->outputs, oracle->outputs, "batch_off");
    EXPECT_EQ(PlanSignature(batch_off->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(batch_off->report.estimated_cost,
                             blind->report.estimated_cost));
    EXPECT_TRUE(
        SameCostBits(batch_off->simulated_cost, blind->simulated_cost))
        << batch_off->simulated_cost << " vs " << blind->simulated_cost;
    ASSERT_EQ(batch_off->outputs.size(), blind->outputs.size());
    for (const auto& [id, rows] : blind->outputs) {
      EXPECT_TRUE(RowsBitIdentical(rows, batch_off->outputs.at(id)))
          << "batch-off raw output " << id << " differs";
    }

    // Columnar-off session: batches stay on but the storage boundary is
    // row-major (the pre-columnar configuration). Same transparency
    // contract as batch_off: plan, cost bits, simulated makespan, and raw
    // (pre-sort) outputs match the default run bit-for-bit.
    StubbyOptions columnar_off_opts = opts;
    columnar_off_opts.columnar_storage = false;
    ReuseSession columnar_off_session(nullptr);
    auto columnar_off = columnar_off_session.Run(f->plan(), f->dfs(),
                                                 columnar_off_opts, &pool);
    ASSERT_TRUE(columnar_off.ok()) << columnar_off.status();
    ExpectBitIdentical(columnar_off->outputs, oracle->outputs,
                       "columnar_off");
    EXPECT_EQ(PlanSignature(columnar_off->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(columnar_off->report.estimated_cost,
                             blind->report.estimated_cost));
    EXPECT_TRUE(
        SameCostBits(columnar_off->simulated_cost, blind->simulated_cost))
        << columnar_off->simulated_cost << " vs " << blind->simulated_cost;
    ASSERT_EQ(columnar_off->outputs.size(), blind->outputs.size());
    for (const auto& [id, rows] : blind->outputs) {
      EXPECT_TRUE(RowsBitIdentical(rows, columnar_off->outputs.at(id)))
          << "columnar-off raw output " << id << " differs";
    }

    // Cold store: the aware search probes but every probe misses — the
    // emitted plan and its cost bits must equal the blind search's.
    ResultStore store;
    ReuseSession session(&store);
    auto cold = session.Run(f->plan(), f->dfs(), opts, &pool);
    ASSERT_TRUE(cold.ok()) << cold.status();
    ExpectBitIdentical(cold->outputs, oracle->outputs, "cold");
    EXPECT_EQ(PlanSignature(cold->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(cold->report.estimated_cost,
                             blind->report.estimated_cost))
        << cold->report.estimated_cost << " vs "
        << blind->report.estimated_cost;

    // Warm store, whole-workflow elision off: the unit search itself must
    // price and apply the store hits. Run twice — the second run sees the
    // first rewritten run's registrations too.
    StubbyOptions warm_opts = opts;
    warm_opts.reuse_whole_workflow = false;
    auto warm1 = session.Run(f->plan(), f->dfs(), warm_opts, &pool);
    ASSERT_TRUE(warm1.ok()) << warm1.status();
    ExpectBitIdentical(warm1->outputs, oracle->outputs, "warm1");
    auto warm2 = session.Run(f->plan(), f->dfs(), warm_opts, &pool);
    ASSERT_TRUE(warm2.ok()) << warm2.status();
    ExpectBitIdentical(warm2->outputs, oracle->outputs, "warm2");

    // Post-hoc path (reuse-aware search off): rewrite only after the blind
    // search — the pre-tentpole behavior, still bit-transparent.
    StubbyOptions posthoc_opts = warm_opts;
    posthoc_opts.reuse_aware_search = false;
    auto posthoc = session.Run(f->plan(), f->dfs(), posthoc_opts, &pool);
    ASSERT_TRUE(posthoc.ok()) << posthoc.status();
    ExpectBitIdentical(posthoc->outputs, oracle->outputs, "posthoc");

    // Probe-memo transparency, warm and cold-ish: freeze the store after
    // the runs above, then replay the warm mode from byte-identical copies
    // with the signature memo on and off. Everything except the
    // probe_cache observability pair must be bit-identical.
    const std::string frozen = store.Serialize();
    auto run_memo = [&](bool memo) -> Result<ReuseSessionResult> {
      STUBBY_ASSIGN_OR_RETURN(ResultStore copy,
                              ResultStore::Deserialize(frozen));
      ReuseSession memo_session(&copy);
      StubbyOptions memo_opts = warm_opts;
      memo_opts.reuse_probe_cache = memo;
      return memo_session.Run(f->plan(), f->dfs(), memo_opts, &pool);
    };
    auto memo_on = run_memo(true);
    ASSERT_TRUE(memo_on.ok()) << memo_on.status();
    ExpectBitIdentical(memo_on->outputs, oracle->outputs, "memo_on");
    auto memo_off = run_memo(false);
    ASSERT_TRUE(memo_off.ok()) << memo_off.status();
    ExpectBitIdentical(memo_off->outputs, oracle->outputs, "memo_off");
    EXPECT_EQ(PlanSignature(memo_on->report.plan),
              PlanSignature(memo_off->report.plan));
    EXPECT_TRUE(SameCostBits(memo_on->report.estimated_cost,
                             memo_off->report.estimated_cost));
    EXPECT_EQ(memo_off->report.reuse.probe_cache_hits, 0u);
    EXPECT_EQ(memo_off->report.reuse.probe_cache_misses, 0u);
    // signature_keys_computed legitimately differs between the runs (the
    // memo's base-plan pre-seed computes keys the direct path never
    // touches on tiny workflows), so it is masked like the hit/miss pair.
    ReuseStats masked = memo_on->report.reuse;
    masked.probe_cache_hits = 0;
    masked.probe_cache_misses = 0;
    masked.signature_keys_computed =
        memo_off->report.reuse.signature_keys_computed;
    EXPECT_EQ(masked.ToString(), memo_off->report.reuse.ToString());

    by_threads[threads] = {Capture(*blind),   Capture(*batch_off),
                           Capture(*columnar_off),
                           Capture(*cold),    Capture(*warm1),
                           Capture(*warm2),   Capture(*posthoc),
                           Capture(*memo_on), Capture(*memo_off)};
  }

  // Thread-count invariance: plans, cost bits, reuse counters, and raw
  // (pre-sort) outputs of every mode are identical at 1 and 4 threads.
  const std::vector<ModeResult>& t1 = by_threads.at(1);
  const std::vector<ModeResult>& t4 = by_threads.at(4);
  ASSERT_EQ(t1.size(), t4.size());
  static const char* kModes[] = {"blind",   "batch_off", "columnar_off",
                                 "cold",    "warm1",     "warm2",
                                 "posthoc", "memo_on",   "memo_off"};
  for (size_t i = 0; i < t1.size(); ++i) {
    SCOPED_TRACE(kModes[i]);
    EXPECT_EQ(t1[i].plan_signature, t4[i].plan_signature);
    EXPECT_TRUE(SameCostBits(t1[i].estimated_cost, t4[i].estimated_cost))
        << t1[i].estimated_cost << " vs " << t4[i].estimated_cost;
    EXPECT_EQ(t1[i].reuse_counters, t4[i].reuse_counters);
    ASSERT_EQ(t1[i].outputs.size(), t4[i].outputs.size());
    for (const auto& [id, rows] : t1[i].outputs) {
      ASSERT_EQ(t4[i].outputs.count(id), 1u);
      EXPECT_TRUE(RowsBitIdentical(rows, t4[i].outputs.at(id)))
          << "output " << id;
    }
  }

  // Daemon mode: the same workflow submitted three times by three tenants
  // through stubbyd — one shared store, one wave, speculative execution —
  // must land exactly where a sequential fresh-session loop does, at 1 and
  // at 4 threads. This replays every generator shape (joins included)
  // through the service's wave-OCC commit path.
  auto shared_plan = std::make_shared<const Plan>(f->plan());
  auto shared_dfs = std::make_shared<const Dfs>(f->dfs());
  std::vector<ModeResult> sequential;
  {
    ResultStore seq_store;
    ReuseSession seq_session(&seq_store);
    for (int i = 0; i < 3; ++i) {
      auto r = seq_session.Run(*shared_plan, *shared_dfs, StubbyOptions{});
      ASSERT_TRUE(r.ok()) << r.status();
      ExpectBitIdentical(r->outputs, oracle->outputs,
                         "daemon-sequential " + std::to_string(i));
      sequential.push_back(Capture(*r));
    }
    for (int threads : {1, 4}) {
      SCOPED_TRACE("daemon threads=" + std::to_string(threads));
      ServiceOptions service_options;
      service_options.wave_size = 3;
      ThreadPool pool(threads);
      StubbyService service(service_options, &pool);
      for (int i = 0; i < 3; ++i) {
        Submission sub;
        sub.tenant = "t" + std::to_string(i);
        sub.name = "seed" + std::to_string(seed);
        sub.plan = shared_plan;
        sub.dfs = shared_dfs;
        ASSERT_TRUE(service.Submit(std::move(sub)).ok());
      }
      std::vector<RequestResult> results = service.Drain();
      ASSERT_EQ(results.size(), 3u);
      for (int i = 0; i < 3; ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        ASSERT_TRUE(results[i].status.ok()) << results[i].status;
        ModeResult got = Capture(results[i].session);
        EXPECT_EQ(got.plan_signature, sequential[i].plan_signature);
        EXPECT_TRUE(SameCostBits(got.estimated_cost,
                                 sequential[i].estimated_cost))
            << got.estimated_cost << " vs " << sequential[i].estimated_cost;
        EXPECT_EQ(got.reuse_counters, sequential[i].reuse_counters);
        ASSERT_EQ(got.outputs.size(), sequential[i].outputs.size());
        for (const auto& [id, rows] : got.outputs) {
          EXPECT_TRUE(
              RowsBitIdentical(rows, sequential[i].outputs.at(id)))
              << "raw output " << id;
        }
      }
      EXPECT_EQ(service.store().Serialize(), seq_store.Serialize());
      EXPECT_EQ(service.store().num_pins(), 0u);
    }
  }
}

/// Seed count, overridable for the nightly-style deep run: the CI `slow`
/// job sets STUBBY_DIFF_SEEDS to sweep a larger slice of the generator
/// space than the default per-commit budget allows.
int SeedCount() {
  const char* env = std::getenv("STUBBY_DIFF_SEEDS");
  if (env == nullptr) return 25;
  const int n = std::atoi(env);
  return n > 0 ? n : 25;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialEquivalence,
                         ::testing::Range(0, SeedCount()));

}  // namespace
}  // namespace stubby

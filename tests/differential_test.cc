// Differential plan-equivalence harness: seeded random workflows executed
// unoptimized as the oracle, then through every optimizer/reuse mode — the
// reuse-blind search, a cold-store reuse-aware search, a warm-store
// reuse-aware search (twice, so the second run prices store hits inside the
// unit search), the post-hoc rewrite path, the warm search with the
// signature probe memo on vs off, the reuse-blind session with the
// columnar batch executor off, the reuse-blind session with
// column-native storage off, the bloom-transfer knob off (`bloom_off`,
// byte-transparent against the blind run) and on (`bloom_on`, the sixth
// transformation enumerates for real on the selective-join seeds; its
// probe pre-filters drop rows yet outputs must still match the oracle —
// the false-positive-only ledger guarantee), the adaptive re-optimizer on
// with accurate
// profiles (`reopt_on`, must be an exact no-op against the blind run), and
// the adaptive re-optimizer on with deterministically perturbed profiles
// (`reopt_misprofiled`, may emit and splice different plans but must still
// match the oracle) — at 1 and 4 threads. Every emitted plan must produce
// workflow outputs matching the oracle (after a canonical row sort;
// optimized plans may emit rows in a different order), and plans, cost
// bits, and reuse + adaptive counters must not depend on thread count.
// The batch-off and columnar-off legs additionally pin down the
// transparency contracts of StubbyOptions::vectorized_exec and
// ::columnar_storage: raw output order, makespan bits, and per-job
// dataflow accounting match the default run exactly. A final daemon leg
// replays each seed through stubbyd (three tenants, one wave) and asserts
// bit-identity with a sequential fresh-session loop at 1 and 4 threads.
// The nightly TSan leg runs this same file with a larger seed sweep
// (STUBBY_DIFF_SEEDS), so every mode here — the re-opt ones included — is
// exercised under the race detector too.
//
// Seed dimensions: seeds with seed % 3 == 2 generate float-valued data
// (inexact sevenths), where kSum/kAvg become summation-order dependent —
// those seeds compare optimized plans against the oracle with the
// tolerance-aware RowsApproxEqual. All other seeds stay integer-valued
// (sums ≤ 2^53 are exact), where the oracle comparison is bit-level.
// Same-plan A/B legs (batch-off, columnar-off, thread invariance, daemon
// vs sequential) stay bit-level in BOTH modes: identical plans execute in
// identical order, so even float results must agree to the bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/threading.h"
#include "exec/workflow_runner.h"
#include "mr/tuple.h"
#include "optimizer/stubby.h"
#include "optimizer/transform.h"
#include "profiler/perturb.h"
#include "profiler/profiler.h"
#include "reuse/result_store.h"
#include "reuse/session.h"
#include "service/stubbyd.h"
#include "workloads/random.h"

namespace stubby {
namespace {

// --- oracle + comparison helpers -------------------------------------------

using Outputs = std::map<std::string, std::vector<Row>>;

Outputs Canonical(const Outputs& raw) {
  Outputs sorted = raw;
  for (auto& [id, rows] : sorted) std::sort(rows.begin(), rows.end());
  return sorted;
}

/// Oracle equality after the canonical sort: bit-level (doubles by bit
/// pattern) for integer seeds; tolerance-aware (RowsApproxEqual) when
/// `approx` — float seeds aggregate inexact doubles, so equivalent plans
/// agree only up to summation-order rounding.
void ExpectMatchesOracle(const Outputs& got, const Outputs& want,
                         const std::string& label, bool approx) {
  Outputs a = Canonical(got);
  Outputs b = Canonical(want);
  ASSERT_EQ(a.size(), b.size()) << label;
  for (const auto& [id, rows] : a) {
    ASSERT_EQ(b.count(id), 1u) << label << " missing output " << id;
    if (approx) {
      EXPECT_TRUE(RowsApproxEqual(rows, b.at(id)))
          << label << " output " << id << " differs beyond tolerance";
    } else {
      EXPECT_TRUE(RowsBitIdentical(rows, b.at(id)))
          << label << " output " << id << " differs";
    }
  }
}

/// One unoptimized execution: terminal outputs plus the observables the
/// vectorized-exec A/B legs compare (makespan bits, per-job dataflow).
struct OracleRun {
  Outputs outputs;
  double makespan = 0.0;
  std::string dataflow;  ///< JobDataflow::ToString per job, newline-joined
};

/// Runs the plan as written — no optimizer, no reuse — and collects the
/// terminal outputs. This is the oracle every emitted plan must match.
Result<OracleRun> RunUnoptimized(const Plan& plan, const Dfs& dfs,
                                 ExecOptions exec = ExecOptions{}) {
  Dfs run_dfs = dfs;
  WorkflowRunner runner(plan.cluster(), nullptr, exec);
  STUBBY_ASSIGN_OR_RETURN(WorkflowDataflow flow, runner.Run(plan, &run_dfs));
  OracleRun run;
  run.makespan = flow.makespan_sec;
  for (const JobDataflow& j : flow.jobs) run.dataflow += j.ToString() + "\n";
  for (const auto& [id, v] : plan.datasets()) {
    if (!v.is_workflow_output) continue;
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr out, run_dfs.Get(id));
    run.outputs.emplace(id, out->AllRows());
  }
  return run;
}

/// Everything one mode run produced that must be thread-count invariant.
struct ModeResult {
  std::string plan_signature;
  double estimated_cost = 0.0;
  std::string reuse_counters;
  Outputs outputs;
};

ModeResult Capture(const ReuseSessionResult& r) {
  ModeResult m;
  m.plan_signature = PlanSignature(r.report.plan);
  m.estimated_cost = r.report.estimated_cost;
  // Adaptive counters ride along with the reuse counters so the re-opt
  // modes' checks/splices are thread-count invariant too (all zeros for
  // the non-adaptive modes).
  m.reuse_counters = r.reuse.ToString() + "\n" + r.adaptive.ToString();
  m.outputs = r.outputs;
  return m;
}

bool SameCostBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// --- the harness ------------------------------------------------------------

class DifferentialEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialEquivalence, EveryEmittedPlanMatchesTheOracle) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  // Every third seed carries float-valued data; its oracle comparisons are
  // tolerance-aware, everything else stays bit-level.
  const bool floats = (seed % 3 == 2);
  auto f = MakeRandomWorkflow(seed, RandomWorkflowOptions{floats});
  ASSERT_TRUE(f.ok()) << f.status();

  // Odd seeds get full stage profiles: detailed costing and the RRS
  // configuration search run for real. Even seeds stay unprofiled and
  // exercise the job-count fallback path (including its reuse tie rule).
  if (seed % 2 == 1) {
    Profiler profiler(ClusterSpec{});
    Dfs profile_dfs = f->dfs();
    ASSERT_TRUE(profiler.ProfilePlan(&f->plan(), &profile_dfs).ok());
  }

  auto oracle = RunUnoptimized(f->plan(), f->dfs());
  ASSERT_TRUE(oracle.ok()) << oracle.status();

  // Executor-level transparency: the unoptimized plan with the batch
  // executor off, and with batches on but column-native storage off, must
  // reproduce raw outputs, makespan bits, and the per-job dataflow
  // accounting exactly.
  for (const auto& [label, exec] :
       std::initializer_list<std::pair<const char*, ExecOptions>>{
           {"batch-off", ExecOptions{false}},
           {"columnar-off", ExecOptions{true, false}}}) {
    auto oracle_off = RunUnoptimized(f->plan(), f->dfs(), exec);
    ASSERT_TRUE(oracle_off.ok()) << oracle_off.status();
    for (const auto& [id, rows] : oracle->outputs) {
      ASSERT_EQ(oracle_off->outputs.count(id), 1u) << id;
      EXPECT_TRUE(RowsBitIdentical(rows, oracle_off->outputs.at(id)))
          << label << " oracle output " << id << " differs";
    }
    EXPECT_TRUE(SameCostBits(oracle->makespan, oracle_off->makespan))
        << label << ": " << oracle->makespan << " vs "
        << oracle_off->makespan;
    EXPECT_EQ(oracle->dataflow, oracle_off->dataflow) << label;
  }

  // Modes, per thread count: blind, batch-off, columnar-off, cold, warm1,
  // warm2, posthoc, memo on/off, bloom off/on, reopt on, reopt
  // mis-profiled.
  std::map<int, std::vector<ModeResult>> by_threads;
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    StubbyOptions opts;

    // Reuse-blind: no store at all.
    ReuseSession blind_session(nullptr);
    auto blind = blind_session.Run(f->plan(), f->dfs(), opts, &pool);
    ASSERT_TRUE(blind.ok()) << blind.status();
    ExpectMatchesOracle(blind->outputs, oracle->outputs, "blind", floats);

    // Batch-off session: the full optimize+execute path with
    // vectorized_exec off must emit the same plan and cost bits as the
    // blind run, and its raw (pre-sort) outputs and simulated makespan
    // must match bit-for-bit.
    StubbyOptions batch_off_opts = opts;
    batch_off_opts.vectorized_exec = false;
    ReuseSession batch_off_session(nullptr);
    auto batch_off =
        batch_off_session.Run(f->plan(), f->dfs(), batch_off_opts, &pool);
    ASSERT_TRUE(batch_off.ok()) << batch_off.status();
    ExpectMatchesOracle(batch_off->outputs, oracle->outputs, "batch_off", floats);
    EXPECT_EQ(PlanSignature(batch_off->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(batch_off->report.estimated_cost,
                             blind->report.estimated_cost));
    EXPECT_TRUE(
        SameCostBits(batch_off->simulated_cost, blind->simulated_cost))
        << batch_off->simulated_cost << " vs " << blind->simulated_cost;
    ASSERT_EQ(batch_off->outputs.size(), blind->outputs.size());
    for (const auto& [id, rows] : blind->outputs) {
      EXPECT_TRUE(RowsBitIdentical(rows, batch_off->outputs.at(id)))
          << "batch-off raw output " << id << " differs";
    }

    // Columnar-off session: batches stay on but the storage boundary is
    // row-major (the pre-columnar configuration). Same transparency
    // contract as batch_off: plan, cost bits, simulated makespan, and raw
    // (pre-sort) outputs match the default run bit-for-bit.
    StubbyOptions columnar_off_opts = opts;
    columnar_off_opts.columnar_storage = false;
    ReuseSession columnar_off_session(nullptr);
    auto columnar_off = columnar_off_session.Run(f->plan(), f->dfs(),
                                                 columnar_off_opts, &pool);
    ASSERT_TRUE(columnar_off.ok()) << columnar_off.status();
    ExpectMatchesOracle(columnar_off->outputs, oracle->outputs,
                       "columnar_off", floats);
    EXPECT_EQ(PlanSignature(columnar_off->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(columnar_off->report.estimated_cost,
                             blind->report.estimated_cost));
    EXPECT_TRUE(
        SameCostBits(columnar_off->simulated_cost, blind->simulated_cost))
        << columnar_off->simulated_cost << " vs " << blind->simulated_cost;
    ASSERT_EQ(columnar_off->outputs.size(), blind->outputs.size());
    for (const auto& [id, rows] : blind->outputs) {
      EXPECT_TRUE(RowsBitIdentical(rows, columnar_off->outputs.at(id)))
          << "columnar-off raw output " << id << " differs";
    }

    // Cold store: the aware search probes but every probe misses — the
    // emitted plan and its cost bits must equal the blind search's.
    ResultStore store;
    ReuseSession session(&store);
    auto cold = session.Run(f->plan(), f->dfs(), opts, &pool);
    ASSERT_TRUE(cold.ok()) << cold.status();
    ExpectMatchesOracle(cold->outputs, oracle->outputs, "cold", floats);
    EXPECT_EQ(PlanSignature(cold->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(cold->report.estimated_cost,
                             blind->report.estimated_cost))
        << cold->report.estimated_cost << " vs "
        << blind->report.estimated_cost;

    // Warm store, whole-workflow elision off: the unit search itself must
    // price and apply the store hits. Run twice — the second run sees the
    // first rewritten run's registrations too.
    StubbyOptions warm_opts = opts;
    warm_opts.reuse_whole_workflow = false;
    auto warm1 = session.Run(f->plan(), f->dfs(), warm_opts, &pool);
    ASSERT_TRUE(warm1.ok()) << warm1.status();
    ExpectMatchesOracle(warm1->outputs, oracle->outputs, "warm1", floats);
    auto warm2 = session.Run(f->plan(), f->dfs(), warm_opts, &pool);
    ASSERT_TRUE(warm2.ok()) << warm2.status();
    ExpectMatchesOracle(warm2->outputs, oracle->outputs, "warm2", floats);

    // Post-hoc path (reuse-aware search off): rewrite only after the blind
    // search — the pre-tentpole behavior, still bit-transparent.
    StubbyOptions posthoc_opts = warm_opts;
    posthoc_opts.reuse_aware_search = false;
    auto posthoc = session.Run(f->plan(), f->dfs(), posthoc_opts, &pool);
    ASSERT_TRUE(posthoc.ok()) << posthoc.status();
    ExpectMatchesOracle(posthoc->outputs, oracle->outputs, "posthoc", floats);

    // Probe-memo transparency, warm and cold-ish: freeze the store after
    // the runs above, then replay the warm mode from byte-identical copies
    // with the signature memo on and off. Everything except the
    // probe_cache observability pair must be bit-identical.
    const std::string frozen = store.Serialize();
    auto run_memo = [&](bool memo) -> Result<ReuseSessionResult> {
      STUBBY_ASSIGN_OR_RETURN(ResultStore copy,
                              ResultStore::Deserialize(frozen));
      ReuseSession memo_session(&copy);
      StubbyOptions memo_opts = warm_opts;
      memo_opts.reuse_probe_cache = memo;
      return memo_session.Run(f->plan(), f->dfs(), memo_opts, &pool);
    };
    auto memo_on = run_memo(true);
    ASSERT_TRUE(memo_on.ok()) << memo_on.status();
    ExpectMatchesOracle(memo_on->outputs, oracle->outputs, "memo_on", floats);
    auto memo_off = run_memo(false);
    ASSERT_TRUE(memo_off.ok()) << memo_off.status();
    ExpectMatchesOracle(memo_off->outputs, oracle->outputs, "memo_off", floats);
    EXPECT_EQ(PlanSignature(memo_on->report.plan),
              PlanSignature(memo_off->report.plan));
    EXPECT_TRUE(SameCostBits(memo_on->report.estimated_cost,
                             memo_off->report.estimated_cost));
    EXPECT_EQ(memo_off->report.reuse.probe_cache_hits, 0u);
    EXPECT_EQ(memo_off->report.reuse.probe_cache_misses, 0u);
    // signature_keys_computed legitimately differs between the runs (the
    // memo's base-plan pre-seed computes keys the direct path never
    // touches on tiny workflows), so it is masked like the hit/miss pair.
    ReuseStats masked = memo_on->report.reuse;
    masked.probe_cache_hits = 0;
    masked.probe_cache_misses = 0;
    masked.signature_keys_computed =
        memo_off->report.reuse.signature_keys_computed;
    EXPECT_EQ(masked.ToString(), memo_off->report.reuse.ToString());

    // Re-optimization transparency (`reopt_on` vs the blind `reopt_off`
    // baseline): with accurate profiles the adaptive runner must be an
    // exact no-op — same plan, cost bits, simulated makespan, and raw
    // (pre-sort) outputs as the blind run, and zero splices.
    StubbyOptions reopt_opts = opts;
    reopt_opts.reoptimize = true;
    ReuseSession reopt_session(nullptr);
    auto reopt_on = reopt_session.Run(f->plan(), f->dfs(), reopt_opts, &pool);
    ASSERT_TRUE(reopt_on.ok()) << reopt_on.status();
    ExpectMatchesOracle(reopt_on->outputs, oracle->outputs, "reopt_on",
                        floats);
    EXPECT_EQ(reopt_on->adaptive.reoptimizations, 0u)
        << "accurate profiles must stay under the re-opt threshold "
        << "(max_rel_error=" << reopt_on->adaptive.max_rel_error << ")";
    EXPECT_EQ(PlanSignature(reopt_on->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(reopt_on->report.estimated_cost,
                             blind->report.estimated_cost));
    EXPECT_TRUE(
        SameCostBits(reopt_on->simulated_cost, blind->simulated_cost))
        << reopt_on->simulated_cost << " vs " << blind->simulated_cost;
    ASSERT_EQ(reopt_on->outputs.size(), blind->outputs.size());
    for (const auto& [id, rows] : blind->outputs) {
      EXPECT_TRUE(RowsBitIdentical(rows, reopt_on->outputs.at(id)))
          << "reopt-on raw output " << id << " differs";
    }

    // Bloom-transfer A/B. `bloom_off` pins the knob's transparency: the
    // transformation compiled into the build but disabled (the default)
    // must leave plan signature, cost bits, simulated makespan, and raw
    // (pre-sort) outputs bit-identical to the blind run, which never
    // mentions the knob — the knob is salt-excluded, so both searches walk
    // the same path.
    StubbyOptions bloom_off_opts = opts;
    bloom_off_opts.bloom_transfer = false;
    ReuseSession bloom_off_session(nullptr);
    auto bloom_off =
        bloom_off_session.Run(f->plan(), f->dfs(), bloom_off_opts, &pool);
    ASSERT_TRUE(bloom_off.ok()) << bloom_off.status();
    ExpectMatchesOracle(bloom_off->outputs, oracle->outputs, "bloom_off",
                        floats);
    EXPECT_EQ(PlanSignature(bloom_off->report.plan),
              PlanSignature(blind->report.plan));
    EXPECT_TRUE(SameCostBits(bloom_off->report.estimated_cost,
                             blind->report.estimated_cost));
    EXPECT_TRUE(
        SameCostBits(bloom_off->simulated_cost, blind->simulated_cost))
        << bloom_off->simulated_cost << " vs " << blind->simulated_cost;
    ASSERT_EQ(bloom_off->outputs.size(), blind->outputs.size());
    for (const auto& [id, rows] : blind->outputs) {
      EXPECT_TRUE(RowsBitIdentical(rows, bloom_off->outputs.at(id)))
          << "bloom-off raw output " << id << " differs";
    }

    // `bloom_on`: the sixth transformation enumerates for real. On
    // selective-join seeds the emitted plan grows probe pre-filters that
    // drop shuffle rows, but the outputs must still match the unoptimized
    // oracle — a Bloom false positive only passes a row the inner join
    // itself discards. Thread invariance (checked below) covers the
    // deterministic filter build.
    StubbyOptions bloom_on_opts = opts;
    bloom_on_opts.bloom_transfer = true;
    ReuseSession bloom_on_session(nullptr);
    auto bloom_on =
        bloom_on_session.Run(f->plan(), f->dfs(), bloom_on_opts, &pool);
    ASSERT_TRUE(bloom_on.ok()) << bloom_on.status();
    ExpectMatchesOracle(bloom_on->outputs, oracle->outputs, "bloom_on",
                        floats);

    // Mis-profiled (`reopt_misprofiled`): seeded multiplicative skew on
    // every profile-derived annotation (the data itself untouched),
    // adaptive on. The optimizer may pick — and mid-run splice to —
    // different plans, but outputs must still match the unoptimized
    // oracle, and nothing may depend on the thread count.
    Plan perturbed = f->plan();
    PerturbOptions perturb;
    perturb.seed = seed + 101;
    perturb.magnitude = 4.0;
    ASSERT_TRUE(PerturbProfiles(&perturbed, perturb).ok());
    ReuseSession mis_session(nullptr);
    auto mis = mis_session.Run(perturbed, f->dfs(), reopt_opts, &pool);
    ASSERT_TRUE(mis.ok()) << mis.status();
    ExpectMatchesOracle(mis->outputs, oracle->outputs, "reopt_misprofiled",
                        floats);

    by_threads[threads] = {Capture(*blind),     Capture(*batch_off),
                           Capture(*columnar_off),
                           Capture(*cold),      Capture(*warm1),
                           Capture(*warm2),     Capture(*posthoc),
                           Capture(*memo_on),   Capture(*memo_off),
                           Capture(*bloom_off), Capture(*bloom_on),
                           Capture(*reopt_on),  Capture(*mis)};
  }

  // Thread-count invariance: plans, cost bits, reuse counters, and raw
  // (pre-sort) outputs of every mode are identical at 1 and 4 threads.
  const std::vector<ModeResult>& t1 = by_threads.at(1);
  const std::vector<ModeResult>& t4 = by_threads.at(4);
  ASSERT_EQ(t1.size(), t4.size());
  static const char* kModes[] = {"blind",     "batch_off", "columnar_off",
                                 "cold",      "warm1",     "warm2",
                                 "posthoc",   "memo_on",   "memo_off",
                                 "bloom_off", "bloom_on",  "reopt_on",
                                 "reopt_misprofiled"};
  for (size_t i = 0; i < t1.size(); ++i) {
    SCOPED_TRACE(kModes[i]);
    EXPECT_EQ(t1[i].plan_signature, t4[i].plan_signature);
    EXPECT_TRUE(SameCostBits(t1[i].estimated_cost, t4[i].estimated_cost))
        << t1[i].estimated_cost << " vs " << t4[i].estimated_cost;
    EXPECT_EQ(t1[i].reuse_counters, t4[i].reuse_counters);
    ASSERT_EQ(t1[i].outputs.size(), t4[i].outputs.size());
    for (const auto& [id, rows] : t1[i].outputs) {
      ASSERT_EQ(t4[i].outputs.count(id), 1u);
      EXPECT_TRUE(RowsBitIdentical(rows, t4[i].outputs.at(id)))
          << "output " << id;
    }
  }

  // Daemon mode: the same workflow submitted three times by three tenants
  // through stubbyd — one shared store, one wave, speculative execution —
  // must land exactly where a sequential fresh-session loop does, at 1 and
  // at 4 threads. This replays every generator shape (joins included)
  // through the service's wave-OCC commit path.
  auto shared_plan = std::make_shared<const Plan>(f->plan());
  auto shared_dfs = std::make_shared<const Dfs>(f->dfs());
  std::vector<ModeResult> sequential;
  {
    ResultStore seq_store;
    ReuseSession seq_session(&seq_store);
    for (int i = 0; i < 3; ++i) {
      auto r = seq_session.Run(*shared_plan, *shared_dfs, StubbyOptions{});
      ASSERT_TRUE(r.ok()) << r.status();
      ExpectMatchesOracle(r->outputs, oracle->outputs,
                         "daemon-sequential " + std::to_string(i), floats);
      sequential.push_back(Capture(*r));
    }
    for (int threads : {1, 4}) {
      SCOPED_TRACE("daemon threads=" + std::to_string(threads));
      ServiceOptions service_options;
      service_options.wave_size = 3;
      ThreadPool pool(threads);
      StubbyService service(service_options, &pool);
      for (int i = 0; i < 3; ++i) {
        Submission sub;
        sub.tenant = "t" + std::to_string(i);
        sub.name = "seed" + std::to_string(seed);
        sub.plan = shared_plan;
        sub.dfs = shared_dfs;
        ASSERT_TRUE(service.Submit(std::move(sub)).ok());
      }
      std::vector<RequestResult> results = service.Drain();
      ASSERT_EQ(results.size(), 3u);
      for (int i = 0; i < 3; ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        ASSERT_TRUE(results[i].status.ok()) << results[i].status;
        ModeResult got = Capture(results[i].session);
        EXPECT_EQ(got.plan_signature, sequential[i].plan_signature);
        EXPECT_TRUE(SameCostBits(got.estimated_cost,
                                 sequential[i].estimated_cost))
            << got.estimated_cost << " vs " << sequential[i].estimated_cost;
        EXPECT_EQ(got.reuse_counters, sequential[i].reuse_counters);
        ASSERT_EQ(got.outputs.size(), sequential[i].outputs.size());
        for (const auto& [id, rows] : got.outputs) {
          EXPECT_TRUE(
              RowsBitIdentical(rows, sequential[i].outputs.at(id)))
              << "raw output " << id;
        }
      }
      EXPECT_EQ(service.store().Serialize(), seq_store.Serialize());
      EXPECT_EQ(service.store().num_pins(), 0u);
    }
  }
}

/// Seed count, overridable for the nightly-style deep run: the CI `slow`
/// job sets STUBBY_DIFF_SEEDS to sweep a larger slice of the generator
/// space than the default per-commit budget allows.
int SeedCount() {
  const char* env = std::getenv("STUBBY_DIFF_SEEDS");
  if (env == nullptr) return 25;
  const int n = std::atoi(env);
  return n > 0 ? n : 25;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialEquivalence,
                         ::testing::Range(0, SeedCount()));

}  // namespace
}  // namespace stubby

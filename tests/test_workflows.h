// Shared helpers for tests: tiny synthetic workflows with known semantics,
// plus profile/execute/compare utilities.

#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "exec/workflow_runner.h"
#include "profiler/profiler.h"
#include "workloads/builder.h"
#include "workloads/udfs.h"

namespace stubby::testing {

constexpr uint64_t kGB = 1ull << 30;

/// A two-job chain over <K, Z, V>: Jp groups by (K, Z) summing V, Jc groups
/// by (K) summing the partial sums. Fully annotated; the classic vertical
/// packing candidate (Jc's grouping is a prefix of Jp's).
inline Result<WorkflowFactory> MakeChain(int rows = 4000, int distinct_k = 50,
                                         int distinct_z = 40,
                                         uint64_t logical_bytes = 16 * kGB,
                                         uint64_t seed = 21) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(seed);
  Schema in_schema({"K", "Z", "V"});
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back(Row{rng.NextInt(0, distinct_k - 1),
                       rng.NextInt(0, distinct_z - 1),
                       rng.NextDouble(0, 10)});
  }
  Layout layout;
  STUBBY_RETURN_NOT_OK(
      f.AddBase("IN", in_schema, layout, 8, std::move(data), logical_bytes));
  Schema mid({"K", "Z", "S"});
  Schema out({"K", "T"});
  STUBBY_RETURN_NOT_OK(f.AddDataset("MID", mid));
  STUBBY_RETURN_NOT_OK(f.AddDataset("OUT", out, /*workflow_output=*/true));
  {
    WorkflowFactory::JobDef j;
    j.id = "Jp";
    j.inputs = {In("IN", {})};
    j.map_output_schema = in_schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_kz", in_schema, {"K", "Z"}, {{"V", AggOp::kSum, "S"}}),
        {"K", "Z"})};
    j.combiner = AggCombine("combine_kz", in_schema, {"K", "Z"},
                            {{"V", AggOp::kSum, "V"}});
    j.output = "MID";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"K", "Z"};
    sa.v1 = FieldSet{"V"};
    sa.k2 = FieldSet{"K", "Z"};
    sa.v2 = FieldSet{"V"};
    sa.k3 = FieldSet{"K", "Z"};
    sa.v3 = FieldSet{"S"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  {
    WorkflowFactory::JobDef j;
    j.id = "Jc";
    j.inputs = {In("MID", {})};
    j.map_output_schema = mid;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_k", mid, {"K"}, {{"S", AggOp::kSum, "T"}}), {"K"})};
    j.sort_extra = {"Z"};
    j.output = "OUT";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"K", "Z"};
    sa.v1 = FieldSet{"S"};
    sa.k2 = FieldSet{"K"};
    sa.v2 = FieldSet{"Z", "S"};
    sa.k3 = FieldSet{"K"};
    sa.v3 = FieldSet{"T"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  return f;
}

/// Two sibling aggregation jobs over one input (horizontal candidates).
inline Result<WorkflowFactory> MakeSiblings(int rows = 4000,
                                            uint64_t logical_bytes = 16 * kGB,
                                            uint64_t seed = 22) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(seed);
  Schema in_schema({"G", "X", "V"});
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back(Row{rng.NextInt(0, 99), rng.NextDouble(0, 100),
                       rng.NextDouble(0, 10)});
  }
  Layout layout;
  STUBBY_RETURN_NOT_OK(
      f.AddBase("IN", in_schema, layout, 8, std::move(data), logical_bytes));
  Schema out_a({"G", "SA"});
  Schema out_b({"G", "MB"});
  STUBBY_RETURN_NOT_OK(f.AddDataset("OA", out_a, true));
  STUBBY_RETURN_NOT_OK(f.AddDataset("OB", out_b, true));
  auto add = [&](const std::string& id, AggOp op, const std::string& field,
                 const std::string& output) -> Status {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In("IN", {})};
    j.map_output_schema = in_schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("agg_" + id, in_schema, {"G"}, {{"V", op, field}}), {"G"})};
    j.output = output;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"G"};
    sa.v1 = FieldSet{"X", "V"};
    sa.k2 = FieldSet{"G"};
    sa.v2 = FieldSet{"X", "V"};
    sa.k3 = FieldSet{"G"};
    sa.v3 = FieldSet{field};
    j.schema_ann = sa;
    return f.AddJob(std::move(j));
  };
  STUBBY_RETURN_NOT_OK(add("Ja", AggOp::kSum, "SA", "OA"));
  STUBBY_RETURN_NOT_OK(add("Jb", AggOp::kMax, "MB", "OB"));
  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  return f;
}

/// Profiles a plan in place against the factory's data.
inline void ProfileInPlace(WorkflowFactory* f) {
  Profiler profiler(ClusterSpec{});
  Dfs dfs = f->dfs();
  ASSERT_TRUE(profiler.ProfilePlan(&f->plan(), &dfs).ok());
}

/// Runs `plan` on a copy of the factory's base data; returns the dataflow.
inline WorkflowDataflow RunOn(const WorkflowFactory& f, const Plan& plan,
                              Dfs* out_dfs = nullptr) {
  WorkflowRunner runner(plan.cluster());
  Dfs dfs = const_cast<WorkflowFactory&>(f).dfs();
  auto flow = runner.Run(plan, &dfs);
  EXPECT_TRUE(flow.ok()) << flow.status();
  if (out_dfs != nullptr) *out_dfs = dfs;
  return flow.ok() ? *flow : WorkflowDataflow{};
}

/// Asserts that two plans produce (approximately) identical rows on every
/// workflow-output dataset.
inline void ExpectEquivalent(const WorkflowFactory& f, const Plan& a,
                             const Plan& b) {
  Dfs da, db;
  RunOn(f, a, &da);
  RunOn(f, b, &db);
  for (const auto& [id, ds] : a.datasets()) {
    if (!ds.is_workflow_output) continue;
    auto ra = da.Get(id);
    auto rb = db.Get(id);
    ASSERT_TRUE(ra.ok() && rb.ok()) << id;
    EXPECT_TRUE(RowsApproxEqual((*ra)->AllRows(), (*rb)->AllRows(), 1e-6))
        << "output mismatch on " << id;
  }
}

}  // namespace stubby::testing

// Tests for baselines/: the Pig Baseline, Starfish, YSmart, and MRShare
// comparators — each must implement its published decision rule and stay
// result-equivalent.

#include <gtest/gtest.h>

#include "baselines/mrshare.h"
#include "baselines/pig_baseline.h"
#include "baselines/starfish.h"
#include "baselines/ysmart.h"
#include "test_workflows.h"

namespace stubby {
namespace {

using ::stubby::testing::ExpectEquivalent;
using ::stubby::testing::MakeChain;
using ::stubby::testing::MakeSiblings;
using ::stubby::testing::ProfileInPlace;

TEST(PigBaselineTest, PacksSharedInputSiblingsAlways) {
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  auto baseline = PigBaseline(f->plan());
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->num_jobs(), 1u);  // rule-based: packs whenever possible
  ProfileInPlace(&*f);
  ExpectEquivalent(*f, f->plan(), *baseline);
}

TEST(PigBaselineTest, AppliesRulesOfThumbConfigs) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  auto baseline = PigBaseline(f->plan());
  ASSERT_TRUE(baseline.ok());
  for (const auto& [jid, job] : baseline->jobs()) {
    // ~1 reducer per GB of annotated input, not the untouched default.
    EXPECT_GT(job.config.num_reduce_tasks, 1) << jid;
  }
}

TEST(PigBaselineTest, DoesNotPackVertically) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  auto baseline = PigBaseline(f->plan());
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(baseline->num_jobs(), 2u);
}

TEST(StarfishTest, TunesConfigsWithoutStructuralChange) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  auto tuned = StarfishOptimize(f->plan());
  ASSERT_TRUE(tuned.ok());
  EXPECT_EQ(tuned->num_jobs(), 2u);
  EXPECT_EQ(PlanSignature(*tuned), PlanSignature(f->plan()));
  ExpectEquivalent(*f, f->plan(), *tuned);
  // And the tuning should beat the untouched defaults.
  WhatIfEngine whatif(f->plan().cluster());
  EXPECT_LT(whatif.Cost(*tuned).cost, whatif.Cost(f->plan()).cost);
}

TEST(YSmartTest, AggressivelyMinimizesJobCount) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  auto packed = YSmartOptimize(f->plan());
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->num_jobs(), 1u);  // rule-based, no cost check
  ExpectEquivalent(*f, f->plan(), *packed);
}

TEST(YSmartTest, PacksSiblingsEvenWhenCostly) {
  auto f = MakeSiblings(2000, /*logical_bytes=*/1 * ::stubby::testing::kGB);
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  auto packed = YSmartOptimize(f->plan());
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(packed->num_jobs(), 1u);  // the PJ mistake, by design
}

TEST(MRShareTest, OnlySharedScanPacking) {
  auto chain = MakeChain();
  ASSERT_TRUE(chain.ok());
  ProfileInPlace(&*chain);
  auto out = MRShareOptimize(chain->plan());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_jobs(), 2u);  // no vertical packing in MRShare

  auto siblings = MakeSiblings();
  ASSERT_TRUE(siblings.ok());
  ProfileInPlace(&*siblings);
  auto out2 = MRShareOptimize(siblings->plan());
  ASSERT_TRUE(out2.ok());
  // Cost-based: pack or not, but always equivalent and rule-configured.
  ExpectEquivalent(*siblings, siblings->plan(), *out2);
}

}  // namespace
}  // namespace stubby

// Tests for common/: Status, Result, Rng, and string helpers.

#include <gtest/gtest.h>

#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace stubby {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "invalid_argument: bad thing");
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "not_found");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "failed_precondition");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    STUBBY_RETURN_NOT_OK(Status::Internal("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Internal("boom");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    STUBBY_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 6);
  EXPECT_FALSE(outer(true).ok());
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, NextIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ZipfIsSkewedAndInRange) {
  Rng rng(11);
  int ones = 0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t v = rng.NextZipf(1000, 1.2);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 1000u);
    if (v == 1) ++ones;
  }
  // Rank 1 should dominate clearly under a Zipf(1.2) law.
  EXPECT_GT(ones, 500);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.Fork();
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(a.Next());
    seen.insert(b.Next());
  }
  EXPECT_GT(seen.size(), 195u);  // no obvious overlap
}

TEST(RngTest, ShuffleKeepsElements) {
  Rng rng(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.239), "1.24");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(3ull << 30), "3.0 GB");
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(42.13), "42.1s");
  EXPECT_EQ(HumanSeconds(125), "2m05.0s");
}

TEST(StringsTest, HashIsStableAndSpreads) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

}  // namespace
}  // namespace stubby

// Tests for mr/row_batch.h and the batch pipeline runner: the columnar
// accounting helpers must reproduce per-Row results exactly (including
// empty batches and narrowed selections), and BatchPipelineRunner must
// match PipelineRunner bit-for-bit on outputs and counters — the invariants
// the vectorized executor paths are built on.

#include "mr/row_batch.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/wrappers.h"
#include "mr/functions.h"
#include "mr/partitioner.h"
#include "workloads/udfs.h"

namespace stubby {
namespace {

std::vector<Row> MixedRows() {
  return {Row{int64_t{1}, 2.5, "alpha"}, Row{int64_t{7}, -0.25, ""},
          Row{int64_t{-3}, 1e18, "a much longer string value"},
          Row{int64_t{0}, 0.0, "z"}};
}

TEST(RowBatchTest, RoundTripAndAccountingParity) {
  std::vector<Row> rows = MixedRows();
  RowBatch batch = RowBatch::FromRows(rows, 3);
  ASSERT_EQ(batch.num_rows(), rows.size());
  ASSERT_EQ(batch.physical_rows(), rows.size());
  ASSERT_EQ(batch.num_columns(), 3u);

  EXPECT_EQ(batch.ToRows(), rows);
  uint64_t total = 0;
  const std::vector<size_t> fields = {2, 0};
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch.MaterializeRow(i), rows[i]);
    EXPECT_EQ(batch.RowSerializedSize(i), rows[i].SerializedSize());
    EXPECT_EQ(batch.RowHash(i), rows[i].Hash());
    EXPECT_EQ(batch.HashOnFields(i, fields), HashOnFields(rows[i], fields));
    total += rows[i].SerializedSize();
    for (size_t j = 0; j < rows.size(); ++j) {
      EXPECT_EQ(batch.Compare(i, j, fields),
                CompareOnFields(rows[i], rows[j], fields));
    }
  }
  EXPECT_EQ(batch.TotalSerializedBytes(), total);
}

TEST(RowBatchTest, EmptyBatch) {
  RowBatch batch = RowBatch::FromRows({}, 3);
  EXPECT_EQ(batch.num_rows(), 0u);
  EXPECT_EQ(batch.physical_rows(), 0u);
  EXPECT_EQ(batch.num_columns(), 3u);
  EXPECT_EQ(batch.TotalSerializedBytes(), 0u);
  EXPECT_TRUE(batch.ToRows().empty());
  batch.AppendConstColumn(Value(int64_t{5}));
  EXPECT_EQ(batch.num_columns(), 4u);
  EXPECT_EQ(batch.num_rows(), 0u);
}

TEST(RowBatchTest, SelectionNarrowsAccountingToLiveRows) {
  std::vector<Row> rows = MixedRows();
  RowBatch batch = RowBatch::FromRows(rows, 3);
  // Keep physical rows 1 and 3.
  batch.FilterSelection([](uint32_t phys) { return phys % 2 == 1; });
  ASSERT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.physical_rows(), rows.size());  // columns untouched
  EXPECT_EQ(batch.MaterializeRow(0), rows[1]);
  EXPECT_EQ(batch.MaterializeRow(1), rows[3]);
  EXPECT_EQ(batch.TotalSerializedBytes(),
            rows[1].SerializedSize() + rows[3].SerializedSize());
  EXPECT_EQ(batch.RowHash(1), rows[3].Hash());
  const std::vector<size_t> fields = {1};
  EXPECT_EQ(batch.Compare(0, 1, fields),
            CompareOnFields(rows[1], rows[3], fields));
  // Filtering to nothing leaves a valid empty batch.
  batch.FilterSelection([](uint32_t) { return false; });
  EXPECT_EQ(batch.num_rows(), 0u);
  EXPECT_EQ(batch.TotalSerializedBytes(), 0u);
}

TEST(RowBatchTest, StructuralKernelsMatchRowOperations) {
  std::vector<Row> rows = MixedRows();
  RowBatch batch = RowBatch::FromRows(rows, 3);
  batch.AppendConstColumn(Value("tag"));
  batch.ProjectColumns({3, 1});
  const std::vector<size_t> project = {1};
  for (size_t i = 0; i < rows.size(); ++i) {
    Row want = rows[i];
    want.Append(Value("tag"));
    want = want.Project({3, 1});
    EXPECT_EQ(batch.MaterializeRow(i), want);
    EXPECT_EQ(batch.RowSerializedSize(i), want.SerializedSize());
    EXPECT_EQ(batch.RowHash(i), want.Hash());
  }
}

TEST(RowBatchTest, PartitionerAgreesWithRowPath) {
  Rng rng(11);
  std::vector<Row> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back(Row{rng.NextInt(0, 40), rng.NextInt(0, 9)});
  }
  RowBatch batch = RowBatch::FromRows(rows, 2);
  Schema schema({"k", "g"});

  Partitioner hash = *Partitioner::Make(PartitionSpec::DefaultFor({"k"}),
                                        schema);
  PartitionSpec range_spec;
  range_spec.type = PartitionType::kRange;
  range_spec.partition_fields = {"k"};
  range_spec.sort_fields = {"k"};
  range_spec.split_points = {Row{int64_t{10}}, Row{int64_t{25}}};
  Partitioner range = *Partitioner::Make(range_spec, schema, 3);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(hash.PartitionOf(batch, i, 7), hash.PartitionOf(rows[i], 7));
    EXPECT_EQ(range.PartitionOf(batch, i, 3), range.PartitionOf(rows[i], 3));
  }
}

// The load-bearing equivalence: a batch pipeline of filter / project /
// append-const / sample stages must match the record-at-a-time
// PipelineRunner exactly — outputs in order, rows_in/rows_out, and
// cpu_units down to the floating-point bit (same addition order).
TEST(BatchPipelineRunnerTest, MatchesRowPipelineBitForBit) {
  Rng rng(23);
  Schema schema({"A", "B", "V"});
  std::vector<Row> rows;
  for (int i = 0; i < 500; ++i) {
    rows.push_back(
        Row{rng.NextInt(0, 50), rng.NextInt(0, 5), rng.NextDouble(0, 100)});
  }

  std::vector<Stage> stages;
  stages.push_back(
      Stage::Map(FilterRangeMap("f1", schema, "V", 5.0, 80.0, 0.7)));
  stages.push_back(
      Stage::Map(AppendConstMap("c1", schema, "T", Value(int64_t{9}), 0.3)));
  Schema with_tag = schema.Concat(Schema({"T"}));
  stages.push_back(Stage::Map(ProjectMap("p1", with_tag, {"A", "V", "T"})));
  Schema projected({"A", "V", "T"});
  stages.push_back(
      Stage::Map(SampleMap("s1", projected, 3, {"A", "V"}, 0.4)));
  ASSERT_TRUE(BatchPipelineRunner::Eligible(stages));

  VectorEmitter row_out;
  auto row_runner = PipelineRunner::Make(stages, schema, &row_out, nullptr);
  ASSERT_TRUE(row_runner.ok());
  for (const Row& r : rows) (*row_runner)->Emit(r);
  (*row_runner)->Finish();

  BatchPipelineRunner batch_runner = BatchPipelineRunner::Make(stages);
  RowBatch out = batch_runner.Run(RowBatch::FromRows(rows, schema.size()));

  EXPECT_EQ(out.ToRows(), row_out.rows());
  const PipelineCounters& rc = (*row_runner)->counters();
  const PipelineCounters& bc = batch_runner.counters();
  EXPECT_EQ(bc.rows_in, rc.rows_in);
  EXPECT_EQ(bc.rows_out, rc.rows_out);
  // Bit-exact: the batch runner replays the same additions in order.
  EXPECT_EQ(bc.cpu_units, rc.cpu_units);
}

TEST(BatchPipelineRunnerTest, EmptyPipelinePassesBatchesThrough) {
  std::vector<Row> rows = MixedRows();
  BatchPipelineRunner runner = BatchPipelineRunner::Make({});
  RowBatch out = runner.Run(RowBatch::FromRows(rows, 3));
  EXPECT_EQ(out.ToRows(), rows);
  EXPECT_EQ(runner.counters().rows_in, rows.size());
  EXPECT_EQ(runner.counters().rows_out, rows.size());
  EXPECT_EQ(runner.counters().cpu_units, 0.0);
}

TEST(BatchPipelineRunnerTest, EligibilityRules) {
  Schema schema({"A", "B", "V"});
  // Reduce stages, tee stages, and batchless maps all disqualify.
  std::vector<Stage> reduce = {Stage::Reduce(
      AggReduce("r", schema, {"A"}, {{"V", AggOp::kSum, "S"}}), {"A"})};
  EXPECT_FALSE(BatchPipelineRunner::Eligible(reduce));

  Stage teed = Stage::Map(MakeIdentityMap(schema));
  teed.tee_dataset = "SIDE";
  EXPECT_FALSE(BatchPipelineRunner::Eligible({teed}));

  auto batchless = std::make_shared<LambdaMapFn>(
      "nobatch", schema, schema,
      [](const Row& r, Emitter* out) { out->Emit(r); });
  EXPECT_FALSE(BatchPipelineRunner::Eligible({Stage::Map(batchless)}));

  EXPECT_TRUE(BatchPipelineRunner::Eligible({Stage::Map(MakeIdentityMap(
      schema))}));
}

}  // namespace
}  // namespace stubby

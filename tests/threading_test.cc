// Tests of the deterministic task-parallel core: the work-stealing
// ThreadPool and its fork-join primitives, the CostCacheOverlay and
// ProbeCacheOverlay snapshot/merge protocols, and the batch-structured
// RRS — the pieces whose contract is "any thread count, any steal
// schedule, identical bits".

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <thread>
#include <vector>

#include "common/threading.h"
#include "cost/cost_cache.h"
#include "optimizer/rrs.h"
#include "reuse/probe_cache.h"

namespace stubby {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, HandlesEdgeSizes) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
  // Fewer tasks than threads.
  pool.ParallelFor(2, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, ClampsThreadCountAndReportsHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1);
  ThreadPool pool2(-5);
  EXPECT_EQ(pool2.threads(), 1);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, ParallelMapPreservesSubmissionOrder) {
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    auto out =
        pool.ParallelMap<int>(257, [](size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 257u);
    for (size_t i = 0; i < out.size(); ++i) {
      ASSERT_EQ(out[i], static_cast<int>(i) * 3);
    }
  }
}

TEST(ThreadPoolTest, NestedParallelForExecutesInlineWithoutDeadlock) {
  ThreadPool pool(4);
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  std::vector<int> outer_sums(16, 0);
  pool.ParallelFor(16, [&](size_t i) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested call must run inline on this thread — a fixed pool whose
    // workers all block on inner batches would deadlock here.
    int sum = 0;
    pool.ParallelFor(64, [&](size_t j) { sum += static_cast<int>(j); });
    outer_sums[i] = sum;
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  for (int s : outer_sums) EXPECT_EQ(s, 64 * 63 / 2);
}

TEST(ThreadPoolTest, ConcurrentTopLevelCallsSerialize) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  auto submit = [&] {
    for (int k = 0; k < 20; ++k) {
      pool.ParallelFor(50, [&](size_t) { total.fetch_add(1); });
    }
  };
  std::thread a(submit), b(submit);
  a.join();
  b.join();
  EXPECT_EQ(total.load(), 2 * 20 * 50);
}

TEST(ThreadPoolTest, SkewedTaskDurationsStillRunEveryIndexOnce) {
  // Adversarial skew: a handful of tasks are orders of magnitude heavier
  // than the rest, and the heavy indices land in the same deque under the
  // round-robin deal. Correctness must not depend on who ends up running
  // what.
  for (bool stealing : {true, false}) {
    ThreadPool::Options opts;
    opts.work_stealing = stealing;
    ThreadPool pool(8, opts);
    constexpr size_t kN = 512;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      // Indices 0 and 1 spin ~100x longer than the rest.
      volatile uint64_t sink = 0;
      const uint64_t spins = (i < 2) ? 200000 : 2000;
      for (uint64_t s = 0; s < spins; ++s) sink += s;
      hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "stealing=" << stealing << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, SkewedDurationsAreBitIdenticalAcrossSchedules) {
  // The ordered-merge sum must not depend on thread count, on stealing
  // being on or off, or on which chunks got stolen — duration skew makes
  // the steal schedule maximally timing-dependent, so run it both ways at
  // several widths and demand the serial bits every time.
  constexpr size_t kN = 300;
  auto run = [&](int threads, bool stealing) {
    ThreadPool::Options opts;
    opts.work_stealing = stealing;
    ThreadPool pool(threads, opts);
    std::vector<double> slots(kN);
    pool.ParallelFor(kN, [&](size_t i) {
      volatile uint64_t sink = 0;
      const uint64_t spins = (i % 67 == 0) ? 150000 : 500;
      for (uint64_t s = 0; s < spins; ++s) sink += s;
      slots[i] = std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (i + 1.0);
    });
    double sum = 0.0;
    for (double v : slots) sum += v;
    return sum;
  };
  const double serial = run(1, false);
  for (int threads : {1, 2, 4, 8}) {
    for (bool stealing : {true, false}) {
      EXPECT_EQ(run(threads, stealing), serial)
          << "threads=" << threads << " stealing=" << stealing;
    }
  }
}

TEST(ThreadPoolTest, StragglerChunksAreStolen) {
  // One task blocks until every other task has finished. The blocked
  // participant still owns undealt chunks in its deque, so the batch can
  // only complete if the other participants steal them — this test both
  // proves the steal path runs and exercises batch completion by a thief.
  ThreadPool::Options opts;
  opts.work_stealing = true;
  opts.chunks_per_thread = 8;
  ThreadPool pool(4, opts);
  pool.ResetStats();
  constexpr size_t kN = 256;
  // Chunk size is a pure function of (n, threads, chunks_per_thread); the
  // blocked chunk's other indices live nowhere else, so the wait target
  // must exclude the whole chunk, not just the blocked index.
  constexpr size_t kChunk = kN / (4 * 8);
  std::atomic<size_t> finished{0};
  std::atomic<bool> timed_out{false};
  // Block the *caller's first task*: the caller claims the back chunk of
  // its own deque before any worker can, so blocking there pins a deque
  // that still holds chunks only thieves can reach.
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> caller_blocked{false};
  pool.ParallelFor(kN, [&](size_t i) {
    (void)i;
    if (std::this_thread::get_id() == caller &&
        !caller_blocked.exchange(true)) {
      auto deadline = std::chrono::steady_clock::now() +
                      std::chrono::seconds(30);
      while (finished.load() < kN - kChunk) {
        if (std::chrono::steady_clock::now() > deadline) {
          timed_out.store(true);
          break;
        }
        std::this_thread::yield();
      }
    }
    finished.fetch_add(1);
  });
  EXPECT_FALSE(timed_out.load())
      << "other participants never drained the blocked deque";
  EXPECT_EQ(finished.load(), kN);
  EXPECT_GE(pool.stats().steals, 1u);
}

TEST(ThreadPoolTest, StatsCountBatchesTasksAndChunks) {
  ThreadPool::Options opts;
  opts.chunks_per_thread = 4;
  ThreadPool pool(4, opts);
  constexpr size_t kN = 1000;
  pool.ParallelFor(kN, [](size_t) {});
  pool.ParallelFor(kN, [](size_t) {});
  ThreadPool::Stats s = pool.stats();
  EXPECT_EQ(s.batches, 2u);
  EXPECT_EQ(s.tasks, 2 * kN);
  // 4 threads x 4 chunks/thread target -> many chunks per batch.
  EXPECT_GE(s.chunks, 2 * 4u);
  pool.ResetStats();
  s = pool.stats();
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(s.tasks, 0u);
}

TEST(ThreadPoolTest, StealingOffNeverSteals) {
  ThreadPool::Options opts;
  opts.work_stealing = false;
  ThreadPool pool(8, opts);
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(333, [](size_t i) {
      volatile uint64_t sink = 0;
      for (uint64_t s = 0; s < (i % 5) * 1000; ++s) sink += s;
    });
  }
  EXPECT_EQ(pool.stats().steals, 0u);
  EXPECT_EQ(pool.stats().tasks, 20u * 333u);
}

TEST(RunTasksTest, NullPoolRunsInlineInIndexOrder) {
  std::vector<size_t> order;
  RunTasks(nullptr, 10, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(RunTasksTest, OrderedMergeIsBitIdenticalAcrossThreadCounts) {
  // The idiom all call sites use: pure tasks fill their own slot, a serial
  // in-order merge accumulates. Float accumulation order is then fixed, so
  // the sum is bit-identical at every thread count.
  constexpr size_t kN = 500;
  auto run = [&](ThreadPool* pool) {
    std::vector<double> slots(kN);
    RunTasks(pool, kN, [&](size_t i) {
      slots[i] = std::sin(static_cast<double>(i)) * 1e-3 + 1.0 / (i + 1.0);
    });
    double sum = 0.0;
    for (double v : slots) sum += v;
    return sum;
  };
  const double serial = run(nullptr);
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(run(&pool), serial) << "threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// CostCacheOverlay

CostKey Key(uint64_t n) { return {n, ~n}; }

CostEstimate Est(double cost) {
  CostEstimate e;
  e.cost = cost;
  return e;
}

TEST(CostCacheOverlayTest, ReadsFallThroughWritesStayLocal) {
  CostCache cache;
  cache.InsertPlan(Key(1), Est(10.0));

  CostCacheOverlay overlay(&cache);
  const CostEstimate* hit = overlay.FindPlan(Key(1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cost, 10.0);
  EXPECT_EQ(overlay.FindPlan(Key(2)), nullptr);

  overlay.InsertPlan(Key(2), Est(20.0));
  ASSERT_NE(overlay.FindPlan(Key(2)), nullptr);
  EXPECT_EQ(overlay.FindPlan(Key(2))->cost, 20.0);
  // The shared store must not see the overlay's write until the merge.
  EXPECT_EQ(cache.PeekPlan(Key(2)), nullptr);
}

TEST(CostCacheOverlayTest, LocalWriteShadowsParent) {
  CostCache cache;
  cache.InsertPlan(Key(1), Est(10.0));
  CostCacheOverlay overlay(&cache);
  overlay.InsertPlan(Key(1), Est(99.0));
  EXPECT_EQ(overlay.FindPlan(Key(1))->cost, 99.0);
  EXPECT_EQ(overlay.PeekPlan(Key(1))->cost, 99.0);
  EXPECT_EQ(cache.PeekPlan(Key(1))->cost, 10.0);
}

TEST(CostCacheOverlayTest, MergeReplaysInsertsAndRecency) {
  // plan_capacity 2 → a single shard with exact global LRU order, so the
  // journaled Touch must decide the eviction victim after the merge.
  CostCache::Options opts;
  opts.plan_capacity = 2;
  CostCache cache(opts);
  cache.InsertPlan(Key(1), Est(1.0));
  cache.InsertPlan(Key(2), Est(2.0));  // LRU order now: 2 (fresh), 1

  CostCacheOverlay overlay(&cache);
  ASSERT_NE(overlay.FindPlan(Key(1)), nullptr);  // journals a touch of 1
  overlay.MergeInto(&cache);                     // LRU order now: 1, 2

  cache.InsertPlan(Key(3), Est(3.0));  // evicts 2, the least recent
  EXPECT_NE(cache.PeekPlan(Key(1)), nullptr);
  EXPECT_EQ(cache.PeekPlan(Key(2)), nullptr);
  EXPECT_NE(cache.PeekPlan(Key(3)), nullptr);
}

TEST(CostCacheOverlayTest, MergeWritesLocalInsertsIntoStore) {
  CostCache cache;
  CostCacheOverlay overlay(&cache);
  overlay.InsertPlan(Key(7), Est(7.0));
  CostJobEntry job;
  job.times.map_avg_sec = 3.5;
  overlay.InsertJob(Key(8), job);
  overlay.MergeInto(&cache);
  ASSERT_NE(cache.PeekPlan(Key(7)), nullptr);
  EXPECT_EQ(cache.PeekPlan(Key(7))->cost, 7.0);
  ASSERT_NE(cache.PeekJob(Key(8)), nullptr);
  EXPECT_EQ(cache.PeekJob(Key(8))->times.map_avg_sec, 3.5);
}

TEST(CostCacheOverlayTest, OverlaysNestOverOverlays) {
  CostCache cache;
  cache.InsertPlan(Key(1), Est(1.0));
  CostCacheOverlay outer(&cache);
  outer.InsertPlan(Key(2), Est(2.0));

  CostCacheOverlay inner(&outer);
  EXPECT_EQ(inner.FindPlan(Key(1))->cost, 1.0);  // through both layers
  EXPECT_EQ(inner.FindPlan(Key(2))->cost, 2.0);  // from the outer overlay
  inner.InsertPlan(Key(3), Est(3.0));
  EXPECT_EQ(outer.PeekPlan(Key(3)), nullptr);

  inner.MergeInto(&outer);
  ASSERT_NE(outer.PeekPlan(Key(3)), nullptr);
  EXPECT_EQ(outer.PeekPlan(Key(3))->cost, 3.0);
  outer.MergeInto(&cache);
  ASSERT_NE(cache.PeekPlan(Key(3)), nullptr);
  EXPECT_EQ(cache.PeekPlan(Key(2))->cost, 2.0);
}

TEST(CostCacheOverlayTest, NullParentMissesUntilWritten) {
  CostCacheOverlay overlay(nullptr);
  EXPECT_EQ(overlay.FindPlan(Key(1)), nullptr);
  overlay.InsertPlan(Key(1), Est(5.0));
  EXPECT_EQ(overlay.FindPlan(Key(1))->cost, 5.0);
}

TEST(CostCacheOverlayTest, SnapshotMergeMatchesSerialExecution) {
  // Two identical optimizer runs, one routing all cache traffic through
  // per-task overlays merged in submission order, one writing the shared
  // cache directly in the same order — the final cache contents must agree.
  auto direct = std::make_unique<CostCache>();
  auto overlaid = std::make_unique<CostCache>();
  for (uint64_t task = 0; task < 4; ++task) {
    // Direct, serial.
    for (uint64_t k = 0; k < 3; ++k) {
      if (direct->FindPlan(Key(task * 3 + k)) == nullptr) {
        direct->InsertPlan(Key(task * 3 + k), Est(double(task * 3 + k)));
      }
    }
  }
  std::vector<std::unique_ptr<CostCacheOverlay>> overlays;
  for (uint64_t task = 0; task < 4; ++task) {
    overlays.push_back(std::make_unique<CostCacheOverlay>(overlaid.get()));
    for (uint64_t k = 0; k < 3; ++k) {
      if (overlays.back()->FindPlan(Key(task * 3 + k)) == nullptr) {
        overlays.back()->InsertPlan(Key(task * 3 + k),
                                    Est(double(task * 3 + k)));
      }
    }
  }
  for (const auto& o : overlays) o->MergeInto(overlaid.get());
  EXPECT_EQ(direct->plan_entries(), overlaid->plan_entries());
  for (uint64_t n = 0; n < 12; ++n) {
    const CostEstimate* a = direct->PeekPlan(Key(n));
    const CostEstimate* b = overlaid->PeekPlan(Key(n));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->cost, b->cost);
  }
}

// ---------------------------------------------------------------------------
// ProbeCacheOverlay

TEST(ProbeCacheTest, InsertIsFirstWriteWins) {
  ReuseProbeCache cache;
  EXPECT_EQ(cache.Peek(Key(1)), nullptr);
  cache.Insert(Key(1), Key(10));
  cache.Insert(Key(1), Key(99));  // loses: signatures are content-addressed
  ASSERT_NE(cache.Peek(Key(1)), nullptr);
  EXPECT_EQ(*cache.Peek(Key(1)), Key(10));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProbeCacheOverlayTest, ReadsFallThroughWritesStayLocal) {
  ReuseProbeCache cache;
  cache.Insert(Key(1), Key(10));
  ProbeCacheOverlay overlay(&cache);
  ASSERT_NE(overlay.Peek(Key(1)), nullptr);
  EXPECT_EQ(*overlay.Peek(Key(1)), Key(10));
  overlay.Insert(Key(2), Key(20));
  ASSERT_NE(overlay.Peek(Key(2)), nullptr);
  // The shared memo must not see the overlay's write until the merge.
  EXPECT_EQ(cache.Peek(Key(2)), nullptr);
  overlay.MergeInto(&cache);
  ASSERT_NE(cache.Peek(Key(2)), nullptr);
  EXPECT_EQ(*cache.Peek(Key(2)), Key(20));
}

TEST(ProbeCacheOverlayTest, MergedContentsMatchSerialExecution) {
  // Overlapping inserts from overlay tasks, merged in submission order,
  // must leave exactly the contents a serial run writing the shared memo
  // directly would have produced (insert-only makes any order agree).
  ReuseProbeCache direct;
  for (uint64_t task = 0; task < 4; ++task) {
    for (uint64_t k = 0; k < 3; ++k) {
      if (direct.Peek(Key(k + task)) == nullptr) {
        direct.Insert(Key(k + task), Key(100 + k + task));
      }
    }
  }
  ReuseProbeCache merged;
  std::vector<std::unique_ptr<ProbeCacheOverlay>> overlays;
  for (uint64_t task = 0; task < 4; ++task) {
    overlays.push_back(std::make_unique<ProbeCacheOverlay>(&merged));
    for (uint64_t k = 0; k < 3; ++k) {
      if (overlays.back()->Peek(Key(k + task)) == nullptr) {
        overlays.back()->Insert(Key(k + task), Key(100 + k + task));
      }
    }
  }
  for (const auto& o : overlays) o->MergeInto(&merged);
  EXPECT_EQ(merged.size(), direct.size());
  for (uint64_t n = 0; n < 6; ++n) {
    const CostKey* a = direct.Peek(Key(n));
    const CostKey* b = merged.Peek(Key(n));
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(*a, *b);
  }
}

// ---------------------------------------------------------------------------
// Batch-structured RRS

TEST(RrsBatchTest, MinimizeMatchesMinimizeBatchesBitForBit) {
  auto f = [](const std::vector<double>& x) {
    double v = 0.0;
    for (size_t i = 0; i < x.size(); ++i) {
      double d = x[i] - (0.2 + 0.1 * static_cast<double>(i));
      v += d * d;
    }
    return v;
  };
  RrsOptions opts;
  std::vector<std::vector<double>> seeds = {{0.5, 0.5, 0.5}, {0.9, 0.1, 0.9}};

  RecursiveRandomSearch serial(opts, 42);
  auto [p1, v1] = serial.Minimize(3, f, seeds);

  RecursiveRandomSearch batched(opts, 42);
  auto [p2, v2] = batched.MinimizeBatches(
      3,
      [&](const std::vector<std::vector<double>>& batch) {
        std::vector<double> values(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) values[i] = f(batch[i]);
        return values;
      },
      seeds);

  EXPECT_EQ(p1, p2);
  EXPECT_EQ(v1, v2);
  EXPECT_LT(v2, f(seeds[0]));  // it actually optimized
}

TEST(RrsBatchTest, TrajectoryIsAPureFunctionOfSeedAndValues) {
  // The sequence of evaluated points must depend only on the RNG seed and
  // the values returned so far — never on batch timing. Record both runs'
  // full point streams and compare bit-for-bit.
  auto f = [](const std::vector<double>& x) {
    return std::abs(x[0] - 0.3) + std::abs(x[1] - 0.6);
  };
  auto run = [&] {
    std::vector<std::vector<double>> stream;
    RecursiveRandomSearch rrs(RrsOptions{}, 7);
    rrs.MinimizeBatches(
        2,
        [&](const std::vector<std::vector<double>>& batch) {
          std::vector<double> values(batch.size());
          for (size_t i = 0; i < batch.size(); ++i) {
            stream.push_back(batch[i]);
            values[i] = f(batch[i]);
          }
          return values;
        },
        {{0.5, 0.5}});
    return stream;
  };
  EXPECT_EQ(run(), run());
}

TEST(RrsBatchTest, BatchesRespectTheEvaluationBudget) {
  RrsOptions opts;
  opts.budget = 23;
  size_t evaluated = 0;
  RecursiveRandomSearch rrs(opts, 3);
  rrs.MinimizeBatches(
      2,
      [&](const std::vector<std::vector<double>>& batch) {
        evaluated += batch.size();
        std::vector<double> values(batch.size(), 1.0);
        for (size_t i = 0; i < batch.size(); ++i) values[i] = batch[i][0];
        return values;
      },
      {{0.5, 0.5}});
  EXPECT_EQ(evaluated, 23u);
}

}  // namespace
}  // namespace stubby

// stubbyd service tests: the shared-store concurrency surface. The daemon's
// contract is sequential semantics at any thread count — every committed
// request (plan, cost bits, reuse counters, raw outputs) and every byte of
// shared-store state must equal a sequential fresh-session loop over the
// same submission trace — plus deterministic admission control, per-tenant
// budget enforcement, the degradation ladder, and cost-cache transparency.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/threading.h"
#include "optimizer/transform.h"
#include "reuse/session.h"
#include "service/stubbyd.h"
#include "service/trace.h"

namespace stubby {
namespace {

bool SameCostBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Everything about one committed request that must be bit-identical to the
/// sequential loop and invariant across thread counts.
struct Capture {
  bool ok = false;
  std::string plan_signature;
  double estimated_cost = 0.0;
  double simulated_cost = 0.0;
  std::string reuse_counters;
  std::string degrade;
  std::map<std::string, std::vector<Row>> outputs;
};

Capture CaptureResult(const Status& status, const ReuseSessionResult& r,
                      DegradeLevel degrade) {
  Capture c;
  c.ok = status.ok();
  c.degrade = DegradeLevelName(degrade);
  if (!c.ok) return c;
  c.plan_signature = PlanSignature(r.report.plan);
  c.estimated_cost = r.report.estimated_cost;
  c.simulated_cost = r.simulated_cost;
  c.reuse_counters = r.reuse.ToString();
  c.outputs = r.outputs;
  return c;
}

void ExpectSameCapture(const Capture& got, const Capture& want,
                       const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(got.ok, want.ok);
  EXPECT_EQ(got.degrade, want.degrade);
  if (!got.ok) return;
  EXPECT_EQ(got.plan_signature, want.plan_signature);
  EXPECT_TRUE(SameCostBits(got.estimated_cost, want.estimated_cost))
      << got.estimated_cost << " vs " << want.estimated_cost;
  EXPECT_TRUE(SameCostBits(got.simulated_cost, want.simulated_cost))
      << got.simulated_cost << " vs " << want.simulated_cost;
  EXPECT_EQ(got.reuse_counters, want.reuse_counters);
  ASSERT_EQ(got.outputs.size(), want.outputs.size());
  for (const auto& [id, rows] : got.outputs) {
    ASSERT_EQ(want.outputs.count(id), 1u) << id;
    EXPECT_TRUE(RowsBitIdentical(rows, want.outputs.at(id)))
        << "raw output " << id << " differs";
  }
}

/// The sequential fresh-session oracle: one ReuseSession loop over one
/// shared store, replicating the daemon's degradation ladder and tenant
/// budget enforcement through the same public store API the daemon uses.
struct SequentialOracle {
  explicit SequentialOracle(const ServiceOptions& options)
      : options_(options), store_(options.store) {}

  DegradeLevel LevelNow() const {
    const uint64_t bytes = store_.stored_bytes();
    if (options_.hard_degrade_bytes > 0 &&
        bytes >= options_.hard_degrade_bytes) {
      return DegradeLevel::kBlind;
    }
    if (options_.soft_degrade_bytes > 0 &&
        bytes >= options_.soft_degrade_bytes) {
      return DegradeLevel::kRegisterSkip;
    }
    return DegradeLevel::kFull;
  }

  Capture Run(const Submission& sub) {
    const DegradeLevel level = LevelNow();
    const uint64_t before = store_.next_snapshot_id();
    Result<ReuseSessionResult> r = Status::Unknown("not run");
    if (level == DegradeLevel::kBlind) {
      r = ReuseSession(nullptr).Run(*sub.plan, *sub.dfs, sub.options);
    } else {
      r = ReuseSession(&store_).Run(
          *sub.plan, *sub.dfs, sub.options, nullptr,
          /*register_outputs=*/level == DegradeLevel::kFull);
    }
    for (uint64_t n = before; n < store_.next_snapshot_id(); ++n) {
      owned_[sub.tenant].insert("rs/" + std::to_string(n));
    }
    uint64_t budget = options_.tenant_byte_budget;
    auto bit = options_.tenant_budgets.find(sub.tenant);
    if (bit != options_.tenant_budgets.end()) budget = bit->second;
    auto oit = owned_.find(sub.tenant);
    if (budget > 0 && oit != owned_.end()) {
      tenant_evictions_ += store_.EnforceBudgetOn(oit->second, budget);
    }
    for (auto& [tenant, ids] : owned_) {
      for (auto it = ids.begin(); it != ids.end();) {
        it = store_.HasSnapshot(*it) ? std::next(it) : ids.erase(it);
      }
    }
    return r.ok() ? CaptureResult(Status::OK(), *r, level)
                  : CaptureResult(r.status(), ReuseSessionResult{}, level);
  }

  ServiceOptions options_;
  ResultStore store_;
  std::map<std::string, std::set<std::string>> owned_;
  uint64_t tenant_evictions_ = 0;
};

SubmissionTrace SmallTrace(int universe = 5, int submissions = 20,
                           int tenants = 3) {
  TraceOptions opt;
  opt.universe = universe;
  opt.submissions = submissions;
  opt.tenants = tenants;
  opt.rows = 250;
  opt.zipf = 1.1;
  auto trace = MakeSubmissionTrace(opt);
  EXPECT_TRUE(trace.ok()) << trace.status();
  return std::move(*trace);
}

/// Submits the whole trace and drains; asserts every submission admitted.
std::vector<RequestResult> RunThroughService(StubbyService* service,
                                             const SubmissionTrace& trace) {
  for (const Submission& sub : trace.submissions) {
    auto id = service->Submit(sub);
    EXPECT_TRUE(id.ok()) << id.status();
  }
  return service->Drain();
}

TEST(StubbyServiceTest, DrainMatchesSequentialFreshSessions) {
  const SubmissionTrace trace = SmallTrace();
  ServiceOptions options;
  options.wave_size = 4;
  ThreadPool pool(4);
  StubbyService service(options, &pool);
  std::vector<RequestResult> results = RunThroughService(&service, trace);
  ASSERT_EQ(results.size(), trace.submissions.size());

  SequentialOracle oracle(options);
  for (size_t i = 0; i < results.size(); ++i) {
    Capture want = oracle.Run(trace.submissions[i]);
    Capture got = CaptureResult(results[i].status, results[i].session,
                                results[i].degrade);
    ExpectSameCapture(got, want, "request " + std::to_string(i));
    EXPECT_EQ(results[i].id, i + 1);
    EXPECT_EQ(results[i].tenant, trace.submissions[i].tenant);
  }
  // The shared store ends byte-identical to the sequential loop's store,
  // with no leaked pins, and the catalog genuinely warmed up.
  EXPECT_EQ(service.store().Serialize(), oracle.store_.Serialize());
  EXPECT_EQ(service.store().num_pins(), 0u);
  EXPECT_GT(service.stats().requests_with_hits, 0u);
  EXPECT_EQ(service.stats().completed, trace.submissions.size());
  EXPECT_EQ(service.stats().failed, 0u);
}

TEST(StubbyServiceTest, ThreadCountInvariance) {
  const SubmissionTrace trace = SmallTrace();
  std::map<int, std::vector<Capture>> captures;
  std::map<int, std::string> stats_text;
  std::map<int, std::string> store_text;
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServiceOptions options;
    options.wave_size = 4;  // fixed: determinism comes from the wave, not
                            // the thread count
    ThreadPool pool(threads);
    StubbyService service(options, &pool);
    std::vector<RequestResult> results = RunThroughService(&service, trace);
    ASSERT_EQ(results.size(), trace.submissions.size());
    for (const RequestResult& r : results) {
      captures[threads].push_back(
          CaptureResult(r.status, r.session, r.degrade));
    }
    stats_text[threads] = service.stats().ToString();
    store_text[threads] = service.store().Serialize();
  }
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ASSERT_EQ(captures.at(threads).size(), captures.at(1).size());
    for (size_t i = 0; i < captures.at(1).size(); ++i) {
      ExpectSameCapture(captures.at(threads)[i], captures.at(1)[i],
                        "request " + std::to_string(i));
    }
    // Every deterministic service counter — conflicts and reruns
    // included — matches, because waves are a function of the trace.
    EXPECT_EQ(stats_text.at(threads), stats_text.at(1));
    EXPECT_EQ(store_text.at(threads), store_text.at(1));
  }
}

TEST(StubbyServiceTest, ConflictRerunsPreserveSequentialSemantics) {
  // Six copies of ONE workflow in a single wave: every speculation runs
  // against the same cold snapshot, the first commit registers, and every
  // later request's journal fails validation — forcing serial reruns that
  // must land exactly on the sequential outcome (request 0 computes, 1..5
  // elide the whole workflow from the store).
  const SubmissionTrace trace = SmallTrace(/*universe=*/1,
                                           /*submissions=*/6,
                                           /*tenants=*/2);
  ServiceOptions options;
  options.wave_size = 6;
  ThreadPool pool(4);
  StubbyService service(options, &pool);
  std::vector<RequestResult> results = RunThroughService(&service, trace);
  ASSERT_EQ(results.size(), 6u);
  EXPECT_GE(service.stats().conflicts, 1u);

  SequentialOracle oracle(options);
  for (size_t i = 0; i < results.size(); ++i) {
    Capture want = oracle.Run(trace.submissions[i]);
    Capture got = CaptureResult(results[i].status, results[i].session,
                                results[i].degrade);
    ExpectSameCapture(got, want, "request " + std::to_string(i));
    if (i > 0) {
      EXPECT_TRUE(results[i].reran);
      EXPECT_GT(results[i].session.reuse.workflow_hits, 0u);
    }
  }
  EXPECT_EQ(service.store().Serialize(), oracle.store_.Serialize());
}

TEST(StubbyServiceTest, AdmissionRejectionIsDeterministic) {
  const SubmissionTrace trace = SmallTrace(/*universe=*/2, /*submissions=*/8,
                                           /*tenants=*/2);
  ServiceOptions options;
  options.queue_capacity = 3;
  options.wave_size = 2;
  StubbyService service(options, nullptr);
  // Burst past capacity, twice: accept/reject splits and assigned ids are
  // a pure function of the submission sequence.
  for (int round = 0; round < 2; ++round) {
    std::vector<uint64_t> accepted;
    for (const Submission& sub : trace.submissions) {
      auto id = service.Submit(sub);
      if (id.ok()) {
        accepted.push_back(*id);
      } else {
        EXPECT_EQ(id.status().code(), StatusCode::kFailedPrecondition);
      }
    }
    ASSERT_EQ(accepted.size(), 3u);
    const uint64_t base = static_cast<uint64_t>(round) * 3;
    EXPECT_EQ(accepted, (std::vector<uint64_t>{base + 1, base + 2, base + 3}));
    std::vector<RequestResult> results = service.Drain();
    EXPECT_EQ(results.size(), 3u);
  }
  EXPECT_EQ(service.stats().accepted, 6u);
  EXPECT_EQ(service.stats().rejected, 10u);
  EXPECT_EQ(service.stats().completed, 6u);
}

TEST(StubbyServiceTest, PerTenantBudgetsEvictOnlyThatTenant) {
  // Tenant A registers three distinct workflows, tenant B one. First pass:
  // measure A's unbudgeted footprint. Second pass: cap A below it — A must
  // shed snapshots, B's catalog entries must survive and keep serving hits.
  TraceOptions topt;
  topt.universe = 4;
  topt.submissions = 0;
  topt.rows = 250;
  auto built = MakeSubmissionTrace(topt);
  ASSERT_TRUE(built.ok()) << built.status();
  std::vector<Submission> subs;
  for (int i = 0; i < 4; ++i) {
    Submission sub;
    sub.tenant = i < 3 ? "A" : "B";
    sub.name = built->universe[i].name;
    sub.plan = built->universe[i].plan;
    sub.dfs = built->universe[i].dfs;
    subs.push_back(std::move(sub));
  }

  uint64_t unbudgeted_a = 0;
  {
    StubbyService service(ServiceOptions{}, nullptr);
    for (const Submission& sub : subs) ASSERT_TRUE(service.Submit(sub).ok());
    service.Drain();
    unbudgeted_a = service.TenantBytes("A");
    ASSERT_GT(unbudgeted_a, 0u);
    EXPECT_EQ(service.stats().tenant_evictions, 0u);
  }

  ServiceOptions options;
  options.tenant_budgets["A"] = unbudgeted_a / 2;
  StubbyService service(options, nullptr);
  for (const Submission& sub : subs) ASSERT_TRUE(service.Submit(sub).ok());
  service.Drain();
  EXPECT_GT(service.stats().tenant_evictions, 0u);
  EXPECT_LE(service.TenantBytes("A"), unbudgeted_a / 2);
  EXPECT_GT(service.TenantBytes("B"), 0u);
  // B's workflow still elides wholesale from the shared store.
  ASSERT_TRUE(service.Submit(subs[3]).ok());
  std::vector<RequestResult> again = service.Drain();
  ASSERT_EQ(again.size(), 1u);
  ASSERT_TRUE(again[0].status.ok());
  EXPECT_GT(again[0].session.reuse.workflow_hits, 0u);

  // And the whole budgeted replay still matches the sequential loop.
  SequentialOracle oracle(options);
  for (const Submission& sub : subs) oracle.Run(sub);
  oracle.Run(subs[3]);
  EXPECT_EQ(service.store().Serialize(), oracle.store_.Serialize());
  EXPECT_EQ(service.stats().tenant_evictions, oracle.tenant_evictions_);
}

TEST(StubbyServiceTest, DegradationLadder) {
  const SubmissionTrace trace = SmallTrace(/*universe=*/2, /*submissions=*/8,
                                           /*tenants=*/2);
  // Soft threshold of one byte: after the first registration every request
  // still probes and serves hits but deposits nothing — the catalog stops
  // growing while hit service continues.
  {
    ServiceOptions options;
    options.soft_degrade_bytes = 1;
    options.wave_size = 2;
    ThreadPool pool(4);
    StubbyService service(options, &pool);
    std::vector<RequestResult> results = RunThroughService(&service, trace);
    ASSERT_EQ(results.size(), 8u);
    EXPECT_GT(service.stats().degraded_register_skip, 0u);
    EXPECT_EQ(service.stats().degraded_blind, 0u);
    EXPECT_GT(service.stats().requests_with_hits, 0u);
    SequentialOracle oracle(options);
    for (size_t i = 0; i < results.size(); ++i) {
      Capture want = oracle.Run(trace.submissions[i]);
      Capture got = CaptureResult(results[i].status, results[i].session,
                                  results[i].degrade);
      ExpectSameCapture(got, want, "soft request " + std::to_string(i));
    }
    EXPECT_EQ(service.store().Serialize(), oracle.store_.Serialize());
  }
  // Hard threshold of one byte: after the first registration the service
  // goes reuse-blind outright.
  {
    ServiceOptions options;
    options.hard_degrade_bytes = 1;
    options.wave_size = 2;
    ThreadPool pool(4);
    StubbyService service(options, &pool);
    std::vector<RequestResult> results = RunThroughService(&service, trace);
    ASSERT_EQ(results.size(), 8u);
    EXPECT_GT(service.stats().degraded_blind, 0u);
    SequentialOracle oracle(options);
    for (size_t i = 0; i < results.size(); ++i) {
      Capture want = oracle.Run(trace.submissions[i]);
      Capture got = CaptureResult(results[i].status, results[i].session,
                                  results[i].degrade);
      ExpectSameCapture(got, want, "hard request " + std::to_string(i));
    }
    EXPECT_EQ(service.store().Serialize(), oracle.store_.Serialize());
  }
}

TEST(StubbyServiceTest, SharedCostCacheIsTransparent) {
  // The service-wide CostCache is a pure wall-time artifact: throttling it
  // to two entries per layer must not move a single committed bit.
  const SubmissionTrace trace = SmallTrace(/*universe=*/3, /*submissions=*/10,
                                           /*tenants=*/2);
  auto run = [&](CostCache::Options cache) {
    ServiceOptions options;
    options.wave_size = 3;
    options.cost_cache = cache;
    ThreadPool pool(4);
    StubbyService service(options, &pool);
    std::vector<RequestResult> results = RunThroughService(&service, trace);
    std::vector<Capture> captures;
    for (const RequestResult& r : results) {
      captures.push_back(CaptureResult(r.status, r.session, r.degrade));
    }
    return std::make_pair(std::move(captures), service.store().Serialize());
  };
  auto wide = run(CostCache::Options{});
  auto tiny = run(CostCache::Options{2, 2});
  ASSERT_EQ(wide.first.size(), tiny.first.size());
  for (size_t i = 0; i < wide.first.size(); ++i) {
    ExpectSameCapture(tiny.first[i], wide.first[i],
                      "request " + std::to_string(i));
  }
  EXPECT_EQ(wide.second, tiny.second);
}

}  // namespace
}  // namespace stubby

// Tests for dfs/: layouts, dataset construction, logical scaling, the DFS.

#include <gtest/gtest.h>

#include "dfs/dfs.h"

namespace stubby {
namespace {

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row{int64_t{i % 7}, int64_t{i}});
  }
  return rows;
}

TEST(DatasetTest, BlockLayoutSplitsIntoPartitions) {
  Layout layout;  // unpartitioned blocks
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 4);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->num_partitions(), 4u);
  EXPECT_EQ((*ds)->num_rows(), 100u);
  EXPECT_EQ((*ds)->AllRows().size(), 100u);
}

TEST(DatasetTest, HashLayoutGroupsKeys) {
  Layout layout;
  layout.partitioning = PartitionSpec::DefaultFor({"k"});
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 5);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->num_partitions(), 5u);
  // Every key must live in exactly one partition.
  for (int64_t key = 0; key < 7; ++key) {
    int partitions_with_key = 0;
    for (size_t p = 0; p < (*ds)->num_partitions(); ++p) {
      bool found = false;
      for (const Row& r : (*ds)->partition(p)) {
        if (r[0].AsInt() == key) found = true;
      }
      if (found) ++partitions_with_key;
    }
    EXPECT_EQ(partitions_with_key, 1) << "key " << key;
  }
}

TEST(DatasetTest, RangeLayoutRespectsSplitsAndOrder) {
  Layout layout;
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"v"};
  spec.sort_fields = {"v"};
  spec.split_points = {Row{int64_t{50}}};
  layout.partitioning = spec;
  layout.order_fields = {"v"};
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 99 /*ignored*/);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ((*ds)->num_partitions(), 2u);  // range fixes the count
  for (const Row& r : (*ds)->partition(0)) EXPECT_LT(r[1].AsInt(), 50);
  for (const Row& r : (*ds)->partition(1)) EXPECT_GE(r[1].AsInt(), 50);
  // Ordered within partitions.
  for (size_t p = 0; p < 2; ++p) {
    const auto& rows = (*ds)->partition(p);
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LE(rows[i - 1][1].AsInt(), rows[i][1].AsInt());
    }
  }
}

TEST(DatasetTest, LogicalScaleMultipliesSizes) {
  Layout layout;
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(10), 1);
  ASSERT_TRUE(ds.ok());
  uint64_t raw = (*ds)->raw_bytes();
  (*ds)->set_logical_scale(100.0);
  EXPECT_EQ((*ds)->logical_rows(), 1000u);
  EXPECT_EQ((*ds)->logical_bytes(), raw * 100);
  (*ds)->set_logical_scale(0.5);  // clamped to >= 1
  EXPECT_EQ((*ds)->logical_scale(), 1.0);
}

TEST(DatasetTest, StoredBytesReflectCompression) {
  Layout compressed;
  compressed.compressed = true;
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), compressed,
                                    MakeRows(10), 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_LT((*ds)->stored_bytes(0.4), (*ds)->raw_bytes());
  Layout plain;
  auto ds2 = StoredDataset::FromRows("d2", Schema({"k", "v"}), plain,
                                     MakeRows(10), 1);
  EXPECT_EQ((*ds2)->stored_bytes(0.4), (*ds2)->raw_bytes());
}

TEST(DatasetTest, RowsOfPartitionsSelectsAndIgnoresBogusIndices) {
  Layout layout;
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 4);
  ASSERT_TRUE(ds.ok());
  size_t p0 = (*ds)->partition(0).size();
  EXPECT_EQ((*ds)->RowsOfPartitions({0}).size(), p0);
  EXPECT_EQ((*ds)->RowsOfPartitions({0, 17, -3}).size(), p0);
}

TEST(DfsTest, PutGetDrop) {
  Dfs dfs;
  Layout layout;
  auto ds = StoredDataset::FromRows("a", Schema({"k", "v"}), layout,
                                    MakeRows(5), 1);
  ASSERT_TRUE(dfs.Put(*ds).ok());
  EXPECT_TRUE(dfs.Exists("a"));
  EXPECT_FALSE(dfs.Put(*ds).ok());  // duplicate id
  EXPECT_TRUE(dfs.Get("a").ok());
  EXPECT_FALSE(dfs.Get("b").ok());
  dfs.Drop("a");
  EXPECT_FALSE(dfs.Exists("a"));
}

TEST(DfsTest, PutOrReplaceOverwrites) {
  Dfs dfs;
  Layout layout;
  dfs.PutOrReplace(*StoredDataset::FromRows("a", Schema({"k", "v"}), layout,
                                            MakeRows(5), 1));
  dfs.PutOrReplace(*StoredDataset::FromRows("a", Schema({"k", "v"}), layout,
                                            MakeRows(9), 1));
  EXPECT_EQ((*dfs.Get("a"))->num_rows(), 9u);
}

TEST(DfsTest, CopySharesDataButNotRegistry) {
  Dfs a;
  Layout layout;
  a.PutOrReplace(*StoredDataset::FromRows("x", Schema({"k", "v"}), layout,
                                          MakeRows(5), 1));
  Dfs b = a;  // copy
  b.PutOrReplace(*StoredDataset::FromRows("y", Schema({"k", "v"}), layout,
                                          MakeRows(5), 1));
  EXPECT_TRUE(b.Exists("x"));
  EXPECT_FALSE(a.Exists("y"));
}

}  // namespace
}  // namespace stubby

// Tests for dfs/: layouts, dataset construction, logical scaling, the DFS,
// and the dual row/column PartitionData representation.

#include <gtest/gtest.h>

#include "dfs/dfs.h"
#include "mr/row_batch.h"

namespace stubby {
namespace {

std::vector<Row> MakeRows(int n) {
  std::vector<Row> rows;
  for (int i = 0; i < n; ++i) {
    rows.push_back(Row{int64_t{i % 7}, int64_t{i}});
  }
  return rows;
}

TEST(DatasetTest, BlockLayoutSplitsIntoPartitions) {
  Layout layout;  // unpartitioned blocks
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 4);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->num_partitions(), 4u);
  EXPECT_EQ((*ds)->num_rows(), 100u);
  EXPECT_EQ((*ds)->AllRows().size(), 100u);
}

TEST(DatasetTest, HashLayoutGroupsKeys) {
  Layout layout;
  layout.partitioning = PartitionSpec::DefaultFor({"k"});
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 5);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ((*ds)->num_partitions(), 5u);
  // Every key must live in exactly one partition.
  for (int64_t key = 0; key < 7; ++key) {
    int partitions_with_key = 0;
    for (size_t p = 0; p < (*ds)->num_partitions(); ++p) {
      bool found = false;
      for (const Row& r : (*ds)->partition(p)) {
        if (r[0].AsInt() == key) found = true;
      }
      if (found) ++partitions_with_key;
    }
    EXPECT_EQ(partitions_with_key, 1) << "key " << key;
  }
}

TEST(DatasetTest, RangeLayoutRespectsSplitsAndOrder) {
  Layout layout;
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"v"};
  spec.sort_fields = {"v"};
  spec.split_points = {Row{int64_t{50}}};
  layout.partitioning = spec;
  layout.order_fields = {"v"};
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 99 /*ignored*/);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ((*ds)->num_partitions(), 2u);  // range fixes the count
  for (const Row& r : (*ds)->partition(0)) EXPECT_LT(r[1].AsInt(), 50);
  for (const Row& r : (*ds)->partition(1)) EXPECT_GE(r[1].AsInt(), 50);
  // Ordered within partitions.
  for (size_t p = 0; p < 2; ++p) {
    const auto& rows = (*ds)->partition(p);
    for (size_t i = 1; i < rows.size(); ++i) {
      EXPECT_LE(rows[i - 1][1].AsInt(), rows[i][1].AsInt());
    }
  }
}

TEST(DatasetTest, LogicalScaleMultipliesSizes) {
  Layout layout;
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(10), 1);
  ASSERT_TRUE(ds.ok());
  uint64_t raw = (*ds)->raw_bytes();
  (*ds)->set_logical_scale(100.0);
  EXPECT_EQ((*ds)->logical_rows(), 1000u);
  EXPECT_EQ((*ds)->logical_bytes(), raw * 100);
  (*ds)->set_logical_scale(0.5);  // clamped to >= 1
  EXPECT_EQ((*ds)->logical_scale(), 1.0);
}

TEST(DatasetTest, StoredBytesReflectCompression) {
  Layout compressed;
  compressed.compressed = true;
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), compressed,
                                    MakeRows(10), 1);
  ASSERT_TRUE(ds.ok());
  EXPECT_LT((*ds)->stored_bytes(0.4), (*ds)->raw_bytes());
  Layout plain;
  auto ds2 = StoredDataset::FromRows("d2", Schema({"k", "v"}), plain,
                                     MakeRows(10), 1);
  EXPECT_EQ((*ds2)->stored_bytes(0.4), (*ds2)->raw_bytes());
}

TEST(DatasetTest, RowsOfPartitionsSelectsAndIgnoresBogusIndices) {
  Layout layout;
  auto ds = StoredDataset::FromRows("d", Schema({"k", "v"}), layout,
                                    MakeRows(100), 4);
  ASSERT_TRUE(ds.ok());
  size_t p0 = (*ds)->partition(0).size();
  EXPECT_EQ((*ds)->RowsOfPartitions({0}).size(), p0);
  EXPECT_EQ((*ds)->RowsOfPartitions({0, 17, -3}).size(), p0);
}

TEST(PartitionDataTest, ColumnarRoundTripPreservesRowsAndBytes) {
  // Columnar write -> row read -> columnar read: every representation
  // change must preserve row bits and the byte accounting exactly.
  std::vector<Row> rows = MakeRows(37);
  PartitionData row_native(rows);
  EXPECT_FALSE(row_native.column_native());
  EXPECT_TRUE(row_native.columnar());  // uniform arity: batch-exposable

  PartitionData col_native =
      PartitionData::FromBatch(RowBatch::FromRows(rows, 2));
  EXPECT_TRUE(col_native.column_native());
  EXPECT_TRUE(col_native.columnar());
  ASSERT_EQ(col_native.num_rows(), rows.size());
  ASSERT_EQ(col_native.num_columns(), 2u);

  // Row read off the columnar payload.
  const std::vector<Row>& derived = col_native.rows();
  ASSERT_EQ(derived.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(derived[i].Hash(), rows[i].Hash()) << "row " << i;
  }

  // Byte accounting parity across representations.
  EXPECT_EQ(col_native.raw_bytes(), row_native.raw_bytes());
  EXPECT_EQ(col_native.RangeBytes(0, rows.size()), col_native.raw_bytes());
  EXPECT_EQ(col_native.RangeBytes(5, 21), row_native.RangeBytes(5, 21));

  // Columnar read back from the row materialization.
  PartitionData again(derived);
  RowBatch a = again.AsBatch();
  RowBatch b = col_native.AsBatch();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_EQ(a.RowHash(i), b.RowHash(i)) << "row " << i;
  }

  // Slices view the same data as full-batch selection.
  RowBatch slice = col_native.BatchSlice(5, 21);
  ASSERT_EQ(slice.num_rows(), 16u);
  for (size_t i = 0; i < slice.num_rows(); ++i) {
    EXPECT_EQ(slice.RowHash(i), b.RowHash(5 + i)) << "row " << i;
  }
}

TEST(PartitionDataTest, RaggedRowsStayRowNativeButReadable) {
  // Non-uniform arity cannot be exposed as a batch; the row path and the
  // byte accounting must still work.
  std::vector<Row> rows = {Row{int64_t{1}, int64_t{2}}, Row{int64_t{3}}};
  PartitionData pd(rows);
  EXPECT_FALSE(pd.columnar());
  EXPECT_FALSE(pd.column_native());
  EXPECT_EQ(pd.num_rows(), 2u);
  EXPECT_EQ(pd.rows()[1].Hash(), rows[1].Hash());
  EXPECT_EQ(pd.RangeBytes(0, 2), pd.raw_bytes());
  EXPECT_EQ(pd.RangeBytes(0, 1) + pd.RangeBytes(1, 2), pd.raw_bytes());
}

TEST(PartitionDataTest, FromBatchGathersPermutedSelections) {
  // A shuffle bucket hands FromBatch a permuted selection; the stored
  // partition must materialize rows in selection order, not physical order.
  std::vector<Row> rows = MakeRows(8);
  RowBatch batch = RowBatch::FromRows(rows, 2);
  batch.SetSelection({6, 1, 4});
  PartitionData pd = PartitionData::FromBatch(batch);
  ASSERT_EQ(pd.num_rows(), 3u);
  EXPECT_EQ(pd.rows()[0].Hash(), rows[6].Hash());
  EXPECT_EQ(pd.rows()[1].Hash(), rows[1].Hash());
  EXPECT_EQ(pd.rows()[2].Hash(), rows[4].Hash());
}

TEST(DfsTest, PutGetDrop) {
  Dfs dfs;
  Layout layout;
  auto ds = StoredDataset::FromRows("a", Schema({"k", "v"}), layout,
                                    MakeRows(5), 1);
  ASSERT_TRUE(dfs.Put(*ds).ok());
  EXPECT_TRUE(dfs.Exists("a"));
  EXPECT_FALSE(dfs.Put(*ds).ok());  // duplicate id
  EXPECT_TRUE(dfs.Get("a").ok());
  EXPECT_FALSE(dfs.Get("b").ok());
  dfs.Drop("a");
  EXPECT_FALSE(dfs.Exists("a"));
}

TEST(DfsTest, PutOrReplaceOverwrites) {
  Dfs dfs;
  Layout layout;
  dfs.PutOrReplace(*StoredDataset::FromRows("a", Schema({"k", "v"}), layout,
                                            MakeRows(5), 1));
  dfs.PutOrReplace(*StoredDataset::FromRows("a", Schema({"k", "v"}), layout,
                                            MakeRows(9), 1));
  EXPECT_EQ((*dfs.Get("a"))->num_rows(), 9u);
}

TEST(DfsTest, CopySharesDataButNotRegistry) {
  Dfs a;
  Layout layout;
  a.PutOrReplace(*StoredDataset::FromRows("x", Schema({"k", "v"}), layout,
                                          MakeRows(5), 1));
  Dfs b = a;  // copy
  b.PutOrReplace(*StoredDataset::FromRows("y", Schema({"k", "v"}), layout,
                                          MakeRows(5), 1));
  EXPECT_TRUE(b.Exists("x"));
  EXPECT_FALSE(a.Exists("y"));
}

}  // namespace
}  // namespace stubby

// Tests for optimizer/transformations: preconditions (checked on
// annotations, never on UDF internals), postconditions, plan equivalence
// after application, and the conditions ledger.

#include <gtest/gtest.h>

#include "optimizer/horizontal.h"
#include "optimizer/partition_fn.h"
#include "optimizer/transform.h"
#include "optimizer/vertical.h"
#include "test_workflows.h"

namespace stubby {
namespace {

using ::stubby::testing::ExpectEquivalent;
using ::stubby::testing::MakeChain;
using ::stubby::testing::MakeSiblings;
using ::stubby::testing::ProfileInPlace;

std::vector<std::string> AllJobs(const Plan& plan) {
  std::vector<std::string> out;
  for (const auto& [jid, job] : plan.jobs()) out.push_back(jid);
  return out;
}

TEST(IntraPackTest, FindsTheChainApplication) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  IntraJobVerticalPacking intra;
  auto apps = intra.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_NE(apps[0].description.find("Jc"), std::string::npos);
}

TEST(IntraPackTest, RequiresSchemaAnnotations) {
  // The information spectrum: remove the consumer's K2 annotation and the
  // transformation must disappear.
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  (*plan.GetMutableJob("Jc"))->branches[0].annotations.schema.reset();
  IntraJobVerticalPacking intra;
  EXPECT_TRUE(intra.FindApplications(plan, AllJobs(plan)).empty());
  // Same if the producer's K3 annotation is missing.
  Plan plan2 = f->plan();
  (*plan2.GetMutableJob("Jp"))->branches[0].annotations.schema->k3.reset();
  EXPECT_TRUE(intra.FindApplications(plan2, AllJobs(plan2)).empty());
}

TEST(IntraPackTest, RequiresPrefixGrouping) {
  // Consumer grouping {Z} is not a prefix of the producer's (K, Z).
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto jc = plan.GetMutableJob("Jc");
  Branch& bc = (*jc)->branches[0];
  Schema mid({"K", "Z", "S"});
  bc.reduce_stages = {Stage::Reduce(
      AggReduce("sum_z", mid, {"Z"}, {{"S", AggOp::kSum, "T"}}), {"Z"})};
  bc.partition = PartitionSpec::DefaultFor({"Z"});
  bc.annotations.schema->k2 = FieldSet{"Z"};
  // Keep OUT's schema consistent.
  (*plan.GetMutableDataset("OUT"))->schema = Schema({"Z", "T"});
  ASSERT_TRUE(plan.Validate().ok());
  IntraJobVerticalPacking intra;
  EXPECT_TRUE(intra.FindApplications(plan, AllJobs(plan)).empty());
}

TEST(IntraPackTest, AppliedPlanIsValidEquivalentAndConditioned) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  IntraJobVerticalPacking intra;
  auto apps = intra.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_EQ(apps.size(), 1u);
  auto packed = apps[0].apply(f->plan());
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_TRUE(packed->Validate().ok());

  const JobVertex& jp = *(*packed->GetJob("Jp"));
  const JobVertex& jc = *(*packed->GetJob("Jc"));
  // Postcondition 1: the producer partitions on the intersection {K} and
  // the spec is frozen.
  EXPECT_EQ(jp.branches[0].partition.partition_fields,
            std::vector<std::string>{"K"});
  EXPECT_TRUE(jp.conditions.partition_frozen);
  // Postcondition 2: the consumer is map-only with aligned reads.
  EXPECT_TRUE(jc.map_only());
  EXPECT_TRUE(jc.branches[0].merge_mode());
  EXPECT_TRUE(jc.branches[0].inputs[0].aligned);
  // Equivalence on real data.
  ExpectEquivalent(*f, f->plan(), *packed);
}

TEST(IntraPackTest, FrozenIncompatibleProducerBlocks) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  (*plan.GetMutableJob("Jp"))->conditions.partition_frozen = true;
  // Frozen with partition fields (K, Z) != required (K): blocked.
  IntraJobVerticalPacking intra;
  EXPECT_TRUE(intra.FindApplications(plan, AllJobs(plan)).empty());
}

TEST(IntraPackTest, PrunedInputBlocks) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  (*plan.GetMutableJob("Jc"))->branches[0].inputs[0].prune_partitions = {0};
  IntraJobVerticalPacking intra;
  EXPECT_TRUE(intra.FindApplications(plan, AllJobs(plan)).empty());
}

TEST(InterPackTest, PacksMapOnlyConsumerIntoProducerAfterIntra) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  IntraJobVerticalPacking intra;
  auto apps = intra.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_EQ(apps.size(), 1u);
  Plan mid = *apps[0].apply(f->plan());

  InterJobVerticalPacking inter;
  auto apps2 = inter.FindApplications(mid, AllJobs(mid));
  ASSERT_FALSE(apps2.empty());
  auto packed = apps2[0].apply(mid);
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_EQ(packed->num_jobs(), 1u);
  EXPECT_TRUE(packed->HasJob("Jp+Jc"));
  // The intermediate dataset is gone (sole consumer, not a workflow output).
  EXPECT_FALSE(packed->HasDataset("MID"));
  EXPECT_EQ(apps2[0].renames.at("Jp"), "Jp+Jc");
  ExpectEquivalent(*f, f->plan(), *packed);
}

TEST(InterPackTest, TeePreservesIntermediateForOtherConsumers) {
  // Add a second consumer of MID; packing must keep MID materialized.
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  Schema mid({"K", "Z", "S"});
  ASSERT_TRUE(f->AddDataset("OUT2", Schema({"Z", "M"}), true).ok());
  {
    WorkflowFactory::JobDef j;
    j.id = "Jd";
    j.inputs = {In("MID", {})};
    j.map_output_schema = mid;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("max_z", mid, {"Z"}, {{"S", AggOp::kMax, "M"}}), {"Z"})};
    j.output = "OUT2";
    ASSERT_TRUE(f->AddJob(std::move(j)).ok());
  }
  ProfileInPlace(&*f);
  IntraJobVerticalPacking intra;
  // Jc can no longer intra-pack (MID has two consumers and the rewrite
  // would change the layout Jd... actually Jd reads plain, so it applies).
  auto apps = intra.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_FALSE(apps.empty());
  Plan midplan = *apps[0].apply(f->plan());
  InterJobVerticalPacking inter;
  bool packed_with_tee = false;
  for (auto& app : inter.FindApplications(midplan, AllJobs(midplan))) {
    if (app.description.find("tee") == std::string::npos) continue;
    auto packed = app.apply(midplan);
    ASSERT_TRUE(packed.ok()) << packed.status();
    EXPECT_TRUE(packed->HasDataset("MID"));
    ExpectEquivalent(*f, f->plan(), *packed);
    packed_with_tee = true;
    break;
  }
  EXPECT_TRUE(packed_with_tee);
}

TEST(InterPackTest, PacksMapOnlyProducerIntoConsumer) {
  // Build filter (map-only) -> aggregate chain.
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  Rng rng(8);
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(Row{rng.NextInt(0, 20), rng.NextDouble(0, 10)});
  }
  Layout layout;
  ASSERT_TRUE(
      f.AddBase("IN", schema, layout, 4, rows, 8 * testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("MID", schema).ok());
  ASSERT_TRUE(f.AddDataset("OUT", Schema({"k", "s"}), true).ok());
  {
    WorkflowFactory::JobDef j;
    j.id = "Jf";
    j.inputs = {In("IN", {Stage::Map(FilterRangeMap("f", schema, "v", 0, 5))})};
    j.map_output_schema = schema;
    j.output = "MID";
    ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  }
  {
    WorkflowFactory::JobDef j;
    j.id = "Ja";
    j.inputs = {In("MID", {})};
    j.map_output_schema = schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum", schema, {"k"}, {{"v", AggOp::kSum, "s"}}), {"k"})};
    j.output = "OUT";
    ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  }
  ASSERT_TRUE(f.plan().Validate().ok());
  ProfileInPlace(&f);

  InterJobVerticalPacking inter;
  auto apps = inter.FindApplications(f.plan(), AllJobs(f.plan()));
  ASSERT_EQ(apps.size(), 1u);
  auto packed = apps[0].apply(f.plan());
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_EQ(packed->num_jobs(), 1u);
  EXPECT_FALSE(packed->HasDataset("MID"));
  ExpectEquivalent(f, f.plan(), *packed);
}

TEST(InterPackTest, ReplicatesMapOnlyProducerIntoAllConsumers) {
  // A map-only filter feeding two consumers: the one-to-many extension (i)
  // replicates the filter into both, eliminating the job and the
  // intermediate dataset.
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    rows.push_back(Row{rng.NextInt(0, 20), rng.NextDouble(0, 10)});
  }
  Layout layout;
  ASSERT_TRUE(
      f.AddBase("IN", schema, layout, 4, rows, 8 * testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("MID", schema).ok());
  ASSERT_TRUE(f.AddDataset("OA", Schema({"k", "s"}), true).ok());
  ASSERT_TRUE(f.AddDataset("OB", Schema({"k", "m"}), true).ok());
  {
    WorkflowFactory::JobDef j;
    j.id = "Jf";
    j.inputs = {In("IN", {Stage::Map(FilterRangeMap("f", schema, "v", 0, 5))})};
    j.map_output_schema = schema;
    j.output = "MID";
    ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  }
  for (const auto& [id, field, op, out] :
       {std::tuple{"Ja", "s", AggOp::kSum, "OA"},
        std::tuple{"Jb", "m", AggOp::kMax, "OB"}}) {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In("MID", {})};
    j.map_output_schema = schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce(std::string("agg_") + id, schema, {"k"},
                  {{"v", op, field}}),
        {"k"})};
    j.output = out;
    ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  }
  ASSERT_TRUE(f.plan().Validate().ok());
  ProfileInPlace(&f);

  InterJobVerticalPacking inter;
  bool replicated = false;
  for (auto& app : inter.FindApplications(f.plan(), AllJobs(f.plan()))) {
    if (app.description.find("replicated") == std::string::npos) continue;
    auto packed = app.apply(f.plan());
    ASSERT_TRUE(packed.ok()) << packed.status();
    EXPECT_EQ(packed->num_jobs(), 2u);
    EXPECT_FALSE(packed->HasDataset("MID"));
    EXPECT_TRUE(packed->HasJob("Jf+Ja"));
    EXPECT_TRUE(packed->HasJob("Jf+Jb"));
    ExpectEquivalent(f, f.plan(), *packed);
    replicated = true;
  }
  EXPECT_TRUE(replicated);
}

TEST(HorizontalPackTest, PacksSiblingsAndStaysEquivalent) {
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  HorizontalPacking packer(/*extended=*/false);
  auto apps = packer.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_EQ(apps.size(), 1u);
  auto packed = apps[0].apply(f->plan());
  ASSERT_TRUE(packed.ok()) << packed.status();
  EXPECT_EQ(packed->num_jobs(), 1u);
  const JobVertex& job = *(*packed->GetJob("Ja|Jb"));
  EXPECT_EQ(job.branches.size(), 2u);
  ExpectEquivalent(*f, f->plan(), *packed);
}

TEST(HorizontalPackTest, DependentJobsAreNotConcurrentlyRunnable) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  HorizontalPacking packer(/*extended=*/true);
  EXPECT_TRUE(packer.FindApplications(f->plan(), AllJobs(f->plan())).empty());
}

TEST(HorizontalPackTest, ExtendedFlagGatesDisjointInputs) {
  // Two siblings over two different base datasets.
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(Row{int64_t{i % 5}, 1.0});
  Layout layout;
  ASSERT_TRUE(f.AddBase("A", schema, layout, 2, rows, testing::kGB).ok());
  ASSERT_TRUE(f.AddBase("B", schema, layout, 2, rows, testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("OA", Schema({"k", "s"}), true).ok());
  ASSERT_TRUE(f.AddDataset("OB", Schema({"k", "s"}), true).ok());
  for (const auto& [id, in, out] :
       {std::tuple{"Ja", "A", "OA"}, std::tuple{"Jb", "B", "OB"}}) {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In(in, {})};
    j.map_output_schema = schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum", schema, {"k"}, {{"v", AggOp::kSum, "s"}}), {"k"})};
    j.output = out;
    ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  }
  HorizontalPacking strict(false), extended(true);
  EXPECT_TRUE(strict.FindApplications(f.plan(), AllJobs(f.plan())).empty());
  auto apps = extended.FindApplications(f.plan(), AllJobs(f.plan()));
  ASSERT_EQ(apps.size(), 1u);
  auto packed = apps[0].apply(f.plan());
  ASSERT_TRUE(packed.ok());
  ProfileInPlace(&f);
  ExpectEquivalent(f, f.plan(), *packed);
}

TEST(HorizontalPackTest, ConflictingFixedReduceCountsBlock) {
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  (*plan.GetMutableJob("Ja"))->conditions.num_reduce_fixed = 3;
  (*plan.GetMutableJob("Jb"))->conditions.num_reduce_fixed = 5;
  HorizontalPacking packer(false);
  auto apps = packer.FindApplications(plan, AllJobs(plan));
  ASSERT_EQ(apps.size(), 1u);
  EXPECT_FALSE(apps[0].apply(plan).ok());
}

TEST(PartitionFnTest, RangeTransformSetsSplitsAndPrunes) {
  // Producer keyed by a field the consumers filter on.
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  // Add filter annotations + filter semantics on G for Ja.
  Plan plan0 = f->plan();
  {
    auto ja = plan0.GetMutableJob("Ja");
    FilterAnnotation fa;
    fa.field = "G";
    fa.lo = 0;
    fa.hi = 50;
    (*ja)->branches[0].annotations.filter = fa;
  }
  f->plan() = plan0;
  ProfileInPlace(&*f);

  // Range-partition a producer job feeding Ja... here Ja itself is a
  // consumer of a base dataset, so exercise the job-level transform on Ja's
  // own shuffle instead.
  PartitionFunctionTransform transform;
  auto apps = transform.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_FALSE(apps.empty());
  bool applied_range = false;
  for (auto& app : apps) {
    if (app.description.find("range-partition Ja") == std::string::npos) {
      continue;
    }
    auto next = app.apply(f->plan());
    ASSERT_TRUE(next.ok()) << next.status();
    const JobVertex& ja = *(*next->GetJob("Ja"));
    EXPECT_EQ(ja.branches[0].partition.type, PartitionType::kRange);
    EXPECT_FALSE(ja.branches[0].partition.split_points.empty());
    ExpectEquivalent(*f, f->plan(), *next);
    applied_range = true;
    break;
  }
  EXPECT_TRUE(applied_range);
}

TEST(PartitionFnTest, FrozenPartitionBlocksRangeTransform) {
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  Plan plan = f->plan();
  (*plan.GetMutableJob("Ja"))->conditions.partition_frozen = true;
  (*plan.GetMutableJob("Jb"))->conditions.partition_frozen = true;
  PartitionFunctionTransform transform;
  for (auto& app : transform.FindApplications(plan, AllJobs(plan))) {
    EXPECT_EQ(app.description.find("range-partition"), std::string::npos)
        << app.description;
  }
}

TEST(PartitionFnTest, BasePruningAgainstAnnotatedRangeLayout) {
  // Base dataset range-partitioned on k; a consumer with a filter on k gets
  // its read pruned.
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(Row{int64_t{i % 100}, 1.0});
  Layout layout;
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"k"};
  spec.sort_fields = {"k"};
  for (int s = 10; s < 100; s += 10) spec.split_points.push_back(Row{s});
  layout.partitioning = spec;
  ASSERT_TRUE(f.AddBase("IN", schema, layout, 10, rows, testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("OUT", Schema({"k", "s"}), true).ok());
  WorkflowFactory::JobDef j;
  j.id = "J";
  j.inputs = {In("IN", {Stage::Map(FilterRangeMap("f", schema, "k", 0, 30))})};
  j.map_output_schema = schema;
  j.reduce_stages = {Stage::Reduce(
      AggReduce("sum", schema, {"k"}, {{"v", AggOp::kSum, "s"}}), {"k"})};
  j.output = "OUT";
  FilterAnnotation fa;
  fa.field = "k";
  fa.lo = 0;
  fa.hi = 30;
  j.filter_ann = fa;
  ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  ProfileInPlace(&f);

  PartitionFunctionTransform transform;
  bool pruned = false;
  for (auto& app :
       transform.FindApplications(f.plan(), AllJobs(f.plan()))) {
    if (app.description.find("prune") == std::string::npos) continue;
    auto next = app.apply(f.plan());
    ASSERT_TRUE(next.ok());
    const BranchInput& in = (*next->GetJob("J"))->branches[0].inputs[0];
    EXPECT_EQ(in.prune_partitions, (std::vector<int>{0, 1, 2}));
    EXPECT_NEAR(in.prune_fraction, 0.3, 0.01);
    ExpectEquivalent(f, f.plan(), *next);
    pruned = true;
  }
  EXPECT_TRUE(pruned);
}

TEST(PartitionFnTest, RevertRangeToHashUnpinsReduceCount) {
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  Plan plan = f->plan();
  auto ja = plan.GetMutableJob("Ja");
  (*ja)->branches[0].partition.type = PartitionType::kRange;
  (*ja)->branches[0].partition.partition_fields = {"G"};
  (*ja)->branches[0].partition.split_points = {Row{int64_t{50}}};
  ASSERT_TRUE(plan.Validate().ok());
  ASSERT_EQ((*plan.GetJob("Ja"))->EffectiveReduceTasks(), 2);

  PartitionFunctionTransform transform;
  bool reverted = false;
  for (auto& app : transform.FindApplications(plan, AllJobs(plan))) {
    if (app.description.find("hash-partition Ja") == std::string::npos) {
      continue;
    }
    auto next = app.apply(plan);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ((*next->GetJob("Ja"))->branches[0].partition.type,
              PartitionType::kHash);
    reverted = true;
  }
  EXPECT_TRUE(reverted);
}

TEST(PlanSignatureTest, DistinguishesStructureIgnoresConfig) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  std::string sig = PlanSignature(f->plan());
  Plan reconfigured = f->plan();
  (*reconfigured.GetMutableJob("Jp"))->config.num_reduce_tasks = 77;
  EXPECT_EQ(PlanSignature(reconfigured), sig);
  Plan pruned = f->plan();
  (*pruned.GetMutableJob("Jc"))->branches[0].inputs[0].prune_partitions = {0};
  EXPECT_NE(PlanSignature(pruned), sig);
}

}  // namespace
}  // namespace stubby

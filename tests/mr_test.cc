// Tests for mr/: Value, Row, Schema, JobConfig/ConfigSpace, Partitioner.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mr/job_config.h"
#include "mr/partitioner.h"
#include "mr/schema.h"
#include "mr/tuple.h"
#include "mr/value.h"

namespace stubby {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value(int64_t{3}).is_int());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_EQ(Value(int64_t{3}).AsInt(), 3);
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, OrderingIsTotalAcrossTypes) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(int64_t{2}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));  // numerics before strings
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, NumericEqualityAcrossIntAndDouble) {
  EXPECT_EQ(Value(int64_t{7}), Value(7.0));
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_NE(Value(int64_t{7}), Value(7.5));
}

TEST(ValueTest, SerializedSize) {
  EXPECT_EQ(Value(int64_t{1}).SerializedSize(), 8u);
  EXPECT_EQ(Value(1.0).SerializedSize(), 8u);
  EXPECT_EQ(Value("abcd").SerializedSize(), 8u);  // 4 prefix + 4 bytes
}

TEST(RowTest, ProjectAndCompare) {
  Row r{int64_t{1}, "x", 2.5};
  Row p = r.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value(2.5));
  EXPECT_EQ(p[1], Value(int64_t{1}));

  Row a{int64_t{1}, int64_t{5}};
  Row b{int64_t{1}, int64_t{9}};
  EXPECT_EQ(CompareOnFields(a, b, {0}), 0);
  EXPECT_LT(CompareOnFields(a, b, {0, 1}), 0);
  EXPECT_TRUE(EqualOnFields(a, b, {0}));
  EXPECT_FALSE(EqualOnFields(a, b, {1}));
}

TEST(RowTest, LexicographicOrdering) {
  EXPECT_LT((Row{int64_t{1}, int64_t{2}}), (Row{int64_t{1}, int64_t{3}}));
  EXPECT_LT((Row{int64_t{1}}), (Row{int64_t{1}, int64_t{0}}));
}

TEST(RowTest, ApproxEquality) {
  Row a{int64_t{1}, 100.0};
  Row b{int64_t{1}, 100.0 + 1e-12};
  Row c{int64_t{1}, 100.1};
  EXPECT_TRUE(RowApproxEqual(a, b));
  EXPECT_FALSE(RowApproxEqual(a, c));
  EXPECT_TRUE(RowsApproxEqual({a, c}, {c, b}, 1e-9));
  EXPECT_FALSE(RowsApproxEqual({a}, {a, b}, 1e-9));
}

TEST(SchemaTest, IndexLookup) {
  Schema s({"a", "b", "c"});
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_FALSE(s.IndexOf("z").has_value());
  auto idx = s.IndicesOf({"c", "a"});
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, (std::vector<size_t>{2, 0}));
  EXPECT_FALSE(s.IndicesOf({"a", "q"}).ok());
}

TEST(SchemaTest, ContainsAndConcat) {
  Schema s({"a", "b"});
  EXPECT_TRUE(s.Contains(FieldSet{"a", "b"}));
  EXPECT_FALSE(s.Contains(FieldSet{"a", "x"}));
  Schema c = s.Concat(Schema({"b", "c"}));
  EXPECT_EQ(c.fields(), (std::vector<std::string>{"a", "b", "b#1", "c"}));
}

TEST(SchemaTest, FieldSetOperations) {
  FieldSet a{"x", "y"}, b{"y", "z"};
  EXPECT_EQ(Intersect(a, b), FieldSet{"y"});
  EXPECT_EQ(Union(a, b), (FieldSet{"x", "y", "z"}));
  EXPECT_EQ(Minus(a, b), FieldSet{"x"});
  EXPECT_TRUE(IsSubset(FieldSet{"y"}, a));
  EXPECT_FALSE(IsSubset(a, b));
}

TEST(JobConfigTest, ToStringAndEquality) {
  JobConfig a, b;
  EXPECT_EQ(a, b);
  b.num_reduce_tasks = 7;
  EXPECT_FALSE(a == b);
  EXPECT_NE(a.ToString().find("reduce_tasks=1"), std::string::npos);
}

TEST(ConfigSpaceTest, PointRoundTrip) {
  ConfigSpace space = ConfigSpace::Default(100, /*has_combiner=*/true);
  JobConfig c;
  c.num_reduce_tasks = 55;
  c.io_sort_mb = 256;
  c.io_sort_factor = 20;
  c.compress_map_output = true;
  c.compress_output = false;
  c.split_mb = 128;
  c.use_combiner = true;
  JobConfig round = space.PointToConfig(space.ConfigToPoint(c), JobConfig{});
  EXPECT_EQ(round.num_reduce_tasks, 55);
  EXPECT_EQ(round.io_sort_mb, 256);
  EXPECT_EQ(round.io_sort_factor, 20);
  EXPECT_TRUE(round.compress_map_output);
  EXPECT_FALSE(round.compress_output);
  EXPECT_TRUE(round.use_combiner);
}

TEST(ConfigSpaceTest, ClampsOutOfRangePoints) {
  ConfigSpace space = ConfigSpace::Default(100, false);
  std::vector<double> point(space.size(), 2.0);  // beyond the unit cube
  JobConfig c = space.PointToConfig(point, JobConfig{});
  EXPECT_EQ(c.num_reduce_tasks, 200);  // hi bound = 2*max_reduce_tasks
  EXPECT_EQ(c.io_sort_mb, 512);
}

class HashPartitionerProperty : public ::testing::TestWithParam<int> {};

TEST_P(HashPartitionerProperty, SameKeySamePartitionAndInRange) {
  const int R = GetParam();
  Schema schema({"k", "v"});
  Partitioner p =
      *Partitioner::Make(PartitionSpec::DefaultFor({"k"}), schema);
  Rng rng(1234);
  for (int i = 0; i < 500; ++i) {
    int64_t k = rng.NextInt(0, 50);
    Row a{k, rng.NextInt(0, 1000)};
    Row b{k, rng.NextInt(0, 1000)};
    int pa = p.PartitionOf(a, R);
    EXPECT_GE(pa, 0);
    EXPECT_LT(pa, R);
    EXPECT_EQ(pa, p.PartitionOf(b, R)) << "key " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(ReducerCounts, HashPartitionerProperty,
                         ::testing::Values(1, 2, 7, 64, 1024));

TEST(RangePartitionerTest, BucketsBySplitPoints) {
  Schema schema({"k"});
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"k"};
  spec.sort_fields = {"k"};
  spec.split_points = {Row{int64_t{10}}, Row{int64_t{20}}};
  Partitioner p = *Partitioner::Make(spec, schema);
  EXPECT_EQ(p.PartitionOf(Row{int64_t{3}}, 3), 0);
  EXPECT_EQ(p.PartitionOf(Row{int64_t{10}}, 3), 1);  // boundary goes right
  EXPECT_EQ(p.PartitionOf(Row{int64_t{15}}, 3), 1);
  EXPECT_EQ(p.PartitionOf(Row{int64_t{99}}, 3), 2);
}

TEST(RangePartitionerTest, RangeIsOrderPreserving) {
  Schema schema({"k"});
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"k"};
  spec.sort_fields = {"k"};
  for (int s = 5; s < 100; s += 5) spec.split_points.push_back(Row{s});
  Partitioner p = *Partitioner::Make(spec, schema);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    int64_t a = rng.NextInt(0, 120), b = rng.NextInt(0, 120);
    if (a > b) std::swap(a, b);
    EXPECT_LE(p.PartitionOf(Row{a}, 20), p.PartitionOf(Row{b}, 20));
  }
}

TEST(PartitionerTest, MissingFieldFails) {
  Schema schema({"a"});
  EXPECT_FALSE(Partitioner::Make(PartitionSpec::DefaultFor({"b"}), schema)
                   .ok());
}

TEST(RangePartitionerTest, RejectsMoreSplitPartitionsThanReduceTasks) {
  // Two split points define three partitions; a job running only two reduce
  // tasks would silently fold the third key range into the last partition.
  Schema schema({"k"});
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"k"};
  spec.sort_fields = {"k"};
  spec.split_points = {Row{int64_t{10}}, Row{int64_t{20}}};
  auto p = Partitioner::Make(spec, schema, /*num_partitions=*/2);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kInvalidArgument);
  // Enough reduce tasks (or an unchecked resolve with 0) is fine.
  EXPECT_TRUE(Partitioner::Make(spec, schema, 3).ok());
  EXPECT_TRUE(Partitioner::Make(spec, schema, 0).ok());
}

TEST(RowTest, ApproxMultisetEqualityToleratesSortPositionSwaps) {
  // Rows equal within tolerance can sort into different positions because
  // the sort is exact: a sorts (1.0, 5.0) first, b sorts (1.0+d, 5.0)
  // second. Pairwise post-sort comparison would wrongly fail; the
  // tolerance-aware matching must pair them crosswise.
  const double d = 1e-12;
  std::vector<Row> a = {Row{1.0, 5.0}, Row{1.0 + d, 1.0}};
  std::vector<Row> b = {Row{1.0, 1.0}, Row{1.0 + d, 5.0}};
  EXPECT_TRUE(RowsApproxEqual(a, b, 1e-9));
  EXPECT_TRUE(RowsApproxEqual(b, a, 1e-9));
  // Rows that differ beyond tolerance still fail...
  std::vector<Row> c = {Row{1.0, 5.0}, Row{2.0, 1.0}};
  EXPECT_FALSE(RowsApproxEqual(a, c, 1e-9));
  // ...as do equal-length multisets with mismatched multiplicities.
  std::vector<Row> e = {Row{1.0, 5.0}, Row{1.0, 5.0}};
  EXPECT_FALSE(RowsApproxEqual(a, e, 1e-9));
  EXPECT_FALSE(RowsApproxEqual(std::vector<Row>{Row{1.0}}, {}, 1e-9));
}

TEST(PartitionSpecTest, FixesNumPartitionsOnlyWithExplicitSplits) {
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"k"};
  EXPECT_FALSE(spec.FixesNumPartitions());
  spec.split_points = {Row{int64_t{1}}};
  EXPECT_TRUE(spec.FixesNumPartitions());
  EXPECT_EQ(spec.NumRangePartitions(), 2);
}

}  // namespace
}  // namespace stubby

// Tests for exec/: record-level execution of jobs and workflows on the
// simulated cluster — result correctness, accounting, pruning, alignment,
// shared scans, and logical scaling.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <utility>

#include "common/threading.h"
#include "exec/job_runner.h"
#include "reuse/result_store.h"
#include "test_workflows.h"
#include "workloads/registry.h"

namespace stubby {
namespace {

using ::stubby::testing::ExpectEquivalent;
using ::stubby::testing::MakeChain;
using ::stubby::testing::MakeSiblings;
using ::stubby::testing::RunOn;

TEST(WorkflowRunnerTest, ChainProducesCorrectAggregates) {
  auto f = MakeChain(/*rows=*/1000, /*distinct_k=*/10, /*distinct_z=*/5);
  ASSERT_TRUE(f.ok());
  Dfs result;
  RunOn(*f, f->plan(), &result);

  // Reference aggregation computed directly from the base data.
  auto base = f->dfs().Get("IN");
  ASSERT_TRUE(base.ok());
  std::map<int64_t, double> expected;
  for (const Row& r : (*base)->AllRows()) {
    expected[r[0].AsInt()] += r[2].AsDouble();
  }
  auto out = result.Get("OUT");
  ASSERT_TRUE(out.ok());
  std::vector<Row> rows = (*out)->AllRows();
  ASSERT_EQ(rows.size(), expected.size());
  for (const Row& r : rows) {
    EXPECT_NEAR(r[1].AsDouble(), expected[r[0].AsInt()], 1e-6);
  }
}

TEST(WorkflowRunnerTest, MissingBaseInputFails) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  WorkflowRunner runner(f->plan().cluster());
  Dfs empty;
  EXPECT_FALSE(runner.Run(f->plan(), &empty).ok());
}

TEST(WorkflowRunnerTest, CombinerDoesNotChangeResults) {
  auto f = MakeChain(2000, 20, 10);
  ASSERT_TRUE(f.ok());
  Plan with = f->plan();
  Plan without = f->plan();
  (*with.GetMutableJob("Jp"))->config.use_combiner = true;
  (*without.GetMutableJob("Jp"))->config.use_combiner = false;
  ExpectEquivalent(*f, with, without);
}

TEST(WorkflowRunnerTest, ReduceCountDoesNotChangeResults) {
  auto f = MakeChain(2000, 20, 10);
  ASSERT_TRUE(f.ok());
  Plan small = f->plan();
  Plan large = f->plan();
  (*small.GetMutableJob("Jp"))->config.num_reduce_tasks = 1;
  (*large.GetMutableJob("Jp"))->config.num_reduce_tasks = 97;
  ExpectEquivalent(*f, small, large);
}

TEST(JobRunnerTest, DataflowAccountingIsConsistent) {
  auto f = MakeChain(1000, 10, 5);
  ASSERT_TRUE(f.ok());
  WorkflowDataflow flow = RunOn(*f, f->plan());
  ASSERT_EQ(flow.jobs.size(), 2u);
  const JobDataflow& jp = flow.jobs[0];
  EXPECT_GT(jp.num_map_tasks, 0);
  EXPECT_GT(jp.map_input_bytes, 0u);
  // Logical input of Jp equals the base dataset's logical size.
  auto base = f->dfs().Get("IN");
  EXPECT_NEAR(static_cast<double>(jp.map_input_bytes),
              static_cast<double>((*base)->logical_bytes()),
              static_cast<double>((*base)->logical_bytes()) * 0.01);
  // Combiner off by default; map output flows into the reduce (up to
  // per-bucket rounding of the scaled accounting).
  EXPECT_NEAR(static_cast<double>(jp.combine_output_records),
              static_cast<double>(jp.map_output_records),
              1e-6 * jp.map_output_records);
  EXPECT_NEAR(static_cast<double>(jp.reduce_input_records),
              static_cast<double>(jp.combine_output_records),
              1e-6 * jp.combine_output_records);
  EXPECT_GE(jp.max_reduce_input_bytes,
            jp.reduce_input_bytes / static_cast<uint64_t>(
                                        std::max(1, jp.num_reduce_tasks)));
  EXPECT_GT(flow.makespan_sec, 0.0);
}

TEST(JobRunnerTest, CombinerShrinksShuffleAccounting) {
  auto f = MakeChain(4000, 5, 2);  // few groups => combining collapses a lot
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  (*plan.GetMutableJob("Jp"))->config.use_combiner = true;
  WorkflowDataflow flow = RunOn(*f, plan);
  const JobDataflow& jp = flow.jobs[0];
  EXPECT_LT(jp.combine_output_records, jp.map_output_records / 2);
}

TEST(JobRunnerTest, SharedScanCountsInputOnce) {
  auto f = MakeSiblings(2000);
  ASSERT_TRUE(f.ok());
  // Pack manually into one two-branch job.
  Plan plan = f->plan();
  JobVertex packed;
  packed.id = "packed";
  packed.branches = {(*plan.GetJob("Ja"))->branches[0],
                     (*plan.GetJob("Jb"))->branches[0]};
  packed.config = (*plan.GetJob("Ja"))->config;
  plan.RemoveJob("Ja");
  plan.RemoveJob("Jb");
  ASSERT_TRUE(plan.AddJob(packed).ok());
  ASSERT_TRUE(plan.Validate().ok());

  WorkflowDataflow packed_flow = RunOn(*f, plan);
  WorkflowDataflow separate_flow = RunOn(*f, f->plan());
  uint64_t packed_in = packed_flow.jobs[0].map_input_bytes;
  uint64_t separate_in = separate_flow.jobs[0].map_input_bytes +
                         separate_flow.jobs[1].map_input_bytes;
  EXPECT_NEAR(static_cast<double>(separate_in),
              2.0 * static_cast<double>(packed_in), 0.02 * separate_in);
  EXPECT_EQ(packed_flow.jobs[0].pipelines_per_task, 2);
  // ...and the packed plan computes the same outputs.
  ExpectEquivalent(*f, plan, f->plan());
}

TEST(JobRunnerTest, PartitionPruningReadsSubset) {
  // Range-partitioned base dataset; consumer reads only partition 0.
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  for (int i = 0; i < 1000; ++i) rows.push_back(Row{int64_t{i % 100}, 1.0});
  Layout layout;
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"k"};
  spec.sort_fields = {"k"};
  spec.split_points = {Row{int64_t{50}}};
  layout.partitioning = spec;
  ASSERT_TRUE(
      f.AddBase("IN", schema, layout, 2, rows, testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("OUT", schema, true).ok());
  WorkflowFactory::JobDef j;
  j.id = "J";
  BranchInput in = In("IN", {});
  in.prune_partitions = {0};
  j.inputs = {in};
  j.map_output_schema = schema;
  j.output = "OUT";
  ASSERT_TRUE(f.AddJob(std::move(j)).ok());

  Dfs result;
  WorkflowDataflow flow = RunOn(f, f.plan(), &result);
  auto out = result.Get("OUT");
  ASSERT_TRUE(out.ok());
  for (const Row& r : (*out)->AllRows()) EXPECT_LT(r[0].AsInt(), 50);
  // Roughly half the logical bytes were read.
  auto base = f.dfs().Get("IN");
  EXPECT_LT(flow.jobs[0].map_input_bytes, (*base)->logical_bytes() * 6 / 10);
}

TEST(JobRunnerTest, MapOnlyJobWritesPerTaskPartitions) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(Row{int64_t{i}, 2.0});
  Layout layout;
  ASSERT_TRUE(
      f.AddBase("IN", schema, layout, 4, rows, 4 * testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("OUT", schema, true).ok());
  WorkflowFactory::JobDef j;
  j.id = "J";
  j.inputs = {In("IN", {})};
  j.map_output_schema = schema;
  j.output = "OUT";
  ASSERT_TRUE(f.AddJob(std::move(j)).ok());
  Dfs result;
  WorkflowDataflow flow = RunOn(f, f.plan(), &result);
  EXPECT_EQ(flow.jobs[0].num_reduce_tasks, 0);
  auto out = result.Get("OUT");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)->num_rows(), 100u);
  EXPECT_EQ(static_cast<int>((*out)->num_partitions()),
            flow.jobs[0].num_map_tasks);
}

TEST(JobRunnerTest, ResolvePartitionSpecDeduplicatesSplitCandidates) {
  // A sampler output with repeated boundary rows must not yield duplicate
  // split points: equal adjacent boundaries define ranges that can never
  // receive a record, silently wasting reduce partitions.
  Dfs dfs;
  Layout layout;
  std::vector<Row> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back(Row{int64_t{5}});
    rows.push_back(Row{int64_t{9}});
  }
  auto ds = StoredDataset::FromRows("SPLITS", Schema({"k"}), layout,
                                    std::move(rows), 1);
  ASSERT_TRUE(ds.ok());
  ASSERT_TRUE(dfs.Put(*ds).ok());

  Branch branch;
  branch.partition.type = PartitionType::kRange;
  branch.partition.partition_fields = {"k"};
  branch.partition.split_points_from = "SPLITS";

  auto spec = ResolvePartitionSpec(branch, /*R=*/8, dfs);
  ASSERT_TRUE(spec.ok());
  ASSERT_EQ(spec->split_points.size(), 2u);  // the two distinct boundaries
  EXPECT_LT(spec->split_points[0], spec->split_points[1]);
}

TEST(JobRunnerTest, PrunePartitionOutOfRangeFails) {
  // A prune entry pointing past the dataset's partition count used to be
  // silently dropped, making the consumer read nothing where the plan
  // claimed a subset scan; it must surface as an error instead.
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema schema({"k", "v"});
  std::vector<Row> rows;
  for (int i = 0; i < 100; ++i) rows.push_back(Row{int64_t{i}, 1.0});
  Layout layout;
  ASSERT_TRUE(
      f.AddBase("IN", schema, layout, 2, rows, testing::kGB).ok());
  ASSERT_TRUE(f.AddDataset("OUT", schema, true).ok());
  WorkflowFactory::JobDef j;
  j.id = "J";
  BranchInput in = In("IN", {});
  in.prune_partitions = {5};  // IN has 2 partitions
  j.inputs = {in};
  j.map_output_schema = schema;
  j.output = "OUT";
  ASSERT_TRUE(f.AddJob(std::move(j)).ok());

  WorkflowRunner runner(f.plan().cluster());
  Dfs dfs = f.dfs();
  auto flow = runner.Run(f.plan(), &dfs);
  ASSERT_FALSE(flow.ok());
  EXPECT_EQ(flow.status().code(), StatusCode::kInvalidArgument);
}

// --- vectorized execution A/B ----------------------------------------------

bool SameDoubleBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// One execution of a workload's unoptimized plan: raw outputs plus the
/// observables the transparency contract covers.
struct ExecObservables {
  std::map<std::string, std::vector<Row>> outputs;
  double makespan = 0.0;
  std::string dataflow;
};

Result<ExecObservables> RunWorkload(const Workload& w, ThreadPool* pool,
                                    ExecOptions exec) {
  Dfs dfs = w.dfs;
  WorkflowRunner runner(w.plan.cluster(), pool, exec);
  STUBBY_ASSIGN_OR_RETURN(WorkflowDataflow flow, runner.Run(w.plan, &dfs));
  ExecObservables obs;
  obs.makespan = flow.makespan_sec;
  for (const JobDataflow& jd : flow.jobs) obs.dataflow += jd.ToString() + "\n";
  for (const auto& [id, v] : w.plan.datasets()) {
    if (!v.is_workflow_output) continue;
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr out, dfs.Get(id));
    obs.outputs.emplace(id, out->AllRows());
  }
  return obs;
}

/// The hard invariant behind StubbyOptions::vectorized_exec and
/// ::columnar_storage: the default run, the batch-off run, and the
/// columnar-off run are bit-identical in outputs (raw order, no canonical
/// sort), per-job dataflow accounting, and makespan — at any thread count,
/// across all eight Table 1 workloads.
TEST(VectorizedExecTest, IsBitIdenticalAcrossWorkloadsAndThreads) {
  for (const std::string& abbr : AllWorkloadAbbrs()) {
    WorkloadOptions wopts;
    wopts.sample_rows = 3000;
    auto w = MakeWorkload(abbr, wopts);
    ASSERT_TRUE(w.ok()) << abbr;
    for (int threads : {1, 4}) {
      ThreadPool pool(threads);
      auto on = RunWorkload(*w, &pool, ExecOptions{});
      ASSERT_TRUE(on.ok()) << abbr << " t" << threads << ": " << on.status();
      for (const auto& [label, exec] :
           std::initializer_list<std::pair<const char*, ExecOptions>>{
               {"batch-off", ExecOptions{false}},
               {"columnar-off", ExecOptions{true, false}}}) {
        auto off = RunWorkload(*w, &pool, exec);
        ASSERT_TRUE(off.ok()) << abbr << " t" << threads << ": "
                              << off.status();
        ASSERT_EQ(on->outputs.size(), off->outputs.size()) << abbr;
        for (const auto& [id, rows] : on->outputs) {
          ASSERT_EQ(off->outputs.count(id), 1u) << abbr << " " << id;
          EXPECT_TRUE(RowsBitIdentical(rows, off->outputs.at(id)))
              << abbr << " t" << threads << " output " << id
              << " differs between default and " << label;
        }
        EXPECT_EQ(on->dataflow, off->dataflow)
            << abbr << " t" << threads << " " << label;
        EXPECT_TRUE(SameDoubleBits(on->makespan, off->makespan))
            << abbr << " t" << threads << " " << label << ": "
            << on->makespan << " vs " << off->makespan;
      }
    }
  }
}

TEST(JobRunnerTest, OutputDatasetInheritsLogicalScale) {
  auto f = MakeChain(1000, 10, 5, /*logical_bytes=*/64 * testing::kGB);
  ASSERT_TRUE(f.ok());
  Dfs result;
  RunOn(*f, f->plan(), &result);
  auto mid = result.Get("MID");
  ASSERT_TRUE(mid.ok());
  EXPECT_GT((*mid)->logical_scale(), 100.0);  // inherited from the base
}

}  // namespace
}  // namespace stubby

// Tests for optimizer/configuration: applying configurations under the
// conditions ledger, the per-job search space, and the rules of thumb.

#include <gtest/gtest.h>

#include "optimizer/configuration.h"
#include "test_workflows.h"

namespace stubby {
namespace {

using ::stubby::testing::MakeChain;

TEST(ApplyConfigurationTest, FixedReduceCountWins) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  (*plan.GetMutableJob("Jp"))->conditions.num_reduce_fixed = 9;
  JobConfig c;
  c.num_reduce_tasks = 77;
  ASSERT_TRUE(ApplyConfiguration(&plan, "Jp", c).ok());
  EXPECT_EQ((*plan.GetJob("Jp"))->config.num_reduce_tasks, 9);
}

TEST(ApplyConfigurationTest, CombinerOnlyWhenProgramHasOne) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  JobConfig c;
  c.use_combiner = true;
  // Jp has a combiner, Jc does not.
  ASSERT_TRUE(ApplyConfiguration(&plan, "Jp", c).ok());
  ASSERT_TRUE(ApplyConfiguration(&plan, "Jc", c).ok());
  EXPECT_TRUE((*plan.GetJob("Jp"))->config.use_combiner);
  EXPECT_FALSE((*plan.GetJob("Jc"))->config.use_combiner);
}

TEST(ApplyConfigurationTest, OutputCompressionFlowsIntoLayout) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  JobConfig c;
  c.compress_output = true;
  ASSERT_TRUE(ApplyConfiguration(&plan, "Jp", c).ok());
  EXPECT_TRUE((*plan.GetDataset("MID"))->layout.compressed);
  ASSERT_TRUE((*plan.GetDataset("MID"))->annotation.layout.has_value());
  EXPECT_TRUE((*plan.GetDataset("MID"))->annotation.layout->compressed);
}

TEST(ApplyConfigurationTest, UnknownJobFails) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  EXPECT_FALSE(ApplyConfiguration(&plan, "nope", JobConfig{}).ok());
}

TEST(SpaceForJobTest, PinnedReduceCountDropsTheDimension) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  const ClusterSpec& cluster = f->plan().cluster();
  JobVertex job = *(*f->plan().GetJob("Jp"));
  ConfigSpace free_space = SpaceForJob(job, cluster);
  bool has_reduce_dim = false;
  for (const auto& d : free_space.dims()) {
    if (d.name == "num_reduce_tasks") has_reduce_dim = true;
  }
  EXPECT_TRUE(has_reduce_dim);

  job.conditions.num_reduce_fixed = 4;
  ConfigSpace pinned = SpaceForJob(job, cluster);
  for (const auto& d : pinned.dims()) {
    EXPECT_NE(d.name, "num_reduce_tasks");
  }
  EXPECT_EQ(pinned.size() + 1, free_space.size());

  // Range partitioning with explicit splits also pins it.
  job.conditions.num_reduce_fixed.reset();
  job.branches[0].partition.type = PartitionType::kRange;
  job.branches[0].partition.split_points = {Row{int64_t{1}}};
  ConfigSpace ranged = SpaceForJob(job, cluster);
  for (const auto& d : ranged.dims()) {
    EXPECT_NE(d.name, "num_reduce_tasks");
  }
}

TEST(SpaceForJobTest, MapOnlyJobsHaveNoReduceDimension) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  JobVertex job = *(*f->plan().GetJob("Jp"));
  job.branches[0].reduce_stages.clear();
  job.branches[0].partition = PartitionSpec();
  ConfigSpace space = SpaceForJob(job, f->plan().cluster());
  for (const auto& d : space.dims()) {
    EXPECT_NE(d.name, "num_reduce_tasks");
  }
}

TEST(RuleOfThumbTest, ScalesReducersWithAnnotatedInput) {
  auto f = MakeChain(/*rows=*/2000, 50, 40,
                     /*logical_bytes=*/3 * ::stubby::testing::kGB);
  ASSERT_TRUE(f.ok());
  const Plan& plan = f->plan();
  JobConfig small =
      RuleOfThumbConfig(*(*plan.GetJob("Jp")), plan.cluster(), &plan);
  EXPECT_GE(small.num_reduce_tasks, 3);
  EXPECT_LE(small.num_reduce_tasks, 6);

  auto big = MakeChain(2000, 50, 40, /*logical_bytes=*/800ull << 30);
  ASSERT_TRUE(big.ok());
  JobConfig capped = RuleOfThumbConfig(*(*big->plan().GetJob("Jp")),
                                       big->plan().cluster(), &big->plan());
  EXPECT_EQ(capped.num_reduce_tasks,
            static_cast<int>(big->plan().cluster().total_reduce_slots() *
                             0.95));
}

TEST(RuleOfThumbTest, UsesCombinerWhenAvailable) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  const Plan& plan = f->plan();
  EXPECT_TRUE(RuleOfThumbConfig(*(*plan.GetJob("Jp")), plan.cluster(), &plan)
                  .use_combiner);
  EXPECT_FALSE(RuleOfThumbConfig(*(*plan.GetJob("Jc")), plan.cluster(), &plan)
                   .use_combiner);
}

TEST(RuleOfThumbTest, UnknownSizesFallBackToOneWave) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  const Plan& plan = f->plan();
  // Jc reads the intermediate MID, whose size is not annotated.
  JobConfig c =
      RuleOfThumbConfig(*(*plan.GetJob("Jc")), plan.cluster(), &plan);
  EXPECT_EQ(c.num_reduce_tasks,
            static_cast<int>(plan.cluster().total_reduce_slots() * 0.95));
}

}  // namespace
}  // namespace stubby

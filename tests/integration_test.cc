// Integration and property tests across module boundaries:
//  - many-to-one intra-job vertical packing with two separate producer
//    jobs (the paper's Section 3.1 extension: producers pinned to one
//    partitioning and a common reduce count),
//  - co-aligned merge-mode execution on a join,
//  - every comparator on every workflow stays result-equivalent,
//  - cascaded packing on the BA double-join reaches map-only joins.

#include <gtest/gtest.h>

#include "baselines/mrshare.h"
#include "baselines/pig_baseline.h"
#include "baselines/starfish.h"
#include "baselines/ysmart.h"
#include "optimizer/stubby.h"
#include "optimizer/vertical.h"
#include "test_workflows.h"
#include "workloads/registry.h"

namespace stubby {
namespace {

using ::stubby::testing::ExpectEquivalent;
using ::stubby::testing::ProfileInPlace;
using ::stubby::testing::RunOn;

std::vector<std::string> AllJobs(const Plan& plan) {
  std::vector<std::string> out;
  for (const auto& [jid, job] : plan.jobs()) out.push_back(jid);
  return out;
}

// Two separate producers (group by {K}) whose outputs a join-style consumer
// groups by {K} again — the many-to-one intra-packing site.
Result<WorkflowFactory> MakeManyToOne(uint64_t seed = 31) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(seed);
  Schema in_schema({"K", "V"});
  auto gen = [&](int n) {
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) {
      rows.push_back(Row{rng.NextInt(0, 49), rng.NextDouble(0, 10)});
    }
    return rows;
  };
  Layout layout;
  STUBBY_RETURN_NOT_OK(f.AddBase("A", in_schema, layout, 4, gen(3000),
                                 8 * testing::kGB));
  STUBBY_RETURN_NOT_OK(f.AddBase("B", in_schema, layout, 4, gen(3000),
                                 8 * testing::kGB));
  Schema agg({"K", "S"});
  // The two producer outputs carry distinct value names so the tagged
  // union for the consumer is by-position; grouping stays on K.
  Schema mid_a({"K", "S"});
  Schema mid_b({"K", "S"});
  STUBBY_RETURN_NOT_OK(f.AddDataset("MA", mid_a));
  STUBBY_RETURN_NOT_OK(f.AddDataset("MB", mid_b));
  Schema joined({"K", "BOTH"});
  STUBBY_RETURN_NOT_OK(f.AddDataset("OUT", joined, true));

  auto add_producer = [&](const std::string& id, const std::string& in,
                          const std::string& out) -> Status {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In(in, {})};
    j.map_output_schema = in_schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_" + id, in_schema, {"K"}, {{"V", AggOp::kSum, "S"}}),
        {"K"})};
    j.output = out;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"K"};
    sa.v1 = FieldSet{"V"};
    sa.k2 = FieldSet{"K"};
    sa.v2 = FieldSet{"V"};
    sa.k3 = FieldSet{"K"};
    sa.v3 = FieldSet{"S"};
    j.schema_ann = sa;
    return f.AddJob(std::move(j));
  };
  STUBBY_RETURN_NOT_OK(add_producer("Jp1", "A", "MA"));
  STUBBY_RETURN_NOT_OK(add_producer("Jp2", "B", "MB"));

  // Consumer: adds the two per-key sums (a co-grouped join).
  auto join = std::make_shared<LambdaReduceFn>(
      "join_sums", joined,
      [](const Row& key, const std::vector<Row>& group, Emitter* out) {
        double total = 0;
        for (const Row& r : group) total += r[1].AsDouble();
        out->Emit(Row{key[0], total});
      },
      1.0);
  WorkflowFactory::JobDef j;
  j.id = "Jc";
  j.inputs = {In("MA", {}), In("MB", {})};
  j.map_output_schema = mid_a;
  j.reduce_stages = {Stage::Reduce(join, {"K"})};
  j.output = "OUT";
  SchemaAnnotation sa;
  sa.k1 = FieldSet{"K"};
  sa.v1 = FieldSet{"S"};
  sa.k2 = FieldSet{"K"};
  sa.v2 = FieldSet{"S"};
  sa.k3 = FieldSet{"K"};
  sa.v3 = FieldSet{"BOTH"};
  j.schema_ann = sa;
  STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  return f;
}

TEST(ManyToOneTest, IntraPackPinsBothProducers) {
  auto f = MakeManyToOne();
  ASSERT_TRUE(f.ok()) << f.status();
  ProfileInPlace(&*f);

  IntraJobVerticalPacking intra;
  auto apps = intra.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_EQ(apps.size(), 1u);
  auto packed = apps[0].apply(f->plan());
  ASSERT_TRUE(packed.ok()) << packed.status();
  ASSERT_TRUE(packed->Validate().ok());

  const JobVertex& jp1 = *(*packed->GetJob("Jp1"));
  const JobVertex& jp2 = *(*packed->GetJob("Jp2"));
  const JobVertex& jc = *(*packed->GetJob("Jc"));
  // Both producers frozen on the shared partitioning with one fixed count.
  EXPECT_TRUE(jp1.conditions.partition_frozen);
  EXPECT_TRUE(jp2.conditions.partition_frozen);
  ASSERT_TRUE(jp1.conditions.num_reduce_fixed.has_value());
  EXPECT_EQ(jp1.conditions.num_reduce_fixed, jp2.conditions.num_reduce_fixed);
  // The consumer reads both inputs co-aligned through merged stages.
  EXPECT_TRUE(jc.map_only());
  EXPECT_TRUE(jc.branches[0].merge_mode());
  for (const BranchInput& in : jc.branches[0].inputs) {
    EXPECT_TRUE(in.aligned);
  }
  ExpectEquivalent(*f, f->plan(), *packed);
}

TEST(ManyToOneTest, MergeModeExecutesGroupsAcrossInputs) {
  auto f = MakeManyToOne();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  IntraJobVerticalPacking intra;
  auto apps = intra.FindApplications(f->plan(), AllJobs(f->plan()));
  ASSERT_FALSE(apps.empty());
  Plan packed = *apps[0].apply(f->plan());
  // Each key's group must see rows from both producers in one invocation —
  // the joined sum over both inputs must match the unpacked plan exactly.
  Dfs da, db;
  RunOn(*f, f->plan(), &da);
  RunOn(*f, packed, &db);
  auto a = da.Get("OUT");
  auto b = db.Get("OUT");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->num_rows(), 50u);
  EXPECT_TRUE(RowsApproxEqual((*a)->AllRows(), (*b)->AllRows(), 1e-6));
}

TEST(BaCascadeTest, BothJoinsEndUpMapOnly) {
  // The paper highlights BA: intra-job vertical packing applies to both
  // join jobs. After Stubby, J2 and J3 (possibly packed onward) must be
  // map-only merge-mode jobs.
  WorkloadOptions options;
  options.sample_rows = 6000;
  auto w = MakeWorkload("BA", options);
  ASSERT_TRUE(w.ok());
  Profiler profiler(options.cluster);
  Dfs dfs = w->dfs;
  ASSERT_TRUE(profiler.ProfilePlan(&w->plan, &dfs).ok());
  auto report = StubbyOptimizer().Optimize(w->plan);
  ASSERT_TRUE(report.ok());
  int map_only_merge_jobs = 0;
  for (const auto& [jid, job] : report->plan.jobs()) {
    if (job.map_only() && job.branches[0].merge_mode()) {
      ++map_only_merge_jobs;
    }
  }
  EXPECT_GE(map_only_merge_jobs, 2) << report->plan.ToString();
}

// Every comparator must preserve results on every workflow.
struct MatrixCase {
  std::string workload;
  std::string optimizer;
};

class ComparatorMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {
};

TEST_P(ComparatorMatrix, ResultEquivalent) {
  const auto& [abbr, name] = GetParam();
  WorkloadOptions options;
  options.sample_rows = 4000;
  auto w = MakeWorkload(abbr, options);
  ASSERT_TRUE(w.ok()) << w.status();
  Profiler profiler(options.cluster);
  Dfs pdfs = w->dfs;
  ASSERT_TRUE(profiler.ProfilePlan(&w->plan, &pdfs).ok());

  Result<Plan> plan = Status::Unknown("unset");
  if (name == "baseline") {
    plan = PigBaseline(w->plan);
  } else if (name == "starfish") {
    plan = StarfishOptimize(w->plan);
  } else if (name == "ysmart") {
    plan = YSmartOptimize(w->plan);
  } else {
    plan = MRShareOptimize(w->plan);
  }
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->Validate().ok());

  WorkflowRunner runner(options.cluster);
  Dfs da = w->dfs, db = w->dfs;
  auto fa = runner.Run(w->plan, &da);
  auto fb = runner.Run(*plan, &db);
  ASSERT_TRUE(fa.ok() && fb.ok());
  for (const auto& [id, ds] : w->plan.datasets()) {
    if (!ds.is_workflow_output) continue;
    auto ra = da.Get(id);
    auto rb = db.Get(id);
    ASSERT_TRUE(ra.ok() && rb.ok()) << id;
    EXPECT_TRUE(RowsApproxEqual((*ra)->AllRows(), (*rb)->AllRows(), 1e-6))
        << abbr << "/" << name << " output " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, ComparatorMatrix,
    ::testing::Combine(::testing::ValuesIn(AllWorkloadAbbrs()),
                       ::testing::Values("baseline", "starfish", "ysmart",
                                         "mrshare")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

}  // namespace
}  // namespace stubby

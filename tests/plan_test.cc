// Tests for workflow/: plan graph structure, validation, subgraph
// classification, and DOT export.

#include <gtest/gtest.h>

#include "test_workflows.h"
#include "workflow/dot.h"
#include "workflow/subgraph.h"

namespace stubby {
namespace {

using ::stubby::testing::MakeChain;
using ::stubby::testing::MakeSiblings;

TEST(PlanTest, GraphStructureQueries) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  const Plan& plan = f->plan();
  EXPECT_EQ(plan.num_jobs(), 2u);
  EXPECT_EQ(plan.ProducerOf("MID"), "Jp");
  EXPECT_EQ(plan.ProducerOf("IN"), "");
  EXPECT_EQ(plan.ConsumersOf("MID"), std::vector<std::string>{"Jc"});
  EXPECT_EQ(plan.UpstreamJobs("Jc"), std::vector<std::string>{"Jp"});
  EXPECT_EQ(plan.DownstreamJobs("Jp"), std::vector<std::string>{"Jc"});
  auto order = plan.TopologicalOrder();
  ASSERT_TRUE(order.ok());
  EXPECT_EQ(*order, (std::vector<std::string>{"Jp", "Jc"}));
  EXPECT_TRUE(plan.HasPath("Jp", "Jc"));
  EXPECT_FALSE(plan.HasPath("Jc", "Jp"));
}

TEST(PlanTest, ValidatePassesOnWellFormedPlans) {
  auto chain = MakeChain();
  ASSERT_TRUE(chain.ok());
  EXPECT_TRUE(chain->plan().Validate().ok());
  auto siblings = MakeSiblings();
  ASSERT_TRUE(siblings.ok());
  EXPECT_TRUE(siblings->plan().Validate().ok());
}

TEST(PlanTest, ValidateRejectsUnknownInputDataset) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto job = plan.GetMutableJob("Jc");
  (*job)->branches[0].inputs[0].dataset_id = "NOPE";
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsSchemaMismatch) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto job = plan.GetMutableJob("Jc");
  (*job)->branches[0].map_output_schema = Schema({"bogus"});
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsGroupingNotPrefixOfSort) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto job = plan.GetMutableJob("Jp");
  (*job)->branches[0].partition.sort_fields = {"Z", "K"};
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsGroupedMapStageOnUnalignedInput) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto job = plan.GetMutableJob("Jc");
  Branch& b = (*job)->branches[0];
  // Move the reduce stage into the (unaligned) map pipeline.
  b.inputs[0].map_stages.push_back(b.reduce_stages[0]);
  b.map_output_schema = b.reduce_stages[0].output_schema();
  b.reduce_stages.clear();
  b.partition = PartitionSpec();
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, ValidateRejectsDoubleProducer) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto jp = plan.GetJob("Jp");
  JobVertex dup = **jp;
  dup.id = "Jp2";
  dup.branches[0].tag = "Jp2";
  ASSERT_TRUE(plan.AddJob(dup).ok());
  EXPECT_FALSE(plan.Validate().ok());  // MID produced twice
}

TEST(PlanTest, ValidateRejectsWriteToBaseInput) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto job = plan.GetMutableJob("Jp");
  (*job)->branches[0].output_dataset = "IN";
  EXPECT_FALSE(plan.Validate().ok());
}

TEST(PlanTest, RemoveOrphanDatasetsKeepsBaseAndOutputs) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  plan.RemoveJob("Jc");
  plan.RemoveJob("Jp");
  plan.RemoveOrphanDatasets();
  EXPECT_TRUE(plan.HasDataset("IN"));    // base input survives
  EXPECT_TRUE(plan.HasDataset("OUT"));   // workflow output survives
  EXPECT_FALSE(plan.HasDataset("MID"));  // intermediate dropped
}

TEST(PlanTest, EffectiveReduceTasksHonorsConditionsAndRange) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto job = plan.GetMutableJob("Jp");
  (*job)->config.num_reduce_tasks = 12;
  EXPECT_EQ((*job)->EffectiveReduceTasks(), 12);
  (*job)->conditions.num_reduce_fixed = 5;
  EXPECT_EQ((*job)->EffectiveReduceTasks(), 5);
  (*job)->conditions.num_reduce_fixed.reset();
  (*job)->branches[0].partition.type = PartitionType::kRange;
  (*job)->branches[0].partition.split_points = {Row{int64_t{1}},
                                                Row{int64_t{2}}};
  EXPECT_EQ((*job)->EffectiveReduceTasks(), 3);
}

TEST(SubgraphTest, ClassifiesChainAndSiblings) {
  auto chain = MakeChain();
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(ClassifyConsumer(chain->plan(), "Jp"), SubgraphType::kNoneToOne);
  EXPECT_EQ(ClassifyConsumer(chain->plan(), "Jc"), SubgraphType::kOneToOne);
  EXPECT_EQ(ClassifyProducer(chain->plan(), "Jp"), SubgraphType::kOneToOne);
  EXPECT_EQ(ClassifyProducer(chain->plan(), "Jc"), SubgraphType::kOneToNone);
  EXPECT_TRUE(IsOneToOne(chain->plan(), "Jp", "Jc"));
  EXPECT_FALSE(IsOneToOne(chain->plan(), "Jc", "Jp"));

  auto siblings = MakeSiblings();
  ASSERT_TRUE(siblings.ok());
  EXPECT_TRUE(ConcurrentlyRunnable(siblings->plan(), "Ja", "Jb"));
  EXPECT_FALSE(ConcurrentlyRunnable(chain->plan(), "Jp", "Jc"));
  EXPECT_EQ(SharedInputs(siblings->plan(), "Ja", "Jb"),
            std::vector<std::string>{"IN"});
}

TEST(DotTest, ExportMentionsAllVertices) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  std::string dot = PlanToDot(f->plan());
  for (const char* name : {"Jp", "Jc", "IN", "MID", "OUT", "digraph"}) {
    EXPECT_NE(dot.find(name), std::string::npos) << name;
  }
}

TEST(GroupBranchInputsTest, SharedScansGroupTogether) {
  auto f = MakeSiblings();
  ASSERT_TRUE(f.ok());
  // Horizontally pack manually: one job, two branches reading IN.
  JobVertex packed;
  packed.id = "packed";
  packed.branches = {(*f->plan().GetJob("Ja"))->branches[0],
                     (*f->plan().GetJob("Jb"))->branches[0]};
  std::vector<InputGroup> groups = GroupBranchInputs(packed);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].subscribers.size(), 2u);

  // Different prune lists must split the scan.
  packed.branches[1].inputs[0].prune_partitions = {0};
  groups = GroupBranchInputs(packed);
  EXPECT_EQ(groups.size(), 2u);
}

}  // namespace
}  // namespace stubby

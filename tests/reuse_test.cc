// Tests for src/reuse/: content-addressed signatures, the ResultStore, the
// ReuseRewriter, and the session loop's bit-identity contract (with reuse
// enabled, final workflow outputs are bit-identical to a recompute from
// scratch at any thread count).

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "common/threading.h"
#include "mr/row_batch.h"
#include "optimizer/transform.h"
#include "reuse/probe_cache.h"
#include "reuse/result_store.h"
#include "reuse/rewriter.h"
#include "reuse/session.h"
#include "reuse/signature.h"
#include "test_workflows.h"
#include "workloads/udfs.h"

namespace stubby {
namespace {

using ::stubby::testing::kGB;

// --- fixtures --------------------------------------------------------------

std::vector<Row> BaseRows(int rows = 3000, uint64_t seed = 11) {
  Rng rng(seed);
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back(Row{rng.NextInt(0, 99), rng.NextDouble(0, 10)});
  }
  return data;
}

// A map-only workflow over base <K, V>: filter (and optionally a second
// projection stage), with caller-chosen vertex names so tests can verify
// that identity is content-based, not name-based.
Result<WorkflowFactory> MakeMapOnly(const std::string& base_id,
                                    const std::string& job_id,
                                    const std::string& out_id,
                                    int num_stages) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema s({"K", "V"});
  STUBBY_RETURN_NOT_OK(
      f.AddBase(base_id, s, Layout{}, 6, BaseRows(), 4 * kGB));
  std::vector<Stage> stages = {
      Stage::Map(FilterRangeMap("keep_mid", s, "V", 2.0, 9.0))};
  Schema out_schema = s;
  if (num_stages > 1) {
    stages.push_back(Stage::Map(ProjectMap("just_k", s, {"K"})));
    out_schema = Schema({"K"});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddDataset(out_id, out_schema, /*workflow_output=*/true));
  WorkflowFactory::JobDef j;
  j.id = job_id;
  j.inputs = {In(base_id, std::move(stages))};
  j.map_output_schema = out_schema;
  j.output = out_id;
  STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  return f;
}

// A two-job chain whose *first* job is identical across variants and whose
// second differs: the whole-job reuse scenario (workflow B resubmits
// workflow A's producer under new names with a different consumer).
Result<WorkflowFactory> MakeChainVariant(const std::string& suffix,
                                         bool group_by_z) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(21);
  Schema in_schema({"K", "Z", "V"});
  std::vector<Row> data;
  for (int i = 0; i < 4000; ++i) {
    data.push_back(Row{rng.NextInt(0, 49), rng.NextInt(0, 39),
                       rng.NextDouble(0, 10)});
  }
  STUBBY_RETURN_NOT_OK(f.AddBase("IN" + suffix, in_schema, Layout{}, 8,
                                 std::move(data), 16 * kGB));
  Schema mid({"K", "Z", "S"});
  STUBBY_RETURN_NOT_OK(f.AddDataset("MID" + suffix, mid));
  {
    WorkflowFactory::JobDef j;
    j.id = "Jp" + suffix;
    j.inputs = {In("IN" + suffix, {})};
    j.map_output_schema = in_schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_kz", in_schema, {"K", "Z"}, {{"V", AggOp::kSum, "S"}}),
        {"K", "Z"})};
    j.output = "MID" + suffix;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  {
    WorkflowFactory::JobDef j;
    j.id = "Jc" + suffix;
    j.inputs = {In("MID" + suffix, {})};
    j.map_output_schema = mid;
    std::vector<std::string> group = group_by_z
                                         ? std::vector<std::string>{"Z"}
                                         : std::vector<std::string>{"K"};
    j.reduce_stages = {Stage::Reduce(
        AggReduce(group_by_z ? "sum_z" : "sum_k", mid, group,
                  {{"S", AggOp::kSum, "T"}}),
        group)};
    std::string out = "OUT" + suffix;
    STUBBY_RETURN_NOT_OK(f.AddDataset(out, j.reduce_stages[0].output_schema(),
                                      /*workflow_output=*/true));
    j.output = out;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  return f;
}

// Structural-transform-free options: optimized plans equal input plans, so
// job reuse keys are predictable across variants.
StubbyOptions PlainOptions() {
  StubbyOptions opts;
  opts.enable_intra_vertical = false;
  opts.enable_inter_vertical = false;
  opts.enable_horizontal = false;
  opts.enable_partition_function = false;
  opts.enable_configuration = false;
  return opts;
}

DatasetPtr MakeStored(const std::string& id, int rows, uint64_t seed = 3) {
  auto ds = std::make_shared<StoredDataset>(id, Schema({"K", "V"}), Layout{});
  Rng rng(seed);
  std::vector<Row> part;
  for (int i = 0; i < rows; ++i) {
    part.push_back(Row{rng.NextInt(0, 9), rng.NextDouble(0, 1)});
  }
  ds->AddPartition(std::move(part));
  return ds;
}

// --- prune canonicalization (bugfix sweep) ---------------------------------

TEST(PruneCanonicalTest, SortsAndDeduplicates) {
  EXPECT_EQ(CanonicalPrunePartitions({2, 1, 2, 0}),
            (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(CanonicalPrunePartitions({}).empty());
}

TEST(PruneCanonicalTest, ScanGroupingMergesPermutedPruneLists) {
  // {1,2} and {2,1,1} select the same partition set; before the fix they
  // produced two physical scans of the same data.
  JobVertex job;
  job.id = "J";
  Branch b1;
  b1.tag = "a";
  BranchInput in1;
  in1.dataset_id = "D";
  in1.prune_partitions = {1, 2};
  b1.inputs = {in1};
  b1.output_dataset = "O1";
  Branch b2 = b1;
  b2.tag = "b";
  b2.inputs[0].prune_partitions = {2, 1, 1};
  b2.output_dataset = "O2";
  job.branches = {b1, b2};
  auto groups = GroupBranchInputs(job);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].prune_partitions, (std::vector<int>{1, 2}));
  EXPECT_EQ(groups[0].subscribers.size(), 2u);
}

// --- signatures ------------------------------------------------------------

TEST(SignatureTest, VertexNamesDoNotEnterIdentity) {
  auto fa = MakeMapOnly("B", "J1", "OUT", 2);
  auto fb = MakeMapOnly("BASE_X", "JOB_Y", "RESULT_Z", 2);
  ASSERT_TRUE(fa.ok() && fb.ok());
  auto la = ComputeLineage(fa->plan(), fa->dfs());
  auto lb = ComputeLineage(fb->plan(), fb->dfs());
  ASSERT_TRUE(la.ok() && lb.ok());
  ASSERT_EQ(la->jobs.size(), 1u);
  ASSERT_EQ(lb->jobs.size(), 1u);
  EXPECT_EQ(la->jobs.at("J1"), lb->jobs.at("JOB_Y"));
  EXPECT_EQ(la->datasets.at("OUT"), lb->datasets.at("RESULT_Z"));
}

TEST(SignatureTest, ConfigurationAndContentEnterIdentity) {
  auto fa = MakeMapOnly("B", "J1", "OUT", 1);
  ASSERT_TRUE(fa.ok());
  auto base = ComputeLineage(fa->plan(), fa->dfs());
  ASSERT_TRUE(base.ok());

  // Different job configuration -> different key.
  Plan tweaked = fa->plan();
  (*tweaked.GetMutableJob("J1"))->config.split_mb += 32;
  auto lt = ComputeLineage(tweaked, fa->dfs());
  ASSERT_TRUE(lt.ok());
  EXPECT_NE(base->jobs.at("J1"), lt->jobs.at("J1"));

  // Different base-input content -> different key.
  Dfs other_dfs = fa->dfs();
  auto stored = other_dfs.Get("B");
  ASSERT_TRUE(stored.ok());
  DatasetPtr changed = CloneDataset(**stored, "B");
  changed->AddPartition({Row{int64_t{1}, 0.5}});
  other_dfs.PutOrReplace(changed);
  auto lc = ComputeLineage(fa->plan(), other_dfs);
  ASSERT_TRUE(lc.ok());
  EXPECT_NE(base->jobs.at("J1"), lc->jobs.at("J1"));
}

TEST(SignatureTest, MapOnlyBranchIgnoresInertPartitionSpec) {
  // Leftover partition specs on a map-only branch are never executed, so
  // they must not split identities (bugfix sweep: logically-equal jobs got
  // distinct keys).
  auto f = MakeMapOnly("B", "J1", "OUT", 1);
  ASSERT_TRUE(f.ok());
  auto base = ComputeLineage(f->plan(), f->dfs());
  ASSERT_TRUE(base.ok());
  Plan tweaked = f->plan();
  JobVertex* job = *tweaked.GetMutableJob("J1");
  ASSERT_TRUE(job->branches[0].map_only());
  job->branches[0].partition.partition_fields = {"K"};
  auto lt = ComputeLineage(tweaked, f->dfs());
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(base->jobs.at("J1"), lt->jobs.at("J1"));
}

TEST(SignatureTest, PruneListOrderDoesNotEnterIdentity) {
  auto f = MakeMapOnly("B", "J1", "OUT", 1);
  ASSERT_TRUE(f.ok());
  Plan a = f->plan();
  (*a.GetMutableJob("J1"))->branches[0].inputs[0].prune_partitions = {2, 1};
  Plan b = f->plan();
  (*b.GetMutableJob("J1"))->branches[0].inputs[0].prune_partitions = {1, 2, 2};
  auto la = ComputeLineage(a, f->dfs());
  auto lb = ComputeLineage(b, f->dfs());
  ASSERT_TRUE(la.ok() && lb.ok());
  EXPECT_EQ(la->jobs.at("J1"), lb->jobs.at("J1"));
}

TEST(SignatureTest, DatasetContentKeyIgnoresStorageRepresentation) {
  // Content addressing must hash the logical rows, not the physical
  // layout: a column-native partition (what the columnar executor stores)
  // and a row-native partition of the same data are the same snapshot.
  std::vector<Row> rows = BaseRows(200);
  StoredDataset row_major("a", Schema({"K", "V"}), Layout{});
  row_major.AddPartition(rows);

  StoredDataset col_major("b", Schema({"K", "V"}), Layout{});
  col_major.AddPartition(
      PartitionData::FromBatch(RowBatch::FromRows(rows, 2)));
  ASSERT_TRUE(col_major.partition_data(0).column_native());

  EXPECT_EQ(DatasetContentKey(row_major), DatasetContentKey(col_major));

  // Different content must still split keys through the columnar path.
  StoredDataset other("c", Schema({"K", "V"}), Layout{});
  std::vector<Row> tweaked = rows;
  tweaked[57] = Row{int64_t{1234}, 5.0};
  other.AddPartition(
      PartitionData::FromBatch(RowBatch::FromRows(tweaked, 2)));
  EXPECT_NE(DatasetContentKey(row_major), DatasetContentKey(other));
}

// --- the store -------------------------------------------------------------

TEST(ResultStoreTest, RegisterLookupAndSharedSnapshots) {
  ResultStore store;
  DatasetPtr ds = MakeStored("x", 50);
  CostKey k1{1, 2}, k2{3, 4};
  std::string snap = store.Register(
      *ds, {{k1, ReuseKind::kJobOutput}, {k2, ReuseKind::kWorkflowOutput}});
  EXPECT_EQ(store.num_entries(), 2u);
  EXPECT_EQ(store.num_snapshots(), 1u);  // both keys share one snapshot
  EXPECT_EQ(store.Peek(k1)->snapshot_id, snap);
  EXPECT_EQ(store.Peek(k1)->hits, 0u);
  EXPECT_NE(store.Lookup(k2), nullptr);
  EXPECT_EQ(store.Peek(k2)->hits, 1u);
  EXPECT_EQ(store.total_hits(), 1u);

  // First registration wins; re-registering under the same key is a no-op.
  DatasetPtr other = MakeStored("y", 10, /*seed=*/99);
  std::string again = store.Register(*other, {{k1, ReuseKind::kJobOutput}});
  EXPECT_EQ(again, snap);
  EXPECT_EQ(store.num_snapshots(), 1u);

  auto opened = store.OpenSnapshot(snap);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(RowsBitIdentical((*opened)->AllRows(), ds->AllRows()));
}

TEST(ResultStoreTest, BudgetEvictionIsLruAndDeterministic) {
  DatasetPtr ds = MakeStored("x", 100);
  ResultStore::Options opts;
  opts.byte_budget = ds->raw_bytes() * 2;  // room for two snapshots
  ResultStore a(opts), b(opts);
  for (ResultStore* s : {&a, &b}) {
    s->Register(*ds, {{CostKey{1, 0}, ReuseKind::kJobOutput}});
    s->Register(*ds, {{CostKey{2, 0}, ReuseKind::kJobOutput}});
    s->Lookup(CostKey{1, 0});  // make key 2 the LRU victim
    s->Register(*ds, {{CostKey{3, 0}, ReuseKind::kJobOutput}});
  }
  EXPECT_EQ(a.num_entries(), 2u);
  EXPECT_EQ(a.evictions(), 1u);
  EXPECT_EQ(a.Peek(CostKey{2, 0}), nullptr);  // LRU evicted
  EXPECT_NE(a.Peek(CostKey{1, 0}), nullptr);
  EXPECT_NE(a.Peek(CostKey{3, 0}), nullptr);
  EXPECT_LE(a.stored_bytes(), opts.byte_budget);
  // Identical call sequences produce byte-identical stores.
  EXPECT_EQ(a.Serialize(), b.Serialize());
}

TEST(ResultStoreTest, ExactFractionCompareSurvives128BitOperands) {
  using u128 = unsigned __int128;
  EXPECT_EQ(ExactFractionCompare(1, 3, 2, 5), -1);
  EXPECT_EQ(ExactFractionCompare(2, 5, 1, 3), 1);
  EXPECT_EQ(ExactFractionCompare(2, 4, 3, 6), 0);
  EXPECT_EQ(ExactFractionCompare(7, 2, 5, 2), 1);
  EXPECT_EQ(ExactFractionCompare(0, 7, 0, 11), 0);
  // Regression: operands where naive cross-multiplication wraps mod 2^128.
  // Both cross products here are ≡ 0 (mod 2^128), which would falsely
  // report a tie, yet the fractions differ by a factor of 2^125.
  const u128 big = u128{1} << 127;
  EXPECT_EQ(ExactFractionCompare(big, 4, big >> 1, big >> 1), 1);
  EXPECT_EQ(ExactFractionCompare(big >> 1, big >> 1, big, 4), -1);
  // Near-equal giants exercise the continued-fraction descent:
  // 1 + 1/(2^127-1)  <  1 + 1/(2^127-2).
  EXPECT_EQ(ExactFractionCompare(big, big - 1, big - 1, big - 2), -1);
  EXPECT_EQ(ExactFractionCompare(big - 1, big - 2, big, big - 1), 1);
  EXPECT_EQ(ExactFractionCompare(big, big - 1, big, big - 1), 0);
}

TEST(ResultStoreTest, EvictionNeverCollectsPinnedSnapshots) {
  // Satellite regression: a snapshot referenced by a live (rewritten) plan
  // is pinned by the session; eviction must never delete it, however tight
  // the budget gets.
  DatasetPtr ds = MakeStored("x", 100);
  ResultStore::Options opts;
  opts.byte_budget = ds->raw_bytes();  // exactly one snapshot fits
  ResultStore store(opts);
  CostKey pinned_key{1, 0};
  std::string snap =
      store.Register(*ds, {{pinned_key, ReuseKind::kJobOutput}});
  store.Pin(snap);
  store.Register(*ds, {{CostKey{2, 0}, ReuseKind::kJobOutput}});
  // The unpinned entry was evicted; the pinned one survives over-budget.
  EXPECT_EQ(store.Peek(CostKey{2, 0}), nullptr);
  ASSERT_NE(store.Peek(pinned_key), nullptr);
  EXPECT_TRUE(store.OpenSnapshot(snap).ok());
  // Once unpinned, the next registration may finally evict it.
  store.Unpin(snap);
  store.Register(*ds, {{CostKey{3, 0}, ReuseKind::kJobOutput}});
  EXPECT_EQ(store.Peek(pinned_key), nullptr);
  EXPECT_FALSE(store.OpenSnapshot(snap).ok());
}

TEST(DfsTest, CollectDropsExactlyTheNonLiveDatasets) {
  Dfs dfs;
  dfs.PutOrReplace(MakeStored("a", 5));
  dfs.PutOrReplace(MakeStored("b", 5));
  dfs.PutOrReplace(MakeStored("c", 5));
  std::vector<std::string> collected = dfs.Collect({"b"});
  EXPECT_EQ(collected, (std::vector<std::string>{"a", "c"}));
  EXPECT_TRUE(dfs.Exists("b"));
  EXPECT_FALSE(dfs.Exists("a"));
  EXPECT_EQ(dfs.size(), 1u);
}

TEST(ResultStoreTest, CatalogRoundTripPreservesKeysAndCounters) {
  ResultStore store;
  DatasetPtr ds = MakeStored("x", 40);
  CostKey k1{0x0123456789abcdefull, 0xfedcba9876543210ull};
  CostKey k2{7, 0};
  store.Register(*ds, {{k1, ReuseKind::kMapStream}});
  store.Register(*MakeStored("y", 10, 5), {{k2, ReuseKind::kJobOutput}});
  store.Lookup(k1);

  auto restored = ResultStore::Deserialize(store.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->Serialize(), store.Serialize());
  ASSERT_NE(restored->Peek(k1), nullptr);
  EXPECT_EQ(restored->Peek(k1)->hits, 1u);
  EXPECT_EQ(restored->Peek(k1)->kind, ReuseKind::kMapStream);
  auto snap = restored->OpenSnapshot(restored->Peek(k1)->snapshot_id);
  ASSERT_TRUE(snap.ok());
  EXPECT_TRUE(RowsBitIdentical((*snap)->AllRows(), ds->AllRows()));
  EXPECT_FALSE(ResultStore::Deserialize("{\"format\":\"nope\"}").ok());
}

// --- rewriting + session bit-identity --------------------------------------

TEST(ReuseRewriterTest, NoHitsLeavesPlanBitIdentical) {
  auto f = MakeMapOnly("B", "J1", "OUT", 2);
  ASSERT_TRUE(f.ok());
  ResultStore store;
  ReuseRewriter rewriter(&store, &f->dfs());
  auto result = rewriter.Rewrite(f->plan());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->changed);
  EXPECT_EQ(result->stats.whole_job_hits, 0u);
  EXPECT_EQ(PlanSignature(result->plan), PlanSignature(f->plan()));
  EXPECT_EQ(result->plan.ToString(), f->plan().ToString());
}

TEST(ReuseRewriterTest, MapPrefixLadderMemoIsTransparent) {
  // Warm the store with Q1 = [filter] so probing Q2 = [filter, project]
  // walks the tier-2b prefix ladder (k = 2 misses, k = 1 hits). The probe
  // memo must change nothing but the memo counters and the number of
  // signature digests actually computed.
  auto q1 = MakeMapOnly("B", "J1", "OUT1", 1);
  auto q2 = MakeMapOnly("BB", "J2", "OUT2", 2);
  ASSERT_TRUE(q1.ok() && q2.ok());
  ResultStore store;
  ReuseSession session(&store);
  auto r1 = session.Run(q1->plan(), q1->dfs(), StubbyOptions{});
  ASSERT_TRUE(r1.ok()) << r1.status();

  ReuseRewriter rewriter(&store, &q2->dfs());
  auto plain = rewriter.PlanForScope(q2->plan(), nullptr, nullptr, nullptr);
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_GE(plain->stats.prefix_hits, 1u) << plain->stats.ToString();
  EXPECT_EQ(plain->stats.probe_cache_hits, 0u);   // no memo attached
  EXPECT_EQ(plain->stats.probe_cache_misses, 0u);
  EXPECT_GT(plain->stats.signature_keys_computed, 0u);

  ReuseProbeCache memo;
  RewriteProbe probe{&memo, nullptr};
  auto cold = rewriter.PlanForScope(q2->plan(), nullptr, nullptr, &probe);
  auto warm = rewriter.PlanForScope(q2->plan(), nullptr, nullptr, &probe);
  ASSERT_TRUE(cold.ok() && warm.ok());
  for (const ReuseRewriteResult* r : {&*cold, &*warm}) {
    EXPECT_EQ(r->plan.ToString(), plain->plan.ToString());
    EXPECT_EQ(r->stats.prefix_hits, plain->stats.prefix_hits);
    EXPECT_EQ(r->stats.lookups, plain->stats.lookups);
    EXPECT_EQ(r->stats.bytes_saved, plain->stats.bytes_saved);
  }
  // Cold memo: every signature computed once and inserted; warm memo:
  // every resolution (job keys and ladder rungs alike) served from memo.
  EXPECT_EQ(cold->stats.probe_cache_hits, 0u);
  EXPECT_GT(cold->stats.probe_cache_misses, 0u);
  EXPECT_EQ(cold->stats.signature_keys_computed,
            plain->stats.signature_keys_computed);
  EXPECT_EQ(warm->stats.probe_cache_misses, 0u);
  EXPECT_EQ(warm->stats.probe_cache_hits, cold->stats.probe_cache_misses);
  EXPECT_EQ(warm->stats.signature_keys_computed, 0u);
}

TEST(ReuseSessionTest, RepeatedWorkflowIsElidedWholesale) {
  auto f = MakeMapOnly("B", "J1", "OUT", 1);
  ASSERT_TRUE(f.ok());
  ResultStore store;
  ReuseSession session(&store);
  StubbyOptions opts;  // default option set, salt included in terminal keys

  auto first = session.Run(f->plan(), f->dfs(), opts);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->report.reuse_materialized);
  EXPECT_GT(first->reuse.registered, 0u);

  auto second = session.Run(f->plan(), f->dfs(), opts);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->report.reuse_materialized);
  EXPECT_GE(second->reuse.workflow_hits, 1u);
  EXPECT_EQ(second->report.plan.num_jobs(), 0u);
  ASSERT_EQ(second->outputs.count("OUT"), 1u);
  EXPECT_TRUE(
      RowsBitIdentical(second->outputs.at("OUT"), first->outputs.at("OUT")));

  // A different option set must not match the stored terminals.
  StubbyOptions other = opts;
  other.unit.seed += 1;
  EXPECT_NE(ReuseSaltFromOptions(opts), ReuseSaltFromOptions(other));
  auto third = session.Run(f->plan(), f->dfs(), other);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->report.reuse_materialized);
}

TEST(ReuseSessionTest, MapPrefixReuseIsBitIdenticalAtAnyThreadCount) {
  // Q1 = [filter], Q2 = [filter, project] over identical base content (under
  // different vertex names): running Q2 after Q1 must reuse Q1's stream as
  // the length-1 prefix and still produce recompute-identical bits.
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    auto q1 = MakeMapOnly("B", "J1", "OUT1", 1);
    auto q2 = MakeMapOnly("BB", "J2", "OUT2", 2);
    ASSERT_TRUE(q1.ok() && q2.ok());
    StubbyOptions opts;

    ReuseSession recompute(nullptr);
    auto baseline = recompute.Run(q2->plan(), q2->dfs(), opts, &pool);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    ResultStore store;
    ReuseSession session(&store);
    auto r1 = session.Run(q1->plan(), q1->dfs(), opts, &pool);
    ASSERT_TRUE(r1.ok()) << r1.status();
    auto r2 = session.Run(q2->plan(), q2->dfs(), opts, &pool);
    ASSERT_TRUE(r2.ok()) << r2.status();

    EXPECT_GE(r2->reuse.prefix_hits, 1u) << r2->reuse.ToString();
    EXPECT_GT(r2->reuse.bytes_saved, 0u);
    ASSERT_EQ(r2->outputs.count("OUT2"), 1u);
    EXPECT_TRUE(RowsBitIdentical(r2->outputs.at("OUT2"),
                                 baseline->outputs.at("OUT2")));
  }
}

TEST(ReuseSessionTest, SuccessfulWarmRunReleasesEveryPin) {
  // Regression: the session's pin releaser must observe the pinned-snapshot
  // list, not a pointer into the result that `return` has already moved
  // from — otherwise every successful warm run leaks its pins and the byte
  // budget is silently defeated (EnforceBudget skips pinned entries).
  auto q1 = MakeMapOnly("B", "J1", "OUT1", 1);
  auto q2 = MakeMapOnly("BB", "J2", "OUT2", 2);
  ASSERT_TRUE(q1.ok() && q2.ok());
  StubbyOptions opts;

  ResultStore store;
  ReuseSession session(&store);
  auto r1 = session.Run(q1->plan(), q1->dfs(), opts);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_EQ(store.num_pins(), 0u);

  auto r2 = session.Run(q2->plan(), q2->dfs(), opts);
  ASSERT_TRUE(r2.ok()) << r2.status();
  // The warm run reused a snapshot (so pins were taken during planning)...
  EXPECT_FALSE(r2->report.reuse_pinned.empty());
  // ...and released every one of them before returning.
  EXPECT_EQ(store.num_pins(), 0u);

  // With no pins outstanding, a tightened budget can evict everything.
  ResultStore::Options tight = store.options();
  tight.byte_budget = 1;
  store.set_options(tight);
  EXPECT_EQ(store.num_entries(), 0u);
}

TEST(ReuseSessionTest, WholeJobReuseAcrossWorkflowsIsBitIdentical) {
  // Workflow A and workflow B share their producer job (same computation,
  // different vertex names); B's consumer differs, so only whole-job reuse
  // applies — B's producer is elided and its consumer reads the snapshot.
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    auto wa = MakeChainVariant("_a", /*group_by_z=*/false);
    auto wb = MakeChainVariant("_b", /*group_by_z=*/true);
    ASSERT_TRUE(wa.ok() && wb.ok());
    StubbyOptions opts = PlainOptions();

    ReuseSession recompute(nullptr);
    auto baseline = recompute.Run(wb->plan(), wb->dfs(), opts, &pool);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    ResultStore store;
    ReuseSession session(&store);
    auto ra = session.Run(wa->plan(), wa->dfs(), opts, &pool);
    ASSERT_TRUE(ra.ok()) << ra.status();
    auto rb = session.Run(wb->plan(), wb->dfs(), opts, &pool);
    ASSERT_TRUE(rb.ok()) << rb.status();

    EXPECT_GE(rb->reuse.whole_job_hits, 1u) << rb->reuse.ToString();
    EXPECT_GE(rb->reuse.jobs_elided, 1u);
    EXPECT_LT(rb->report.plan.num_jobs(), wb->plan().num_jobs());
    ASSERT_EQ(rb->outputs.count("OUT_b"), 1u);
    EXPECT_TRUE(RowsBitIdentical(rb->outputs.at("OUT_b"),
                                 baseline->outputs.at("OUT_b")));
  }
}

TEST(ReuseSessionTest, HitsSurviveCatalogSaveAndReload) {
  // Key stability across serialization: a store saved after workflow A and
  // reloaded must still produce the same hits for workflow B.
  auto wa = MakeChainVariant("_a", false);
  auto wb = MakeChainVariant("_b", true);
  ASSERT_TRUE(wa.ok() && wb.ok());
  StubbyOptions opts = PlainOptions();

  ResultStore store;
  ReuseSession session(&store);
  auto ra = session.Run(wa->plan(), wa->dfs(), opts);
  ASSERT_TRUE(ra.ok());

  auto reloaded = ResultStore::Deserialize(store.Serialize());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  ReuseSession resumed(&*reloaded);
  auto rb = resumed.Run(wb->plan(), wb->dfs(), opts);
  ASSERT_TRUE(rb.ok()) << rb.status();
  EXPECT_GE(rb->reuse.whole_job_hits, 1u) << rb->reuse.ToString();
}

// --- benefit-weighted eviction ---------------------------------------------

TEST(ResultStoreTest, BenefitWeightedEvictionKeepsHotEntriesLruWouldDrop) {
  // A: small, hit often, but oldest recency. B: large, never hit, fresher.
  // LRU evicts A (recency only); the benefit policy evicts B (low
  // bytes-saved-per-raw-byte). Same call sequence, different victims.
  DatasetPtr small = MakeStored("small", 40);
  DatasetPtr big = MakeStored("big", 100);
  const uint64_t budget = big->raw_bytes() + small->raw_bytes();

  ResultStore lru({budget, EvictionPolicy::kLru});
  ResultStore benefit({budget, EvictionPolicy::kBenefitWeighted});
  CostKey a{1, 0}, b{2, 0}, c{3, 0};
  for (ResultStore* s : {&lru, &benefit}) {
    s->Register(*small, {{a, ReuseKind::kJobOutput}});
    for (int i = 0; i < 5; ++i) s->Lookup(a);
    s->Register(*big, {{b, ReuseKind::kJobOutput}});
    s->Register(*small, {{c, ReuseKind::kJobOutput}});  // over budget
  }
  EXPECT_EQ(lru.evictions(), 1u);
  EXPECT_EQ(lru.Peek(a), nullptr);  // oldest recency loses under LRU
  EXPECT_NE(lru.Peek(b), nullptr);

  EXPECT_EQ(benefit.evictions(), 1u);
  EXPECT_NE(benefit.Peek(a), nullptr);  // 6 hits on 40 rows: high benefit
  EXPECT_EQ(benefit.Peek(b), nullptr);  // 0 hits on 100 rows: victim
  EXPECT_NE(benefit.Peek(c), nullptr);
  EXPECT_LE(benefit.stored_bytes(), budget);

  // Identical call sequences replay to byte-identical stores.
  ResultStore replay({budget, EvictionPolicy::kBenefitWeighted});
  replay.Register(*small, {{a, ReuseKind::kJobOutput}});
  for (int i = 0; i < 5; ++i) replay.Lookup(a);
  replay.Register(*big, {{b, ReuseKind::kJobOutput}});
  replay.Register(*small, {{c, ReuseKind::kJobOutput}});
  EXPECT_EQ(replay.Serialize(), benefit.Serialize());
}

TEST(ResultStoreTest, BenefitEvictionTieBreaksOnOlderRecency) {
  // Equal benefit fractions: A has hits=1, age=1 (2/2); B has hits=0,
  // age=0 (1/1) at enforcement time — the tie goes to the older last_used.
  DatasetPtr ds = MakeStored("x", 50);
  ResultStore store;
  CostKey a{1, 0}, b{2, 0};
  store.Register(*ds, {{a, ReuseKind::kJobOutput}});  // clock 1
  store.Lookup(a);                                    // clock 2: hits=1
  store.Register(*ds, {{b, ReuseKind::kJobOutput}});  // clock 3
  store.set_options({ds->raw_bytes(), EvictionPolicy::kBenefitWeighted});
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_EQ(store.Peek(a), nullptr);  // older recency evicts on the tie
  EXPECT_NE(store.Peek(b), nullptr);
}

TEST(ResultStoreTest, PolicySurvivesSerialization) {
  ResultStore store({1234, EvictionPolicy::kBenefitWeighted});
  store.Register(*MakeStored("x", 5), {{CostKey{1, 0},
                                        ReuseKind::kJobOutput}});
  auto restored = ResultStore::Deserialize(store.Serialize());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->options().byte_budget, 1234u);
  EXPECT_EQ(restored->options().policy, EvictionPolicy::kBenefitWeighted);
  EXPECT_EQ(restored->Serialize(), store.Serialize());
}

// --- file persistence --------------------------------------------------------

TEST(ResultStoreTest, FileRoundTripRestoresIdenticalHits) {
  // Save → reload through an actual file → the reloaded store produces the
  // same hits for the next workflow as the in-memory original would.
  auto wa = MakeChainVariant("_a", false);
  auto wb = MakeChainVariant("_b", true);
  ASSERT_TRUE(wa.ok() && wb.ok());
  StubbyOptions opts = PlainOptions();

  ResultStore store;
  ReuseSession session(&store);
  auto ra = session.Run(wa->plan(), wa->dfs(), opts);
  ASSERT_TRUE(ra.ok());

  const std::string path =
      ::testing::TempDir() + "/stubby_reuse_catalog_test.json";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  auto reloaded = ResultStore::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->Serialize(), store.Serialize());

  auto in_memory = session.Run(wb->plan(), wb->dfs(), opts);
  ReuseSession resumed(&*reloaded);
  auto from_file = resumed.Run(wb->plan(), wb->dfs(), opts);
  ASSERT_TRUE(in_memory.ok() && from_file.ok());
  EXPECT_GE(from_file->reuse.whole_job_hits, 1u);
  EXPECT_EQ(from_file->reuse.ToString(), in_memory->reuse.ToString());
  ASSERT_EQ(from_file->outputs.count("OUT_b"), 1u);
  EXPECT_TRUE(RowsBitIdentical(from_file->outputs.at("OUT_b"),
                               in_memory->outputs.at("OUT_b")));

  EXPECT_FALSE(ResultStore::LoadFromFile(path + ".does-not-exist").ok());
}

TEST(ResultStoreTest, FailedSaveLeavesOldCatalogLoadable) {
  // Saves go through <path>.tmp + rename, so a save that dies mid-write
  // must never clobber the previous on-disk catalog. Simulate the failure
  // by squatting on the temp path with a directory: fopen("wb") fails, the
  // old file survives, and removing the obstruction makes saves work again.
  ResultStore store;
  store.Register(*MakeStored("x", 25),
                 {{CostKey{1, 0}, ReuseKind::kJobOutput}});
  const std::string path =
      ::testing::TempDir() + "/stubby_atomic_save_test.json";
  std::remove(path.c_str());
  ASSERT_TRUE(store.SaveToFile(path).ok());
  const std::string old_catalog = store.Serialize();

  ResultStore bigger;
  bigger.Register(*MakeStored("x", 25),
                  {{CostKey{1, 0}, ReuseKind::kJobOutput}});
  bigger.Register(*MakeStored("y", 40),
                  {{CostKey{2, 0}, ReuseKind::kJobOutput}});
  const std::string tmp = path + ".tmp";
  ASSERT_EQ(::mkdir(tmp.c_str(), 0700), 0);
  EXPECT_FALSE(bigger.SaveToFile(path).ok());

  // The failed save left the previous catalog fully loadable.
  auto reloaded = ResultStore::LoadFromFile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status();
  EXPECT_EQ(reloaded->Serialize(), old_catalog);

  ASSERT_EQ(::rmdir(tmp.c_str()), 0);
  ASSERT_TRUE(bigger.SaveToFile(path).ok());
  auto replaced = ResultStore::LoadFromFile(path);
  ASSERT_TRUE(replaced.ok()) << replaced.status();
  EXPECT_EQ(replaced->Serialize(), bigger.Serialize());
  std::remove(path.c_str());
}

// --- reuse-aware unit search -------------------------------------------------

TEST(ReuseSearchTest, AwareSearchPricesAndAppliesStoreHits) {
  // Default options: the unit search runs, probes the warm store while
  // costing candidates, prices the rewritten form, and picks it.
  auto q1 = MakeMapOnly("B", "J1", "OUT1", 1);
  auto q2 = MakeMapOnly("BB", "J2", "OUT2", 2);
  ASSERT_TRUE(q1.ok() && q2.ok());
  StubbyOptions opts;
  opts.reuse_whole_workflow = false;  // force the in-search path

  ResultStore store;
  ReuseSession session(&store);
  auto r1 = session.Run(q1->plan(), q1->dfs(), opts);
  ASSERT_TRUE(r1.ok()) << r1.status();
  auto r2 = session.Run(q2->plan(), q2->dfs(), opts);
  ASSERT_TRUE(r2.ok()) << r2.status();

  EXPECT_GT(r2->reuse.search_probes, 0u) << r2->reuse.ToString();
  EXPECT_GE(r2->reuse.search_priced, 1u);
  EXPECT_GE(r2->reuse.search_won, 1u);
  EXPECT_GE(r2->reuse.prefix_hits, 1u);
  bool logged = false;
  for (const std::string& line : r2->report.applied) {
    if (line.find("reuse:") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged) << "no reuse entry in the transformation log";
}

TEST(ReuseSearchTest, ColdStoreSearchIsBitIdenticalToBlindSearch) {
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);

  StubbyOptions blind_opts;
  auto blind = StubbyOptimizer(blind_opts).Optimize(f->plan());
  ASSERT_TRUE(blind.ok());

  ResultStore store;  // empty: every probe misses
  StubbyOptions cold_opts;
  cold_opts.reuse_store = &store;
  cold_opts.reuse_dfs = &f->dfs();
  auto cold = StubbyOptimizer(cold_opts).Optimize(f->plan());
  ASSERT_TRUE(cold.ok());

  EXPECT_GT(cold->reuse.search_probes, 0u);
  EXPECT_EQ(cold->reuse.search_won, 0u);
  EXPECT_EQ(PlanSignature(cold->plan), PlanSignature(blind->plan));
  EXPECT_EQ(cold->estimated_cost, blind->estimated_cost);
  EXPECT_EQ(cold->applied, blind->applied);
}

TEST(ReuseSearchTest, AwareSearchNeverPricesAboveThePostHocPath) {
  // Warm the store with one profiled run, then optimize the same workflow
  // through the aware search and through the post-hoc rewrite: the aware
  // plan's estimated cost must never exceed the post-hoc plan's (the floor
  // guarantees it by construction).
  auto f = ::stubby::testing::MakeChain();
  ASSERT_TRUE(f.ok());
  ::stubby::testing::ProfileInPlace(&*f);

  ResultStore store;
  ReuseSession warmup(&store);
  StubbyOptions opts;
  opts.reuse_whole_workflow = false;
  auto first = warmup.Run(f->plan(), f->dfs(), opts);
  ASSERT_TRUE(first.ok()) << first.status();

  auto aware_store = ResultStore::Deserialize(store.Serialize());
  auto posthoc_store = ResultStore::Deserialize(store.Serialize());
  ASSERT_TRUE(aware_store.ok() && posthoc_store.ok());

  StubbyOptions aware_opts = opts;
  aware_opts.reuse_store = &*aware_store;
  aware_opts.reuse_dfs = &f->dfs();
  auto aware = StubbyOptimizer(aware_opts).Optimize(f->plan());
  ASSERT_TRUE(aware.ok());

  StubbyOptions posthoc_opts = aware_opts;
  posthoc_opts.reuse_store = &*posthoc_store;
  posthoc_opts.reuse_aware_search = false;
  auto posthoc = StubbyOptimizer(posthoc_opts).Optimize(f->plan());
  ASSERT_TRUE(posthoc.ok());

  EXPECT_LE(aware->estimated_cost, posthoc->estimated_cost)
      << "aware " << aware->estimated_cost << " vs posthoc "
      << posthoc->estimated_cost;
}

TEST(ReuseSearchTest, WarmSearchIsThreadCountInvariant) {
  // Plans, cost bits, reuse counters, and the mutated store itself must be
  // identical whether the aware search ran serially or on 4 threads.
  auto q1 = MakeMapOnly("B", "J1", "OUT1", 1);
  auto q2 = MakeMapOnly("BB", "J2", "OUT2", 2);
  ASSERT_TRUE(q1.ok() && q2.ok());
  StubbyOptions base;
  base.reuse_whole_workflow = false;

  ResultStore warm;
  ReuseSession warmup(&warm);
  auto r1 = warmup.Run(q1->plan(), q1->dfs(), base);
  ASSERT_TRUE(r1.ok());
  const std::string warm_bytes = warm.Serialize();

  std::optional<std::string> ref_plan, ref_counters, ref_store;
  std::optional<double> ref_cost;
  for (int threads : {1, 4}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    auto store = ResultStore::Deserialize(warm_bytes);
    ASSERT_TRUE(store.ok());
    ThreadPool pool(threads);
    StubbyOptions opts = base;
    opts.reuse_store = &*store;
    opts.reuse_dfs = &q2->dfs();
    opts.pool = &pool;
    auto report = StubbyOptimizer(opts).Optimize(q2->plan());
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_GE(report->reuse.search_won, 1u) << report->reuse.ToString();
    if (!ref_plan) {
      ref_plan = PlanSignature(report->plan);
      ref_cost = report->estimated_cost;
      ref_counters = report->reuse.ToString();
      ref_store = store->Serialize();
    } else {
      EXPECT_EQ(PlanSignature(report->plan), *ref_plan);
      EXPECT_EQ(report->estimated_cost, *ref_cost);
      EXPECT_EQ(report->reuse.ToString(), *ref_counters);
      EXPECT_EQ(store->Serialize(), *ref_store);
    }
  }
}

}  // namespace
}  // namespace stubby

// Tests for common/json and workflow/serialize: the annotated-workflow
// export/import feature (Section 6's Pig integration analogue).

#include <gtest/gtest.h>

#include "common/json.h"
#include "optimizer/stubby.h"
#include "test_workflows.h"
#include "workflow/serialize.h"

namespace stubby {
namespace {

using ::stubby::testing::ExpectEquivalent;
using ::stubby::testing::MakeChain;
using ::stubby::testing::MakeSiblings;
using ::stubby::testing::ProfileInPlace;

TEST(JsonTest, BuildAndDump) {
  Json obj = Json::Object();
  obj["name"] = "x";
  obj["n"] = 42;
  obj["flag"] = true;
  Json arr = Json::Array();
  arr.Append(1.5);
  arr.Append("two");
  obj["items"] = std::move(arr);
  std::string compact = obj.Dump(-1);
  EXPECT_EQ(compact,
            R"({"name":"x","n":42,"flag":true,"items":[1.5,"two"]})");
}

TEST(JsonTest, ParseRoundTrip) {
  const std::string doc =
      R"({"a": [1, 2.5, "s\n"], "b": {"c": null, "d": false}, "e": -3})";
  auto parsed = Json::Parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Find("a")->items()[2].AsString(), "s\n");
  EXPECT_TRUE(parsed->Find("b")->Find("c")->is_null());
  EXPECT_EQ(parsed->GetNumber("e"), -3);
  // Dump-parse-dump stability.
  auto reparsed = Json::Parse(parsed->Dump(2));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Dump(-1), parsed->Dump(-1));
}

TEST(JsonTest, ParseErrors) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("{} trailing").ok());
}

TEST(JsonTest, FieldOrderIsPreserved) {
  Json obj = Json::Object();
  obj["z"] = 1;
  obj["a"] = 2;
  EXPECT_EQ(obj.fields()[0].first, "z");
  EXPECT_EQ(obj.fields()[1].first, "a");
}

TEST(SerializeTest, RoundTripPreservesSignatureAndSemantics) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);

  std::string text = ExportPlan(f->plan());
  EXPECT_NE(text.find("stubby-plan"), std::string::npos);

  PlanFunctionResolver resolver(f->plan());
  auto imported = ImportPlan(text, resolver);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(PlanSignature(*imported), PlanSignature(f->plan()));
  EXPECT_EQ(imported->num_jobs(), f->plan().num_jobs());
  // The imported plan runs and produces the same results.
  ExpectEquivalent(*f, f->plan(), *imported);
}

TEST(SerializeTest, RoundTripPreservesAnnotationsAndConfigs) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  Plan plan = f->plan();
  (*plan.GetMutableJob("Jp"))->config.num_reduce_tasks = 33;
  (*plan.GetMutableJob("Jp"))->config.compress_map_output = true;
  (*plan.GetMutableJob("Jp"))->conditions.num_reduce_fixed = 33;

  PlanFunctionResolver resolver(plan);
  auto imported = ImportPlan(ExportPlan(plan), resolver);
  ASSERT_TRUE(imported.ok()) << imported.status();
  const JobVertex& jp = *(*imported->GetJob("Jp"));
  EXPECT_EQ(jp.config.num_reduce_tasks, 33);
  EXPECT_TRUE(jp.config.compress_map_output);
  EXPECT_EQ(jp.conditions.num_reduce_fixed, 33);
  const auto& profile = jp.branches[0].annotations.profile;
  ASSERT_TRUE(profile.has_value());
  EXPECT_GT(profile->k2_distinct_groups, 0);
  EXPECT_FALSE(profile->key_histograms.empty());
  const auto& schema = jp.branches[0].annotations.schema;
  ASSERT_TRUE(schema.has_value());
  EXPECT_EQ(*schema->k2, (FieldSet{"K", "Z"}));
}

TEST(SerializeTest, MaterializedFromRoundTrips) {
  // Reuse-rewritten plans mark stored-dataset scans via materialized_from;
  // exported artifacts must keep the marker so re-imported plans still
  // render and cost as reused scans.
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  Plan plan = f->plan();
  auto in = plan.GetMutableDataset("IN");
  ASSERT_TRUE(in.ok());
  (*in)->materialized_from = "rs/7";

  PlanFunctionResolver resolver(plan);
  auto imported = ImportPlan(ExportPlan(plan), resolver);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ((*imported->GetDataset("IN"))->materialized_from, "rs/7");
  // Unmarked datasets stay unmarked.
  EXPECT_TRUE((*imported->GetDataset("OUT"))->materialized_from.empty());
}

TEST(SerializeTest, OptimizedPlansRoundTripToo) {
  // Transformed plans (merged stages, tees, conditions) must survive the
  // round trip — the scenario where an integration persists the optimized
  // plan for repeated execution.
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  ProfileInPlace(&*f);
  auto report = StubbyOptimizer().Optimize(f->plan());
  ASSERT_TRUE(report.ok());

  PlanFunctionResolver resolver(report->plan);
  auto imported = ImportPlan(ExportPlan(report->plan), resolver);
  ASSERT_TRUE(imported.ok()) << imported.status();
  EXPECT_EQ(PlanSignature(*imported), PlanSignature(report->plan));
  ExpectEquivalent(*f, report->plan, *imported);
}

TEST(SerializeTest, MissingFunctionFailsCleanly) {
  auto f = MakeChain();
  ASSERT_TRUE(f.ok());
  std::string text = ExportPlan(f->plan());
  auto siblings = MakeSiblings();  // resolver with the wrong functions
  ASSERT_TRUE(siblings.ok());
  PlanFunctionResolver wrong(siblings->plan());
  auto imported = ImportPlan(text, wrong);
  EXPECT_FALSE(imported.ok());
  EXPECT_TRUE(imported.status().IsNotFound());
}

TEST(SerializeTest, RejectsForeignDocuments) {
  PlanFunctionResolver resolver{Plan{}};
  EXPECT_FALSE(ImportPlan("{\"format\": \"other\"}", resolver).ok());
  EXPECT_FALSE(ImportPlan("not json", resolver).ok());
}

}  // namespace
}  // namespace stubby

# Empty compiler generated dependencies file for stubby_test.
# This may be replaced when dependencies are built.

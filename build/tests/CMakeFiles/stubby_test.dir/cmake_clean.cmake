file(REMOVE_RECURSE
  "CMakeFiles/stubby_test.dir/stubby_test.cc.o"
  "CMakeFiles/stubby_test.dir/stubby_test.cc.o.d"
  "stubby_test"
  "stubby_test.pdb"
  "stubby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

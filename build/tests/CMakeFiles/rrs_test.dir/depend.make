# Empty dependencies file for rrs_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rrs_test.dir/rrs_test.cc.o"
  "CMakeFiles/rrs_test.dir/rrs_test.cc.o.d"
  "rrs_test"
  "rrs_test.pdb"
  "rrs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rrs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/whatif_accuracy_test.dir/whatif_accuracy_test.cc.o"
  "CMakeFiles/whatif_accuracy_test.dir/whatif_accuracy_test.cc.o.d"
  "whatif_accuracy_test"
  "whatif_accuracy_test.pdb"
  "whatif_accuracy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_accuracy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for whatif_accuracy_test.
# This may be replaced when dependencies are built.

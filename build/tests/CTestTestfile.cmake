# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/mr_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/wrappers_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/cost_test[1]_include.cmake")
include("/root/repo/build/tests/profiler_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/rrs_test[1]_include.cmake")
include("/root/repo/build/tests/search_test[1]_include.cmake")
include("/root/repo/build/tests/stubby_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/configuration_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/whatif_accuracy_test[1]_include.cmake")

# Empty dependencies file for dataflow_debug.
# This may be replaced when dependencies are built.

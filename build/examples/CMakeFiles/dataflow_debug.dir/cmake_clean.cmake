file(REMOVE_RECURSE
  "CMakeFiles/dataflow_debug.dir/dataflow_debug.cpp.o"
  "CMakeFiles/dataflow_debug.dir/dataflow_debug.cpp.o.d"
  "dataflow_debug"
  "dataflow_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataflow_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

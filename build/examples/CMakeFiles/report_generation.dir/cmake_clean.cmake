file(REMOVE_RECURSE
  "CMakeFiles/report_generation.dir/report_generation.cpp.o"
  "CMakeFiles/report_generation.dir/report_generation.cpp.o.d"
  "report_generation"
  "report_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

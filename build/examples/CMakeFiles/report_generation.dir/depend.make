# Empty dependencies file for report_generation.
# This may be replaced when dependencies are built.

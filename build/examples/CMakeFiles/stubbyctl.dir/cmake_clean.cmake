file(REMOVE_RECURSE
  "CMakeFiles/stubbyctl.dir/stubbyctl.cpp.o"
  "CMakeFiles/stubbyctl.dir/stubbyctl.cpp.o.d"
  "stubbyctl"
  "stubbyctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubbyctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

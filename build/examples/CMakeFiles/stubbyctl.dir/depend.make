# Empty dependencies file for stubbyctl.
# This may be replaced when dependencies are built.

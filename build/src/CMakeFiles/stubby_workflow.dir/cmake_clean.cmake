file(REMOVE_RECURSE
  "CMakeFiles/stubby_workflow.dir/workflow/annotations.cc.o"
  "CMakeFiles/stubby_workflow.dir/workflow/annotations.cc.o.d"
  "CMakeFiles/stubby_workflow.dir/workflow/dot.cc.o"
  "CMakeFiles/stubby_workflow.dir/workflow/dot.cc.o.d"
  "CMakeFiles/stubby_workflow.dir/workflow/graph.cc.o"
  "CMakeFiles/stubby_workflow.dir/workflow/graph.cc.o.d"
  "CMakeFiles/stubby_workflow.dir/workflow/plan.cc.o"
  "CMakeFiles/stubby_workflow.dir/workflow/plan.cc.o.d"
  "CMakeFiles/stubby_workflow.dir/workflow/serialize.cc.o"
  "CMakeFiles/stubby_workflow.dir/workflow/serialize.cc.o.d"
  "CMakeFiles/stubby_workflow.dir/workflow/subgraph.cc.o"
  "CMakeFiles/stubby_workflow.dir/workflow/subgraph.cc.o.d"
  "libstubby_workflow.a"
  "libstubby_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for stubby_workflow.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workflow/annotations.cc" "src/CMakeFiles/stubby_workflow.dir/workflow/annotations.cc.o" "gcc" "src/CMakeFiles/stubby_workflow.dir/workflow/annotations.cc.o.d"
  "/root/repo/src/workflow/dot.cc" "src/CMakeFiles/stubby_workflow.dir/workflow/dot.cc.o" "gcc" "src/CMakeFiles/stubby_workflow.dir/workflow/dot.cc.o.d"
  "/root/repo/src/workflow/graph.cc" "src/CMakeFiles/stubby_workflow.dir/workflow/graph.cc.o" "gcc" "src/CMakeFiles/stubby_workflow.dir/workflow/graph.cc.o.d"
  "/root/repo/src/workflow/plan.cc" "src/CMakeFiles/stubby_workflow.dir/workflow/plan.cc.o" "gcc" "src/CMakeFiles/stubby_workflow.dir/workflow/plan.cc.o.d"
  "/root/repo/src/workflow/serialize.cc" "src/CMakeFiles/stubby_workflow.dir/workflow/serialize.cc.o" "gcc" "src/CMakeFiles/stubby_workflow.dir/workflow/serialize.cc.o.d"
  "/root/repo/src/workflow/subgraph.cc" "src/CMakeFiles/stubby_workflow.dir/workflow/subgraph.cc.o" "gcc" "src/CMakeFiles/stubby_workflow.dir/workflow/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stubby_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

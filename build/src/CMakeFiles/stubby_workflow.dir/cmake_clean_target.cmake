file(REMOVE_RECURSE
  "libstubby_workflow.a"
)

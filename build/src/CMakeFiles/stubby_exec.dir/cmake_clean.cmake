file(REMOVE_RECURSE
  "CMakeFiles/stubby_exec.dir/exec/job_runner.cc.o"
  "CMakeFiles/stubby_exec.dir/exec/job_runner.cc.o.d"
  "CMakeFiles/stubby_exec.dir/exec/workflow_runner.cc.o"
  "CMakeFiles/stubby_exec.dir/exec/workflow_runner.cc.o.d"
  "CMakeFiles/stubby_exec.dir/exec/wrappers.cc.o"
  "CMakeFiles/stubby_exec.dir/exec/wrappers.cc.o.d"
  "libstubby_exec.a"
  "libstubby_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for stubby_exec.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libstubby_exec.a"
)

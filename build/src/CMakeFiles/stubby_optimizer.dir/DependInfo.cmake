
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optimizer/configuration.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/configuration.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/configuration.cc.o.d"
  "/root/repo/src/optimizer/horizontal.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/horizontal.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/horizontal.cc.o.d"
  "/root/repo/src/optimizer/partition_fn.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/partition_fn.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/partition_fn.cc.o.d"
  "/root/repo/src/optimizer/rrs.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/rrs.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/rrs.cc.o.d"
  "/root/repo/src/optimizer/search.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/search.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/search.cc.o.d"
  "/root/repo/src/optimizer/stubby.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/stubby.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/stubby.cc.o.d"
  "/root/repo/src/optimizer/transform.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/transform.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/transform.cc.o.d"
  "/root/repo/src/optimizer/unit.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/unit.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/unit.cc.o.d"
  "/root/repo/src/optimizer/vertical.cc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/vertical.cc.o" "gcc" "src/CMakeFiles/stubby_optimizer.dir/optimizer/vertical.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stubby_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libstubby_optimizer.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/stubby_optimizer.dir/optimizer/configuration.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/configuration.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/horizontal.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/horizontal.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/partition_fn.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/partition_fn.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/rrs.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/rrs.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/search.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/search.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/stubby.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/stubby.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/transform.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/transform.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/unit.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/unit.cc.o.d"
  "CMakeFiles/stubby_optimizer.dir/optimizer/vertical.cc.o"
  "CMakeFiles/stubby_optimizer.dir/optimizer/vertical.cc.o.d"
  "libstubby_optimizer.a"
  "libstubby_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

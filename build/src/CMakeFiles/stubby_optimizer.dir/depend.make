# Empty dependencies file for stubby_optimizer.
# This may be replaced when dependencies are built.

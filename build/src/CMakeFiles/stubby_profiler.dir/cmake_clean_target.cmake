file(REMOVE_RECURSE
  "libstubby_profiler.a"
)

# Empty compiler generated dependencies file for stubby_profiler.
# This may be replaced when dependencies are built.

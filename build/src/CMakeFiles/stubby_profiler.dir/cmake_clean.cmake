file(REMOVE_RECURSE
  "CMakeFiles/stubby_profiler.dir/profiler/profiler.cc.o"
  "CMakeFiles/stubby_profiler.dir/profiler/profiler.cc.o.d"
  "libstubby_profiler.a"
  "libstubby_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstubby_dfs.a"
)

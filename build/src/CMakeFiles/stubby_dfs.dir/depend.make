# Empty dependencies file for stubby_dfs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stubby_dfs.dir/dfs/dataset.cc.o"
  "CMakeFiles/stubby_dfs.dir/dfs/dataset.cc.o.d"
  "CMakeFiles/stubby_dfs.dir/dfs/dfs.cc.o"
  "CMakeFiles/stubby_dfs.dir/dfs/dfs.cc.o.d"
  "CMakeFiles/stubby_dfs.dir/dfs/layout.cc.o"
  "CMakeFiles/stubby_dfs.dir/dfs/layout.cc.o.d"
  "libstubby_dfs.a"
  "libstubby_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stubby_cost.dir/cost/adjust.cc.o"
  "CMakeFiles/stubby_cost.dir/cost/adjust.cc.o.d"
  "CMakeFiles/stubby_cost.dir/cost/dataflow.cc.o"
  "CMakeFiles/stubby_cost.dir/cost/dataflow.cc.o.d"
  "CMakeFiles/stubby_cost.dir/cost/phase_model.cc.o"
  "CMakeFiles/stubby_cost.dir/cost/phase_model.cc.o.d"
  "CMakeFiles/stubby_cost.dir/cost/schedule.cc.o"
  "CMakeFiles/stubby_cost.dir/cost/schedule.cc.o.d"
  "CMakeFiles/stubby_cost.dir/cost/whatif.cc.o"
  "CMakeFiles/stubby_cost.dir/cost/whatif.cc.o.d"
  "libstubby_cost.a"
  "libstubby_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

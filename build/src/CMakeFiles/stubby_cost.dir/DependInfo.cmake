
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/adjust.cc" "src/CMakeFiles/stubby_cost.dir/cost/adjust.cc.o" "gcc" "src/CMakeFiles/stubby_cost.dir/cost/adjust.cc.o.d"
  "/root/repo/src/cost/dataflow.cc" "src/CMakeFiles/stubby_cost.dir/cost/dataflow.cc.o" "gcc" "src/CMakeFiles/stubby_cost.dir/cost/dataflow.cc.o.d"
  "/root/repo/src/cost/phase_model.cc" "src/CMakeFiles/stubby_cost.dir/cost/phase_model.cc.o" "gcc" "src/CMakeFiles/stubby_cost.dir/cost/phase_model.cc.o.d"
  "/root/repo/src/cost/schedule.cc" "src/CMakeFiles/stubby_cost.dir/cost/schedule.cc.o" "gcc" "src/CMakeFiles/stubby_cost.dir/cost/schedule.cc.o.d"
  "/root/repo/src/cost/whatif.cc" "src/CMakeFiles/stubby_cost.dir/cost/whatif.cc.o" "gcc" "src/CMakeFiles/stubby_cost.dir/cost/whatif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stubby_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

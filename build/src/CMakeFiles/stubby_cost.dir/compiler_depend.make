# Empty compiler generated dependencies file for stubby_cost.
# This may be replaced when dependencies are built.

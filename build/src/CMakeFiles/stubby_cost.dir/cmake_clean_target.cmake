file(REMOVE_RECURSE
  "libstubby_cost.a"
)

file(REMOVE_RECURSE
  "libstubby_baselines.a"
)

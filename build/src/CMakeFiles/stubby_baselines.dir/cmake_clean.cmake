file(REMOVE_RECURSE
  "CMakeFiles/stubby_baselines.dir/baselines/mrshare.cc.o"
  "CMakeFiles/stubby_baselines.dir/baselines/mrshare.cc.o.d"
  "CMakeFiles/stubby_baselines.dir/baselines/pig_baseline.cc.o"
  "CMakeFiles/stubby_baselines.dir/baselines/pig_baseline.cc.o.d"
  "CMakeFiles/stubby_baselines.dir/baselines/starfish.cc.o"
  "CMakeFiles/stubby_baselines.dir/baselines/starfish.cc.o.d"
  "CMakeFiles/stubby_baselines.dir/baselines/ysmart.cc.o"
  "CMakeFiles/stubby_baselines.dir/baselines/ysmart.cc.o.d"
  "libstubby_baselines.a"
  "libstubby_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

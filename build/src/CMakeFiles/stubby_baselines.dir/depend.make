# Empty dependencies file for stubby_baselines.
# This may be replaced when dependencies are built.

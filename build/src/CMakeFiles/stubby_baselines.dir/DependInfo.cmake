
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/mrshare.cc" "src/CMakeFiles/stubby_baselines.dir/baselines/mrshare.cc.o" "gcc" "src/CMakeFiles/stubby_baselines.dir/baselines/mrshare.cc.o.d"
  "/root/repo/src/baselines/pig_baseline.cc" "src/CMakeFiles/stubby_baselines.dir/baselines/pig_baseline.cc.o" "gcc" "src/CMakeFiles/stubby_baselines.dir/baselines/pig_baseline.cc.o.d"
  "/root/repo/src/baselines/starfish.cc" "src/CMakeFiles/stubby_baselines.dir/baselines/starfish.cc.o" "gcc" "src/CMakeFiles/stubby_baselines.dir/baselines/starfish.cc.o.d"
  "/root/repo/src/baselines/ysmart.cc" "src/CMakeFiles/stubby_baselines.dir/baselines/ysmart.cc.o" "gcc" "src/CMakeFiles/stubby_baselines.dir/baselines/ysmart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stubby_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

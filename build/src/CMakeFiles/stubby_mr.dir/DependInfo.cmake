
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mr/cluster.cc" "src/CMakeFiles/stubby_mr.dir/mr/cluster.cc.o" "gcc" "src/CMakeFiles/stubby_mr.dir/mr/cluster.cc.o.d"
  "/root/repo/src/mr/functions.cc" "src/CMakeFiles/stubby_mr.dir/mr/functions.cc.o" "gcc" "src/CMakeFiles/stubby_mr.dir/mr/functions.cc.o.d"
  "/root/repo/src/mr/job_config.cc" "src/CMakeFiles/stubby_mr.dir/mr/job_config.cc.o" "gcc" "src/CMakeFiles/stubby_mr.dir/mr/job_config.cc.o.d"
  "/root/repo/src/mr/partitioner.cc" "src/CMakeFiles/stubby_mr.dir/mr/partitioner.cc.o" "gcc" "src/CMakeFiles/stubby_mr.dir/mr/partitioner.cc.o.d"
  "/root/repo/src/mr/schema.cc" "src/CMakeFiles/stubby_mr.dir/mr/schema.cc.o" "gcc" "src/CMakeFiles/stubby_mr.dir/mr/schema.cc.o.d"
  "/root/repo/src/mr/tuple.cc" "src/CMakeFiles/stubby_mr.dir/mr/tuple.cc.o" "gcc" "src/CMakeFiles/stubby_mr.dir/mr/tuple.cc.o.d"
  "/root/repo/src/mr/value.cc" "src/CMakeFiles/stubby_mr.dir/mr/value.cc.o" "gcc" "src/CMakeFiles/stubby_mr.dir/mr/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stubby_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

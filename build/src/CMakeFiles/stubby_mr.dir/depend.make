# Empty dependencies file for stubby_mr.
# This may be replaced when dependencies are built.

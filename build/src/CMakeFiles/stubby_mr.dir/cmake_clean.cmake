file(REMOVE_RECURSE
  "CMakeFiles/stubby_mr.dir/mr/cluster.cc.o"
  "CMakeFiles/stubby_mr.dir/mr/cluster.cc.o.d"
  "CMakeFiles/stubby_mr.dir/mr/functions.cc.o"
  "CMakeFiles/stubby_mr.dir/mr/functions.cc.o.d"
  "CMakeFiles/stubby_mr.dir/mr/job_config.cc.o"
  "CMakeFiles/stubby_mr.dir/mr/job_config.cc.o.d"
  "CMakeFiles/stubby_mr.dir/mr/partitioner.cc.o"
  "CMakeFiles/stubby_mr.dir/mr/partitioner.cc.o.d"
  "CMakeFiles/stubby_mr.dir/mr/schema.cc.o"
  "CMakeFiles/stubby_mr.dir/mr/schema.cc.o.d"
  "CMakeFiles/stubby_mr.dir/mr/tuple.cc.o"
  "CMakeFiles/stubby_mr.dir/mr/tuple.cc.o.d"
  "CMakeFiles/stubby_mr.dir/mr/value.cc.o"
  "CMakeFiles/stubby_mr.dir/mr/value.cc.o.d"
  "libstubby_mr.a"
  "libstubby_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libstubby_mr.a"
)

file(REMOVE_RECURSE
  "libstubby_common.a"
)

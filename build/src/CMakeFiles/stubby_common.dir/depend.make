# Empty dependencies file for stubby_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/stubby_common.dir/common/json.cc.o"
  "CMakeFiles/stubby_common.dir/common/json.cc.o.d"
  "CMakeFiles/stubby_common.dir/common/logging.cc.o"
  "CMakeFiles/stubby_common.dir/common/logging.cc.o.d"
  "CMakeFiles/stubby_common.dir/common/rng.cc.o"
  "CMakeFiles/stubby_common.dir/common/rng.cc.o.d"
  "CMakeFiles/stubby_common.dir/common/status.cc.o"
  "CMakeFiles/stubby_common.dir/common/status.cc.o.d"
  "CMakeFiles/stubby_common.dir/common/strings.cc.o"
  "CMakeFiles/stubby_common.dir/common/strings.cc.o.d"
  "libstubby_common.a"
  "libstubby_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

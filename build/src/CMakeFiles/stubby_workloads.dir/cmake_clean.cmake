file(REMOVE_RECURSE
  "CMakeFiles/stubby_workloads.dir/workloads/ba.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/ba.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/br.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/br.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/builder.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/builder.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/generators.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/generators.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/ir.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/ir.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/la.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/la.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/pj.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/pj.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/registry.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/sn.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/sn.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/udfs.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/udfs.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/us.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/us.cc.o.d"
  "CMakeFiles/stubby_workloads.dir/workloads/wg.cc.o"
  "CMakeFiles/stubby_workloads.dir/workloads/wg.cc.o.d"
  "libstubby_workloads.a"
  "libstubby_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stubby_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

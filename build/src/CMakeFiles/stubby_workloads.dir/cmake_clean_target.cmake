file(REMOVE_RECURSE
  "libstubby_workloads.a"
)

# Empty dependencies file for stubby_workloads.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ba.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/ba.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/ba.cc.o.d"
  "/root/repo/src/workloads/br.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/br.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/br.cc.o.d"
  "/root/repo/src/workloads/builder.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/builder.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/builder.cc.o.d"
  "/root/repo/src/workloads/generators.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/generators.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/generators.cc.o.d"
  "/root/repo/src/workloads/ir.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/ir.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/ir.cc.o.d"
  "/root/repo/src/workloads/la.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/la.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/la.cc.o.d"
  "/root/repo/src/workloads/pj.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/pj.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/pj.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/sn.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/sn.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/sn.cc.o.d"
  "/root/repo/src/workloads/udfs.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/udfs.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/udfs.cc.o.d"
  "/root/repo/src/workloads/us.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/us.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/us.cc.o.d"
  "/root/repo/src/workloads/wg.cc" "src/CMakeFiles/stubby_workloads.dir/workloads/wg.cc.o" "gcc" "src/CMakeFiles/stubby_workloads.dir/workloads/wg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stubby_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

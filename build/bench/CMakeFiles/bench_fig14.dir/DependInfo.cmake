
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig14.cc" "bench/CMakeFiles/bench_fig14.dir/bench_fig14.cc.o" "gcc" "bench/CMakeFiles/bench_fig14.dir/bench_fig14.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/stubby_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_workflow.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/stubby_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Quickstart: the full Stubby loop on one workflow.
//
//   1. Build an annotated MapReduce workflow (the TF-IDF workload).
//   2. Profile it on sample data (generates profile annotations).
//   3. Establish the Baseline plan (Pig-style rules + rules of thumb).
//   4. Optimize with Stubby.
//   5. Execute both on the simulated cluster, compare outcome and check
//      that the optimized plan produces the same result.
//
// Usage: quickstart [workload-abbr] (default IR)

#include <algorithm>
#include <cstdio>
#include <string>

#include "baselines/pig_baseline.h"
#include "common/strings.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "workflow/dot.h"
#include "workloads/registry.h"

using namespace stubby;

namespace {

std::vector<Row> AllRowsOf(const Dfs& dfs, const std::string& id) {
  auto ds = dfs.Get(id);
  if (!ds.ok()) return {};
  return (*ds)->AllRows();
}

}  // namespace

int main(int argc, char** argv) {
  std::string abbr = argc > 1 ? argv[1] : "IR";

  WorkloadOptions options;
  auto workload = MakeWorkload(abbr, options);
  if (!workload.ok()) {
    std::fprintf(stderr, "failed to build workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("== %s (%s), %zu jobs, input %s ==\n", workload->abbr.c_str(),
              workload->name.c_str(), workload->plan.num_jobs(),
              HumanBytes(workload->dataset_logical_bytes).c_str());

  // 1+2: profile the workflow (fills stage statistics and histograms).
  Profiler profiler(options.cluster);
  Dfs profiling_dfs = workload->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&workload->plan, &profiling_dfs));

  // 3: the Baseline (for comparison only; Stubby starts from the original
  // workflow, like the paper's setup).
  auto baseline = PigBaseline(workload->plan);
  STUBBY_CHECK_OK(baseline.status());

  // 4: Stubby.
  StubbyOptimizer optimizer;
  auto report = optimizer.Optimize(workload->plan);
  STUBBY_CHECK_OK(report.status());
  std::printf("\nStubby took %.2fs, applied %zu transformation(s):\n",
              report->optimization_time_sec, report->applied.size());
  for (const auto& line : report->applied) {
    std::printf("  - %s\n", line.c_str());
  }
  std::printf("\nOptimized plan:\n%s\n", report->plan.ToString().c_str());

  // 5: execute both plans and compare.
  WorkflowRunner runner(options.cluster);
  Dfs baseline_dfs = workload->dfs;
  auto baseline_run = runner.Run(*baseline, &baseline_dfs);
  STUBBY_CHECK_OK(baseline_run.status());
  Dfs optimized_dfs = workload->dfs;
  auto optimized_run = runner.Run(report->plan, &optimized_dfs);
  STUBBY_CHECK_OK(optimized_run.status());

  std::printf("Baseline : %zu jobs, simulated %s\n", baseline->num_jobs(),
              HumanSeconds(baseline_run->makespan_sec).c_str());
  std::printf("Stubby   : %zu jobs, simulated %s (estimated %s)\n",
              report->plan.num_jobs(),
              HumanSeconds(optimized_run->makespan_sec).c_str(),
              HumanSeconds(report->estimated_cost).c_str());
  std::printf("Speedup  : %.2fx\n",
              baseline_run->makespan_sec /
                  std::max(1e-9, optimized_run->makespan_sec));

  // Result equivalence on every workflow output.
  bool equivalent = true;
  for (const auto& [id, ds] : workload->plan.datasets()) {
    if (!ds.is_workflow_output) continue;
    if (!RowsApproxEqual(AllRowsOf(baseline_dfs, id),
                         AllRowsOf(optimized_dfs, id), 1e-6)) {
      std::printf("MISMATCH on output dataset %s\n", id.c_str());
      equivalent = false;
    }
  }
  std::printf("Outputs  : %s\n",
              equivalent ? "identical (plans are equivalent)" : "MISMATCH");
  return equivalent ? 0 : 2;
}

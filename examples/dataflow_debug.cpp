// Developer tool: per-job predicted-vs-observed dataflow for a workload,
// before and after Stubby — the raw material behind Figure 14. Also prints
// the subplan enumeration of the first optimization unit.

#include <cstdio>
#include <string>

#include "cost/whatif.h"
#include "exec/workflow_runner.h"
#include "optimizer/horizontal.h"
#include "baselines/pig_baseline.h"
#include "optimizer/partition_fn.h"
#include "optimizer/search.h"
#include "optimizer/stubby.h"
#include "optimizer/vertical.h"
#include "profiler/profiler.h"
#include "workloads/registry.h"

using namespace stubby;

namespace {

void CompareFlows(const WorkflowDataflow& actual,
                  const WorkflowDataflow& predicted) {
  std::printf("%-10s | %13s | %13s\n", "job", "actual", "predicted");
  for (const auto& a : actual.jobs) {
    const JobDataflow* p = predicted.FindJob(a.job_id);
    if (p == nullptr) continue;
    auto row = [&](const char* what, double av, double pv) {
      std::printf("  %-24s %14.3g %14.3g  (%+.0f%%)\n", what, av, pv,
                  av > 0 ? 100.0 * (pv - av) / av : 0.0);
    };
    std::printf("%s:\n", a.job_id.c_str());
    row("map tasks", a.num_map_tasks, p->num_map_tasks);
    row("map input bytes", a.map_input_bytes, p->map_input_bytes);
    row("map output bytes", a.map_output_bytes, p->map_output_bytes);
    row("combine out bytes", a.combine_output_bytes, p->combine_output_bytes);
    row("reduce input bytes", a.reduce_input_bytes, p->reduce_input_bytes);
    row("max reduce partition", a.max_reduce_input_bytes,
        p->max_reduce_input_bytes);
    row("nonempty reduce parts", a.nonempty_reduce_partitions,
        p->nonempty_reduce_partitions);
    row("output bytes", a.output_bytes, p->output_bytes);
    row("map cpu units", a.map_cpu_units, p->map_cpu_units);
    row("reduce cpu units", a.reduce_cpu_units, p->reduce_cpu_units);
  }
  std::printf("makespan: actual %.1fs predicted %.1fs\n", actual.makespan_sec,
              predicted.makespan_sec);
}

}  // namespace

int main(int argc, char** argv) {
  std::string abbr = argc > 1 ? argv[1] : "IR";
  bool optimized = argc > 2 && std::string(argv[2]) == "--optimized";

  WorkloadOptions options;
  auto workload = MakeWorkload(abbr, options);
  STUBBY_CHECK_OK(workload.status());

  Profiler profiler(options.cluster);
  Dfs profiling_dfs = workload->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&workload->plan, &profiling_dfs));

  // --phase2: run the Vertical phase, then probe every Horizontal-group
  // application on the result with explicit costs.
  if (argc > 2 && std::string(argv[2]) == "--phase2") {
    StubbyOptions vopts;
    vopts.enable_horizontal = false;
    auto vreport = StubbyOptimizer(vopts).Optimize(workload->plan);
    STUBBY_CHECK_OK(vreport.status());
    WhatIfEngine whatif2(options.cluster);
    std::printf("after vertical phase (%zu jobs), cost %.1fs:\n%s\n",
                vreport->plan.num_jobs(),
                whatif2.Cost(vreport->plan).cost,
                vreport->plan.ToString().c_str());
    HorizontalPacking packer(true);
    std::vector<std::string> all;
    for (const auto& [jid, j] : vreport->plan.jobs()) all.push_back(jid);
    for (Application& app : packer.FindApplications(vreport->plan, all)) {
      auto next = app.apply(vreport->plan);
      if (!next.ok()) {
        std::printf("  %s -> apply failed: %s\n", app.description.c_str(),
                    next.status().ToString().c_str());
        continue;
      }
      std::printf("  %s -> cost %.1fs\n", app.description.c_str(),
                  whatif2.Cost(*next).cost);
      auto flow = whatif2.PredictDataflow(*next);
      if (flow.ok()) {
        PhaseTimeModel model(options.cluster);
        for (const auto& df : flow->jobs) {
          auto job = next->GetJob(df.job_id);
          std::printf("      %-14s %s\n", df.job_id.c_str(),
                      model.TaskTimes(df, (*job)->config).ToString().c_str());
        }
      }
    }
    auto base_flow = whatif2.PredictDataflow(vreport->plan);
    if (base_flow.ok()) {
      PhaseTimeModel model(options.cluster);
      std::printf("  base plan tasks:\n");
      for (const auto& df : base_flow->jobs) {
        auto job = vreport->plan.GetJob(df.job_id);
        std::printf("      %-14s %s\n", df.job_id.c_str(),
                    model.TaskTimes(df, (*job)->config).ToString().c_str());
      }
    }
    return 0;
  }

  Plan plan = workload->plan;
  if (optimized) {
    StubbyOptimizer optimizer;
    auto report = optimizer.Optimize(plan);
    STUBBY_CHECK_OK(report.status());
    plan = report->plan;
    std::printf("optimized plan:\n%s\n", plan.ToString().c_str());
  }

  WhatIfEngine whatif(options.cluster);
  auto predicted = whatif.PredictDataflow(plan);
  STUBBY_CHECK_OK(predicted.status());
  WorkflowRunner runner(options.cluster);
  Dfs run_dfs = workload->dfs;
  auto actual = runner.Run(plan, &run_dfs);
  STUBBY_CHECK_OK(actual.status());
  CompareFlows(*actual, *predicted);

  // First-unit subplan enumeration with costs (Figure 10 style).
  std::vector<std::shared_ptr<Transformation>> group = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
      std::make_shared<PartitionFunctionTransform>(),
  };
  UnitSearchOptions uopts;
  UnitOptimizer unit_optimizer(group, &whatif, uopts);
  auto unit = NextUnit(workload->plan, {});
  if (unit) {
    auto subplans = unit_optimizer.EnumerateSubplans(workload->plan, *unit);
    STUBBY_CHECK_OK(subplans.status());
    std::printf("\nfirst unit %s: %zu subplans\n",
                unit->ToString().c_str(), subplans->size());
    bool detail = argc > 2 && std::string(argv[argc - 1]) == "--detail";
    for (const auto& sp : *subplans) {
      std::string desc = "(original)";
      if (!sp.applied.empty()) {
        desc.clear();
        for (const auto& a : sp.applied) desc += a + "; ";
      }
      std::printf("  cost %10.1fs : %s\n", sp.cost, desc.c_str());
      if (detail) {
        auto flow = whatif.PredictDataflow(sp.plan);
        if (flow.ok()) {
          PhaseTimeModel model(options.cluster);
          for (const auto& df : flow->jobs) {
            auto job = sp.plan.GetJob(df.job_id);
            JobTaskTimes t = model.TaskTimes(df, (*job)->config);
            std::printf("      %-12s %s  standalone=%.1fs\n",
                        df.job_id.c_str(), t.ToString().c_str(),
                        model.StandaloneJobTime(df, (*job)->config));
          }
        }
      }
    }
  }
  return 0;
}

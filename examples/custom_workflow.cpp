// Building and optimizing your own annotated workflow with the public API —
// the path a workflow-generator integration (Pig/Hive/Cascading in Figure 2)
// would take:
//
//   1. define datasets and black-box map/reduce functions,
//   2. attach schema and filter annotations (what your generator knows),
//   3. profile on sample data,
//   4. hand the plan to Stubby,
//   5. execute on the simulated cluster.
//
// The workflow here is a small clickstream pipeline: a map-only
// sessionizer, a per-(user,day) session aggregate, and a per-user rollup —
// a chain that Stubby collapses via vertical packing.

#include <cstdio>

#include "common/strings.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "workloads/builder.h"
#include "workloads/udfs.h"

using namespace stubby;

int main() {
  ClusterSpec cluster;  // 51 nodes, 150 map + 102 reduce slots
  WorkflowFactory factory(cluster);
  Rng rng(2024);

  // --- 1. Base data: click events <user U, day D, dwell V, url page> -----
  Schema clicks({"U", "D", "V", "PAGE"});
  std::vector<Row> rows;
  for (int i = 0; i < 30000; ++i) {
    rows.push_back(Row{rng.NextInt(0, 999), rng.NextInt(0, 30),
                       rng.NextDouble(0, 300),
                       StrFormat("/p/%d", (int)rng.NextInt(0, 50))});
  }
  STUBBY_CHECK_OK(factory.AddBase("clicks", clicks, Layout{},
                                  /*partitions=*/32, std::move(rows),
                                  /*logical_bytes=*/120ull << 30));

  const Schema kEvents({"U", "D", "V"});
  const Schema kSessions({"U", "D", "SESS"});
  const Schema kUsers({"U", "TOTAL"});
  STUBBY_CHECK_OK(factory.AddDataset("events", kEvents));
  STUBBY_CHECK_OK(factory.AddDataset("sessions", kSessions));
  STUBBY_CHECK_OK(
      factory.AddDataset("user_totals", kUsers, /*workflow_output=*/true));

  // --- 2. Jobs with annotations ------------------------------------------
  {  // J1: map-only cleanup/projection.
    WorkflowFactory::JobDef j;
    j.id = "clean";
    j.inputs = {In("clicks", {Stage::Map(ProjectMap("project_event", clicks,
                                                    {"U", "D", "V"}, 0.6))})};
    j.map_output_schema = kEvents;
    j.output = "events";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"U", "D"};
    sa.v1 = FieldSet{"V", "PAGE"};
    sa.k3 = FieldSet{"U", "D"};
    sa.v3 = FieldSet{"V"};
    j.schema_ann = sa;
    STUBBY_CHECK_OK(factory.AddJob(std::move(j)));
  }
  {  // J2: session dwell per (user, day).
    WorkflowFactory::JobDef j;
    j.id = "sessionize";
    j.inputs = {In("events", {})};
    j.map_output_schema = kEvents;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_dwell", kEvents, {"U", "D"},
                  {{"V", AggOp::kSum, "SESS"}}),
        {"U", "D"})};
    j.combiner = AggCombine("combine_dwell", kEvents, {"U", "D"},
                            {{"V", AggOp::kSum, "V"}});
    j.output = "sessions";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"U", "D"};
    sa.v1 = FieldSet{"V"};
    sa.k2 = FieldSet{"U", "D"};
    sa.v2 = FieldSet{"V"};
    sa.k3 = FieldSet{"U", "D"};
    sa.v3 = FieldSet{"SESS"};
    j.schema_ann = sa;
    STUBBY_CHECK_OK(factory.AddJob(std::move(j)));
  }
  {  // J3: per-user rollup ({U} is a prefix of {U,D} -> intra-packable).
    WorkflowFactory::JobDef j;
    j.id = "rollup";
    j.inputs = {In("sessions", {})};
    j.map_output_schema = kSessions;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_user", kSessions, {"U"},
                  {{"SESS", AggOp::kSum, "TOTAL"}}),
        {"U"})};
    j.sort_extra = {"D"};
    j.output = "user_totals";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"U", "D"};
    sa.v1 = FieldSet{"SESS"};
    sa.k2 = FieldSet{"U"};
    sa.v2 = FieldSet{"D", "SESS"};
    sa.k3 = FieldSet{"U"};
    sa.v3 = FieldSet{"TOTAL"};
    j.schema_ann = sa;
    STUBBY_CHECK_OK(factory.AddJob(std::move(j)));
  }
  STUBBY_CHECK_OK(factory.plan().Validate());

  // --- 3. Profile ----------------------------------------------------------
  Profiler profiler(cluster);
  Dfs profiling_dfs = factory.dfs();
  STUBBY_CHECK_OK(profiler.ProfilePlan(&factory.plan(), &profiling_dfs));

  // --- 4. Optimize ---------------------------------------------------------
  StubbyOptimizer optimizer;
  auto report = optimizer.Optimize(factory.plan());
  STUBBY_CHECK_OK(report.status());
  std::printf("Stubby turned %zu jobs into %zu:\n", factory.plan().num_jobs(),
              report->plan.num_jobs());
  for (const auto& line : report->applied) std::printf("  - %s\n",
                                                       line.c_str());

  // --- 5. Execute both plans ------------------------------------------------
  WorkflowRunner runner(cluster);
  Dfs d_before = factory.dfs(), d_after = factory.dfs();
  auto before = runner.Run(factory.plan(), &d_before);
  auto after = runner.Run(report->plan, &d_after);
  STUBBY_CHECK_OK(before.status());
  STUBBY_CHECK_OK(after.status());
  std::printf("unoptimized: %s | optimized: %s (%.2fx)\n",
              HumanSeconds(before->makespan_sec).c_str(),
              HumanSeconds(after->makespan_sec).c_str(),
              before->makespan_sec / after->makespan_sec);

  auto a = d_before.Get("user_totals");
  auto b = d_after.Get("user_totals");
  bool ok = a.ok() && b.ok() &&
            RowsApproxEqual((*a)->AllRows(), (*b)->AllRows(), 1e-6);
  std::printf("outputs %s (%llu users)\n", ok ? "identical" : "MISMATCH",
              a.ok() ? (unsigned long long)(*a)->num_rows() : 0ull);
  return ok ? 0 : 1;
}

// stubbyctl — command-line driver for the library.
//
//   stubbyctl list
//   stubbyctl show <WF> [--rows N]
//   stubbyctl optimize <WF> [--optimizer stubby|vertical|horizontal|
//                            baseline|starfish|ysmart|mrshare]
//                           [--rows N] [--run] [--dot] [--export FILE]
//   stubbyctl compare <WF> [--rows N]
//   stubbyctl reuse <WF> [--rows N] [--dot] [--store FILE]
//                        [--policy lru|benefit]
//   stubbyctl serve [--submissions N] [--tenants N] [--rows N] [--threads N]
//                   [--wave N] [--queue N] [--budget-mb N]
//                   [--tenant-budget-mb N] [--soft-mb N] [--hard-mb N]
//                   [--policy lru|benefit] [--store FILE]
//   stubbyctl submit <WF[,WF...]> [--tenant T] [--rows N] [--store FILE]
//
// `optimize --run` executes original and optimized plans on the simulated
// cluster and verifies result equivalence; `compare` prints the speedup of
// every optimizer on one workload; `reuse` submits the workload twice
// against a shared result store, prints the store catalog, and (with
// --dot) renders the rewritten second plan with reused scans highlighted.
// `reuse --store FILE` loads the catalog from FILE when it exists (exact
// Serialize round-trip, so hits continue across invocations) and saves it
// back after the run; --policy picks the eviction policy.
//
// `serve` runs a stubbyd session: a Zipf-skewed trace of N submissions over
// the whole workload registry, round-robined across logical tenants,
// drained through the daemon's wave pipeline against one shared store —
// with optional global/per-tenant byte budgets and the soft/hard
// degradation thresholds. `submit` pushes a comma-separated list of
// registry workloads through the daemon as one tenant and prints what each
// request reused; with --store both commands persist the shared catalog
// across invocations.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>
#include <vector>

#include "baselines/mrshare.h"
#include "baselines/pig_baseline.h"
#include "baselines/starfish.h"
#include "baselines/ysmart.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/threading.h"
#include "service/stubbyd.h"
#include "exec/adaptive_runner.h"
#include "exec/workflow_runner.h"
#include "optimizer/bloom.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "reuse/session.h"
#include "reuse/signature.h"
#include "workflow/dot.h"
#include "workflow/serialize.h"
#include "workloads/registry.h"

using namespace stubby;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: stubbyctl list\n"
               "       stubbyctl show <WF> [--rows N]\n"
               "       stubbyctl optimize <WF> [--optimizer NAME] [--rows N]"
               " [--run] [--dot]\n"
               "       stubbyctl compare <WF> [--rows N]\n"
               "       stubbyctl reuse <WF> [--rows N] [--dot]"
               " [--store FILE] [--policy lru|benefit]\n"
               "       stubbyctl serve [--submissions N] [--tenants N]"
               " [--rows N] [--threads N]\n"
               "                       [--wave N] [--queue N] [--budget-mb N]"
               " [--tenant-budget-mb N]\n"
               "                       [--soft-mb N] [--hard-mb N]"
               " [--policy lru|benefit] [--store FILE]\n"
               "       stubbyctl submit <WF[,WF...]> [--tenant T] [--rows N]"
               " [--store FILE]\n");
  return 2;
}

/// Loads an existing catalog for --store, refusing to proceed when the file
/// exists but cannot be parsed (saving on exit would destroy it).
Result<bool> LoadCatalogInto(const std::string& path, ResultStore* store) {
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  if (probe == nullptr) {
    std::printf("starting a fresh catalog (%s)\n", path.c_str());
    return false;
  }
  std::fclose(probe);
  STUBBY_ASSIGN_OR_RETURN(ResultStore loaded,
                          ResultStore::LoadFromFile(path));
  std::printf("loaded %zu catalog entr%s from %s\n", loaded.num_entries(),
              loaded.num_entries() == 1 ? "y" : "ies", path.c_str());
  *store = std::move(loaded);
  return true;
}

Result<Workload> LoadProfiled(const std::string& abbr, int rows) {
  WorkloadOptions options;
  options.sample_rows = rows;
  STUBBY_ASSIGN_OR_RETURN(Workload w, MakeWorkload(abbr, options));
  Profiler profiler(options.cluster);
  Dfs dfs = w.dfs;
  STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&w.plan, &dfs));
  return w;
}

Result<Plan> OptimizeWith(const std::string& name, const Workload& w) {
  if (name == "baseline") return PigBaseline(w.plan);
  if (name == "starfish") return StarfishOptimize(w.plan);
  if (name == "ysmart") return YSmartOptimize(w.plan);
  if (name == "mrshare") return MRShareOptimize(w.plan);
  StubbyOptions opts;
  opts.columnar_storage = ColumnarStorageFromEnv();
  opts.bloom_transfer = BloomTransferFromEnv();
  if (name == "vertical") {
    opts.enable_horizontal = false;
  } else if (name == "horizontal") {
    opts.enable_intra_vertical = false;
    opts.enable_inter_vertical = false;
  } else if (name != "stubby") {
    return Status::InvalidArgument("unknown optimizer '" + name + "'");
  }
  StubbyOptimizer optimizer(opts);
  STUBBY_ASSIGN_OR_RETURN(OptimizeReport report, optimizer.Optimize(w.plan));
  std::printf("applied %zu transformation(s) in %.2fs, estimated cost %s\n",
              report.applied.size(), report.optimization_time_sec,
              HumanSeconds(report.estimated_cost).c_str());
  for (const auto& line : report.applied) std::printf("  - %s\n",
                                                      line.c_str());
  return std::move(report.plan);
}

double RunPlan(const Workload& w, const Plan& plan, Dfs* out) {
  WorkflowRunner runner(plan.cluster(), nullptr,
                        ExecOptions{true, ColumnarStorageFromEnv()});
  Dfs dfs = w.dfs;
  auto flow = runner.Run(plan, &dfs);
  STUBBY_CHECK_OK(flow.status());
  if (out != nullptr) *out = std::move(dfs);
  return flow->makespan_sec;
}

bool Equivalent(const Plan& plan, const Dfs& a, const Dfs& b) {
  for (const auto& [id, ds] : plan.datasets()) {
    if (!ds.is_workflow_output) continue;
    auto ra = a.Get(id);
    auto rb = b.Get(id);
    if (!ra.ok() || !rb.ok() ||
        !RowsApproxEqual((*ra)->AllRows(), (*rb)->AllRows(), 1e-6)) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string cmd = argv[1];
  std::string wf = argc > 2 && argv[2][0] != '-' ? argv[2] : "";
  std::string optimizer = "stubby";
  std::string export_path;
  std::string store_path;
  std::string policy_name;
  std::string tenant = "default";
  int rows = 20000;
  int submissions = 64, tenants = 4, wave = 8, queue = 0;
  int threads = ThreadPool::HardwareThreads();
  int budget_mb = 0, tenant_budget_mb = 0, soft_mb = 0, hard_mb = 0;
  bool run = false, dot = false;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--rows") && i + 1 < argc) {
      rows = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--optimizer") && i + 1 < argc) {
      optimizer = argv[++i];
    } else if (!std::strcmp(argv[i], "--run")) {
      run = true;
    } else if (!std::strcmp(argv[i], "--dot")) {
      dot = true;
    } else if (!std::strcmp(argv[i], "--export") && i + 1 < argc) {
      export_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--store") && i + 1 < argc) {
      store_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--policy") && i + 1 < argc) {
      policy_name = argv[++i];
    } else if (!std::strcmp(argv[i], "--tenant") && i + 1 < argc) {
      tenant = argv[++i];
    } else if (!std::strcmp(argv[i], "--submissions") && i + 1 < argc) {
      submissions = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--tenants") && i + 1 < argc) {
      tenants = std::max(1, std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
      threads = std::max(1, std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--wave") && i + 1 < argc) {
      wave = std::max(1, std::atoi(argv[++i]));
    } else if (!std::strcmp(argv[i], "--queue") && i + 1 < argc) {
      queue = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--budget-mb") && i + 1 < argc) {
      budget_mb = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--tenant-budget-mb") && i + 1 < argc) {
      tenant_budget_mb = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--soft-mb") && i + 1 < argc) {
      soft_mb = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "--hard-mb") && i + 1 < argc) {
      hard_mb = std::atoi(argv[++i]);
    }
  }

  if (cmd == "list") {
    for (const auto& abbr : AllWorkloadAbbrs()) {
      WorkloadOptions options;
      options.sample_rows = 1000;
      auto w = MakeWorkload(abbr, options);
      STUBBY_CHECK_OK(w.status());
      std::printf("%-4s %-32s %zu jobs, %s\n", abbr.c_str(), w->name.c_str(),
                  w->plan.num_jobs(),
                  HumanBytes(w->dataset_logical_bytes).c_str());
    }
    return 0;
  }

  // Shared stubbyd construction for `serve` and `submit`.
  auto make_service_options = [&]() -> ServiceOptions {
    ServiceOptions sopts;
    sopts.wave_size = static_cast<size_t>(wave);
    if (queue > 0) sopts.queue_capacity = static_cast<size_t>(queue);
    if (budget_mb > 0) {
      sopts.store.byte_budget = static_cast<uint64_t>(budget_mb) << 20;
    }
    if (!policy_name.empty()) {
      auto policy = EvictionPolicyFromName(policy_name);
      STUBBY_CHECK_OK(policy.status());
      sopts.store.policy = *policy;
    }
    if (tenant_budget_mb > 0) {
      sopts.tenant_byte_budget = static_cast<uint64_t>(tenant_budget_mb)
                                 << 20;
    }
    sopts.soft_degrade_bytes = static_cast<uint64_t>(soft_mb) << 20;
    sopts.hard_degrade_bytes = static_cast<uint64_t>(hard_mb) << 20;
    sopts.reoptimize = ReoptimizeFromEnv();
    return sopts;
  };
  auto print_service_summary = [&](const StubbyService& service) {
    std::printf("\n%s\n", service.stats().ToString().c_str());
    std::printf("store: %zu entries, %zu snapshot(s), %s stored, "
                "%llu eviction(s), degrade level %s\n",
                service.store().num_entries(),
                service.store().num_snapshots(),
                HumanBytes(service.store().stored_bytes()).c_str(),
                (unsigned long long)service.store().evictions(),
                DegradeLevelName(service.CurrentDegradeLevel()));
  };

  if (cmd == "serve") {
    ServiceOptions sopts = make_service_options();
    struct Entry {
      std::string name;
      std::shared_ptr<const Plan> plan;
      std::shared_ptr<const Dfs> dfs;
    };
    std::vector<Entry> universe;
    for (const auto& abbr : AllWorkloadAbbrs()) {
      auto w = LoadProfiled(abbr, rows);
      STUBBY_CHECK_OK(w.status());
      universe.push_back(
          {abbr, std::make_shared<const Plan>(std::move(w->plan)),
           std::make_shared<const Dfs>(std::move(w->dfs))});
    }
    ThreadPool pool(threads);
    StubbyService service(sopts, &pool);
    if (!store_path.empty()) {
      ResultStore loaded(sopts.store);
      auto had = LoadCatalogInto(store_path, &loaded);
      STUBBY_CHECK_OK(had.status());
      if (*had) {
        loaded.set_options(sopts.store);
        service.store() = std::move(loaded);
      }
    }
    std::printf("serving %d submission(s) over %zu workflow(s), "
                "%d tenant(s), wave %d, %d thread(s)\n",
                submissions, universe.size(), tenants, wave, threads);
    // Zipf-skewed arrivals; a full queue drains in place, so the trace is
    // identical for any --queue while still exercising admission control.
    Rng rng(20120821);
    std::vector<RequestResult> results;
    uint64_t queue_full = 0;
    for (int s = 0; s < submissions; ++s) {
      const Entry& e = universe[rng.NextZipf(universe.size(), 1.1) - 1];
      Submission sub;
      sub.tenant = "t" + std::to_string(rng.NextUint64(
                             static_cast<uint64_t>(tenants)));
      sub.name = e.name;
      sub.options.bloom_transfer = BloomTransferFromEnv();
      sub.plan = e.plan;
      sub.dfs = e.dfs;
      auto id = service.Submit(sub);
      if (!id.ok()) {
        ++queue_full;
        for (RequestResult& r : service.Drain()) {
          results.push_back(std::move(r));
        }
        id = service.Submit(std::move(sub));
        STUBBY_CHECK_OK(id.status());
      }
    }
    for (RequestResult& r : service.Drain()) results.push_back(std::move(r));

    std::map<std::string, std::pair<uint64_t, uint64_t>> by_workflow;
    for (const RequestResult& r : results) {
      STUBBY_CHECK_OK(r.status);
      auto& [count, hits] = by_workflow[r.name];
      ++count;
      if (r.session.reuse.workflow_hits + r.session.reuse.whole_job_hits +
              r.session.reuse.prefix_hits >
          0) {
        ++hits;
      }
    }
    std::printf("%-6s %10s %10s\n", "wf", "requests", "with-hits");
    for (const auto& [name, counts] : by_workflow) {
      std::printf("%-6s %10llu %10llu\n", name.c_str(),
                  (unsigned long long)counts.first,
                  (unsigned long long)counts.second);
    }
    if (queue_full > 0) {
      std::printf("queue filled %llu time(s) (drained in place)\n",
                  (unsigned long long)queue_full);
    }
    print_service_summary(service);
    for (int t = 0; t < tenants; ++t) {
      const std::string name = "t" + std::to_string(t);
      std::printf("tenant %-4s %12s\n", name.c_str(),
                  HumanBytes(service.TenantBytes(name)).c_str());
    }
    if (!store_path.empty()) {
      STUBBY_CHECK_OK(service.store().SaveToFile(store_path));
      std::printf("saved catalog to %s\n", store_path.c_str());
    }
    return 0;
  }
  if (wf.empty()) return Usage();

  if (cmd == "submit") {
    ServiceOptions sopts = make_service_options();
    ThreadPool pool(threads);
    StubbyService service(sopts, &pool);
    if (!store_path.empty()) {
      ResultStore loaded(sopts.store);
      auto had = LoadCatalogInto(store_path, &loaded);
      STUBBY_CHECK_OK(had.status());
      if (*had) {
        loaded.set_options(sopts.store);
        service.store() = std::move(loaded);
      }
    }
    for (const std::string& abbr : Split(wf, ',')) {
      auto w = LoadProfiled(abbr, rows);
      STUBBY_CHECK_OK(w.status());
      Submission sub;
      sub.tenant = tenant;
      sub.name = abbr;
      sub.options.bloom_transfer = BloomTransferFromEnv();
      sub.plan = std::make_shared<const Plan>(std::move(w->plan));
      sub.dfs = std::make_shared<const Dfs>(std::move(w->dfs));
      STUBBY_CHECK_OK(service.Submit(std::move(sub)).status());
    }
    for (const RequestResult& r : service.Drain()) {
      STUBBY_CHECK_OK(r.status);
      std::printf("#%llu %-6s tenant=%s %zu job(s) simulated %s "
                  "degrade=%s  [%s]\n",
                  (unsigned long long)r.id, r.name.c_str(),
                  r.tenant.c_str(), r.session.report.plan.num_jobs(),
                  HumanSeconds(r.session.simulated_cost).c_str(),
                  DegradeLevelName(r.degrade),
                  r.session.reuse.ToString().c_str());
    }
    print_service_summary(service);
    if (!store_path.empty()) {
      STUBBY_CHECK_OK(service.store().SaveToFile(store_path));
      std::printf("saved catalog to %s\n", store_path.c_str());
    }
    return 0;
  }

  if (cmd == "show") {
    auto w = LoadProfiled(wf, rows);
    STUBBY_CHECK_OK(w.status());
    std::printf("%s", w->plan.ToString().c_str());
    if (dot) std::printf("%s", PlanToDot(w->plan).c_str());
    return 0;
  }

  if (cmd == "optimize") {
    auto w = LoadProfiled(wf, rows);
    STUBBY_CHECK_OK(w.status());
    auto plan = OptimizeWith(optimizer, *w);
    STUBBY_CHECK_OK(plan.status());
    std::printf("\n%s", plan->ToString().c_str());
    if (dot) std::printf("%s", PlanToDot(*plan).c_str());
    if (!export_path.empty()) {
      std::FILE* fp = std::fopen(export_path.c_str(), "w");
      if (fp == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", export_path.c_str());
        return 1;
      }
      std::string text = ExportPlan(*plan);
      std::fwrite(text.data(), 1, text.size(), fp);
      std::fclose(fp);
      std::printf("exported annotated plan to %s (%zu bytes)\n",
                  export_path.c_str(), text.size());
    }
    if (run) {
      Dfs da, db;
      double t0 = RunPlan(*w, w->plan, &da);
      double t1 = RunPlan(*w, *plan, &db);
      std::printf("original %s -> optimized %s (%.2fx), outputs %s\n",
                  HumanSeconds(t0).c_str(), HumanSeconds(t1).c_str(),
                  t0 / t1,
                  Equivalent(w->plan, da, db) ? "identical" : "MISMATCH");
    }
    return 0;
  }

  if (cmd == "reuse") {
    auto w = LoadProfiled(wf, rows);
    STUBBY_CHECK_OK(w.status());
    ResultStore store;
    if (!store_path.empty()) {
      // Only a missing file means "fresh catalog". A file that exists but
      // fails to load is likely corrupt or foreign; overwriting it on exit
      // would destroy a possibly recoverable catalog, so bail out instead.
      std::FILE* probe = std::fopen(store_path.c_str(), "rb");
      if (probe == nullptr) {
        std::printf("starting a fresh catalog (%s)\n", store_path.c_str());
      } else {
        std::fclose(probe);
        auto loaded = ResultStore::LoadFromFile(store_path);
        if (!loaded.ok()) {
          std::fprintf(stderr,
                       "refusing to overwrite unreadable catalog %s: %s\n",
                       store_path.c_str(),
                       loaded.status().ToString().c_str());
          return 1;
        }
        store = std::move(*loaded);
        std::printf("loaded %zu catalog entr%s from %s\n",
                    store.num_entries(),
                    store.num_entries() == 1 ? "y" : "ies",
                    store_path.c_str());
      }
    }
    if (!policy_name.empty()) {
      auto policy = EvictionPolicyFromName(policy_name);
      STUBBY_CHECK_OK(policy.status());
      ResultStore::Options store_opts = store.options();
      store_opts.policy = *policy;
      store.set_options(store_opts);
    }
    ReuseSession session(&store);
    StubbyOptions opts;
    opts.columnar_storage = ColumnarStorageFromEnv();
    opts.reoptimize = ReoptimizeFromEnv();
    opts.bloom_transfer = BloomTransferFromEnv();

    auto first = session.Run(w->plan, w->dfs, opts);
    STUBBY_CHECK_OK(first.status());
    std::printf("pass 1: %zu job(s), simulated %s  [%s]\n",
                first->report.plan.num_jobs(),
                HumanSeconds(first->simulated_cost).c_str(),
                first->reuse.ToString().c_str());

    // Keep the whole-workflow tier off for the second pass so the rewrite
    // (rather than full elision) is what gets rendered.
    StubbyOptions second_opts = opts;
    second_opts.reuse_whole_workflow = false;
    auto second = session.Run(w->plan, w->dfs, second_opts);
    STUBBY_CHECK_OK(second.status());
    std::printf("pass 2: %zu job(s), simulated %s  [%s]\n",
                second->report.plan.num_jobs(),
                HumanSeconds(second->simulated_cost).c_str(),
                second->reuse.ToString().c_str());

    std::printf("\ncatalog: %zu entries, %zu snapshot(s), %s stored, "
                "%llu eviction(s)\n",
                store.num_entries(), store.num_snapshots(),
                HumanBytes(store.stored_bytes()).c_str(),
                (unsigned long long)store.evictions());
    std::printf("%-32s %-16s %12s %12s %6s\n", "key", "kind",
                "logical", "rows", "hits");
    for (const auto& [key, entry] : store.catalog()) {
      std::printf("%-32s %-16s %12s %12llu %6llu\n",
                  CostKeyToHex(key).c_str(), ReuseKindName(entry.kind),
                  HumanBytes(entry.logical_bytes).c_str(),
                  (unsigned long long)entry.logical_rows,
                  (unsigned long long)entry.hits);
    }
    std::printf("\nrewritten plan (pass 2):\n%s",
                second->report.plan.ToString().c_str());
    if (dot) std::printf("%s", PlanToDot(second->report.plan).c_str());
    if (!store_path.empty()) {
      STUBBY_CHECK_OK(store.SaveToFile(store_path));
      std::printf("saved catalog to %s\n", store_path.c_str());
    }
    return 0;
  }

  if (cmd == "compare") {
    auto w = LoadProfiled(wf, rows);
    STUBBY_CHECK_OK(w.status());
    auto baseline = PigBaseline(w->plan);
    STUBBY_CHECK_OK(baseline.status());
    double tb = RunPlan(*w, *baseline, nullptr);
    std::printf("%-10s %10s  speedup\n", "optimizer", "time");
    std::printf("%-10s %10s  %.2fx (reference)\n", "baseline",
                HumanSeconds(tb).c_str(), 1.0);
    for (const char* name :
         {"stubby", "vertical", "horizontal", "starfish", "ysmart",
          "mrshare"}) {
      auto plan = OptimizeWith(name, *w);
      STUBBY_CHECK_OK(plan.status());
      double t = RunPlan(*w, *plan, nullptr);
      std::printf("%-10s %10s  %.2fx\n", name, HumanSeconds(t).c_str(),
                  tb / t);
    }
    return 0;
  }
  return Usage();
}

// Business report generation — the paper's running example, end to end.
//
// Walks the seven-job BR workflow through Stubby's machinery with full
// visibility:
//   1. the annotated workflow as a Pig-style generator would hand it over,
//   2. the dynamic optimization-unit traversal (Figure 9),
//   3. the exhaustive subplan enumeration with RRS-optimized costs inside
//      the first unit (Figure 10),
//   4. the final optimized plan, its simulated performance against the
//      Baseline, and a result-equivalence check.
//
// Usage: report_generation [sample-rows]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "baselines/pig_baseline.h"
#include "common/strings.h"
#include "exec/workflow_runner.h"
#include "optimizer/partition_fn.h"
#include "optimizer/search.h"
#include "optimizer/stubby.h"
#include "optimizer/vertical.h"
#include "profiler/profiler.h"
#include "workflow/dot.h"
#include "workloads/registry.h"

using namespace stubby;

int main(int argc, char** argv) {
  WorkloadOptions options;
  options.sample_rows = argc > 1 ? std::atoi(argv[1]) : 20000;

  auto workload = MakeWorkload("BR", options);
  STUBBY_CHECK_OK(workload.status());
  std::printf("== %s: %zu jobs over %s of data ==\n\n",
              workload->name.c_str(), workload->plan.num_jobs(),
              HumanBytes(workload->dataset_logical_bytes).c_str());
  std::printf("Annotated input workflow:\n%s\n",
              workload->plan.ToString().c_str());

  // Profile (the Starfish-Profiler role).
  Profiler profiler(options.cluster);
  Dfs profiling_dfs = workload->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&workload->plan, &profiling_dfs));

  // Figure 9: the dynamic unit traversal on the original plan.
  std::printf("Optimization units (dynamic traversal):\n");
  std::set<std::string> processed;
  int unit_no = 1;
  while (auto unit = NextUnit(workload->plan, processed)) {
    std::printf("  U(%d) %s\n", unit_no++, unit->ToString().c_str());
    for (const auto& p : unit->producers) processed.insert(p);
  }

  // Figure 10: subplans and costs of the first unit under the Vertical
  // group.
  WhatIfEngine whatif(options.cluster);
  std::vector<std::shared_ptr<Transformation>> vertical_group = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
      std::make_shared<PartitionFunctionTransform>(),
  };
  UnitOptimizer unit_optimizer(vertical_group, &whatif, UnitSearchOptions{});
  auto first = NextUnit(workload->plan, {});
  auto subplans = unit_optimizer.EnumerateSubplans(workload->plan, *first);
  STUBBY_CHECK_OK(subplans.status());
  std::printf("\nSubplan enumeration for U(1) (cost includes RRS-chosen "
              "configurations):\n");
  for (const auto& sp : *subplans) {
    std::string desc = "(keep as is)";
    if (!sp.applied.empty()) {
      desc.clear();
      for (const auto& a : sp.applied) {
        if (!desc.empty()) desc += "; ";
        desc += a;
      }
    }
    std::printf("  est. %-9s  %s\n", HumanSeconds(sp.cost).c_str(),
                desc.c_str());
  }

  // Full optimization and comparison against the Baseline.
  auto baseline = PigBaseline(workload->plan);
  STUBBY_CHECK_OK(baseline.status());
  StubbyOptimizer optimizer;
  auto report = optimizer.Optimize(workload->plan);
  STUBBY_CHECK_OK(report.status());
  std::printf("\nStubby applied %zu transformation(s) in %.2fs:\n",
              report->applied.size(), report->optimization_time_sec);
  for (const auto& line : report->applied) std::printf("  - %s\n",
                                                       line.c_str());
  std::printf("\nFinal plan (%zu jobs):\n%s\n", report->plan.num_jobs(),
              report->plan.ToString().c_str());

  WorkflowRunner runner(options.cluster);
  Dfs bdfs = workload->dfs, sdfs = workload->dfs;
  auto tb = runner.Run(*baseline, &bdfs);
  auto ts = runner.Run(report->plan, &sdfs);
  STUBBY_CHECK_OK(tb.status());
  STUBBY_CHECK_OK(ts.status());
  std::printf("Baseline (%zu jobs): %s | Stubby (%zu jobs): %s -> %.2fx\n",
              baseline->num_jobs(), HumanSeconds(tb->makespan_sec).c_str(),
              report->plan.num_jobs(), HumanSeconds(ts->makespan_sec).c_str(),
              tb->makespan_sec / std::max(1e-9, ts->makespan_sec));

  bool ok = true;
  for (const auto& [id, ds] : workload->plan.datasets()) {
    if (!ds.is_workflow_output) continue;
    auto a = bdfs.Get(id);
    auto b = sdfs.Get(id);
    if (!a.ok() || !b.ok() ||
        !RowsApproxEqual((*a)->AllRows(), (*b)->AllRows(), 1e-6)) {
      ok = false;
    }
  }
  std::printf("Outputs: %s\n", ok ? "identical" : "MISMATCH");

  std::printf("\nGraphviz of the optimized plan:\n%s",
              PlanToDot(report->plan).c_str());
  return ok ? 0 : 1;
}

// Ablations of the design choices DESIGN.md calls out:
//  1. Phase ordering: Vertical-before-Horizontal (the paper's order,
//     Section 4) vs the flipped order.
//  2. Configuration search: RRS vs pure random sampling vs rules of thumb.
//  3. Information spectrum: full annotations vs schema-only (no profiles,
//     job-count fallback costing) vs no annotations at all.
//
// Flags: --rows N  physical sample rows (default 15000)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "optimizer/configuration.h"

using namespace stubby;
using namespace stubby::bench;

namespace {

/// Strips profile annotations (and optionally schema/filter/layout
/// annotations) from a plan — the information-spectrum ablation.
Plan StripAnnotations(const Plan& plan, bool keep_schema) {
  Plan out = plan;
  for (const auto& [jid, job] : plan.jobs()) {
    auto j = out.GetMutableJob(jid);
    for (Branch& b : (*j)->branches) {
      b.annotations.profile.reset();
      for (BranchInput& in : b.inputs) {
        for (Stage& s : in.map_stages) s.stats.reset();
      }
      for (Stage& s : b.merged_map_stages) s.stats.reset();
      for (Stage& s : b.reduce_stages) s.stats.reset();
      if (!keep_schema) {
        b.annotations.schema.reset();
        b.annotations.filter.reset();
      }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  int rows = 15000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--rows") && i + 1 < argc) {
      rows = std::atoi(argv[++i]);
    }
  }

  std::printf("Ablations (speedup over Baseline; higher is better)\n");
  std::printf("%-6s | %9s %9s | %9s %9s | %9s %9s\n", "WF", "V-then-H",
              "H-then-V", "RRS", "RandOnly", "FullAnn", "SchemaOnly");

  for (const auto& abbr : AllWorkloadAbbrs()) {
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());
    auto baseline = PigBaseline(pw->workload.plan);
    STUBBY_CHECK_OK(baseline.status());
    auto t_base = Execute(*pw, *baseline);
    STUBBY_CHECK_OK(t_base.status());

    auto speedup = [&](const StubbyOptions& opts, const Plan& input) {
      auto report = StubbyOptimizer(opts).Optimize(input);
      STUBBY_CHECK_OK(report.status());
      auto t = Execute(*pw, report->plan);
      STUBBY_CHECK_OK(t.status());
      return *t_base / *t;
    };

    StubbyOptions normal;
    StubbyOptions flipped;
    flipped.flip_phase_order = true;

    // RRS vs pure random sampling: random = RRS with no exploitation.
    StubbyOptions random_only;
    random_only.unit.rrs.explore_samples = random_only.unit.rrs.budget;
    random_only.unit.rrs.exploit_samples = 0;
    random_only.unit.rrs.init_radius = 0.0;

    double s_vh = speedup(normal, pw->workload.plan);
    double s_hv = speedup(flipped, pw->workload.plan);
    double s_rrs = s_vh;
    double s_rand = speedup(random_only, pw->workload.plan);
    // Schema-only: the plan keeps schema/filter/layout annotations but has
    // no profiles — Stubby falls back to job-count costing, so packing
    // still happens but configurations cannot be tuned. Start from the
    // rules-of-thumb settings (what a generator would hand over) so the
    // comparison isolates the missing profiles rather than missing configs.
    auto thumb = RuleOfThumbConfigs(pw->workload.plan);
    STUBBY_CHECK_OK(thumb.status());
    Plan schema_only = StripAnnotations(*thumb, true);
    double s_schema = speedup(normal, schema_only);

    std::printf("%-6s | %9.2f %9.2f | %9.2f %9.2f | %9.2f %9.2f\n",
                abbr.c_str(), s_vh, s_hv, s_rrs, s_rand, s_vh, s_schema);
    std::fflush(stdout);
  }
  return 0;
}

// stubbyd service bench: replays a Zipf-skewed, mixed-tenant submission
// trace (thousands of submissions drawn from a universe of distinct
// workflows) through the long-lived daemon and reports what a service
// operator cares about: steady-state reuse hit rate, eviction churn under a
// byte budget, and p50/p99 optimize and end-to-end (queueing included)
// latency.
//
// Identity gates (any failure exits nonzero):
//   - the daemon replay at --threads is bit-identical — per-request plan
//     signatures, cost bits, reuse counters, raw outputs, and the final
//     shared-store bytes — to the same replay at 1 thread;
//   - both are bit-identical to a sequential fresh-session loop over one
//     shared store (the no-daemon reference semantics);
//   - the budgeted leg (store byte budget set to half the unbudgeted
//     footprint, forcing steady eviction churn) matches ITS sequential
//     reference the same way;
//   - the steady-state hit rate (second half of the trace) reaches
//     --min-hit-rate-pct.
//
// Flags: --submissions N (default 1200), --universe N (32), --rows N (500),
// --tenants N (6), --zipf100 N (Zipf skew x100, default 110), --threads N,
// --wave N (16), --budget-kb N (0 = auto: half the unbudgeted footprint),
// --tenant-budget-kb N (0 = off), --min-hit-rate-pct N (50), --seed N (7).
// Writes BENCH_STUBBYD.json.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "optimizer/transform.h"
#include "reuse/session.h"
#include "service/stubbyd.h"
#include "service/trace.h"

namespace stubby::bench {
namespace {

/// The per-request bit-identity comparison unit.
struct Cap {
  bool ok = false;
  std::string plan_signature;
  double estimated_cost = 0.0;
  double simulated_cost = 0.0;
  std::string reuse_counters;
  bool hit = false;  ///< any workflow / whole-job / prefix hit
  std::map<std::string, std::vector<Row>> outputs;
};

Cap MakeCap(const Status& status, const ReuseSessionResult& r) {
  Cap c;
  c.ok = status.ok();
  if (!c.ok) return c;
  c.plan_signature = PlanSignature(r.report.plan);
  c.estimated_cost = r.report.estimated_cost;
  c.simulated_cost = r.simulated_cost;
  c.reuse_counters = r.reuse.ToString();
  c.hit = r.reuse.workflow_hits + r.reuse.whole_job_hits +
              r.reuse.prefix_hits >
          0;
  c.outputs = r.outputs;
  return c;
}

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool SameCap(const Cap& a, const Cap& b) {
  if (a.ok != b.ok) return false;
  if (!a.ok) return true;
  if (a.plan_signature != b.plan_signature ||
      !SameBits(a.estimated_cost, b.estimated_cost) ||
      !SameBits(a.simulated_cost, b.simulated_cost) ||
      a.reuse_counters != b.reuse_counters ||
      a.outputs.size() != b.outputs.size()) {
    return false;
  }
  for (const auto& [id, rows] : a.outputs) {
    auto it = b.outputs.find(id);
    if (it == b.outputs.end() || !RowsBitIdentical(rows, it->second)) {
      return false;
    }
  }
  return true;
}

double Percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct LegResult {
  std::vector<Cap> caps;
  std::string stats_text;
  std::string store_bytes;
  uint64_t stored_bytes = 0;
  uint64_t evictions = 0;
  uint64_t tenant_evictions = 0;
  uint64_t conflicts = 0;
  double wall_sec = 0.0;
  std::vector<double> optimize_sec;  ///< per request
  std::vector<double> e2e_sec;       ///< per request, queueing included
};

LegResult RunDaemon(const SubmissionTrace& trace,
                    const ServiceOptions& options, int threads) {
  ServiceOptions run_options = options;
  run_options.queue_capacity = trace.submissions.size();
  ThreadPool pool(threads);
  StubbyService service(run_options, &pool);
  const auto t0 = std::chrono::steady_clock::now();
  for (const Submission& sub : trace.submissions) {
    auto id = service.Submit(sub);
    STUBBY_CHECK_OK(id.status());
  }
  std::vector<RequestResult> results = service.Drain();
  LegResult leg;
  leg.wall_sec = SecondsSince(t0);
  for (const RequestResult& r : results) {
    leg.caps.push_back(MakeCap(r.status, r.session));
    leg.optimize_sec.push_back(r.session.optimize_sec);
    leg.e2e_sec.push_back(r.e2e_sec);
  }
  leg.stats_text = service.stats().ToString();
  leg.store_bytes = service.store().Serialize();
  leg.stored_bytes = service.store().stored_bytes();
  leg.evictions = service.store().evictions();
  leg.tenant_evictions = service.stats().tenant_evictions;
  leg.conflicts = service.stats().conflicts;
  return leg;
}

/// The fresh-session reference: one sequential ReuseSession loop over one
/// shared store, replicating the daemon's degradation ladder and tenant
/// budgets. What Drain() must be bit-identical to.
LegResult RunSequential(const SubmissionTrace& trace,
                        const ServiceOptions& options) {
  ResultStore store(options.store);
  std::map<std::string, std::set<std::string>> owned;
  LegResult leg;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Submission& sub : trace.submissions) {
    DegradeLevel level = DegradeLevel::kFull;
    const uint64_t bytes = store.stored_bytes();
    if (options.hard_degrade_bytes > 0 &&
        bytes >= options.hard_degrade_bytes) {
      level = DegradeLevel::kBlind;
    } else if (options.soft_degrade_bytes > 0 &&
               bytes >= options.soft_degrade_bytes) {
      level = DegradeLevel::kRegisterSkip;
    }
    const uint64_t before = store.next_snapshot_id();
    Result<ReuseSessionResult> r =
        level == DegradeLevel::kBlind
            ? ReuseSession(nullptr).Run(*sub.plan, *sub.dfs, sub.options)
            : ReuseSession(&store).Run(
                  *sub.plan, *sub.dfs, sub.options, nullptr,
                  /*register_outputs=*/level == DegradeLevel::kFull);
    for (uint64_t n = before; n < store.next_snapshot_id(); ++n) {
      owned[sub.tenant].insert("rs/" + std::to_string(n));
    }
    uint64_t budget = options.tenant_byte_budget;
    auto bit = options.tenant_budgets.find(sub.tenant);
    if (bit != options.tenant_budgets.end()) budget = bit->second;
    auto oit = owned.find(sub.tenant);
    if (budget > 0 && oit != owned.end()) {
      leg.tenant_evictions += store.EnforceBudgetOn(oit->second, budget);
    }
    for (auto& [tenant, ids] : owned) {
      for (auto it = ids.begin(); it != ids.end();) {
        it = store.HasSnapshot(*it) ? std::next(it) : ids.erase(it);
      }
    }
    leg.caps.push_back(r.ok() ? MakeCap(Status::OK(), *r)
                              : MakeCap(r.status(), ReuseSessionResult{}));
    leg.optimize_sec.push_back(r.ok() ? r->optimize_sec : 0.0);
  }
  leg.wall_sec = SecondsSince(t0);
  leg.store_bytes = store.Serialize();
  leg.stored_bytes = store.stored_bytes();
  leg.evictions = store.evictions();
  return leg;
}

/// Compares two legs request by request; prints the first few divergences.
bool LegsMatch(const LegResult& a, const LegResult& b, const char* label) {
  bool ok = a.caps.size() == b.caps.size();
  int reported = 0;
  for (size_t i = 0; ok && i < a.caps.size(); ++i) {
    if (!SameCap(a.caps[i], b.caps[i])) {
      if (reported++ < 3) {
        std::fprintf(stderr, "IDENTITY VIOLATION [%s]: request %zu\n", label,
                     i);
      }
      ok = false;
    }
  }
  if (a.store_bytes != b.store_bytes) {
    std::fprintf(stderr, "IDENTITY VIOLATION [%s]: final store differs\n",
                 label);
    ok = false;
  }
  return ok;
}

double HitRate(const std::vector<Cap>& caps, size_t from, size_t to) {
  if (from >= to) return 0.0;
  size_t hits = 0;
  for (size_t i = from; i < to; ++i) hits += caps[i].hit ? 1 : 0;
  return static_cast<double>(hits) / static_cast<double>(to - from);
}

Json LatencyJson(const std::vector<double>& v) {
  Json j = Json::Object();
  j["p50_sec"] = Percentile(v, 0.50);
  j["p99_sec"] = Percentile(v, 0.99);
  return j;
}

int Main(int argc, char** argv) {
  TraceOptions trace_opt;
  trace_opt.submissions = IntFlag(argc, argv, "--submissions", 1200);
  trace_opt.universe = IntFlag(argc, argv, "--universe", 32);
  trace_opt.rows = IntFlag(argc, argv, "--rows", 500);
  trace_opt.tenants = IntFlag(argc, argv, "--tenants", 6);
  trace_opt.zipf = IntFlag(argc, argv, "--zipf100", 110) / 100.0;
  trace_opt.seed = static_cast<uint64_t>(IntFlag(argc, argv, "--seed", 7));
  const int threads = ThreadsFlag(argc, argv);
  const int wave = std::max(1, IntFlag(argc, argv, "--wave", 16));
  const int budget_kb = IntFlag(argc, argv, "--budget-kb", 0);
  const int tenant_budget_kb = IntFlag(argc, argv, "--tenant-budget-kb", 0);
  const int min_hit_pct = IntFlag(argc, argv, "--min-hit-rate-pct", 50);

  std::printf(
      "bench_stubbyd: submissions=%d universe=%d rows=%d tenants=%d "
      "zipf=%.2f threads=%d wave=%d\n",
      trace_opt.submissions, trace_opt.universe, trace_opt.rows,
      trace_opt.tenants, trace_opt.zipf, threads, wave);

  auto trace = MakeSubmissionTrace(trace_opt);
  STUBBY_CHECK_OK(trace.status());
  const size_t n = trace->submissions.size();

  ServiceOptions options;
  options.wave_size = static_cast<size_t>(wave);
  if (tenant_budget_kb > 0) {
    options.tenant_byte_budget =
        static_cast<uint64_t>(tenant_budget_kb) * 1024;
  }

  // Leg 1: the daemon at --threads (the reported run).
  LegResult daemon = RunDaemon(*trace, options, threads);
  std::printf("daemon@%d: %5.2fs wall  [%s]\n", threads, daemon.wall_sec,
              daemon.stats_text.c_str());
  // Leg 2: the daemon at 1 thread — everything deterministic must match.
  LegResult daemon1 = RunDaemon(*trace, options, 1);
  std::printf("daemon@1: %5.2fs wall\n", daemon1.wall_sec);
  // Leg 3: the sequential fresh-session reference.
  LegResult sequential = RunSequential(*trace, options);
  std::printf("sequential: %5.2fs wall\n", sequential.wall_sec);

  bool thread_invariant = LegsMatch(daemon, daemon1, "daemon@T vs daemon@1");
  if (daemon.stats_text != daemon1.stats_text) {
    std::fprintf(stderr, "IDENTITY VIOLATION: service stats differ across "
                         "thread counts\n");
    thread_invariant = false;
  }
  const bool matches_sequential =
      LegsMatch(daemon, sequential, "daemon vs sequential");

  // Leg 4: the budgeted store — half the unbudgeted footprint unless the
  // flag pins it — so steady-state eviction churn is actually exercised.
  ServiceOptions budgeted_options = options;
  budgeted_options.store.byte_budget =
      budget_kb > 0 ? static_cast<uint64_t>(budget_kb) * 1024
                    : daemon.stored_bytes / 2;
  LegResult budgeted = RunDaemon(*trace, budgeted_options, threads);
  LegResult budgeted_seq = RunSequential(*trace, budgeted_options);
  const bool budgeted_matches =
      LegsMatch(budgeted, budgeted_seq, "budgeted daemon vs sequential");
  std::printf("budgeted (%llu KiB): %llu eviction(s)  [%s]\n",
              (unsigned long long)(budgeted_options.store.byte_budget /
                                   1024),
              (unsigned long long)budgeted.evictions,
              budgeted.stats_text.c_str());

  const double hit_rate = HitRate(daemon.caps, 0, n);
  const double steady_hit_rate = HitRate(daemon.caps, n / 2, n);
  const double budgeted_steady = HitRate(budgeted.caps, n / 2, n);
  std::printf(
      "hit rate: %.1f%% overall, %.1f%% steady-state "
      "(%.1f%% budgeted)  conflicts=%llu\n",
      100 * hit_rate, 100 * steady_hit_rate, 100 * budgeted_steady,
      (unsigned long long)daemon.conflicts);
  std::printf(
      "latency: optimize p50 %.1fms p99 %.1fms | e2e p50 %.1fms "
      "p99 %.1fms\n",
      1e3 * Percentile(daemon.optimize_sec, 0.5),
      1e3 * Percentile(daemon.optimize_sec, 0.99),
      1e3 * Percentile(daemon.e2e_sec, 0.5),
      1e3 * Percentile(daemon.e2e_sec, 0.99));

  Json doc = Json::Object();
  doc["bench"] = "stubbyd";
  doc["submissions"] = trace_opt.submissions;
  doc["universe"] = trace_opt.universe;
  doc["rows"] = trace_opt.rows;
  doc["tenants"] = trace_opt.tenants;
  doc["zipf"] = trace_opt.zipf;
  doc["threads"] = threads;
  doc["wave_size"] = wave;
  doc["hit_rate"] = hit_rate;
  doc["steady_state_hit_rate"] = steady_hit_rate;
  doc["conflicts"] = daemon.conflicts;
  doc["stored_bytes"] = daemon.stored_bytes;
  doc["evictions"] = daemon.evictions;
  doc["tenant_evictions"] = daemon.tenant_evictions;
  doc["wall_sec"] = daemon.wall_sec;
  doc["wall_sec_1_thread"] = daemon1.wall_sec;
  doc["wall_sec_sequential"] = sequential.wall_sec;
  doc["optimize_latency"] = LatencyJson(daemon.optimize_sec);
  doc["e2e_latency"] = LatencyJson(daemon.e2e_sec);
  Json budget_json = Json::Object();
  budget_json["byte_budget"] = budgeted_options.store.byte_budget;
  budget_json["evictions"] = budgeted.evictions;
  budget_json["steady_state_hit_rate"] = budgeted_steady;
  budget_json["stored_bytes"] = budgeted.stored_bytes;
  doc["budgeted"] = std::move(budget_json);
  doc["thread_invariant"] = thread_invariant;
  doc["matches_sequential"] = matches_sequential;
  doc["budgeted_matches_sequential"] = budgeted_matches;
  doc["service_stats"] = daemon.stats_text;
  WriteBenchJson("BENCH_STUBBYD.json", doc);

  if (!thread_invariant || !matches_sequential || !budgeted_matches) {
    return 1;
  }
  if (100 * steady_hit_rate < static_cast<double>(min_hit_pct)) {
    std::fprintf(stderr,
                 "steady-state hit rate %.1f%% below the %d%% floor\n",
                 100 * steady_hit_rate, min_hit_pct);
    return 1;
  }
  std::printf("OK: daemon replay bit-identical to the sequential "
              "fresh-session reference at 1 and %d threads\n", threads);
  return 0;
}

}  // namespace
}  // namespace stubby::bench

int main(int argc, char** argv) { return stubby::bench::Main(argc, argv); }

// Cross-workflow result-reuse bench: submits a shared session — two
// hand-built map-only workflows (Q2 extends Q1's map pipeline, the ReStore
// sub-job scenario) followed by the eight Table-1 workflows — twice against
// one ResultStore, and compares against recompute-from-scratch.
//
// Checks the subsystem's contract end to end:
//   - every pass's final outputs are bit-identical to the no-store baseline
//     at 1 thread and at --threads threads;
//   - hits/misses/registrations are identical across thread counts;
//   - pass 2 reuses pass 1's work: whole-workflow elisions (even-index
//     submissions), whole-job rewrites (odd-index), and map-prefix reuse,
//     with lower total simulated cost and lower optimize+execute wall time;
//   - with the warm store, the reuse-aware unit search never simulates
//     above the post-hoc rewrite path (reported side by side);
//   - the cold-store first submission costs exactly what the reuse-blind
//     baseline costs.
//
// Flags: --rows N (sample rows, default 8000), --threads N, --passes N
// (default 2), --budget-mb N (store byte budget, 0 = unlimited),
// --policy lru|benefit (eviction policy; with --budget-mb both policies are
// also compared side by side), --store FILE (load the catalog from FILE
// when it exists, save it back after the run — exact Serialize round-trip).
// Writes BENCH_REUSE.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "reuse/session.h"
#include "workloads/builder.h"
#include "workloads/udfs.h"

namespace stubby::bench {
namespace {

constexpr uint64_t kGB = 1ull << 30;

struct Submission {
  std::string name;
  Plan plan;
  Dfs dfs;
};

// Q1 = [filter], Q2 = [filter, project] over identical base content: Q2's
// pipeline extends Q1's, so a session that saw Q1 serves Q2's first stage
// from the store (sub-job reuse) even though no whole job matches.
Result<Submission> MakeMapOnlyQuery(const std::string& tag, int num_stages,
                                    int rows) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema s({"K", "V"});
  Rng rng(11);
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back(Row{rng.NextInt(0, 99), rng.NextDouble(0, 10)});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddBase("B" + tag, s, Layout{}, 6, std::move(data), 4 * kGB));
  std::vector<Stage> stages = {
      Stage::Map(FilterRangeMap("keep_mid", s, "V", 2.0, 9.0))};
  Schema out_schema = s;
  if (num_stages > 1) {
    stages.push_back(Stage::Map(ProjectMap("just_k", s, {"K"})));
    out_schema = Schema({"K"});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddDataset("OUT" + tag, out_schema, /*workflow_output=*/true));
  WorkflowFactory::JobDef j;
  j.id = "J" + tag;
  j.inputs = {In("B" + tag, std::move(stages))};
  j.map_output_schema = out_schema;
  j.output = "OUT" + tag;
  STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  return Submission{"Q" + tag, f.plan(), f.dfs()};
}

Result<std::vector<Submission>> BuildSession(int rows) {
  std::vector<Submission> subs;
  STUBBY_ASSIGN_OR_RETURN(Submission q1, MakeMapOnlyQuery("1", 1, rows));
  STUBBY_ASSIGN_OR_RETURN(Submission q2, MakeMapOnlyQuery("2", 2, rows));
  subs.push_back(std::move(q1));
  subs.push_back(std::move(q2));
  for (const std::string& abbr : AllWorkloadAbbrs()) {
    STUBBY_ASSIGN_OR_RETURN(PreparedWorkload pw, Prepare(abbr, rows));
    subs.push_back(Submission{abbr, std::move(pw.workload.plan),
                              std::move(pw.workload.dfs)});
  }
  return subs;
}

struct PassTotals {
  double simulated_cost = 0.0;
  double optimize_sec = 0.0;
  double execute_sec = 0.0;
  ReuseStats reuse;
};

struct SessionRun {
  std::vector<PassTotals> passes;
  /// outputs[pass][submission][dataset id] -> rows
  std::vector<std::vector<std::map<std::string, std::vector<Row>>>> outputs;
  /// simulated_cost[pass][submission] — the cold-vs-blind equality unit
  std::vector<std::vector<double>> costs;
};

/// How each submission's options are derived.
enum class SessionMode {
  kAlternate,   ///< whole-workflow tier on for even-index submissions
  kSearchOnly,  ///< tier off everywhere: the reuse-aware search does it all
  kPostHoc,     ///< tier off AND aware search off: rewrite-after-search only
};

Result<SessionRun> RunSession(ResultStore* store,
                              const std::vector<Submission>& subs, int passes,
                              ThreadPool* pool,
                              SessionMode mode = SessionMode::kAlternate) {
  SessionRun run;
  ReuseSession session(store);
  for (int p = 0; p < passes; ++p) {
    PassTotals totals;
    run.outputs.emplace_back();
    run.costs.emplace_back();
    for (size_t i = 0; i < subs.size(); ++i) {
      StubbyOptions opts;
      opts.columnar_storage = ColumnarStorageFromEnv();
      // Alternate the whole-workflow tier so one repeated session
      // exercises both full elision and per-job rewriting.
      opts.reuse_whole_workflow =
          mode == SessionMode::kAlternate && (i % 2 == 0);
      opts.reuse_aware_search = mode != SessionMode::kPostHoc;
      STUBBY_ASSIGN_OR_RETURN(
          ReuseSessionResult r,
          session.Run(subs[i].plan, subs[i].dfs, opts, pool));
      totals.simulated_cost += r.simulated_cost;
      totals.optimize_sec += r.optimize_sec;
      totals.execute_sec += r.execute_sec;
      totals.reuse.Add(r.reuse);
      run.outputs.back().push_back(std::move(r.outputs));
      run.costs.back().push_back(r.simulated_cost);
    }
    run.passes.push_back(totals);
  }
  return run;
}

bool OutputsMatch(const std::map<std::string, std::vector<Row>>& a,
                  const std::map<std::string, std::vector<Row>>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [id, rows] : a) {
    auto it = b.find(id);
    if (it == b.end() || !RowsBitIdentical(rows, it->second)) return false;
  }
  return true;
}

Json ReuseJson(const ReuseStats& s) {
  Json j = Json::Object();
  j["lookups"] = s.lookups;
  j["whole_job_hits"] = s.whole_job_hits;
  j["prefix_hits"] = s.prefix_hits;
  j["workflow_hits"] = s.workflow_hits;
  j["jobs_elided"] = s.jobs_elided;
  j["bytes_saved"] = s.bytes_saved;
  j["registered"] = s.registered;
  j["search_probes"] = s.search_probes;
  j["search_priced"] = s.search_priced;
  j["search_won"] = s.search_won;
  j["probe_cache_hits"] = s.probe_cache_hits;
  j["probe_cache_misses"] = s.probe_cache_misses;
  j["signature_keys_computed"] = s.signature_keys_computed;
  return j;
}

Json PassJson(const PassTotals& pt) {
  Json j = Json::Object();
  j["simulated_cost_sec"] = pt.simulated_cost;
  j["optimize_sec"] = pt.optimize_sec;
  j["execute_sec"] = pt.execute_sec;
  j["wall_sec"] = pt.optimize_sec + pt.execute_sec;
  j["reuse"] = ReuseJson(pt.reuse);
  return j;
}

int Main(int argc, char** argv) {
  const int rows = IntFlag(argc, argv, "--rows", 8000);
  const int threads = ThreadsFlag(argc, argv);
  const int passes = std::max(1, IntFlag(argc, argv, "--passes", 2));
  const int budget_mb = IntFlag(argc, argv, "--budget-mb", 0);
  const std::string policy_name = StringFlag(argc, argv, "--policy");
  const std::string store_path = StringFlag(argc, argv, "--store");

  std::printf("bench_reuse: rows=%d threads=%d passes=%d budget_mb=%d\n",
              rows, threads, passes, budget_mb);
  auto subs = BuildSession(rows);
  STUBBY_CHECK_OK(subs.status());

  // --store FILE: resume from a persisted catalog. The file's bytes seed
  // every width identically, so determinism checks still compare
  // like-for-like.
  std::string initial_bytes;
  ResultStore::Options store_opts;
  if (!store_path.empty()) {
    // Only a missing file means "fresh catalog"; an existing-but-unloadable
    // file would be overwritten at save time, so refuse to run instead of
    // silently destroying a possibly recoverable catalog.
    std::FILE* probe = std::fopen(store_path.c_str(), "rb");
    if (probe == nullptr) {
      std::printf("starting a fresh catalog (%s)\n", store_path.c_str());
    } else {
      std::fclose(probe);
      auto loaded = ResultStore::LoadFromFile(store_path);
      if (!loaded.ok()) {
        std::fprintf(stderr,
                     "refusing to overwrite unreadable catalog %s: %s\n",
                     store_path.c_str(),
                     loaded.status().ToString().c_str());
        return 1;
      }
      initial_bytes = loaded->Serialize();
      store_opts = loaded->options();
      std::printf("loaded %zu catalog entr%s from %s\n",
                  loaded->num_entries(),
                  loaded->num_entries() == 1 ? "y" : "ies",
                  store_path.c_str());
    }
  }
  if (budget_mb > 0) {
    store_opts.byte_budget = static_cast<uint64_t>(budget_mb) * (1ull << 20);
  }
  if (!policy_name.empty()) {
    auto policy = EvictionPolicyFromName(policy_name);
    STUBBY_CHECK_OK(policy.status());
    store_opts.policy = *policy;
  }
  auto make_store = [&](ResultStore::Options opts) -> ResultStore {
    if (initial_bytes.empty()) return ResultStore(opts);
    auto restored = ResultStore::Deserialize(initial_bytes);
    STUBBY_CHECK_OK(restored.status());
    restored->set_options(opts);
    return std::move(*restored);
  };

  bool bit_identical = true;
  bool deterministic = true;
  bool cold_matches_blind = true;
  SessionRun reference;  // with-store run at --threads (reported run)
  SessionRun blind;      // no-store baseline at --threads
  std::string warm_bytes;  // reference store after all passes
  struct StoreSummary {
    uint64_t entries = 0, snapshots = 0, stored_bytes = 0, evictions = 0,
             total_hits = 0;
  } summary;

  std::vector<std::string> pass_stats_at_one_thread;
  for (int t : std::vector<int>{1, threads}) {
    ThreadPool pool(t);
    // Recompute baseline: no store, one pass (outputs are pass-invariant).
    auto baseline = RunSession(nullptr, *subs, 1, &pool);
    STUBBY_CHECK_OK(baseline.status());
    // Shared-store session.
    ResultStore store = make_store(store_opts);
    auto with_store = RunSession(&store, *subs, passes, &pool);
    STUBBY_CHECK_OK(with_store.status());

    for (int p = 0; p < passes; ++p) {
      for (size_t i = 0; i < subs->size(); ++i) {
        if (!OutputsMatch(with_store->outputs[p][i],
                          baseline.value().outputs[0][i])) {
          std::fprintf(stderr,
                       "BIT-IDENTITY VIOLATION: %s pass %d threads %d\n",
                       (*subs)[i].name.c_str(), p + 1, t);
          bit_identical = false;
        }
      }
    }
    // Cold-store equivalence: the first submission against an empty store
    // must simulate to the exact cost of the reuse-blind run (every search
    // probe misses, so the emitted plan is the blind plan).
    if (initial_bytes.empty() &&
        with_store->costs[0][0] != baseline->costs[0][0]) {
      std::fprintf(stderr,
                   "COLD != BLIND: %s cost %.17g vs %.17g at %d threads\n",
                   (*subs)[0].name.c_str(), with_store->costs[0][0],
                   baseline->costs[0][0], t);
      cold_matches_blind = false;
    }
    std::vector<std::string> pass_stats;
    for (const PassTotals& pt : with_store->passes) {
      pass_stats.push_back(pt.reuse.ToString());
    }
    if (t == 1) {
      pass_stats_at_one_thread = pass_stats;
    } else if (pass_stats != pass_stats_at_one_thread) {
      std::fprintf(stderr, "NONDETERMINISM: hit sequence differs at %d "
                           "threads\n", t);
      deterministic = false;
    }
    if (t == threads) {
      reference = std::move(*with_store);
      blind = std::move(*baseline);
      warm_bytes = store.Serialize();
      summary = StoreSummary{store.num_entries(), store.num_snapshots(),
                             store.stored_bytes(), store.evictions(),
                             store.total_hits()};
      if (!store_path.empty()) {
        STUBBY_CHECK_OK(store.SaveToFile(store_path));
        std::printf("saved catalog to %s\n", store_path.c_str());
      }
    }
    if (threads == 1) break;  // avoid running the same width twice
  }

  // Warm-store comparison: one extra pass from the same warmed catalog,
  // once through the reuse-aware search and once through the post-hoc
  // rewrite path. The aware search minimizes over reuse-priced candidates
  // (with the post-hoc floor), so it must never simulate above post-hoc.
  PassTotals aware_pass, posthoc_pass;
  bool aware_leq_posthoc = true;
  {
    ThreadPool pool(threads);
    auto aware_store = ResultStore::Deserialize(warm_bytes);
    auto posthoc_store = ResultStore::Deserialize(warm_bytes);
    STUBBY_CHECK_OK(aware_store.status());
    STUBBY_CHECK_OK(posthoc_store.status());
    auto aware = RunSession(&*aware_store, *subs, 1, &pool,
                            SessionMode::kSearchOnly);
    auto posthoc = RunSession(&*posthoc_store, *subs, 1, &pool,
                              SessionMode::kPostHoc);
    STUBBY_CHECK_OK(aware.status());
    STUBBY_CHECK_OK(posthoc.status());
    for (size_t i = 0; i < subs->size(); ++i) {
      if (!OutputsMatch(aware->outputs[0][i], blind.outputs[0][i]) ||
          !OutputsMatch(posthoc->outputs[0][i], blind.outputs[0][i])) {
        std::fprintf(stderr, "BIT-IDENTITY VIOLATION: %s warm comparison\n",
                     (*subs)[i].name.c_str());
        bit_identical = false;
      }
    }
    aware_pass = aware->passes[0];
    posthoc_pass = posthoc->passes[0];
    aware_leq_posthoc =
        aware_pass.simulated_cost <= posthoc_pass.simulated_cost * (1 + 1e-9);
    std::printf("warm store: aware search %9.1fs vs post-hoc %9.1fs  "
                "(aware [%s])\n",
                aware_pass.simulated_cost, posthoc_pass.simulated_cost,
                aware_pass.reuse.ToString().c_str());
  }

  // Eviction-policy comparison: the same budgeted session under LRU and
  // under benefit-weighted eviction, side by side.
  bool compare_policies = budget_mb > 0;
  PassTotals lru_last, benefit_last;
  uint64_t lru_evictions = 0, benefit_evictions = 0;
  uint64_t lru_hits = 0, benefit_hits = 0;
  if (compare_policies) {
    ThreadPool pool(threads);
    for (EvictionPolicy policy :
         {EvictionPolicy::kLru, EvictionPolicy::kBenefitWeighted}) {
      ResultStore::Options opts = store_opts;
      opts.policy = policy;
      ResultStore store = make_store(opts);
      auto run = RunSession(&store, *subs, passes, &pool);
      STUBBY_CHECK_OK(run.status());
      if (policy == EvictionPolicy::kLru) {
        lru_last = run->passes.back();
        lru_evictions = store.evictions();
        lru_hits = store.total_hits();
      } else {
        benefit_last = run->passes.back();
        benefit_evictions = store.evictions();
        benefit_hits = store.total_hits();
      }
    }
    std::printf("eviction: lru %llu eviction(s) %llu hit(s) %9.1fs | "
                "benefit %llu eviction(s) %llu hit(s) %9.1fs\n",
                (unsigned long long)lru_evictions,
                (unsigned long long)lru_hits, lru_last.simulated_cost,
                (unsigned long long)benefit_evictions,
                (unsigned long long)benefit_hits,
                benefit_last.simulated_cost);
  }

  Json doc = Json::Object();
  doc["bench"] = "reuse";
  doc["rows"] = rows;
  doc["threads"] = threads;
  doc["num_passes"] = passes;
  doc["budget_mb"] = budget_mb;
  Json names = Json::Array();
  for (const Submission& s : *subs) names.Append(s.name);
  doc["workflows"] = std::move(names);
  Json pass_array = Json::Array();
  for (int p = 0; p < static_cast<int>(reference.passes.size()); ++p) {
    const PassTotals& pt = reference.passes[p];
    Json j = PassJson(pt);
    j["pass"] = p + 1;
    pass_array.Append(std::move(j));
    std::printf(
        "pass %d: simulated %9.1fs  wall %6.2fs  [%s]\n", p + 1,
        pt.simulated_cost, pt.optimize_sec + pt.execute_sec,
        pt.reuse.ToString().c_str());
  }
  doc["passes"] = std::move(pass_array);
  Json warm = Json::Object();
  warm["aware"] = PassJson(aware_pass);
  warm["posthoc"] = PassJson(posthoc_pass);
  warm["aware_leq_posthoc"] = aware_leq_posthoc;
  doc["warm_comparison"] = std::move(warm);
  doc["cold_matches_blind"] = cold_matches_blind;
  if (compare_policies) {
    Json ev = Json::Object();
    Json lj = PassJson(lru_last);
    lj["evictions"] = lru_evictions;
    lj["total_hits"] = lru_hits;
    Json bj = PassJson(benefit_last);
    bj["evictions"] = benefit_evictions;
    bj["total_hits"] = benefit_hits;
    ev["lru"] = std::move(lj);
    ev["benefit"] = std::move(bj);
    doc["eviction_comparison"] = std::move(ev);
  }
  Json store_json = Json::Object();
  store_json["entries"] = summary.entries;
  store_json["snapshots"] = summary.snapshots;
  store_json["stored_bytes"] = summary.stored_bytes;
  store_json["evictions"] = summary.evictions;
  store_json["total_hits"] = summary.total_hits;
  doc["store"] = std::move(store_json);
  doc["bit_identical"] = bit_identical;
  doc["deterministic_across_threads"] = deterministic;

  bool pass2_cheaper = true;
  if (reference.passes.size() >= 2) {
    const PassTotals& p1 = reference.passes.front();
    const PassTotals& p2 = reference.passes.back();
    // A catalog preloaded via --store already serves pass 1, so "strictly
    // cheaper" degrades to "no more expensive" there.
    pass2_cheaper = initial_bytes.empty()
                        ? p2.simulated_cost < p1.simulated_cost
                        : p2.simulated_cost <=
                              p1.simulated_cost * (1 + 1e-9);
    doc["pass2_cost_ratio"] = p1.simulated_cost > 0
                                  ? p2.simulated_cost / p1.simulated_cost
                                  : 1.0;
    if (p1.simulated_cost > 0) {
      std::printf("pass %zu / pass 1: simulated cost %.2f%%, wall %.2f%%\n",
                  reference.passes.size(),
                  100.0 * p2.simulated_cost / p1.simulated_cost,
                  100.0 * (p2.optimize_sec + p2.execute_sec) /
                      (p1.optimize_sec + p1.execute_sec));
    }
  }
  WriteBenchJson("BENCH_REUSE.json", doc);

  if (!bit_identical || !deterministic) return 1;
  if (!pass2_cheaper) {
    std::fprintf(stderr, "pass 2 was not cheaper than pass 1\n");
    return 1;
  }
  if (!cold_matches_blind) {
    std::fprintf(stderr, "cold-store run did not match the blind run\n");
    return 1;
  }
  if (!aware_leq_posthoc) {
    std::fprintf(stderr, "aware search simulated above the post-hoc path\n");
    return 1;
  }
  std::printf("OK: outputs bit-identical, hits deterministic, "
              "aware <= post-hoc\n");
  return 0;
}

}  // namespace
}  // namespace stubby::bench

int main(int argc, char** argv) { return stubby::bench::Main(argc, argv); }

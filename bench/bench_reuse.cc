// Cross-workflow result-reuse bench: submits a shared session — two
// hand-built map-only workflows (Q2 extends Q1's map pipeline, the ReStore
// sub-job scenario) followed by the eight Table-1 workflows — twice against
// one ResultStore, and compares against recompute-from-scratch.
//
// Checks the subsystem's contract end to end:
//   - every pass's final outputs are bit-identical to the no-store baseline
//     at 1 thread and at --threads threads;
//   - hits/misses/registrations are identical across thread counts;
//   - pass 2 reuses pass 1's work: whole-workflow elisions (even-index
//     submissions), whole-job rewrites (odd-index), and map-prefix reuse,
//     with lower total simulated cost and lower optimize+execute wall time.
//
// Flags: --rows N (sample rows, default 8000), --threads N, --passes N
// (default 2), --budget-mb N (store byte budget, 0 = unlimited).
// Writes BENCH_REUSE.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "reuse/session.h"
#include "workloads/builder.h"
#include "workloads/udfs.h"

namespace stubby::bench {
namespace {

constexpr uint64_t kGB = 1ull << 30;

struct Submission {
  std::string name;
  Plan plan;
  Dfs dfs;
};

// Q1 = [filter], Q2 = [filter, project] over identical base content: Q2's
// pipeline extends Q1's, so a session that saw Q1 serves Q2's first stage
// from the store (sub-job reuse) even though no whole job matches.
Result<Submission> MakeMapOnlyQuery(const std::string& tag, int num_stages,
                                    int rows) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Schema s({"K", "V"});
  Rng rng(11);
  std::vector<Row> data;
  for (int i = 0; i < rows; ++i) {
    data.push_back(Row{rng.NextInt(0, 99), rng.NextDouble(0, 10)});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddBase("B" + tag, s, Layout{}, 6, std::move(data), 4 * kGB));
  std::vector<Stage> stages = {
      Stage::Map(FilterRangeMap("keep_mid", s, "V", 2.0, 9.0))};
  Schema out_schema = s;
  if (num_stages > 1) {
    stages.push_back(Stage::Map(ProjectMap("just_k", s, {"K"})));
    out_schema = Schema({"K"});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddDataset("OUT" + tag, out_schema, /*workflow_output=*/true));
  WorkflowFactory::JobDef j;
  j.id = "J" + tag;
  j.inputs = {In("B" + tag, std::move(stages))};
  j.map_output_schema = out_schema;
  j.output = "OUT" + tag;
  STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  return Submission{"Q" + tag, f.plan(), f.dfs()};
}

Result<std::vector<Submission>> BuildSession(int rows) {
  std::vector<Submission> subs;
  STUBBY_ASSIGN_OR_RETURN(Submission q1, MakeMapOnlyQuery("1", 1, rows));
  STUBBY_ASSIGN_OR_RETURN(Submission q2, MakeMapOnlyQuery("2", 2, rows));
  subs.push_back(std::move(q1));
  subs.push_back(std::move(q2));
  for (const std::string& abbr : AllWorkloadAbbrs()) {
    STUBBY_ASSIGN_OR_RETURN(PreparedWorkload pw, Prepare(abbr, rows));
    subs.push_back(Submission{abbr, std::move(pw.workload.plan),
                              std::move(pw.workload.dfs)});
  }
  return subs;
}

struct PassTotals {
  double simulated_cost = 0.0;
  double optimize_sec = 0.0;
  double execute_sec = 0.0;
  ReuseStats reuse;
};

struct SessionRun {
  std::vector<PassTotals> passes;
  /// outputs[pass][submission][dataset id] -> rows
  std::vector<std::vector<std::map<std::string, std::vector<Row>>>> outputs;
};

Result<SessionRun> RunSession(ResultStore* store,
                              const std::vector<Submission>& subs, int passes,
                              ThreadPool* pool) {
  SessionRun run;
  ReuseSession session(store);
  for (int p = 0; p < passes; ++p) {
    PassTotals totals;
    run.outputs.emplace_back();
    for (size_t i = 0; i < subs.size(); ++i) {
      StubbyOptions opts;
      // Alternate the whole-workflow tier so one repeated session
      // exercises both full elision and per-job rewriting.
      opts.reuse_whole_workflow = (i % 2 == 0);
      STUBBY_ASSIGN_OR_RETURN(
          ReuseSessionResult r,
          session.Run(subs[i].plan, subs[i].dfs, opts, pool));
      totals.simulated_cost += r.simulated_cost;
      totals.optimize_sec += r.optimize_sec;
      totals.execute_sec += r.execute_sec;
      totals.reuse.Add(r.reuse);
      run.outputs.back().push_back(std::move(r.outputs));
    }
    run.passes.push_back(totals);
  }
  return run;
}

bool OutputsMatch(const std::map<std::string, std::vector<Row>>& a,
                  const std::map<std::string, std::vector<Row>>& b) {
  if (a.size() != b.size()) return false;
  for (const auto& [id, rows] : a) {
    auto it = b.find(id);
    if (it == b.end() || !RowsBitIdentical(rows, it->second)) return false;
  }
  return true;
}

Json ReuseJson(const ReuseStats& s) {
  Json j = Json::Object();
  j["lookups"] = s.lookups;
  j["whole_job_hits"] = s.whole_job_hits;
  j["prefix_hits"] = s.prefix_hits;
  j["workflow_hits"] = s.workflow_hits;
  j["jobs_elided"] = s.jobs_elided;
  j["bytes_saved"] = s.bytes_saved;
  j["registered"] = s.registered;
  return j;
}

int Main(int argc, char** argv) {
  const int rows = IntFlag(argc, argv, "--rows", 8000);
  const int threads = ThreadsFlag(argc, argv);
  const int passes = std::max(1, IntFlag(argc, argv, "--passes", 2));
  const int budget_mb = IntFlag(argc, argv, "--budget-mb", 0);

  std::printf("bench_reuse: rows=%d threads=%d passes=%d budget_mb=%d\n",
              rows, threads, passes, budget_mb);
  auto subs = BuildSession(rows);
  STUBBY_CHECK_OK(subs.status());

  bool bit_identical = true;
  bool deterministic = true;
  SessionRun reference;  // with-store run at --threads (reported run)
  struct StoreSummary {
    uint64_t entries = 0, snapshots = 0, stored_bytes = 0, evictions = 0,
             total_hits = 0;
  } summary;
  ResultStore::Options store_opts;
  store_opts.byte_budget = static_cast<uint64_t>(budget_mb) * (1ull << 20);

  std::vector<std::string> pass_stats_at_one_thread;
  for (int t : std::vector<int>{1, threads}) {
    ThreadPool pool(t);
    // Recompute baseline: no store, one pass (outputs are pass-invariant).
    auto baseline = RunSession(nullptr, *subs, 1, &pool);
    STUBBY_CHECK_OK(baseline.status());
    // Shared-store session.
    ResultStore store(store_opts);
    auto with_store = RunSession(&store, *subs, passes, &pool);
    STUBBY_CHECK_OK(with_store.status());

    for (int p = 0; p < passes; ++p) {
      for (size_t i = 0; i < subs->size(); ++i) {
        if (!OutputsMatch(with_store->outputs[p][i],
                          baseline.value().outputs[0][i])) {
          std::fprintf(stderr,
                       "BIT-IDENTITY VIOLATION: %s pass %d threads %d\n",
                       (*subs)[i].name.c_str(), p + 1, t);
          bit_identical = false;
        }
      }
    }
    std::vector<std::string> pass_stats;
    for (const PassTotals& pt : with_store->passes) {
      pass_stats.push_back(pt.reuse.ToString());
    }
    if (t == 1) {
      pass_stats_at_one_thread = pass_stats;
    } else if (pass_stats != pass_stats_at_one_thread) {
      std::fprintf(stderr, "NONDETERMINISM: hit sequence differs at %d "
                           "threads\n", t);
      deterministic = false;
    }
    if (t == threads) {
      reference = std::move(*with_store);
      summary = StoreSummary{store.num_entries(), store.num_snapshots(),
                             store.stored_bytes(), store.evictions(),
                             store.total_hits()};
    }
    if (threads == 1) break;  // avoid running the same width twice
  }

  Json doc = Json::Object();
  doc["bench"] = "reuse";
  doc["rows"] = rows;
  doc["threads"] = threads;
  doc["num_passes"] = passes;
  doc["budget_mb"] = budget_mb;
  Json names = Json::Array();
  for (const Submission& s : *subs) names.Append(s.name);
  doc["workflows"] = std::move(names);
  Json pass_array = Json::Array();
  for (int p = 0; p < static_cast<int>(reference.passes.size()); ++p) {
    const PassTotals& pt = reference.passes[p];
    Json j = Json::Object();
    j["pass"] = p + 1;
    j["simulated_cost_sec"] = pt.simulated_cost;
    j["optimize_sec"] = pt.optimize_sec;
    j["execute_sec"] = pt.execute_sec;
    j["wall_sec"] = pt.optimize_sec + pt.execute_sec;
    j["reuse"] = ReuseJson(pt.reuse);
    pass_array.Append(std::move(j));
    std::printf(
        "pass %d: simulated %9.1fs  wall %6.2fs  [%s]\n", p + 1,
        pt.simulated_cost, pt.optimize_sec + pt.execute_sec,
        pt.reuse.ToString().c_str());
  }
  doc["passes"] = std::move(pass_array);
  Json store_json = Json::Object();
  store_json["entries"] = summary.entries;
  store_json["snapshots"] = summary.snapshots;
  store_json["stored_bytes"] = summary.stored_bytes;
  store_json["evictions"] = summary.evictions;
  store_json["total_hits"] = summary.total_hits;
  doc["store"] = std::move(store_json);
  doc["bit_identical"] = bit_identical;
  doc["deterministic_across_threads"] = deterministic;

  bool pass2_cheaper = true;
  if (reference.passes.size() >= 2) {
    const PassTotals& p1 = reference.passes.front();
    const PassTotals& p2 = reference.passes.back();
    pass2_cheaper = p2.simulated_cost < p1.simulated_cost;
    doc["pass2_cost_ratio"] = p1.simulated_cost > 0
                                  ? p2.simulated_cost / p1.simulated_cost
                                  : 1.0;
    std::printf("pass %zu / pass 1: simulated cost %.2f%%, wall %.2f%%\n",
                reference.passes.size(),
                100.0 * p2.simulated_cost / p1.simulated_cost,
                100.0 * (p2.optimize_sec + p2.execute_sec) /
                    (p1.optimize_sec + p1.execute_sec));
  }
  WriteBenchJson("BENCH_REUSE.json", doc);

  if (!bit_identical || !deterministic) return 1;
  if (!pass2_cheaper) {
    std::fprintf(stderr, "pass 2 was not cheaper than pass 1\n");
    return 1;
  }
  std::printf("OK: outputs bit-identical, hits deterministic\n");
  return 0;
}

}  // namespace
}  // namespace stubby::bench

int main(int argc, char** argv) { return stubby::bench::Main(argc, argv); }

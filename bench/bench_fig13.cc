// Figure 13: optimization overhead — Stubby's optimization time for each
// workflow, in absolute (real) seconds and as a percentage of the
// workflow's (simulated) Baseline running time. As in the paper, the
// optimization overhead is small relative to the achieved speedups and is
// amortized over repeated workflow runs.
//
// Flags: --rows N     physical sample rows (default 20000)
//        --threads N  worker threads (default: hardware); workflows run as
//                     concurrent tasks, results are identical at any count

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"

using namespace stubby;
using namespace stubby::bench;

int main(int argc, char** argv) {
  const int rows = IntFlag(argc, argv, "--rows", 20000);
  const int threads = ThreadsFlag(argc, argv);
  ThreadPool pool(threads);

  std::printf("Figure 13: optimization overhead\n");
  std::printf("%-6s %6s %12s %14s %10s %10s\n", "WF", "Jobs", "Opt time",
              "Workflow time", "Overhead", "Subplans");

  const std::vector<std::string> abbrs = AllWorkloadAbbrs();
  struct WorkloadRow {
    std::string line;
    Json row;
  };
  std::vector<WorkloadRow> results(abbrs.size());
  const auto t0 = std::chrono::steady_clock::now();
  RunTasks(&pool, abbrs.size(), [&](size_t i) {
    const std::string& abbr = abbrs[i];
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());
    auto baseline = PigBaseline(pw->workload.plan);
    STUBBY_CHECK_OK(baseline.status());
    auto t_base = Execute(*pw, *baseline);
    STUBBY_CHECK_OK(t_base.status());

    StubbyOptimizer optimizer;
    auto report = optimizer.Optimize(pw->workload.plan);
    STUBBY_CHECK_OK(report.status());

    const double overhead_pct =
        100.0 * report->optimization_time_sec / *t_base;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-6s %6zu %11.2fs %13.0fs %9.2f%% %10d\n", abbr.c_str(),
                  pw->workload.plan.num_jobs(), report->optimization_time_sec,
                  *t_base, overhead_pct, report->subplans_enumerated);
    results[i].line = line;

    Json row = Json::Object();
    row["workload"] = abbr;
    row["jobs"] = static_cast<uint64_t>(pw->workload.plan.num_jobs());
    row["optimization_time_sec"] = report->optimization_time_sec;
    row["baseline_sec"] = *t_base;
    row["overhead_pct"] = overhead_pct;
    row["subplans_enumerated"] =
        static_cast<uint64_t>(report->subplans_enumerated);
    row["stubby"] = ReportJson(*report);
    results[i].row = std::move(row);
  });
  const double total_wall = SecondsSince(t0);

  Json rows_json = Json::Array();
  for (WorkloadRow& r : results) {
    std::fputs(r.line.c_str(), stdout);
    rows_json.Append(std::move(r.row));
  }
  std::printf(
      "\nNote: optimization time is real wall-clock on this machine; the\n"
      "workflow time is the simulated cluster makespan, so the percentage\n"
      "is indicative (the paper reports both on the same 50-node cluster).\n");

  Json doc = Json::Object();
  doc["bench"] = "fig13";
  doc["rows"] = rows;
  doc["threads"] = static_cast<uint64_t>(threads);
  doc["total_wall_sec"] = total_wall;
  doc["workloads"] = std::move(rows_json);
  WriteBenchJson("BENCH_FIG13.json", doc);
  return 0;
}

// Figure 13: optimization overhead — Stubby's optimization time for each
// workflow, in absolute (real) seconds and as a percentage of the
// workflow's (simulated) Baseline running time. As in the paper, the
// optimization overhead is small relative to the achieved speedups and is
// amortized over repeated workflow runs.
//
// Flags: --rows N      physical sample rows (default 20000)
//        --threads N   worker threads (default: hardware); workflows run as
//                      concurrent tasks, results are identical at any count
//        --exhaustive  also run the whole-graph ablation: one optimization
//                      unit spanning the entire plan, exhaustively
//                      enumerated and RRS-costed on the ThreadPool at
//                      1/2/4/8 threads (identical best plan required),
//                      measuring how far exhaustive search scales before
//                      unit scoping is still needed

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>

#include "bench_common.h"
#include "optimizer/horizontal.h"
#include "optimizer/partition_fn.h"
#include "optimizer/search.h"
#include "optimizer/unit.h"
#include "optimizer/vertical.h"

using namespace stubby;
using namespace stubby::bench;

namespace {

/// One unit spanning the whole plan: producers are the root jobs (no input
/// produced by another job), consumers everything downstream — so the
/// in-unit exhaustive enumeration searches the full graph at once instead
/// of Stubby's scoped units.
OptimizationUnit WholeGraphUnit(const Plan& plan) {
  std::set<std::string> produced;
  for (const auto& [jid, job] : plan.jobs()) {
    for (const std::string& out : job.OutputDatasets()) produced.insert(out);
  }
  OptimizationUnit unit;
  for (const auto& [jid, job] : plan.jobs()) {
    bool root = true;
    for (const std::string& in : job.InputDatasets()) {
      if (produced.count(in)) {
        root = false;
        break;
      }
    }
    (root ? unit.producers : unit.consumers).push_back(jid);
  }
  return unit;
}

/// Whole-graph exhaustive enumeration at 1/2/4/8 threads. Candidates are
/// costed as parallel pool tasks (the unit search's own parallelism); the
/// chosen plan, its cost bits, and the candidate count must be identical
/// at every width. Only small plans are searched whole-graph — that
/// blowup is exactly the point of unit scoping (§4.1), and the guard is
/// recorded in the JSON.
bool RunExhaustiveAblation(int rows, Json* doc) {
  constexpr size_t kMaxJobs = 5;
  std::printf("\nExhaustive whole-graph ablation (<= %zu jobs)\n", kMaxJobs);
  std::printf("%-6s %6s %9s %10s %10s %10s %10s %8s\n", "WF", "Jobs",
              "Subplans", "t=1", "t=2", "t=4", "t=8", "RRS/exh");

  std::vector<std::shared_ptr<Transformation>> transforms = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
      std::make_shared<HorizontalPacking>(/*extended=*/true),
      std::make_shared<PartitionFunctionTransform>(),
  };
  UnitSearchOptions unit_options;
  unit_options.max_subplans = 512;
  unit_options.max_depth = 8;
  unit_options.seed = 17;

  bool identical = true;
  Json workloads = Json::Array();
  for (const std::string& abbr : AllWorkloadAbbrs()) {
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());
    const Plan& plan = pw->workload.plan;
    if (plan.num_jobs() > kMaxJobs) continue;
    const OptimizationUnit unit = WholeGraphUnit(plan);
    WhatIfEngine whatif(plan.cluster());

    std::string ref_sig;
    double ref_cost = 0.0;
    size_t ref_count = 0;
    double wall_1 = 0.0;
    char line[160];
    int written = std::snprintf(line, sizeof(line), "%-6s %6zu", abbr.c_str(),
                                plan.num_jobs());
    Json points = Json::Array();
    for (int t : {1, 2, 4, 8}) {
      ThreadPool thread_pool(t);
      UnitOptimizer optimizer(transforms, &whatif, unit_options,
                              &thread_pool);
      const auto t0 = std::chrono::steady_clock::now();
      auto subplans = optimizer.EnumerateSubplans(plan, unit);
      const double wall = SecondsSince(t0);
      STUBBY_CHECK_OK(subplans.status());

      size_t best = 0;
      for (size_t i = 1; i < subplans->size(); ++i) {
        if ((*subplans)[i].cost < (*subplans)[best].cost) best = i;
      }
      const std::string sig =
          subplans->empty() ? "" : PlanSignature((*subplans)[best].plan);
      const double cost = subplans->empty() ? 0.0 : (*subplans)[best].cost;
      if (t == 1) {
        ref_sig = sig;
        ref_cost = cost;
        ref_count = subplans->size();
        wall_1 = wall;
        written += std::snprintf(line + written,
                                 sizeof(line) - static_cast<size_t>(written),
                                 " %9zu", subplans->size());
      } else if (sig != ref_sig || cost != ref_cost ||
                 subplans->size() != ref_count) {
        identical = false;
      }
      written += std::snprintf(line + written,
                               sizeof(line) - static_cast<size_t>(written),
                               " %9.3fs", wall);

      Json point = Json::Object();
      point["threads"] = static_cast<uint64_t>(t);
      point["wall_sec"] = wall;
      point["speedup"] = wall > 0 ? wall_1 / wall : 1.0;
      points.Append(std::move(point));
    }
    // RRS-vs-exhaustive cost gap: what Stubby's scoped greedy+RRS search
    // settles for, over the whole-graph exhaustive optimum (>= 1 up to
    // model ties; bench_optgap and CI trend this ratio).
    StubbyOptimizer stubby;
    auto stubby_report = stubby.Optimize(plan);
    STUBBY_CHECK_OK(stubby_report.status());
    const double rrs_cost = stubby_report->estimated_cost;
    const double ratio = ref_cost > 0 ? rrs_cost / ref_cost : 1.0;
    std::printf("%s %7.4fx\n", line, ratio);

    Json row = Json::Object();
    row["workload"] = abbr;
    row["jobs"] = static_cast<uint64_t>(plan.num_jobs());
    row["subplans"] = static_cast<uint64_t>(ref_count);
    row["best_cost"] = ref_cost;
    row["rrs_cost"] = rrs_cost;
    row["ratio"] = ratio;
    row["scaling"] = std::move(points);
    workloads.Append(std::move(row));
  }
  std::printf("  best plan identical across thread counts: %s\n",
              identical ? "YES" : "NO");

  Json study = Json::Object();
  study["max_jobs"] = static_cast<uint64_t>(kMaxJobs);
  study["identical_results"] = identical;
  study["workloads"] = std::move(workloads);
  (*doc)["exhaustive"] = std::move(study);
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  const int rows = IntFlag(argc, argv, "--rows", 20000);
  const int threads = ThreadsFlag(argc, argv);
  bool exhaustive = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--exhaustive")) exhaustive = true;
  }
  ThreadPool pool(threads);

  std::printf("Figure 13: optimization overhead\n");
  std::printf("%-6s %6s %12s %14s %10s %10s\n", "WF", "Jobs", "Opt time",
              "Workflow time", "Overhead", "Subplans");

  const std::vector<std::string> abbrs = AllWorkloadAbbrs();
  struct WorkloadRow {
    std::string line;
    Json row;
  };
  std::vector<WorkloadRow> results(abbrs.size());
  const auto t0 = std::chrono::steady_clock::now();
  RunTasks(&pool, abbrs.size(), [&](size_t i) {
    const std::string& abbr = abbrs[i];
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());
    auto baseline = PigBaseline(pw->workload.plan);
    STUBBY_CHECK_OK(baseline.status());
    auto t_base = Execute(*pw, *baseline);
    STUBBY_CHECK_OK(t_base.status());

    StubbyOptimizer optimizer;
    auto report = optimizer.Optimize(pw->workload.plan);
    STUBBY_CHECK_OK(report.status());

    const double overhead_pct =
        100.0 * report->optimization_time_sec / *t_base;
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%-6s %6zu %11.2fs %13.0fs %9.2f%% %10d\n", abbr.c_str(),
                  pw->workload.plan.num_jobs(), report->optimization_time_sec,
                  *t_base, overhead_pct, report->subplans_enumerated);
    results[i].line = line;

    Json row = Json::Object();
    row["workload"] = abbr;
    row["jobs"] = static_cast<uint64_t>(pw->workload.plan.num_jobs());
    row["optimization_time_sec"] = report->optimization_time_sec;
    row["baseline_sec"] = *t_base;
    row["overhead_pct"] = overhead_pct;
    row["subplans_enumerated"] =
        static_cast<uint64_t>(report->subplans_enumerated);
    row["stubby"] = ReportJson(*report);
    results[i].row = std::move(row);
  });
  const double total_wall = SecondsSince(t0);

  Json rows_json = Json::Array();
  for (WorkloadRow& r : results) {
    std::fputs(r.line.c_str(), stdout);
    rows_json.Append(std::move(r.row));
  }
  std::printf(
      "\nNote: optimization time is real wall-clock on this machine; the\n"
      "workflow time is the simulated cluster makespan, so the percentage\n"
      "is indicative (the paper reports both on the same 50-node cluster).\n");

  Json doc = Json::Object();
  doc["bench"] = "fig13";
  doc["rows"] = rows;
  doc["threads"] = static_cast<uint64_t>(threads);
  doc["total_wall_sec"] = total_wall;
  doc["workloads"] = std::move(rows_json);

  bool exhaustive_ok = true;
  if (exhaustive) {
    exhaustive_ok = RunExhaustiveAblation(rows, &doc);
  }
  WriteBenchJson("BENCH_FIG13.json", doc);
  return exhaustive_ok ? 0 : 1;
}

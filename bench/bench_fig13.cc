// Figure 13: optimization overhead — Stubby's optimization time for each
// workflow, in absolute (real) seconds and as a percentage of the
// workflow's (simulated) Baseline running time. As in the paper, the
// optimization overhead is small relative to the achieved speedups and is
// amortized over repeated workflow runs.
//
// Flags: --rows N  physical sample rows (default 20000)

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"

using namespace stubby;
using namespace stubby::bench;

int main(int argc, char** argv) {
  int rows = 20000;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--rows") && i + 1 < argc) {
      rows = std::atoi(argv[++i]);
    }
  }

  std::printf("Figure 13: optimization overhead\n");
  std::printf("%-6s %6s %12s %14s %10s %10s\n", "WF", "Jobs", "Opt time",
              "Workflow time", "Overhead", "Subplans");

  for (const auto& abbr : AllWorkloadAbbrs()) {
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());
    auto baseline = PigBaseline(pw->workload.plan);
    STUBBY_CHECK_OK(baseline.status());
    auto t_base = Execute(*pw, *baseline);
    STUBBY_CHECK_OK(t_base.status());

    StubbyOptimizer optimizer;
    auto report = optimizer.Optimize(pw->workload.plan);
    STUBBY_CHECK_OK(report.status());

    std::printf("%-6s %6zu %11.2fs %13.0fs %9.2f%% %10d\n", abbr.c_str(),
                pw->workload.plan.num_jobs(), report->optimization_time_sec,
                *t_base, 100.0 * report->optimization_time_sec / *t_base,
                report->subplans_enumerated);
    std::fflush(stdout);
  }
  std::printf(
      "\nNote: optimization time is real wall-clock on this machine; the\n"
      "workflow time is the simulated cluster makespan, so the percentage\n"
      "is indicative (the paper reports both on the same 50-node cluster).\n");
  return 0;
}

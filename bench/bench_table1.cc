// Table 1: the eight MapReduce workflows and their dataset sizes, as built
// by this reproduction (logical sizes preserved; the in-memory sample is
// what actually executes).

#include <cstdio>

#include "common/strings.h"
#include "bench_common.h"

using namespace stubby;

int main() {
  std::printf("Table 1: MapReduce workflows and corresponding data sizes\n");
  std::printf("%-6s %-32s %6s %10s %14s\n", "Abbr.", "Workflow", "Jobs",
              "Size", "Sample rows");
  for (const auto& abbr : AllWorkloadAbbrs()) {
    WorkloadOptions options;
    auto w = MakeWorkload(abbr, options);
    STUBBY_CHECK_OK(w.status());
    uint64_t sample_rows = 0;
    for (const auto& [id, ds] : w->plan.datasets()) {
      if (!ds.is_base_input) continue;
      auto stored = w->dfs.Get(id);
      if (stored.ok()) sample_rows += (*stored)->num_rows();
    }
    std::printf("%-6s %-32s %6zu %10s %14llu\n", w->abbr.c_str(),
                w->name.c_str(), w->plan.num_jobs(),
                HumanBytes(w->dataset_logical_bytes).c_str(),
                (unsigned long long)sample_rows);
  }
  return 0;
}

// Table 1: the eight MapReduce workflows and their dataset sizes, as built
// by this reproduction (logical sizes preserved; the in-memory sample is
// what actually executes).
//
// Flags: --threads N  worker threads (default: hardware); workflows run as
//                     concurrent tasks, results are identical at any count

#include <cstdio>

#include "common/strings.h"
#include "bench_common.h"

using namespace stubby;

int main(int argc, char** argv) {
  using namespace stubby::bench;
  const int threads = ThreadsFlag(argc, argv);
  ThreadPool pool(threads);

  std::printf("Table 1: MapReduce workflows and corresponding data sizes\n");
  std::printf("%-6s %-32s %6s %10s %14s %10s %10s\n", "Abbr.", "Workflow",
              "Jobs", "Size", "Sample rows", "Opt(off)", "Opt(on)");

  const std::vector<std::string> abbrs = AllWorkloadAbbrs();
  struct WorkloadRow {
    std::string line;
    Json row;
  };
  std::vector<WorkloadRow> results(abbrs.size());
  const auto t0 = std::chrono::steady_clock::now();
  RunTasks(&pool, abbrs.size(), [&](size_t i) {
    const std::string& abbr = abbrs[i];
    WorkloadOptions options;
    auto w = MakeWorkload(abbr, options);
    STUBBY_CHECK_OK(w.status());
    uint64_t sample_rows = 0;
    for (const auto& [id, ds] : w->plan.datasets()) {
      if (!ds.is_base_input) continue;
      auto stored = w->dfs.Get(id);
      if (stored.ok()) sample_rows += (*stored)->num_rows();
    }

    // End-to-end optimizer wall time with the costing cache off and on
    // (the memo is the only difference; outputs are bit-identical).
    auto pw = Prepare(abbr, 6000);
    STUBBY_CHECK_OK(pw.status());
    auto off = RunStubbyReport(*pw, true, true, 17, /*enable_cache=*/false);
    STUBBY_CHECK_OK(off.status());
    auto on = RunStubbyReport(*pw, true, true, 17, /*enable_cache=*/true);
    STUBBY_CHECK_OK(on.status());

    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-6s %-32s %6zu %10s %14llu %9.3fs %9.3fs\n",
                  w->abbr.c_str(), w->name.c_str(), w->plan.num_jobs(),
                  HumanBytes(w->dataset_logical_bytes).c_str(),
                  (unsigned long long)sample_rows, off->optimization_time_sec,
                  on->optimization_time_sec);
    results[i].line = line;

    Json row = Json::Object();
    row["workload"] = abbr;
    row["name"] = w->name;
    row["jobs"] = static_cast<uint64_t>(w->plan.num_jobs());
    row["logical_bytes"] = w->dataset_logical_bytes;
    row["sample_rows"] = sample_rows;
    row["optimizer_wall_sec_cache_off"] = off->optimization_time_sec;
    row["optimizer_wall_sec_cache_on"] = on->optimization_time_sec;
    row["cache_off"] = ReportJson(*off);
    row["cache_on"] = ReportJson(*on);
    results[i].row = std::move(row);
  });
  const double total_wall = SecondsSince(t0);

  Json rows_json = Json::Array();
  for (WorkloadRow& r : results) {
    std::fputs(r.line.c_str(), stdout);
    rows_json.Append(std::move(r.row));
  }
  std::printf("total: %.3fs at %d threads\n", total_wall, threads);

  Json doc = Json::Object();
  doc["bench"] = "table1";
  doc["threads"] = static_cast<uint64_t>(threads);
  doc["total_wall_sec"] = total_wall;
  doc["workloads"] = std::move(rows_json);
  WriteBenchJson("BENCH_TABLE1.json", doc);
  return 0;
}

// Figure 14: actual vs estimated normalized cost for all combinations of
// valid transformations in the first optimization unit of the Information
// Retrieval workflow. Each subplan is given its RRS-chosen configuration,
// costed by the what-if engine (estimated) and executed on the simulated
// cluster (actual). As in the paper, the estimates are good enough to
// identify the best and worst subplans even when absolute values deviate.
//
// Flags: --rows N     sample rows (default 60000; the vectorized executor
//                     paths make the larger default affordable)
//        --noise F    profiling noise factor (default 0.05)
//        --threads N  worker threads (default: hardware); subplans run as
//                     concurrent tasks, results are identical at any count

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "bench_common.h"
#include "cost/phase_model.h"
#include "cost/whatif.h"
#include "exec/workflow_runner.h"
#include "optimizer/partition_fn.h"
#include "optimizer/search.h"
#include "optimizer/vertical.h"
#include "profiler/profiler.h"
#include "workloads/registry.h"

using namespace stubby;

namespace {

double RankCorrelation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  std::vector<double> ra = ranks(a), rb = ranks(b);
  double n = static_cast<double>(a.size());
  double d2 = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stubby::bench;
  const int rows = IntFlag(argc, argv, "--rows", 60000);
  const int threads = ThreadsFlag(argc, argv);
  double noise = 0.05;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--noise") && i + 1 < argc) {
      noise = std::atof(argv[i + 1]);
    }
  }
  ThreadPool pool(threads);

  WorkloadOptions options;
  options.sample_rows = rows;
  auto workload = MakeWorkload("IR", options);
  STUBBY_CHECK_OK(workload.status());

  ProfilerOptions popts;
  popts.noise = noise;
  Profiler profiler(options.cluster, popts);
  Dfs profiling_dfs = workload->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&workload->plan, &profiling_dfs));

  WhatIfEngine whatif(options.cluster);
  std::vector<std::shared_ptr<Transformation>> group = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
      std::make_shared<PartitionFunctionTransform>(),
  };
  UnitSearchOptions uopts;
  UnitOptimizer unit_optimizer(group, &whatif, uopts, &pool);
  auto unit = NextUnit(workload->plan, {});
  if (!unit) {
    std::fprintf(stderr, "no optimization unit\n");
    return 1;
  }
  auto t0 = std::chrono::steady_clock::now();
  auto subplans = unit_optimizer.EnumerateSubplans(workload->plan, *unit);
  STUBBY_CHECK_OK(subplans.status());

  // Cost of a subplan = the summed standalone running time of the unit's
  // jobs (under their current ids), as the paper's per-unit drill-down
  // does; jobs outside the unit are identical across subplans.
  PhaseTimeModel model(options.cluster);
  auto unit_cost = [&](const Plan& plan, const WorkflowDataflow& flow,
                       const std::map<std::string, std::string>& renames) {
    double total = 0.0;
    std::set<std::string> ids;
    for (const auto& j : unit->AllJobs()) {
      auto it = renames.find(j);
      ids.insert(it == renames.end() ? j : it->second);
    }
    for (const auto& df : flow.jobs) {
      if (!ids.count(df.job_id)) continue;
      auto job = plan.GetJob(df.job_id);
      if (job.ok()) total += model.StandaloneJobTime(df, (*job)->config);
    }
    return total;
  };

  // Each subplan executes against its own Dfs copy and the engine is
  // cache-less here, so subplans are independent tasks.
  WorkflowRunner runner(options.cluster);
  const size_t n = subplans->size();
  std::vector<double> estimated(n), actual(n);
  std::vector<std::string> labels(n);
  RunTasks(&pool, n, [&](size_t i) {
    const SubplanCandidate& sp = (*subplans)[i];
    Dfs dfs = workload->dfs;
    auto flow = runner.Run(sp.plan, &dfs);
    STUBBY_CHECK_OK(flow.status());
    auto predicted = whatif.PredictDataflow(sp.plan);
    STUBBY_CHECK_OK(predicted.status());
    estimated[i] = unit_cost(sp.plan, *predicted, sp.renames);
    actual[i] = unit_cost(sp.plan, *flow, sp.renames);
    std::string label;
    for (const auto& a : sp.applied) {
      if (!label.empty()) label += " + ";
      label += a.substr(0, a.find(" ("));
    }
    labels[i] = label.empty() ? "(original)" : label;
  });
  const double total_wall = SecondsSince(t0);
  double est_max = *std::max_element(estimated.begin(), estimated.end());
  double act_max = *std::max_element(actual.begin(), actual.end());

  std::printf(
      "Figure 14: actual vs estimated normalized cost, first optimization "
      "unit of IR (%zu subplans, profiling noise %.2f)\n\n",
      estimated.size(), noise);
  std::printf("%-58s %10s %10s\n", "subplan", "estimated", "actual");
  Json subplans_json = Json::Array();
  for (size_t i = 0; i < estimated.size(); ++i) {
    std::printf("%-58.58s %10.3f %10.3f\n", labels[i].c_str(),
                estimated[i] / est_max, actual[i] / act_max);
    Json row = Json::Object();
    row["subplan"] = labels[i];
    row["estimated_sec"] = estimated[i];
    row["actual_sec"] = actual[i];
    row["estimated_norm"] = estimated[i] / est_max;
    row["actual_norm"] = actual[i] / act_max;
    subplans_json.Append(std::move(row));
  }
  size_t best_est = std::min_element(estimated.begin(), estimated.end()) -
                    estimated.begin();
  size_t best_act =
      std::min_element(actual.begin(), actual.end()) - actual.begin();
  size_t worst_est = std::max_element(estimated.begin(), estimated.end()) -
                     estimated.begin();
  size_t worst_act =
      std::max_element(actual.begin(), actual.end()) - actual.begin();
  const double rank_corr = RankCorrelation(estimated, actual);
  std::printf("\nrank correlation (Spearman): %.2f\n", rank_corr);
  // "Identified" in the paper's sense: the chosen subplan actually performs
  // within 2% of the true best/worst (ties between near-identical subplans
  // do not count as misses).
  bool best_ok = actual[best_est] <= actual[best_act] * 1.02;
  bool worst_ok = actual[worst_est] >= actual[worst_act] * 0.98;
  std::printf("best subplan identified : %s\n", best_ok ? "YES" : "no");
  std::printf("worst subplan identified: %s\n", worst_ok ? "YES" : "no");

  Json doc = Json::Object();
  doc["bench"] = "fig14";
  doc["rows"] = rows;
  doc["noise"] = noise;
  doc["threads"] = static_cast<uint64_t>(threads);
  doc["total_wall_sec"] = total_wall;
  doc["rank_correlation"] = rank_corr;
  doc["best_identified"] = best_ok;
  doc["worst_identified"] = worst_ok;
  doc["subplans"] = std::move(subplans_json);
  WriteBenchJson("BENCH_FIG14.json", doc);
  return 0;
}

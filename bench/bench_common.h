// Shared machinery for the figure/table benches: builds a workload,
// profiles it, produces each system's plan (Baseline, Stubby, Vertical-only,
// Horizontal-only, Starfish, YSmart, MRShare), executes plans on the
// simulated cluster, and reports speedups — the evaluation loop of
// Section 7.

#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "baselines/mrshare.h"
#include "baselines/pig_baseline.h"
#include "baselines/starfish.h"
#include "baselines/ysmart.h"
#include "common/json.h"
#include "common/result.h"
#include "common/threading.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "workloads/registry.h"

namespace stubby::bench {

/// Parses an integer `--name N` command-line flag.
inline int IntFlag(int argc, char** argv, const char* name, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], name)) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

/// Parses a string `--name VALUE` command-line flag.
inline std::string StringFlag(int argc, char** argv, const char* name,
                              const std::string& fallback = "") {
  for (int i = 1; i + 1 < argc; ++i) {
    if (!std::strcmp(argv[i], name)) return argv[i + 1];
  }
  return fallback;
}

/// `--threads N` (default: all hardware threads). Any value produces
/// bit-identical bench results; it only moves wall time.
inline int ThreadsFlag(int argc, char** argv) {
  return std::max(1, IntFlag(argc, argv, "--threads",
                             ThreadPool::HardwareThreads()));
}

/// Wall-clock seconds since `t0`.
inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One workload, profiled and ready for plan comparisons.
struct PreparedWorkload {
  Workload workload;  ///< plan carries profile annotations
  WorkloadOptions options;
};

inline Result<PreparedWorkload> Prepare(const std::string& abbr,
                                        int sample_rows, uint64_t seed = 7) {
  WorkloadOptions options;
  options.sample_rows = sample_rows;
  options.seed = seed;
  STUBBY_ASSIGN_OR_RETURN(Workload w, MakeWorkload(abbr, options));
  Profiler profiler(options.cluster);
  Dfs profiling_dfs = w.dfs;
  STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&w.plan, &profiling_dfs));
  return PreparedWorkload{std::move(w), options};
}

/// Simulated wall-clock of a plan, run on a fresh copy of the base data.
/// The pool, when given, parallelizes the executor's map/reduce tasks; the
/// simulated makespan is bit-identical either way.
inline Result<double> Execute(const PreparedWorkload& pw, const Plan& plan,
                              ThreadPool* pool = nullptr) {
  WorkflowRunner runner(pw.options.cluster, pool,
                        ExecOptions{true, ColumnarStorageFromEnv()});
  Dfs dfs = pw.workload.dfs;
  STUBBY_ASSIGN_OR_RETURN(WorkflowDataflow flow, runner.Run(plan, &dfs));
  return flow.makespan_sec;
}

/// Stubby with a transformation-group selection (Figure 11's Stubby /
/// Vertical / Horizontal configurations), returning the full report so
/// benches can emit the costing instrumentation.
inline Result<OptimizeReport> RunStubbyReport(const PreparedWorkload& pw,
                                              bool vertical, bool horizontal,
                                              uint64_t seed = 17,
                                              bool enable_cache = true,
                                              ThreadPool* pool = nullptr) {
  StubbyOptions opts;
  opts.columnar_storage = ColumnarStorageFromEnv();
  opts.enable_intra_vertical = vertical;
  opts.enable_inter_vertical = vertical;
  opts.enable_horizontal = horizontal;
  // The partition-function and configuration transformations belong to both
  // groups (Section 4).
  opts.enable_partition_function = vertical || horizontal;
  opts.enable_configuration = true;
  opts.enable_cost_cache = enable_cache;
  opts.unit.seed = seed;
  opts.pool = pool;
  StubbyOptimizer optimizer(opts);
  return optimizer.Optimize(pw.workload.plan);
}

inline Result<Plan> RunStubby(const PreparedWorkload& pw, bool vertical,
                              bool horizontal, uint64_t seed = 17) {
  STUBBY_ASSIGN_OR_RETURN(OptimizeReport report,
                          RunStubbyReport(pw, vertical, horizontal, seed));
  return std::move(report.plan);
}

/// Costing-layer counters as a JSON object (for the BENCH_*.json files).
inline Json InstrumentationJson(const CostInstrumentation& c) {
  Json j = Json::Object();
  j["whatif_invocations"] = c.whatif_invocations;
  j["plan_cache_hits"] = c.plan_cache_hits;
  j["plan_cache_misses"] = c.plan_cache_misses;
  j["full_predictions"] = c.full_predictions;
  j["incremental_predictions"] = c.incremental_predictions;
  j["job_predictions"] = c.job_predictions;
  j["job_cache_hits"] = c.job_cache_hits;
  j["rrs_evaluations"] = c.rrs_evaluations;
  return j;
}

/// Optimizer-run summary (cost, wall time, counters, per-phase slices).
inline Json ReportJson(const OptimizeReport& r) {
  Json j = Json::Object();
  j["estimated_cost"] = r.estimated_cost;
  j["fallback"] = r.fallback;
  j["optimization_time_sec"] = r.optimization_time_sec;
  j["units_processed"] = r.units_processed;
  j["subplans_enumerated"] = r.subplans_enumerated;
  j["costing"] = InstrumentationJson(r.costing);
  Json phases = Json::Array();
  for (const PhaseReport& p : r.phases) {
    Json pj = Json::Object();
    pj["name"] = p.name;
    pj["wall_sec"] = p.wall_sec;
    pj["units_processed"] = p.units_processed;
    pj["subplans_enumerated"] = p.subplans_enumerated;
    phases.Append(std::move(pj));
  }
  j["phases"] = std::move(phases);
  return j;
}

/// Writes a bench result document next to the working directory.
inline void WriteBenchJson(const std::string& path, const Json& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not write %s\n", path.c_str());
    return;
  }
  std::string text = doc.Dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

/// Prints one speedup row: `label  v1 v2 ...`.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("%-22s", label.c_str());
  for (double v : values) std::printf(" %8.2f", v);
  std::printf("\n");
}

}  // namespace stubby::bench

// Shared machinery for the figure/table benches: builds a workload,
// profiles it, produces each system's plan (Baseline, Stubby, Vertical-only,
// Horizontal-only, Starfish, YSmart, MRShare), executes plans on the
// simulated cluster, and reports speedups — the evaluation loop of
// Section 7.

#pragma once

#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "baselines/mrshare.h"
#include "baselines/pig_baseline.h"
#include "baselines/starfish.h"
#include "baselines/ysmart.h"
#include "common/result.h"
#include "exec/workflow_runner.h"
#include "optimizer/stubby.h"
#include "profiler/profiler.h"
#include "workloads/registry.h"

namespace stubby::bench {

/// One workload, profiled and ready for plan comparisons.
struct PreparedWorkload {
  Workload workload;  ///< plan carries profile annotations
  WorkloadOptions options;
};

inline Result<PreparedWorkload> Prepare(const std::string& abbr,
                                        int sample_rows, uint64_t seed = 7) {
  WorkloadOptions options;
  options.sample_rows = sample_rows;
  options.seed = seed;
  STUBBY_ASSIGN_OR_RETURN(Workload w, MakeWorkload(abbr, options));
  Profiler profiler(options.cluster);
  Dfs profiling_dfs = w.dfs;
  STUBBY_RETURN_NOT_OK(profiler.ProfilePlan(&w.plan, &profiling_dfs));
  return PreparedWorkload{std::move(w), options};
}

/// Simulated wall-clock of a plan, run on a fresh copy of the base data.
inline Result<double> Execute(const PreparedWorkload& pw, const Plan& plan) {
  WorkflowRunner runner(pw.options.cluster);
  Dfs dfs = pw.workload.dfs;
  STUBBY_ASSIGN_OR_RETURN(WorkflowDataflow flow, runner.Run(plan, &dfs));
  return flow.makespan_sec;
}

/// Stubby with a transformation-group selection (Figure 11's Stubby /
/// Vertical / Horizontal configurations).
inline Result<Plan> RunStubby(const PreparedWorkload& pw, bool vertical,
                              bool horizontal, uint64_t seed = 17) {
  StubbyOptions opts;
  opts.enable_intra_vertical = vertical;
  opts.enable_inter_vertical = vertical;
  opts.enable_horizontal = horizontal;
  // The partition-function and configuration transformations belong to both
  // groups (Section 4).
  opts.enable_partition_function = vertical || horizontal;
  opts.enable_configuration = true;
  opts.unit.seed = seed;
  StubbyOptimizer optimizer(opts);
  STUBBY_ASSIGN_OR_RETURN(OptimizeReport report,
                          optimizer.Optimize(pw.workload.plan));
  return std::move(report.plan);
}

/// Prints one speedup row: `label  v1 v2 ...`.
inline void PrintRow(const std::string& label,
                     const std::vector<double>& values) {
  std::printf("%-22s", label.c_str());
  for (double v : values) std::printf(" %8.2f", v);
  std::printf("\n");
}

}  // namespace stubby::bench

// Figure 12: speedup over the Baseline achieved by Stubby and the
// state-of-the-art comparators — Starfish (cost-based configuration only),
// YSmart (rule-based packing to minimize job count + rule-based
// configuration), and MRShare (cost-based horizontal packing + rule-based
// configuration) — for all eight workflows.
//
// Flags: --rows N     physical sample rows (default 20000)
//        --threads N  worker threads (default: hardware); workflows run as
//                     concurrent tasks, results are identical at any count

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"

using namespace stubby;
using namespace stubby::bench;

int main(int argc, char** argv) {
  const int rows = IntFlag(argc, argv, "--rows", 20000);
  const int threads = ThreadsFlag(argc, argv);
  ThreadPool pool(threads);

  std::printf("Figure 12: speedup over Baseline\n");
  std::printf("%-6s %10s | %8s %8s %8s %8s\n", "WF", "Baseline", "Stubby",
              "Starfish", "YSmart", "MRShare");

  const std::vector<std::string> abbrs = AllWorkloadAbbrs();
  struct WorkloadRow {
    std::string line;
    Json row;
    CostInstrumentation costing;
  };
  std::vector<WorkloadRow> results(abbrs.size());
  const auto t0 = std::chrono::steady_clock::now();
  RunTasks(&pool, abbrs.size(), [&](size_t i) {
    const std::string& abbr = abbrs[i];
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());

    auto baseline = PigBaseline(pw->workload.plan);
    STUBBY_CHECK_OK(baseline.status());
    auto t_base = Execute(*pw, *baseline);
    STUBBY_CHECK_OK(t_base.status());

    auto speedup_of = [&](Result<Plan> plan) -> double {
      STUBBY_CHECK_OK(plan.status());
      auto t = Execute(*pw, *plan);
      STUBBY_CHECK_OK(t.status());
      return *t_base / *t;
    };

    auto stubby_report = RunStubbyReport(*pw, true, true);
    STUBBY_CHECK_OK(stubby_report.status());
    double s_stubby = speedup_of(Plan(stubby_report->plan));
    double s_starfish = speedup_of(StarfishOptimize(pw->workload.plan));
    double s_ysmart = speedup_of(YSmartOptimize(pw->workload.plan));
    double s_mrshare = speedup_of(MRShareOptimize(pw->workload.plan));
    char line[128];
    std::snprintf(line, sizeof(line),
                  "%-6s %9.0fs | %8.2f %8.2f %8.2f %8.2f\n", abbr.c_str(),
                  *t_base, s_stubby, s_starfish, s_ysmart, s_mrshare);
    results[i].line = line;
    results[i].costing = stubby_report->costing;

    Json row = Json::Object();
    row["workload"] = abbr;
    row["baseline_sec"] = *t_base;
    row["stubby_speedup"] = s_stubby;
    row["starfish_speedup"] = s_starfish;
    row["ysmart_speedup"] = s_ysmart;
    row["mrshare_speedup"] = s_mrshare;
    row["stubby"] = ReportJson(*stubby_report);
    results[i].row = std::move(row);
  });
  const double total_wall = SecondsSince(t0);

  Json rows_json = Json::Array();
  CostInstrumentation total_costing;
  for (WorkloadRow& r : results) {
    std::fputs(r.line.c_str(), stdout);
    total_costing.Add(r.costing);
    rows_json.Append(std::move(r.row));
  }
  std::printf("total: %.3fs at %d threads\n", total_wall, threads);

  Json doc = Json::Object();
  doc["bench"] = "fig12";
  doc["rows"] = rows;
  doc["threads"] = static_cast<uint64_t>(threads);
  doc["total_wall_sec"] = total_wall;
  doc["workloads"] = std::move(rows_json);
  doc["stubby_costing_total"] = InstrumentationJson(total_costing);
  WriteBenchJson("BENCH_FIG12.json", doc);
  return 0;
}

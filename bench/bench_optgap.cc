// Optimality-gap study + adaptive mis-profile recovery, emitting
// BENCH_OPTGAP.json.
//
// Part A — how far does Stubby's scoped greedy + RRS search land from the
// whole-graph exhaustive optimum? For every Section-7 workload small enough
// to search whole-graph (and a sweep of random differential workflows), the
// plan is costed both ways and the RRS/exhaustive cost ratio recorded
// (grounding: "Measuring the Optimality of Hadoop Optimization").
//
// Part B — when the profile is wrong, how much of the damage does adaptive
// suffix re-optimization undo? Per workload: the clean-profile plan's
// simulated makespan; the makespan of the plan optimized from
// deterministically perturbed profiles (profiler/perturb.h — the data
// itself is untouched, so execution is truthful); and the makespan of the
// same mis-optimized plan run under the adaptive runner, which detects the
// observed-vs-predicted error mid-run and re-optimizes the remaining
// suffix against reality. recovery = (mis - adaptive) / (mis - clean);
// a workload whose mis-profiled plan shows no regression counts as
// recovered. Exit code gates "recovery >= --min-recovery on >= --min-pass
// of the 8 workloads" for CI.
//
// Flags: --rows N          physical sample rows (default 4000)
//        --threads N       worker threads (results identical at any count)
//        --seeds N         random workflows for the gap sweep (default 16;
//                          generator seeds past the job-count guard are
//                          skipped and counted)
//        --magnitude M     perturbation strength (default 8)
//        --min-recovery R  per-workload recovery bar (default 0.5)
//        --min-pass K      workloads that must clear the bar (default 6)

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "exec/adaptive_runner.h"
#include "optimizer/horizontal.h"
#include "optimizer/partition_fn.h"
#include "optimizer/search.h"
#include "optimizer/unit.h"
#include "optimizer/vertical.h"
#include "profiler/perturb.h"
#include "workloads/random.h"

using namespace stubby;
using namespace stubby::bench;

namespace {

/// Whole-graph plans stay searchable up to this many jobs (the same guard
/// as bench_fig13's ablation — the blowup past it is why units exist).
constexpr size_t kMaxExhaustiveJobs = 5;

/// One unit spanning the whole plan, as in bench_fig13's ablation.
OptimizationUnit WholeGraphUnit(const Plan& plan) {
  std::set<std::string> produced;
  for (const auto& [jid, job] : plan.jobs()) {
    for (const std::string& out : job.OutputDatasets()) produced.insert(out);
  }
  OptimizationUnit unit;
  for (const auto& [jid, job] : plan.jobs()) {
    bool root = true;
    for (const std::string& in : job.InputDatasets()) {
      if (produced.count(in)) {
        root = false;
        break;
      }
    }
    (root ? unit.producers : unit.consumers).push_back(jid);
  }
  return unit;
}

struct ExhaustiveBest {
  double cost = 0.0;
  size_t subplans = 0;
};

/// Exhaustively enumerates the whole graph as one unit and returns the
/// cheapest candidate's what-if cost.
Result<ExhaustiveBest> ExhaustiveWholeGraph(const Plan& plan,
                                            ThreadPool* pool) {
  std::vector<std::shared_ptr<Transformation>> transforms = {
      std::make_shared<IntraJobVerticalPacking>(),
      std::make_shared<InterJobVerticalPacking>(),
      std::make_shared<HorizontalPacking>(/*extended=*/true),
      std::make_shared<PartitionFunctionTransform>(),
  };
  UnitSearchOptions unit_options;
  unit_options.max_subplans = 512;
  unit_options.max_depth = 8;
  unit_options.seed = 17;
  WhatIfEngine whatif(plan.cluster());
  UnitOptimizer optimizer(transforms, &whatif, unit_options, pool);
  STUBBY_ASSIGN_OR_RETURN(auto subplans,
                          optimizer.EnumerateSubplans(plan, WholeGraphUnit(plan)));
  ExhaustiveBest best;
  best.subplans = subplans.size();
  for (size_t i = 0; i < subplans.size(); ++i) {
    if (i == 0 || subplans[i].cost < best.cost) best.cost = subplans[i].cost;
  }
  return best;
}

/// The RRS-vs-exhaustive cost ratio of one (profiled) plan, or nothing when
/// the plan is too large to search whole-graph.
struct GapRow {
  std::string label;
  size_t jobs = 0;
  double rrs_cost = 0.0;
  double exhaustive_cost = 0.0;
  size_t subplans = 0;
  double ratio = 0.0;
};

Result<GapRow> MeasureGap(const std::string& label, const Plan& plan,
                          ThreadPool* pool) {
  GapRow row;
  row.label = label;
  row.jobs = plan.num_jobs();
  StubbyOptions opts;
  opts.pool = pool;
  STUBBY_ASSIGN_OR_RETURN(OptimizeReport report,
                          StubbyOptimizer(opts).Optimize(plan));
  row.rrs_cost = report.estimated_cost;
  STUBBY_ASSIGN_OR_RETURN(ExhaustiveBest best,
                          ExhaustiveWholeGraph(plan, pool));
  row.exhaustive_cost = best.cost;
  row.subplans = best.subplans;
  row.ratio = best.cost > 0 ? row.rrs_cost / best.cost : 1.0;
  return row;
}

Json GapJson(const GapRow& g) {
  Json j = Json::Object();
  j["label"] = g.label;
  j["jobs"] = static_cast<uint64_t>(g.jobs);
  j["rrs_cost"] = g.rrs_cost;
  j["exhaustive_cost"] = g.exhaustive_cost;
  j["subplans"] = static_cast<uint64_t>(g.subplans);
  j["ratio"] = g.ratio;
  return j;
}

}  // namespace

int main(int argc, char** argv) {
  const int rows = IntFlag(argc, argv, "--rows", 4000);
  const int threads = ThreadsFlag(argc, argv);
  const int seeds = IntFlag(argc, argv, "--seeds", 16);
  const double magnitude =
      static_cast<double>(IntFlag(argc, argv, "--magnitude", 8));
  const double min_recovery =
      static_cast<double>(IntFlag(argc, argv, "--min-recovery-pct", 50)) /
      100.0;
  const int min_pass = IntFlag(argc, argv, "--min-pass", 6);
  ThreadPool pool(threads);

  Json doc = Json::Object();
  doc["bench"] = "optgap";
  doc["rows"] = rows;
  doc["threads"] = static_cast<uint64_t>(threads);
  doc["magnitude"] = magnitude;

  // --- Part A: RRS vs whole-graph exhaustive -------------------------------
  std::printf("Optimality gap: RRS vs whole-graph exhaustive\n");
  std::printf("%-10s %6s %9s %12s %12s %8s\n", "WF", "Jobs", "Subplans",
              "RRS", "Exhaustive", "Ratio");
  Json gap_workloads = Json::Array();
  Json gap_skipped = Json::Array();
  double worst_ratio = 0.0;
  for (const std::string& abbr : AllWorkloadAbbrs()) {
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());
    if (pw->workload.plan.num_jobs() > kMaxExhaustiveJobs) {
      // Too large to enumerate whole-graph — recorded, never silently
      // dropped.
      std::printf("%-10s %6zu  (skipped: > %zu jobs)\n", abbr.c_str(),
                  pw->workload.plan.num_jobs(), kMaxExhaustiveJobs);
      gap_skipped.Append(Json(abbr));
      continue;
    }
    auto g = MeasureGap(abbr, pw->workload.plan, &pool);
    STUBBY_CHECK_OK(g.status());
    std::printf("%-10s %6zu %9zu %12.0f %12.0f %7.4fx\n", abbr.c_str(),
                g->jobs, g->subplans, g->rrs_cost, g->exhaustive_cost,
                g->ratio);
    worst_ratio = std::max(worst_ratio, g->ratio);
    gap_workloads.Append(GapJson(*g));
  }

  Json gap_random = Json::Array();
  int random_skipped = 0;
  for (int s = 0; s < seeds; ++s) {
    auto f = MakeRandomWorkflow(static_cast<uint64_t>(s));
    STUBBY_CHECK_OK(f.status());
    if (f->plan().num_jobs() > kMaxExhaustiveJobs) {
      ++random_skipped;
      continue;
    }
    Profiler profiler(ClusterSpec{});
    Dfs profile_dfs = f->dfs();
    STUBBY_CHECK_OK(profiler.ProfilePlan(&f->plan(), &profile_dfs));
    auto g = MeasureGap("seed" + std::to_string(s), f->plan(), &pool);
    STUBBY_CHECK_OK(g.status());
    std::printf("%-10s %6zu %9zu %12.0f %12.0f %7.4fx\n", g->label.c_str(),
                g->jobs, g->subplans, g->rrs_cost, g->exhaustive_cost,
                g->ratio);
    worst_ratio = std::max(worst_ratio, g->ratio);
    gap_random.Append(GapJson(*g));
  }
  if (random_skipped > 0) {
    std::printf("random workflows skipped (> %zu jobs): %d of %d\n",
                kMaxExhaustiveJobs, random_skipped, seeds);
  }
  std::printf("worst RRS/exhaustive ratio: %.4fx\n", worst_ratio);

  Json gap = Json::Object();
  gap["max_jobs"] = static_cast<uint64_t>(kMaxExhaustiveJobs);
  gap["workloads"] = std::move(gap_workloads);
  gap["workloads_skipped"] = std::move(gap_skipped);
  gap["random"] = std::move(gap_random);
  gap["random_skipped"] = static_cast<uint64_t>(random_skipped);
  gap["worst_ratio"] = worst_ratio;
  doc["gap"] = std::move(gap);

  // --- Part B: adaptive recovery under injected mis-profiles ---------------
  std::printf("\nAdaptive recovery of injected mis-profile regression "
              "(magnitude %.0f)\n", magnitude);
  std::printf("%-10s %10s %12s %10s %7s %9s %9s\n", "WF", "Clean",
              "Misprofiled", "Adaptive", "Reopts", "Regress", "Recovery");
  Json recovery_rows = Json::Array();
  int recovered_count = 0;
  const std::vector<std::string> abbrs = AllWorkloadAbbrs();
  for (const std::string& abbr : abbrs) {
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());
    const ExecOptions exec{true, ColumnarStorageFromEnv()};

    // Clean: optimize and execute with accurate profiles.
    StubbyOptions opts;
    opts.pool = &pool;
    auto clean_report = StubbyOptimizer(opts).Optimize(pw->workload.plan);
    STUBBY_CHECK_OK(clean_report.status());
    auto clean_sec = Execute(*pw, clean_report->plan, &pool);
    STUBBY_CHECK_OK(clean_sec.status());

    // Mis-profiled: skew every profile-derived statistic, optimize from
    // the lie, execute the resulting plan as-is.
    Plan perturbed = pw->workload.plan;
    PerturbOptions perturb;
    perturb.seed = 5;
    perturb.magnitude = magnitude;
    STUBBY_CHECK_OK(PerturbProfiles(&perturbed, perturb));
    auto mis_report = StubbyOptimizer(opts).Optimize(perturbed);
    STUBBY_CHECK_OK(mis_report.status());
    auto mis_sec = Execute(*pw, mis_report->plan, &pool);
    STUBBY_CHECK_OK(mis_sec.status());

    // Adaptive: the same mis-optimized plan, but the runner checks
    // observed dataflow against the (wrong) predictions and re-optimizes
    // the unexecuted suffix when they diverge.
    StubbyOptions adaptive_opts = opts;
    adaptive_opts.reoptimize = true;
    AdaptiveRunner runner(pw->options.cluster, &pool, exec, adaptive_opts);
    Dfs adaptive_dfs = pw->workload.dfs;
    auto adaptive_run = runner.Run(mis_report->plan, &adaptive_dfs);
    STUBBY_CHECK_OK(adaptive_run.status());
    const double adaptive_sec = adaptive_run->dataflow.makespan_sec;

    const double regression = *mis_sec - *clean_sec;
    // No regression => the mis-profile did not hurt this workload; nothing
    // to recover, counts as recovered. Otherwise the recovered fraction of
    // the regression must clear the bar.
    const bool has_regression = regression > 1e-9 * *clean_sec;
    const double recovery =
        has_regression ? (*mis_sec - adaptive_sec) / regression : 1.0;
    const bool recovered = !has_regression || recovery >= min_recovery;
    recovered_count += recovered ? 1 : 0;

    std::printf("%-10s %9.1fs %11.1fs %9.1fs %7zu %8.1f%% %8.1f%%%s\n",
                abbr.c_str(), *clean_sec, *mis_sec, adaptive_sec,
                static_cast<size_t>(adaptive_run->stats.reoptimizations),
                100.0 * regression / *clean_sec, 100.0 * recovery,
                recovered ? "" : "  [MISS]");

    Json row = Json::Object();
    row["workload"] = abbr;
    row["clean_sec"] = *clean_sec;
    row["misprofiled_sec"] = *mis_sec;
    row["adaptive_sec"] = adaptive_sec;
    row["regression_pct"] = 100.0 * regression / *clean_sec;
    row["recovery"] = recovery;
    row["recovered"] = recovered;
    row["reoptimizations"] = adaptive_run->stats.reoptimizations;
    row["checks"] = adaptive_run->stats.checks;
    row["max_rel_error"] = adaptive_run->stats.max_rel_error;
    recovery_rows.Append(std::move(row));
  }

  const bool pass = recovered_count >= min_pass;
  std::printf("\nrecovered >= %.0f%% of the regression on %d of %zu "
              "workloads (gate: %d) -> %s\n", 100.0 * min_recovery,
              recovered_count, abbrs.size(), min_pass,
              pass ? "PASS" : "FAIL");

  Json recovery = Json::Object();
  recovery["min_recovery"] = min_recovery;
  recovery["min_pass"] = static_cast<uint64_t>(min_pass);
  recovery["recovered_count"] = static_cast<uint64_t>(recovered_count);
  recovery["pass"] = pass;
  recovery["workloads"] = std::move(recovery_rows);
  doc["recovery"] = std::move(recovery);

  WriteBenchJson("BENCH_OPTGAP.json", doc);
  return pass ? 0 : 1;
}

// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and optimizer: row handling, partitioning, pipeline execution, the
// cluster scheduler, plan signatures, what-if costing, and RRS — the inner
// loops that bound the optimizer overhead reported in Figure 13.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "cost/cost_cache.h"
#include "cost/schedule.h"
#include "cost/whatif.h"
#include "dfs/dataset.h"
#include "exec/workflow_runner.h"
#include "exec/wrappers.h"
#include "mr/bloom_filter.h"
#include "mr/partitioner.h"
#include "optimizer/rrs.h"
#include "optimizer/transform.h"
#include "profiler/profiler.h"
#include "optimizer/stubby.h"
#include "reuse/result_store.h"
#include "reuse/session.h"
#include "workloads/builder.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

using namespace stubby;

namespace {

std::vector<Row> MakeRows(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back(
        Row{rng.NextInt(0, 999), rng.NextInt(0, 99), rng.NextDouble(0, 100)});
  }
  return rows;
}

void BM_RowSerializedSize(benchmark::State& state) {
  std::vector<Row> rows = MakeRows(1024, 1);
  for (auto _ : state) {
    uint64_t total = 0;
    for (const Row& r : rows) total += r.SerializedSize();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RowSerializedSize);

void BM_HashPartitioner(benchmark::State& state) {
  Schema schema({"A", "B", "V"});
  PartitionSpec spec = PartitionSpec::DefaultFor({"A", "B"});
  Partitioner p = *Partitioner::Make(spec, schema);
  std::vector<Row> rows = MakeRows(1024, 2);
  for (auto _ : state) {
    int acc = 0;
    for (const Row& r : rows) acc += p.PartitionOf(r, 100);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HashPartitioner);

void BM_RangePartitioner(benchmark::State& state) {
  Schema schema({"A", "B", "V"});
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"A"};
  spec.sort_fields = {"A"};
  for (int i = 10; i < 1000; i += 10) spec.split_points.push_back(Row{i});
  Partitioner p = *Partitioner::Make(spec, schema);
  std::vector<Row> rows = MakeRows(1024, 3);
  for (auto _ : state) {
    int acc = 0;
    for (const Row& r : rows) acc += p.PartitionOf(r, 100);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RangePartitioner);

void BM_PipelineMapReduce(benchmark::State& state) {
  Schema schema({"A", "B", "V"});
  std::vector<Stage> stages = {
      Stage::Map(FilterRangeMap("f", schema, "V", 0, 80)),
      Stage::Reduce(AggReduce("agg", schema, {"A"}, {{"V", AggOp::kSum, "S"}}),
                    {"A"}),
  };
  std::vector<Row> rows = MakeRows(static_cast<int>(state.range(0)), 4);
  std::vector<size_t> idx = {0};
  std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    return CompareOnFields(a, b, idx) < 0;
  });
  for (auto _ : state) {
    VectorEmitter out;
    auto runner = PipelineRunner::Make(stages, schema, &out, nullptr);
    for (const Row& r : rows) (*runner)->Emit(r);
    (*runner)->Finish();
    benchmark::DoNotOptimize(out.rows().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineMapReduce)->Arg(1024)->Arg(16384);

void BM_ClusterSchedule(benchmark::State& state) {
  ClusterSpec cluster;
  std::vector<ScheduledJob> jobs;
  for (int i = 0; i < 8; ++i) {
    ScheduledJob j;
    j.id = "J" + std::to_string(i);
    if (i > 0) j.deps = {"J" + std::to_string(i - 1)};
    j.times.map_tasks = static_cast<int>(state.range(0));
    j.times.reduce_tasks = 100;
    j.times.map_avg_sec = 10;
    j.times.map_max_sec = 12;
    j.times.reduce_avg_sec = 30;
    j.times.reduce_max_sec = 45;
    j.times.job_overhead_sec = 6;
    jobs.push_back(std::move(j));
  }
  for (auto _ : state) {
    auto res = SimulateCluster(jobs, cluster);
    benchmark::DoNotOptimize(res->makespan_sec);
  }
}
BENCHMARK(BM_ClusterSchedule)->Arg(500)->Arg(5000);

void BM_Rrs(benchmark::State& state) {
  for (auto _ : state) {
    RecursiveRandomSearch rrs(RrsOptions{}, 42);
    auto [point, value] = rrs.Minimize(
        8,
        [](const std::vector<double>& x) {
          double s = 0;
          for (double v : x) s += (v - 0.3) * (v - 0.3);
          return s;
        },
        {});
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_Rrs);

// Whole-plan costing (the optimizer's inner loop) on the profiled IR
// workload.
void BM_WhatIfCostIR(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 5000;
  auto w = MakeWorkload("IR", options);
  Profiler profiler(options.cluster);
  Dfs dfs = w->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&w->plan, &dfs));
  WhatIfEngine whatif(options.cluster);
  for (auto _ : state) {
    CostEstimate est = whatif.Cost(w->plan);
    benchmark::DoNotOptimize(est.cost);
  }
}
BENCHMARK(BM_WhatIfCostIR);

// Same costing loop with the memo attached: after the first iteration every
// Cost call is a whole-plan cache hit.
void BM_WhatIfCostIRCached(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 5000;
  auto w = MakeWorkload("IR", options);
  Profiler profiler(options.cluster);
  Dfs dfs = w->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&w->plan, &dfs));
  WhatIfEngine whatif(options.cluster);
  CostCache cache;
  whatif.set_cache(&cache);
  for (auto _ : state) {
    CostEstimate est = whatif.Cost(w->plan);
    benchmark::DoNotOptimize(est.cost);
  }
}
BENCHMARK(BM_WhatIfCostIRCached);

// Whole-plan content digest (the costing-cache key) on the profiled BR
// workload — the per-evaluation overhead the memo adds on a miss.
void BM_PlanCostDigest(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 5000;
  auto w = MakeWorkload("BR", options);
  Profiler profiler(options.cluster);
  Dfs dfs = w->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&w->plan, &dfs));
  for (auto _ : state) {
    CostKey key = PlanCostDigest(w->plan);
    benchmark::DoNotOptimize(key.first);
  }
}
BENCHMARK(BM_PlanCostDigest);

void BM_PlanSignature(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 2000;
  auto w = MakeWorkload("BR", options);
  for (auto _ : state) {
    std::string sig = PlanSignature(w->plan);
    benchmark::DoNotOptimize(sig.size());
  }
}
BENCHMARK(BM_PlanSignature);

// Cache-on vs. cache-off optimizer runs on the BR workflow (the paper's
// Figure 1 running example): verifies transparency and reports how much of
// the costing work the memo eliminated.
bool RunCostCacheStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nCost-cache study (BR, the Figure 1 running example)\n");
  auto pw = Prepare("BR", 6000);
  STUBBY_CHECK_OK(pw.status());

  auto off = RunStubbyReport(*pw, true, true, 17, /*enable_cache=*/false);
  STUBBY_CHECK_OK(off.status());
  auto on = RunStubbyReport(*pw, true, true, 17, /*enable_cache=*/true);
  STUBBY_CHECK_OK(on.status());

  const bool transparent =
      off->estimated_cost == on->estimated_cost &&
      PlanSignature(off->plan) == PlanSignature(on->plan) &&
      off->applied == on->applied;
  const double off_full = static_cast<double>(off->costing.full_predictions);
  const double on_full = static_cast<double>(
      std::max<uint64_t>(1, on->costing.full_predictions));
  const double reduction = off_full / on_full;

  std::printf("  cache off: %s\n", off->costing.ToString().c_str());
  std::printf("  cache on : %s\n", on->costing.ToString().c_str());
  std::printf("  transparency (plan, cost, applied): %s\n",
              transparent ? "IDENTICAL" : "MISMATCH");
  std::printf("  full-plan dataflow predictions: %.0f -> %llu (%.1fx fewer)\n",
              off_full, (unsigned long long)on->costing.full_predictions,
              reduction);
  std::printf("  optimizer wall time: %.3fs -> %.3fs\n",
              off->optimization_time_sec, on->optimization_time_sec);

  Json study = Json::Object();
  study["workload"] = "BR";
  study["transparent"] = transparent;
  study["full_prediction_reduction"] = reduction;
  study["cache_off"] = ReportJson(*off);
  study["cache_on"] = ReportJson(*on);
  (*doc)["cost_cache"] = std::move(study);
  return transparent && reduction >= 2.0;
}

// Executor and optimizer wall time at 1/2/4/8 worker threads on BR.
// Results must be bit-identical at every thread count (the determinism
// invariant of the task-parallel core); the speedups depend on the host's
// core count and are recorded, not gated here.
bool RunThreadScalingStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nThread-scaling study (BR): threads vs wall time\n");
  auto pw = Prepare("BR", 6000);
  STUBBY_CHECK_OK(pw.status());
  auto baseline = PigBaseline(pw->workload.plan);
  STUBBY_CHECK_OK(baseline.status());
  std::printf("  hardware threads: %d\n", ThreadPool::HardwareThreads());

  bool identical = true;
  double exec_wall_1 = 0.0;
  double opt_wall_1 = 0.0;
  double ref_makespan = 0.0;
  double ref_cost = 0.0;
  std::string ref_sig;
  Json points = Json::Array();
  for (int t : {1, 2, 4, 8}) {
    ThreadPool pool(t);
    double exec_wall = 0.0;
    double makespan = 0.0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto m = Execute(*pw, *baseline, &pool);
      STUBBY_CHECK_OK(m.status());
      const double wall = SecondsSince(t0);
      if (rep == 0 || wall < exec_wall) exec_wall = wall;
      makespan = *m;
    }
    auto report = RunStubbyReport(*pw, true, true, 17, true, &pool);
    STUBBY_CHECK_OK(report.status());
    const double opt_wall = report->optimization_time_sec;
    const std::string sig = PlanSignature(report->plan);

    if (t == 1) {
      exec_wall_1 = exec_wall;
      opt_wall_1 = opt_wall;
      ref_makespan = makespan;
      ref_cost = report->estimated_cost;
      ref_sig = sig;
    } else if (makespan != ref_makespan || report->estimated_cost != ref_cost ||
               sig != ref_sig) {
      identical = false;
    }
    const double exec_speedup = exec_wall > 0 ? exec_wall_1 / exec_wall : 1.0;
    const double opt_speedup = opt_wall > 0 ? opt_wall_1 / opt_wall : 1.0;
    std::printf(
        "  threads=%d  executor %.3fs (%.2fx)  optimizer %.3fs (%.2fx)\n", t,
        exec_wall, exec_speedup, opt_wall, opt_speedup);

    Json point = Json::Object();
    point["threads"] = static_cast<uint64_t>(t);
    point["executor_wall_sec"] = exec_wall;
    point["executor_speedup"] = exec_speedup;
    point["optimizer_wall_sec"] = opt_wall;
    point["optimizer_speedup"] = opt_speedup;
    points.Append(std::move(point));
  }
  std::printf("  results across thread counts: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  Json study = Json::Object();
  study["workload"] = "BR";
  study["hardware_threads"] =
      static_cast<uint64_t>(ThreadPool::HardwareThreads());
  study["identical_results"] = identical;
  study["points"] = std::move(points);
  (*doc)["thread_scaling"] = std::move(study);
  return identical;
}

// Work-stealing vs the static round-robin schedule on a skewed batch.
// The batch mimics a BR unit search: most candidates are light, a few are
// an order of magnitude heavier (the whole-graph repack candidates), and
// the round-robin deal concentrates the heavy chunks on two deques — the
// exact shape that strands cores under the pre-stealing fork-join
// schedule. Each task prices the profiled BR plan through a private
// what-if engine `reps` times, so the kernel is the optimizer's real inner
// loop, not a spin. Reports wall time, steal counts, and idle time
// (threads x wall - summed busy) for stealing on and off at 1/2/4/8
// threads; the gate requires stealing to beat the static schedule at 8
// threads.
bool RunSkewedBatchStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nSkewed-batch study (BR-style mixed candidate sizes)\n");
  auto pw = Prepare("BR", 6000);
  STUBBY_CHECK_OK(pw.status());
  const Plan& plan = pw->workload.plan;

  constexpr size_t kTasks = 96;
  constexpr uint64_t kHeavyReps = 24;
  std::vector<uint64_t> reps(kTasks, 1);
  for (size_t i = 0; i < kTasks; i += 12) reps[i] = kHeavyReps;

  bool stealing_wins = true;
  double static_wall_8 = 0.0;
  double steal_wall_8 = 0.0;
  Json points = Json::Array();
  for (bool stealing : {false, true}) {
    for (int t : {1, 2, 4, 8}) {
      ThreadPool::Options pool_opts;
      pool_opts.work_stealing = stealing;
      ThreadPool pool(t, pool_opts);
      double wall = 0.0;
      constexpr int kBenchReps = 3;
      for (int rep = 0; rep < kBenchReps; ++rep) {
        pool.ResetStats();
        const auto t0 = std::chrono::steady_clock::now();
        pool.ParallelFor(kTasks, [&](size_t i) {
          WhatIfEngine whatif(plan.cluster());
          for (uint64_t r = 0; r < reps[i]; ++r) {
            CostEstimate est = whatif.Cost(plan);
            benchmark::DoNotOptimize(est.cost);
          }
        });
        const double w = SecondsSince(t0);
        if (rep == 0 || w < wall) wall = w;
      }
      const ThreadPool::Stats stats = pool.stats();  // last rep's counters
      const double busy_sec = static_cast<double>(stats.busy_usec) / 1e6 /
                              kBenchReps;  // rough per-rep average
      const double idle_sec = std::max(0.0, wall * t - busy_sec);
      const uint64_t steals = stats.steals / kBenchReps;
      std::printf(
          "  stealing=%-3s threads=%d  wall %.3fs  steals %llu  idle %.3fs\n",
          stealing ? "on" : "off", t, wall, (unsigned long long)steals,
          idle_sec);
      if (t == 8 && !stealing) static_wall_8 = wall;
      if (t == 8 && stealing) steal_wall_8 = wall;

      Json point = Json::Object();
      point["work_stealing"] = stealing;
      point["threads"] = static_cast<uint64_t>(t);
      point["wall_sec"] = wall;
      point["steals"] = steals;
      point["busy_sec"] = busy_sec;
      point["idle_sec"] = idle_sec;
      points.Append(std::move(point));
    }
  }
  const double speedup =
      steal_wall_8 > 0.0 ? static_wall_8 / steal_wall_8 : 1.0;
  std::printf("  8-thread skewed batch: static %.3fs -> stealing %.3fs "
              "(%.2fx)\n",
              static_wall_8, steal_wall_8, speedup);
  // Single-core hosts cannot demonstrate a scheduling win; record only.
  if (ThreadPool::HardwareThreads() >= 2) {
    stealing_wins = steal_wall_8 < static_wall_8;
  }
  std::printf("  stealing beats static at 8 threads: %s\n",
              stealing_wins ? "YES" : "NO");

  Json study = Json::Object();
  study["workload"] = "BR";
  study["tasks"] = static_cast<uint64_t>(kTasks);
  study["heavy_reps"] = kHeavyReps;
  study["hardware_threads"] =
      static_cast<uint64_t>(ThreadPool::HardwareThreads());
  study["stealing_beats_static_at_8"] = stealing_wins;
  study["static_wall_8_sec"] = static_wall_8;
  study["stealing_wall_8_sec"] = steal_wall_8;
  study["speedup_at_8"] = speedup;
  study["points"] = std::move(points);
  (*doc)["skewed_batch"] = std::move(study);
  return stealing_wins;
}

// Cross-candidate probe memoization in the reuse-aware search. Warms a
// result store with one BR session, then re-optimizes against the warm
// store with the signature memo on and off. The memo is pure wall-time:
// the chosen plan and cost bits must be identical either way. The gate
// additionally requires hits > 0 and misses (i.e. actual signature
// computations) strictly below the number of candidates priced — each
// distinct subplan signature is resolved once, not once per candidate.
bool RunProbeMemoStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nProbe-memo study (reuse-aware search, warm stores)\n");

  struct Run {
    std::string sig;
    double cost = 0.0;
    ReuseStats reuse;
    uint64_t candidates = 0;
    double wall = 0.0;
  };

  bool transparent = true;
  uint64_t total_candidates = 0;
  uint64_t total_hits = 0;
  uint64_t total_computed_on = 0;
  uint64_t total_computed_off = 0;
  double total_on = 0.0;
  double total_off = 0.0;
  Json workloads = Json::Array();
  for (const std::string& abbr : AllWorkloadAbbrs()) {
    auto pw = Prepare(abbr, 3000);
    STUBBY_CHECK_OK(pw.status());

    ResultStore warm;
    ReuseSession warmup(&warm);
    StubbyOptions base_opts;
    base_opts.reuse_whole_workflow = false;
    auto first = warmup.Run(pw->workload.plan, pw->workload.dfs, base_opts);
    STUBBY_CHECK_OK(first.status());
    const std::string warm_bytes = warm.Serialize();

    auto run = [&](bool memo) {
      auto store = ResultStore::Deserialize(warm_bytes);
      STUBBY_CHECK_OK(store.status());
      ThreadPool pool(8);
      StubbyOptions opts = base_opts;
      opts.reuse_store = &*store;
      opts.reuse_dfs = &pw->workload.dfs;
      opts.pool = &pool;
      opts.reuse_probe_cache = memo;
      const auto t0 = std::chrono::steady_clock::now();
      auto report = StubbyOptimizer(opts).Optimize(pw->workload.plan);
      const double wall = SecondsSince(t0);
      STUBBY_CHECK_OK(report.status());
      return Run{PlanSignature(report->plan), report->estimated_cost,
                 report->reuse,
                 static_cast<uint64_t>(report->subplans_enumerated), wall};
    };
    const Run with = run(true);
    const Run without = run(false);

    if (with.sig != without.sig || with.cost != without.cost) {
      transparent = false;
    }
    total_candidates += with.candidates;
    total_hits += with.reuse.probe_cache_hits;
    total_computed_on += with.reuse.signature_keys_computed;
    total_computed_off += without.reuse.signature_keys_computed;
    total_on += with.wall;
    total_off += without.wall;
    std::printf("  %-4s candidates %5llu  memo_hits %5llu  sig_keys "
                "%5llu -> %5llu  wall %.2fs -> %.2fs\n",
                abbr.c_str(), (unsigned long long)with.candidates,
                (unsigned long long)with.reuse.probe_cache_hits,
                (unsigned long long)without.reuse.signature_keys_computed,
                (unsigned long long)with.reuse.signature_keys_computed,
                without.wall, with.wall);

    Json row = Json::Object();
    row["workload"] = abbr;
    row["candidates_priced"] = with.candidates;
    row["probe_cache_hits"] = with.reuse.probe_cache_hits;
    row["probe_cache_misses"] = with.reuse.probe_cache_misses;
    row["signature_keys_computed_memo_on"] = with.reuse.signature_keys_computed;
    row["signature_keys_computed_memo_off"] =
        without.reuse.signature_keys_computed;
    row["memo_on_wall_sec"] = with.wall;
    row["memo_off_wall_sec"] = without.wall;
    workloads.Append(std::move(row));
  }

  // Every candidate priced by the reuse-aware search is probed, and
  // without the memo each probe recomputes JobReuseKey digests for the
  // candidate's whole upstream closure. `signature_keys_computed` counts
  // the digests actually computed on the probe path in both runs — the
  // memo-off number is the measured baseline, not an inference — and the
  // gate requires the memo to (a) hit and (b) strictly reduce it: digests
  // collapse to once per distinct subplan signature instead of once per
  // RRS-configured candidate.
  const bool memo_pays =
      total_hits > 0 && total_computed_on < total_computed_off;
  std::printf(
      "  total: candidates %llu  memo_hits %llu  sig_keys %llu -> %llu\n",
      (unsigned long long)total_candidates, (unsigned long long)total_hits,
      (unsigned long long)total_computed_off,
      (unsigned long long)total_computed_on);
  std::printf(
      "  identical plan+cost: %s   hits>0 and fewer computations: %s\n",
      transparent ? "YES" : "NO", memo_pays ? "YES" : "NO");

  Json study = Json::Object();
  study["identical_results"] = transparent;
  study["candidates_priced"] = total_candidates;
  study["probe_cache_hits"] = total_hits;
  study["signature_keys_computed_memo_on"] = total_computed_on;
  study["signature_keys_computed_memo_off"] = total_computed_off;
  study["signature_computations_saved"] =
      total_computed_off > total_computed_on
          ? total_computed_off - total_computed_on
          : 0;
  study["memo_on_wall_sec"] = total_on;
  study["memo_off_wall_sec"] = total_off;
  study["speedup"] = total_on > 0.0 ? total_off / total_on : 1.0;
  study["workloads"] = std::move(workloads);
  (*doc)["probe_memo"] = std::move(study);
  return transparent && memo_pays;
}

// Columnar vs record-at-a-time execution of the executor's vectorizable
// hot path: an all-map, stateless pipeline (filter / append-const /
// project / sample) over wide rows with string payloads, run per-chunk the
// way map tasks run it. The record path re-materializes every row at every
// stage; the batch path mutates structure (selection narrowing, column
// pointer shuffles, broadcast constants) and materializes survivors once.
// Three rates are measured at 1/2/4/8 threads:
//   kernel: pipeline execution given each representation (row emit loop
//           vs batch Run + survivor materialization) — the region the
//           vectorized path replaces;
//   end-to-end: the full columnar storage boundary — zero-copy batch view
//           of a column-native PartitionData in, Run, column-native
//           PartitionData (with byte accounting) out. This is what a map
//           task actually executes with columnar_storage on;
//   row-store end-to-end: kernel plus the per-chunk rows->columns and
//           columns->rows conversions the executor paid before
//           column-native storage (diagnostic, not gated).
// The gate requires bit-identical outputs and counters plus >= 5x kernel
// AND >= 5x end-to-end throughput at every thread count the host can
// actually run in parallel (t <= hardware threads; oversubscribed points
// are recorded, not gated).
bool RunVectorizedExecStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nVectorized-exec study (columnar map pipeline vs row path)\n");

  Schema schema0({"A", "B", "C", "D", "E", "F", "V", "W"});
  Schema schema1 = schema0.Concat(Schema({"T"}));
  Schema schema2({"A", "B", "C", "D", "E", "F", "V", "T"});
  Schema schema2r = schema2.Concat(Schema({"R"}));
  Schema schema3({"A", "C", "D", "F", "V", "T", "R"});
  Schema schema3u = schema3.Concat(Schema({"U"}));
  Schema schema4({"A", "C", "D", "V", "T", "U"});
  std::vector<Stage> stages = {
      Stage::Map(FilterRangeMap("f1", schema0, "V", 5.0, 95.0)),
      Stage::Map(AppendConstMap("a1", schema0, "T", Value(int64_t{7}))),
      Stage::Map(ProjectMap("p1", schema1,
                            {"A", "B", "C", "D", "E", "F", "V", "T"})),
      Stage::Map(AppendConstMap("a2", schema2, "R", Value(2.0))),
      Stage::Map(ProjectMap("p2", schema2r,
                            {"A", "C", "D", "F", "V", "T", "R"})),
      Stage::Map(FilterRangeMap("f2", schema3, "D", 10.0, 90.0)),
      Stage::Map(AppendConstMap("a3", schema3, "U", Value(1.5))),
      Stage::Map(ProjectMap("p3", schema3u, {"A", "C", "D", "V", "T", "U"})),
      Stage::Map(SampleMap("s1", schema4, 2, {"A", "C", "V"})),
  };
  if (!BatchPipelineRunner::Eligible(stages)) {
    std::printf("  pipeline unexpectedly ineligible for batching\n");
    return false;
  }

  // 64 map-task-sized chunks; the same split feeds both paths.
  constexpr size_t kChunks = 64;
  constexpr size_t kChunkRows = 4096;
  Rng rng(31);
  std::vector<std::vector<Row>> chunks(kChunks);
  for (auto& chunk : chunks) {
    chunk.reserve(kChunkRows);
    for (size_t i = 0; i < kChunkRows; ++i) {
      chunk.push_back(Row{
          rng.NextInt(0, 999), rng.NextInt(0, 99),
          "user_" + std::to_string(rng.NextInt(0, 5000)),
          rng.NextDouble(0, 100), rng.NextDouble(0, 1),
          "tag_" + std::to_string(rng.NextInt(0, 50)),
          rng.NextDouble(0, 100), rng.NextInt(0, 9)});
    }
  }
  const uint64_t total_rows = kChunks * kChunkRows;

  auto run_row_chunk = [&](const std::vector<Row>& chunk,
                           PipelineCounters* counters) {
    VectorEmitter out;
    auto runner = PipelineRunner::Make(stages, schema0, &out, nullptr);
    STUBBY_CHECK_OK(runner.status());
    for (const Row& r : chunk) (*runner)->Emit(r);
    (*runner)->Finish();
    if (counters != nullptr) *counters = (*runner)->counters();
    return std::move(out.rows());
  };
  auto run_batch_chunk = [&](const std::vector<Row>& chunk,
                             PipelineCounters* counters) {
    BatchPipelineRunner runner = BatchPipelineRunner::Make(stages);
    RowBatch out = runner.Run(RowBatch::FromRows(chunk, schema0.size()));
    if (counters != nullptr) *counters = runner.counters();
    return out.ToRows();
  };

  // Column-native storage, as the executor stores it: the end-to-end leg
  // scans these as zero-copy batch views and stores its output the same
  // way.
  std::vector<PartitionData> stored;
  stored.reserve(kChunks);
  for (const auto& chunk : chunks) {
    stored.push_back(
        PartitionData::FromBatch(RowBatch::FromRows(chunk, schema0.size())));
  }
  auto run_columnar_chunk = [&](const PartitionData& pd) {
    BatchPipelineRunner runner = BatchPipelineRunner::Make(stages);
    PartitionData out = PartitionData::FromBatch(runner.Run(pd.AsBatch()));
    return out.raw_bytes() + out.num_rows();  // force the byte accounting
  };

  // Transparency first: all paths must agree bit-for-bit on every chunk,
  // outputs and counters alike, before the clock starts.
  bool identical = true;
  for (size_t i = 0; i < kChunks; ++i) {
    PipelineCounters rc, bc;
    std::vector<Row> row_out = run_row_chunk(chunks[i], &rc);
    std::vector<Row> batch_out = run_batch_chunk(chunks[i], &bc);
    BatchPipelineRunner runner = BatchPipelineRunner::Make(stages);
    PartitionData col_out =
        PartitionData::FromBatch(runner.Run(stored[i].AsBatch()));
    if (!RowsBitIdentical(row_out, batch_out) ||
        !RowsBitIdentical(row_out, col_out.rows()) ||
        rc.rows_in != bc.rows_in || rc.rows_out != bc.rows_out ||
        std::memcmp(&rc.cpu_units, &bc.cpu_units, sizeof(double)) != 0) {
      identical = false;
      break;
    }
  }
  std::printf("  outputs and counters bit-identical: %s\n",
              identical ? "YES" : "NO");

  // Pre-built batches isolate the kernel region; the executor builds these
  // once per chunk and shares them across every subscriber pipeline.
  std::vector<RowBatch> prebuilt;
  prebuilt.reserve(kChunks);
  for (const auto& chunk : chunks) {
    prebuilt.push_back(RowBatch::FromRows(chunk, schema0.size()));
  }

  const int hw = ThreadPool::HardwareThreads();
  double min_gated_speedup = 0.0;
  double min_gated_e2e_speedup = 0.0;
  bool any_gated = false;
  Json points = Json::Array();
  for (int t : {1, 2, 4, 8}) {
    ThreadPool pool(t);
    double row_wall = 0.0;
    double kernel_wall = 0.0;
    double e2e_wall = 0.0;
    double rowstore_wall = 0.0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      pool.ParallelFor(kChunks, [&](size_t i) {
        benchmark::DoNotOptimize(run_row_chunk(chunks[i], nullptr).size());
      });
      const double rw = SecondsSince(t0);
      if (rep == 0 || rw < row_wall) row_wall = rw;

      t0 = std::chrono::steady_clock::now();
      pool.ParallelFor(kChunks, [&](size_t i) {
        BatchPipelineRunner runner = BatchPipelineRunner::Make(stages);
        RowBatch out = runner.Run(prebuilt[i]);
        benchmark::DoNotOptimize(out.ToRows().size());
      });
      const double kw = SecondsSince(t0);
      if (rep == 0 || kw < kernel_wall) kernel_wall = kw;

      t0 = std::chrono::steady_clock::now();
      pool.ParallelFor(kChunks, [&](size_t i) {
        benchmark::DoNotOptimize(run_columnar_chunk(stored[i]));
      });
      const double ew = SecondsSince(t0);
      if (rep == 0 || ew < e2e_wall) e2e_wall = ew;

      t0 = std::chrono::steady_clock::now();
      pool.ParallelFor(kChunks, [&](size_t i) {
        benchmark::DoNotOptimize(run_batch_chunk(chunks[i], nullptr).size());
      });
      const double sw = SecondsSince(t0);
      if (rep == 0 || sw < rowstore_wall) rowstore_wall = sw;
    }
    const double row_rate = total_rows / std::max(row_wall, 1e-9);
    const double kernel_rate = total_rows / std::max(kernel_wall, 1e-9);
    const double e2e_rate = total_rows / std::max(e2e_wall, 1e-9);
    const double rowstore_rate = total_rows / std::max(rowstore_wall, 1e-9);
    const double kernel_speedup = kernel_rate / std::max(row_rate, 1e-9);
    const double e2e_speedup = e2e_rate / std::max(row_rate, 1e-9);
    const double rowstore_speedup = rowstore_rate / std::max(row_rate, 1e-9);
    const bool gated = t <= hw;
    if (gated) {
      if (!any_gated || kernel_speedup < min_gated_speedup) {
        min_gated_speedup = kernel_speedup;
      }
      if (!any_gated || e2e_speedup < min_gated_e2e_speedup) {
        min_gated_e2e_speedup = e2e_speedup;
      }
      any_gated = true;
    }
    std::printf(
        "  threads=%d%s  row %.0f rows/s  batch kernel %.0f rows/s (%.1fx)"
        "  end-to-end %.0f rows/s (%.1fx)  row-store e2e %.0f rows/s"
        " (%.1fx)\n",
        t, gated ? "" : " (oversubscribed)", row_rate, kernel_rate,
        kernel_speedup, e2e_rate, e2e_speedup, rowstore_rate,
        rowstore_speedup);

    Json point = Json::Object();
    point["threads"] = static_cast<uint64_t>(t);
    point["gated"] = gated;
    point["row_rows_per_sec"] = row_rate;
    point["batch_kernel_rows_per_sec"] = kernel_rate;
    point["batch_e2e_rows_per_sec"] = e2e_rate;
    point["rowstore_e2e_rows_per_sec"] = rowstore_rate;
    point["kernel_speedup"] = kernel_speedup;
    point["e2e_speedup"] = e2e_speedup;
    point["rowstore_e2e_speedup"] = rowstore_speedup;
    points.Append(std::move(point));
  }
  const bool fast_enough = any_gated && min_gated_speedup >= 5.0 &&
                           min_gated_e2e_speedup >= 5.0;
  std::printf(
      "  min speedups at t <= %d hardware threads: kernel %.1fx, "
      "end-to-end %.1fx (gate: both >= 5x %s)\n",
      hw, min_gated_speedup, min_gated_e2e_speedup,
      fast_enough ? "PASS" : "FAIL");

  Json study = Json::Object();
  study["pipeline_stages"] = static_cast<uint64_t>(stages.size());
  study["rows"] = total_rows;
  study["chunks"] = static_cast<uint64_t>(kChunks);
  study["hardware_threads"] = static_cast<uint64_t>(hw);
  study["identical_results"] = identical;
  study["min_kernel_speedup"] = min_gated_speedup;
  study["min_e2e_speedup"] = min_gated_e2e_speedup;
  study["points"] = std::move(points);
  (*doc)["vectorized_exec"] = std::move(study);
  return identical && fast_enough;
}

// Bloom predicate-transfer study. Two legs:
//   kernel: BloomProbeMapFn throughput, row path (Map loop) vs batch path
//           (MapBatch narrowing the selection), over map-task-sized
//           chunks — the region the probe stage adds to every probe-side
//           map task;
//   end-to-end: a selective inner join (build side filtered to 10% of the
//           key space, probe side 4x the build's logical bytes) optimized
//           with bloom_transfer off vs on and executed in the simulator.
// The gate requires bit-identical probe outputs on both kernel paths,
// bit-identical terminal outputs on vs off, the transform actually winning
// the search, and a shuffle-byte reduction of at least 30%.
bool RunBloomProbeStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nBloom-probe study (predicate transfer on a selective join)\n");

  // --- probe kernel --------------------------------------------------------
  Schema schema({"K", "G", "V"});
  auto filter = std::make_shared<BloomFilter>(20, 6, kBloomFilterSeed);
  for (int64_t k = 0; k < 10000; ++k) {
    filter->Insert(HashOnFields(Row{k, int64_t{0}, int64_t{0}}, {0}));
  }
  constexpr size_t kChunks = 64;
  constexpr size_t kChunkRows = 4096;
  Rng rng(41);
  std::vector<std::vector<Row>> chunks(kChunks);
  for (auto& chunk : chunks) {
    chunk.reserve(kChunkRows);
    for (size_t i = 0; i < kChunkRows; ++i) {
      chunk.push_back(Row{rng.NextInt(0, 99999), rng.NextInt(0, 9),
                          rng.NextDouble(0, 100)});
    }
  }
  const uint64_t total_rows = kChunks * kChunkRows;
  BloomProbeMapFn probe("probe", schema, {"K"});
  auto bound = probe.Bind(filter);

  bool probe_identical = true;
  uint64_t kept = 0;
  std::vector<RowBatch> prebuilt;
  prebuilt.reserve(kChunks);
  for (const auto& chunk : chunks) {
    prebuilt.push_back(RowBatch::FromRows(chunk, schema.size()));
    VectorEmitter row_out;
    for (const Row& r : chunk) bound->Map(r, &row_out);
    RowBatch batch = prebuilt.back();
    bound->MapBatch(&batch);
    if (!RowsBitIdentical(row_out.rows(), batch.ToRows())) {
      probe_identical = false;
    }
    kept += row_out.rows().size();
  }
  const double pass_fraction =
      static_cast<double>(kept) / static_cast<double>(total_rows);
  std::printf("  probe outputs bit-identical row vs batch: %s"
              " (pass fraction %.3f)\n",
              probe_identical ? "YES" : "NO", pass_fraction);

  double row_wall = 0.0;
  double batch_wall = 0.0;
  constexpr int kReps = 3;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (const auto& chunk : chunks) {
      VectorEmitter out;
      for (const Row& r : chunk) bound->Map(r, &out);
      benchmark::DoNotOptimize(out.rows().size());
    }
    const double rw = SecondsSince(t0);
    if (rep == 0 || rw < row_wall) row_wall = rw;

    t0 = std::chrono::steady_clock::now();
    for (const RowBatch& pre : prebuilt) {
      RowBatch batch = pre;
      bound->MapBatch(&batch);
      benchmark::DoNotOptimize(batch.num_rows());
    }
    const double bw = SecondsSince(t0);
    if (rep == 0 || bw < batch_wall) batch_wall = bw;
  }
  const double row_rate = total_rows / std::max(row_wall, 1e-9);
  const double batch_rate = total_rows / std::max(batch_wall, 1e-9);
  std::printf("  probe kernel: row %.0f rows/s  batch %.0f rows/s (%.1fx)\n",
              row_rate, batch_rate, batch_rate / std::max(row_rate, 1e-9));

  // --- end-to-end selective join -------------------------------------------
  constexpr uint64_t kStudyGB = 1ull << 30;
  auto make_join = [&]() -> Result<WorkflowFactory> {
    ClusterSpec cluster;
    WorkflowFactory f(cluster);
    Rng data_rng(77);
    Schema base({"K", "G", "V"});
    auto rows_of = [&](int n) {
      std::vector<Row> rows;
      for (int i = 0; i < n; ++i) {
        rows.push_back(Row{data_rng.NextInt(0, 199),
                           data_rng.NextInt(0, 9),
                           data_rng.NextInt(0, 99)});
      }
      return rows;
    };
    STUBBY_RETURN_NOT_OK(
        f.AddBase("R", base, Layout{}, 4, rows_of(400), kStudyGB));
    STUBBY_RETURN_NOT_OK(
        f.AddBase("S", base, Layout{}, 4, rows_of(3000), 4 * kStudyGB));
    Schema tagged({"K", "G", "V", "T"});
    std::vector<AggSpec> aggs = {{"V", AggOp::kSum, "BS"}};
    STUBBY_RETURN_NOT_OK(
        f.AddDataset("OUT", AggOutputSchema({"K"}, aggs), true));
    WorkflowFactory::JobDef j;
    j.id = "JB";
    j.inputs = {
        In("R", {Stage::Map(FilterRangeMap("filter_r", base, "K", 40, 60)),
                 Stage::Map(AppendConstMap("tag_r", base, "T",
                                           Value(int64_t{0})))}),
        In("S", {Stage::Map(AppendConstMap("tag_s", base, "T",
                                           Value(int64_t{1})))})};
    j.map_output_schema = tagged;
    j.reduce_stages = {Stage::Reduce(
        InnerJoinReduce("join_jb", tagged, {"K"}, "T", {0, 1}, aggs),
        {"K"})};
    JoinAnnotation ja;
    ja.filterable_inputs = {0, 1};
    j.join_ann = ja;
    FilterAnnotation fa;
    fa.field = "K";
    fa.lo = 40;
    fa.hi = 60;
    j.filter_ann = fa;
    j.output = "OUT";
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
    STUBBY_RETURN_NOT_OK(f.plan().Validate());
    return f;
  };
  auto f = make_join();
  STUBBY_CHECK_OK(f.status());
  Profiler profiler(ClusterSpec{});
  Dfs profile_dfs = f->dfs();
  STUBBY_CHECK_OK(profiler.ProfilePlan(&f->plan(), &profile_dfs));

  StubbyOptions on_opts;
  on_opts.bloom_transfer = true;
  auto off_report = StubbyOptimizer(StubbyOptions{}).Optimize(f->plan());
  auto on_report = StubbyOptimizer(on_opts).Optimize(f->plan());
  STUBBY_CHECK_OK(off_report.status());
  STUBBY_CHECK_OK(on_report.status());
  bool e2e_applied = false;
  for (const std::string& t : on_report->applied) {
    if (t.find("bloom transfer") != std::string::npos) e2e_applied = true;
  }

  auto run = [&](const Plan& plan, uint64_t* shuffle, double* makespan) {
    Dfs dfs = f->dfs();
    WorkflowRunner runner(plan.cluster());
    auto flow = runner.Run(plan, &dfs);
    STUBBY_CHECK_OK(flow.status());
    *shuffle = 0;
    for (const JobDataflow& jd : flow->jobs) *shuffle += jd.map_output_bytes;
    *makespan = flow->makespan_sec;
    auto out = dfs.Get("OUT");
    STUBBY_CHECK_OK(out.status());
    std::vector<Row> rows = (*out)->AllRows();
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  uint64_t off_shuffle = 0;
  uint64_t on_shuffle = 0;
  double off_makespan = 0.0;
  double on_makespan = 0.0;
  std::vector<Row> off_rows = run(off_report->plan, &off_shuffle,
                                  &off_makespan);
  std::vector<Row> on_rows = run(on_report->plan, &on_shuffle, &on_makespan);
  const bool e2e_identical = RowsBitIdentical(off_rows, on_rows);
  const double reduction =
      off_shuffle > 0
          ? 1.0 - static_cast<double>(on_shuffle) /
                      static_cast<double>(off_shuffle)
          : 0.0;
  std::printf(
      "  selective join: transform %s, outputs bit-identical %s\n"
      "  shuffle bytes %llu -> %llu (%.1f%% cut), simulated makespan"
      " %.1fs -> %.1fs\n",
      e2e_applied ? "applied" : "NOT applied", e2e_identical ? "YES" : "NO",
      static_cast<unsigned long long>(off_shuffle),
      static_cast<unsigned long long>(on_shuffle), 100.0 * reduction,
      off_makespan, on_makespan);
  const bool gate = probe_identical && e2e_applied && e2e_identical &&
                    reduction >= 0.30;
  std::printf("  gate (probes identical, applied, outputs identical, cut"
              " >= 30%%): %s\n",
              gate ? "PASS" : "FAIL");

  Json study = Json::Object();
  study["rows"] = total_rows;
  study["probe_identical"] = probe_identical;
  study["probe_pass_fraction"] = pass_fraction;
  study["probe_row_rows_per_sec"] = row_rate;
  study["probe_batch_rows_per_sec"] = batch_rate;
  study["probe_batch_speedup"] = batch_rate / std::max(row_rate, 1e-9);
  study["e2e_applied"] = e2e_applied;
  study["e2e_outputs_identical"] = e2e_identical;
  study["shuffle_bytes_off"] = off_shuffle;
  study["shuffle_bytes_on"] = on_shuffle;
  study["shuffle_reduction"] = reduction;
  study["makespan_off_sec"] = off_makespan;
  study["makespan_on_sec"] = on_makespan;
  (*doc)["bloom_probe"] = std::move(study);
  return gate;
}

// Comma-separated allowlist in STUBBY_MICROBENCH_STUDIES limits which
// studies run (unset or empty = all) — CI legs use it to produce
// BENCH_MICRO.json without paying for every study.
bool StudyEnabled(const char* name) {
  const char* filter = std::getenv("STUBBY_MICROBENCH_STUDIES");
  if (filter == nullptr || *filter == '\0') return true;
  return std::string(filter).find(name) != std::string::npos;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Json doc = Json::Object();
  doc["bench"] = "microbench";
  bool ok = true;
  if (StudyEnabled("cost_cache")) ok = RunCostCacheStudy(&doc) && ok;
  if (StudyEnabled("thread_scaling")) ok = RunThreadScalingStudy(&doc) && ok;
  if (StudyEnabled("skewed_batch")) ok = RunSkewedBatchStudy(&doc) && ok;
  if (StudyEnabled("probe_memo")) ok = RunProbeMemoStudy(&doc) && ok;
  if (StudyEnabled("vectorized_exec")) ok = RunVectorizedExecStudy(&doc) && ok;
  if (StudyEnabled("bloom_probe")) ok = RunBloomProbeStudy(&doc) && ok;
  stubby::bench::WriteBenchJson("BENCH_MICRO.json", doc);
  return ok ? 0 : 1;
}

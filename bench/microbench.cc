// Micro-benchmarks (google-benchmark) for the hot paths of the simulator
// and optimizer: row handling, partitioning, pipeline execution, the
// cluster scheduler, plan signatures, what-if costing, and RRS — the inner
// loops that bound the optimizer overhead reported in Figure 13.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/rng.h"
#include "cost/cost_cache.h"
#include "cost/schedule.h"
#include "cost/whatif.h"
#include "exec/wrappers.h"
#include "mr/partitioner.h"
#include "optimizer/rrs.h"
#include "optimizer/transform.h"
#include "profiler/profiler.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

using namespace stubby;

namespace {

std::vector<Row> MakeRows(int n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    rows.push_back(
        Row{rng.NextInt(0, 999), rng.NextInt(0, 99), rng.NextDouble(0, 100)});
  }
  return rows;
}

void BM_RowSerializedSize(benchmark::State& state) {
  std::vector<Row> rows = MakeRows(1024, 1);
  for (auto _ : state) {
    uint64_t total = 0;
    for (const Row& r : rows) total += r.SerializedSize();
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RowSerializedSize);

void BM_HashPartitioner(benchmark::State& state) {
  Schema schema({"A", "B", "V"});
  PartitionSpec spec = PartitionSpec::DefaultFor({"A", "B"});
  Partitioner p = *Partitioner::Make(spec, schema);
  std::vector<Row> rows = MakeRows(1024, 2);
  for (auto _ : state) {
    int acc = 0;
    for (const Row& r : rows) acc += p.PartitionOf(r, 100);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_HashPartitioner);

void BM_RangePartitioner(benchmark::State& state) {
  Schema schema({"A", "B", "V"});
  PartitionSpec spec;
  spec.type = PartitionType::kRange;
  spec.partition_fields = {"A"};
  spec.sort_fields = {"A"};
  for (int i = 10; i < 1000; i += 10) spec.split_points.push_back(Row{i});
  Partitioner p = *Partitioner::Make(spec, schema);
  std::vector<Row> rows = MakeRows(1024, 3);
  for (auto _ : state) {
    int acc = 0;
    for (const Row& r : rows) acc += p.PartitionOf(r, 100);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_RangePartitioner);

void BM_PipelineMapReduce(benchmark::State& state) {
  Schema schema({"A", "B", "V"});
  std::vector<Stage> stages = {
      Stage::Map(FilterRangeMap("f", schema, "V", 0, 80)),
      Stage::Reduce(AggReduce("agg", schema, {"A"}, {{"V", AggOp::kSum, "S"}}),
                    {"A"}),
  };
  std::vector<Row> rows = MakeRows(static_cast<int>(state.range(0)), 4);
  std::vector<size_t> idx = {0};
  std::sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
    return CompareOnFields(a, b, idx) < 0;
  });
  for (auto _ : state) {
    VectorEmitter out;
    auto runner = PipelineRunner::Make(stages, schema, &out, nullptr);
    for (const Row& r : rows) (*runner)->Emit(r);
    (*runner)->Finish();
    benchmark::DoNotOptimize(out.rows().size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelineMapReduce)->Arg(1024)->Arg(16384);

void BM_ClusterSchedule(benchmark::State& state) {
  ClusterSpec cluster;
  std::vector<ScheduledJob> jobs;
  for (int i = 0; i < 8; ++i) {
    ScheduledJob j;
    j.id = "J" + std::to_string(i);
    if (i > 0) j.deps = {"J" + std::to_string(i - 1)};
    j.times.map_tasks = static_cast<int>(state.range(0));
    j.times.reduce_tasks = 100;
    j.times.map_avg_sec = 10;
    j.times.map_max_sec = 12;
    j.times.reduce_avg_sec = 30;
    j.times.reduce_max_sec = 45;
    j.times.job_overhead_sec = 6;
    jobs.push_back(std::move(j));
  }
  for (auto _ : state) {
    auto res = SimulateCluster(jobs, cluster);
    benchmark::DoNotOptimize(res->makespan_sec);
  }
}
BENCHMARK(BM_ClusterSchedule)->Arg(500)->Arg(5000);

void BM_Rrs(benchmark::State& state) {
  for (auto _ : state) {
    RecursiveRandomSearch rrs(RrsOptions{}, 42);
    auto [point, value] = rrs.Minimize(
        8,
        [](const std::vector<double>& x) {
          double s = 0;
          for (double v : x) s += (v - 0.3) * (v - 0.3);
          return s;
        },
        {});
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_Rrs);

// Whole-plan costing (the optimizer's inner loop) on the profiled IR
// workload.
void BM_WhatIfCostIR(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 5000;
  auto w = MakeWorkload("IR", options);
  Profiler profiler(options.cluster);
  Dfs dfs = w->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&w->plan, &dfs));
  WhatIfEngine whatif(options.cluster);
  for (auto _ : state) {
    CostEstimate est = whatif.Cost(w->plan);
    benchmark::DoNotOptimize(est.cost);
  }
}
BENCHMARK(BM_WhatIfCostIR);

// Same costing loop with the memo attached: after the first iteration every
// Cost call is a whole-plan cache hit.
void BM_WhatIfCostIRCached(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 5000;
  auto w = MakeWorkload("IR", options);
  Profiler profiler(options.cluster);
  Dfs dfs = w->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&w->plan, &dfs));
  WhatIfEngine whatif(options.cluster);
  CostCache cache;
  whatif.set_cache(&cache);
  for (auto _ : state) {
    CostEstimate est = whatif.Cost(w->plan);
    benchmark::DoNotOptimize(est.cost);
  }
}
BENCHMARK(BM_WhatIfCostIRCached);

// Whole-plan content digest (the costing-cache key) on the profiled BR
// workload — the per-evaluation overhead the memo adds on a miss.
void BM_PlanCostDigest(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 5000;
  auto w = MakeWorkload("BR", options);
  Profiler profiler(options.cluster);
  Dfs dfs = w->dfs;
  STUBBY_CHECK_OK(profiler.ProfilePlan(&w->plan, &dfs));
  for (auto _ : state) {
    CostKey key = PlanCostDigest(w->plan);
    benchmark::DoNotOptimize(key.first);
  }
}
BENCHMARK(BM_PlanCostDigest);

void BM_PlanSignature(benchmark::State& state) {
  WorkloadOptions options;
  options.sample_rows = 2000;
  auto w = MakeWorkload("BR", options);
  for (auto _ : state) {
    std::string sig = PlanSignature(w->plan);
    benchmark::DoNotOptimize(sig.size());
  }
}
BENCHMARK(BM_PlanSignature);

// Cache-on vs. cache-off optimizer runs on the BR workflow (the paper's
// Figure 1 running example): verifies transparency and reports how much of
// the costing work the memo eliminated.
bool RunCostCacheStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nCost-cache study (BR, the Figure 1 running example)\n");
  auto pw = Prepare("BR", 6000);
  STUBBY_CHECK_OK(pw.status());

  auto off = RunStubbyReport(*pw, true, true, 17, /*enable_cache=*/false);
  STUBBY_CHECK_OK(off.status());
  auto on = RunStubbyReport(*pw, true, true, 17, /*enable_cache=*/true);
  STUBBY_CHECK_OK(on.status());

  const bool transparent =
      off->estimated_cost == on->estimated_cost &&
      PlanSignature(off->plan) == PlanSignature(on->plan) &&
      off->applied == on->applied;
  const double off_full = static_cast<double>(off->costing.full_predictions);
  const double on_full = static_cast<double>(
      std::max<uint64_t>(1, on->costing.full_predictions));
  const double reduction = off_full / on_full;

  std::printf("  cache off: %s\n", off->costing.ToString().c_str());
  std::printf("  cache on : %s\n", on->costing.ToString().c_str());
  std::printf("  transparency (plan, cost, applied): %s\n",
              transparent ? "IDENTICAL" : "MISMATCH");
  std::printf("  full-plan dataflow predictions: %.0f -> %llu (%.1fx fewer)\n",
              off_full, (unsigned long long)on->costing.full_predictions,
              reduction);
  std::printf("  optimizer wall time: %.3fs -> %.3fs\n",
              off->optimization_time_sec, on->optimization_time_sec);

  Json study = Json::Object();
  study["workload"] = "BR";
  study["transparent"] = transparent;
  study["full_prediction_reduction"] = reduction;
  study["cache_off"] = ReportJson(*off);
  study["cache_on"] = ReportJson(*on);
  (*doc)["cost_cache"] = std::move(study);
  return transparent && reduction >= 2.0;
}

// Executor and optimizer wall time at 1/2/4/8 worker threads on BR.
// Results must be bit-identical at every thread count (the determinism
// invariant of the task-parallel core); the speedups depend on the host's
// core count and are recorded, not gated here.
bool RunThreadScalingStudy(Json* doc) {
  using namespace stubby::bench;
  std::printf("\nThread-scaling study (BR): threads vs wall time\n");
  auto pw = Prepare("BR", 6000);
  STUBBY_CHECK_OK(pw.status());
  auto baseline = PigBaseline(pw->workload.plan);
  STUBBY_CHECK_OK(baseline.status());
  std::printf("  hardware threads: %d\n", ThreadPool::HardwareThreads());

  bool identical = true;
  double exec_wall_1 = 0.0;
  double opt_wall_1 = 0.0;
  double ref_makespan = 0.0;
  double ref_cost = 0.0;
  std::string ref_sig;
  Json points = Json::Array();
  for (int t : {1, 2, 4, 8}) {
    ThreadPool pool(t);
    double exec_wall = 0.0;
    double makespan = 0.0;
    constexpr int kReps = 3;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      auto m = Execute(*pw, *baseline, &pool);
      STUBBY_CHECK_OK(m.status());
      const double wall = SecondsSince(t0);
      if (rep == 0 || wall < exec_wall) exec_wall = wall;
      makespan = *m;
    }
    auto report = RunStubbyReport(*pw, true, true, 17, true, &pool);
    STUBBY_CHECK_OK(report.status());
    const double opt_wall = report->optimization_time_sec;
    const std::string sig = PlanSignature(report->plan);

    if (t == 1) {
      exec_wall_1 = exec_wall;
      opt_wall_1 = opt_wall;
      ref_makespan = makespan;
      ref_cost = report->estimated_cost;
      ref_sig = sig;
    } else if (makespan != ref_makespan || report->estimated_cost != ref_cost ||
               sig != ref_sig) {
      identical = false;
    }
    const double exec_speedup = exec_wall > 0 ? exec_wall_1 / exec_wall : 1.0;
    const double opt_speedup = opt_wall > 0 ? opt_wall_1 / opt_wall : 1.0;
    std::printf(
        "  threads=%d  executor %.3fs (%.2fx)  optimizer %.3fs (%.2fx)\n", t,
        exec_wall, exec_speedup, opt_wall, opt_speedup);

    Json point = Json::Object();
    point["threads"] = static_cast<uint64_t>(t);
    point["executor_wall_sec"] = exec_wall;
    point["executor_speedup"] = exec_speedup;
    point["optimizer_wall_sec"] = opt_wall;
    point["optimizer_speedup"] = opt_speedup;
    points.Append(std::move(point));
  }
  std::printf("  results across thread counts: %s\n",
              identical ? "IDENTICAL" : "MISMATCH");

  Json study = Json::Object();
  study["workload"] = "BR";
  study["hardware_threads"] =
      static_cast<uint64_t>(ThreadPool::HardwareThreads());
  study["identical_results"] = identical;
  study["points"] = std::move(points);
  (*doc)["thread_scaling"] = std::move(study);
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  Json doc = Json::Object();
  doc["bench"] = "microbench";
  const bool cache_ok = RunCostCacheStudy(&doc);
  const bool scaling_ok = RunThreadScalingStudy(&doc);
  stubby::bench::WriteBenchJson("BENCH_MICRO.json", doc);
  return cache_ok && scaling_ok ? 0 : 1;
}

// Figure 5: performance degradation and improvement caused by vertical
// packing and horizontal packing, reproduced on the simulator.
//
//  - Intra-job vertical packing on a producer-consumer pair (producer
//    groups by {O,Z}, consumer by {O}): packing wins when O has many
//    unique values, and degrades badly when O has very few (the packed
//    plan partitions on {O} and loses almost all reduce parallelism).
//  - Horizontal packing of two filter+group+aggregate consumers of one
//    dataset: packing wins on a very large input (the shared scan
//    dominates) and loses on a small one (the cluster can run both jobs
//    concurrently and most efficiently).

#include <cstdio>
#include <cstdlib>

#include "common/json.h"
#include "baselines/pig_baseline.h"
#include "exec/workflow_runner.h"
#include "cost/phase_model.h"
#include "profiler/profiler.h"
#include "optimizer/horizontal.h"
#include "optimizer/vertical.h"
#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/udfs.h"

using namespace stubby;

namespace {

constexpr uint64_t kGB = 1ull << 30;

// Producer (group by {O,Z}) -> consumer (group by {O}) over a dataset whose
// O-cardinality we vary.
Result<WorkflowFactory> MakeVerticalPair(int distinct_o, uint64_t seed) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(seed);
  const int rows = 30000;
  Schema in_schema({"O", "Z", "V"});
  std::vector<Row> rows_data;
  for (int i = 0; i < rows; ++i) {
    rows_data.push_back(Row{rng.NextInt(0, distinct_o - 1),
                            rng.NextInt(0, 9999), rng.NextDouble(0, 100)});
  }
  Layout layout;
  STUBBY_RETURN_NOT_OK(f.AddBase("D0", in_schema, layout, 60,
                                 std::move(rows_data), 120 * kGB));
  Schema mid({"O", "Z", "S"});
  Schema out({"O", "T"});
  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", mid));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", out, true));
  {
    WorkflowFactory::JobDef j;
    j.id = "Jp";
    j.inputs = {In("D0", {})};
    j.map_output_schema = in_schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_oz", in_schema, {"O", "Z"}, {{"V", AggOp::kSum, "S"}}),
        {"O", "Z"})};
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"O", "Z"};
    sa.v1 = FieldSet{"V"};
    sa.k2 = FieldSet{"O", "Z"};
    sa.v2 = FieldSet{"V"};
    sa.k3 = FieldSet{"O", "Z"};
    sa.v3 = FieldSet{"S"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  {
    WorkflowFactory::JobDef j;
    j.id = "Jc";
    j.inputs = {In("D1", {})};
    j.map_output_schema = mid;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_o", mid, {"O"}, {{"S", AggOp::kSum, "T"}}), {"O"})};
    j.sort_extra = {"Z"};
    j.output = "D2";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"O", "Z"};
    sa.v1 = FieldSet{"S"};
    sa.k2 = FieldSet{"O"};
    sa.v2 = FieldSet{"Z", "S"};
    sa.k3 = FieldSet{"O"};
    sa.v3 = FieldSet{"T"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  return f;
}

// One producer dataset feeding two filter+group+aggregate consumers.
Result<WorkflowFactory> MakeHorizontalPair(uint64_t logical_bytes,
                                           uint64_t seed) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(seed);
  const int rows = 30000;
  // Wide log-style records: the consumers filter and project immediately,
  // so reading the dataset dominates both jobs — the regime where scan
  // sharing pays off.
  Schema in_schema({"G", "X", "V", "PAD"});
  const std::string pad(160, 'x');
  std::vector<Row> rows_data;
  for (int i = 0; i < rows; ++i) {
    rows_data.push_back(Row{rng.NextInt(0, 499), rng.NextDouble(0, 1000),
                            rng.NextDouble(0, 100), pad});
  }
  Layout layout;
  STUBBY_RETURN_NOT_OK(
      f.AddBase("D0", in_schema, layout, 32, std::move(rows_data),
                logical_bytes));
  Schema projected({"G", "X", "V"});
  Schema out_a({"G", "SA"});
  Schema out_b({"G", "MB"});
  STUBBY_RETURN_NOT_OK(f.AddDataset("DA", out_a, true));
  STUBBY_RETURN_NOT_OK(f.AddDataset("DB", out_b, true));
  auto add_consumer = [&](const std::string& id, double lo, double hi,
                          AggOp op, const std::string& out_field,
                          const std::string& output,
                          const Schema& out_schema) -> Status {
    (void)out_schema;
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In("D0", {Stage::Map(FilterRangeMap("filter_" + id,
                                                    in_schema, "X", lo, hi,
                                                    /*cpu=*/1.8)),
                          Stage::Map(ProjectMap("project_" + id, in_schema,
                                                {"G", "X", "V"}, /*cpu=*/0.8))})};
    j.map_output_schema = projected;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("agg_" + id, projected, {"G"}, {{"V", op, out_field}}),
        {"G"})};
    j.combiner = AggCombine("combine_" + id, projected, {"G"},
                            {{"V", op, "V"}});
    j.output = output;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"G"};
    sa.v1 = FieldSet{"X", "V", "PAD"};
    sa.k2 = FieldSet{"G"};
    sa.v2 = FieldSet{"X", "V"};
    sa.k3 = FieldSet{"G"};
    sa.v3 = FieldSet{out_field};
    j.schema_ann = sa;
    FilterAnnotation fa;
    fa.field = "X";
    fa.lo = lo;
    fa.hi = hi;
    j.filter_ann = fa;
    return f.AddJob(std::move(j));
  };
  STUBBY_RETURN_NOT_OK(
      add_consumer("Ja", 0, 300, AggOp::kSum, "SA", "DA", out_a));
  STUBBY_RETURN_NOT_OK(
      add_consumer("Jb", 600, 1000, AggOp::kMax, "MB", "DB", out_b));
  return f;
}

// Applies the first application of `transform` (then any follow-up of
// `follow`, if given) to the plan.
Result<Plan> ApplyFirst(const Plan& plan, Transformation* transform,
                        Transformation* follow) {
  std::vector<std::string> all;
  for (const auto& [jid, j] : plan.jobs()) all.push_back(jid);
  auto apps = transform->FindApplications(plan, all);
  if (apps.empty()) return Status::NotFound("no application");
  STUBBY_ASSIGN_OR_RETURN(Plan out, apps[0].apply(plan));
  if (follow != nullptr) {
    std::vector<std::string> all2;
    for (const auto& [jid, j] : out.jobs()) all2.push_back(jid);
    auto apps2 = follow->FindApplications(out, all2);
    if (!apps2.empty()) {
      STUBBY_ASSIGN_OR_RETURN(out, apps2[0].apply(out));
    }
  }
  return out;
}

double RunPlan(const WorkflowFactory& f, const Plan& plan) {
  ClusterSpec cluster;
  WorkflowRunner runner(cluster);
  Dfs dfs = const_cast<WorkflowFactory&>(f).dfs();
  auto flow = runner.Run(plan, &dfs);
  STUBBY_CHECK_OK(flow.status());
  if (getenv("FIG5_DEBUG") != nullptr) {
    PhaseTimeModel model(cluster);
    for (const auto& df : flow->jobs) {
      auto job = plan.GetJob(df.job_id);
      std::printf("    [debug] %-10s %s\n", df.job_id.c_str(),
                  model.TaskTimes(df, (*job)->config).ToString().c_str());
    }
  }
  return flow->makespan_sec;
}

double VerticalCase(int distinct_o, uint64_t seed) {
  auto f = MakeVerticalPair(distinct_o, seed);
  STUBBY_CHECK_OK(f.status());
  Profiler profiler(ClusterSpec{});
  Dfs pdfs = f->dfs();
  STUBBY_CHECK_OK(profiler.ProfilePlan(&f->plan(), &pdfs));
  auto base = RuleOfThumbConfigs(f->plan());
  STUBBY_CHECK_OK(base.status());
  IntraJobVerticalPacking intra;
  InterJobVerticalPacking inter;
  auto packed = ApplyFirst(*base, &intra, &inter);
  STUBBY_CHECK_OK(packed.status());
  double t_unpacked = RunPlan(*f, *base);
  double t_packed = RunPlan(*f, *packed);
  return t_unpacked / t_packed;
}

double HorizontalCase(uint64_t logical_bytes, uint64_t seed) {
  auto f = MakeHorizontalPair(logical_bytes, seed);
  STUBBY_CHECK_OK(f.status());
  Profiler profiler(ClusterSpec{});
  Dfs pdfs = f->dfs();
  STUBBY_CHECK_OK(profiler.ProfilePlan(&f->plan(), &pdfs));
  auto base = RuleOfThumbConfigs(f->plan());
  STUBBY_CHECK_OK(base.status());
  HorizontalPacking horizontal(false);
  auto packed = ApplyFirst(*base, &horizontal, nullptr);
  STUBBY_CHECK_OK(packed.status());
  double t_unpacked = RunPlan(*f, *base);
  double t_packed = RunPlan(*f, *packed);
  if (getenv("FIG5_DEBUG") != nullptr) {
    std::printf("  [debug] unpacked=%.1fs packed=%.1fs\n", t_unpacked,
                t_packed);
  }
  return t_unpacked / t_packed;
}

}  // namespace

int main() {
  std::printf(
      "Figure 5: speedup of packing over not packing (>1 improvement, <1 "
      "degradation)\n\n");
  double v_good = VerticalCase(/*distinct_o=*/20000, 11);
  double v_bad = VerticalCase(/*distinct_o=*/2, 12);
  std::printf("Intra-job vertical packing, high key cardinality : %.2fx\n",
              v_good);
  std::printf("Intra-job vertical packing, 2 distinct keys      : %.2fx\n",
              v_bad);
  double h_big = HorizontalCase(420 * kGB, 13);
  double h_small = HorizontalCase(4 * kGB, 14);
  std::printf("Horizontal packing, very large input (420 GB)    : %.2fx\n",
              h_big);
  std::printf("Horizontal packing, small input (4 GB)           : %.2fx\n",
              h_small);

  bool shape_ok = v_good > 1.0 && v_bad < 1.0 && h_big > 1.0 && h_small < 1.0;
  std::printf("\nexpected shape (improve/degrade/improve/degrade): %s\n",
              shape_ok ? "REPRODUCED" : "NOT reproduced");

  Json doc = Json::Object();
  doc["bench"] = "fig5";
  doc["vertical_high_cardinality"] = v_good;
  doc["vertical_two_keys"] = v_bad;
  doc["horizontal_large_input"] = h_big;
  doc["horizontal_small_input"] = h_small;
  doc["shape_reproduced"] = shape_ok;
  std::FILE* f = std::fopen("BENCH_FIG5.json", "w");
  if (f != nullptr) {
    std::string text = doc.Dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote BENCH_FIG5.json\n");
  }
  return 0;
}

// Figure 11: speedup over the Baseline achieved by Stubby (all
// transformations), Vertical (intra-/inter-job vertical packing + partition
// function + configuration), and Horizontal (horizontal packing + partition
// function + configuration), for all eight workflows of Table 1.
//
// Flags: --rows N      physical sample rows (default 20000)
//        --flip-phases ablation: apply Horizontal before Vertical in Stubby
//        --threads N   worker threads (default: hardware); workflows run as
//                      concurrent tasks, results are identical at any count

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.h"

using namespace stubby;
using namespace stubby::bench;

int main(int argc, char** argv) {
  const int rows = IntFlag(argc, argv, "--rows", 20000);
  const int threads = ThreadsFlag(argc, argv);
  bool flip = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--flip-phases")) flip = true;
  }
  ThreadPool pool(threads);

  std::printf(
      "Figure 11: speedup over Baseline (Pig rules + rules-of-thumb "
      "config)%s\n",
      flip ? " [ablation: horizontal-before-vertical phase order]" : "");
  std::printf("%-6s %10s | %8s %8s %8s\n", "WF", "Baseline", "Stubby",
              "Vertical", "Horizntl");

  const std::vector<std::string> abbrs = AllWorkloadAbbrs();
  struct WorkloadRow {
    std::string line;
    Json row;
  };
  std::vector<WorkloadRow> results(abbrs.size());
  const auto t0 = std::chrono::steady_clock::now();
  RunTasks(&pool, abbrs.size(), [&](size_t i) {
    const std::string& abbr = abbrs[i];
    auto pw = Prepare(abbr, rows);
    STUBBY_CHECK_OK(pw.status());

    auto baseline = PigBaseline(pw->workload.plan);
    STUBBY_CHECK_OK(baseline.status());
    auto t_base = Execute(*pw, *baseline);
    STUBBY_CHECK_OK(t_base.status());

    OptimizeReport stubby_report;
    auto run = [&](bool vertical, bool horizontal,
                   bool keep_report) -> double {
      StubbyOptions opts;
      opts.columnar_storage = ColumnarStorageFromEnv();
      opts.enable_intra_vertical = vertical;
      opts.enable_inter_vertical = vertical;
      opts.enable_horizontal = horizontal;
      opts.enable_partition_function = true;
      opts.enable_configuration = true;
      opts.flip_phase_order = flip;
      auto report = StubbyOptimizer(opts).Optimize(pw->workload.plan);
      STUBBY_CHECK_OK(report.status());
      auto t = Execute(*pw, report->plan);
      STUBBY_CHECK_OK(t.status());
      if (keep_report) stubby_report = std::move(*report);
      return *t_base / *t;
    };

    double s_stubby = run(true, true, true);
    double s_vertical = run(true, false, false);
    double s_horizontal = run(false, true, false);
    char line[128];
    std::snprintf(line, sizeof(line), "%-6s %9.0fs | %8.2f %8.2f %8.2f\n",
                  abbr.c_str(), *t_base, s_stubby, s_vertical, s_horizontal);
    results[i].line = line;

    Json row = Json::Object();
    row["workload"] = abbr;
    row["baseline_sec"] = *t_base;
    row["stubby_speedup"] = s_stubby;
    row["vertical_speedup"] = s_vertical;
    row["horizontal_speedup"] = s_horizontal;
    row["stubby"] = ReportJson(stubby_report);
    results[i].row = std::move(row);
  });
  const double total_wall = SecondsSince(t0);

  Json rows_json = Json::Array();
  for (WorkloadRow& r : results) {
    std::fputs(r.line.c_str(), stdout);
    rows_json.Append(std::move(r.row));
  }
  std::printf("total: %.3fs at %d threads\n", total_wall, threads);

  Json doc = Json::Object();
  doc["bench"] = "fig11";
  doc["rows"] = rows;
  doc["flip_phase_order"] = flip;
  doc["threads"] = static_cast<uint64_t>(threads);
  doc["total_wall_sec"] = total_wall;
  doc["workloads"] = std::move(rows_json);
  WriteBenchJson("BENCH_FIG11.json", doc);
  return 0;
}

// YSmart comparator [11] (Section 7.3): rule-based vertical and horizontal
// packing applied aggressively to minimize the number of MapReduce jobs in
// the workflow (which can be suboptimal — e.g. packing the PJ workflow's
// post-processing jobs), combined with rule-based configuration settings.

#pragma once

#include "common/result.h"
#include "workflow/plan.h"

namespace stubby {

/// Rule-based job-count minimization: greedily applies intra-/inter-job
/// vertical packing and horizontal packing until none applies, then sets
/// rule-of-thumb configurations.
Result<Plan> YSmartOptimize(const Plan& plan);

}  // namespace stubby

#include "baselines/starfish.h"

#include "optimizer/stubby.h"

namespace stubby {

Result<Plan> StarfishOptimize(const Plan& plan,
                              const UnitSearchOptions& options) {
  StubbyOptions opts;
  opts.enable_intra_vertical = false;
  opts.enable_inter_vertical = false;
  opts.enable_horizontal = false;
  opts.enable_partition_function = false;
  opts.enable_configuration = true;
  opts.unit = options;
  StubbyOptimizer optimizer(opts);
  STUBBY_ASSIGN_OR_RETURN(OptimizeReport report, optimizer.Optimize(plan));
  return std::move(report.plan);
}

}  // namespace stubby

// Baseline (Section 7): "how an industrial-strength system (Pig) is used
// in production today" — all of Pig's rule-based optimizations enabled
// (notably multi-query horizontal packing of jobs sharing an input) and
// configuration parameters manually tuned with rules of thumb [3].

#pragma once

#include "common/result.h"
#include "workflow/plan.h"

namespace stubby {

/// Applies Pig-style rule-based optimization: horizontal packing whenever
/// sibling jobs share an input dataset, then rule-of-thumb configurations
/// on every job.
Result<Plan> PigBaseline(const Plan& plan);

/// Only the rule-of-thumb configuration step (no packing) — useful as the
/// unoptimized-configuration reference.
Result<Plan> RuleOfThumbConfigs(const Plan& plan);

}  // namespace stubby

// MRShare comparator [13] (Section 7.3): cost-based horizontal packing
// (scan sharing across jobs reading the same dataset) only — no vertical
// packing, no workflow awareness beyond siblings — with rule-based
// configuration settings.

#pragma once

#include "common/result.h"
#include "optimizer/search.h"
#include "workflow/plan.h"

namespace stubby {

/// Cost-based horizontal packing, then rule-of-thumb configurations.
Result<Plan> MRShareOptimize(const Plan& plan,
                             const UnitSearchOptions& options = {});

}  // namespace stubby

#include "baselines/mrshare.h"

#include "baselines/pig_baseline.h"
#include "optimizer/stubby.h"

namespace stubby {

Result<Plan> MRShareOptimize(const Plan& plan,
                             const UnitSearchOptions& options) {
  StubbyOptions opts;
  opts.enable_intra_vertical = false;
  opts.enable_inter_vertical = false;
  opts.enable_horizontal = true;
  opts.extended_horizontal = false;  // MRShare shares scans only
  opts.enable_partition_function = false;
  // The packing decision is cost-based, but configurations are rule-based:
  // disable the configuration subspace during the search...
  opts.enable_configuration = false;
  opts.unit = options;
  StubbyOptimizer optimizer(opts);
  STUBBY_ASSIGN_OR_RETURN(OptimizeReport report, optimizer.Optimize(plan));
  // ...and apply the rules of thumb afterwards.
  return RuleOfThumbConfigs(report.plan);
}

}  // namespace stubby

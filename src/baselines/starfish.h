// Starfish comparator [8] (Section 7.3): cost-based selection of
// configuration parameter settings for each job — no packing, no partition
// function changes.

#pragma once

#include "common/result.h"
#include "optimizer/search.h"
#include "workflow/plan.h"

namespace stubby {

/// Cost-based configuration-only optimization of every job in the plan.
Result<Plan> StarfishOptimize(const Plan& plan,
                              const UnitSearchOptions& options = {});

}  // namespace stubby

#include "baselines/pig_baseline.h"

#include "optimizer/configuration.h"
#include "optimizer/horizontal.h"

namespace stubby {

Result<Plan> RuleOfThumbConfigs(const Plan& plan) {
  Plan out = plan;
  for (const auto& [jid, job] : plan.jobs()) {
    JobConfig c = RuleOfThumbConfig(job, plan.cluster(), &plan);
    STUBBY_RETURN_NOT_OK(ApplyConfiguration(&out, jid, c));
  }
  return out;
}

Result<Plan> PigBaseline(const Plan& plan) {
  Plan out = plan;
  // Pig's multi-query optimization: pack jobs reading the same dataset,
  // whenever possible, with no cost-based check.
  HorizontalPacking packer(/*extended=*/false);
  bool changed = true;
  size_t guard = 0;
  while (changed && ++guard < 64) {
    changed = false;
    std::vector<std::string> all_jobs;
    for (const auto& [jid, job] : out.jobs()) all_jobs.push_back(jid);
    for (Application& app : packer.FindApplications(out, all_jobs)) {
      auto next = app.apply(out);
      if (next.ok()) {
        out = std::move(*next);
        changed = true;
        break;
      }
    }
  }
  return RuleOfThumbConfigs(out);
}

}  // namespace stubby

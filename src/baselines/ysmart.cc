#include "baselines/ysmart.h"

#include "baselines/pig_baseline.h"
#include "optimizer/horizontal.h"
#include "optimizer/vertical.h"

namespace stubby {

Result<Plan> YSmartOptimize(const Plan& plan) {
  Plan out = plan;
  IntraJobVerticalPacking intra;
  InterJobVerticalPacking inter;
  HorizontalPacking horizontal(/*extended=*/true);

  // Greedy to a fixed point: prefer transformations that remove whole jobs
  // (inter-job packing and horizontal packing), using intra-job packing as
  // an enabler.
  bool changed = true;
  size_t guard = 0;
  while (changed && ++guard < 128) {
    changed = false;
    std::vector<std::string> all_jobs;
    for (const auto& [jid, job] : out.jobs()) all_jobs.push_back(jid);
    for (const Transformation* t :
         {static_cast<const Transformation*>(&inter),
          static_cast<const Transformation*>(&intra),
          static_cast<const Transformation*>(&horizontal)}) {
      for (Application& app : t->FindApplications(out, all_jobs)) {
        auto next = app.apply(out);
        if (next.ok()) {
          out = std::move(*next);
          changed = true;
          break;
        }
      }
      if (changed) break;
    }
  }
  return RuleOfThumbConfigs(out);
}

}  // namespace stubby

#include "workloads/registry.h"

namespace stubby {

Result<Workload> MakeWorkload(const std::string& abbr,
                              const WorkloadOptions& options) {
  if (abbr == "IR") return MakeIR(options);
  if (abbr == "SN") return MakeSN(options);
  if (abbr == "LA") return MakeLA(options);
  if (abbr == "WG") return MakeWG(options);
  if (abbr == "BA") return MakeBA(options);
  if (abbr == "BR") return MakeBR(options);
  if (abbr == "PJ") return MakePJ(options);
  if (abbr == "US") return MakeUS(options);
  return Status::NotFound("unknown workload '" + abbr + "'");
}

std::vector<std::string> AllWorkloadAbbrs() {
  return {"IR", "SN", "LA", "WG", "BA", "BR", "PJ", "US"};
}

}  // namespace stubby

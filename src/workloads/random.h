// Seeded random workflow generator shared by the differential-equivalence
// harness (tests/differential_test.cc) and the optimality-gap bench
// (bench/bench_optgap.cc): chains, siblings, diamonds, and cross-relation
// joins of map-only and grouped-aggregate jobs over one or two small base
// relations. Pure function of (seed, options).

#pragma once

#include <cstdint>

#include "common/result.h"
#include "workloads/builder.h"

namespace stubby {

struct RandomWorkflowOptions {
  /// When set, the base relations' value column (and appended constant
  /// columns) carry inexact doubles (integer/7.0) instead of integers.
  /// Sums and averages over them are then summation-order dependent, so
  /// optimized plans match the unoptimized oracle only under the
  /// tolerance-aware comparison (RowsApproxEqual), not bit-for-bit. Group
  /// and filter key columns stay integer-valued either way, keeping
  /// grouping exact.
  bool float_values = false;
};

/// Random 1–4 job workflow over one integer base: chains and siblings of
/// map-only jobs (filter / project / append-const stages) and annotated
/// group-by aggregation jobs; half the seeds append a diamond (one producer
/// feeding two filtered consumers whose outputs rejoin in a multi-input
/// aggregate), half add a second base relation joined in by a two-branch
/// shuffle, and half add a selective tagged inner join (a narrow filtered
/// build relation against a wider probe relation, join-annotated so the
/// bloom-transfer transformation applies). Pure function of (seed,
/// options).
Result<WorkflowFactory> MakeRandomWorkflow(
    uint64_t seed, const RandomWorkflowOptions& options = {});

}  // namespace stubby

// Seeded synthetic data generators standing in for the paper's datasets
// (Table 1): a random document corpus (IR), power-law coauthorship pairs
// (SN), the Pavlo et al. uservisits/pageranks data (LA), a power-law web
// graph (WG), TPC-H-like lineitem/part tables (BA, BR, PJ), and generic
// user records (US). All generation flows through Rng for reproducibility.

#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mr/schema.h"
#include "mr/tuple.h"

namespace stubby {

/// Rows plus their schema.
struct GeneratedData {
  Schema schema;
  std::vector<Row> rows;
};

/// IR: <D(docid), W(wordid)> occurrences; word frequencies are Zipfian.
GeneratedData GenDocWords(int rows, int num_docs, int vocab, double skew,
                          Rng* rng);

/// SN: <P(paperid), A(authorid)> with power-law author productivity.
GeneratedData GenPaperAuthors(int rows, int papers, int authors, double skew,
                              Rng* rng);

/// LA: uservisits <DT(day), U(urlid), AD(ad revenue), US(userid)>.
GeneratedData GenUserVisits(int rows, int days, int urls, int users,
                            Rng* rng);

/// LA: pageranks <U(urlid), K(rank)>.
GeneratedData GenPageRanks(int urls, Rng* rng);

/// WG: adjacency <P(src page), DST(dst page)>, power-law in-degree.
GeneratedData GenAdjacency(int rows, int pages, double skew, Rng* rng);

/// WG: initial ranks <P(page), RNK>.
GeneratedData GenRanks(int pages, Rng* rng);

/// BA/BR/PJ: lineitem <O(order), P(part), S(supplier), Q(qty), EP(price),
/// Z(ship zip)>.
GeneratedData GenLineitem(int rows, int orders, int parts, int supps,
                          Rng* rng);

/// BA: part <P(part), B(brand), CT(container)>.
GeneratedData GenPart(int parts, Rng* rng);

/// PJ: metrics <G(group), X, Y>.
GeneratedData GenMetrics(int rows, int groups, Rng* rng);

/// US: user records <AG(age), U(userid), M(metric)>.
GeneratedData GenUserRecords(int rows, int users, Rng* rng);

}  // namespace stubby

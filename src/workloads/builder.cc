#include "workloads/builder.h"

namespace stubby {

Status WorkflowFactory::AddBase(const std::string& id, const Schema& schema,
                                const Layout& layout, int partitions,
                                std::vector<Row> rows,
                                uint64_t logical_bytes) {
  STUBBY_ASSIGN_OR_RETURN(
      DatasetPtr ds,
      StoredDataset::FromRows(id, schema, layout, std::move(rows),
                              partitions));
  double scale = ds->raw_bytes() > 0
                     ? static_cast<double>(logical_bytes) /
                           static_cast<double>(ds->raw_bytes())
                     : 1.0;
  ds->set_logical_scale(scale);

  DatasetVertex v;
  v.id = id;
  v.schema = schema;
  v.layout = layout;
  v.is_base_input = true;
  v.annotation.schema = schema;
  v.annotation.layout = layout;
  v.annotation.num_records = ds->logical_rows();
  v.annotation.bytes = ds->logical_bytes();
  v.annotation.num_partitions = static_cast<int>(ds->num_partitions());
  STUBBY_RETURN_NOT_OK(plan_.AddDataset(std::move(v)));
  STUBBY_RETURN_NOT_OK(dfs_.Put(std::move(ds)));
  return Status::OK();
}

Status WorkflowFactory::AddDataset(const std::string& id,
                                   const Schema& schema,
                                   bool workflow_output) {
  DatasetVertex v;
  v.id = id;
  v.schema = schema;
  v.is_workflow_output = workflow_output;
  v.annotation.schema = schema;
  return plan_.AddDataset(std::move(v));
}

Status WorkflowFactory::AddJob(JobDef def) {
  Branch b;
  b.tag = def.id;
  b.inputs = std::move(def.inputs);
  b.map_output_schema = std::move(def.map_output_schema);
  b.reduce_stages = std::move(def.reduce_stages);
  b.combiner = std::move(def.combiner);
  b.output_dataset = def.output;
  if (!b.map_only()) {
    if (def.partition) {
      b.partition = std::move(*def.partition);
    } else {
      std::vector<std::string> key = b.GroupFields();
      b.partition = PartitionSpec::DefaultFor(key);
      for (const auto& f : def.sort_extra) {
        b.partition.sort_fields.push_back(f);
      }
    }
  }
  b.annotations.schema = std::move(def.schema_ann);
  b.annotations.filter = std::move(def.filter_ann);
  b.annotations.join = std::move(def.join_ann);

  JobVertex job;
  job.id = def.id;
  job.branches = {std::move(b)};
  job.config = def.config;
  // Keep the output dataset's planned layout in sync with the producing
  // branch (transformations maintain this invariant afterwards).
  auto dv = plan_.GetMutableDataset(job.branches[0].output_dataset);
  if (dv.ok()) {
    (*dv)->layout =
        DeriveOutputLayout(job.branches[0], job.config, (*dv)->schema);
    (*dv)->annotation.layout = (*dv)->layout;
  }
  return plan_.AddJob(std::move(job));
}

BranchInput In(const std::string& dataset, std::vector<Stage> stages) {
  BranchInput in;
  in.dataset_id = dataset;
  in.map_stages = std::move(stages);
  return in;
}

}  // namespace stubby

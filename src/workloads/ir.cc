// Information Retrieval (Table 1: 264 GB): the TF-IDF workflow of Section
// 7.1. Three jobs over a <docid, wordid> corpus partitioned on the
// document id:
//   J1  word frequency per (document, word)        — group by {D,W}
//   J2  total words per document (carried per row) — group by {D}
//   J3  document counts per word and TF-IDF weight — group by {W}
// J2's grouping {D} is a prefix of J1's {D,W}, so intra-job vertical
// packing applies to J2 and inter-job packing then folds J1+J2 into one
// job — the paper's vertical-packing showcase (and the Figure 14 unit).

#include <cmath>

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {
constexpr uint64_t kGB = 1ull << 30;
}

Result<Workload> MakeIR(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 1);
  WorkflowFactory f(options.cluster);

  const int rows = options.sample_rows;
  GeneratedData corpus =
      GenDocWords(rows, std::max(50, rows / 20), 5000, 1.1, &rng);

  Layout base_layout;
  PartitionSpec base_part;
  base_part.partition_fields = {"D"};
  base_part.sort_fields = {"D"};
  base_layout.partitioning = base_part;
  STUBBY_RETURN_NOT_OK(f.AddBase("D0", corpus.schema, base_layout,
                                 /*partitions=*/60, std::move(corpus.rows),
                                 264 * kGB));

  const Schema kD0({"D", "W"});
  const Schema kWithOne({"D", "W", "C"});
  const Schema kD1({"D", "W", "F"});
  const Schema kD2({"D", "W", "F", "T"});
  const Schema kD3({"W", "D", "TFIDF"});

  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", kD1));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", kD2));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D3", kD3, /*workflow_output=*/true));

  // J1: word frequency per (document, word).
  {
    WorkflowFactory::JobDef j;
    j.id = "J1";
    j.inputs = {In("D0", {Stage::Map(AppendConstMap("emit_one", kD0, "C",
                                                    Value(int64_t{1}),
                                                    /*cpu=*/0.5))})};
    j.map_output_schema = kWithOne;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("count_word_freq", kWithOne, {"D", "W"},
                  {{"C", AggOp::kSum, "F"}}, /*cpu=*/0.8),
        {"D", "W"})};
    j.combiner = AggCombine("sum_counts", kWithOne, {"D", "W"},
                            {{"C", AggOp::kSum, "C"}});
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"D"};
    sa.v1 = FieldSet{"W"};
    sa.k2 = FieldSet{"D", "W"};
    sa.v2 = FieldSet{"C"};
    sa.k3 = FieldSet{"D", "W"};
    sa.v3 = FieldSet{"F"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J2: total words per document, carried onto every (D, W, F) row.
  {
    auto total_words = std::make_shared<LambdaReduceFn>(
        "total_words_per_doc", kD2,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          (void)key;
          double total = 0;
          for (const Row& r : group) total += r[2].AsDouble();
          for (const Row& r : group) {
            Row row = r;
            row.Append(Value(total));
            out->Emit(std::move(row));
          }
        },
        /*cpu=*/1.0);
    WorkflowFactory::JobDef j;
    j.id = "J2";
    j.inputs = {In("D1", {})};
    j.map_output_schema = kD1;
    j.reduce_stages = {Stage::Reduce(total_words, {"D"})};
    j.sort_extra = {"W"};
    j.output = "D2";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"D", "W"};
    sa.v1 = FieldSet{"F"};
    sa.k2 = FieldSet{"D"};
    sa.v2 = FieldSet{"W", "F"};
    sa.k3 = FieldSet{"D", "W"};
    sa.v3 = FieldSet{"F", "T"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J3: number of documents containing each word + the TF-IDF weight.
  {
    auto tfidf = std::make_shared<LambdaReduceFn>(
        "tfidf", kD3,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          double n_docs_with_word = static_cast<double>(group.size());
          double idf = std::log(1.0e6 / (1.0 + n_docs_with_word));
          for (const Row& r : group) {
            double tf = r[2].AsDouble() / std::max(1.0, r[3].AsDouble());
            out->Emit(Row{key[0], r[0], tf * idf});
          }
        },
        /*cpu=*/1.6);
    WorkflowFactory::JobDef j;
    j.id = "J3";
    j.inputs = {In("D2", {})};
    j.map_output_schema = kD2;
    j.reduce_stages = {Stage::Reduce(tfidf, {"W"})};
    j.output = "D3";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"D", "W"};
    sa.v1 = FieldSet{"F", "T"};
    sa.k2 = FieldSet{"W"};
    sa.v2 = FieldSet{"D", "F", "T"};
    sa.k3 = FieldSet{"W"};
    sa.v3 = FieldSet{"D", "TFIDF"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "IR";
  w.name = "Information Retrieval";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 264 * kGB;
  return w;
}

}  // namespace stubby

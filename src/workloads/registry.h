// Workload registry: the eight MapReduce workflows of Table 1 (Section
// 7.1), each an annotated plan plus its base data loaded into a DFS.

#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/dfs.h"
#include "mr/cluster.h"
#include "workflow/plan.h"

namespace stubby {

/// One evaluation workload.
struct Workload {
  std::string abbr;  ///< "IR", "SN", ...
  std::string name;  ///< "Information Retrieval", ...
  Plan plan;         ///< annotated workflow (profile annotations not yet set)
  Dfs dfs;           ///< base inputs (sample rows, logically scaled)
  uint64_t dataset_logical_bytes = 0;  ///< Table 1 column
};

/// Construction knobs shared by all workloads.
struct WorkloadOptions {
  /// Physical sample rows for the largest base dataset; everything scales
  /// from this, so benches trade fidelity for speed with one knob.
  int sample_rows = 30000;
  uint64_t seed = 7;
  ClusterSpec cluster;
};

// The eight workflows of Table 1.
Result<Workload> MakeIR(const WorkloadOptions& options);  ///< TF-IDF, 3 jobs
Result<Workload> MakeSN(const WorkloadOptions& options);  ///< coauthors, 4 jobs
Result<Workload> MakeLA(const WorkloadOptions& options);  ///< log analysis, 4 jobs
Result<Workload> MakeWG(const WorkloadOptions& options);  ///< PageRank, 4 jobs
Result<Workload> MakeBA(const WorkloadOptions& options);  ///< TPC-H Q17, 4 jobs
Result<Workload> MakeBR(const WorkloadOptions& options);  ///< report gen, 7 jobs
Result<Workload> MakePJ(const WorkloadOptions& options);  ///< post-processing, 3 jobs
Result<Workload> MakeUS(const WorkloadOptions& options);  ///< logical splits, 3 jobs

/// Lookup by abbreviation ("IR".."US").
Result<Workload> MakeWorkload(const std::string& abbr,
                              const WorkloadOptions& options = {});

/// All abbreviations in Table 1 order.
std::vector<std::string> AllWorkloadAbbrs();

}  // namespace stubby

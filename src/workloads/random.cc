#include "workloads/random.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {

constexpr uint64_t kGB = 1ull << 30;

struct JobSpec {
  WorkflowFactory::JobDef def;
  std::string output_id;
  Schema output_schema;
  bool consumed = false;  ///< some later job reads output_id
};

}  // namespace

Result<WorkflowFactory> MakeRandomWorkflow(
    uint64_t seed, const RandomWorkflowOptions& options) {
  ClusterSpec cluster;
  WorkflowFactory f(cluster);
  Rng rng(seed * 2654435761ull + 17);

  // Data values for the V column and appended constants: integers, or — in
  // float mode — sevenths (inexact in binary, so aggregation order shows).
  // Both modes draw once from the rng per value, keeping the job topology
  // of a seed identical across modes.
  auto val = [&](int lo, int hi) -> Value {
    const auto raw = rng.NextInt(lo, hi);
    if (options.float_values) {
      return Value(static_cast<double>(raw * 7 + (raw % 5)) / 7.0);
    }
    return Value(raw);
  };

  Schema base_schema({"K", "G", "V"});
  const int rows = 600 + static_cast<int>(rng.NextInt(0, 600));
  std::vector<Row> data;
  data.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    data.push_back(
        Row{Value(rng.NextInt(0, 19)), Value(rng.NextInt(0, 9)), val(0, 99)});
  }
  STUBBY_RETURN_NOT_OK(
      f.AddBase("BASE", base_schema, Layout{}, 4, std::move(data), 2 * kGB));

  struct Avail {
    std::string id;
    Schema schema;
    int spec_index;  ///< producing JobSpec, or -1 for the base
  };
  std::vector<Avail> avail = {{"BASE", base_schema, -1}};
  std::vector<JobSpec> specs;

  const int num_jobs = 1 + static_cast<int>(rng.NextInt(0, 3));
  int const_counter = 0;
  for (int j = 0; j < num_jobs; ++j) {
    // Chain off the newest dataset most of the time; occasionally branch
    // off an earlier one to get sibling consumers (horizontal candidates).
    size_t pick = avail.size() - 1;
    if (avail.size() > 1 && rng.NextInt(0, 2) == 0) {
      pick = static_cast<size_t>(rng.NextInt(0, avail.size() - 1));
    }
    Avail& in = avail[pick];
    if (in.spec_index >= 0) specs[in.spec_index].consumed = true;

    Schema cur = in.schema;
    std::vector<Stage> stages;
    const int num_stages = static_cast<int>(rng.NextInt(0, 2));
    for (int s = 0; s < num_stages; ++s) {
      const std::string tag =
          "j" + std::to_string(j) + "s" + std::to_string(s);
      switch (rng.NextInt(0, 2)) {
        case 0: {  // filter on a random field over an integer range
          const auto& field = cur.fields()[static_cast<size_t>(
              rng.NextInt(0, cur.fields().size() - 1))];
          const double lo = static_cast<double>(rng.NextInt(0, 30));
          const double hi = lo + static_cast<double>(rng.NextInt(10, 80));
          stages.push_back(
              Stage::Map(FilterRangeMap("filter_" + tag, cur, field, lo, hi)));
          break;
        }
        case 1: {  // project onto a random subset (≥ 2 fields, order kept)
          std::vector<std::string> keep;
          for (const std::string& field : cur.fields()) {
            if (rng.NextInt(0, 1) == 0) keep.push_back(field);
          }
          for (size_t k = 0; keep.size() < 2 && k < cur.fields().size(); ++k) {
            const std::string& field = cur.fields()[k];
            if (std::find(keep.begin(), keep.end(), field) == keep.end()) {
              keep.push_back(field);
            }
          }
          std::sort(keep.begin(), keep.end(), [&](const auto& a,
                                                  const auto& b) {
            return cur.IndexOf(a) < cur.IndexOf(b);
          });
          stages.push_back(Stage::Map(ProjectMap("project_" + tag, cur, keep)));
          cur = Schema(keep);
          break;
        }
        default: {  // append a constant column (integer or float mode)
          const std::string field = "C" + std::to_string(const_counter++);
          std::vector<std::string> fields = cur.fields();
          stages.push_back(Stage::Map(
              AppendConstMap("append_" + tag, cur, field, val(0, 5))));
          fields.push_back(field);
          cur = Schema(fields);
          break;
        }
      }
    }

    JobSpec spec;
    spec.def.id = "J" + std::to_string(j);
    spec.def.inputs = {In(in.id, std::move(stages))};
    spec.def.map_output_schema = cur;
    spec.output_id = "D" + std::to_string(j);

    const bool reduce = cur.fields().size() >= 2 && rng.NextInt(0, 2) != 0;
    if (reduce) {
      const std::string group = cur.fields()[0];
      std::vector<AggSpec> aggs;
      const int num_aggs = 1 + static_cast<int>(rng.NextInt(0, 1));
      for (int a = 0; a < num_aggs; ++a) {
        const auto& field = cur.fields()[static_cast<size_t>(
            rng.NextInt(1, cur.fields().size() - 1))];
        static const AggOp kOps[] = {AggOp::kSum, AggOp::kMax, AggOp::kMin,
                                     AggOp::kCount, AggOp::kAvg};
        aggs.push_back({field, kOps[rng.NextInt(0, 4)],
                        "A" + std::to_string(j) + "_" + std::to_string(a)});
      }
      spec.output_schema = AggOutputSchema({group}, aggs);
      spec.def.reduce_stages = {Stage::Reduce(
          AggReduce("agg_j" + std::to_string(j), cur, {group}, aggs),
          {group})};
      SchemaAnnotation sa;
      sa.k1 = FieldSet{group};
      sa.k2 = FieldSet{group};
      sa.k3 = FieldSet{group};
      FieldSet rest;
      for (const std::string& field : cur.fields()) {
        if (field != group) rest.insert(field);
      }
      sa.v1 = rest;
      sa.v2 = rest;
      FieldSet produced;
      for (const AggSpec& a : aggs) produced.insert(a.out_field);
      sa.v3 = produced;
      spec.def.schema_ann = sa;
    } else {
      spec.output_schema = cur;
    }
    spec.def.output = spec.output_id;
    avail.push_back({spec.output_id, spec.output_schema,
                     static_cast<int>(specs.size())});
    specs.push_back(std::move(spec));
  }

  // Diamond sharing: one producer feeds two filtered consumers whose
  // outputs a rejoin job reads as two branch inputs of one branch.
  // Vertical packing of the diamond tees the shared stream (a tee-stage
  // pipeline is ineligible for the batch path, exercising its row
  // fallback), and the rejoin exercises multi-input shuffle merging.
  if (rng.NextInt(0, 1) == 0) {
    size_t pick = static_cast<size_t>(rng.NextInt(0, avail.size() - 1));
    Avail& p = avail[pick];
    if (p.spec_index >= 0) specs[p.spec_index].consumed = true;
    const Schema ps = p.schema;
    std::vector<std::string> arms;
    for (int arm = 0; arm < 2; ++arm) {
      const std::string tag = "d" + std::to_string(arm);
      const auto& field = ps.fields()[static_cast<size_t>(
          rng.NextInt(0, ps.fields().size() - 1))];
      const double lo = static_cast<double>(rng.NextInt(0, 20));
      const double hi = lo + static_cast<double>(rng.NextInt(30, 90));
      JobSpec spec;
      spec.def.id = "JD" + std::to_string(arm);
      spec.def.inputs = {In(p.id, {Stage::Map(FilterRangeMap(
                                "filter_" + tag, ps, field, lo, hi))})};
      spec.def.map_output_schema = ps;
      spec.output_id = "DD" + std::to_string(arm);
      spec.output_schema = ps;
      spec.def.output = spec.output_id;
      spec.consumed = true;  // the rejoin below reads it
      arms.push_back(spec.output_id);
      specs.push_back(std::move(spec));
    }
    const std::string group = ps.fields()[0];
    std::vector<AggSpec> aggs = {{ps.fields()[1], AggOp::kSum, "DS"}};
    JobSpec spec;
    spec.def.id = "JDj";
    spec.def.inputs = {In(arms[0], {}), In(arms[1], {})};
    spec.def.map_output_schema = ps;
    spec.output_schema = AggOutputSchema({group}, aggs);
    spec.def.reduce_stages = {Stage::Reduce(
        AggReduce("agg_dj", ps, {group}, aggs), {group})};
    SchemaAnnotation sa;
    sa.k1 = FieldSet{group};
    sa.k2 = FieldSet{group};
    sa.k3 = FieldSet{group};
    FieldSet rest;
    for (const std::string& field : ps.fields()) {
      if (field != group) rest.insert(field);
    }
    sa.v1 = rest;
    sa.v2 = rest;
    sa.v3 = FieldSet{"DS"};
    spec.def.schema_ann = sa;
    spec.output_id = "DDJ";
    spec.def.output = spec.output_id;
    specs.push_back(std::move(spec));
  }

  // Multi-input join: half the seeds add a second base relation and a job
  // that reads BOTH bases as branch inputs of one shuffle (a filtered arm
  // over BASE merged with an unfiltered arm over BASE2) into a grouped
  // aggregate — the cross-relation join shape stubbyd traces replay, which
  // the single-base chains above never produce.
  if (rng.NextInt(0, 1) == 0) {
    const int rows2 = 300 + static_cast<int>(rng.NextInt(0, 300));
    std::vector<Row> data2;
    data2.reserve(static_cast<size_t>(rows2));
    for (int i = 0; i < rows2; ++i) {
      data2.push_back(Row{Value(rng.NextInt(0, 19)), Value(rng.NextInt(0, 9)),
                          val(0, 99)});
    }
    STUBBY_RETURN_NOT_OK(f.AddBase("BASE2", base_schema, Layout{}, 4,
                                   std::move(data2), kGB));
    const auto& field = base_schema.fields()[static_cast<size_t>(
        rng.NextInt(0, base_schema.fields().size() - 1))];
    const double lo = static_cast<double>(rng.NextInt(0, 20));
    const double hi = lo + static_cast<double>(rng.NextInt(30, 90));
    const std::string group = base_schema.fields()[0];
    std::vector<AggSpec> aggs = {{base_schema.fields()[2], AggOp::kSum,
                                  "JS"}};
    JobSpec spec;
    spec.def.id = "JX";
    spec.def.inputs = {In("BASE", {Stage::Map(FilterRangeMap(
                              "filter_jx", base_schema, field, lo, hi))}),
                       In("BASE2", {})};
    spec.def.map_output_schema = base_schema;
    spec.output_schema = AggOutputSchema({group}, aggs);
    spec.def.reduce_stages = {Stage::Reduce(
        AggReduce("agg_jx", base_schema, {group}, aggs), {group})};
    SchemaAnnotation sa;
    sa.k1 = FieldSet{group};
    sa.k2 = FieldSet{group};
    sa.k3 = FieldSet{group};
    FieldSet rest;
    for (const std::string& bf : base_schema.fields()) {
      if (bf != group) rest.insert(bf);
    }
    sa.v1 = rest;
    sa.v2 = rest;
    sa.v3 = FieldSet{"JS"};
    spec.def.schema_ann = sa;
    spec.output_id = "DJX";
    spec.def.output = spec.output_id;
    specs.push_back(std::move(spec));
  }

  // Selective inner join: half the seeds add a narrow build relation R and
  // a wider probe relation S, tagged and inner-joined on K by one
  // InnerJoinReduce. R's arm filters K to a 20-wide window over a 200-key
  // space, so most S rows have no join partner — the low-selectivity shape
  // the bloom-transfer transformation targets. The JoinAnnotation marks
  // both inputs filterable; the FilterAnnotation on the group key lets the
  // transform bound the probe pass fraction from a profiled histogram.
  // (Appended after every older shape so existing seeds keep their rng
  // draw sequence, hence their exact topology and data.)
  if (rng.NextInt(0, 1) == 0) {
    const int rows_r = 300 + static_cast<int>(rng.NextInt(0, 300));
    std::vector<Row> data_r;
    data_r.reserve(static_cast<size_t>(rows_r));
    for (int i = 0; i < rows_r; ++i) {
      data_r.push_back(Row{Value(rng.NextInt(0, 199)),
                           Value(rng.NextInt(0, 9)), val(0, 99)});
    }
    STUBBY_RETURN_NOT_OK(f.AddBase("BASER", base_schema, Layout{}, 4,
                                   std::move(data_r), kGB));
    const int rows_s = 600 + static_cast<int>(rng.NextInt(0, 600));
    std::vector<Row> data_s;
    data_s.reserve(static_cast<size_t>(rows_s));
    for (int i = 0; i < rows_s; ++i) {
      data_s.push_back(Row{Value(rng.NextInt(0, 199)),
                           Value(rng.NextInt(0, 9)), val(0, 99)});
    }
    STUBBY_RETURN_NOT_OK(f.AddBase("BASES", base_schema, Layout{}, 4,
                                   std::move(data_s), 2 * kGB));

    const double lo = static_cast<double>(rng.NextInt(0, 180));
    const double hi = lo + 20.0;
    // Tags stay exact integers even in float mode: the join's tag-presence
    // test (like grouping) must not depend on summation order.
    Schema tagged({"K", "G", "V", "T"});
    std::vector<AggSpec> aggs = {{"V", AggOp::kSum, "BS"}};
    JobSpec spec;
    spec.def.id = "JB";
    spec.def.inputs = {
        In("BASER",
           {Stage::Map(
                FilterRangeMap("filter_jb", base_schema, "K", lo, hi)),
            Stage::Map(AppendConstMap("tag_jb0", base_schema, "T",
                                      Value(static_cast<int64_t>(0))))}),
        In("BASES",
           {Stage::Map(AppendConstMap("tag_jb1", base_schema, "T",
                                      Value(static_cast<int64_t>(1))))})};
    spec.def.map_output_schema = tagged;
    spec.output_schema = AggOutputSchema({"K"}, aggs);
    spec.def.reduce_stages = {Stage::Reduce(
        InnerJoinReduce("join_jb", tagged, {"K"}, "T", {0, 1}, aggs),
        {"K"})};
    JoinAnnotation ja;
    ja.filterable_inputs = {0, 1};
    spec.def.join_ann = ja;
    FilterAnnotation fa;
    fa.field = "K";
    fa.lo = lo;
    fa.hi = hi;
    spec.def.filter_ann = fa;
    spec.output_id = "DJB";
    spec.def.output = spec.output_id;
    specs.push_back(std::move(spec));
  }

  // Unconsumed outputs are the workflow terminals (the last job's always is).
  for (JobSpec& spec : specs) {
    STUBBY_RETURN_NOT_OK(
        f.AddDataset(spec.output_id, spec.output_schema, !spec.consumed));
  }
  for (JobSpec& spec : specs) {
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(spec.def)));
  }
  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  return f;
}

}  // namespace stubby

// Social Network Analysis (Table 1: 267 GB): find the top-20 coauthor
// pairs (Section 7.1). Input <paperid, authorid> pairs from a power-law
// distribution, partitioned (and ordered) on {paperid}:
//   J1  coauthor pairs per paper        — group by {P}
//   J2  count each coauthor pair        — group by {A1,A2}
//   J3  sample counts, emit split-point candidates (map-only)
//   J4  total-order sort by count via range partitioning on J3's splits
// J1's grouping is provided by the base layout (none-to-one intra-job
// vertical packing), after which inter-job packing folds J1 into J2; J3
// can fold into the packed job's reduce side with a tee of its input.

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {
constexpr uint64_t kGB = 1ull << 30;
}

Result<Workload> MakeSN(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 2);
  WorkflowFactory f(options.cluster);

  const int rows = options.sample_rows;
  GeneratedData pairs = GenPaperAuthors(rows, std::max(100, rows / 4),
                                        std::max(50, rows / 30), 1.3, &rng);

  Layout base_layout;
  PartitionSpec base_part;
  base_part.partition_fields = {"P"};
  base_part.sort_fields = {"P"};
  base_layout.partitioning = base_part;
  base_layout.order_fields = {"P"};
  STUBBY_RETURN_NOT_OK(f.AddBase("D0", pairs.schema, base_layout,
                                 /*partitions=*/60, std::move(pairs.rows),
                                 267 * kGB));

  const Schema kD0({"P", "A"});
  const Schema kD1({"A1", "A2"});
  const Schema kWithOne({"A1", "A2", "C"});
  const Schema kD2({"A1", "A2", "CNT"});
  const Schema kD3({"CNT"});

  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", kD1));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", kD2));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D3", kD3));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D4", kD2, /*workflow_output=*/true));

  // J1: emit all coauthor pairs of each paper.
  {
    auto pairs_reduce = std::make_shared<LambdaReduceFn>(
        "coauthor_pairs", kD1,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          (void)key;
          // Bounded pair expansion: huge author lists are truncated like a
          // real implementation would.
          size_t n = std::min<size_t>(group.size(), 64);
          for (size_t i = 0; i < n; ++i) {
            for (size_t j = i + 1; j < n; ++j) {
              int64_t a = group[i][1].AsInt();
              int64_t b = group[j][1].AsInt();
              if (a == b) continue;
              out->Emit(Row{std::min(a, b), std::max(a, b)});
            }
          }
        },
        /*cpu=*/1.4);
    WorkflowFactory::JobDef j;
    j.id = "J1";
    j.inputs = {In("D0", {})};
    j.map_output_schema = kD0;
    j.reduce_stages = {Stage::Reduce(pairs_reduce, {"P"})};
    j.sort_extra = {"A"};
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"P"};
    sa.v1 = FieldSet{"A"};
    sa.k2 = FieldSet{"P"};
    sa.v2 = FieldSet{"A"};
    sa.k3 = FieldSet{"A1", "A2"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J2: count occurrences of each coauthor pair.
  {
    WorkflowFactory::JobDef j;
    j.id = "J2";
    j.inputs = {In("D1", {Stage::Map(AppendConstMap(
                     "emit_one", kD1, "C", Value(int64_t{1}), 0.4))})};
    j.map_output_schema = kWithOne;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("count_pairs", kWithOne, {"A1", "A2"},
                  {{"C", AggOp::kSum, "CNT"}}, /*cpu=*/0.8),
        {"A1", "A2"})};
    j.combiner = AggCombine("sum_counts", kWithOne, {"A1", "A2"},
                            {{"C", AggOp::kSum, "C"}});
    j.output = "D2";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"A1", "A2"};
    sa.k2 = FieldSet{"A1", "A2"};
    sa.v2 = FieldSet{"C"};
    sa.k3 = FieldSet{"A1", "A2"};
    sa.v3 = FieldSet{"CNT"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J3: sample pair counts into split-point candidates (map-only).
  {
    WorkflowFactory::JobDef j;
    j.id = "J3";
    j.inputs = {In("D2", {Stage::Map(SampleMap("sample_counts", kD2,
                                               /*every_n=*/16, {"CNT"}))})};
    j.map_output_schema = kD3;
    j.output = "D3";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"A1", "A2"};
    sa.v1 = FieldSet{"CNT"};
    sa.k3 = FieldSet{"CNT"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J4: total-order sort of the pairs by count (split points from J3).
  {
    auto emit_sorted = std::make_shared<LambdaReduceFn>(
        "emit_sorted", kD2,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          (void)key;
          for (const Row& r : group) out->Emit(r);
        },
        /*cpu=*/0.5);
    WorkflowFactory::JobDef j;
    j.id = "J4";
    j.inputs = {In("D2", {})};
    j.map_output_schema = kD2;
    j.reduce_stages = {Stage::Reduce(emit_sorted, {"CNT"})};
    PartitionSpec part;
    part.type = PartitionType::kRange;
    part.partition_fields = {"CNT"};
    part.sort_fields = {"CNT"};
    part.split_points_from = "D3";
    j.partition = part;
    j.config.num_reduce_tasks = 20;
    j.output = "D4";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"A1", "A2"};
    sa.v1 = FieldSet{"CNT"};
    sa.k2 = FieldSet{"CNT"};
    sa.v2 = FieldSet{"A1", "A2"};
    sa.k3 = FieldSet{"A1", "A2"};
    sa.v3 = FieldSet{"CNT"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "SN";
  w.name = "Social Network Analysis";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 267 * kGB;
  return w;
}

}  // namespace stubby

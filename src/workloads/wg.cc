// Web Graph Analysis (Table 1: 255 GB): two PageRank iterations, each the
// two-job pattern of Section 7.1 — a join of the adjacency list with the
// current ranks, then the rank update. The rank-update computation
// dominates (so vertical packing offers limited benefit, as the paper
// observes for WG); the gains here come mostly from cost-based
// configuration.

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {

constexpr uint64_t kGB = 1ull << 30;

const Schema kAdj({"P", "DST"});
const Schema kRanks({"P", "RNK"});
// Tagged union for the join: TAG=0 carries the rank row.
const Schema kJoin({"P", "TAG", "DST", "RNK"});
const Schema kContrib({"T", "CB"});

/// Adds one PageRank iteration: `join_id` joins `ranks_in` with the
/// adjacency list and emits per-target contributions; `update_id` computes
/// the new ranks into `ranks_out`.
Status AddIteration(WorkflowFactory* f, const std::string& join_id,
                    const std::string& update_id,
                    const std::string& ranks_in, const std::string& contrib,
                    const std::string& ranks_out) {
  auto adj_side = std::make_shared<LambdaMapFn>(
      "tag_adjacency", kAdj, kJoin,
      [](const Row& r, Emitter* out) {
        out->Emit(Row{r[0], int64_t{1}, r[1], 0.0});
      },
      /*cpu=*/0.4);
  auto rank_side = std::make_shared<LambdaMapFn>(
      "tag_ranks", kRanks, kJoin,
      [](const Row& r, Emitter* out) {
        out->Emit(Row{r[0], int64_t{0}, int64_t{-1}, r[1]});
      },
      /*cpu=*/0.4);
  auto contribute = std::make_shared<LambdaReduceFn>(
      "emit_contributions", kContrib,
      [](const Row& key, const std::vector<Row>& group, Emitter* out) {
        (void)key;
        double rank = 0.0;
        int64_t out_degree = 0;
        for (const Row& r : group) {
          if (r[1].AsInt() == 0) {
            rank = r[3].AsDouble();
          } else {
            ++out_degree;
          }
        }
        if (out_degree == 0) return;
        double share = rank / static_cast<double>(out_degree);
        for (const Row& r : group) {
          if (r[1].AsInt() == 1) out->Emit(Row{r[2], share});
        }
      },
      /*cpu=*/1.1);
  {
    WorkflowFactory::JobDef j;
    j.id = join_id;
    j.inputs = {In("ADJ", {Stage::Map(adj_side)}),
                In(ranks_in, {Stage::Map(rank_side)})};
    j.map_output_schema = kJoin;
    j.reduce_stages = {Stage::Reduce(contribute, {"P"})};
    j.sort_extra = {"TAG"};
    j.output = contrib;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"P"};
    sa.v1 = FieldSet{"DST", "RNK"};
    sa.k2 = FieldSet{"P"};
    sa.v2 = FieldSet{"TAG", "DST", "RNK"};
    sa.k3 = FieldSet{"T"};
    sa.v3 = FieldSet{"CB"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f->AddJob(std::move(j)));
  }
  {
    // Rank update: the computation that dominates the workflow.
    auto update = std::make_shared<LambdaReduceFn>(
        "update_rank", kRanks,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          double sum = 0.0;
          for (const Row& r : group) sum += r[1].AsDouble();
          out->Emit(Row{key[0], 0.15 + 0.85 * sum});
        },
        /*cpu=*/3.0);
    WorkflowFactory::JobDef j;
    j.id = update_id;
    j.inputs = {In(contrib, {})};
    j.map_output_schema = kContrib;
    j.reduce_stages = {Stage::Reduce(update, {"T"})};
    j.output = ranks_out;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"T"};
    sa.v1 = FieldSet{"CB"};
    sa.k2 = FieldSet{"T"};
    sa.v2 = FieldSet{"CB"};
    sa.k3 = FieldSet{"P"};
    sa.v3 = FieldSet{"RNK"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f->AddJob(std::move(j)));
  }
  return Status::OK();
}

}  // namespace

Result<Workload> MakeWG(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 4);
  WorkflowFactory f(options.cluster);

  const int rows = options.sample_rows;
  const int pages = std::max(100, rows / 12);
  GeneratedData adjacency = GenAdjacency(rows, pages, 1.2, &rng);
  GeneratedData ranks = GenRanks(pages, &rng);

  Layout adj_layout;
  STUBBY_RETURN_NOT_OK(f.AddBase("ADJ", adjacency.schema, adj_layout,
                                 /*partitions=*/48, std::move(adjacency.rows),
                                 240 * kGB));
  Layout ranks_layout;
  STUBBY_RETURN_NOT_OK(f.AddBase("R0", ranks.schema, ranks_layout,
                                 /*partitions=*/4, std::move(ranks.rows),
                                 15 * kGB));

  STUBBY_RETURN_NOT_OK(f.AddDataset("C1", kContrib));
  STUBBY_RETURN_NOT_OK(f.AddDataset("R1", kRanks));
  STUBBY_RETURN_NOT_OK(f.AddDataset("C2", kContrib));
  STUBBY_RETURN_NOT_OK(f.AddDataset("R2", kRanks, /*workflow_output=*/true));

  STUBBY_RETURN_NOT_OK(AddIteration(&f, "J1", "J2", "R0", "C1", "R1"));
  STUBBY_RETURN_NOT_OK(AddIteration(&f, "J3", "J4", "R1", "C2", "R2"));

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "WG";
  w.name = "Web Graph Analysis";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 255 * kGB;
  return w;
}

}  // namespace stubby

#include "workloads/udfs.h"

#include <algorithm>
#include <limits>

namespace stubby {

namespace {

/// Computes one aggregate over a group (rows share the group key).
Value ComputeAgg(const std::vector<Row>& group, size_t field_idx, AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return Value(static_cast<int64_t>(group.size()));
    case AggOp::kSum: {
      double s = 0;
      for (const Row& r : group) s += r[field_idx].AsDouble();
      return Value(s);
    }
    case AggOp::kAvg: {
      double s = 0;
      for (const Row& r : group) s += r[field_idx].AsDouble();
      return Value(group.empty() ? 0.0 : s / group.size());
    }
    case AggOp::kMax: {
      double m = -std::numeric_limits<double>::infinity();
      for (const Row& r : group) m = std::max(m, r[field_idx].AsDouble());
      return Value(m);
    }
    case AggOp::kMin: {
      double m = std::numeric_limits<double>::infinity();
      for (const Row& r : group) m = std::min(m, r[field_idx].AsDouble());
      return Value(m);
    }
  }
  return Value(int64_t{0});
}

/// Columnar twin of ComputeAgg over selection positions [lo, hi) of `in`.
/// Folds in the same order with the same accumulator types, so
/// floating-point results are bit-identical to the row path.
Value ComputeAggBatch(const RowBatch& in, size_t lo, size_t hi,
                      size_t field_idx, AggOp op) {
  switch (op) {
    case AggOp::kCount:
      return Value(static_cast<int64_t>(hi - lo));
    case AggOp::kSum: {
      double s = 0;
      for (size_t i = lo; i < hi; ++i) s += in.At(i, field_idx).AsDouble();
      return Value(s);
    }
    case AggOp::kAvg: {
      double s = 0;
      for (size_t i = lo; i < hi; ++i) s += in.At(i, field_idx).AsDouble();
      return Value(hi == lo ? 0.0 : s / (hi - lo));
    }
    case AggOp::kMax: {
      double m = -std::numeric_limits<double>::infinity();
      for (size_t i = lo; i < hi; ++i) {
        m = std::max(m, in.At(i, field_idx).AsDouble());
      }
      return Value(m);
    }
    case AggOp::kMin: {
      double m = std::numeric_limits<double>::infinity();
      for (size_t i = lo; i < hi; ++i) {
        m = std::min(m, in.At(i, field_idx).AsDouble());
      }
      return Value(m);
    }
  }
  return Value(int64_t{0});
}

}  // namespace

Schema AggOutputSchema(const std::vector<std::string>& group_fields,
                       const std::vector<AggSpec>& aggs) {
  std::vector<std::string> fields = group_fields;
  for (const auto& a : aggs) fields.push_back(a.out_field);
  return Schema(std::move(fields));
}

std::shared_ptr<MapFn> ProjectMap(const std::string& name, const Schema& in,
                                  const std::vector<std::string>& out_fields,
                                  double cpu) {
  auto idx = in.IndicesOf(out_fields);
  std::vector<size_t> indices = idx.ok() ? std::move(*idx)
                                         : std::vector<size_t>{};
  auto fn = std::make_shared<LambdaMapFn>(
      name, in, Schema(out_fields),
      [indices](const Row& r, Emitter* out) { out->Emit(r.Project(indices)); },
      cpu);
  // Columnar: projection is a pointer shuffle over shared columns.
  fn->set_batch_fn(
      [indices](RowBatch* batch) { batch->ProjectColumns(indices); });
  return fn;
}

std::shared_ptr<MapFn> FilterRangeMap(const std::string& name,
                                      const Schema& schema,
                                      const std::string& field, double lo,
                                      double hi, double cpu) {
  size_t i = schema.IndexOf(field).value_or(0);
  auto fn = std::make_shared<LambdaMapFn>(
      name, schema, schema,
      [i, lo, hi](const Row& r, Emitter* out) {
        double v = r[i].AsDouble();
        if (v >= lo && v < hi) out->Emit(r);
      },
      cpu);
  // Columnar: one scan of the filtered column narrows the selection.
  fn->set_batch_fn([i, lo, hi](RowBatch* batch) {
    batch->FilterSelection([&](uint32_t phys) {
      double v = batch->ValueAt(i, phys).AsDouble();
      return v >= lo && v < hi;
    });
  });
  return fn;
}

std::shared_ptr<MapFn> AppendConstMap(const std::string& name,
                                      const Schema& in,
                                      const std::string& field, Value value,
                                      double cpu) {
  Schema out_schema = in.Concat(Schema({field}));
  auto fn = std::make_shared<LambdaMapFn>(
      name, in, out_schema,
      [value](const Row& r, Emitter* out) {
        Row row = r;
        row.Append(value);
        out->Emit(std::move(row));
      },
      cpu);
  // Columnar: one broadcast constant column serves every row.
  fn->set_batch_fn(
      [value](RowBatch* batch) { batch->AppendConstColumn(value); });
  return fn;
}

std::shared_ptr<MapFn> SampleMap(const std::string& name, const Schema& in,
                                 uint64_t every_n,
                                 const std::vector<std::string>& out_fields,
                                 double cpu) {
  auto idx = in.IndicesOf(out_fields);
  std::vector<size_t> indices = idx.ok() ? std::move(*idx)
                                         : std::vector<size_t>{};
  uint64_t n = std::max<uint64_t>(1, every_n);
  auto fn = std::make_shared<LambdaMapFn>(
      name, in, Schema(out_fields),
      [indices, n](const Row& r, Emitter* out) {
        if (r.Hash() % n == 0) out->Emit(r.Project(indices));
      },
      cpu);
  // Columnar: hash-filter on the full input row, then project. The batch
  // row hash matches Row::Hash, so the sample is identical.
  fn->set_batch_fn([indices, n](RowBatch* batch) {
    std::vector<uint32_t> keep;
    keep.reserve(batch->num_rows());
    for (size_t row = 0; row < batch->num_rows(); ++row) {
      if (batch->RowHash(row) % n == 0) keep.push_back(batch->selection()[row]);
    }
    batch->SetSelection(std::move(keep));
    batch->ProjectColumns(indices);
  });
  return fn;
}

std::shared_ptr<ReduceFn> AggReduce(
    const std::string& name, const Schema& in,
    const std::vector<std::string>& group_fields,
    const std::vector<AggSpec>& aggs, double cpu) {
  Schema out_schema = AggOutputSchema(group_fields, aggs);
  std::vector<size_t> agg_idx;
  for (const auto& a : aggs) {
    agg_idx.push_back(in.IndexOf(a.in_field).value_or(0));
  }
  std::vector<AggOp> ops;
  for (const auto& a : aggs) ops.push_back(a.op);
  auto fn = std::make_shared<LambdaReduceFn>(
      name, out_schema,
      [agg_idx, ops](const Row& key, const std::vector<Row>& group,
                     Emitter* out) {
        Row row = key;
        for (size_t i = 0; i < ops.size(); ++i) {
          row.Append(ComputeAgg(group, agg_idx[i], ops[i]));
        }
        out->Emit(std::move(row));
      },
      cpu);
  // Columnar: one output row per group — key values from the group's first
  // row, aggregates folded in the row path's exact order.
  fn->set_batch_fn([agg_idx, ops](const RowBatch& in, size_t lo, size_t hi,
                                  const std::vector<size_t>& key_indices,
                                  ColumnAppender* out) {
    std::vector<Value> row;
    row.reserve(key_indices.size() + ops.size());
    for (size_t k : key_indices) row.push_back(in.At(lo, k));
    for (size_t i = 0; i < ops.size(); ++i) {
      row.push_back(ComputeAggBatch(in, lo, hi, agg_idx[i], ops[i]));
    }
    out->Append(std::move(row));
  });
  return fn;
}

std::shared_ptr<ReduceFn> InnerJoinReduce(
    const std::string& name, const Schema& in,
    const std::vector<std::string>& group_fields,
    const std::string& tag_field, const std::vector<int64_t>& required_tags,
    const std::vector<AggSpec>& aggs, double cpu) {
  Schema out_schema = AggOutputSchema(group_fields, aggs);
  size_t tag_idx = in.IndexOf(tag_field).value_or(0);
  std::vector<size_t> agg_idx;
  std::vector<AggOp> ops;
  for (const auto& a : aggs) {
    agg_idx.push_back(in.IndexOf(a.in_field).value_or(0));
    ops.push_back(a.op);
  }
  auto fn = std::make_shared<LambdaReduceFn>(
      name, out_schema,
      [tag_idx, required_tags, agg_idx, ops](const Row& key,
                                             const std::vector<Row>& group,
                                             Emitter* out) {
        for (int64_t t : required_tags) {
          bool found = false;
          for (const Row& r : group) {
            if (r[tag_idx].AsDouble() == static_cast<double>(t)) {
              found = true;
              break;
            }
          }
          if (!found) return;
        }
        Row row = key;
        for (size_t i = 0; i < ops.size(); ++i) {
          row.Append(ComputeAgg(group, agg_idx[i], ops[i]));
        }
        out->Emit(std::move(row));
      },
      cpu);
  // Columnar: same tag-presence check and fold order over the group run.
  fn->set_batch_fn([tag_idx, required_tags, agg_idx, ops](
                       const RowBatch& in, size_t lo, size_t hi,
                       const std::vector<size_t>& key_indices,
                       ColumnAppender* out) {
    for (int64_t t : required_tags) {
      bool found = false;
      for (size_t i = lo; i < hi; ++i) {
        if (in.At(i, tag_idx).AsDouble() == static_cast<double>(t)) {
          found = true;
          break;
        }
      }
      if (!found) return;
    }
    std::vector<Value> row;
    row.reserve(key_indices.size() + ops.size());
    for (size_t k : key_indices) row.push_back(in.At(lo, k));
    for (size_t i = 0; i < ops.size(); ++i) {
      row.push_back(ComputeAggBatch(in, lo, hi, agg_idx[i], ops[i]));
    }
    out->Append(std::move(row));
  });
  return fn;
}

std::shared_ptr<ReduceFn> DistinctReduce(
    const std::string& name, const Schema& in,
    const std::vector<std::string>& group_fields, double cpu) {
  (void)in;
  auto fn = std::make_shared<LambdaReduceFn>(
      name, Schema(group_fields),
      [](const Row& key, const std::vector<Row>& group, Emitter* out) {
        (void)group;
        out->Emit(key);
      },
      cpu);
  // Columnar: the key of each group, nothing else.
  fn->set_batch_fn([](const RowBatch& in, size_t lo, size_t hi,
                      const std::vector<size_t>& key_indices,
                      ColumnAppender* out) {
    (void)hi;
    std::vector<Value> row;
    row.reserve(key_indices.size());
    for (size_t k : key_indices) row.push_back(in.At(lo, k));
    out->Append(std::move(row));
  });
  return fn;
}

std::shared_ptr<CombineFn> AggCombine(
    const std::string& name, const Schema& schema,
    const std::vector<std::string>& group_fields,
    const std::vector<AggSpec>& aggs, double cpu) {
  (void)group_fields;
  std::vector<size_t> agg_idx;
  std::vector<AggOp> ops;
  for (const auto& a : aggs) {
    agg_idx.push_back(schema.IndexOf(a.in_field).value_or(0));
    ops.push_back(a.op);
  }
  auto fn = std::make_shared<LambdaCombineFn>(
      name,
      [agg_idx, ops](const Row& key, const std::vector<Row>& group,
                     Emitter* out) {
        (void)key;
        Row row = group.front();
        for (size_t i = 0; i < ops.size(); ++i) {
          // Partial aggregation in place; kCount/kAvg are not algebraic in
          // this representation and fall back to pass-through.
          if (ops[i] == AggOp::kSum || ops[i] == AggOp::kMax ||
              ops[i] == AggOp::kMin) {
            row[agg_idx[i]] = ComputeAgg(group, agg_idx[i], ops[i]);
          } else {
            for (const Row& r : group) out->Emit(r);
            return;
          }
        }
        out->Emit(std::move(row));
      },
      cpu);
  // Columnar: first row of the run with the algebraic aggregate fields
  // replaced in place; non-algebraic ops pass the whole run through.
  fn->set_batch_fn([agg_idx, ops](const RowBatch& in, size_t lo, size_t hi,
                                  ColumnAppender* out) {
    std::vector<Value> row;
    row.reserve(in.num_columns());
    for (size_t c = 0; c < in.num_columns(); ++c) row.push_back(in.At(lo, c));
    for (size_t i = 0; i < ops.size(); ++i) {
      if (ops[i] == AggOp::kSum || ops[i] == AggOp::kMax ||
          ops[i] == AggOp::kMin) {
        row[agg_idx[i]] = ComputeAggBatch(in, lo, hi, agg_idx[i], ops[i]);
      } else {
        for (size_t r = lo; r < hi; ++r) out->AppendFrom(in, r);
        return;
      }
    }
    out->Append(std::move(row));
  });
  return fn;
}

}  // namespace stubby

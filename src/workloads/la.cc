// Log Analysis (Table 1: 500 GB): the join task of Pavlo et al. [17]
// (Section 7.1). Inputs: uservisits (range-partitioned on date — the
// loader records the split points, enabling partition pruning against J1's
// date filter) and pageranks.
//   J1  filter uservisits by date range, project (map-only)
//   J2  join with pageranks on url           — group by {U}
//   J3  average pagerank + total ad revenue  — group by {US}
//   J4  user with the highest total revenue  — single group
// Vertical packing folds the map-only filter J1 into the join J2
// (eliminating the filtered intermediate entirely); partition pruning cuts
// the uservisits scan to the filtered date partitions.

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {
constexpr uint64_t kGB = 1ull << 30;
}

Result<Workload> MakeLA(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 3);
  WorkflowFactory f(options.cluster);

  const int rows = options.sample_rows;
  const int urls = std::max(100, rows / 10);
  GeneratedData visits =
      GenUserVisits(rows, /*days=*/365, urls, std::max(50, rows / 20), &rng);
  GeneratedData ranks = GenPageRanks(urls, &rng);

  // uservisits: range-partitioned on the date into 36 partitions with
  // explicit split points every ~10 days.
  Layout uv_layout;
  PartitionSpec uv_part;
  uv_part.type = PartitionType::kRange;
  uv_part.partition_fields = {"DT"};
  uv_part.sort_fields = {"DT"};
  for (int day = 10; day < 360; day += 10) {
    uv_part.split_points.push_back(Row{int64_t{day}});
  }
  uv_layout.partitioning = uv_part;
  STUBBY_RETURN_NOT_OK(f.AddBase("UV", visits.schema, uv_layout,
                                 /*partitions=*/36, std::move(visits.rows),
                                 460 * kGB));

  Layout pr_layout;  // plain blocks
  STUBBY_RETURN_NOT_OK(f.AddBase("PR", ranks.schema, pr_layout,
                                 /*partitions=*/8, std::move(ranks.rows),
                                 40 * kGB));

  const Schema kUV({"DT", "U", "AD", "US"});
  const Schema kD1({"U", "AD", "US"});
  // Tagged union schema for the repartition join.
  const Schema kJoin({"U", "TAG", "AD", "US", "K"});
  const Schema kD2({"US", "K", "AD"});
  const Schema kD3({"US", "AK", "TR"});
  const Schema kD4({"US", "TR"});

  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", kD1));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", kD2));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D3", kD3));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D4", kD4, /*workflow_output=*/true));

  // J1: filter uservisits to the analyzed date range, project.
  {
    WorkflowFactory::JobDef j;
    j.id = "J1";
    j.inputs = {In("UV", {Stage::Map(FilterRangeMap("filter_date", kUV, "DT",
                                                    30, 60, /*cpu=*/0.5)),
                          Stage::Map(ProjectMap("project_visit", kUV,
                                                {"U", "AD", "US"}, 0.4))})};
    j.map_output_schema = kD1;
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"DT", "U"};
    sa.v1 = FieldSet{"AD", "US"};
    sa.k3 = FieldSet{"U"};
    sa.v3 = FieldSet{"AD", "US"};
    j.schema_ann = sa;
    FilterAnnotation fa;
    fa.field = "DT";
    fa.lo = 30;
    fa.hi = 60;
    j.filter_ann = fa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J2: repartition join of the filtered visits with pageranks on url.
  {
    auto visit_side = std::make_shared<LambdaMapFn>(
        "tag_visits", kD1, kJoin,
        [](const Row& r, Emitter* out) {
          out->Emit(Row{r[0], int64_t{1}, r[1], r[2], int64_t{0}});
        },
        /*cpu=*/0.5);
    auto rank_side = std::make_shared<LambdaMapFn>(
        "tag_ranks", Schema({"U", "K"}), kJoin,
        [](const Row& r, Emitter* out) {
          out->Emit(Row{r[0], int64_t{0}, 0.0, int64_t{0}, r[1]});
        },
        /*cpu=*/0.4);
    auto join = std::make_shared<LambdaReduceFn>(
        "join_on_url", kD2,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          (void)key;
          // TAG=0 (rank row) sorts first within the group.
          double rank = 0.0;
          for (const Row& r : group) {
            if (r[1].AsInt() == 0) {
              rank = r[4].AsDouble();
            } else {
              out->Emit(Row{r[3], rank, r[2]});
            }
          }
        },
        /*cpu=*/1.2);
    WorkflowFactory::JobDef j;
    j.id = "J2";
    j.inputs = {In("D1", {Stage::Map(visit_side)}),
                In("PR", {Stage::Map(rank_side)})};
    j.map_output_schema = kJoin;
    j.reduce_stages = {Stage::Reduce(join, {"U"})};
    j.sort_extra = {"TAG"};
    j.output = "D2";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"U"};
    sa.v1 = FieldSet{"AD", "US", "K"};
    sa.k2 = FieldSet{"U"};
    sa.v2 = FieldSet{"TAG", "AD", "US", "K"};
    sa.k3 = FieldSet{"US"};
    sa.v3 = FieldSet{"K", "AD"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J3: average pagerank and total ad revenue per user.
  {
    WorkflowFactory::JobDef j;
    j.id = "J3";
    j.inputs = {In("D2", {})};
    j.map_output_schema = kD2;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("user_totals", kD2, {"US"},
                  {{"K", AggOp::kAvg, "AK"}, {"AD", AggOp::kSum, "TR"}},
                  /*cpu=*/1.0),
        {"US"})};
    j.output = "D3";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"US"};
    sa.v1 = FieldSet{"K", "AD"};
    sa.k2 = FieldSet{"US"};
    sa.v2 = FieldSet{"K", "AD"};
    sa.k3 = FieldSet{"US"};
    sa.v3 = FieldSet{"AK", "TR"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J4: the user with the highest total ad revenue (single-task top-1).
  {
    auto top_user = std::make_shared<LambdaReduceFn>(
        "top_user", kD4,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          (void)key;
          const Row* best = nullptr;
          for (const Row& r : group) {
            if (best == nullptr || (*best)[2].AsDouble() < r[2].AsDouble()) {
              best = &r;
            }
          }
          if (best != nullptr) out->Emit(Row{(*best)[0], (*best)[2]});
        },
        /*cpu=*/0.6);
    WorkflowFactory::JobDef j;
    j.id = "J4";
    j.inputs = {In("D3", {Stage::Map(AppendConstMap(
                    "const_key", kD3, "ONE", Value(int64_t{1}), 0.2))})};
    j.map_output_schema = kD3.Concat(Schema({"ONE"}));
    j.reduce_stages = {Stage::Reduce(top_user, {"ONE"})};
    JobConfig cfg;
    cfg.num_reduce_tasks = 1;
    j.config = cfg;
    j.output = "D4";
    SchemaAnnotation sa;
    sa.k2 = FieldSet{"ONE"};
    sa.k3 = FieldSet{"US"};
    sa.v3 = FieldSet{"TR"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  // A global top-1 must run as a single task.
  {
    STUBBY_ASSIGN_OR_RETURN(JobVertex * j4, f.plan().GetMutableJob("J4"));
    j4->conditions.num_reduce_fixed = 1;
  }

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "LA";
  w.name = "Log Analysis";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 500 * kGB;
  return w;
}

}  // namespace stubby

// Business Report Generation (Table 1: 530 GB): the seven-job workflow of
// Section 7.1 (and the spirit of the paper's Figure 1 running example):
//   J1  scan + initial processing of lineitem   — group by {O,P,S}
//   J2  filter, sum/max prices per {O,P}        — group by {O,P}
//   J3  filter, sum/max prices per {O,S}        — group by {O,S}
//   J4  overall sum/max per {O} from J2         — group by {O}
//   J5  overall sum/max per {O} from J3         — group by {O}
//   J6  distinct aggregated prices from J4      — group by {SP4}
//   J7  distinct aggregated prices from J5      — group by {SP5}
// Rich in both packing kinds: J2's grouping is a prefix of J1's (vertical
// chain), J2/J3 share the scan of D1, and J4/J5 and J6/J7 are
// concurrently-runnable pairs for extended horizontal packing. The paper's
// Stubby turns the 7 jobs into 3.

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {

constexpr uint64_t kGB = 1ull << 30;

}  // namespace

Result<Workload> MakeBR(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 6);
  WorkflowFactory f(options.cluster);

  const int rows = options.sample_rows;
  const int orders = std::max(200, rows / 6);
  GeneratedData lineitem = GenLineitem(
      rows, orders, std::max(50, rows / 40), std::max(20, rows / 100), &rng);

  Layout li_layout;
  STUBBY_RETURN_NOT_OK(f.AddBase("LI", lineitem.schema, li_layout,
                                 /*partitions=*/64, std::move(lineitem.rows),
                                 530 * kGB));

  const Schema kLI({"O", "P", "S", "Q", "EP", "Z"});
  const Schema kProj({"O", "P", "S", "EP"});
  const Schema kD1({"O", "P", "S", "PR"});
  const Schema kD2({"O", "P", "SP2", "MX2"});
  const Schema kD3({"O", "S", "SP3", "MX3"});
  const Schema kD4({"O", "SP4", "MX4"});
  const Schema kD5({"O", "SP5", "MX5"});
  const Schema kD6({"SP4"});
  const Schema kD7({"SP5"});

  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", kD1));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", kD2));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D3", kD3));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D4", kD4));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D5", kD5));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D6", kD6, /*workflow_output=*/true));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D7", kD7, /*workflow_output=*/true));

  // J1: scan + initial processing (price totals per order/part/supplier).
  {
    WorkflowFactory::JobDef j;
    j.id = "J1";
    j.inputs = {In("LI", {Stage::Map(ProjectMap("project_li", kLI,
                                                {"O", "P", "S", "EP"},
                                                0.5))})};
    j.map_output_schema = kProj;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("initial_processing", kProj, {"O", "P", "S"},
                  {{"EP", AggOp::kSum, "PR"}}, /*cpu=*/0.9),
        {"O", "P", "S"})};
    j.combiner = AggCombine("sum_prices", kProj, {"O", "P", "S"},
                            {{"EP", AggOp::kSum, "EP"}});
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"O", "P"};
    sa.v1 = FieldSet{"S", "Q", "EP", "Z"};
    sa.k2 = FieldSet{"O", "P", "S"};
    sa.v2 = FieldSet{"EP"};
    sa.k3 = FieldSet{"O", "P", "S"};
    sa.v3 = FieldSet{"PR"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J2/J3: filtered sum/max of the prices per {O,P} / {O,S}. The filters
  // are on the price (not on the grouping key), so partition pruning does
  // not apply and sharing the scan of D1 is the way to save its read —
  // which is what makes BR the horizontal-packing showcase of Figure 11.
  auto add_grouping_job = [&](const std::string& id,
                              const std::string& second_field,
                              double filter_lo, double filter_hi,
                              const Schema& out_schema,
                              const std::string& sum_name,
                              const std::string& max_name,
                              const std::string& output) -> Status {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In("D1", {Stage::Map(FilterRangeMap(
                   "filter_price_" + id, kD1, "PR", filter_lo, filter_hi,
                   0.5))})};
    j.map_output_schema = kD1;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("sum_max_" + id, kD1, {"O", second_field},
                  {{"PR", AggOp::kSum, sum_name},
                   {"PR", AggOp::kMax, max_name}},
                  /*cpu=*/0.9),
        {"O", second_field})};
    j.output = output;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"O", "P", "S"};
    sa.v1 = FieldSet{"PR"};
    sa.k2 = FieldSet{"O", second_field};
    sa.v2 = FieldSet{"PR"};
    sa.k3 = FieldSet{"O", second_field};
    sa.v3 = FieldSet{sum_name, max_name};
    j.schema_ann = sa;
    FilterAnnotation fa;
    fa.field = "PR";
    fa.lo = filter_lo;
    fa.hi = filter_hi;
    j.filter_ann = fa;
    (void)out_schema;
    return f.AddJob(std::move(j));
  };
  STUBBY_RETURN_NOT_OK(
      add_grouping_job("J2", "P", 0.0, 250.0, kD2, "SP2", "MX2", "D2"));
  STUBBY_RETURN_NOT_OK(
      add_grouping_job("J3", "S", 500.0, 1000.0, kD3, "SP3", "MX3", "D3"));

  // J4/J5: overall sum/max per order.
  auto add_rollup_job = [&](const std::string& id, const Schema& in_schema,
                            const std::string& sum_in,
                            const std::string& max_in,
                            const std::string& sum_out,
                            const std::string& max_out,
                            const std::string& input,
                            const std::string& output) -> Status {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In(input, {})};
    j.map_output_schema = in_schema;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("rollup_" + id, in_schema, {"O"},
                  {{sum_in, AggOp::kSum, sum_out},
                   {max_in, AggOp::kMax, max_out}},
                  /*cpu=*/0.8),
        {"O"})};
    j.output = output;
    SchemaAnnotation sa;
    sa.k1 = in_schema.AsSet().count("P") ? FieldSet{"O", "P"}
                                         : FieldSet{"O", "S"};
    sa.v1 = FieldSet{sum_in, max_in};
    sa.k2 = FieldSet{"O"};
    sa.v2 = FieldSet{sum_in, max_in};
    sa.k3 = FieldSet{"O"};
    sa.v3 = FieldSet{sum_out, max_out};
    j.schema_ann = sa;
    return f.AddJob(std::move(j));
  };
  STUBBY_RETURN_NOT_OK(
      add_rollup_job("J4", kD2, "SP2", "MX2", "SP4", "MX4", "D2", "D4"));
  STUBBY_RETURN_NOT_OK(
      add_rollup_job("J5", kD3, "SP3", "MX3", "SP5", "MX5", "D3", "D5"));

  // J6/J7: number of distinct aggregated prices.
  auto add_distinct_job = [&](const std::string& id, const Schema& in_schema,
                              const std::string& field,
                              const std::string& input,
                              const std::string& output) -> Status {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In(input, {Stage::Map(ProjectMap("project_" + id, in_schema,
                                                 {field}, 0.3))})};
    j.map_output_schema = Schema({field});
    j.reduce_stages = {Stage::Reduce(
        DistinctReduce("distinct_" + id, Schema({field}), {field}, 0.6),
        {field})};
    j.output = output;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"O"};
    sa.v1 = FieldSet{field};
    sa.k2 = FieldSet{field};
    sa.k3 = FieldSet{field};
    j.schema_ann = sa;
    return f.AddJob(std::move(j));
  };
  STUBBY_RETURN_NOT_OK(add_distinct_job("J6", kD4, "SP4", "D4", "D6"));
  STUBBY_RETURN_NOT_OK(add_distinct_job("J7", kD5, "SP5", "D5", "D7"));

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "BR";
  w.name = "Business Report Generation";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 530 * kGB;
  return w;
}

}  // namespace stubby

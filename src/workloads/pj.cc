// Post-processing Jobs (Table 1: 10 GB): a small workflow that uses only a
// sliver of the cluster (Section 7.1). Running the two analysis jobs
// concurrently on the idle cluster beats horizontally packing them — the
// case where the rule-based Baseline (and YSmart) pack and lose, while
// cost-based Stubby and MRShare correctly decline:
//   J1  scan + initial cleaning (map-only)
//   J2  covariance per group     — group by {G}
//   J3  correlation per group    — group by {G}

#include <cmath>

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {
constexpr uint64_t kGB = 1ull << 30;
}

Result<Workload> MakePJ(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 7);
  WorkflowFactory f(options.cluster);

  const int rows = std::max(2000, options.sample_rows / 4);
  GeneratedData metrics = GenMetrics(rows, std::max(20, rows / 100), &rng);

  Layout layout;
  STUBBY_RETURN_NOT_OK(f.AddBase("M0", metrics.schema, layout,
                                 /*partitions=*/8, std::move(metrics.rows),
                                 10 * kGB));

  const Schema kM({"G", "X", "Y"});
  const Schema kD2({"G", "COV"});
  const Schema kD3({"G", "CORR"});

  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", kM));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", kD2, /*workflow_output=*/true));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D3", kD3, /*workflow_output=*/true));

  // J1: scan + cleaning (drop out-of-range measurements), map-only.
  {
    WorkflowFactory::JobDef j;
    j.id = "J1";
    j.inputs = {In("M0", {Stage::Map(FilterRangeMap("clean_metrics", kM, "X",
                                                    0.0, 95.0, 0.4))})};
    j.map_output_schema = kM;
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"G"};
    sa.v1 = FieldSet{"X", "Y"};
    sa.k3 = FieldSet{"G"};
    sa.v3 = FieldSet{"X", "Y"};
    j.schema_ann = sa;
    FilterAnnotation fa;
    fa.field = "X";
    fa.lo = 0.0;
    fa.hi = 95.0;
    j.filter_ann = fa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  struct Moments {
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    int64_t n = 0;
  };
  auto collect = [](const std::vector<Row>& group) {
    Moments m;
    for (const Row& r : group) {
      double x = r[1].AsDouble();
      double y = r[2].AsDouble();
      m.sx += x;
      m.sy += y;
      m.sxx += x * x;
      m.syy += y * y;
      m.sxy += x * y;
      m.n++;
    }
    return m;
  };

  // J2: covariance per group.
  {
    auto covariance = std::make_shared<LambdaReduceFn>(
        "covariance", kD2,
        [collect](const Row& key, const std::vector<Row>& group,
                  Emitter* out) {
          Moments m = collect(group);
          if (m.n == 0) return;
          double n = static_cast<double>(m.n);
          out->Emit(Row{key[0], m.sxy / n - (m.sx / n) * (m.sy / n)});
        },
        /*cpu=*/1.4);
    WorkflowFactory::JobDef j;
    j.id = "J2";
    j.inputs = {In("D1", {})};
    j.map_output_schema = kM;
    j.reduce_stages = {Stage::Reduce(covariance, {"G"})};
    j.output = "D2";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"G"};
    sa.v1 = FieldSet{"X", "Y"};
    sa.k2 = FieldSet{"G"};
    sa.v2 = FieldSet{"X", "Y"};
    sa.k3 = FieldSet{"G"};
    sa.v3 = FieldSet{"COV"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J3: correlation per group.
  {
    auto correlation = std::make_shared<LambdaReduceFn>(
        "correlation", kD3,
        [collect](const Row& key, const std::vector<Row>& group,
                  Emitter* out) {
          Moments m = collect(group);
          if (m.n == 0) return;
          double n = static_cast<double>(m.n);
          double cov = m.sxy / n - (m.sx / n) * (m.sy / n);
          double vx = m.sxx / n - (m.sx / n) * (m.sx / n);
          double vy = m.syy / n - (m.sy / n) * (m.sy / n);
          double denom = std::sqrt(std::max(1e-12, vx * vy));
          out->Emit(Row{key[0], cov / denom});
        },
        /*cpu=*/1.5);
    WorkflowFactory::JobDef j;
    j.id = "J3";
    j.inputs = {In("D1", {})};
    j.map_output_schema = kM;
    j.reduce_stages = {Stage::Reduce(correlation, {"G"})};
    j.output = "D3";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"G"};
    sa.v1 = FieldSet{"X", "Y"};
    sa.k2 = FieldSet{"G"};
    sa.v2 = FieldSet{"X", "Y"};
    sa.k3 = FieldSet{"G"};
    sa.v3 = FieldSet{"CORR"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "PJ";
  w.name = "Post-processing Jobs";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 10 * kGB;
  return w;
}

}  // namespace stubby

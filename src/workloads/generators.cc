#include "workloads/generators.h"

namespace stubby {

GeneratedData GenDocWords(int rows, int num_docs, int vocab, double skew,
                          Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"D", "W"});
  d.rows.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t doc = rng->NextInt(0, num_docs - 1);
    int64_t word = static_cast<int64_t>(
        rng->NextZipf(static_cast<uint64_t>(vocab), skew));
    d.rows.push_back(Row{doc, word});
  }
  return d;
}

GeneratedData GenPaperAuthors(int rows, int papers, int authors, double skew,
                              Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"P", "A"});
  d.rows.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t paper = rng->NextInt(0, papers - 1);
    int64_t author = static_cast<int64_t>(
        rng->NextZipf(static_cast<uint64_t>(authors), skew));
    d.rows.push_back(Row{paper, author});
  }
  return d;
}

GeneratedData GenUserVisits(int rows, int days, int urls, int users,
                            Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"DT", "U", "AD", "US"});
  d.rows.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t day = rng->NextInt(0, days - 1);
    int64_t url = static_cast<int64_t>(
        rng->NextZipf(static_cast<uint64_t>(urls), 0.8));
    double revenue = rng->NextDouble(0.01, 10.0);
    int64_t user = rng->NextInt(0, users - 1);
    d.rows.push_back(Row{day, url, revenue, user});
  }
  return d;
}

GeneratedData GenPageRanks(int urls, Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"U", "K"});
  d.rows.reserve(static_cast<size_t>(urls));
  for (int i = 0; i < urls; ++i) {
    d.rows.push_back(Row{int64_t{i}, rng->NextInt(0, 100)});
  }
  return d;
}

GeneratedData GenAdjacency(int rows, int pages, double skew, Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"P", "DST"});
  d.rows.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t src = rng->NextInt(0, pages - 1);
    int64_t dst = static_cast<int64_t>(
        rng->NextZipf(static_cast<uint64_t>(pages), skew));
    d.rows.push_back(Row{src, dst});
  }
  return d;
}

GeneratedData GenRanks(int pages, Rng* rng) {
  (void)rng;
  GeneratedData d;
  d.schema = Schema({"P", "RNK"});
  d.rows.reserve(static_cast<size_t>(pages));
  for (int i = 0; i < pages; ++i) {
    d.rows.push_back(Row{int64_t{i}, 1.0});
  }
  return d;
}

GeneratedData GenLineitem(int rows, int orders, int parts, int supps,
                          Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"O", "P", "S", "Q", "EP", "Z"});
  d.rows.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t order = rng->NextInt(0, orders - 1);
    int64_t part = rng->NextInt(0, parts - 1);
    int64_t supp = rng->NextInt(0, supps - 1);
    int64_t qty = rng->NextInt(1, 50);
    double price = rng->NextDouble(1.0, 1000.0);
    int64_t zip = rng->NextInt(10000, 99999);
    d.rows.push_back(Row{order, part, supp, qty, price, zip});
  }
  return d;
}

GeneratedData GenPart(int parts, Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"P", "B", "CT"});
  d.rows.reserve(static_cast<size_t>(parts));
  for (int i = 0; i < parts; ++i) {
    d.rows.push_back(
        Row{int64_t{i}, rng->NextInt(0, 24), rng->NextInt(0, 39)});
  }
  return d;
}

GeneratedData GenMetrics(int rows, int groups, Rng* rng) {
  GeneratedData d;
  d.schema = Schema({"G", "X", "Y"});
  d.rows.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t g = rng->NextInt(0, groups - 1);
    double x = rng->NextDouble(0.0, 100.0);
    double y = 0.6 * x + rng->NextDouble(0.0, 40.0);
    d.rows.push_back(Row{g, x, y});
  }
  return d;
}

GeneratedData GenUserRecords(int rows, int users, Rng* rng) {
  GeneratedData d;
  // AG is the user's age in days (fine-grained so range partitioning on it
  // retains full parallelism).
  d.schema = Schema({"AG", "U", "M"});
  d.rows.reserve(static_cast<size_t>(rows));
  for (int i = 0; i < rows; ++i) {
    int64_t age = rng->NextInt(1, 36000);
    int64_t user = rng->NextInt(0, users - 1);
    double metric = rng->NextDouble(0.0, 500.0);
    d.rows.push_back(Row{age, user, metric});
  }
  return d;
}

}  // namespace stubby

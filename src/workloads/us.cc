// User-defined Logical Splits (Table 1: 530 GB): a preprocessing job whose
// output is analyzed differently per age group by two consumer jobs that
// each filter to their slice in the map function (Section 7.1). The
// partition function transformation switches the producer to range
// partitioning on the age with split points at the filter boundaries,
// enabling partition pruning in both consumers — the paper's US showcase:
//   J1  preprocess: total metric per (age, user)     — group by {AG,U}
//   J2  youth analysis (age under ~25y, in days)     — group by {U}
//   J3  adult analysis (age ~25y and older, in days) — group by {U}

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {
constexpr uint64_t kGB = 1ull << 30;
}

Result<Workload> MakeUS(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 8);
  WorkflowFactory f(options.cluster);

  const int rows = options.sample_rows;
  GeneratedData users = GenUserRecords(rows, std::max(100, rows / 10), &rng);

  Layout layout;
  STUBBY_RETURN_NOT_OK(f.AddBase("U0", users.schema, layout,
                                 /*partitions=*/64, std::move(users.rows),
                                 530 * kGB));

  const Schema kU({"AG", "U", "M"});
  const Schema kD1({"AG", "U", "SM"});
  const Schema kD2({"U", "YAVG"});
  const Schema kD3({"U", "AMAX"});

  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", kD1));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", kD2, /*workflow_output=*/true));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D3", kD3, /*workflow_output=*/true));

  // J1: preprocess — total metric per (age, user).
  {
    WorkflowFactory::JobDef j;
    j.id = "J1";
    j.inputs = {In("U0", {})};
    j.map_output_schema = kU;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("preprocess", kU, {"AG", "U"}, {{"M", AggOp::kSum, "SM"}},
                  /*cpu=*/0.9),
        {"AG", "U"})};
    j.combiner =
        AggCombine("sum_metric", kU, {"AG", "U"}, {{"M", AggOp::kSum, "M"}});
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"AG", "U"};
    sa.v1 = FieldSet{"M"};
    sa.k2 = FieldSet{"AG", "U"};
    sa.v2 = FieldSet{"M"};
    sa.k3 = FieldSet{"AG", "U"};
    sa.v3 = FieldSet{"SM"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J2/J3: per-slice analyses (filters exposed through annotations).
  auto add_slice_job = [&](const std::string& id, double lo, double hi,
                           AggOp op, const std::string& out_field,
                           const std::string& output) -> Status {
    WorkflowFactory::JobDef j;
    j.id = id;
    j.inputs = {In("D1", {Stage::Map(FilterRangeMap("filter_age_" + id, kD1,
                                                    "AG", lo, hi, 0.5))})};
    j.map_output_schema = kD1;
    j.reduce_stages = {Stage::Reduce(
        AggReduce("analyze_" + id, kD1, {"U"}, {{"SM", op, out_field}},
                  /*cpu=*/1.1),
        {"U"})};
    j.output = output;
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"AG", "U"};
    sa.v1 = FieldSet{"SM"};
    sa.k2 = FieldSet{"U"};
    sa.v2 = FieldSet{"AG", "SM"};
    sa.k3 = FieldSet{"U"};
    sa.v3 = FieldSet{out_field};
    j.schema_ann = sa;
    FilterAnnotation fa;
    fa.field = "AG";
    fa.lo = lo;
    fa.hi = hi;
    j.filter_ann = fa;
    return f.AddJob(std::move(j));
  };
  STUBBY_RETURN_NOT_OK(
      add_slice_job("J2", 1, 9000, AggOp::kAvg, "YAVG", "D2"));
  STUBBY_RETURN_NOT_OK(
      add_slice_job("J3", 9000, 36500, AggOp::kMax, "AMAX", "D3"));

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "US";
  w.name = "User-defined Logical Splits";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 530 * kGB;
  return w;
}

}  // namespace stubby

// Reusable black-box UDFs for the evaluation workloads. The optimizer never
// inspects these: everything it knows comes from annotations.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mr/functions.h"

namespace stubby {

/// Aggregation operators for the generic group-by reduce.
enum class AggOp { kSum, kMax, kMin, kCount, kAvg };

/// One aggregate: `op` over `in_field`, emitted as `out_field`.
struct AggSpec {
  std::string in_field;
  AggOp op;
  std::string out_field;
};

/// Map: projects `out_fields` (a subset of the input schema, any order).
std::shared_ptr<MapFn> ProjectMap(const std::string& name, const Schema& in,
                                  const std::vector<std::string>& out_fields,
                                  double cpu = 0.6);

/// Map: passes through rows whose numeric `field` lies in [lo, hi). The
/// corresponding FilterAnnotation is what tells the optimizer about it.
std::shared_ptr<MapFn> FilterRangeMap(const std::string& name,
                                      const Schema& schema,
                                      const std::string& field, double lo,
                                      double hi, double cpu = 0.5);

/// Map: appends a constant field (e.g. a literal grouping key or tag).
std::shared_ptr<MapFn> AppendConstMap(const std::string& name,
                                      const Schema& in,
                                      const std::string& field, Value value,
                                      double cpu = 0.3);

/// Map: deterministic 1-in-`every_n` sample (content-hash based), projected
/// onto `out_fields` — the sampler jobs of the SN and LA workflows.
std::shared_ptr<MapFn> SampleMap(const std::string& name, const Schema& in,
                                 uint64_t every_n,
                                 const std::vector<std::string>& out_fields,
                                 double cpu = 0.4);

/// Reduce: group-by on `group_fields` computing `aggs`; emits one row per
/// group with schema (group_fields..., agg out_fields...).
std::shared_ptr<ReduceFn> AggReduce(const std::string& name,
                                    const Schema& in,
                                    const std::vector<std::string>& group_fields,
                                    const std::vector<AggSpec>& aggs,
                                    double cpu = 1.0);

/// Reduce: inner join of tagged input streams — emits one aggregate row
/// per group (schema like AggReduce), but only when the group holds at
/// least one row of *every* tag in `required_tags` (values of
/// `tag_field`). Groups missing any side emit nothing, which is what makes
/// the inputs filterable under a JoinAnnotation: a row whose key has no
/// partner belongs to a group this function discards.
std::shared_ptr<ReduceFn> InnerJoinReduce(
    const std::string& name, const Schema& in,
    const std::vector<std::string>& group_fields,
    const std::string& tag_field, const std::vector<int64_t>& required_tags,
    const std::vector<AggSpec>& aggs, double cpu = 1.2);

/// Reduce: emits one (projected) row per distinct group — duplicate
/// elimination.
std::shared_ptr<ReduceFn> DistinctReduce(
    const std::string& name, const Schema& in,
    const std::vector<std::string>& group_fields, double cpu = 0.8);

/// Combine: algebraic partial aggregation that keeps the input schema.
/// Sum/max/min aggregate their field in place; every other non-group field
/// keeps the group's first value. (Counts must be pre-materialized as a
/// summed 1-column to be combinable.)
std::shared_ptr<CombineFn> AggCombine(const std::string& name,
                                      const Schema& schema,
                                      const std::vector<std::string>& group_fields,
                                      const std::vector<AggSpec>& aggs,
                                      double cpu = 0.4);

/// Output schema produced by AggReduce for the given grouping/aggs.
Schema AggOutputSchema(const std::vector<std::string>& group_fields,
                       const std::vector<AggSpec>& aggs);

}  // namespace stubby

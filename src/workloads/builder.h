// WorkflowFactory: compact construction of annotated workflow plans plus
// their (sample) base data — the glue every workload in Section 7.1 uses.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/dfs.h"
#include "mr/cluster.h"
#include "workflow/plan.h"

namespace stubby {

/// Builds a Plan and loads its base datasets into a Dfs.
class WorkflowFactory {
 public:
  explicit WorkflowFactory(ClusterSpec cluster)
      : plan_(std::move(cluster)) {}

  Plan& plan() { return plan_; }
  Dfs& dfs() { return dfs_; }

  /// Registers a base dataset: lays the sample rows out per `layout` over
  /// `partitions` partitions, scales it logically to `logical_bytes`, puts
  /// it in the DFS, and adds a fully annotated plan vertex.
  Status AddBase(const std::string& id, const Schema& schema,
                 const Layout& layout, int partitions, std::vector<Row> rows,
                 uint64_t logical_bytes);

  /// Declares an intermediate or terminal dataset vertex.
  Status AddDataset(const std::string& id, const Schema& schema,
                    bool workflow_output = false);

  /// Adds a single-branch job. The branch's partition function defaults to
  /// hash partitioning on the first reduce stage's group fields with the
  /// per-partition sort on (group fields + sort_extra).
  struct JobDef {
    std::string id;
    std::vector<BranchInput> inputs;
    Schema map_output_schema;
    std::vector<Stage> reduce_stages;  ///< empty = map-only job
    std::vector<std::string> sort_extra;
    std::shared_ptr<CombineFn> combiner;
    std::string output;
    JobConfig config;
    /// Annotations (all optional — the information spectrum).
    std::optional<SchemaAnnotation> schema_ann;
    std::optional<FilterAnnotation> filter_ann;
    std::optional<JoinAnnotation> join_ann;
    /// Overrides the default partition spec when set.
    std::optional<PartitionSpec> partition;
  };
  Status AddJob(JobDef def);

 private:
  Plan plan_;
  Dfs dfs_;
};

/// Convenience: BranchInput reading `dataset` through `stages`.
BranchInput In(const std::string& dataset, std::vector<Stage> stages);

}  // namespace stubby

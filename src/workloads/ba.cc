// Business Analytics Query (Table 1: 550 GB): TPC-H Query 17 (Section
// 7.1) — yearly revenue lost if small-quantity orders were no longer
// filled. lineitem and part are both partitioned (and ordered) on the part
// id, which is what makes intra-job vertical packing applicable to the two
// join jobs J2 and J3, exactly as the paper highlights for BA:
//   J1  scan/clean lineitem, clustered by part       — group by {P}
//   J2  filtered join with part, average qty per part — group by {P}
//   J3  join lineitem-side with the averages, sum prices below the
//       0.2*avg threshold                             — group by {P}
//   J4  total lost revenue                            — single group

#include "workloads/builder.h"
#include "workloads/generators.h"
#include "workloads/registry.h"
#include "workloads/udfs.h"

namespace stubby {

namespace {
constexpr uint64_t kGB = 1ull << 30;
constexpr int kBasePartitions = 64;
}  // namespace

Result<Workload> MakeBA(const WorkloadOptions& options) {
  Rng rng(options.seed * 1000 + 5);
  WorkflowFactory f(options.cluster);

  const int rows = options.sample_rows;
  const int parts = std::max(100, rows / 15);
  GeneratedData lineitem =
      GenLineitem(rows, std::max(100, rows / 8), parts,
                  std::max(20, parts / 10), &rng);
  GeneratedData part = GenPart(parts, &rng);

  Layout li_layout;
  PartitionSpec li_part;
  li_part.partition_fields = {"P"};
  li_part.sort_fields = {"P"};
  li_layout.partitioning = li_part;
  li_layout.order_fields = {"P"};
  STUBBY_RETURN_NOT_OK(f.AddBase("LI", lineitem.schema, li_layout,
                                 kBasePartitions, std::move(lineitem.rows),
                                 520 * kGB));

  Layout part_layout;
  PartitionSpec part_part;
  part_part.partition_fields = {"P"};
  part_part.sort_fields = {"P"};
  part_layout.partitioning = part_part;
  part_layout.order_fields = {"P"};
  STUBBY_RETURN_NOT_OK(f.AddBase("PART", part.schema, part_layout,
                                 kBasePartitions, std::move(part.rows),
                                 30 * kGB));

  const Schema kLI({"O", "P", "S", "Q", "EP", "Z"});
  const Schema kD1({"P", "Q", "EP"});
  // Tagged union schemas for the two joins (TAG=0 is the build side).
  const Schema kJoin2({"P", "TAG", "Q", "EP", "B"});
  const Schema kD2({"P", "AQ"});
  const Schema kJoin3({"P", "TAG", "Q", "EP", "AQ"});
  const Schema kD3({"P", "SUBT"});
  const Schema kD4({"TOTAL"});

  STUBBY_RETURN_NOT_OK(f.AddDataset("D1", kD1));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D2", kD2));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D3", kD3));
  STUBBY_RETURN_NOT_OK(f.AddDataset("D4", kD4, /*workflow_output=*/true));

  // J1: scan/clean lineitem, keep it clustered by part id.
  {
    auto clean = std::make_shared<LambdaReduceFn>(
        "clean_lineitem", kD1,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          (void)key;
          for (const Row& r : group) {
            if (r[1].AsInt() <= 50) out->Emit(r);  // drop outlier quantities
          }
        },
        /*cpu=*/0.7);
    WorkflowFactory::JobDef j;
    j.id = "J1";
    j.inputs = {In("LI", {Stage::Map(
                   ProjectMap("project_li", kLI, {"P", "Q", "EP"}, 0.5))})};
    j.map_output_schema = kD1;
    j.reduce_stages = {Stage::Reduce(clean, {"P"})};
    j.output = "D1";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"O", "P"};
    sa.v1 = FieldSet{"S", "Q", "EP", "Z"};
    sa.k2 = FieldSet{"P"};
    sa.v2 = FieldSet{"Q", "EP"};
    sa.k3 = FieldSet{"P"};
    sa.v3 = FieldSet{"Q", "EP"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J2: join with the brand/container-filtered part table; average quantity
  // per surviving part.
  {
    auto li_side = std::make_shared<LambdaMapFn>(
        "tag_lineitem", kD1, kJoin2,
        [](const Row& r, Emitter* out) {
          out->Emit(Row{r[0], int64_t{1}, r[1], r[2], int64_t{-1}});
        },
        /*cpu=*/0.4);
    auto part_side = std::make_shared<LambdaMapFn>(
        "filter_part", Schema({"P", "B", "CT"}), kJoin2,
        [](const Row& r, Emitter* out) {
          // Q17's Brand#23 / MED BOX predicate analogue.
          if (r[1].AsInt() == 7 && r[2].AsInt() < 20) {
            out->Emit(Row{r[0], int64_t{0}, int64_t{0}, 0.0, r[1]});
          }
        },
        /*cpu=*/0.4);
    auto avg_qty = std::make_shared<LambdaReduceFn>(
        "avg_qty_per_part", kD2,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          bool part_present = false;
          double sum = 0.0;
          int64_t n = 0;
          for (const Row& r : group) {
            if (r[1].AsInt() == 0) {
              part_present = true;
            } else {
              sum += r[2].AsDouble();
              ++n;
            }
          }
          if (part_present && n > 0) {
            out->Emit(Row{key[0], sum / static_cast<double>(n)});
          }
        },
        /*cpu=*/1.0);
    WorkflowFactory::JobDef j;
    j.id = "J2";
    j.inputs = {In("D1", {Stage::Map(li_side)}),
                In("PART", {Stage::Map(part_side)})};
    j.map_output_schema = kJoin2;
    j.reduce_stages = {Stage::Reduce(avg_qty, {"P"})};
    j.sort_extra = {"TAG"};
    j.output = "D2";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"P"};
    sa.v1 = FieldSet{"Q", "EP", "B", "CT"};
    sa.k2 = FieldSet{"P"};
    sa.v2 = FieldSet{"TAG", "Q", "EP", "B"};
    sa.k3 = FieldSet{"P"};
    sa.v3 = FieldSet{"AQ"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J3: join the cleaned lineitem with the per-part averages; sum prices of
  // rows below the 0.2*avg quantity threshold.
  {
    auto li_side = std::make_shared<LambdaMapFn>(
        "tag_lineitem2", kD1, kJoin3,
        [](const Row& r, Emitter* out) {
          out->Emit(Row{r[0], int64_t{1}, r[1], r[2], 0.0});
        },
        /*cpu=*/0.4);
    auto avg_side = std::make_shared<LambdaMapFn>(
        "tag_avgs", kD2, kJoin3,
        [](const Row& r, Emitter* out) {
          out->Emit(Row{r[0], int64_t{0}, int64_t{0}, 0.0, r[1]});
        },
        /*cpu=*/0.3);
    auto lost_revenue = std::make_shared<LambdaReduceFn>(
        "sum_below_threshold", kD3,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          double avg = -1.0;
          double subtotal = 0.0;
          for (const Row& r : group) {
            if (r[1].AsInt() == 0) {
              avg = r[4].AsDouble();
            } else if (avg >= 0.0 && r[2].AsDouble() < 0.2 * avg) {
              subtotal += r[3].AsDouble();
            }
          }
          if (avg >= 0.0 && subtotal > 0.0) {
            out->Emit(Row{key[0], subtotal});
          }
        },
        /*cpu=*/1.0);
    WorkflowFactory::JobDef j;
    j.id = "J3";
    j.inputs = {In("D1", {Stage::Map(li_side)}),
                In("D2", {Stage::Map(avg_side)})};
    j.map_output_schema = kJoin3;
    j.reduce_stages = {Stage::Reduce(lost_revenue, {"P"})};
    j.sort_extra = {"TAG"};
    j.output = "D3";
    SchemaAnnotation sa;
    sa.k1 = FieldSet{"P"};
    sa.v1 = FieldSet{"Q", "EP", "AQ"};
    sa.k2 = FieldSet{"P"};
    sa.v2 = FieldSet{"TAG", "Q", "EP", "AQ"};
    sa.k3 = FieldSet{"P"};
    sa.v3 = FieldSet{"SUBT"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }

  // J4: total lost revenue (single group).
  {
    auto total = std::make_shared<LambdaReduceFn>(
        "total_revenue", kD4,
        [](const Row& key, const std::vector<Row>& group, Emitter* out) {
          (void)key;
          double sum = 0.0;
          for (const Row& r : group) sum += r[1].AsDouble();
          out->Emit(Row{sum / 7.0});  // Q17's avg-yearly division
        },
        /*cpu=*/0.4);
    WorkflowFactory::JobDef j;
    j.id = "J4";
    j.inputs = {In("D3", {Stage::Map(AppendConstMap(
                    "const_key", kD3, "ONE", Value(int64_t{1}), 0.2))})};
    j.map_output_schema = kD3.Concat(Schema({"ONE"}));
    j.reduce_stages = {Stage::Reduce(total, {"ONE"})};
    JobConfig cfg;
    cfg.num_reduce_tasks = 1;
    j.config = cfg;
    j.output = "D4";
    SchemaAnnotation sa;
    sa.k2 = FieldSet{"ONE"};
    sa.k3 = FieldSet{"TOTAL"};
    j.schema_ann = sa;
    STUBBY_RETURN_NOT_OK(f.AddJob(std::move(j)));
  }
  {
    STUBBY_ASSIGN_OR_RETURN(JobVertex * j4, f.plan().GetMutableJob("J4"));
    j4->conditions.num_reduce_fixed = 1;
  }

  STUBBY_RETURN_NOT_OK(f.plan().Validate());
  Workload w;
  w.abbr = "BA";
  w.name = "Business Analytics Query";
  w.plan = std::move(f.plan());
  w.dfs = std::move(f.dfs());
  w.dataset_logical_bytes = 550 * kGB;
  return w;
}

}  // namespace stubby

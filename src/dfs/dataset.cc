#include "dfs/dataset.h"

#include <algorithm>
#include <cmath>

namespace stubby {

void StoredDataset::AddPartition(std::vector<Row> rows) {
  for (const Row& r : rows) {
    num_rows_ += 1;
    raw_bytes_ += r.SerializedSize();
  }
  partitions_.push_back(std::move(rows));
}

uint64_t StoredDataset::stored_bytes(double compress_ratio) const {
  if (!layout_.compressed) return raw_bytes_;
  return static_cast<uint64_t>(std::llround(
      static_cast<double>(raw_bytes_) * compress_ratio));
}

std::vector<Row> StoredDataset::AllRows() const {
  std::vector<Row> out;
  out.reserve(num_rows_);
  for (const auto& p : partitions_) out.insert(out.end(), p.begin(), p.end());
  return out;
}

std::vector<Row> StoredDataset::RowsOfPartitions(
    const std::vector<int>& parts) const {
  std::vector<Row> out;
  for (int i : parts) {
    if (i < 0 || static_cast<size_t>(i) >= partitions_.size()) continue;
    out.insert(out.end(), partitions_[i].begin(), partitions_[i].end());
  }
  return out;
}

Result<std::shared_ptr<StoredDataset>> StoredDataset::FromRows(
    std::string id, const Schema& schema, Layout layout,
    std::vector<Row> rows, int num_partitions) {
  auto ds = std::make_shared<StoredDataset>(std::move(id), schema, layout);
  if (num_partitions < 1) num_partitions = 1;

  std::vector<std::vector<Row>> parts;
  if (layout.partitioning.has_value()) {
    int n = num_partitions;
    if (layout.partitioning->FixesNumPartitions()) {
      n = layout.partitioning->NumRangePartitions();
    }
    STUBBY_ASSIGN_OR_RETURN(Partitioner partitioner,
                            Partitioner::Make(*layout.partitioning, schema));
    parts.assign(static_cast<size_t>(n), {});
    for (auto& r : rows) {
      int p = partitioner.PartitionOf(r, n);
      parts[static_cast<size_t>(p)].push_back(std::move(r));
    }
  } else {
    // Block layout: contiguous chunks of roughly equal record count.
    size_t per =
        std::max<size_t>(1, (rows.size() + num_partitions - 1) /
                                static_cast<size_t>(num_partitions));
    for (size_t i = 0; i < rows.size(); i += per) {
      size_t end = std::min(rows.size(), i + per);
      parts.emplace_back(std::make_move_iterator(rows.begin() + i),
                         std::make_move_iterator(rows.begin() + end));
    }
    if (parts.empty()) parts.emplace_back();
  }

  if (!layout.order_fields.empty()) {
    STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> order_idx,
                            schema.IndicesOf(layout.order_fields));
    for (auto& p : parts) {
      std::stable_sort(p.begin(), p.end(), [&](const Row& a, const Row& b) {
        return CompareOnFields(a, b, order_idx) < 0;
      });
    }
  }

  for (auto& p : parts) ds->AddPartition(std::move(p));
  return ds;
}

}  // namespace stubby

#include "dfs/dataset.h"

#include <algorithm>
#include <cmath>

namespace stubby {

// ---------------------------------------------------------------------------
// PartitionData

struct PartitionData::Rep {
  // Shape facts, immutable after construction.
  size_t nrows = 0;
  size_t ncols = 0;
  bool columnar = false;       // payload can be exposed as a RowBatch
  bool column_native = false;  // constructed column-first

  // Column representation: present at construction when column_native,
  // otherwise derived once on demand. Broadcast (stride-0) columns are
  // preserved through storage, so a constant column stays one element no
  // matter how many rows reference it.
  mutable std::vector<RowBatch::ColumnPtr> cols;
  mutable std::vector<uint32_t> strides;
  mutable std::atomic<bool> cols_ready{false};

  // Row representation: present at construction when row-native, otherwise
  // derived once on demand.
  mutable std::vector<Row> rows;
  mutable std::atomic<bool> rows_ready{false};

  // Per-row serialized-size prefix sums (size nrows + 1), derived lazily so
  // constructing a partition from a batch stays O(columns). Integer sums in
  // row order, so byte accounting is representation-independent.
  mutable std::vector<uint64_t> byte_prefix;
  mutable std::atomic<bool> bytes_ready{false};

  // Guards lazy derivations (double-checked against the atomics above).
  mutable std::mutex mu;

  RowBatch View() const {
    return RowBatch::FromColumns(cols, strides, nrows);
  }

  void EnsureColumns() const {
    if (cols_ready.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(mu);
    if (cols_ready.load(std::memory_order_relaxed)) return;
    std::vector<RowBatch::ColumnPtr> derived;
    derived.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      auto col = std::make_shared<RowBatch::Column>();
      col->reserve(nrows);
      for (const Row& r : rows) col->push_back(r[c]);
      derived.push_back(std::move(col));
    }
    cols = std::move(derived);
    strides.assign(ncols, 1);
    cols_ready.store(true, std::memory_order_release);
  }

  void EnsureRows() const {
    if (rows_ready.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(mu);
    if (rows_ready.load(std::memory_order_relaxed)) return;
    std::vector<Row> derived;
    derived.reserve(nrows);
    for (size_t i = 0; i < nrows; ++i) {
      std::vector<Value> values;
      values.reserve(ncols);
      for (size_t c = 0; c < ncols; ++c) {
        values.push_back((*cols[c])[i * strides[c]]);
      }
      derived.emplace_back(std::move(values));
    }
    rows = std::move(derived);
    rows_ready.store(true, std::memory_order_release);
  }

  void EnsureBytes() const {
    if (bytes_ready.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(mu);
    if (bytes_ready.load(std::memory_order_relaxed)) return;
    std::vector<uint64_t> prefix(nrows + 1, 0);
    if (rows_ready.load(std::memory_order_acquire)) {
      for (size_t i = 0; i < nrows; ++i) {
        prefix[i + 1] = prefix[i] + rows[i].SerializedSize();
      }
    } else {
      // Column-native and rows not yet materialized: size rows through a
      // batch view so the per-row framing constant stays in one place.
      RowBatch view = View();
      for (size_t i = 0; i < nrows; ++i) {
        prefix[i + 1] = prefix[i] + view.RowSerializedSize(i);
      }
    }
    byte_prefix = std::move(prefix);
    bytes_ready.store(true, std::memory_order_release);
  }
};

PartitionData::PartitionData() : PartitionData(std::vector<Row>{}) {}

PartitionData::PartitionData(std::vector<Row> rows)
    : rep_(std::make_shared<Rep>()) {
  rep_->nrows = rows.size();
  bool uniform = true;
  size_t arity = rows.empty() ? 0 : rows.front().size();
  for (const Row& r : rows) {
    if (r.size() != arity) {
      uniform = false;
      break;
    }
  }
  rep_->ncols = uniform ? arity : 0;
  rep_->columnar = uniform && !rows.empty();
  rep_->rows = std::move(rows);
  rep_->rows_ready.store(true, std::memory_order_release);
}

PartitionData PartitionData::FromBatch(const RowBatch& batch) {
  PartitionData pd;
  pd.rep_ = std::make_shared<Rep>();
  Rep& rep = *pd.rep_;
  rep.nrows = batch.num_rows();
  rep.ncols = batch.num_columns();
  rep.columnar = true;
  rep.column_native = true;

  const auto& sel = batch.selection();
  bool identity = batch.num_rows() == batch.physical_rows();
  if (identity) {
    for (size_t i = 0; i < sel.size(); ++i) {
      if (sel[i] != i) {
        identity = false;
        break;
      }
    }
  }
  if (identity) {
    // Dense batch: share the columns verbatim, broadcast columns included.
    rep.cols = batch.columns();
    rep.strides = batch.strides();
  } else {
    // Gather the live rows per column; broadcast columns stay broadcast.
    rep.cols.reserve(rep.ncols);
    rep.strides.reserve(rep.ncols);
    for (size_t c = 0; c < rep.ncols; ++c) {
      if (batch.strides()[c] == 0) {
        rep.cols.push_back(batch.columns()[c]);
        rep.strides.push_back(0);
        continue;
      }
      auto col = std::make_shared<RowBatch::Column>();
      col->reserve(sel.size());
      for (uint32_t phys : sel) col->push_back(batch.ValueAt(c, phys));
      rep.cols.push_back(std::move(col));
      rep.strides.push_back(1);
    }
  }
  rep.cols_ready.store(true, std::memory_order_release);
  return pd;
}

size_t PartitionData::num_rows() const { return rep_->nrows; }

bool PartitionData::columnar() const { return rep_->columnar; }

size_t PartitionData::num_columns() const { return rep_->ncols; }

bool PartitionData::column_native() const { return rep_->column_native; }

const std::vector<Row>& PartitionData::rows() const {
  rep_->EnsureRows();
  return rep_->rows;
}

RowBatch PartitionData::AsBatch() const {
  rep_->EnsureColumns();
  return rep_->View();
}

RowBatch PartitionData::BatchSlice(size_t lo, size_t hi) const {
  rep_->EnsureColumns();
  RowBatch batch = rep_->View();
  std::vector<uint32_t> sel;
  sel.reserve(hi - lo);
  for (size_t i = lo; i < hi; ++i) sel.push_back(static_cast<uint32_t>(i));
  batch.SetSelection(std::move(sel));
  return batch;
}

uint64_t PartitionData::raw_bytes() const {
  rep_->EnsureBytes();
  return rep_->byte_prefix.back();
}

uint64_t PartitionData::RangeBytes(size_t lo, size_t hi) const {
  rep_->EnsureBytes();
  return rep_->byte_prefix[hi] - rep_->byte_prefix[lo];
}

// ---------------------------------------------------------------------------
// StoredDataset

void StoredDataset::AddPartition(std::vector<Row> rows) {
  AddPartition(PartitionData(std::move(rows)));
}

void StoredDataset::AddPartition(PartitionData partition) {
  num_rows_ += partition.num_rows();
  raw_bytes_ += partition.raw_bytes();
  partitions_.push_back(std::move(partition));
}

uint64_t StoredDataset::stored_bytes(double compress_ratio) const {
  if (!layout_.compressed) return raw_bytes_;
  return static_cast<uint64_t>(std::llround(
      static_cast<double>(raw_bytes_) * compress_ratio));
}

std::vector<Row> StoredDataset::AllRows() const {
  std::vector<Row> out;
  out.reserve(num_rows_);
  for (const auto& p : partitions_) {
    const auto& rows = p.rows();
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

std::vector<Row> StoredDataset::RowsOfPartitions(
    const std::vector<int>& parts) const {
  std::vector<Row> out;
  for (int i : parts) {
    if (i < 0 || static_cast<size_t>(i) >= partitions_.size()) continue;
    const auto& rows = partitions_[static_cast<size_t>(i)].rows();
    out.insert(out.end(), rows.begin(), rows.end());
  }
  return out;
}

Result<std::shared_ptr<StoredDataset>> StoredDataset::FromRows(
    std::string id, const Schema& schema, Layout layout,
    std::vector<Row> rows, int num_partitions) {
  auto ds = std::make_shared<StoredDataset>(std::move(id), schema, layout);
  if (num_partitions < 1) num_partitions = 1;

  std::vector<std::vector<Row>> parts;
  if (layout.partitioning.has_value()) {
    int n = num_partitions;
    if (layout.partitioning->FixesNumPartitions()) {
      n = layout.partitioning->NumRangePartitions();
    }
    STUBBY_ASSIGN_OR_RETURN(Partitioner partitioner,
                            Partitioner::Make(*layout.partitioning, schema));
    parts.assign(static_cast<size_t>(n), {});
    for (auto& r : rows) {
      int p = partitioner.PartitionOf(r, n);
      parts[static_cast<size_t>(p)].push_back(std::move(r));
    }
  } else {
    // Block layout: contiguous chunks of roughly equal record count.
    size_t per =
        std::max<size_t>(1, (rows.size() + num_partitions - 1) /
                                static_cast<size_t>(num_partitions));
    for (size_t i = 0; i < rows.size(); i += per) {
      size_t end = std::min(rows.size(), i + per);
      parts.emplace_back(std::make_move_iterator(rows.begin() + i),
                         std::make_move_iterator(rows.begin() + end));
    }
    if (parts.empty()) parts.emplace_back();
  }

  if (!layout.order_fields.empty()) {
    STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> order_idx,
                            schema.IndicesOf(layout.order_fields));
    for (auto& p : parts) {
      std::stable_sort(p.begin(), p.end(), [&](const Row& a, const Row& b) {
        return CompareOnFields(a, b, order_idx) < 0;
      });
    }
  }

  for (auto& p : parts) ds->AddPartition(std::move(p));
  return ds;
}

}  // namespace stubby

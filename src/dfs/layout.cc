#include "dfs/layout.h"

#include "common/strings.h"

namespace stubby {

bool Layout::operator==(const Layout& other) const {
  if (partitioning.has_value() != other.partitioning.has_value()) return false;
  if (partitioning && !(*partitioning == *other.partitioning)) return false;
  return order_fields == other.order_fields &&
         compressed == other.compressed && block_mb == other.block_mb;
}

std::string Layout::ToString() const {
  std::string out = "layout{";
  out += partitioning ? partitioning->ToString() : "blocks";
  if (!order_fields.empty()) out += " order(" + Join(order_fields, ",") + ")";
  if (compressed) out += " compressed";
  out += "}";
  return out;
}

}  // namespace stubby

// Dfs: the persistent storage layer of the simulated MapReduce system — a
// registry of StoredDatasets keyed by descriptor id.

#pragma once

#include <map>
#include <string>

#include "common/result.h"
#include "dfs/dataset.h"

namespace stubby {

/// In-memory distributed-file-system stand-in.
class Dfs {
 public:
  /// Registers `dataset`; fails if the id already exists.
  Status Put(DatasetPtr dataset);

  /// Registers or replaces `dataset`.
  void PutOrReplace(DatasetPtr dataset);

  /// Looks up a dataset by id.
  Result<DatasetPtr> Get(const std::string& id) const;

  bool Exists(const std::string& id) const;

  /// Removes a dataset (no-op if absent).
  void Drop(const std::string& id);

  /// Removes everything.
  void Clear();

  size_t size() const { return datasets_.size(); }

  /// Total raw bytes across all stored datasets.
  uint64_t TotalRawBytes() const;

 private:
  std::map<std::string, DatasetPtr> datasets_;
};

}  // namespace stubby

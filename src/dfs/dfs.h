// Dfs: the persistent storage layer of the simulated MapReduce system — a
// registry of StoredDatasets keyed by descriptor id.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/dataset.h"

namespace stubby {

/// In-memory distributed-file-system stand-in.
class Dfs {
 public:
  /// Registers `dataset`; fails if the id already exists.
  Status Put(DatasetPtr dataset);

  /// Registers or replaces `dataset`.
  void PutOrReplace(DatasetPtr dataset);

  /// Looks up a dataset by id.
  Result<DatasetPtr> Get(const std::string& id) const;

  bool Exists(const std::string& id) const;

  /// Removes a dataset (no-op if absent).
  void Drop(const std::string& id);

  /// Removes everything.
  void Clear();

  /// Garbage collection: drops every dataset whose id is not in `live`.
  /// Returns the ids that were collected (in id order — deterministic).
  /// Callers (result-store eviction, plan-rewrite cleanup) are responsible
  /// for putting every dataset still referenced by a live plan or a pinned
  /// store entry into `live`.
  std::vector<std::string> Collect(const std::set<std::string>& live);

  size_t size() const { return datasets_.size(); }

  /// All dataset ids, in id order.
  std::vector<std::string> Ids() const;

  /// Total raw bytes across all stored datasets.
  uint64_t TotalRawBytes() const;

 private:
  std::map<std::string, DatasetPtr> datasets_;
};

}  // namespace stubby

// StoredDataset: an in-memory stand-in for a dataset in the distributed
// file-system. Payloads are kept partitioned so that partition pruning,
// range layouts, and pre-sorted inputs behave like their on-disk
// counterparts.
//
// Partitions are held as PartitionData: a dual-representation payload that
// can be either row-native or column-native, with the other representation
// derived lazily and cached. The vectorized executor scans column-native
// partitions as zero-copy RowBatch views (no per-chunk FromRows), while
// row-path consumers (signatures, catalog persistence, merge-mode reads)
// keep seeing `const std::vector<Row>&` exactly as before. Byte accounting
// is representation-independent: per-row serialized sizes are integer-summed
// in row order, so raw_bytes()/RangeBytes() are bit-identical however the
// payload is stored.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/layout.h"
#include "mr/row_batch.h"
#include "mr/schema.h"
#include "mr/tuple.h"

namespace stubby {

/// One partition's payload, stored row-native or column-native. Cheap to
/// copy: state lives in an immutable shared representation (only the lazy
/// caches mutate, under a mutex). Concurrent readers are safe.
class PartitionData {
 public:
  /// Empty partition (row-native, zero rows).
  PartitionData();

  /// Row-native payload. Columnar-capable iff all rows have equal arity
  /// (columns are then derived lazily on first batch access).
  explicit PartitionData(std::vector<Row> rows);

  /// Column-native payload sharing the batch's columns (zero-copy when the
  /// batch is dense with an identity selection; otherwise the selected
  /// values are gathered per column, preserving broadcast columns).
  static PartitionData FromBatch(const RowBatch& batch);

  /// Physical row count.
  size_t num_rows() const;

  /// True if the payload can be exposed as a RowBatch (column-native, or
  /// row-native with uniform arity).
  bool columnar() const;

  /// Column count; only meaningful when columnar().
  size_t num_columns() const;

  /// True if the payload was constructed column-native (vs derived).
  bool column_native() const;

  /// Rows, deriving and caching them from columns on first use.
  const std::vector<Row>& rows() const;

  /// The whole partition as a batch sharing this partition's columns
  /// (identity selection). Requires columnar().
  RowBatch AsBatch() const;

  /// Rows [lo, hi) as a batch sharing this partition's columns (selection
  /// restricted to the range). Requires columnar() and lo <= hi <= num_rows.
  RowBatch BatchSlice(size_t lo, size_t hi) const;

  /// Sum of Row::SerializedSize over all rows (integer sum, row order —
  /// identical for either representation).
  uint64_t raw_bytes() const;

  /// Sum of Row::SerializedSize over rows [lo, hi).
  uint64_t RangeBytes(size_t lo, size_t hi) const;

 private:
  struct Rep;
  std::shared_ptr<Rep> rep_;
};

/// One dataset in the simulated DFS.
class StoredDataset {
 public:
  StoredDataset(std::string id, Schema schema, Layout layout)
      : id_(std::move(id)),
        schema_(std::move(schema)),
        layout_(std::move(layout)) {}

  const std::string& id() const { return id_; }
  const Schema& schema() const { return schema_; }
  const Layout& layout() const { return layout_; }

  size_t num_partitions() const { return partitions_.size(); }

  /// Partition `i` as rows (lazily materialized from columns if needed).
  const std::vector<Row>& partition(size_t i) const {
    return partitions_[i].rows();
  }

  /// Partition `i`'s payload, representation and all (columnar scan path).
  const PartitionData& partition_data(size_t i) const {
    return partitions_[i];
  }

  /// Appends a (already laid-out) partition.
  void AddPartition(std::vector<Row> rows);
  void AddPartition(PartitionData partition);

  /// Physical record count across partitions (the in-memory sample).
  uint64_t num_rows() const { return num_rows_; }

  /// Physical uncompressed byte size of the sample.
  uint64_t raw_bytes() const { return raw_bytes_; }

  /// Scale factor: the stored rows are a sample standing in for a dataset
  /// `logical_scale` times larger. All execution *accounting* (task counts,
  /// I/O bytes, record counts) uses logical sizes; UDFs run on the sample.
  /// This is how the paper's multi-hundred-GB datasets are simulated at
  /// laptop scale with realistic task parallelism.
  double logical_scale() const { return logical_scale_; }
  void set_logical_scale(double s) { logical_scale_ = s < 1.0 ? 1.0 : s; }

  /// Logical record count / byte size (physical x scale).
  uint64_t logical_rows() const {
    return static_cast<uint64_t>(static_cast<double>(num_rows_) *
                                 logical_scale_);
  }
  uint64_t logical_bytes() const {
    return static_cast<uint64_t>(static_cast<double>(raw_bytes_) *
                                 logical_scale_);
  }

  /// Bytes occupied on (simulated) disk, after compression if any.
  uint64_t stored_bytes(double compress_ratio) const;

  /// All rows concatenated (for result comparison in tests).
  std::vector<Row> AllRows() const;

  /// Rows of the partitions listed in `parts` only (partition pruning path).
  std::vector<Row> RowsOfPartitions(const std::vector<int>& parts) const;

  /// Builds a dataset by distributing `rows` according to `layout` over
  /// `num_partitions` buckets (hash/range partitioning + per-partition sort).
  /// For an unpartitioned layout, rows are round-robin split into blocks of
  /// roughly block_mb.
  static Result<std::shared_ptr<StoredDataset>> FromRows(
      std::string id, const Schema& schema, Layout layout,
      std::vector<Row> rows, int num_partitions);

 private:
  std::string id_;
  Schema schema_;
  Layout layout_;
  std::vector<PartitionData> partitions_;
  uint64_t num_rows_ = 0;
  uint64_t raw_bytes_ = 0;
  double logical_scale_ = 1.0;
};

using DatasetPtr = std::shared_ptr<StoredDataset>;

}  // namespace stubby

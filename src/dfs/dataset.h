// StoredDataset: an in-memory stand-in for a dataset in the distributed
// file-system. Rows are kept partitioned so that partition pruning, range
// layouts, and pre-sorted inputs behave like their on-disk counterparts.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/layout.h"
#include "mr/schema.h"
#include "mr/tuple.h"

namespace stubby {

/// One dataset in the simulated DFS.
class StoredDataset {
 public:
  StoredDataset(std::string id, Schema schema, Layout layout)
      : id_(std::move(id)),
        schema_(std::move(schema)),
        layout_(std::move(layout)) {}

  const std::string& id() const { return id_; }
  const Schema& schema() const { return schema_; }
  const Layout& layout() const { return layout_; }

  size_t num_partitions() const { return partitions_.size(); }
  const std::vector<Row>& partition(size_t i) const { return partitions_[i]; }
  const std::vector<std::vector<Row>>& partitions() const {
    return partitions_;
  }

  /// Appends a (already laid-out) partition.
  void AddPartition(std::vector<Row> rows);

  /// Physical record count across partitions (the in-memory sample).
  uint64_t num_rows() const { return num_rows_; }

  /// Physical uncompressed byte size of the sample.
  uint64_t raw_bytes() const { return raw_bytes_; }

  /// Scale factor: the stored rows are a sample standing in for a dataset
  /// `logical_scale` times larger. All execution *accounting* (task counts,
  /// I/O bytes, record counts) uses logical sizes; UDFs run on the sample.
  /// This is how the paper's multi-hundred-GB datasets are simulated at
  /// laptop scale with realistic task parallelism.
  double logical_scale() const { return logical_scale_; }
  void set_logical_scale(double s) { logical_scale_ = s < 1.0 ? 1.0 : s; }

  /// Logical record count / byte size (physical x scale).
  uint64_t logical_rows() const {
    return static_cast<uint64_t>(static_cast<double>(num_rows_) *
                                 logical_scale_);
  }
  uint64_t logical_bytes() const {
    return static_cast<uint64_t>(static_cast<double>(raw_bytes_) *
                                 logical_scale_);
  }

  /// Bytes occupied on (simulated) disk, after compression if any.
  uint64_t stored_bytes(double compress_ratio) const;

  /// All rows concatenated (for result comparison in tests).
  std::vector<Row> AllRows() const;

  /// Rows of the partitions listed in `parts` only (partition pruning path).
  std::vector<Row> RowsOfPartitions(const std::vector<int>& parts) const;

  /// Builds a dataset by distributing `rows` according to `layout` over
  /// `num_partitions` buckets (hash/range partitioning + per-partition sort).
  /// For an unpartitioned layout, rows are round-robin split into blocks of
  /// roughly block_mb.
  static Result<std::shared_ptr<StoredDataset>> FromRows(
      std::string id, const Schema& schema, Layout layout,
      std::vector<Row> rows, int num_partitions);

 private:
  std::string id_;
  Schema schema_;
  Layout layout_;
  std::vector<std::vector<Row>> partitions_;
  uint64_t num_rows_ = 0;
  uint64_t raw_bytes_ = 0;
  double logical_scale_ = 1.0;
};

using DatasetPtr = std::shared_ptr<StoredDataset>;

}  // namespace stubby

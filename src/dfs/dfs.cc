#include "dfs/dfs.h"

namespace stubby {

Status Dfs::Put(DatasetPtr dataset) {
  auto [it, inserted] = datasets_.emplace(dataset->id(), dataset);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + dataset->id() +
                                 "' already in DFS");
  }
  return Status::OK();
}

void Dfs::PutOrReplace(DatasetPtr dataset) {
  datasets_[dataset->id()] = std::move(dataset);
}

Result<DatasetPtr> Dfs::Get(const std::string& id) const {
  auto it = datasets_.find(id);
  if (it == datasets_.end()) {
    return Status::NotFound("dataset '" + id + "' not in DFS");
  }
  return it->second;
}

bool Dfs::Exists(const std::string& id) const {
  return datasets_.count(id) > 0;
}

void Dfs::Drop(const std::string& id) { datasets_.erase(id); }

void Dfs::Clear() { datasets_.clear(); }

std::vector<std::string> Dfs::Collect(const std::set<std::string>& live) {
  std::vector<std::string> collected;
  for (auto it = datasets_.begin(); it != datasets_.end();) {
    if (live.count(it->first) == 0) {
      collected.push_back(it->first);
      it = datasets_.erase(it);
    } else {
      ++it;
    }
  }
  return collected;
}

std::vector<std::string> Dfs::Ids() const {
  std::vector<std::string> ids;
  ids.reserve(datasets_.size());
  for (const auto& [id, ds] : datasets_) ids.push_back(id);
  return ids;
}

uint64_t Dfs::TotalRawBytes() const {
  uint64_t total = 0;
  for (const auto& [id, ds] : datasets_) total += ds->raw_bytes();
  return total;
}

}  // namespace stubby

// Layout: how a dataset is laid out in the simulated distributed
// file-system — partitioning, per-partition ordering, and compression
// (Section 2.1: D = <d, l, a>). Stubby currently supports horizontal
// partitioning only, like the paper.

#pragma once

#include <optional>
#include <string>

#include "mr/partitioner.h"
#include "mr/schema.h"

namespace stubby {

/// Physical design of a stored dataset.
struct Layout {
  /// Partitioning of the dataset across files. nullopt = the dataset is
  /// split into blocks with no semantic partitioning.
  std::optional<PartitionSpec> partitioning;

  /// Per-partition sort order (empty = unordered). For datasets produced by
  /// a MapReduce job this is the job's per-partition sort order.
  std::vector<std::string> order_fields;

  /// Whether the files are compressed (affects read/write byte accounting).
  bool compressed = false;

  /// DFS block size in MB; determines the default number of map tasks for
  /// consumers of unpartitioned data.
  double block_mb = 64.0;

  bool operator==(const Layout& other) const;
  std::string ToString() const;
};

}  // namespace stubby

// Status: lightweight error propagation without exceptions, following the
// Arrow / RocksDB idiom. Library code returns Status (or Result<T>) instead
// of throwing; callers check ok() or use the STUBBY_RETURN_NOT_OK macro.

#pragma once

#include <ostream>
#include <string>
#include <utility>

namespace stubby {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnknown,
};

/// Returns the canonical lowercase name of a status code, e.g.
/// "invalid_argument".
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace stubby

/// Propagates a non-OK Status to the caller.
#define STUBBY_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::stubby::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Aborts the process with a message if `expr` yields a non-OK Status. For
/// use in examples/benches where failure is unrecoverable.
#define STUBBY_CHECK_OK(expr)                                       \
  do {                                                              \
    ::stubby::Status _st = (expr);                                  \
    if (!_st.ok()) ::stubby::internal::DieOnError(_st, __FILE__, __LINE__); \
  } while (0)

namespace stubby::internal {
[[noreturn]] void DieOnError(const Status& st, const char* file, int line);
}  // namespace stubby::internal

#include "common/rng.h"

#include <cmath>

namespace stubby {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(&state);
  s1_ = SplitMix64(&state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift128+ must not be all-zero
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::NextUint64(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextZipf(uint64_t n, double skew) {
  // Rejection-inversion sampling (Hormann & Derflinger). Valid for skew != 1;
  // nudge skew slightly if it is exactly 1 to avoid the harmonic special
  // case without observable distribution change at our scales.
  if (n <= 1) return 1;
  double s = skew;
  if (std::fabs(s - 1.0) < 1e-9) s = 1.0 + 1e-9;
  const double one_minus_s = 1.0 - s;
  auto h = [&](double x) { return std::pow(x, one_minus_s) / one_minus_s; };
  auto h_inv = [&](double x) {
    return std::pow(one_minus_s * x, 1.0 / one_minus_s);
  };
  const double hx0 = h(1.5) - 1.0;
  const double hn = h(static_cast<double>(n) + 0.5);
  for (;;) {
    double u = hx0 + NextDouble() * (hn - hx0);
    double x = h_inv(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n) k = n;
    if (static_cast<double>(k) - x <= 1.0 - std::pow(1.5, one_minus_s) ||
        u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s)) {
      return k;
    }
  }
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace stubby

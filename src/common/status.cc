#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace stubby {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kFailedPrecondition:
      return "failed_precondition";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnknown:
      return "unknown";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {

void DieOnError(const Status& st, const char* file, int line) {
  std::fprintf(stderr, "STUBBY_CHECK_OK failed at %s:%d: %s\n", file, line,
               st.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace stubby

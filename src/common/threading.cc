#include "common/threading.h"

#include <algorithm>
#include <memory>

namespace stubby {

namespace {
thread_local bool t_in_parallel_region = false;
}  // namespace

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

int ThreadPool::HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::DrainBatch(Batch* batch) {
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  for (;;) {
    size_t i;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (batch->next >= batch->n) break;
      i = batch->next++;
    }
    (*batch->fn)(i);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (++batch->done == batch->n) {
        done_cv_.notify_all();
        break;
      }
    }
  }
  t_in_parallel_region = was_in_region;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    // Hold a shared reference while draining so the batch outlives any
    // straggler worker that is between tasks when the caller returns.
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && batch_->next < batch_->n);
      });
      if (stop_) return;
      batch = batch_;
    }
    DrainBatch(batch.get());
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Nested (or single-threaded) execution is inline: identical semantics,
  // and a task blocking on its own pool can never deadlock.
  if (threads_ == 1 || t_in_parallel_region) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (size_t i = 0; i < n; ++i) fn(i);
    t_in_parallel_region = was_in_region;
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
  }
  work_cv_.notify_all();
  DrainBatch(batch.get());
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return batch->done == batch->n; });
    batch_ = nullptr;
  }
}

void RunTasks(ThreadPool* pool, size_t n,
              const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace stubby

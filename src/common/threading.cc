#include "common/threading.h"

#include <algorithm>
#include <chrono>
#include <memory>

namespace stubby {

namespace {
thread_local bool t_in_parallel_region = false;

uint64_t UsecSince(std::chrono::steady_clock::time_point t0) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

bool ThreadPool::InParallelRegion() { return t_in_parallel_region; }

int ThreadPool::HardwareThreads() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int threads, Options options)
    : threads_(std::max(1, threads)), options_(options) {
  if (options_.chunks_per_thread < 1) options_.chunks_per_thread = 1;
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.batches = stat_batches_.load(std::memory_order_relaxed);
  s.chunks = stat_chunks_.load(std::memory_order_relaxed);
  s.tasks = stat_tasks_.load(std::memory_order_relaxed);
  s.steals = stat_steals_.load(std::memory_order_relaxed);
  s.busy_usec = stat_busy_usec_.load(std::memory_order_relaxed);
  s.wall_usec = stat_wall_usec_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::ResetStats() {
  stat_batches_.store(0, std::memory_order_relaxed);
  stat_chunks_.store(0, std::memory_order_relaxed);
  stat_tasks_.store(0, std::memory_order_relaxed);
  stat_steals_.store(0, std::memory_order_relaxed);
  stat_busy_usec_.store(0, std::memory_order_relaxed);
  stat_wall_usec_.store(0, std::memory_order_relaxed);
}

bool ThreadPool::ClaimChunk(Batch* batch, size_t self, Chunk* out,
                            bool* stolen) {
  {
    Deque& own = *batch->deques[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.chunks.empty()) {
      *out = own.chunks.back();
      own.chunks.pop_back();
      *stolen = false;
      return true;
    }
  }
  if (!options_.work_stealing) return false;
  const size_t k = batch->deques.size();
  for (size_t off = 1; off < k; ++off) {
    Deque& victim = *batch->deques[(self + off) % k];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.chunks.empty()) {
      // Steal from the front: the owner works from the back, so thief and
      // victim touch opposite ends and the stolen chunk is the one the
      // owner would have reached last.
      *out = victim.chunks.front();
      victim.chunks.pop_front();
      *stolen = true;
      return true;
    }
  }
  return false;
}

void ThreadPool::DrainBatch(Batch* batch, size_t self) {
  const bool was_in_region = t_in_parallel_region;
  t_in_parallel_region = true;
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t ran = 0;
  uint64_t stole = 0;
  for (;;) {
    Chunk c;
    bool stolen = false;
    if (!ClaimChunk(batch, self, &c, &stolen)) break;
    const size_t count = c.end - c.begin;
    batch->unclaimed.fetch_sub(count, std::memory_order_relaxed);
    if (stolen) ++stole;
    for (size_t i = c.begin; i < c.end; ++i) (*batch->fn)(i);
    ran += count;
    // Release pairs with the caller's acquire load in the done_cv_ wait,
    // ordering every task's writes before the caller observes completion.
    if (batch->done.fetch_add(count, std::memory_order_acq_rel) + count ==
        batch->n) {
      // Take the lock (empty critical section) so the notify cannot slip
      // between the caller's predicate check and its wait.
      { std::lock_guard<std::mutex> lock(mutex_); }
      done_cv_.notify_all();
    }
  }
  stat_tasks_.fetch_add(ran, std::memory_order_relaxed);
  stat_steals_.fetch_add(stole, std::memory_order_relaxed);
  stat_busy_usec_.fetch_add(UsecSince(t0), std::memory_order_relaxed);
  t_in_parallel_region = was_in_region;
}

void ThreadPool::WorkerLoop(size_t self) {
  for (;;) {
    // Hold a shared reference while draining so the batch outlives any
    // straggler worker that is between chunks when the caller returns.
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ ||
               (batch_ != nullptr &&
                batch_->unclaimed.load(std::memory_order_relaxed) > 0);
      });
      if (stop_) return;
      batch = batch_;
    }
    DrainBatch(batch.get(), self);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Nested (or single-threaded) execution is inline: identical semantics,
  // and a task blocking on its own pool can never deadlock.
  if (threads_ == 1 || t_in_parallel_region) {
    const bool was_in_region = t_in_parallel_region;
    t_in_parallel_region = true;
    for (size_t i = 0; i < n; ++i) fn(i);
    t_in_parallel_region = was_in_region;
    return;
  }

  std::lock_guard<std::mutex> submit(submit_mutex_);
  const auto w0 = std::chrono::steady_clock::now();
  const size_t k = static_cast<size_t>(threads_);
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  batch->deques.reserve(k);
  for (size_t q = 0; q < k; ++q) {
    batch->deques.push_back(std::make_unique<Deque>());
  }
  // Chunk size is a pure function of (n, threads, chunks_per_thread) —
  // never of load or timing. Chunking cannot affect results (every index
  // runs exactly once, into its own slot); it only trades scheduling
  // overhead against steal granularity.
  const size_t target = k * options_.chunks_per_thread;
  const size_t chunk = std::max<size_t>(1, (n + target - 1) / target);
  size_t dealt = 0;
  uint64_t nchunks = 0;
  for (size_t begin = 0; begin < n; begin += chunk) {
    Chunk c{begin, std::min(n, begin + chunk)};
    // Dealt round-robin before the batch is published: no locks needed.
    batch->deques[dealt % k]->chunks.push_back(c);
    ++dealt;
    ++nchunks;
  }
  batch->unclaimed.store(n, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
  }
  work_cv_.notify_all();
  DrainBatch(batch.get(), 0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
    batch_ = nullptr;
  }
  stat_batches_.fetch_add(1, std::memory_order_relaxed);
  stat_chunks_.fetch_add(nchunks, std::memory_order_relaxed);
  stat_wall_usec_.fetch_add(UsecSince(w0), std::memory_order_relaxed);
}

void RunTasks(ThreadPool* pool, size_t n,
              const std::function<void(size_t)>& fn) {
  if (pool != nullptr) {
    pool->ParallelFor(n, fn);
  } else {
    for (size_t i = 0; i < n; ++i) fn(i);
  }
}

}  // namespace stubby

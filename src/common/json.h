// Minimal JSON value, writer, and parser — no external dependencies. Used
// to export/import annotated workflow plans (the counterpart of the
// prototype's Pig export/import feature, Section 6 of the paper).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace stubby {

/// A JSON value. Object field order is preserved (vector of pairs) so
/// exported plans are stable and diffable.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}             // NOLINT
  Json(double n) : type_(Type::kNumber), number_(n) {}       // NOLINT
  Json(int n) : type_(Type::kNumber), number_(n) {}          // NOLINT
  Json(int64_t n)                                            // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(uint64_t n)                                           // NOLINT
      : type_(Type::kNumber), number_(static_cast<double>(n)) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), string_(s) {}  // NOLINT

  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  int64_t AsInt() const { return static_cast<int64_t>(number_); }
  const std::string& AsString() const { return string_; }

  /// Array access.
  const std::vector<Json>& items() const { return items_; }
  void Append(Json v) { items_.push_back(std::move(v)); }
  size_t size() const {
    return is_array() ? items_.size() : fields_.size();
  }

  /// Object access. operator[] creates missing fields (for building);
  /// Find returns nullptr when absent.
  Json& operator[](const std::string& key);
  const Json* Find(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& fields() const {
    return fields_;
  }

  /// Typed object lookups with defaults.
  double GetNumber(const std::string& key, double fallback = 0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Serializes; indent < 0 = compact, otherwise pretty-printed.
  std::string Dump(int indent = 2) const;

  /// Parses a JSON document.
  static Result<Json> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

}  // namespace stubby

// Deterministic task parallelism: a fixed-size worker pool with fork-join
// primitives (ParallelFor / ordered ParallelMap). The pool only decides
// *when* a task runs, never *what* it computes or *how* results combine:
// callers submit index-addressed pure tasks, collect results in submission
// order, and perform all shared-state merges serially afterwards. Under
// that discipline every computation is bit-identical for any thread count,
// which is the invariant the executor, the unit search, and the benches
// rely on.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stubby {

/// Fixed-size worker pool. One ParallelFor batch runs at a time (concurrent
/// top-level calls serialize); nested calls from inside a task execute
/// inline on the calling thread, so fork-join nesting can never deadlock a
/// fixed pool and scheduling depth never affects results.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in every
  /// batch, so `threads` is the true parallel width). Values < 1 clamp to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static int HardwareThreads();

  /// Runs fn(0), ..., fn(n-1) across the pool and the calling thread,
  /// blocking until every task finished. Tasks must not touch shared
  /// mutable state except through their own index's slot. Called from
  /// inside a running task, executes the whole loop inline.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// ParallelFor that collects fn(i) into a vector in index order —
  /// submission order, not completion order.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// True while the current thread is executing a ParallelFor task (worker
  /// or participating caller) of any pool.
  static bool InParallelRegion();

 private:
  /// Shared state of one in-flight ParallelFor.
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    size_t next = 0;  // next unclaimed index (under mutex_)
    size_t done = 0;  // finished tasks (under mutex_)
  };

  void WorkerLoop();
  /// Claims and runs tasks of the current batch until none remain; returns
  /// the number of tasks this thread completed.
  void DrainBatch(Batch* batch);

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a batch arrived / shutdown
  std::condition_variable done_cv_;  // caller: batch completed
  std::shared_ptr<Batch> batch_;     // in-flight batch (null when idle)
  bool stop_ = false;

  std::mutex submit_mutex_;  // serializes top-level ParallelFor calls
};

/// Convenience: runs fn(0..n-1) on `pool`, or inline (in index order) when
/// `pool` is null, single-threaded, or the caller is already inside a
/// ParallelFor task. The semantics are identical in every case.
void RunTasks(ThreadPool* pool, size_t n,
              const std::function<void(size_t)>& fn);

}  // namespace stubby

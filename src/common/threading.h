// Deterministic task parallelism: a fixed-size worker pool with fork-join
// primitives (ParallelFor / ordered ParallelMap) scheduled by chunked
// work stealing. The pool only decides *when* a task runs, never *what* it
// computes or *how* results combine: callers submit index-addressed pure
// tasks, collect results in submission order, and perform all shared-state
// merges serially afterwards. Under that discipline every computation is
// bit-identical for any thread count — and for any steal schedule, because
// stealing only permutes execution order, which the discipline already
// makes unobservable. This is the invariant the executor, the unit search,
// and the benches rely on.
//
// Scheduling. A ParallelFor batch splits [0, n) into fixed-size chunks (a
// pure function of n and the pool width, never of load or timing) and
// deals them round-robin into one deque per participant (the caller is
// participant 0). Each participant pops from the back of its own deque;
// when that runs dry it steals from the front of the other deques
// (mutex-sharded: one mutex per deque, so a steal contends with exactly
// one victim). Stealing keeps every core busy through skewed batches —
// one expensive candidate no longer strands the chunks queued behind it —
// and can be disabled per pool for A/B measurement, which degrades to the
// static round-robin schedule.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stubby {

/// Fixed-size worker pool. One ParallelFor batch runs at a time (concurrent
/// top-level calls serialize); nested calls from inside a task execute
/// inline on the calling thread, so fork-join nesting can never deadlock a
/// fixed pool and scheduling depth never affects results.
class ThreadPool {
 public:
  /// Scheduling knobs. None of these can affect computed results — they
  /// only move work between threads — so they are safe to flip per pool
  /// for measurement.
  struct Options {
    /// When false, participants only drain their own deque (the pre-steal
    /// static round-robin schedule). Kept as an A/B switch for the
    /// skewed-batch benchmarks.
    bool work_stealing = true;
    /// Target chunks dealt per participant. More chunks = finer stealing
    /// granularity, more scheduling overhead. The chunk size derived from
    /// this is a pure function of (n, threads, chunks_per_thread).
    size_t chunks_per_thread = 4;
  };

  /// Cumulative scheduling counters. Observability only: steals and the
  /// time totals depend on thread timing, so they must never feed any
  /// deterministic output (plans, costs, instrumentation counters).
  struct Stats {
    uint64_t batches = 0;    ///< top-level ParallelFor batches run
    uint64_t chunks = 0;     ///< chunks dealt across all batches
    uint64_t tasks = 0;      ///< indices executed across all batches
    uint64_t steals = 0;     ///< chunks claimed from another deque
    uint64_t busy_usec = 0;  ///< summed per-participant drain time
    uint64_t wall_usec = 0;  ///< summed caller-side batch wall time
  };

  /// Spawns `threads - 1` workers (the calling thread participates in every
  /// batch, so `threads` is the true parallel width). Values < 1 clamp to 1.
  explicit ThreadPool(int threads) : ThreadPool(threads, Options{}) {}
  ThreadPool(int threads, Options options);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }
  const Options& options() const { return options_; }

  /// Snapshot of the cumulative scheduling counters (racy with an
  /// in-flight batch only in the sense of being mid-batch fresh).
  Stats stats() const;
  void ResetStats();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static int HardwareThreads();

  /// Runs fn(0), ..., fn(n-1) across the pool and the calling thread,
  /// blocking until every task finished. Tasks must not touch shared
  /// mutable state except through their own index's slot. Called from
  /// inside a running task, executes the whole loop inline.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// ParallelFor that collects fn(i) into a vector in index order —
  /// submission order, not completion order.
  template <typename T, typename Fn>
  std::vector<T> ParallelMap(size_t n, Fn&& fn) {
    std::vector<T> out(n);
    ParallelFor(n, [&](size_t i) { out[i] = fn(i); });
    return out;
  }

  /// True while the current thread is executing a ParallelFor task (worker
  /// or participating caller) of any pool.
  static bool InParallelRegion();

 private:
  /// A contiguous run of task indices, the unit of scheduling and stealing.
  struct Chunk {
    size_t begin = 0;
    size_t end = 0;
  };

  /// One participant's deque, behind its own mutex so a steal contends
  /// with exactly one victim.
  struct Deque {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  /// Shared state of one in-flight ParallelFor.
  struct Batch {
    size_t n = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::vector<std::unique_ptr<Deque>> deques;  // one per participant
    std::atomic<size_t> unclaimed{0};  ///< tasks still in some deque
    std::atomic<size_t> done{0};       ///< tasks finished
  };

  void WorkerLoop(size_t self);
  /// Claims chunks (own deque first, then steals when enabled) and runs
  /// their tasks until no chunk is claimable anywhere.
  void DrainBatch(Batch* batch, size_t self);
  /// Pops the next chunk: own back, else (stealing) another deque's front.
  bool ClaimChunk(Batch* batch, size_t self, Chunk* out, bool* stolen);

  int threads_ = 1;
  Options options_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: a batch arrived / shutdown
  std::condition_variable done_cv_;  // caller: batch completed
  std::shared_ptr<Batch> batch_;     // in-flight batch (null when idle)
  bool stop_ = false;

  std::mutex submit_mutex_;  // serializes top-level ParallelFor calls

  std::atomic<uint64_t> stat_batches_{0};
  std::atomic<uint64_t> stat_chunks_{0};
  std::atomic<uint64_t> stat_tasks_{0};
  std::atomic<uint64_t> stat_steals_{0};
  std::atomic<uint64_t> stat_busy_usec_{0};
  std::atomic<uint64_t> stat_wall_usec_{0};
};

/// Convenience: runs fn(0..n-1) on `pool`, or inline (in index order) when
/// `pool` is null, single-threaded, or the caller is already inside a
/// ParallelFor task. The semantics are identical in every case.
void RunTasks(ThreadPool* pool, size_t n,
              const std::function<void(size_t)>& fn);

}  // namespace stubby

#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace stubby {

Json& Json::operator[](const std::string& key) {
  type_ = Type::kObject;
  for (auto& [k, v] : fields_) {
    if (k == key) return v;
  }
  fields_.emplace_back(key, Json());
  return fields_.back().second;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::GetNumber(const std::string& key, double fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void NewlineIndent(std::string* out, int indent, int depth) {
  if (indent < 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent * depth), ' ');
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber: {
      double i;
      char buf[64];
      if (std::modf(number_, &i) == 0.0 && std::fabs(number_) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", number_);
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", number_);
      }
      *out += buf;
      return;
    }
    case Type::kString:
      EscapeTo(string_, out);
      return;
    case Type::kArray: {
      if (items_.empty()) {
        *out += "[]";
        return;
      }
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        NewlineIndent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      NewlineIndent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Type::kObject: {
      if (fields_.empty()) {
        *out += "{}";
        return;
      }
      out->push_back('{');
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out->push_back(',');
        NewlineIndent(out, indent, depth + 1);
        EscapeTo(fields_[i].first, out);
        *out += indent < 0 ? ":" : ": ";
        fields_[i].second.DumpTo(out, indent, depth + 1);
      }
      NewlineIndent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent JSON parser.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Json> Parse() {
    STUBBY_ASSIGN_OR_RETURN(Json v, Value());
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters at " +
                                     std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' at position " + std::to_string(pos_));
    }
    return Status::OK();
  }

  Result<Json> Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') return ObjectValue();
    if (c == '[') return ArrayValue();
    if (c == '"') {
      STUBBY_ASSIGN_OR_RETURN(std::string s, StringValue());
      return Json(std::move(s));
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Json(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Json(false);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Json();
    }
    return NumberValue();
  }

  Result<Json> ObjectValue() {
    STUBBY_RETURN_NOT_OK(Expect('{'));
    Json obj = Json::Object();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      STUBBY_ASSIGN_OR_RETURN(std::string key, StringValue());
      STUBBY_RETURN_NOT_OK(Expect(':'));
      STUBBY_ASSIGN_OR_RETURN(Json v, Value());
      obj[key] = std::move(v);
      if (Consume(',')) continue;
      STUBBY_RETURN_NOT_OK(Expect('}'));
      return obj;
    }
  }

  Result<Json> ArrayValue() {
    STUBBY_RETURN_NOT_OK(Expect('['));
    Json arr = Json::Array();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      STUBBY_ASSIGN_OR_RETURN(Json v, Value());
      arr.Append(std::move(v));
      if (Consume(',')) continue;
      STUBBY_RETURN_NOT_OK(Expect(']'));
      return arr;
    }
  }

  Result<std::string> StringValue() {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Status::InvalidArgument("expected string at " +
                                     std::to_string(pos_));
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("bad escape at end of input");
      }
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Status::InvalidArgument("bad \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Status::InvalidArgument("bad hex digit in \\u escape");
            }
          }
          // ASCII only (all exported content is ASCII).
          out.push_back(static_cast<char>(code & 0x7f));
          break;
        }
        default:
          return Status::InvalidArgument("unknown escape");
      }
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  Result<Json> NumberValue() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected number at " +
                                     std::to_string(start));
    }
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (...) {
      return Status::InvalidArgument("bad number at " + std::to_string(start));
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> Json::Parse(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace stubby

// Small string helpers shared across modules.

#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace stubby {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Joins a set with `sep` (iteration order of the set, i.e. sorted).
std::string Join(const std::set<std::string>& parts, const std::string& sep);

/// Splits `s` on character `sep`; empty tokens are preserved.
std::vector<std::string> Split(const std::string& s, char sep);

/// Returns true if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// printf-style formatting into std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a byte count using binary units, e.g. "1.5 MB".
std::string HumanBytes(uint64_t bytes);

/// Formats seconds as "1h02m03s" / "42.1s" depending on magnitude.
std::string HumanSeconds(double seconds);

/// Stable 64-bit hash of a string (FNV-1a).
uint64_t HashString(const std::string& s);

/// Combines two 64-bit hashes.
uint64_t HashCombine(uint64_t a, uint64_t b);

}  // namespace stubby

// Seeded pseudo-random number generation used across the library. All
// randomness in Stubby (data generators, RRS sampling) flows through Rng so
// that benches and tests are reproducible run-to-run.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace stubby {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). Cheap to copy;
/// each consumer should own its own instance seeded from a fixed constant.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n). n must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Zipf-distributed rank in [1, n] with exponent `skew` (> 0). Used to
  /// generate power-law datasets (social graphs, web graphs). Implemented by
  /// rejection-inversion; O(1) amortized.
  uint64_t NextZipf(uint64_t n, double skew);

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; streams do not overlap in
  /// practice for the sequence lengths used here.
  Rng Fork();

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace stubby

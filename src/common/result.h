// Result<T>: value-or-Status, the Arrow idiom for fallible functions that
// produce a value.

#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace stubby {

/// Holds either a value of type T or a non-OK Status describing why the
/// value could not be produced.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a programming error.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Access the contained value; undefined if !ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value or a fallback if this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_ = Status::OK();
  std::optional<T> value_;
};

}  // namespace stubby

/// Propagates the error of a Result expression, otherwise assigns the value.
#define STUBBY_ASSIGN_OR_RETURN(lhs, expr)       \
  STUBBY_ASSIGN_OR_RETURN_IMPL(                  \
      STUBBY_CONCAT_NAME(_res_, __LINE__), lhs, expr)

#define STUBBY_CONCAT_NAME_INNER(x, y) x##y
#define STUBBY_CONCAT_NAME(x, y) STUBBY_CONCAT_NAME_INNER(x, y)

#define STUBBY_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

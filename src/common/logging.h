// Minimal leveled logging. Quiet by default (warnings and errors only) so
// tests and benches stay readable; raise the level for debugging.

#pragma once

#include <sstream>
#include <string>

namespace stubby {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that is emitted to stderr.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace stubby

#define STUBBY_LOG(level)                                        \
  ::stubby::internal::LogMessage(::stubby::LogLevel::k##level,   \
                                 __FILE__, __LINE__)

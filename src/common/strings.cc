#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace stubby {

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string Join(const std::set<std::string>& parts, const std::string& sep) {
  std::string out;
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out += sep;
    out += p;
    first = false;
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int len = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (len > 0) {
    out.resize(static_cast<size_t>(len));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  if (unit == 0) return StrFormat("%llu B", (unsigned long long)bytes);
  return StrFormat("%.1f %s", v, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 60.0) return StrFormat("%.1fs", seconds);
  if (seconds < 3600.0) {
    int m = static_cast<int>(seconds / 60.0);
    return StrFormat("%dm%04.1fs", m, seconds - 60.0 * m);
  }
  int h = static_cast<int>(seconds / 3600.0);
  int m = static_cast<int>((seconds - 3600.0 * h) / 60.0);
  return StrFormat("%dh%02dm%02.0fs", h, m,
                   seconds - 3600.0 * h - 60.0 * m);
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  // Boost-style combine extended to 64 bits.
  a ^= b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4);
  return a;
}

}  // namespace stubby

// Wrapper machinery for executing stage pipelines inside a task — the
// simulator's counterpart of the wrapper MapReduce classes the paper's
// prototype adds to Pig (Section 6): vertical packing chains functions
// sequentially, and a kReduce stage performs a streaming group-by over its
// clustered input.

#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "mr/functions.h"
#include "workflow/graph.h"

namespace stubby {

/// Receives rows teed out of the middle of a pipeline.
class TeeSink {
 public:
  virtual ~TeeSink() = default;
  virtual void TeeEmit(const std::string& dataset_id, const Row& row) = 0;
};

/// Counters accumulated while a pipeline runs (physical units; the caller
/// scales them).
struct PipelineCounters {
  double cpu_units = 0.0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// Executes a stage pipeline over a stream of rows. Feed rows via Emit();
/// call Finish() exactly once at end-of-stream (flushes group buffers and
/// stage Finish hooks). UDFs are cloned per PipelineRunner, giving each
/// task fresh state.
class PipelineRunner : public Emitter {
 public:
  /// Builds a runner; resolves kReduce grouping fields against the evolving
  /// stream schema. `out` receives final rows; `tee` (may be null when the
  /// pipeline has no tee stages) receives side-output rows.
  static Result<std::unique_ptr<PipelineRunner>> Make(
      const std::vector<Stage>& stages, const Schema& input_schema,
      Emitter* out, TeeSink* tee);

  ~PipelineRunner() override;

  /// Processes one input row through the pipeline.
  void Emit(Row row) override;

  /// Flushes buffered groups and runs Finish hooks, in stage order.
  void Finish();

  const PipelineCounters& counters() const { return counters_; }

 private:
  PipelineRunner() = default;

  struct Node;
  std::vector<std::unique_ptr<Node>> nodes_;
  Emitter* final_out_ = nullptr;
  PipelineCounters counters_;
};

/// Applies a combine function to a bucket of rows that is already sorted on
/// `group_indices`: consecutive equal-key runs are each passed through
/// `fn`. Returns the combined rows (still sorted by construction of fn's
/// contract). `cpu_units` accumulates records * fn weight.
std::vector<Row> RunCombiner(const CombineFn& fn,
                             const std::vector<Row>& sorted_rows,
                             const std::vector<size_t>& group_indices,
                             double* cpu_units);

}  // namespace stubby

// Wrapper machinery for executing stage pipelines inside a task — the
// simulator's counterpart of the wrapper MapReduce classes the paper's
// prototype adds to Pig (Section 6): vertical packing chains functions
// sequentially, and a kReduce stage performs a streaming group-by over its
// clustered input.

#pragma once

#include <memory>
#include <vector>

#include "common/result.h"
#include "mr/functions.h"
#include "workflow/graph.h"

namespace stubby {

/// Receives rows teed out of the middle of a pipeline.
class TeeSink {
 public:
  virtual ~TeeSink() = default;
  virtual void TeeEmit(const std::string& dataset_id, const Row& row) = 0;
};

/// Counters accumulated while a pipeline runs (physical units; the caller
/// scales them).
struct PipelineCounters {
  double cpu_units = 0.0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
};

/// Executes a stage pipeline over a stream of rows. Feed rows via Emit();
/// call Finish() exactly once at end-of-stream (flushes group buffers and
/// stage Finish hooks). UDFs are cloned per PipelineRunner, giving each
/// task fresh state.
class PipelineRunner : public Emitter {
 public:
  /// Builds a runner; resolves kReduce grouping fields against the evolving
  /// stream schema. `out` receives final rows; `tee` (may be null when the
  /// pipeline has no tee stages) receives side-output rows.
  static Result<std::unique_ptr<PipelineRunner>> Make(
      const std::vector<Stage>& stages, const Schema& input_schema,
      Emitter* out, TeeSink* tee);

  ~PipelineRunner() override;

  /// Processes one input row through the pipeline.
  void Emit(Row row) override;

  /// Flushes buffered groups and runs Finish hooks, in stage order.
  void Finish();

  const PipelineCounters& counters() const { return counters_; }

 private:
  PipelineRunner() = default;

  struct Node;
  std::vector<std::unique_ptr<Node>> nodes_;
  Emitter* final_out_ = nullptr;
  PipelineCounters counters_;
};

/// Applies a combine function to a bucket of rows that is already sorted on
/// `group_indices`: consecutive equal-key runs are each passed through
/// `fn`. Returns the combined rows (still sorted by construction of fn's
/// contract). `cpu_units` accumulates records * fn weight.
std::vector<Row> RunCombiner(const CombineFn& fn,
                             const std::vector<Row>& sorted_rows,
                             const std::vector<size_t>& group_indices,
                             double* cpu_units);

/// Columnar RunCombiner: `sorted` holds a shuffle bucket whose selection is
/// already sorted on `group_indices`; equal-key runs go through the
/// function's CombineBatch kernel into a fresh dense batch. The function
/// must supports_batch(). Emitted rows and `cpu_units` match RunCombiner
/// over the same rows exactly.
RowBatch RunCombinerBatch(const CombineFn& fn, const RowBatch& sorted,
                          const std::vector<size_t>& group_indices,
                          double* cpu_units);

/// Columnar counterpart of PipelineRunner for all-map, tee-free, stateless
/// pipelines: each stage's batch kernel transforms the RowBatch
/// structurally instead of re-emitting every row.
///
/// Eligibility is all-or-nothing for a pipeline. PipelineRunner accumulates
/// cpu_units by adding stage weights depth-first per input row (w0, then w1
/// if stage 0 emitted, ...); floating-point addition is not associative, so
/// mixing batched and row-at-a-time segments would reorder those additions
/// and break the bit-identity contract. Instead, a fully batched pipeline
/// records the selection after every stage and replays the weight additions
/// in the exact per-row order — reproducing cpu_units bit-for-bit.
class BatchPipelineRunner {
 public:
  /// True when every stage is a kMap with no tee whose function is
  /// stateless and implements MapBatch. (Stateless rules out Finish-time
  /// emission, which has no batch equivalent.)
  static bool Eligible(const std::vector<Stage>& stages);

  /// Builds a runner over `stages` (which must be Eligible); clones the
  /// stage functions and runs their Setup hooks, like PipelineRunner::Make.
  static BatchPipelineRunner Make(const std::vector<Stage>& stages);

  /// Runs the pipeline over `batch` (shares the input's columns; the
  /// caller's batch is not modified) and returns the output batch.
  /// Call at most once, mirroring a PipelineRunner task lifetime.
  RowBatch Run(RowBatch batch);

  const PipelineCounters& counters() const { return counters_; }

 private:
  BatchPipelineRunner() = default;

  struct BatchNode {
    std::shared_ptr<MapFn> fn;
    double cpu_weight = 1.0;
  };
  std::vector<BatchNode> nodes_;
  PipelineCounters counters_;
};

/// Columnar counterpart of a reduce-task PipelineRunner for the reduce-side
/// batch path: an empty pipeline (pass-through) or a single stateless,
/// tee-free kReduce stage with a batch kernel. The input batch's selection
/// must already be sorted on the stage's grouping fields; consecutive
/// equal-key groups are fed to ReduceBatch. Counters (rows_in/rows_out and
/// the per-row cpu_units accumulation order) reproduce the row path
/// bit-for-bit — a kReduce node charges its weight per *input* row on
/// arrival and group emissions add none, so the batch replay is a plain
/// in-order fold of the stage weight over the input rows.
class BatchReducePipeline {
 public:
  /// True when `stages` is empty or a single tee-free kReduce whose
  /// function is stateless and implements ReduceBatch.
  static bool Eligible(const std::vector<Stage>& stages);

  /// Builds a runner over `stages` (which must be Eligible), resolving the
  /// grouping fields against `input_schema`; clones the reduce function and
  /// runs Setup, like PipelineRunner::Make.
  static Result<BatchReducePipeline> Make(const std::vector<Stage>& stages,
                                          const Schema& input_schema);

  /// Runs the pipeline over the sorted `batch`; returns the output batch.
  /// Call at most once, mirroring a PipelineRunner task lifetime.
  RowBatch Run(const RowBatch& batch);

  const PipelineCounters& counters() const { return counters_; }

 private:
  BatchReducePipeline() = default;

  std::shared_ptr<ReduceFn> fn_;  // null: empty pipeline (pass-through)
  std::vector<size_t> group_indices_;
  size_t out_arity_ = 0;
  double cpu_weight_ = 1.0;
  PipelineCounters counters_;
};

}  // namespace stubby

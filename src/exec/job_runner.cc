#include "exec/job_runner.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "exec/wrappers.h"

namespace stubby {

namespace {

constexpr double kMB = 1024.0 * 1024.0;

uint64_t RowsBytes(const std::vector<Row>& rows) {
  uint64_t b = 0;
  for (const Row& r : rows) b += r.SerializedSize();
  return b;
}

/// Collects tee rows during one task; the caller drains per-dataset vectors
/// after the task finishes (so per-task partition boundaries are kept).
class TaskTeeSink : public TeeSink {
 public:
  void TeeEmit(const std::string& dataset_id, const Row& row) override {
    rows_[dataset_id].push_back(row);
  }
  std::map<std::string, std::vector<Row>>& rows() { return rows_; }

 private:
  std::map<std::string, std::vector<Row>> rows_;
};

/// Accumulates a dataset under construction (per-partition rows + scaled
/// accounting so the stored dataset gets the right logical scale).
struct DatasetBuilder {
  std::vector<std::vector<Row>> partitions;
  double scaled_records = 0.0;
  double scaled_bytes = 0.0;
  uint64_t physical_bytes = 0;

  void Add(std::vector<Row> rows, double scale) {
    uint64_t b = RowsBytes(rows);
    scaled_records += static_cast<double>(rows.size()) * scale;
    scaled_bytes += static_cast<double>(b) * scale;
    physical_bytes += b;
    partitions.push_back(std::move(rows));
  }

  /// Ensures partition index `r` exists and appends to it (reduce outputs
  /// are keyed by reduce task index).
  void AddTo(size_t r, std::vector<Row> rows, double scale) {
    if (partitions.size() <= r) partitions.resize(r + 1);
    uint64_t b = RowsBytes(rows);
    scaled_records += static_cast<double>(rows.size()) * scale;
    scaled_bytes += static_cast<double>(b) * scale;
    physical_bytes += b;
    auto& p = partitions[r];
    p.insert(p.end(), std::make_move_iterator(rows.begin()),
             std::make_move_iterator(rows.end()));
  }

  double LogicalScale() const {
    return physical_bytes > 0
               ? scaled_bytes / static_cast<double>(physical_bytes)
               : 1.0;
  }
};

/// Physical partitions of `ds` selected by a prune list (all when empty).
std::vector<int> SelectedPartitions(const StoredDataset& ds,
                                    const std::vector<int>& prune) {
  std::vector<int> parts;
  if (prune.empty()) {
    for (size_t i = 0; i < ds.num_partitions(); ++i) {
      parts.push_back(static_cast<int>(i));
    }
  } else {
    for (int p : prune) {
      if (p >= 0 && static_cast<size_t>(p) < ds.num_partitions()) {
        parts.push_back(p);
      }
    }
  }
  return parts;
}

}  // namespace

Result<PartitionSpec> ResolvePartitionSpec(const Branch& branch, int R,
                                           const Dfs& dfs) {
  PartitionSpec spec = branch.partition;
  if (spec.type != PartitionType::kRange || !spec.split_points.empty() ||
      spec.split_points_from.empty()) {
    return spec;
  }
  STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs.Get(spec.split_points_from));
  std::vector<Row> candidates = ds->AllRows();
  std::sort(candidates.begin(), candidates.end());
  // Duplicate candidates would become duplicate split points, i.e. ranges
  // that can never receive a record; only distinct boundaries qualify.
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  int want = std::max(0, R - 1);
  if (static_cast<int>(candidates.size()) <= want) {
    spec.split_points = std::move(candidates);
  } else {
    for (int i = 1; i <= want; ++i) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(i) * static_cast<double>(candidates.size()) /
          (want + 1));
      idx = std::min(idx, candidates.size() - 1);
      spec.split_points.push_back(candidates[idx]);
    }
  }
  return spec;
}

Result<JobDataflow> JobRunner::Run(const Plan& plan, const JobVertex& job,
                                   Dfs* dfs) const {
  JobDataflow df;
  df.job_id = job.id;
  const bool map_only = job.map_only();
  const int R = map_only ? 0 : job.EffectiveReduceTasks();
  df.num_reduce_tasks = R;
  df.output_compressed = job.config.compress_output;

  const size_t nb = job.branches.size();

  // Per-branch execution state.
  struct BranchState {
    PartitionSpec resolved_partition;
    std::vector<size_t> partition_sort_indices;  // in map-output schema
    std::vector<size_t> group_indices;           // combiner grouping
    std::optional<Partitioner> partitioner;
    // reduce_buckets[r]: rows destined for reduce task r, plus scaled
    // accounting (pre-combine) for skew measurement.
    std::vector<std::vector<Row>> reduce_buckets;
    std::vector<double> bucket_scaled_bytes;      // pre-combine, logical
    std::vector<double> bucket_scaled_records;    // pre-combine, logical
    std::vector<uint64_t> bucket_physical_records;       // pre-combine
    std::vector<uint64_t> bucket_physical_post_records;  // after combiner
    // Combine-effectiveness model inputs: distinct group keys seen and the
    // logical record count each map task contributed.
    std::set<uint64_t> group_hashes;
    std::vector<double> task_logical_records;
    double raw_scaled_records = 0.0;  // pre-combine map output (logical)
    double raw_scaled_bytes = 0.0;
    double combine_ratio = 1.0;  // combined records / raw records
    DatasetBuilder output;
  };
  std::vector<BranchState> bstate(nb);

  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    if (b.map_only()) continue;
    BranchState& st = bstate[bi];
    STUBBY_ASSIGN_OR_RETURN(st.resolved_partition,
                            ResolvePartitionSpec(b, R, *dfs));
    STUBBY_ASSIGN_OR_RETURN(
        Partitioner partitioner,
        Partitioner::Make(st.resolved_partition, b.map_output_schema));
    st.partitioner = std::move(partitioner);
    st.partition_sort_indices = st.partitioner->sort_indices();
    std::vector<std::string> group = b.GroupFields();
    STUBBY_ASSIGN_OR_RETURN(st.group_indices,
                            b.map_output_schema.IndicesOf(group));
    st.reduce_buckets.assign(static_cast<size_t>(R), {});
    st.bucket_scaled_bytes.assign(static_cast<size_t>(R), 0.0);
    st.bucket_scaled_records.assign(static_cast<size_t>(R), 0.0);
    st.bucket_physical_records.assign(static_cast<size_t>(R), 0);
    st.bucket_physical_post_records.assign(static_cast<size_t>(R), 0);
  }

  std::map<std::string, DatasetBuilder> tee_builders;
  std::map<std::string, Schema> tee_schemas;
  for (const Branch& b : job.branches) {
    for (const BranchInput& in : b.inputs) {
      for (const Stage& s : in.map_stages) {
        if (!s.tee_dataset.empty()) {
          tee_schemas[s.tee_dataset] = s.output_schema();
        }
      }
    }
    for (const Stage& s : b.merged_map_stages) {
      if (!s.tee_dataset.empty()) tee_schemas[s.tee_dataset] = s.output_schema();
    }
    for (const Stage& s : b.reduce_stages) {
      if (!s.tee_dataset.empty()) tee_schemas[s.tee_dataset] = s.output_schema();
    }
  }

  auto drain_tee = [&](TaskTeeSink* sink, double scale) {
    for (auto& [id, rows] : sink->rows()) {
      uint64_t b = RowsBytes(rows);
      df.tee_bytes += static_cast<uint64_t>(static_cast<double>(b) * scale);
      tee_builders[id].Add(std::move(rows), scale);
    }
    sink->rows().clear();
  };

  // Partition/sort/combine one map task's output for branch `bi` and stash
  // it into the reduce buckets. The combiner still runs physically (so the
  // reduce functions see combined rows), but the shuffle-volume accounting
  // is pre-combine: combine effectiveness at logical scale is modeled
  // analytically after the map phase, because the physical sample cannot
  // exhibit logical-scale duplicate density.
  auto shuffle_map_output = [&](size_t bi, std::vector<Row> rows,
                                double scale) {
    const Branch& b = job.branches[bi];
    BranchState& st = bstate[bi];
    uint64_t out_bytes = RowsBytes(rows);
    double scaled_records = static_cast<double>(rows.size()) * scale;
    double scaled_bytes = static_cast<double>(out_bytes) * scale;
    df.map_output_records += static_cast<uint64_t>(scaled_records);
    df.map_output_bytes += static_cast<uint64_t>(scaled_bytes);
    st.raw_scaled_records += scaled_records;
    st.raw_scaled_bytes += scaled_bytes;
    st.task_logical_records.push_back(scaled_records);
    for (const Row& row : rows) {
      st.group_hashes.insert(HashOnFields(row, st.group_indices));
    }

    std::vector<std::vector<Row>> buckets(static_cast<size_t>(R));
    for (Row& row : rows) {
      int r = st.partitioner->PartitionOf(row, R);
      buckets[static_cast<size_t>(r)].push_back(std::move(row));
    }
    for (size_t r = 0; r < buckets.size(); ++r) {
      auto& bucket = buckets[r];
      if (bucket.empty()) continue;
      std::stable_sort(bucket.begin(), bucket.end(),
                       [&](const Row& a, const Row& bb) {
                         return CompareOnFields(a, bb,
                                                st.partition_sort_indices) < 0;
                       });
      uint64_t bb = RowsBytes(bucket);
      st.bucket_scaled_bytes[r] += static_cast<double>(bb) * scale;
      st.bucket_scaled_records[r] +=
          static_cast<double>(bucket.size()) * scale;
      st.bucket_physical_records[r] += bucket.size();
      if (job.config.use_combiner && b.combiner != nullptr) {
        double combine_cpu = 0.0;
        bucket =
            RunCombiner(*b.combiner, bucket, st.group_indices, &combine_cpu);
      }
      st.bucket_physical_post_records[r] += bucket.size();
      auto& dst = st.reduce_buckets[r];
      dst.insert(dst.end(), std::make_move_iterator(bucket.begin()),
                 std::make_move_iterator(bucket.end()));
    }
  };

  // Accounts one map-task input chunk read from dataset `ds`.
  auto account_input = [&](const StoredDataset& ds, uint64_t chunk_bytes,
                           uint64_t chunk_rows) -> uint64_t {
    double scale = ds.logical_scale();
    uint64_t logical =
        static_cast<uint64_t>(static_cast<double>(chunk_bytes) * scale);
    df.map_input_records +=
        static_cast<uint64_t>(static_cast<double>(chunk_rows) * scale);
    df.map_input_bytes += logical;
    df.map_input_stored_bytes += static_cast<uint64_t>(
        static_cast<double>(logical) *
        (ds.layout().compressed ? cluster_.compress_ratio : 1.0));
    return logical;
  };

  // ---- Map phase: shared-scan input groups --------------------------------
  std::vector<InputGroup> groups = GroupBranchInputs(job);
  for (const InputGroup& g : groups) {
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs->Get(g.dataset_id));
    const double scale = ds->logical_scale();
    std::vector<int> parts = SelectedPartitions(*ds, g.prune_partitions);

    // Form map task input chunks.
    std::vector<std::vector<Row>> chunks;
    if (g.aligned) {
      for (int p : parts) {
        chunks.push_back(ds->partition(static_cast<size_t>(p)));
      }
      if (chunks.empty()) chunks.emplace_back();
    } else {
      std::vector<Row> all = ds->RowsOfPartitions(parts);
      uint64_t physical_bytes = RowsBytes(all);
      double stored_logical = static_cast<double>(physical_bytes) * scale;
      if (ds->layout().compressed) stored_logical *= cluster_.compress_ratio;
      int tasks = std::max(
          1, static_cast<int>(
                 std::ceil(stored_logical / (job.config.split_mb * kMB))));
      tasks = std::min(tasks, kMaxMapTasks);
      size_t per = std::max<size_t>(
          1, (all.size() + static_cast<size_t>(tasks) - 1) /
                 static_cast<size_t>(tasks));
      for (int t = 0; t < tasks; ++t) {
        size_t lo = std::min(all.size(), static_cast<size_t>(t) * per);
        size_t hi = std::min(all.size(), lo + per);
        chunks.emplace_back(all.begin() + static_cast<long>(lo),
                            all.begin() + static_cast<long>(hi));
      }
      if (chunks.empty()) chunks.emplace_back();
    }

    df.num_map_tasks += static_cast<int>(chunks.size());
    df.pipelines_per_task = std::max(
        df.pipelines_per_task, static_cast<int>(g.subscribers.size()));

    for (const std::vector<Row>& chunk : chunks) {
      uint64_t logical =
          account_input(*ds, RowsBytes(chunk), chunk.size());
      df.max_map_task_input_bytes =
          std::max(df.max_map_task_input_bytes, logical);

      // Run every subscribing branch pipeline over the shared scan.
      for (const auto& [bi, ii] : g.subscribers) {
        const Branch& b = job.branches[bi];
        const BranchInput& input = b.inputs[ii];
        TaskTeeSink tee;
        VectorEmitter out;
        STUBBY_ASSIGN_OR_RETURN(
            std::unique_ptr<PipelineRunner> runner,
            PipelineRunner::Make(input.map_stages, ds->schema(), &out, &tee));
        for (const Row& row : chunk) runner->Emit(row);
        runner->Finish();
        df.map_cpu_units += runner->counters().cpu_units * scale;
        drain_tee(&tee, scale);

        if (b.map_only()) {
          bstate[bi].output.Add(std::move(out.rows()), scale);
        } else {
          shuffle_map_output(bi, std::move(out.rows()), scale);
        }
      }
    }
  }

  // ---- Map phase: merge-mode branches (co-aligned inputs) -----------------
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    if (!b.merge_mode()) continue;

    std::vector<DatasetPtr> inputs_ds;
    std::vector<std::vector<int>> inputs_parts;
    size_t max_parts = 0;
    for (const BranchInput& in : b.inputs) {
      STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs->Get(in.dataset_id));
      std::vector<int> parts = SelectedPartitions(*ds, in.prune_partitions);
      max_parts = std::max(max_parts, parts.size());
      inputs_ds.push_back(std::move(ds));
      inputs_parts.push_back(std::move(parts));
    }
    if (max_parts == 0) max_parts = 1;
    df.num_map_tasks += static_cast<int>(max_parts);
    df.pipelines_per_task = std::max(df.pipelines_per_task, 1);

    STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> merge_sort_idx,
                            b.merge_schema.IndicesOf(b.merge_sort_fields));

    for (size_t t = 0; t < max_parts; ++t) {
      std::vector<Row> merged;
      double task_scaled_bytes = 0.0;
      uint64_t task_physical_bytes = 0;
      uint64_t task_logical_bytes = 0;
      TaskTeeSink tee;
      for (size_t i = 0; i < b.inputs.size(); ++i) {
        if (t >= inputs_parts[i].size()) continue;
        const StoredDataset& ds = *inputs_ds[i];
        const std::vector<Row>& part =
            ds.partition(static_cast<size_t>(inputs_parts[i][t]));
        uint64_t pb = RowsBytes(part);
        uint64_t logical = account_input(ds, pb, part.size());
        task_logical_bytes += logical;
        task_scaled_bytes += static_cast<double>(logical);
        task_physical_bytes += pb;

        VectorEmitter out;
        STUBBY_ASSIGN_OR_RETURN(std::unique_ptr<PipelineRunner> runner,
                                PipelineRunner::Make(b.inputs[i].map_stages,
                                                     ds.schema(), &out, &tee));
        for (const Row& row : part) runner->Emit(row);
        runner->Finish();
        df.map_cpu_units += runner->counters().cpu_units * ds.logical_scale();
        drain_tee(&tee, ds.logical_scale());
        merged.insert(merged.end(),
                      std::make_move_iterator(out.rows().begin()),
                      std::make_move_iterator(out.rows().end()));
      }
      df.max_map_task_input_bytes =
          std::max(df.max_map_task_input_bytes, task_logical_bytes);
      double task_scale =
          task_physical_bytes > 0
              ? task_scaled_bytes / static_cast<double>(task_physical_bytes)
              : 1.0;

      // Co-aligned merge: interleave the per-input streams by sort order.
      std::stable_sort(merged.begin(), merged.end(),
                       [&](const Row& a, const Row& bb) {
                         return CompareOnFields(a, bb, merge_sort_idx) < 0;
                       });
      VectorEmitter out;
      STUBBY_ASSIGN_OR_RETURN(
          std::unique_ptr<PipelineRunner> runner,
          PipelineRunner::Make(b.merged_map_stages, b.merge_schema, &out,
                               &tee));
      for (const Row& row : merged) runner->Emit(row);
      runner->Finish();
      df.map_cpu_units += runner->counters().cpu_units * task_scale;
      drain_tee(&tee, task_scale);

      if (b.map_only()) {
        bstate[bi].output.Add(std::move(out.rows()), task_scale);
      } else {
        shuffle_map_output(bi, std::move(out.rows()), task_scale);
      }
    }
  }

  // Combine-effectiveness accounting at logical scale: a map task emitting
  // n records over G distinct groups combines down to about
  // G*(1-exp(-n/G)) records. The what-if engine uses the same model, so
  // estimation error stems from its profiled G, not from model mismatch.
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    if (b.map_only()) continue;
    BranchState& st = bstate[bi];
    if (job.config.use_combiner && b.combiner != nullptr &&
        !st.group_hashes.empty() && st.raw_scaled_records > 0) {
      double groups = static_cast<double>(st.group_hashes.size());
      double combined = 0.0;
      for (double n : st.task_logical_records) {
        if (n <= 0) continue;
        combined += std::min(n, groups * (1.0 - std::exp(-n / groups)));
      }
      st.combine_ratio = std::min(1.0, combined / st.raw_scaled_records);
      // Every map-output record passes through the combiner once.
      df.combine_cpu_units +=
          st.raw_scaled_records * b.combiner->cpu_cost_per_record();
    }
    df.combine_output_records +=
        static_cast<uint64_t>(st.raw_scaled_records * st.combine_ratio);
    df.combine_output_bytes +=
        static_cast<uint64_t>(st.raw_scaled_bytes * st.combine_ratio);
  }

  // ---- Reduce phase --------------------------------------------------------
  if (!map_only) {
    for (int r = 0; r < R; ++r) {
      double partition_scaled_bytes = 0.0;
      bool nonempty = false;
      for (size_t bi = 0; bi < nb; ++bi) {
        const Branch& b = job.branches[bi];
        if (b.map_only()) continue;
        BranchState& st = bstate[bi];
        const size_t ri = static_cast<size_t>(r);
        auto& rows = st.reduce_buckets[ri];
        partition_scaled_bytes +=
            st.bucket_scaled_bytes[ri] * st.combine_ratio;
        // Plain logical/physical data ratio (combine-independent): scales
        // the reduce pipeline's outputs, whose record counts track groups,
        // not pre-aggregation.
        double scale = st.bucket_physical_records[ri] > 0
                           ? st.bucket_scaled_records[ri] /
                                 static_cast<double>(
                                     st.bucket_physical_records[ri])
                           : 1.0;
        // Reduce-side CPU processes the logically-combined stream.
        double cpu_scale =
            st.bucket_physical_post_records[ri] > 0
                ? st.bucket_scaled_records[ri] * st.combine_ratio /
                      static_cast<double>(st.bucket_physical_post_records[ri])
                : 1.0;
        if (!rows.empty()) nonempty = true;

        df.reduce_input_records += static_cast<uint64_t>(
            st.bucket_scaled_records[ri] * st.combine_ratio);
        df.reduce_input_bytes += static_cast<uint64_t>(
            st.bucket_scaled_bytes[ri] * st.combine_ratio);

        // Merge the per-map sorted segments (modeled as one stable sort).
        std::stable_sort(rows.begin(), rows.end(),
                         [&](const Row& a, const Row& bb) {
                           return CompareOnFields(
                                      a, bb, st.partition_sort_indices) < 0;
                         });

        TaskTeeSink tee;
        VectorEmitter out;
        STUBBY_ASSIGN_OR_RETURN(
            std::unique_ptr<PipelineRunner> runner,
            PipelineRunner::Make(b.reduce_stages, b.map_output_schema, &out,
                                 &tee));
        for (const Row& row : rows) runner->Emit(row);
        runner->Finish();
        df.reduce_cpu_units += runner->counters().cpu_units * cpu_scale;
        drain_tee(&tee, scale);
        st.output.AddTo(static_cast<size_t>(r), std::move(out.rows()), scale);
        rows.clear();
        rows.shrink_to_fit();
      }
      if (nonempty) df.nonempty_reduce_partitions++;
      df.max_reduce_input_bytes =
          std::max(df.max_reduce_input_bytes,
                   static_cast<uint64_t>(partition_scaled_bytes));
    }
  }

  // ---- Materialize outputs -------------------------------------------------
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    BranchState& st = bstate[bi];
    STUBBY_ASSIGN_OR_RETURN(const DatasetVertex* dv,
                            plan.GetDataset(b.output_dataset));
    Layout layout = DeriveOutputLayout(b, job.config, dv->schema);
    auto out_ds =
        std::make_shared<StoredDataset>(b.output_dataset, dv->schema, layout);
    if (!b.map_only() &&
        st.output.partitions.size() < static_cast<size_t>(R)) {
      st.output.partitions.resize(static_cast<size_t>(R));
    }
    for (auto& p : st.output.partitions) out_ds->AddPartition(std::move(p));
    out_ds->set_logical_scale(st.output.LogicalScale());
    df.output_records += static_cast<uint64_t>(st.output.scaled_records);
    df.output_bytes += static_cast<uint64_t>(st.output.scaled_bytes);
    dfs->PutOrReplace(std::move(out_ds));
  }
  for (auto& [id, builder] : tee_builders) {
    Layout layout;  // tee outputs are plain block files
    auto ds = std::make_shared<StoredDataset>(id, tee_schemas[id], layout);
    for (auto& p : builder.partitions) ds->AddPartition(std::move(p));
    ds->set_logical_scale(builder.LogicalScale());
    dfs->PutOrReplace(std::move(ds));
  }
  return df;
}

}  // namespace stubby

#include "exec/job_runner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "common/threading.h"
#include "exec/wrappers.h"
#include "mr/bloom_filter.h"

namespace stubby {

namespace {

constexpr double kMB = 1024.0 * 1024.0;

uint64_t RowsBytes(const std::vector<Row>& rows) {
  uint64_t b = 0;
  for (const Row& r : rows) b += r.SerializedSize();
  return b;
}

/// Collects tee rows during one task; the caller drains per-dataset vectors
/// after the task finishes (so per-task partition boundaries are kept).
class TaskTeeSink : public TeeSink {
 public:
  void TeeEmit(const std::string& dataset_id, const Row& row) override {
    rows_[dataset_id].push_back(row);
  }
  std::map<std::string, std::vector<Row>>& rows() { return rows_; }

 private:
  std::map<std::string, std::vector<Row>> rows_;
};

using TeeRows = std::map<std::string, std::vector<Row>>;

/// Accumulates a dataset under construction (per-partition payloads +
/// scaled accounting so the stored dataset gets the right logical scale).
/// Payloads arrive as rows (record path) or PartitionData (columnar path);
/// byte accounting is identical either way.
struct DatasetBuilder {
  std::vector<PartitionData> partitions;
  double scaled_records = 0.0;
  double scaled_bytes = 0.0;
  uint64_t physical_bytes = 0;

  void Add(PartitionData pd, double scale) {
    uint64_t b = pd.raw_bytes();
    scaled_records += static_cast<double>(pd.num_rows()) * scale;
    scaled_bytes += static_cast<double>(b) * scale;
    physical_bytes += b;
    partitions.push_back(std::move(pd));
  }

  void Add(std::vector<Row> rows, double scale) {
    Add(PartitionData(std::move(rows)), scale);
  }

  /// Ensures partition index `r` exists and appends to it (reduce outputs
  /// are keyed by reduce task index).
  void AddTo(size_t r, PartitionData pd, double scale) {
    if (partitions.size() <= r) partitions.resize(r + 1);
    uint64_t b = pd.raw_bytes();
    scaled_records += static_cast<double>(pd.num_rows()) * scale;
    scaled_bytes += static_cast<double>(b) * scale;
    physical_bytes += b;
    if (partitions[r].num_rows() == 0) {
      partitions[r] = std::move(pd);
    } else {
      // Only one piece lands per (branch, reduce task) today, but appends
      // stay correct by concatenating through rows.
      std::vector<Row> merged = partitions[r].rows();
      const auto& extra = pd.rows();
      merged.insert(merged.end(), extra.begin(), extra.end());
      partitions[r] = PartitionData(std::move(merged));
    }
  }

  void AddTo(size_t r, std::vector<Row> rows, double scale) {
    AddTo(r, PartitionData(std::move(rows)), scale);
  }

  double LogicalScale() const {
    return physical_bytes > 0
               ? scaled_bytes / static_cast<double>(physical_bytes)
               : 1.0;
  }
};

/// Physical partitions of `ds` selected by a prune list (all when empty).
/// Pruning selects a partition *set*: the list is canonicalized (sorted,
/// deduplicated) so permuted or duplicated prune entries read the same
/// physical data in the same order. A prune entry referencing a partition
/// the dataset does not have means the plan and the stored data disagree —
/// silently skipping it would under-read the input, so it is an error.
Result<std::vector<int>> SelectedPartitions(const StoredDataset& ds,
                                            const std::vector<int>& prune) {
  std::vector<int> parts;
  if (prune.empty()) {
    for (size_t i = 0; i < ds.num_partitions(); ++i) {
      parts.push_back(static_cast<int>(i));
    }
  } else {
    for (int p : CanonicalPrunePartitions(prune)) {
      if (p < 0 || static_cast<size_t>(p) >= ds.num_partitions()) {
        return Status::InvalidArgument(
            "prune partition " + std::to_string(p) + " out of range: dataset '" +
            ds.id() + "' has " + std::to_string(ds.num_partitions()) +
            " partitions");
      }
      parts.push_back(p);
    }
  }
  return parts;
}

/// One sorted (and possibly combined) reduce bucket produced by a map task.
/// The payload is either rows (record path) or a batch sharing the map
/// output's columns under a sorted selection (columnar path).
struct ShuffleBucket {
  size_t r = 0;
  uint64_t sorted_bytes = 0;   ///< pre-combine, post-sort
  uint64_t pre_records = 0;    ///< pre-combine
  std::vector<Row> post_rows;  ///< after the (physical) combiner
  std::optional<RowBatch> post_batch;  ///< columnar alternative to post_rows
};

/// Partitioned/sorted/combined map output of one task for one branch. Pure
/// task-side data: all dataflow accounting happens when it is merged, in
/// task order.
struct ShuffledOutput {
  uint64_t out_bytes = 0;
  size_t out_records = 0;
  std::vector<uint64_t> group_hashes;  ///< one per map-output row
  std::vector<ShuffleBucket> buckets;  ///< ascending r, non-empty only
};

}  // namespace

bool ColumnarStorageFromEnv() {
  const char* env = std::getenv("STUBBY_COLUMNAR");
  return env == nullptr || std::string(env) != "0";
}

Result<PartitionSpec> ResolvePartitionSpec(const Branch& branch, int R,
                                           const Dfs& dfs) {
  PartitionSpec spec = branch.partition;
  if (spec.type != PartitionType::kRange || !spec.split_points.empty() ||
      spec.split_points_from.empty()) {
    return spec;
  }
  STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs.Get(spec.split_points_from));
  std::vector<Row> candidates = ds->AllRows();
  std::sort(candidates.begin(), candidates.end());
  // Duplicate candidates would become duplicate split points, i.e. ranges
  // that can never receive a record; only distinct boundaries qualify.
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  int want = std::max(0, R - 1);
  if (static_cast<int>(candidates.size()) <= want) {
    spec.split_points = std::move(candidates);
  } else {
    for (int i = 1; i <= want; ++i) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(i) * static_cast<double>(candidates.size()) /
          (want + 1));
      idx = std::min(idx, candidates.size() - 1);
      spec.split_points.push_back(candidates[idx]);
    }
  }
  return spec;
}

// Tasks (map chunks, merge-mode tasks, reduce partitions) are pure: they
// run pipelines, partition/sort/combine, and return unaggregated
// per-task pieces. All mutation of the dataflow record, the branch
// accumulators, and the tee builders happens in a serial merge that walks
// the pieces in task order — replaying the exact accumulation sequence of
// a serial run. Results are therefore bit-identical (including
// floating-point sums) at any thread count.
Result<JobDataflow> JobRunner::Run(const Plan& plan, const JobVertex& job,
                                   Dfs* dfs) const {
  JobDataflow df;
  df.job_id = job.id;
  const bool map_only = job.map_only();
  const int R = map_only ? 0 : job.EffectiveReduceTasks();
  df.num_reduce_tasks = R;
  df.output_compressed = job.config.compress_output;

  const size_t nb = job.branches.size();

  // Per-branch execution state.
  struct BranchState {
    PartitionSpec resolved_partition;
    std::vector<size_t> partition_sort_indices;  // in map-output schema
    std::vector<size_t> group_indices;           // combiner grouping
    std::optional<Partitioner> partitioner;
    // True when the branch runs the columnar end-to-end path: every input
    // map pipeline is batch-eligible, the reduce pipeline is batchable (or
    // empty), and any active combiner has a batch kernel. Buckets then flow
    // as reduce_batches instead of reduce_buckets.
    bool columnar = false;
    // reduce_buckets[r]: rows destined for reduce task r, plus scaled
    // accounting (pre-combine) for skew measurement.
    std::vector<std::vector<Row>> reduce_buckets;
    // reduce_batches[r]: columnar alternative (batches in map-task order).
    std::vector<std::vector<RowBatch>> reduce_batches;
    std::vector<double> bucket_scaled_bytes;      // pre-combine, logical
    std::vector<double> bucket_scaled_records;    // pre-combine, logical
    std::vector<uint64_t> bucket_physical_records;       // pre-combine
    std::vector<uint64_t> bucket_physical_post_records;  // after combiner
    // Combine-effectiveness model inputs: distinct group keys seen and the
    // logical record count each map task contributed.
    std::set<uint64_t> group_hashes;
    std::vector<double> task_logical_records;
    double raw_scaled_records = 0.0;  // pre-combine map output (logical)
    double raw_scaled_bytes = 0.0;
    double combine_ratio = 1.0;  // combined records / raw records
    DatasetBuilder output;
  };
  std::vector<BranchState> bstate(nb);

  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    if (b.map_only()) continue;
    BranchState& st = bstate[bi];
    STUBBY_ASSIGN_OR_RETURN(st.resolved_partition,
                            ResolvePartitionSpec(b, R, *dfs));
    STUBBY_ASSIGN_OR_RETURN(
        Partitioner partitioner,
        Partitioner::Make(st.resolved_partition, b.map_output_schema, R));
    st.partitioner = std::move(partitioner);
    st.partition_sort_indices = st.partitioner->sort_indices();
    std::vector<std::string> group = b.GroupFields();
    STUBBY_ASSIGN_OR_RETURN(st.group_indices,
                            b.map_output_schema.IndicesOf(group));
    if (exec_.vectorized && exec_.columnar && !b.merge_mode() &&
        BatchReducePipeline::Eligible(b.reduce_stages)) {
      bool inputs_eligible = true;
      for (const BranchInput& in : b.inputs) {
        if (!BatchPipelineRunner::Eligible(in.map_stages)) {
          inputs_eligible = false;
          break;
        }
      }
      bool combiner_ok = !(job.config.use_combiner && b.combiner != nullptr) ||
                         b.combiner->supports_batch();
      st.columnar = inputs_eligible && combiner_ok;
    }
    st.reduce_buckets.assign(static_cast<size_t>(R), {});
    st.reduce_batches.assign(static_cast<size_t>(R), {});
    st.bucket_scaled_bytes.assign(static_cast<size_t>(R), 0.0);
    st.bucket_scaled_records.assign(static_cast<size_t>(R), 0.0);
    st.bucket_physical_records.assign(static_cast<size_t>(R), 0);
    st.bucket_physical_post_records.assign(static_cast<size_t>(R), 0);
  }

  std::map<std::string, DatasetBuilder> tee_builders;
  std::map<std::string, Schema> tee_schemas;
  for (const Branch& b : job.branches) {
    for (const BranchInput& in : b.inputs) {
      for (const Stage& s : in.map_stages) {
        if (!s.tee_dataset.empty()) {
          tee_schemas[s.tee_dataset] = s.output_schema();
        }
      }
    }
    for (const Stage& s : b.merged_map_stages) {
      if (!s.tee_dataset.empty()) tee_schemas[s.tee_dataset] = s.output_schema();
    }
    for (const Stage& s : b.reduce_stages) {
      if (!s.tee_dataset.empty()) tee_schemas[s.tee_dataset] = s.output_schema();
    }
  }

  auto drain_tee = [&](TeeRows& tee_rows, double scale) {
    for (auto& [id, rows] : tee_rows) {
      uint64_t b = RowsBytes(rows);
      df.tee_bytes += static_cast<uint64_t>(static_cast<double>(b) * scale);
      tee_builders[id].Add(std::move(rows), scale);
    }
    tee_rows.clear();
  };

  // Task side of the shuffle: partition one map task's output for branch
  // `bi`, sort each bucket, and run the combiner physically (so the reduce
  // functions see combined rows). Reads branch state, never writes it.
  auto compute_shuffle = [&](size_t bi,
                             std::vector<Row> rows) -> ShuffledOutput {
    const Branch& b = job.branches[bi];
    const BranchState& st = bstate[bi];
    ShuffledOutput so;
    so.out_bytes = RowsBytes(rows);
    so.out_records = rows.size();
    so.group_hashes.reserve(rows.size());
    for (const Row& row : rows) {
      so.group_hashes.push_back(HashOnFields(row, st.group_indices));
    }
    std::vector<std::vector<Row>> buckets(static_cast<size_t>(R));
    for (Row& row : rows) {
      int r = st.partitioner->PartitionOf(row, R);
      buckets[static_cast<size_t>(r)].push_back(std::move(row));
    }
    for (size_t r = 0; r < buckets.size(); ++r) {
      auto& bucket = buckets[r];
      if (bucket.empty()) continue;
      std::stable_sort(bucket.begin(), bucket.end(),
                       [&](const Row& a, const Row& bb) {
                         return CompareOnFields(a, bb,
                                                st.partition_sort_indices) < 0;
                       });
      ShuffleBucket sb;
      sb.r = r;
      sb.sorted_bytes = RowsBytes(bucket);
      sb.pre_records = bucket.size();
      if (job.config.use_combiner && b.combiner != nullptr) {
        double combine_cpu = 0.0;
        bucket =
            RunCombiner(*b.combiner, bucket, st.group_indices, &combine_cpu);
      }
      sb.post_rows = std::move(bucket);
      so.buckets.push_back(std::move(sb));
    }
    return so;
  };

  // Columnar variant of compute_shuffle: hashes, partitions, and sorts on
  // the batch (a stable index sort yields the same permutation as the row
  // path's stable sort), materializing rows only once per sorted bucket.
  // The RowBatch accounting helpers reproduce the per-Row byte/hash/compare
  // results exactly, so the ShuffledOutput is bit-identical.
  auto compute_shuffle_batch = [&](size_t bi,
                                   const RowBatch& batch) -> ShuffledOutput {
    const Branch& b = job.branches[bi];
    const BranchState& st = bstate[bi];
    ShuffledOutput so;
    const size_t n = batch.num_rows();
    so.out_bytes = batch.TotalSerializedBytes();
    so.out_records = n;
    so.group_hashes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      so.group_hashes.push_back(batch.HashOnFields(i, st.group_indices));
    }
    std::vector<std::vector<uint32_t>> buckets(static_cast<size_t>(R));
    for (size_t i = 0; i < n; ++i) {
      int r = st.partitioner->PartitionOf(batch, i, R);
      buckets[static_cast<size_t>(r)].push_back(static_cast<uint32_t>(i));
    }
    for (size_t r = 0; r < buckets.size(); ++r) {
      auto& idx = buckets[r];
      if (idx.empty()) continue;
      std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t bb) {
        return batch.Compare(a, bb, st.partition_sort_indices) < 0;
      });
      ShuffleBucket sb;
      sb.r = r;
      sb.pre_records = idx.size();
      std::vector<Row> bucket;
      bucket.reserve(idx.size());
      for (uint32_t i : idx) {
        sb.sorted_bytes += batch.RowSerializedSize(i);
        bucket.push_back(batch.MaterializeRow(i));
      }
      if (job.config.use_combiner && b.combiner != nullptr) {
        double combine_cpu = 0.0;
        bucket =
            RunCombiner(*b.combiner, bucket, st.group_indices, &combine_cpu);
      }
      sb.post_rows = std::move(bucket);
      so.buckets.push_back(std::move(sb));
    }
    return so;
  };

  // Column-native compute_shuffle_batch for branches on the end-to-end
  // columnar path (bstate[bi].columnar): buckets stay batches whose sorted
  // selection indexes the map output's shared columns, so no row is
  // materialized between the map kernel and the reduce kernel. The combiner,
  // when active, runs its batch kernel over equal-key runs (output rows
  // match RunCombiner; its cpu out-param is discarded here exactly like the
  // row path's — combine CPU is modeled analytically after the map phase).
  auto compute_shuffle_columnar = [&](size_t bi,
                                      const RowBatch& batch) -> ShuffledOutput {
    const Branch& b = job.branches[bi];
    const BranchState& st = bstate[bi];
    ShuffledOutput so;
    const size_t n = batch.num_rows();
    so.out_bytes = batch.TotalSerializedBytes();
    so.out_records = n;
    so.group_hashes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      so.group_hashes.push_back(batch.HashOnFields(i, st.group_indices));
    }
    std::vector<std::vector<uint32_t>> buckets(static_cast<size_t>(R));
    for (size_t i = 0; i < n; ++i) {
      int r = st.partitioner->PartitionOf(batch, i, R);
      buckets[static_cast<size_t>(r)].push_back(static_cast<uint32_t>(i));
    }
    for (size_t r = 0; r < buckets.size(); ++r) {
      auto& idx = buckets[r];
      if (idx.empty()) continue;
      std::stable_sort(idx.begin(), idx.end(), [&](uint32_t a, uint32_t bb) {
        return batch.Compare(a, bb, st.partition_sort_indices) < 0;
      });
      ShuffleBucket sb;
      sb.r = r;
      sb.pre_records = idx.size();
      std::vector<uint32_t> sel;
      sel.reserve(idx.size());
      for (uint32_t i : idx) {
        sb.sorted_bytes += batch.RowSerializedSize(i);
        sel.push_back(batch.selection()[i]);
      }
      RowBatch bucket = batch;  // shares columns
      bucket.SetSelection(std::move(sel));
      if (job.config.use_combiner && b.combiner != nullptr) {
        double combine_cpu = 0.0;
        bucket = RunCombinerBatch(*b.combiner, bucket, st.group_indices,
                                  &combine_cpu);
      }
      sb.post_batch = std::move(bucket);
      so.buckets.push_back(std::move(sb));
    }
    return so;
  };

  // Merge side of the shuffle: stash the buckets into the branch state and
  // account shuffle volume pre-combine — combine effectiveness at logical
  // scale is modeled analytically after the map phase, because the
  // physical sample cannot exhibit logical-scale duplicate density.
  auto merge_shuffle = [&](size_t bi, ShuffledOutput so, double scale) {
    BranchState& st = bstate[bi];
    double scaled_records = static_cast<double>(so.out_records) * scale;
    double scaled_bytes = static_cast<double>(so.out_bytes) * scale;
    df.map_output_records += static_cast<uint64_t>(scaled_records);
    df.map_output_bytes += static_cast<uint64_t>(scaled_bytes);
    st.raw_scaled_records += scaled_records;
    st.raw_scaled_bytes += scaled_bytes;
    st.task_logical_records.push_back(scaled_records);
    for (uint64_t h : so.group_hashes) st.group_hashes.insert(h);
    for (ShuffleBucket& sb : so.buckets) {
      st.bucket_scaled_bytes[sb.r] +=
          static_cast<double>(sb.sorted_bytes) * scale;
      st.bucket_scaled_records[sb.r] +=
          static_cast<double>(sb.pre_records) * scale;
      st.bucket_physical_records[sb.r] += sb.pre_records;
      if (sb.post_batch.has_value()) {
        st.bucket_physical_post_records[sb.r] += sb.post_batch->num_rows();
        st.reduce_batches[sb.r].push_back(std::move(*sb.post_batch));
      } else {
        st.bucket_physical_post_records[sb.r] += sb.post_rows.size();
        auto& dst = st.reduce_buckets[sb.r];
        dst.insert(dst.end(), std::make_move_iterator(sb.post_rows.begin()),
                   std::make_move_iterator(sb.post_rows.end()));
      }
    }
  };

  // Accounts one map-task input chunk read from dataset `ds`.
  auto account_input = [&](const StoredDataset& ds, uint64_t chunk_bytes,
                           uint64_t chunk_rows) -> uint64_t {
    double scale = ds.logical_scale();
    uint64_t logical =
        static_cast<uint64_t>(static_cast<double>(chunk_bytes) * scale);
    df.map_input_records +=
        static_cast<uint64_t>(static_cast<double>(chunk_rows) * scale);
    df.map_input_bytes += logical;
    df.map_input_stored_bytes += static_cast<uint64_t>(
        static_cast<double>(logical) *
        (ds.layout().compressed ? cluster_.compress_ratio : 1.0));
    return logical;
  };

  // ---- Bloom predicate-transfer build pass --------------------------------
  // Effective map stages: per-(branch, input) copies of the plan's stage
  // vectors, with probe stages rebound below to the filter built for their
  // branch. The plan's own stage instances stay untouched (unbound probe
  // stages are pass-throughs), so profiling, serialization, and later runs
  // see no execution state.
  std::vector<std::vector<std::vector<Stage>>> eff_stages(nb);
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    eff_stages[bi].reserve(b.inputs.size());
    for (const BranchInput& in : b.inputs) {
      eff_stages[bi].push_back(in.map_stages);
    }
  }
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    if (!b.bloom) continue;
    const BloomTransferSpec& spec = *b.bloom;
    const BranchInput& build = b.inputs[spec.build_input];
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr build_ds, dfs->Get(build.dataset_id));
    STUBBY_ASSIGN_OR_RETURN(
        std::vector<int> build_parts,
        SelectedPartitions(*build_ds, build.prune_partitions));
    STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> key_idx,
                            b.map_output_schema.IndicesOf(spec.key_fields));
    // One build task per selected partition: run the build input's map
    // pipeline (per-partition reads preserve the clustering any packed-in
    // reduce stage relies on) and hash the output's key fields into a
    // per-task partial filter. Tees are discarded — the map phase proper
    // writes them once.
    struct BuildPiece {
      Status status = Status::OK();
      std::unique_ptr<BloomFilter> partial;
      uint64_t pb = 0;       ///< physical bytes read
      size_t hashed = 0;     ///< pipeline output rows inserted
      double cpu_units = 0.0;
    };
    std::vector<BuildPiece> build_pieces(build_parts.size());
    RunTasks(pool_, build_parts.size(), [&](size_t pi) {
      BuildPiece& piece = build_pieces[pi];
      const std::vector<Row>& part =
          build_ds->partition(static_cast<size_t>(build_parts[pi]));
      piece.pb = RowsBytes(part);
      TaskTeeSink tee;
      VectorEmitter out;
      auto runner = PipelineRunner::Make(build.map_stages, build_ds->schema(),
                                         &out, &tee);
      if (!runner.ok()) {
        piece.status = runner.status();
        return;
      }
      for (const Row& row : part) (*runner)->Emit(row);
      (*runner)->Finish();
      piece.cpu_units = (*runner)->counters().cpu_units;
      piece.partial = std::make_unique<BloomFilter>(
          spec.bits_log2, spec.num_hashes, kBloomFilterSeed);
      for (const Row& row : out.rows()) {
        piece.partial->Insert(HashOnFields(row, key_idx));
      }
      piece.hashed = out.rows().size();
    });
    // Serial OR-merge in partition order (bitwise OR is order-independent,
    // so the merged filter is bit-identical at any thread count).
    auto filter = std::make_shared<BloomFilter>(spec.bits_log2,
                                                spec.num_hashes,
                                                kBloomFilterSeed);
    const double build_scale = build_ds->logical_scale();
    for (BuildPiece& piece : build_pieces) {
      if (!piece.status.ok()) return piece.status;
      filter->UnionWith(*piece.partial);
      df.bloom_build_records += static_cast<uint64_t>(
          static_cast<double>(piece.hashed) * build_scale);
      df.bloom_build_bytes += static_cast<uint64_t>(
          static_cast<double>(piece.pb) * build_scale);
      df.bloom_build_cpu_units +=
          (piece.cpu_units +
           static_cast<double>(piece.hashed) * kBloomHashCpuPerRecord) *
          build_scale;
    }
    df.bloom_filter_bytes += filter->SizeBytes();
    for (size_t ii : spec.probe_inputs) {
      for (Stage& s : eff_stages[bi][ii]) {
        if (s.kind != Stage::Kind::kMap) continue;
        auto* probe = dynamic_cast<BloomProbeMapFn*>(s.map_fn.get());
        if (probe != nullptr) s.map_fn = probe->Bind(filter);
      }
    }
  }

  // ---- Map phase: shared-scan input groups --------------------------------
  std::vector<InputGroup> groups = GroupBranchInputs(job);

  // Serial task formation: one task per (group, chunk). A chunk is a list
  // of partition segments — views into PartitionData payloads — so forming
  // tasks copies no rows: aligned reads take whole partitions, size-based
  // splits take [lo, hi) ranges of consecutive partitions. Chunk boundaries
  // (task counts, per-task record ranges) are identical to the historical
  // row-gathering formation.
  struct ChunkSeg {
    PartitionData pd;  // shares the dataset partition's representation
    size_t lo = 0;
    size_t hi = 0;
  };
  struct MapTask {
    const InputGroup* group = nullptr;
    DatasetPtr ds;
    double scale = 1.0;
    std::vector<ChunkSeg> segs;
  };
  std::vector<MapTask> map_tasks;
  for (const InputGroup& g : groups) {
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs->Get(g.dataset_id));
    const double scale = ds->logical_scale();
    STUBBY_ASSIGN_OR_RETURN(std::vector<int> parts,
                            SelectedPartitions(*ds, g.prune_partitions));

    // Form map task input chunks.
    std::vector<std::vector<ChunkSeg>> chunks;
    if (g.aligned) {
      for (int p : parts) {
        const PartitionData& pd = ds->partition_data(static_cast<size_t>(p));
        chunks.push_back({ChunkSeg{pd, 0, pd.num_rows()}});
      }
      if (chunks.empty()) chunks.emplace_back();
    } else {
      uint64_t physical_bytes = 0;
      size_t total_rows = 0;
      for (int p : parts) {
        const PartitionData& pd = ds->partition_data(static_cast<size_t>(p));
        physical_bytes += pd.raw_bytes();
        total_rows += pd.num_rows();
      }
      double stored_logical = static_cast<double>(physical_bytes) * scale;
      if (ds->layout().compressed) stored_logical *= cluster_.compress_ratio;
      int tasks = std::max(
          1, static_cast<int>(
                 std::ceil(stored_logical / (job.config.split_mb * kMB))));
      tasks = std::min(tasks, kMaxMapTasks);
      size_t per = std::max<size_t>(
          1, (total_rows + static_cast<size_t>(tasks) - 1) /
                 static_cast<size_t>(tasks));
      for (int t = 0; t < tasks; ++t) {
        size_t lo = std::min(total_rows, static_cast<size_t>(t) * per);
        size_t hi = std::min(total_rows, lo + per);
        // Map the global row range [lo, hi) onto partition segments, in
        // `parts` order (the concatenation order of RowsOfPartitions).
        std::vector<ChunkSeg> segs;
        size_t off = 0;
        for (int p : parts) {
          const PartitionData& pd =
              ds->partition_data(static_cast<size_t>(p));
          size_t n = pd.num_rows();
          size_t slo = std::max(lo, off);
          size_t shi = std::min(hi, off + n);
          if (slo < shi) segs.push_back(ChunkSeg{pd, slo - off, shi - off});
          off += n;
          if (off >= hi) break;
        }
        chunks.push_back(std::move(segs));
      }
      if (chunks.empty()) chunks.emplace_back();
    }

    df.num_map_tasks += static_cast<int>(chunks.size());
    df.pipelines_per_task = std::max(
        df.pipelines_per_task, static_cast<int>(g.subscribers.size()));
    for (std::vector<ChunkSeg>& chunk : chunks) {
      map_tasks.push_back(MapTask{&g, ds, scale, std::move(chunk)});
    }
  }

  // Builds the shared columnar view of a task's chunk. With columnar
  // storage on, single-segment chunks are zero-copy views of the stored
  // columns (identity or range selection); multi-segment chunks gather
  // column-wise. With it off — or for ragged/width-mismatched payloads —
  // rows are gathered and converted per chunk, the PR-6 framing.
  auto make_chunk_batch = [&](const MapTask& t) -> RowBatch {
    const size_t nschema = t.ds->schema().size();
    if (exec_.columnar && !t.segs.empty()) {
      bool view_ok = true;
      for (const ChunkSeg& seg : t.segs) {
        if (!seg.pd.columnar() || seg.pd.num_columns() != nschema) {
          view_ok = false;
          break;
        }
      }
      if (view_ok) {
        if (t.segs.size() == 1) {
          const ChunkSeg& seg = t.segs.front();
          if (seg.lo == 0 && seg.hi == seg.pd.num_rows()) {
            return seg.pd.AsBatch();
          }
          return seg.pd.BatchSlice(seg.lo, seg.hi);
        }
        size_t total = 0;
        for (const ChunkSeg& seg : t.segs) total += seg.hi - seg.lo;
        std::vector<RowBatch> views;
        views.reserve(t.segs.size());
        for (const ChunkSeg& seg : t.segs) views.push_back(seg.pd.AsBatch());
        std::vector<RowBatch::ColumnPtr> cols;
        cols.reserve(nschema);
        for (size_t c = 0; c < nschema; ++c) {
          auto col = std::make_shared<RowBatch::Column>();
          col->reserve(total);
          for (size_t s = 0; s < t.segs.size(); ++s) {
            for (size_t i = t.segs[s].lo; i < t.segs[s].hi; ++i) {
              col->push_back(views[s].ValueAt(c, static_cast<uint32_t>(i)));
            }
          }
          cols.push_back(std::move(col));
        }
        return RowBatch::FromColumns(std::move(cols),
                                     std::vector<uint32_t>(nschema, 1),
                                     total);
      }
    }
    std::vector<Row> rows;
    size_t total = 0;
    for (const ChunkSeg& seg : t.segs) total += seg.hi - seg.lo;
    rows.reserve(total);
    for (const ChunkSeg& seg : t.segs) {
      const auto& src = seg.pd.rows();
      rows.insert(rows.end(), src.begin() + static_cast<long>(seg.lo),
                  src.begin() + static_cast<long>(seg.hi));
    }
    return RowBatch::FromRows(rows, nschema);
  };

  // Parallel compute: every subscribing branch pipeline over the shared
  // scan, plus the per-branch shuffle work.
  struct SubscriberPiece {
    Status status = Status::OK();
    double cpu_units = 0.0;
    TeeRows tee;
    std::vector<Row> out_rows;            // map-only branches (row path)
    std::optional<PartitionData> out_pd;  // map-only, columnar path
    ShuffledOutput shuffled;              // shuffle branches
  };
  struct MapTaskResult {
    uint64_t chunk_bytes = 0;
    size_t chunk_rows = 0;
    std::vector<SubscriberPiece> pieces;
  };
  std::vector<MapTaskResult> map_results(map_tasks.size());
  RunTasks(pool_, map_tasks.size(), [&](size_t ti) {
    MapTask& t = map_tasks[ti];
    MapTaskResult& res = map_results[ti];
    for (const ChunkSeg& seg : t.segs) {
      res.chunk_rows += seg.hi - seg.lo;
      res.chunk_bytes += seg.pd.RangeBytes(seg.lo, seg.hi);
    }
    // One columnar view of the chunk serves every eligible subscriber
    // (pipelines share the input columns; kernels never mutate them).
    std::optional<RowBatch> chunk_batch;
    for (const auto& [bi, ii] : t.group->subscribers) {
      SubscriberPiece& piece = res.pieces.emplace_back();
      const Branch& b = job.branches[bi];
      const std::vector<Stage>& stages = eff_stages[bi][ii];
      if (exec_.vectorized && BatchPipelineRunner::Eligible(stages)) {
        if (!chunk_batch) chunk_batch = make_chunk_batch(t);
        BatchPipelineRunner runner = BatchPipelineRunner::Make(stages);
        RowBatch out = runner.Run(*chunk_batch);
        piece.cpu_units = runner.counters().cpu_units;
        if (b.map_only()) {
          if (exec_.columnar) {
            piece.out_pd = PartitionData::FromBatch(out);
            piece.out_pd->raw_bytes();  // size in-task, off the merge path
          } else {
            piece.out_rows = out.ToRows();
          }
        } else if (bstate[bi].columnar) {
          piece.shuffled = compute_shuffle_columnar(bi, out);
        } else {
          piece.shuffled = compute_shuffle_batch(bi, out);
        }
        continue;
      }
      TaskTeeSink tee;
      VectorEmitter out;
      auto runner =
          PipelineRunner::Make(stages, t.ds->schema(), &out, &tee);
      if (!runner.ok()) {
        piece.status = runner.status();
        continue;
      }
      for (const ChunkSeg& seg : t.segs) {
        const auto& src = seg.pd.rows();
        for (size_t i = seg.lo; i < seg.hi; ++i) (*runner)->Emit(src[i]);
      }
      (*runner)->Finish();
      piece.cpu_units = (*runner)->counters().cpu_units;
      piece.tee = std::move(tee.rows());
      if (b.map_only()) {
        piece.out_rows = std::move(out.rows());
      } else {
        piece.shuffled = compute_shuffle(bi, std::move(out.rows()));
      }
    }
    t.segs.clear();
    t.segs.shrink_to_fit();
  });

  // Serial merge in task order.
  for (size_t ti = 0; ti < map_tasks.size(); ++ti) {
    MapTask& t = map_tasks[ti];
    MapTaskResult& res = map_results[ti];
    uint64_t logical = account_input(*t.ds, res.chunk_bytes, res.chunk_rows);
    df.max_map_task_input_bytes =
        std::max(df.max_map_task_input_bytes, logical);
    for (size_t si = 0; si < res.pieces.size(); ++si) {
      SubscriberPiece& piece = res.pieces[si];
      if (!piece.status.ok()) return piece.status;
      const auto& [bi, ii] = t.group->subscribers[si];
      (void)ii;
      df.map_cpu_units += piece.cpu_units * t.scale;
      drain_tee(piece.tee, t.scale);
      if (job.branches[bi].map_only()) {
        if (piece.out_pd.has_value()) {
          bstate[bi].output.Add(std::move(*piece.out_pd), t.scale);
        } else {
          bstate[bi].output.Add(std::move(piece.out_rows), t.scale);
        }
      } else {
        merge_shuffle(bi, std::move(piece.shuffled), t.scale);
      }
    }
  }
  map_results.clear();
  map_tasks.clear();

  // ---- Map phase: merge-mode branches (co-aligned inputs) -----------------
  // Merge-mode branches stay on the record-at-a-time path regardless of
  // ExecOptions::vectorized: their per-input streams are concatenated and
  // re-sorted across pipelines, which breaks the single-physical-index-space
  // invariant batch pipelines rely on for exact CPU-accounting replay.
  struct MergeBranchCtx {
    size_t bi = 0;
    std::vector<DatasetPtr> inputs_ds;
    std::vector<std::vector<int>> inputs_parts;
    std::vector<size_t> merge_sort_idx;
  };
  std::vector<MergeBranchCtx> merge_ctx;
  struct MergeTask {
    size_t ctx = 0;
    size_t t = 0;
  };
  std::vector<MergeTask> merge_tasks;
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    if (!b.merge_mode()) continue;

    MergeBranchCtx ctx;
    ctx.bi = bi;
    size_t max_parts = 0;
    for (const BranchInput& in : b.inputs) {
      STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs->Get(in.dataset_id));
      STUBBY_ASSIGN_OR_RETURN(std::vector<int> parts,
                              SelectedPartitions(*ds, in.prune_partitions));
      max_parts = std::max(max_parts, parts.size());
      ctx.inputs_ds.push_back(std::move(ds));
      ctx.inputs_parts.push_back(std::move(parts));
    }
    if (max_parts == 0) max_parts = 1;
    df.num_map_tasks += static_cast<int>(max_parts);
    df.pipelines_per_task = std::max(df.pipelines_per_task, 1);
    STUBBY_ASSIGN_OR_RETURN(ctx.merge_sort_idx,
                            b.merge_schema.IndicesOf(b.merge_sort_fields));
    merge_ctx.push_back(std::move(ctx));
    for (size_t t = 0; t < max_parts; ++t) {
      merge_tasks.push_back(MergeTask{merge_ctx.size() - 1, t});
    }
  }

  struct MergeInputPiece {
    size_t input_index = 0;
    uint64_t pb = 0;  ///< physical bytes read
    size_t nrows = 0;
    double cpu_units = 0.0;
    TeeRows tee;
  };
  struct MergeTaskResult {
    Status status = Status::OK();
    std::vector<MergeInputPiece> pieces;
    uint64_t task_logical_bytes = 0;
    double task_scale = 1.0;
    double merged_cpu_units = 0.0;
    TeeRows merged_tee;
    std::vector<Row> out_rows;  // map-only branches
    ShuffledOutput shuffled;    // shuffle branches
  };
  std::vector<MergeTaskResult> merge_results(merge_tasks.size());
  RunTasks(pool_, merge_tasks.size(), [&](size_t ti) {
    const MergeBranchCtx& ctx = merge_ctx[merge_tasks[ti].ctx];
    const size_t t = merge_tasks[ti].t;
    MergeTaskResult& res = merge_results[ti];
    const Branch& b = job.branches[ctx.bi];

    std::vector<Row> merged;
    double task_scaled_bytes = 0.0;
    uint64_t task_physical_bytes = 0;
    for (size_t i = 0; i < b.inputs.size(); ++i) {
      if (t >= ctx.inputs_parts[i].size()) continue;
      const StoredDataset& ds = *ctx.inputs_ds[i];
      const std::vector<Row>& part =
          ds.partition(static_cast<size_t>(ctx.inputs_parts[i][t]));
      uint64_t pb = RowsBytes(part);
      // Same arithmetic as account_input's `logical`, without the dataflow
      // mutation (that happens at merge).
      uint64_t logical = static_cast<uint64_t>(static_cast<double>(pb) *
                                               ds.logical_scale());
      res.task_logical_bytes += logical;
      task_scaled_bytes += static_cast<double>(logical);
      task_physical_bytes += pb;

      MergeInputPiece& piece = res.pieces.emplace_back();
      piece.input_index = i;
      piece.pb = pb;
      piece.nrows = part.size();
      TaskTeeSink tee;
      VectorEmitter out;
      auto runner = PipelineRunner::Make(b.inputs[i].map_stages, ds.schema(),
                                         &out, &tee);
      if (!runner.ok()) {
        res.status = runner.status();
        return;
      }
      for (const Row& row : part) (*runner)->Emit(row);
      (*runner)->Finish();
      piece.cpu_units = (*runner)->counters().cpu_units;
      piece.tee = std::move(tee.rows());
      merged.insert(merged.end(), std::make_move_iterator(out.rows().begin()),
                    std::make_move_iterator(out.rows().end()));
    }
    res.task_scale =
        task_physical_bytes > 0
            ? task_scaled_bytes / static_cast<double>(task_physical_bytes)
            : 1.0;

    // Co-aligned merge: interleave the per-input streams by sort order.
    std::stable_sort(merged.begin(), merged.end(),
                     [&](const Row& a, const Row& bb) {
                       return CompareOnFields(a, bb, ctx.merge_sort_idx) < 0;
                     });
    TaskTeeSink tee;
    VectorEmitter out;
    auto runner =
        PipelineRunner::Make(b.merged_map_stages, b.merge_schema, &out, &tee);
    if (!runner.ok()) {
      res.status = runner.status();
      return;
    }
    for (const Row& row : merged) (*runner)->Emit(row);
    (*runner)->Finish();
    res.merged_cpu_units = (*runner)->counters().cpu_units;
    res.merged_tee = std::move(tee.rows());
    if (b.map_only()) {
      res.out_rows = std::move(out.rows());
    } else {
      res.shuffled = compute_shuffle(ctx.bi, std::move(out.rows()));
    }
  });

  for (size_t ti = 0; ti < merge_tasks.size(); ++ti) {
    const MergeBranchCtx& ctx = merge_ctx[merge_tasks[ti].ctx];
    MergeTaskResult& res = merge_results[ti];
    if (!res.status.ok()) return res.status;
    const Branch& b = job.branches[ctx.bi];
    for (MergeInputPiece& piece : res.pieces) {
      const StoredDataset& ds = *ctx.inputs_ds[piece.input_index];
      account_input(ds, piece.pb, piece.nrows);
      df.map_cpu_units += piece.cpu_units * ds.logical_scale();
      drain_tee(piece.tee, ds.logical_scale());
    }
    df.max_map_task_input_bytes =
        std::max(df.max_map_task_input_bytes, res.task_logical_bytes);
    df.map_cpu_units += res.merged_cpu_units * res.task_scale;
    drain_tee(res.merged_tee, res.task_scale);
    if (b.map_only()) {
      bstate[ctx.bi].output.Add(std::move(res.out_rows), res.task_scale);
    } else {
      merge_shuffle(ctx.bi, std::move(res.shuffled), res.task_scale);
    }
  }
  merge_results.clear();
  merge_tasks.clear();

  // Combine-effectiveness accounting at logical scale: a map task emitting
  // n records over G distinct groups combines down to about
  // G*(1-exp(-n/G)) records. The what-if engine uses the same model, so
  // estimation error stems from its profiled G, not from model mismatch.
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    if (b.map_only()) continue;
    BranchState& st = bstate[bi];
    if (job.config.use_combiner && b.combiner != nullptr &&
        !st.group_hashes.empty() && st.raw_scaled_records > 0) {
      double groups = static_cast<double>(st.group_hashes.size());
      double combined = 0.0;
      for (double n : st.task_logical_records) {
        if (n <= 0) continue;
        combined += std::min(n, groups * (1.0 - std::exp(-n / groups)));
      }
      st.combine_ratio = std::min(1.0, combined / st.raw_scaled_records);
      // Every map-output record passes through the combiner once.
      df.combine_cpu_units +=
          st.raw_scaled_records * b.combiner->cpu_cost_per_record();
    }
    df.combine_output_records +=
        static_cast<uint64_t>(st.raw_scaled_records * st.combine_ratio);
    df.combine_output_bytes +=
        static_cast<uint64_t>(st.raw_scaled_bytes * st.combine_ratio);
  }

  // ---- Reduce phase --------------------------------------------------------
  // Columnar branches (bstate.columnar) run the reduce side batched: the
  // per-map bucket batches are concatenated in task order, sorted by
  // selection permutation (same stable sort, same comparator, same initial
  // order as the row path — hence the same permutation), and grouped runs go
  // through the reducer's batch kernel. Everything else runs
  // record-at-a-time exactly as before.
  if (!map_only) {
    // One task per reduce partition; task r exclusively owns every branch's
    // bucket r, so sorting in place and draining the rows is race-free.
    struct ReducePiece {
      Status status = Status::OK();
      bool had_rows = false;
      double cpu_units = 0.0;
      TeeRows tee;
      std::vector<Row> out_rows;            // row path
      std::optional<PartitionData> out_pd;  // columnar path
    };
    struct ReduceTaskResult {
      std::vector<ReducePiece> pieces;  // indexed by branch
    };
    std::vector<ReduceTaskResult> reduce_results(static_cast<size_t>(R));
    RunTasks(pool_, static_cast<size_t>(R), [&](size_t ri) {
      ReduceTaskResult& res = reduce_results[ri];
      res.pieces.resize(nb);
      for (size_t bi = 0; bi < nb; ++bi) {
        const Branch& b = job.branches[bi];
        if (b.map_only()) continue;
        BranchState& st = bstate[bi];
        ReducePiece& piece = res.pieces[bi];

        if (st.columnar) {
          auto& batches = st.reduce_batches[ri];
          size_t total = 0;
          for (const RowBatch& rb : batches) total += rb.num_rows();
          piece.had_rows = total > 0;
          RowBatch merged;
          if (batches.size() == 1) {
            merged = std::move(batches.front());
          } else {
            // Concatenate the bucket batches (map-task order) column-wise
            // into one dense batch — the columnar twin of the row path's
            // bucket concatenation.
            const size_t ncols = b.map_output_schema.size();
            std::vector<RowBatch::ColumnPtr> cols;
            cols.reserve(ncols);
            for (size_t c = 0; c < ncols; ++c) {
              auto col = std::make_shared<RowBatch::Column>();
              col->reserve(total);
              for (const RowBatch& rb : batches) {
                for (size_t i = 0; i < rb.num_rows(); ++i) {
                  col->push_back(rb.At(i, c));
                }
              }
              cols.push_back(std::move(col));
            }
            merged = RowBatch::FromColumns(
                std::move(cols), std::vector<uint32_t>(ncols, 1), total);
          }
          batches.clear();
          batches.shrink_to_fit();

          // Merge the per-map sorted segments (modeled as one stable sort)
          // by permuting the selection.
          std::vector<uint32_t> perm(merged.num_rows());
          std::iota(perm.begin(), perm.end(), 0u);
          std::stable_sort(perm.begin(), perm.end(),
                           [&](uint32_t a, uint32_t bb) {
                             return merged.Compare(
                                        a, bb, st.partition_sort_indices) < 0;
                           });
          std::vector<uint32_t> sel;
          sel.reserve(perm.size());
          for (uint32_t p : perm) sel.push_back(merged.selection()[p]);
          merged.SetSelection(std::move(sel));

          auto runner =
              BatchReducePipeline::Make(b.reduce_stages, b.map_output_schema);
          if (!runner.ok()) {
            piece.status = runner.status();
            continue;
          }
          RowBatch out = runner->Run(merged);
          piece.cpu_units = runner->counters().cpu_units;
          piece.out_pd = PartitionData::FromBatch(out);
          piece.out_pd->raw_bytes();  // size in-task, off the merge path
          continue;
        }

        auto& rows = st.reduce_buckets[ri];
        piece.had_rows = !rows.empty();

        // Merge the per-map sorted segments (modeled as one stable sort).
        std::stable_sort(rows.begin(), rows.end(),
                         [&](const Row& a, const Row& bb) {
                           return CompareOnFields(
                                      a, bb, st.partition_sort_indices) < 0;
                         });
        TaskTeeSink tee;
        VectorEmitter out;
        auto runner = PipelineRunner::Make(b.reduce_stages,
                                           b.map_output_schema, &out, &tee);
        if (!runner.ok()) {
          piece.status = runner.status();
          continue;
        }
        for (const Row& row : rows) (*runner)->Emit(row);
        (*runner)->Finish();
        piece.cpu_units = (*runner)->counters().cpu_units;
        piece.tee = std::move(tee.rows());
        piece.out_rows = std::move(out.rows());
        rows.clear();
        rows.shrink_to_fit();
      }
    });

    for (int r = 0; r < R; ++r) {
      ReduceTaskResult& res = reduce_results[static_cast<size_t>(r)];
      double partition_scaled_bytes = 0.0;
      bool nonempty = false;
      for (size_t bi = 0; bi < nb; ++bi) {
        const Branch& b = job.branches[bi];
        if (b.map_only()) continue;
        BranchState& st = bstate[bi];
        const size_t ri = static_cast<size_t>(r);
        ReducePiece& piece = res.pieces[bi];
        if (!piece.status.ok()) return piece.status;
        partition_scaled_bytes +=
            st.bucket_scaled_bytes[ri] * st.combine_ratio;
        // Plain logical/physical data ratio (combine-independent): scales
        // the reduce pipeline's outputs, whose record counts track groups,
        // not pre-aggregation.
        double scale = st.bucket_physical_records[ri] > 0
                           ? st.bucket_scaled_records[ri] /
                                 static_cast<double>(
                                     st.bucket_physical_records[ri])
                           : 1.0;
        // Reduce-side CPU processes the logically-combined stream.
        double cpu_scale =
            st.bucket_physical_post_records[ri] > 0
                ? st.bucket_scaled_records[ri] * st.combine_ratio /
                      static_cast<double>(st.bucket_physical_post_records[ri])
                : 1.0;
        if (piece.had_rows) nonempty = true;

        df.reduce_input_records += static_cast<uint64_t>(
            st.bucket_scaled_records[ri] * st.combine_ratio);
        df.reduce_input_bytes += static_cast<uint64_t>(
            st.bucket_scaled_bytes[ri] * st.combine_ratio);
        df.reduce_cpu_units += piece.cpu_units * cpu_scale;
        drain_tee(piece.tee, scale);
        if (piece.out_pd.has_value()) {
          st.output.AddTo(static_cast<size_t>(r), std::move(*piece.out_pd),
                          scale);
        } else {
          st.output.AddTo(static_cast<size_t>(r), std::move(piece.out_rows),
                          scale);
        }
      }
      if (nonempty) df.nonempty_reduce_partitions++;
      df.max_reduce_input_bytes =
          std::max(df.max_reduce_input_bytes,
                   static_cast<uint64_t>(partition_scaled_bytes));
    }
  }

  // ---- Materialize outputs -------------------------------------------------
  for (size_t bi = 0; bi < nb; ++bi) {
    const Branch& b = job.branches[bi];
    BranchState& st = bstate[bi];
    STUBBY_ASSIGN_OR_RETURN(const DatasetVertex* dv,
                            plan.GetDataset(b.output_dataset));
    Layout layout = DeriveOutputLayout(b, job.config, dv->schema);
    auto out_ds =
        std::make_shared<StoredDataset>(b.output_dataset, dv->schema, layout);
    if (!b.map_only() &&
        st.output.partitions.size() < static_cast<size_t>(R)) {
      st.output.partitions.resize(static_cast<size_t>(R));
    }
    for (auto& p : st.output.partitions) out_ds->AddPartition(std::move(p));
    out_ds->set_logical_scale(st.output.LogicalScale());
    df.output_records += static_cast<uint64_t>(st.output.scaled_records);
    df.output_bytes += static_cast<uint64_t>(st.output.scaled_bytes);
    dfs->PutOrReplace(std::move(out_ds));
  }
  // Every declared tee must land in the DFS, even when the teed stream
  // filtered down to nothing — downstream jobs read it unconditionally,
  // exactly as they would the regular job output it replaced.
  for (const auto& [id, schema] : tee_schemas) {
    Layout layout;  // tee outputs are plain block files
    auto ds = std::make_shared<StoredDataset>(id, schema, layout);
    auto it = tee_builders.find(id);
    if (it != tee_builders.end()) {
      for (auto& p : it->second.partitions) ds->AddPartition(std::move(p));
      ds->set_logical_scale(it->second.LogicalScale());
    }
    dfs->PutOrReplace(std::move(ds));
  }
  return df;
}

}  // namespace stubby

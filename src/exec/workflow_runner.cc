#include "exec/workflow_runner.h"

#include "cost/phase_model.h"
#include "cost/schedule.h"
#include "exec/job_runner.h"

namespace stubby {

Result<WorkflowDataflow> WorkflowRunner::Run(const Plan& plan,
                                             Dfs* dfs) const {
  STUBBY_RETURN_NOT_OK(plan.Validate());
  for (const auto& [id, ds] : plan.datasets()) {
    if (ds.is_base_input && !dfs->Exists(id)) {
      return Status::FailedPrecondition("base input dataset '" + id +
                                        "' missing from DFS");
    }
  }

  STUBBY_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          plan.TopologicalOrder());
  JobRunner job_runner(cluster_, pool_, exec_);
  PhaseTimeModel model(cluster_);

  WorkflowDataflow flow;
  std::vector<ScheduledJob> scheduled;
  for (const auto& jid : order) {
    STUBBY_ASSIGN_OR_RETURN(const JobVertex* job, plan.GetJob(jid));
    STUBBY_ASSIGN_OR_RETURN(JobDataflow df, job_runner.Run(plan, *job, dfs));
    ScheduledJob sj;
    sj.id = jid;
    sj.deps = plan.UpstreamJobs(jid);
    sj.times = model.TaskTimes(df, job->config);
    scheduled.push_back(std::move(sj));
    flow.jobs.push_back(std::move(df));
  }
  STUBBY_ASSIGN_OR_RETURN(ScheduleResult sched,
                          SimulateCluster(scheduled, cluster_));
  flow.makespan_sec = sched.makespan_sec;
  flow.job_finish_sec = std::move(sched.job_finish_sec);
  return flow;
}

}  // namespace stubby

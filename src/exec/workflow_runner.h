// WorkflowRunner: executes a whole plan job-by-job in topological order on
// the simulated cluster, then derives the workflow's simulated wall-clock
// makespan by pushing the observed per-job dataflow through the phase-time
// model and the slot-based cluster scheduler. This is the reproduction's
// ground truth — the role the 51-node EC2 cluster plays in the paper.

#pragma once

#include "common/result.h"
#include "cost/dataflow.h"
#include "dfs/dfs.h"
#include "exec/job_runner.h"
#include "workflow/plan.h"

namespace stubby {

class ThreadPool;

/// Executes plans end-to-end. The pool, when given, is borrowed and lets
/// each job's map/reduce tasks run concurrently; results stay bit-identical
/// to a single-threaded run, and so does toggling any ExecOptions knob.
class WorkflowRunner {
 public:
  explicit WorkflowRunner(ClusterSpec cluster, ThreadPool* pool = nullptr,
                          ExecOptions exec = {})
      : cluster_(std::move(cluster)), pool_(pool), exec_(exec) {}

  /// Validates and runs `plan`. Base inputs must already exist in `dfs`;
  /// intermediate and output datasets are (re)created there. Returns the
  /// observed dataflow including the simulated makespan.
  Result<WorkflowDataflow> Run(const Plan& plan, Dfs* dfs) const;

 private:
  ClusterSpec cluster_;
  ThreadPool* pool_ = nullptr;
  ExecOptions exec_;
};

}  // namespace stubby

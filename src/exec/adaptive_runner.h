// AdaptiveRunner: WorkflowRunner's execution loop with the Starfish
// profile/what-if feedback loop closed mid-run. After every job finishes it
// compares the observed per-phase dataflow against the what-if prediction
// for that job; when the worst relative error exceeds
// StubbyOptions::reoptimize_threshold and jobs remain, the not-yet-executed
// suffix is rebuilt over the observed data (optimizer/reoptimize.h),
// re-profiled, re-optimized, and spliced in. Executed jobs are never re-run
// — their outputs become annotated base-input scans of the new suffix.
//
// Determinism contract (the repo-wide invariant): plans, executed-job
// order, outputs, dataflow accounting, makespans, and every AdaptiveStats
// counter are bit-identical at any thread count. With accurate profiles the
// error check never fires and the run is an exact no-op relative to
// WorkflowRunner: same ScheduledJob sequence, same makespan bits.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/dataflow.h"
#include "dfs/dfs.h"
#include "exec/job_runner.h"
#include "optimizer/stubby.h"
#include "workflow/plan.h"

namespace stubby {

class ThreadPool;

/// Deterministic counters of one adaptive run (all bit-identical across
/// thread counts; compared verbatim by the invariance tests).
struct AdaptiveStats {
  uint64_t jobs_executed = 0;     ///< total executions (each job runs once)
  uint64_t checks = 0;            ///< observed-vs-predicted comparisons
  uint64_t reoptimizations = 0;   ///< suffix re-plans spliced in
  uint64_t suffix_jobs_replanned = 0;  ///< jobs across all spliced suffixes
  double max_rel_error = 0.0;     ///< worst relative dataflow error seen
  /// Job ids in execution order, across every splice. A job id appearing
  /// twice would mean an executed prefix re-ran — asserted never to happen.
  std::vector<std::string> executed_order;

  std::string ToString() const;
};

/// What one adaptive run produced.
struct AdaptiveRunResult {
  /// Observed dataflow of every executed job (prefix + final suffix, in
  /// execution order) and the simulated makespan of the composite schedule.
  WorkflowDataflow dataflow;
  AdaptiveStats stats;
  /// The plan whose jobs were executing when the run finished (== the input
  /// plan when no re-optimization fired).
  Plan final_plan;
};

/// True when STUBBY_REOPT=1 (or any value but "0") in the environment;
/// `fallback` when unset. The CLI and benches seed
/// StubbyOptions::reoptimize from this, mirroring STUBBY_COLUMNAR.
bool ReoptimizeFromEnv(bool fallback = false);

/// Executes plans end-to-end with optional mid-run suffix re-optimization.
/// `options` supplies the error threshold and the optimizer configuration
/// used for re-plans (reuse pointers are stripped — a mid-run re-plan never
/// touches a ResultStore). The pool is borrowed for job execution and the
/// re-optimization search, bit-identically to a single-threaded run.
class AdaptiveRunner {
 public:
  AdaptiveRunner(ClusterSpec cluster, ThreadPool* pool, ExecOptions exec,
                 StubbyOptions options)
      : cluster_(std::move(cluster)),
        pool_(pool),
        exec_(exec),
        options_(options) {}

  /// Validates and runs `plan`. Base inputs must already exist in `dfs`;
  /// intermediate and output datasets are (re)created there.
  Result<AdaptiveRunResult> Run(const Plan& plan, Dfs* dfs) const;

 private:
  ClusterSpec cluster_;
  ThreadPool* pool_ = nullptr;
  ExecOptions exec_;
  StubbyOptions options_;
};

}  // namespace stubby

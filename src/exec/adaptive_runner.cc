#include "exec/adaptive_runner.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "cost/phase_model.h"
#include "cost/schedule.h"
#include "cost/whatif.h"
#include "optimizer/reoptimize.h"

namespace stubby {

namespace {

double RelErr(uint64_t observed, uint64_t predicted) {
  const double o = static_cast<double>(observed);
  const double p = static_cast<double>(predicted);
  return std::abs(o - p) / std::max(p, 1.0);
}

/// Worst relative error over the phase sizes the injector (and a wrong
/// input profile generally) distorts: map input, map output, final output,
/// and — when no combine model is in play — the reduce input. The analytic
/// combine model carries irreducible estimation error even with exact
/// profiles (Figure 14), so reduce_input_* participates only when the
/// prediction shows the combine pass-through (combine output bit-equal to
/// map output); the threshold must separate "the profile was wrong" from
/// "the model is approximate".
double MaxRelativeError(const JobDataflow& observed,
                        const JobDataflow& predicted) {
  double err = 0.0;
  err = std::max(err, RelErr(observed.map_input_records,
                             predicted.map_input_records));
  err = std::max(err,
                 RelErr(observed.map_input_bytes, predicted.map_input_bytes));
  err = std::max(err, RelErr(observed.map_output_records,
                             predicted.map_output_records));
  err = std::max(err, RelErr(observed.map_output_bytes,
                             predicted.map_output_bytes));
  err = std::max(err,
                 RelErr(observed.output_records, predicted.output_records));
  err = std::max(err,
                 RelErr(observed.output_bytes, predicted.output_bytes));
  const bool combine_inactive =
      predicted.combine_output_records == predicted.map_output_records &&
      predicted.combine_output_bytes == predicted.map_output_bytes;
  if (combine_inactive) {
    err = std::max(err, RelErr(observed.reduce_input_records,
                               predicted.reduce_input_records));
    err = std::max(err, RelErr(observed.reduce_input_bytes,
                               predicted.reduce_input_bytes));
  }
  return err;
}

}  // namespace

std::string AdaptiveStats::ToString() const {
  std::ostringstream os;
  os << "jobs_executed=" << jobs_executed << " checks=" << checks
     << " reoptimizations=" << reoptimizations
     << " suffix_jobs_replanned=" << suffix_jobs_replanned
     << " max_rel_error=" << max_rel_error << " order=[";
  for (size_t i = 0; i < executed_order.size(); ++i) {
    if (i > 0) os << ",";
    os << executed_order[i];
  }
  os << "]";
  return os.str();
}

bool ReoptimizeFromEnv(bool fallback) {
  const char* env = std::getenv("STUBBY_REOPT");
  if (env == nullptr) return fallback;
  return std::string(env) != "0";
}

Result<AdaptiveRunResult> AdaptiveRunner::Run(const Plan& plan,
                                              Dfs* dfs) const {
  STUBBY_RETURN_NOT_OK(plan.Validate());
  for (const auto& [id, ds] : plan.datasets()) {
    if (ds.is_base_input && !dfs->Exists(id)) {
      return Status::FailedPrecondition("base input dataset '" + id +
                                        "' missing from DFS");
    }
  }

  AdaptiveRunResult out;
  Plan current = plan;
  WhatIfEngine whatif(cluster_);
  // Adaptivity needs a prediction to compare against; fallback-costed plans
  // (annotations missing) execute exactly like WorkflowRunner.
  CostEstimate predicted = whatif.Cost(current);
  bool adaptive = options_.reoptimize && !predicted.fallback;

  JobRunner job_runner(cluster_, pool_, exec_);
  PhaseTimeModel model(cluster_);

  STUBBY_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          current.TopologicalOrder());
  std::deque<std::string> remaining(order.begin(), order.end());
  std::set<std::string> executed_ids;
  // Dataset id -> the executed job that wrote it: dependency fixup for
  // suffix jobs whose inputs are promoted prefix outputs, so the composite
  // schedule keeps the true cross-splice ordering constraints.
  std::map<std::string, std::string> produced_by;
  std::vector<ScheduledJob> scheduled;
  WorkflowDataflow flow;

  while (!remaining.empty()) {
    const std::string jid = remaining.front();
    remaining.pop_front();
    STUBBY_ASSIGN_OR_RETURN(const JobVertex* job, current.GetJob(jid));
    STUBBY_ASSIGN_OR_RETURN(JobDataflow df,
                            job_runner.Run(current, *job, dfs));
    ScheduledJob sj;
    sj.id = jid;
    sj.deps = current.UpstreamJobs(jid);
    for (const std::string& in : job->InputDatasets()) {
      auto it = produced_by.find(in);
      if (it == produced_by.end()) continue;
      if (std::find(sj.deps.begin(), sj.deps.end(), it->second) ==
          sj.deps.end()) {
        sj.deps.push_back(it->second);
      }
    }
    sj.times = model.TaskTimes(df, job->config);
    scheduled.push_back(std::move(sj));
    for (const std::string& o : job->OutputDatasets()) produced_by[o] = jid;
    executed_ids.insert(jid);
    out.stats.executed_order.push_back(jid);
    ++out.stats.jobs_executed;

    const JobDataflow* pred = predicted.dataflow.FindJob(jid);
    flow.jobs.push_back(std::move(df));
    if (!adaptive || remaining.empty() || pred == nullptr) continue;

    ++out.stats.checks;
    const double err = MaxRelativeError(flow.jobs.back(), *pred);
    out.stats.max_rel_error = std::max(out.stats.max_rel_error, err);
    if (err <= options_.reoptimize_threshold) continue;

    // The prediction was wrong enough to distrust the rest of the plan:
    // re-plan the remainder against observed reality and splice it in.
    STUBBY_ASSIGN_OR_RETURN(Plan suffix,
                            BuildSuffixPlan(current, executed_ids, *dfs));
    if (suffix.num_jobs() == 0) continue;
    STUBBY_ASSIGN_OR_RETURN(
        OptimizeReport replan,
        ReoptimizeSuffix(suffix, *dfs, options_, pool_));
    current = std::move(replan.plan);
    STUBBY_ASSIGN_OR_RETURN(order, current.TopologicalOrder());
    remaining.assign(order.begin(), order.end());
    predicted = whatif.Cost(current);
    adaptive = !predicted.fallback;
    ++out.stats.reoptimizations;
    out.stats.suffix_jobs_replanned += current.num_jobs();
  }

  STUBBY_ASSIGN_OR_RETURN(ScheduleResult sched,
                          SimulateCluster(scheduled, cluster_));
  flow.makespan_sec = sched.makespan_sec;
  flow.job_finish_sec = std::move(sched.job_finish_sec);
  out.dataflow = std::move(flow);
  out.final_plan = std::move(current);
  return out;
}

}  // namespace stubby

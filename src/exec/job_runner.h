// JobRunner: executes one MapReduce job of a plan on the simulated cluster,
// at record level. Map tasks are formed per input group (size-based splits,
// or partition-aligned reads), run every subscribing branch pipeline over
// the scan, partition/sort/combine the map output per branch, and reduce
// tasks merge and run the reduce-side pipelines. Observed dataflow is
// returned in logical units for the phase-time model.
//
// With a thread pool, map and reduce tasks execute concurrently as pure
// tasks whose per-task pieces are merged serially in task order, so
// outputs and every dataflow metric (including floating-point sums) are
// bit-identical to a single-threaded run.

#pragma once

#include "common/result.h"
#include "cost/dataflow.h"
#include "dfs/dfs.h"
#include "mr/cluster.h"
#include "workflow/plan.h"

namespace stubby {

class ThreadPool;

/// Resolves a branch's effective range split points: explicit ones win;
/// otherwise sorted, de-duplicated candidates from the `split_points_from`
/// dataset are thinned to R-1 evenly spaced distinct boundaries.
Result<PartitionSpec> ResolvePartitionSpec(const Branch& branch, int R,
                                           const Dfs& dfs);

/// Executor knobs. These are pure wall-time switches: outputs, plans, and
/// every dataflow metric are bit-identical whatever their values.
struct ExecOptions {
  /// Columnar batch execution (RowBatch + BatchPipelineRunner) of eligible
  /// map pipelines and the map-side shuffle; ineligible pipelines fall back
  /// to record-at-a-time execution. Driven by
  /// StubbyOptions::vectorized_exec.
  bool vectorized = true;
  /// Column-native storage boundary: scan chunks as zero-copy RowBatch
  /// views over PartitionData columns (no per-chunk FromRows), keep shuffle
  /// buckets as selection vectors over shared columns, batch eligible
  /// reduce pipelines, and store batch outputs column-native. Only takes
  /// effect when `vectorized` is on; ineligible branches (merge mode,
  /// stateful/tee stages, non-batch combiners) fall back to the row path.
  /// Driven by StubbyOptions::columnar_storage.
  bool columnar = true;
};

/// True unless STUBBY_COLUMNAR=0 in the environment. The CLI and the
/// benches seed StubbyOptions::columnar_storage (and their direct
/// WorkflowRunner ExecOptions) from this, so a columnar-off A/B needs no
/// rebuild; library callers are unaffected.
bool ColumnarStorageFromEnv();

/// Executes single jobs against a Dfs. The pool, when given, is borrowed
/// for the duration of each Run call.
class JobRunner {
 public:
  explicit JobRunner(ClusterSpec cluster, ThreadPool* pool = nullptr,
                     ExecOptions exec = {})
      : cluster_(std::move(cluster)), pool_(pool), exec_(exec) {}

  /// Runs `job`, reading inputs from and writing outputs to `dfs`. The plan
  /// provides dataset schemas and layouts. Returns the observed dataflow.
  Result<JobDataflow> Run(const Plan& plan, const JobVertex& job,
                          Dfs* dfs) const;

  /// Upper bound on map tasks materialized per input group (shared with
  /// the what-if engine so predictions match observations).
  static constexpr int kMaxMapTasks = kMaxSimulatedMapTasks;

 private:
  ClusterSpec cluster_;
  ThreadPool* pool_ = nullptr;
  ExecOptions exec_;
};

}  // namespace stubby

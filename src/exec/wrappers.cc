#include "exec/wrappers.h"

#include <cassert>

namespace stubby {

// One stage instance inside a running pipeline. Nodes form a chain; each
// node emits into the next via the Out() emitter.
struct PipelineRunner::Node : public Emitter {
  Stage::Kind kind;
  std::shared_ptr<MapFn> map_fn;
  std::shared_ptr<ReduceFn> reduce_fn;
  std::vector<size_t> group_indices;
  std::vector<size_t> key_indices;  // same as group_indices (projection)
  std::vector<Row> group_buffer;
  bool has_group = false;

  std::string tee_dataset;
  TeeSink* tee = nullptr;

  Emitter* next = nullptr;  // next node or final output
  double cpu_weight = 1.0;
  PipelineCounters* counters = nullptr;
  bool is_last = false;

  void Forward(Row row) {
    if (tee != nullptr && !tee_dataset.empty()) {
      tee->TeeEmit(tee_dataset, row);
    }
    if (is_last) counters->rows_out++;
    next->Emit(std::move(row));
  }

  // Emitter that routes a UDF's output through Forward().
  struct ForwardEmitter : public Emitter {
    Node* node;
    explicit ForwardEmitter(Node* n) : node(n) {}
    void Emit(Row row) override { node->Forward(std::move(row)); }
  };

  void Emit(Row row) override {
    counters->cpu_units += cpu_weight;
    ForwardEmitter fwd(this);
    if (kind == Stage::Kind::kMap) {
      map_fn->Map(row, &fwd);
      return;
    }
    // Streaming group-by: flush when the grouping key changes.
    if (has_group && !EqualOnFields(group_buffer.front(), row, group_indices)) {
      FlushGroup();
    }
    group_buffer.push_back(std::move(row));
    has_group = true;
  }

  void FlushGroup() {
    if (!has_group) return;
    ForwardEmitter fwd(this);
    Row key = group_buffer.front().Project(key_indices);
    reduce_fn->Reduce(key, group_buffer, &fwd);
    group_buffer.clear();
    has_group = false;
  }

  void FinishNode() {
    ForwardEmitter fwd(this);
    if (kind == Stage::Kind::kReduce) {
      FlushGroup();
      reduce_fn->Finish(&fwd);
    } else {
      map_fn->Finish(&fwd);
    }
  }
};

Result<std::unique_ptr<PipelineRunner>> PipelineRunner::Make(
    const std::vector<Stage>& stages, const Schema& input_schema,
    Emitter* out, TeeSink* tee) {
  std::unique_ptr<PipelineRunner> runner(new PipelineRunner());
  runner->final_out_ = out;

  Schema cur = input_schema;
  for (const Stage& s : stages) {
    auto node = std::make_unique<Node>();
    node->kind = s.kind;
    node->tee_dataset = s.tee_dataset;
    node->tee = tee;
    node->counters = &runner->counters_;
    if (s.kind == Stage::Kind::kMap) {
      node->map_fn = s.map_fn->Clone();
      node->map_fn->Setup();
      node->cpu_weight = node->map_fn->cpu_cost_per_record();
      cur = node->map_fn->output_schema();
    } else {
      node->reduce_fn = s.reduce_fn->Clone();
      node->reduce_fn->Setup();
      node->cpu_weight = node->reduce_fn->cpu_cost_per_record();
      STUBBY_ASSIGN_OR_RETURN(node->group_indices,
                              cur.IndicesOf(s.group_fields));
      node->key_indices = node->group_indices;
      cur = node->reduce_fn->output_schema();
    }
    runner->nodes_.push_back(std::move(node));
  }

  // Wire the chain.
  for (size_t i = 0; i < runner->nodes_.size(); ++i) {
    Emitter* next = (i + 1 < runner->nodes_.size())
                        ? static_cast<Emitter*>(runner->nodes_[i + 1].get())
                        : out;
    runner->nodes_[i]->next = next;
    runner->nodes_[i]->is_last = (i + 1 == runner->nodes_.size());
  }
  return runner;
}

PipelineRunner::~PipelineRunner() = default;

void PipelineRunner::Emit(Row row) {
  counters_.rows_in++;
  if (nodes_.empty()) {
    counters_.rows_out++;
    final_out_->Emit(std::move(row));
    return;
  }
  nodes_.front()->Emit(std::move(row));
}

void PipelineRunner::Finish() {
  for (auto& node : nodes_) node->FinishNode();
}

bool BatchPipelineRunner::Eligible(const std::vector<Stage>& stages) {
  for (const Stage& s : stages) {
    if (s.kind != Stage::Kind::kMap) return false;
    if (!s.tee_dataset.empty()) return false;
    if (!s.map_fn->stateless() || !s.map_fn->supports_batch()) return false;
  }
  return true;
}

BatchPipelineRunner BatchPipelineRunner::Make(
    const std::vector<Stage>& stages) {
  BatchPipelineRunner runner;
  runner.nodes_.reserve(stages.size());
  for (const Stage& s : stages) {
    BatchNode node;
    node.fn = s.map_fn->Clone();
    node.fn->Setup();
    node.cpu_weight = node.fn->cpu_cost_per_record();
    runner.nodes_.push_back(std::move(node));
  }
  return runner;
}

RowBatch BatchPipelineRunner::Run(RowBatch batch) {
  counters_.rows_in += batch.num_rows();
  if (nodes_.empty()) {
    counters_.rows_out += batch.num_rows();
    return batch;
  }

  // Apply the batch kernels, keeping each stage's input selection. The
  // selections form a chain of ascending subsets of one physical index
  // space: sels[s] is what stage s consumed, sels[nodes_.size()] is the
  // final output.
  std::vector<std::vector<uint32_t>> sels;
  sels.reserve(nodes_.size() + 1);
  sels.push_back(batch.selection());
  for (BatchNode& node : nodes_) {
    node.fn->MapBatch(&batch);
    sels.push_back(batch.selection());
  }

  // Replay the row path's cpu accumulation order: for each input row,
  // stage 0's weight, then each later stage's weight while the row
  // survives. Subset chaining guarantees the per-stage cursors line up.
  std::vector<size_t> cursor(nodes_.size(), 0);
  for (uint32_t phys : sels[0]) {
    counters_.cpu_units += nodes_[0].cpu_weight;
    for (size_t s = 1; s < nodes_.size(); ++s) {
      size_t& c = cursor[s];
      if (c < sels[s].size() && sels[s][c] == phys) {
        ++c;
        counters_.cpu_units += nodes_[s].cpu_weight;
      } else {
        break;
      }
    }
  }
  counters_.rows_out += batch.num_rows();

  // Stateless stages may not emit from Finish, so the row path's
  // FinishNode pass is a no-op here by contract.
  return batch;
}

bool BatchReducePipeline::Eligible(const std::vector<Stage>& stages) {
  if (stages.empty()) return true;
  if (stages.size() != 1) return false;
  const Stage& s = stages.front();
  if (s.kind != Stage::Kind::kReduce) return false;
  if (!s.tee_dataset.empty()) return false;
  return s.reduce_fn->stateless() && s.reduce_fn->supports_batch();
}

Result<BatchReducePipeline> BatchReducePipeline::Make(
    const std::vector<Stage>& stages, const Schema& input_schema) {
  BatchReducePipeline runner;
  if (stages.empty()) return runner;
  const Stage& s = stages.front();
  runner.fn_ = s.reduce_fn->Clone();
  runner.fn_->Setup();
  runner.cpu_weight_ = runner.fn_->cpu_cost_per_record();
  runner.out_arity_ = runner.fn_->output_schema().size();
  STUBBY_ASSIGN_OR_RETURN(runner.group_indices_,
                          input_schema.IndicesOf(s.group_fields));
  return runner;
}

RowBatch BatchReducePipeline::Run(const RowBatch& batch) {
  size_t n = batch.num_rows();
  counters_.rows_in += n;
  if (fn_ == nullptr) {
    counters_.rows_out += n;
    return batch;
  }
  // The row path charges the stage weight once per input row on arrival
  // (group flushes add none), so replaying the additions in input order
  // reproduces cpu_units bit-for-bit.
  for (size_t i = 0; i < n; ++i) counters_.cpu_units += cpu_weight_;
  ColumnAppender out(out_arity_);
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && batch.Compare(i, j, group_indices_) == 0) ++j;
    fn_->ReduceBatch(batch, i, j, group_indices_, &out);
    i = j;
  }
  counters_.rows_out += out.num_rows();
  // Stateless reducers may not emit from Finish, so the row path's
  // FinishNode pass is a no-op here by contract.
  return out.TakeBatch();
}

std::vector<Row> RunCombiner(const CombineFn& fn,
                             const std::vector<Row>& sorted_rows,
                             const std::vector<size_t>& group_indices,
                             double* cpu_units) {
  VectorEmitter out;
  std::shared_ptr<CombineFn> instance = fn.Clone();
  size_t i = 0;
  while (i < sorted_rows.size()) {
    size_t j = i + 1;
    while (j < sorted_rows.size() &&
           EqualOnFields(sorted_rows[i], sorted_rows[j], group_indices)) {
      ++j;
    }
    std::vector<Row> group(sorted_rows.begin() + i, sorted_rows.begin() + j);
    Row key = sorted_rows[i].Project(group_indices);
    instance->Combine(key, group, &out);
    *cpu_units +=
        static_cast<double>(j - i) * instance->cpu_cost_per_record();
    i = j;
  }
  return std::move(out.rows());
}

RowBatch RunCombinerBatch(const CombineFn& fn, const RowBatch& sorted,
                          const std::vector<size_t>& group_indices,
                          double* cpu_units) {
  ColumnAppender out(sorted.num_columns());
  std::shared_ptr<CombineFn> instance = fn.Clone();
  size_t n = sorted.num_rows();
  size_t i = 0;
  while (i < n) {
    size_t j = i + 1;
    while (j < n && sorted.Compare(i, j, group_indices) == 0) ++j;
    instance->CombineBatch(sorted, i, j, &out);
    *cpu_units +=
        static_cast<double>(j - i) * instance->cpu_cost_per_record();
    i = j;
  }
  return out.TakeBatch();
}

}  // namespace stubby

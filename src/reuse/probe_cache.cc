#include "reuse/probe_cache.h"

namespace stubby {

ReuseProbeCache::ReuseProbeCache() {
  shards_.reserve(kShards);
  for (size_t i = 0; i < kShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ReuseProbeCache::Shard& ReuseProbeCache::ShardOf(const CostKey& key) const {
  return *shards_[CostKeyHash{}(key) % kShards];
}

const CostKey* ReuseProbeCache::Peek(const CostKey& memo_key) const {
  const Shard& s = ShardOf(memo_key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.map.find(memo_key);
  return it == s.map.end() ? nullptr : &it->second;
}

void ReuseProbeCache::Insert(const CostKey& memo_key, const CostKey& job_key) {
  Shard& s = ShardOf(memo_key);
  std::lock_guard<std::mutex> lock(s.mu);
  s.map.emplace(memo_key, job_key);  // first write wins
}

size_t ReuseProbeCache::size() const {
  size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    total += s->map.size();
  }
  return total;
}

const CostKey* ProbeCacheOverlay::Peek(const CostKey& memo_key) const {
  auto it = local_.find(memo_key);
  if (it != local_.end()) return &it->second;
  return parent_ == nullptr ? nullptr : parent_->Peek(memo_key);
}

void ProbeCacheOverlay::Insert(const CostKey& memo_key,
                               const CostKey& job_key) {
  if (local_.emplace(memo_key, job_key).second) {
    journal_.push_back(memo_key);
  }
}

void ProbeCacheOverlay::MergeInto(ProbeStore* store) const {
  for (const CostKey& key : journal_) {
    store->Insert(key, local_.at(key));
  }
}

}  // namespace stubby

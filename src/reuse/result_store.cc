#include "reuse/result_store.h"

#include <bit>
#include <cstdio>
#include <set>

#include "common/strings.h"
#include "workflow/serialize.h"

namespace stubby {

const char* ReuseKindName(ReuseKind kind) {
  switch (kind) {
    case ReuseKind::kJobOutput:
      return "job_output";
    case ReuseKind::kMapStream:
      return "map_stream";
    case ReuseKind::kWorkflowOutput:
      return "workflow_output";
  }
  return "unknown";
}

namespace {

Result<ReuseKind> ReuseKindFromName(const std::string& name) {
  if (name == "job_output") return ReuseKind::kJobOutput;
  if (name == "map_stream") return ReuseKind::kMapStream;
  if (name == "workflow_output") return ReuseKind::kWorkflowOutput;
  return Status::InvalidArgument("unknown reuse kind '" + name + "'");
}

Result<CostKey> CostKeyFromHex(const std::string& hex) {
  if (hex.size() != 32) {
    return Status::InvalidArgument("bad key encoding '" + hex + "'");
  }
  CostKey key{0, 0};
  for (size_t i = 0; i < 32; ++i) {
    char c = hex[i];
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::InvalidArgument("bad key encoding '" + hex + "'");
    }
    uint64_t& lane = i < 16 ? key.first : key.second;
    lane = (lane << 4) | digit;
  }
  return key;
}

}  // namespace

Result<EvictionPolicy> EvictionPolicyFromName(const std::string& name) {
  if (name == "lru") return EvictionPolicy::kLru;
  if (name == "benefit") return EvictionPolicy::kBenefitWeighted;
  return Status::InvalidArgument("unknown eviction policy '" + name + "'");
}

int ExactFractionCompare(unsigned __int128 a_num, unsigned __int128 a_den,
                         unsigned __int128 b_num, unsigned __int128 b_den) {
  while (true) {
    const unsigned __int128 qa = a_num / a_den;
    const unsigned __int128 qb = b_num / b_den;
    if (qa != qb) return qa < qb ? -1 : 1;
    a_num -= qa * a_den;
    b_num -= qb * b_den;
    if (a_num == 0 && b_num == 0) return 0;
    if (a_num == 0) return -1;
    if (b_num == 0) return 1;
    // Both fractional parts are proper: a_num/a_den < b_num/b_den iff
    // b_den/b_num < a_den/a_num, and the Euclid-style descent terminates.
    const unsigned __int128 next_a_num = b_den;
    const unsigned __int128 next_a_den = b_num;
    const unsigned __int128 next_b_num = a_den;
    const unsigned __int128 next_b_den = a_num;
    a_num = next_a_num;
    a_den = next_a_den;
    b_num = next_b_num;
    b_den = next_b_den;
  }
}

void ReuseStats::Add(const ReuseStats& other) {
  lookups += other.lookups;
  whole_job_hits += other.whole_job_hits;
  prefix_hits += other.prefix_hits;
  workflow_hits += other.workflow_hits;
  jobs_elided += other.jobs_elided;
  bytes_saved += other.bytes_saved;
  registered += other.registered;
  search_probes += other.search_probes;
  search_priced += other.search_priced;
  search_won += other.search_won;
  probe_cache_hits += other.probe_cache_hits;
  probe_cache_misses += other.probe_cache_misses;
  signature_keys_computed += other.signature_keys_computed;
}

std::string ReuseStats::ToString() const {
  return StrFormat(
      "lookups=%llu whole_job=%llu prefix=%llu workflow=%llu elided=%llu "
      "bytes_saved=%llu registered=%llu probes=%llu priced=%llu won=%llu "
      "memo_hits=%llu memo_misses=%llu sig_keys=%llu",
      (unsigned long long)lookups, (unsigned long long)whole_job_hits,
      (unsigned long long)prefix_hits, (unsigned long long)workflow_hits,
      (unsigned long long)jobs_elided, (unsigned long long)bytes_saved,
      (unsigned long long)registered, (unsigned long long)search_probes,
      (unsigned long long)search_priced, (unsigned long long)search_won,
      (unsigned long long)probe_cache_hits,
      (unsigned long long)probe_cache_misses,
      (unsigned long long)signature_keys_computed);
}

const char* EvictionPolicyName(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru:
      return "lru";
    case EvictionPolicy::kBenefitWeighted:
      return "benefit";
  }
  return "unknown";
}

DatasetPtr CloneDataset(const StoredDataset& ds, std::string new_id) {
  auto clone = std::make_shared<StoredDataset>(std::move(new_id), ds.schema(),
                                               ds.layout());
  for (size_t p = 0; p < ds.num_partitions(); ++p) {
    // Payloads are immutable shared representations, so cloning a dataset
    // shares them instead of copying every row.
    clone->AddPartition(ds.partition_data(p));
  }
  clone->set_logical_scale(ds.logical_scale());
  return clone;
}

bool RowsBitIdentical(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) return false;
    for (size_t j = 0; j < a[i].size(); ++j) {
      const Value& va = a[i][j];
      const Value& vb = b[i][j];
      if (va.is_int()) {
        if (!vb.is_int() || va.AsInt() != vb.AsInt()) return false;
      } else if (va.is_double()) {
        if (!vb.is_double() || std::bit_cast<uint64_t>(va.AsDouble()) !=
                                   std::bit_cast<uint64_t>(vb.AsDouble())) {
          return false;
        }
      } else {
        if (!vb.is_string() || va.AsString() != vb.AsString()) return false;
      }
    }
  }
  return true;
}

std::string ResultStore::Register(
    const StoredDataset& ds,
    const std::vector<std::pair<CostKey, ReuseKind>>& keys) {
  if (keys.empty()) return "";
  std::vector<std::pair<CostKey, ReuseKind>> fresh;
  for (const auto& [key, kind] : keys) {
    if (entries_.count(key) == 0) fresh.emplace_back(key, kind);
  }
  if (fresh.empty()) {
    const std::string& existing = entries_.at(keys.front().first).snapshot_id;
    if (journal_.ptr != nullptr) {
      StoreOp op;
      op.kind = StoreOp::Kind::kRegister;
      op.snapshot_id = existing;
      op.dataset = CloneDataset(ds, ds.id());
      op.reg_keys = keys;
      journal_.ptr->Append(std::move(op));
    }
    return existing;
  }

  std::string snapshot_id = "rs/" + std::to_string(next_snapshot_++);
  DatasetPtr snapshot = CloneDataset(ds, snapshot_id);
  snapshots_.PutOrReplace(snapshot);
  ++clock_;
  for (const auto& [key, kind] : fresh) {
    StoredResult entry;
    entry.key = key;
    entry.kind = kind;
    entry.snapshot_id = snapshot_id;
    entry.raw_bytes = snapshot->raw_bytes();
    entry.logical_bytes = snapshot->logical_bytes();
    entry.logical_rows = snapshot->logical_rows();
    entry.created = clock_;
    entry.last_used = clock_;
    entries_.emplace(key, std::move(entry));
  }
  if (journal_.ptr != nullptr) {
    StoreOp op;
    op.kind = StoreOp::Kind::kRegister;
    op.snapshot_id = snapshot_id;
    op.fresh = true;
    op.dataset = CloneDataset(ds, ds.id());
    op.reg_keys = keys;
    journal_.ptr->Append(std::move(op));
  }
  EnforceBudget();
  return snapshot_id;
}

void ResultStore::RecordProbe(StoreOp::Kind kind, const CostKey& key,
                              const StoredResult* result) const {
  if (journal_.ptr == nullptr || !journal_.ptr->record_probes()) return;
  StoreOp op;
  op.kind = kind;
  op.key = key;
  op.hit = result != nullptr;
  if (result != nullptr) op.snapshot_id = result->snapshot_id;
  journal_.ptr->Append(std::move(op));
}

const StoredResult* ResultStore::Peek(const CostKey& key) const {
  auto it = entries_.find(key);
  const StoredResult* result = it == entries_.end() ? nullptr : &it->second;
  RecordProbe(StoreOp::Kind::kPeek, key, result);
  return result;
}

const StoredResult* ResultStore::Lookup(const CostKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    RecordProbe(StoreOp::Kind::kLookup, key, nullptr);
    return nullptr;
  }
  ++clock_;
  it->second.hits += 1;
  it->second.last_used = clock_;
  RecordProbe(StoreOp::Kind::kLookup, key, &it->second);
  return &it->second;
}

Result<DatasetPtr> ResultStore::OpenSnapshot(
    const std::string& snapshot_id) const {
  return snapshots_.Get(snapshot_id);
}

void ResultStore::Pin(const std::string& snapshot_id) {
  pins_[snapshot_id]++;
  if (journal_.ptr != nullptr) {
    StoreOp op;
    op.kind = StoreOp::Kind::kPin;
    op.snapshot_id = snapshot_id;
    journal_.ptr->Append(std::move(op));
  }
}

void ResultStore::Unpin(const std::string& snapshot_id) {
  if (journal_.ptr != nullptr) {
    StoreOp op;
    op.kind = StoreOp::Kind::kUnpin;
    op.snapshot_id = snapshot_id;
    journal_.ptr->Append(std::move(op));
  }
  auto it = pins_.find(snapshot_id);
  if (it == pins_.end()) return;
  if (--it->second <= 0) pins_.erase(it);
}

uint64_t ResultStore::total_hits() const {
  uint64_t total = 0;
  for (const auto& [key, e] : entries_) total += e.hits;
  return total;
}

void ResultStore::set_options(Options options) {
  options_ = options;
  EnforceBudget();
}

const StoredResult* ResultStore::PickVictim(
    const std::function<bool(const StoredResult&)>& eligible) const {
  // Benefit of keeping an entry: logical_bytes * (hits + 1) per unit of
  // raw storage and logical idle time. Compared as exact integer fractions
  // (num/den); lowest benefit evicts first. Each operand is a 64x64-bit
  // product, so the fractions are compared by continued-fraction descent
  // rather than cross-multiplication, which could exceed 128 bits and wrap.
  // The +1 terms keep fresh, never-hit entries comparable and the
  // denominators nonzero.
  auto benefit_less = [this](const StoredResult& a,
                             const StoredResult& b) -> bool {
    const unsigned __int128 a_num =
        static_cast<unsigned __int128>(a.logical_bytes) * (a.hits + 1);
    const unsigned __int128 b_num =
        static_cast<unsigned __int128>(b.logical_bytes) * (b.hits + 1);
    const unsigned __int128 a_den =
        static_cast<unsigned __int128>(a.raw_bytes) *
        (clock_ - a.last_used + 1);
    const unsigned __int128 b_den =
        static_cast<unsigned __int128>(b.raw_bytes) *
        (clock_ - b.last_used + 1);
    // A zero denominator (zero raw bytes) means free storage: infinite
    // benefit, never the eviction victim.
    int cmp;
    if (a_den == 0 && b_den == 0) {
      cmp = 0;
    } else if (a_den == 0 || b_den == 0) {
      cmp = a_den == 0 ? 1 : -1;
    } else {
      cmp = ExactFractionCompare(a_num, a_den, b_num, b_den);
    }
    if (cmp != 0) return cmp < 0;
    return a.last_used < b.last_used;  // then ties break on the key
  };
  const StoredResult* victim = nullptr;
  for (const auto& [key, e] : entries_) {
    if (pins_.count(e.snapshot_id)) continue;
    if (!eligible(e)) continue;
    if (victim == nullptr) {
      victim = &e;
    } else if (options_.policy == EvictionPolicy::kBenefitWeighted) {
      if (benefit_less(e, *victim)) victim = &e;
    } else if (e.last_used < victim->last_used) {
      victim = &e;
    }
  }
  return victim;
}

void ResultStore::EvictEntry(const CostKey& key) {
  entries_.erase(key);
  ++evictions_;
  // Collect snapshots no surviving entry references and no pin holds.
  std::set<std::string> live;
  for (const auto& [k, e] : entries_) live.insert(e.snapshot_id);
  for (const auto& [id, refs] : pins_) live.insert(id);
  snapshots_.Collect(live);
}

void ResultStore::EnforceBudget() {
  if (options_.byte_budget == 0) return;
  while (stored_bytes() > options_.byte_budget) {
    const StoredResult* victim =
        PickVictim([](const StoredResult&) { return true; });
    if (victim == nullptr) return;  // everything left is pinned
    EvictEntry(victim->key);
  }
}

uint64_t ResultStore::EnforceBudgetOn(const std::set<std::string>& owned,
                                      uint64_t budget) {
  if (budget == 0) return 0;
  uint64_t evicted = 0;
  while (SnapshotBytes(owned) > budget) {
    const StoredResult* victim = PickVictim([&](const StoredResult& e) {
      return owned.count(e.snapshot_id) > 0;
    });
    // No eligible entry (all remaining owned snapshots pinned, or their
    // entries already gone): stop rather than loop.
    if (victim == nullptr) break;
    EvictEntry(victim->key);
    ++evicted;
  }
  return evicted;
}

uint64_t ResultStore::SnapshotBytes(const std::set<std::string>& ids) const {
  uint64_t total = 0;
  for (const std::string& id : ids) {
    Result<DatasetPtr> ds = snapshots_.Get(id);
    if (ds.ok()) total += (*ds)->raw_bytes();
  }
  return total;
}

Json ResultStore::ToJson() const {
  Json root = Json::Object();
  root["format"] = "stubby-reuse-catalog";
  root["version"] = 1;
  root["clock"] = clock_;
  root["next_snapshot"] = next_snapshot_;
  root["evictions"] = evictions_;
  root["byte_budget"] = options_.byte_budget;
  root["policy"] = EvictionPolicyName(options_.policy);

  Json entries = Json::Array();
  for (const auto& [key, e] : entries_) {
    Json j = Json::Object();
    j["key"] = CostKeyToHex(key);
    j["kind"] = ReuseKindName(e.kind);
    j["snapshot"] = e.snapshot_id;
    j["raw_bytes"] = e.raw_bytes;
    j["logical_bytes"] = e.logical_bytes;
    j["logical_rows"] = e.logical_rows;
    j["hits"] = e.hits;
    j["created"] = e.created;
    j["last_used"] = e.last_used;
    entries.Append(std::move(j));
  }
  root["entries"] = std::move(entries);

  Json snapshots = Json::Array();
  for (const std::string& id : snapshots_.Ids()) {
    DatasetPtr ds = *snapshots_.Get(id);
    Json j = Json::Object();
    j["id"] = id;
    Json schema = Json::Array();
    for (const auto& f : ds->schema().fields()) schema.Append(f);
    j["schema"] = std::move(schema);
    j["layout"] = LayoutToJson(ds->layout());
    j["logical_scale"] = ds->logical_scale();
    Json parts = Json::Array();
    for (size_t p = 0; p < ds->num_partitions(); ++p) {
      Json rows = Json::Array();
      for (const Row& r : ds->partition(p)) rows.Append(RowToJson(r));
      parts.Append(std::move(rows));
    }
    j["partitions"] = std::move(parts);
    snapshots.Append(std::move(j));
  }
  root["snapshots"] = std::move(snapshots);
  return root;
}

std::string ResultStore::Serialize() const { return ToJson().Dump(2); }

Result<ResultStore> ResultStore::FromJson(const Json& json) {
  if (json.GetString("format") != "stubby-reuse-catalog") {
    return Status::InvalidArgument("not a stubby-reuse-catalog document");
  }
  ResultStore store;
  store.clock_ = static_cast<uint64_t>(json.GetNumber("clock"));
  store.next_snapshot_ =
      static_cast<uint64_t>(json.GetNumber("next_snapshot"));
  store.evictions_ = static_cast<uint64_t>(json.GetNumber("evictions"));
  store.options_.byte_budget =
      static_cast<uint64_t>(json.GetNumber("byte_budget"));
  if (const Json* policy = json.Find("policy"); policy != nullptr) {
    STUBBY_ASSIGN_OR_RETURN(store.options_.policy,
                            EvictionPolicyFromName(policy->AsString()));
  }

  const Json* snapshots = json.Find("snapshots");
  if (snapshots != nullptr && snapshots->is_array()) {
    for (const Json& j : snapshots->items()) {
      std::string id = j.GetString("id");
      std::vector<std::string> fields;
      if (const Json* schema = j.Find("schema"); schema != nullptr) {
        for (const Json& f : schema->items()) fields.push_back(f.AsString());
      }
      Layout layout;
      if (const Json* l = j.Find("layout"); l != nullptr) {
        STUBBY_ASSIGN_OR_RETURN(layout, LayoutFromJson(*l));
      }
      auto ds = std::make_shared<StoredDataset>(id, Schema(fields), layout);
      if (const Json* parts = j.Find("partitions"); parts != nullptr) {
        for (const Json& part : parts->items()) {
          std::vector<Row> rows;
          for (const Json& r : part.items()) {
            STUBBY_ASSIGN_OR_RETURN(Row row, RowFromJson(r));
            rows.push_back(std::move(row));
          }
          ds->AddPartition(std::move(rows));
        }
      }
      ds->set_logical_scale(j.GetNumber("logical_scale", 1.0));
      store.snapshots_.PutOrReplace(std::move(ds));
    }
  }

  const Json* entries = json.Find("entries");
  if (entries != nullptr && entries->is_array()) {
    for (const Json& j : entries->items()) {
      StoredResult e;
      STUBBY_ASSIGN_OR_RETURN(e.key, CostKeyFromHex(j.GetString("key")));
      STUBBY_ASSIGN_OR_RETURN(e.kind, ReuseKindFromName(j.GetString("kind")));
      e.snapshot_id = j.GetString("snapshot");
      e.raw_bytes = static_cast<uint64_t>(j.GetNumber("raw_bytes"));
      e.logical_bytes = static_cast<uint64_t>(j.GetNumber("logical_bytes"));
      e.logical_rows = static_cast<uint64_t>(j.GetNumber("logical_rows"));
      e.hits = static_cast<uint64_t>(j.GetNumber("hits"));
      e.created = static_cast<uint64_t>(j.GetNumber("created"));
      e.last_used = static_cast<uint64_t>(j.GetNumber("last_used"));
      if (!store.snapshots_.Exists(e.snapshot_id)) {
        return Status::InvalidArgument("entry references missing snapshot '" +
                                       e.snapshot_id + "'");
      }
      store.entries_.emplace(e.key, std::move(e));
    }
  }
  return store;
}

Result<ResultStore> ResultStore::Deserialize(const std::string& text) {
  STUBBY_ASSIGN_OR_RETURN(Json json, Json::Parse(text));
  return FromJson(json);
}

Status ResultStore::SaveToFile(const std::string& path) const {
  // Crash safety: write the full document to a sibling temp file, flush it,
  // then rename over `path`. rename(2) is atomic within a filesystem, so a
  // crash or failure at any point leaves the previous catalog intact — the
  // reader sees either the old complete document or the new one, never a
  // torn prefix.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + tmp + "' for writing");
  }
  const std::string text = Serialize();
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' over '" + path +
                            "'");
  }
  return Status::OK();
}

Result<ResultStore> ResultStore::LoadFromFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open '" + path + "' for reading");
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::Internal("read error on '" + path + "'");
  return Deserialize(text);
}

}  // namespace stubby

// ReuseProbeCache: signature memo for the reuse-aware unit search. The
// tier-2 rewriter resolves a JobReuseKey for every job of every plan it
// probes, and the search probes every RRS-configured candidate of every
// unit — so without memoization the same job identity is re-digested once
// per candidate (JobReuseKey walks branches, stages, schemas, partition
// lineage; it is the expensive half of a probe; the store Peeks behind it
// are plain map lookups and stay live). The cache maps a cheap memo key —
// H(JobContentDigest, input/sample lineage keys, output schemas, cluster
// compression) — to the resolved JobReuseKey, collapsing the per-candidate
// digest work to one computation per distinct job signature.
//
// Transparency: a memo hit returns the exact key the digest would have
// produced (the memo key covers a superset of what JobReuseKey reads), and
// store probes are unaffected — plans, costs, and every ReuseStats counter
// except probe_cache_{hits,misses} are bit-identical with the cache on,
// off, cold, or warm.
//
// Concurrency model: the same snapshot/overlay/ordered-merge protocol as
// CostCache. One instance lives for one StubbyOptimizer::Optimize call
// (store membership is frozen for that window, so cached keys cannot go
// stale). During a parallel candidate batch the shared cache is frozen;
// each task reads through a private ProbeCacheOverlay and its inserts
// merge serially in candidate order. Entries are insert-only (no LRU, no
// recency), so the merged state is a pure function of submission order.

#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "cost/cost_cache.h"

namespace stubby {

/// Read-only view of a probe memo (how overlay tasks read the frozen
/// shared cache, and how overlays chain). Returned pointers stay valid
/// while the source is frozen (no concurrent Insert).
class ProbeSource {
 public:
  virtual ~ProbeSource() = default;
  virtual const CostKey* Peek(const CostKey& memo_key) const = 0;
};

/// Mutable probe memo. Insert is first-write-wins: memo keys are content
/// addresses, so any two writers of one key hold equal values.
class ProbeStore : public ProbeSource {
 public:
  virtual void Insert(const CostKey& memo_key, const CostKey& job_key) = 0;
};

/// Sharded, insert-only memo shared across a whole Optimize call. Shard
/// count is a pure function of nothing at all (a fixed constant), so
/// layout never depends on the thread count.
class ReuseProbeCache final : public ProbeStore {
 public:
  ReuseProbeCache();

  const CostKey* Peek(const CostKey& memo_key) const override;
  void Insert(const CostKey& memo_key, const CostKey& job_key) override;

  size_t size() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<CostKey, CostKey, CostKeyHash> map;
  };
  Shard& ShardOf(const CostKey& key) const;

  static constexpr size_t kShards = 16;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// A task-private write layer over a frozen ProbeSource: reads fall
/// through to the parent, inserts stay local and are journaled in access
/// order. After the parallel batch, MergeInto replays the journal into the
/// shared cache serially in task submission order — tasks of one batch do
/// not observe each other's inserts, by design, at every thread count.
///
/// Not internally synchronized — each overlay belongs to exactly one task.
class ProbeCacheOverlay final : public ProbeStore {
 public:
  /// `parent` may be null (no backing memo: all reads miss until written).
  explicit ProbeCacheOverlay(const ProbeSource* parent) : parent_(parent) {}

  const CostKey* Peek(const CostKey& memo_key) const override;
  void Insert(const CostKey& memo_key, const CostKey& job_key) override;

  /// Replays this overlay's inserts into `store` in insertion order. Call
  /// serially, in task submission order.
  void MergeInto(ProbeStore* store) const;

 private:
  const ProbeSource* parent_;
  std::unordered_map<CostKey, CostKey, CostKeyHash> local_;
  std::vector<CostKey> journal_;
};

}  // namespace stubby

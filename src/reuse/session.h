// ReuseSession: one optimize -> stage -> execute -> register round against
// a shared ResultStore. This is the cross-workflow loop of ReStore (PVLDB
// 2012) grafted onto Stubby: every submitted workflow is first matched
// against the outputs of previously executed workflows, and after running
// it deposits its own outputs for the workflows that come after it.
//
// Determinism contract: with a store, final workflow outputs are
// bit-identical to a recompute without one, at any thread count; the
// sequence of store hits, misses, and registrations depends only on the
// sequence of submitted (plan, options) pairs.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/dataflow.h"
#include "exec/adaptive_runner.h"
#include "mr/tuple.h"
#include "optimizer/stubby.h"
#include "reuse/result_store.h"

namespace stubby {

class ThreadPool;

/// Everything one workflow submission produced.
struct ReuseSessionResult {
  OptimizeReport report;          ///< plan actually executed + reuse counters
  WorkflowDataflow dataflow;      ///< observed execution (simulated cluster)
  double optimize_sec = 0.0;      ///< optimizer wall time (incl. rewriting)
  double execute_sec = 0.0;       ///< staging + execution wall time
  double simulated_cost = 0.0;    ///< simulated makespan of the executed plan
  ReuseStats reuse;               ///< rewrite hits + registration counts
  /// Adaptive re-optimization counters (all zero unless
  /// StubbyOptions::reoptimize was set — and bit-identical to the
  /// reoptimize-off run whenever no splice fired).
  AdaptiveStats adaptive;

  /// Final rows of every workflow-output dataset, by dataset id (all
  /// partitions concatenated) — the bit-identity comparison unit.
  std::map<std::string, std::vector<Row>> outputs;
};

/// Runs workflows against a shared store. A null store degrades to plain
/// optimize + execute (the recompute baseline).
class ReuseSession {
 public:
  explicit ReuseSession(ResultStore* store) : store_(store) {}

  /// Optimizes `plan` (with reuse rewriting when a store is set), stages
  /// any materialized snapshots into a copy of `dfs`, executes, registers
  /// the executed outputs, and unpins what the rewrite pinned.
  /// `register_outputs` = false serves hits but deposits nothing — the
  /// stubbyd soft-degradation mode for a store over its byte budget.
  Result<ReuseSessionResult> Run(const Plan& plan, const Dfs& dfs,
                                 const StubbyOptions& base_options,
                                 ThreadPool* pool = nullptr,
                                 bool register_outputs = true) const;

 private:
  ResultStore* store_;
};

}  // namespace stubby

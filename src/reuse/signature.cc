#include "reuse/signature.h"

#include <algorithm>

#include "common/strings.h"
#include "reuse/probe_cache.h"

namespace stubby {

namespace {

/// Domain-separation tags. Every key family starts from a distinct tag so
/// a job key can never collide with a dataset or stream key.
constexpr uint64_t kTagDatasetContent = 0x5265557345644174ull;  // "ReUsEdAt"
constexpr uint64_t kTagJobReuse = 0x52655573456a4f62ull;        // "ReUsEjOb"
constexpr uint64_t kTagJobOutput = 0x526555734f757470ull;       // "ReUsOutp"
constexpr uint64_t kTagMapStream = 0x5265557353747234ull;       // "ReUsStr4"
constexpr uint64_t kTagWorkflowOut = 0x526555735766304full;     // "ReUsWf0O"
constexpr uint64_t kTagProbeMemo = 0x526555734d656d30ull;       // "ReUsMem0"
constexpr uint64_t kTagPrefixMemo = 0x526555734d656d31ull;      // "ReUsMem1"

void MixKey(CostDigest* d, const CostKey& k) {
  d->Mix(k.first);
  d->Mix(k.second);
}

void MixLayout(CostDigest* d, const Layout& layout) {
  d->Mix(layout.partitioning.has_value());
  if (layout.partitioning) MixPartitionSpecDigest(d, *layout.partitioning);
  d->Mix(layout.order_fields);
  d->Mix(layout.compressed);
  d->Mix(layout.block_mb);
}

/// The *logical* identity of a stage: which function runs, how it groups,
/// and whether it tees a side output. Excludes stats (cost-model input),
/// the tee dataset's name (plan-local), and cpu weights.
void MixLogicalStage(CostDigest* d, const Stage& s) {
  d->Mix(static_cast<uint64_t>(s.kind == Stage::Kind::kMap ? 1 : 2));
  d->Mix(s.name());
  d->Mix(s.group_fields);
  d->Mix(!s.tee_dataset.empty());
}

/// Partition spec with the split_points_from reference replaced by the
/// sample dataset's lineage key (the *content* of the split points is what
/// determines the shuffle, not the sample's plan-local name).
Status MixPartitionLineage(CostDigest* d, const PartitionSpec& p,
                           const std::map<std::string, CostKey>& datasets) {
  d->Mix(static_cast<uint64_t>(p.type));
  d->Mix(p.partition_fields);
  d->Mix(p.sort_fields);
  d->Mix(static_cast<uint64_t>(p.split_points.size()));
  for (const Row& r : p.split_points) {
    d->Mix(static_cast<uint64_t>(r.size()));
    for (const Value& v : r.values()) MixValueDigest(d, v);
  }
  d->Mix(!p.split_points_from.empty());
  if (!p.split_points_from.empty()) {
    auto it = datasets.find(p.split_points_from);
    if (it == datasets.end()) {
      return Status::NotFound("no lineage key for split-points dataset '" +
                              p.split_points_from + "'");
    }
    MixKey(d, it->second);
  }
  return Status::OK();
}

}  // namespace

CostKey DatasetContentKey(const StoredDataset& ds) {
  CostDigest d;
  d.Mix(kTagDatasetContent);
  d.Mix(ds.schema().fields());
  MixLayout(&d, ds.layout());
  d.Mix(ds.logical_scale());
  d.Mix(static_cast<uint64_t>(ds.num_partitions()));
  for (size_t p = 0; p < ds.num_partitions(); ++p) {
    const PartitionData& pd = ds.partition_data(p);
    if (pd.column_native()) {
      // Column-native payload: walk the columns row-major through a batch
      // view so the digest byte stream matches the row encoding exactly,
      // without materializing rows. Every row of a column-native partition
      // has num_columns() values by construction.
      RowBatch view = pd.AsBatch();
      const size_t ncols = pd.num_columns();
      d.Mix(static_cast<uint64_t>(pd.num_rows()));
      for (size_t i = 0; i < pd.num_rows(); ++i) {
        d.Mix(static_cast<uint64_t>(ncols));
        for (size_t c = 0; c < ncols; ++c) {
          MixValueDigest(&d, view.ValueAt(c, static_cast<uint32_t>(i)));
        }
      }
      continue;
    }
    const std::vector<Row>& rows = pd.rows();
    d.Mix(static_cast<uint64_t>(rows.size()));
    for (const Row& r : rows) {
      d.Mix(static_cast<uint64_t>(r.size()));
      for (const Value& v : r.values()) MixValueDigest(&d, v);
    }
  }
  return d.value();
}

CostKey JobOutputKey(const CostKey& job_key, size_t index) {
  CostDigest d;
  d.Mix(kTagJobOutput);
  MixKey(&d, job_key);
  d.Mix(static_cast<uint64_t>(index));
  return d.value();
}

CostKey MapStreamKey(const CostKey& input, const std::vector<Stage>& stages,
                     size_t prefix_len) {
  CostDigest d;
  d.Mix(kTagMapStream);
  MixKey(&d, input);
  d.Mix(static_cast<uint64_t>(prefix_len));
  for (size_t i = 0; i < prefix_len && i < stages.size(); ++i) {
    d.Mix(stages[i].name());
  }
  return d.value();
}

CostKey MapStreamMemoBase(const CostKey& input,
                          const std::vector<Stage>& stages) {
  CostDigest d;
  d.Mix(kTagPrefixMemo);
  MixKey(&d, input);
  d.Mix(static_cast<uint64_t>(stages.size()));
  for (const Stage& s : stages) d.Mix(s.name());
  return d.value();
}

CostKey MapStreamMemoKey(const CostKey& base, size_t prefix_len) {
  CostDigest d;
  MixKey(&d, base);
  d.Mix(static_cast<uint64_t>(prefix_len));
  return d.value();
}

CostKey WorkflowOutputKey(const CostKey& original_lineage,
                          const CostKey& options_salt) {
  CostDigest d;
  d.Mix(kTagWorkflowOut);
  MixKey(&d, original_lineage);
  MixKey(&d, options_salt);
  return d.value();
}

bool PrefixEligible(const Branch& b, const BranchInput& in,
                    const JobConfig& config, size_t prefix_len) {
  if (prefix_len == 0 || prefix_len > in.map_stages.size()) return false;
  if (in.aligned || !in.prune_partitions.empty()) return false;
  if (b.merge_mode()) return false;
  // An active combiner regroups rows per map task, making every branch
  // output depend on the task boundaries the dropped stages ran under.
  if (b.combiner != nullptr && config.use_combiner) return false;
  // Dropped stages must replay bit-identically on the producer's chunking;
  // remaining stages must produce the same stream on the *new* chunking.
  // Both reduce to: every map stage of this input is a stateless, tee-free
  // map (a tee's partition boundaries are chunk-dependent).
  for (const Stage& s : in.map_stages) {
    if (s.kind != Stage::Kind::kMap) return false;
    if (!s.tee_dataset.empty()) return false;
    if (s.map_fn == nullptr || !s.map_fn->stateless()) return false;
  }
  return true;
}

Result<CostKey> JobReuseKey(const JobVertex& job, const Plan& plan,
                            const std::map<std::string, CostKey>& datasets) {
  CostDigest d;
  d.Mix(kTagJobReuse);
  d.Mix(static_cast<uint64_t>(job.branches.size()));
  for (const Branch& b : job.branches) {
    d.Mix(static_cast<uint64_t>(b.inputs.size()));
    for (const BranchInput& in : b.inputs) {
      auto it = datasets.find(in.dataset_id);
      if (it == datasets.end()) {
        return Status::NotFound("no lineage key for input dataset '" +
                                in.dataset_id + "'");
      }
      MixKey(&d, it->second);
      d.Mix(in.aligned);
      std::vector<int> prune = CanonicalPrunePartitions(in.prune_partitions);
      d.Mix(static_cast<uint64_t>(prune.size()));
      for (int p : prune) d.Mix(static_cast<uint64_t>(p));
      d.Mix(static_cast<uint64_t>(in.map_stages.size()));
      for (const Stage& s : in.map_stages) MixLogicalStage(&d, s);
    }
    d.Mix(static_cast<uint64_t>(b.merged_map_stages.size()));
    for (const Stage& s : b.merged_map_stages) MixLogicalStage(&d, s);
    d.Mix(b.merge_sort_fields);
    d.Mix(b.merge_schema.fields());
    d.Mix(b.map_output_schema.fields());
    if (!b.map_only()) {
      Status s = MixPartitionLineage(&d, b.partition, datasets);
      if (!s.ok()) return s;
      d.Mix(b.combiner != nullptr ? b.combiner->name() : std::string());
    } else {
      // Map-only branches have no shuffle: partition spec and combiner are
      // inert and excluded so leftover specs do not split identities.
      d.Mix(uint64_t{0});
    }
    d.Mix(b.preserved_partition.has_value());
    if (b.preserved_partition) {
      MixPartitionSpecDigest(&d, *b.preserved_partition);
    }
    auto out_ds = plan.GetDataset(b.output_dataset);
    if (!out_ds.ok()) return out_ds.status();
    d.Mix((*out_ds)->schema.fields());
  }
  MixJobConfiguration(&d, job);
  d.Mix(plan.cluster().compress_ratio);
  return d.value();
}

Result<std::set<std::string>> UpstreamJobClosure(
    const Plan& plan, const std::set<std::string>& targets) {
  STUBBY_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          plan.TopologicalOrder());
  std::set<std::string> needed;
  for (const std::string& jid : targets) {
    if (plan.HasJob(jid)) needed.insert(jid);
  }
  // Reverse topological sweep: a job is needed when any consumer of one of
  // its outputs is (InputDatasets covers split_points_from samples, so
  // ConsumersOf sees that dependency too).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (needed.count(*it)) continue;
    const JobVertex& job = **plan.GetJob(*it);
    bool feeds_needed = false;
    for (const std::string& out : job.OutputDatasets()) {
      for (const std::string& consumer : plan.ConsumersOf(out)) {
        if (needed.count(consumer)) {
          feeds_needed = true;
          break;
        }
      }
      if (feeds_needed) break;
    }
    if (feeds_needed) needed.insert(*it);
  }
  return needed;
}

Result<CostKey> JobProbeMemoKey(const JobVertex& job, const Plan& plan,
                                const std::map<std::string, CostKey>& datasets,
                                const CostDigest* content_digest) {
  // Superset contract with JobReuseKey: the content digest covers the
  // whole job vertex (branch structure, stages, prune lists, partition
  // specs, configuration); everything JobReuseKey reads from *outside* the
  // vertex — input/sample lineage keys, output/merge schemas, the combiner
  // name, the compression ratio — is mixed explicitly below. The failure
  // conditions (missing lineage key, missing output vertex) are replicated
  // exactly, so memoized and direct resolution agree on resolvability.
  CostDigest d;
  d.Mix(kTagProbeMemo);
  MixKey(&d, content_digest != nullptr ? content_digest->value()
                                       : JobContentDigest(job).value());
  for (const Branch& b : job.branches) {
    for (const BranchInput& in : b.inputs) {
      auto it = datasets.find(in.dataset_id);
      if (it == datasets.end()) {
        return Status::NotFound("no lineage key for input dataset '" +
                                in.dataset_id + "'");
      }
      MixKey(&d, it->second);
    }
    if (!b.map_only()) {
      if (!b.partition.split_points_from.empty()) {
        auto it = datasets.find(b.partition.split_points_from);
        if (it == datasets.end()) {
          return Status::NotFound(
              "no lineage key for split-points dataset '" +
              b.partition.split_points_from + "'");
        }
        MixKey(&d, it->second);
      }
      d.Mix(b.combiner != nullptr ? b.combiner->name() : std::string());
    }
    d.Mix(b.merge_schema.fields());
    d.Mix(b.map_output_schema.fields());
    d.Mix(b.preserved_partition.has_value());
    if (b.preserved_partition) {
      MixPartitionSpecDigest(&d, *b.preserved_partition);
    }
    auto out_ds = plan.GetDataset(b.output_dataset);
    if (!out_ds.ok()) return out_ds.status();
    d.Mix((*out_ds)->schema.fields());
  }
  d.Mix(plan.cluster().compress_ratio);
  return d.value();
}

Result<PlanLineage> ComputeLineage(const Plan& plan, const Dfs& dfs,
                                   const std::map<std::string, CostKey>* seed,
                                   LineageMemo* accel) {
  PlanLineage lineage;
  if (seed != nullptr) lineage.datasets = *seed;
  for (const auto& [id, ds] : plan.datasets()) {
    if (!ds.is_base_input || lineage.datasets.count(id)) continue;
    auto stored = dfs.Get(id);
    if (!stored.ok()) continue;  // unresolvable: downstream jobs get no key
    lineage.datasets.emplace(id, DatasetContentKey(**stored));
  }
  auto order = plan.TopologicalOrder();
  if (!order.ok()) return order.status();
  for (const std::string& jid : *order) {
    if (accel != nullptr && accel->restrict_to != nullptr &&
        accel->restrict_to->count(jid) == 0) {
      continue;  // nobody downstream in the closure needs this key
    }
    const JobVertex& job = *(*plan.GetJob(jid));
    Result<CostKey> key = Status::Unknown("unresolved");
    if (accel != nullptr && accel->memo != nullptr) {
      const CostDigest* cd = nullptr;
      if (accel->content_digests != nullptr) {
        auto dit = accel->content_digests->find(jid);
        if (dit != accel->content_digests->end()) cd = &dit->second;
      }
      auto memo_key = JobProbeMemoKey(job, plan, lineage.datasets, cd);
      if (!memo_key.ok()) {
        key = memo_key.status();  // same unresolvable miss as JobReuseKey
      } else if (const CostKey* cached = accel->memo->Peek(*memo_key)) {
        ++accel->hits;
        key = *cached;
      } else {
        ++accel->misses;
        ++accel->computed;
        key = JobReuseKey(job, plan, lineage.datasets);
        if (key.ok()) accel->memo->Insert(*memo_key, *key);
      }
    } else {
      if (accel != nullptr) ++accel->computed;
      key = JobReuseKey(job, plan, lineage.datasets);
    }
    if (!key.ok()) continue;  // an input was unresolvable
    lineage.jobs.emplace(jid, *key);
    std::vector<std::string> outputs = job.OutputDatasets();
    for (size_t i = 0; i < outputs.size(); ++i) {
      lineage.datasets.emplace(outputs[i], JobOutputKey(*key, i));
    }
  }
  return lineage;
}

std::map<std::string, CostKey> BaseInputContentSeeds(const Plan& plan,
                                                     const Dfs& dfs) {
  std::map<std::string, CostKey> seeds;
  for (const auto& [id, ds] : plan.datasets()) {
    if (!ds.is_base_input) continue;
    auto stored = dfs.Get(id);
    if (!stored.ok()) continue;
    seeds.emplace(id, DatasetContentKey(**stored));
  }
  return seeds;
}

std::string CostKeyToHex(const CostKey& key) {
  return StrFormat("%016llx%016llx", (unsigned long long)key.first,
                   (unsigned long long)key.second);
}

}  // namespace stubby

#include "reuse/session.h"

#include <chrono>

#include "exec/workflow_runner.h"
#include "reuse/signature.h"

namespace stubby {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Releases the optimizer's snapshot pins on every exit path — staging or
/// execution failures must not leave snapshots pinned against eviction
/// forever. Owns a copy of the pin list: the report it came from is
/// move-constructed into the return value before this destructor runs, so a
/// pointer back into it would observe a moved-from (empty) vector on the
/// success path and leak every pin.
struct PinReleaser {
  ResultStore* store = nullptr;
  std::vector<std::string> pins;
  ~PinReleaser() {
    if (store == nullptr) return;
    for (const std::string& snapshot : pins) store->Unpin(snapshot);
  }
};

}  // namespace

Result<ReuseSessionResult> ReuseSession::Run(const Plan& plan, const Dfs& dfs,
                                             const StubbyOptions& base_options,
                                             ThreadPool* pool,
                                             bool register_outputs) const {
  ReuseSessionResult result;

  StubbyOptions options = base_options;
  if (store_ != nullptr) {
    options.reuse_store = store_;
    options.reuse_dfs = &dfs;
  }
  if (options.pool == nullptr) options.pool = pool;

  auto t_opt = std::chrono::steady_clock::now();
  StubbyOptimizer optimizer(options);
  STUBBY_ASSIGN_OR_RETURN(result.report, optimizer.Optimize(plan));
  result.optimize_sec = SecondsSince(t_opt);
  // With the reuse-aware search (single-tier path), the optimizer commits
  // hits and pins scanned snapshots itself; either way the pins last until
  // this session run ends, success or failure.
  PinReleaser pin_releaser{store_, result.report.reuse_pinned};

  auto t_exec = std::chrono::steady_clock::now();
  // Stage every materialized vertex: its snapshot becomes a base input of
  // the run under the vertex's id.
  Dfs run_dfs = dfs;
  for (const auto& [id, v] : result.report.plan.datasets()) {
    if (v.materialized_from.empty()) continue;
    if (store_ == nullptr) {
      return Status::Internal("materialized vertex without a store");
    }
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr snapshot,
                            store_->OpenSnapshot(v.materialized_from));
    run_dfs.PutOrReplace(CloneDataset(*snapshot, id));
  }

  const ExecOptions exec{options.vectorized_exec, options.columnar_storage};
  if (options.reoptimize) {
    // Adaptive execution: WorkflowRunner's loop plus the observed-vs-
    // predicted dataflow check and mid-run suffix re-optimization. An exact
    // no-op (bit-identical dataflow and outputs) when no check fires.
    AdaptiveRunner runner(plan.cluster(), pool, exec, options);
    STUBBY_ASSIGN_OR_RETURN(AdaptiveRunResult adaptive,
                            runner.Run(result.report.plan, &run_dfs));
    result.dataflow = std::move(adaptive.dataflow);
    result.adaptive = std::move(adaptive.stats);
  } else {
    WorkflowRunner runner(plan.cluster(), pool, exec);
    STUBBY_ASSIGN_OR_RETURN(result.dataflow,
                            runner.Run(result.report.plan, &run_dfs));
  }
  result.simulated_cost = result.dataflow.makespan_sec;

  for (const auto& [id, v] : plan.datasets()) {
    if (!v.is_workflow_output) continue;
    STUBBY_ASSIGN_OR_RETURN(DatasetPtr out, run_dfs.Get(id));
    result.outputs.emplace(id, out->AllRows());
  }
  result.execute_sec = SecondsSince(t_exec);

  if (store_ != nullptr && register_outputs) {
    ReuseStats reg;
    // Lineage of the *executed* plan, seeded so materialized vertices keep
    // the identity they were matched under.
    STUBBY_ASSIGN_OR_RETURN(
        PlanLineage executed,
        ComputeLineage(result.report.plan, run_dfs,
                       &result.report.reuse_lineage_seeds));

    // Register every executed job's outputs; a stateless map-only job's
    // output doubles as a map-stream entry for sub-job (prefix) matching.
    // After a mid-run re-optimization the optimized plan's per-job lineage
    // no longer describes what executed (the spliced suffix may use other
    // configurations under the same dataset ids), so only the terminal
    // outputs — bit-identical by the equivalence invariant and keyed by the
    // original plan's lineage — are registered then.
    const bool spliced = result.adaptive.reoptimizations > 0;
    for (const auto& [jid, job] : result.report.plan.jobs()) {
      if (spliced) break;
      auto kit = executed.jobs.find(jid);
      if (kit == executed.jobs.end()) continue;
      std::vector<std::string> outputs = job.OutputDatasets();
      for (size_t i = 0; i < outputs.size(); ++i) {
        auto stored = run_dfs.Get(outputs[i]);
        if (!stored.ok()) continue;
        std::vector<std::pair<CostKey, ReuseKind>> keys;
        keys.emplace_back(JobOutputKey(kit->second, i),
                          ReuseKind::kJobOutput);
        if (i == 0 && job.branches.size() == 1) {
          const Branch& b = job.branches[0];
          if (b.map_only() && b.inputs.size() == 1 &&
              !b.inputs[0].map_stages.empty() &&
              outputs[i] == b.output_dataset &&
              PrefixEligible(b, b.inputs[0], job.config,
                             b.inputs[0].map_stages.size())) {
            auto in_key = executed.datasets.find(b.inputs[0].dataset_id);
            if (in_key != executed.datasets.end()) {
              keys.emplace_back(
                  MapStreamKey(in_key->second, b.inputs[0].map_stages,
                               b.inputs[0].map_stages.size()),
                  ReuseKind::kMapStream);
            }
          }
        }
        for (const auto& [key, kind] : keys) {
          if (store_->Peek(key) == nullptr) ++reg.registered;
        }
        store_->Register(**stored, keys);
      }
    }

    // Register the workflow's terminal outputs under their *original-plan*
    // lineage salted with the options, for whole-workflow elision.
    STUBBY_ASSIGN_OR_RETURN(PlanLineage original, ComputeLineage(plan, dfs));
    CostKey salt = ReuseSaltFromOptions(options);
    for (const auto& [id, v] : plan.datasets()) {
      if (!v.is_workflow_output) continue;
      auto lit = original.datasets.find(id);
      if (lit == original.datasets.end()) continue;
      auto stored = run_dfs.Get(id);
      if (!stored.ok()) continue;
      CostKey key = WorkflowOutputKey(lit->second, salt);
      if (store_->Peek(key) == nullptr) ++reg.registered;
      store_->Register(**stored, {{key, ReuseKind::kWorkflowOutput}});
    }

    result.reuse = result.report.reuse;
    result.reuse.Add(reg);
  } else if (store_ != nullptr) {
    // Registration skipped (degraded mode): hits were still served, so the
    // rewrite counters carry over — only `registered` stays zero.
    result.reuse = result.report.reuse;
  }

  return result;
}

}  // namespace stubby

// ReuseRewriter: the plan pass that turns ResultStore hits into rewrites
// (ReStore's plan matcher, PVLDB 2012). Two tiers:
//
//   ElideWholeWorkflow — before optimization: if every terminal output of
//   the workflow is stored under its optimizer-salted lineage key, the
//   whole plan collapses to zero jobs whose outputs are staged snapshots.
//   Salting with the optimizer options keeps the tier transparent: the
//   stored bits are exactly what optimizing + executing would produce.
//
//   Rewrite — after optimization: (a) whole-job reuse — a job whose every
//   output is stored is removed and its outputs become materialized base
//   inputs; (b) sub-job reuse — the longest stored stateless map-prefix of
//   a branch input is replaced by a scan of the stored stream. Dead jobs
//   whose outputs nobody consumes anymore are then eliminated.
//
// When nothing matches, the returned plan is bit-identical to the input —
// the pass is a no-op, not a normalization.

#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "reuse/result_store.h"
#include "reuse/signature.h"
#include "workflow/plan.h"

namespace stubby {

class ProbeStore;  // reuse/probe_cache.h

/// Optional signature-memo context for a rewrite probe. Memoizes both the
/// per-job JobReuseKey digests (via ComputeLineage) and the tier-2b
/// MapStreamKey prefix ladder. Pure wall-time acceleration: with or
/// without it, the produced plan, hit pattern, and every counter except
/// ReuseStats::probe_cache_{hits,misses} and signature_keys_computed are
/// bit-identical. `memo` may be the shared ReuseProbeCache (serial
/// callers) or a task-private ProbeCacheOverlay (parallel candidates);
/// `content_digests` lets the probe reuse the per-job content digests the
/// costing layer already computed for this exact plan.
struct RewriteProbe {
  ProbeStore* memo = nullptr;
  const std::map<std::string, CostDigest>* content_digests = nullptr;
};

/// Outcome of a rewrite pass.
struct ReuseRewriteResult {
  Plan plan;
  ReuseStats stats;
  bool changed = false;

  /// Lineage identity of every materialized vertex in `plan` (vertex id ->
  /// the store key it was served from). The session seeds ComputeLineage
  /// with this map so post-execution registrations of the rewritten plan
  /// stay comparable with recomputed runs.
  std::map<std::string, CostKey> materialized_lineage;

  /// Snapshots the rewritten plan scans, pinned against eviction until the
  /// session unpins them after staging + execution.
  std::vector<std::string> pinned_snapshots;
};

/// Matches a plan against a ResultStore and rewrites hits into scans.
class ReuseRewriter {
 public:
  /// `dfs` supplies base-input contents for lineage keys; both pointers
  /// must outlive the rewriter.
  ReuseRewriter(ResultStore* store, const Dfs* dfs)
      : store_(store), dfs_(dfs) {}

  /// All-or-nothing terminal elision (tier 1). `changed` is true only when
  /// *every* workflow output hit; the result plan then has zero jobs.
  Result<ReuseRewriteResult> ElideWholeWorkflow(const Plan& plan,
                                                const CostKey& options_salt);

  /// Whole-job + map-prefix rewriting (tier 2), then dead-code cleanup.
  /// Commits hits to the store: Lookup bumps hit counts and recency, and
  /// the snapshots the rewritten plan scans are pinned.
  Result<ReuseRewriteResult> Rewrite(const Plan& plan,
                                     const RewriteProbe* probe = nullptr);

  /// Planning-mode variant for the reuse-aware unit search: the same
  /// whole-job + map-prefix matching and cleanup, but read-only — probes
  /// use Peek (no hit counts, no recency, no pins), so candidate
  /// enumeration never mutates store state and stays bit-deterministic at
  /// any thread count. `scope` restricts matching to those job ids
  /// (nullptr = every job); cleanup still runs plan-wide. `seeds`
  /// pre-resolves lineage keys — the search passes base-input content keys
  /// plus the keys of vertices materialized by earlier units, so chained
  /// rewrites across units resolve without the vertices existing in the
  /// dfs. `probe` (optional) attaches the signature memo. The caller
  /// commits the winning plan's hits afterwards.
  Result<ReuseRewriteResult> PlanForScope(
      const Plan& plan, const std::vector<std::string>* scope,
      const std::map<std::string, CostKey>* seeds,
      const RewriteProbe* probe = nullptr) const;

 private:
  /// Shared tier-2 implementation behind Rewrite (commit = true) and
  /// PlanForScope (commit = false).
  Result<ReuseRewriteResult> RewriteImpl(
      const Plan& plan, const std::set<std::string>* scope,
      const std::map<std::string, CostKey>* seeds, bool commit,
      const RewriteProbe* probe) const;

  /// Rewires one dataset vertex to be served from a stored snapshot.
  Status MaterializeVertex(Plan* plan, const std::string& dataset_id,
                           const StoredResult& entry) const;

  ResultStore* store_;
  const Dfs* dfs_;
};

}  // namespace stubby

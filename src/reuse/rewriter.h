// ReuseRewriter: the plan pass that turns ResultStore hits into rewrites
// (ReStore's plan matcher, PVLDB 2012). Two tiers:
//
//   ElideWholeWorkflow — before optimization: if every terminal output of
//   the workflow is stored under its optimizer-salted lineage key, the
//   whole plan collapses to zero jobs whose outputs are staged snapshots.
//   Salting with the optimizer options keeps the tier transparent: the
//   stored bits are exactly what optimizing + executing would produce.
//
//   Rewrite — after optimization: (a) whole-job reuse — a job whose every
//   output is stored is removed and its outputs become materialized base
//   inputs; (b) sub-job reuse — the longest stored stateless map-prefix of
//   a branch input is replaced by a scan of the stored stream. Dead jobs
//   whose outputs nobody consumes anymore are then eliminated.
//
// When nothing matches, the returned plan is bit-identical to the input —
// the pass is a no-op, not a normalization.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "reuse/result_store.h"
#include "reuse/signature.h"
#include "workflow/plan.h"

namespace stubby {

/// Outcome of a rewrite pass.
struct ReuseRewriteResult {
  Plan plan;
  ReuseStats stats;
  bool changed = false;

  /// Lineage identity of every materialized vertex in `plan` (vertex id ->
  /// the store key it was served from). The session seeds ComputeLineage
  /// with this map so post-execution registrations of the rewritten plan
  /// stay comparable with recomputed runs.
  std::map<std::string, CostKey> materialized_lineage;

  /// Snapshots the rewritten plan scans, pinned against eviction until the
  /// session unpins them after staging + execution.
  std::vector<std::string> pinned_snapshots;
};

/// Matches a plan against a ResultStore and rewrites hits into scans.
class ReuseRewriter {
 public:
  /// `dfs` supplies base-input contents for lineage keys; both pointers
  /// must outlive the rewriter.
  ReuseRewriter(ResultStore* store, const Dfs* dfs)
      : store_(store), dfs_(dfs) {}

  /// All-or-nothing terminal elision (tier 1). `changed` is true only when
  /// *every* workflow output hit; the result plan then has zero jobs.
  Result<ReuseRewriteResult> ElideWholeWorkflow(const Plan& plan,
                                                const CostKey& options_salt);

  /// Whole-job + map-prefix rewriting (tier 2), then dead-code cleanup.
  Result<ReuseRewriteResult> Rewrite(const Plan& plan);

 private:
  /// Rewires one dataset vertex to be served from a stored snapshot.
  Status MaterializeVertex(Plan* plan, const std::string& dataset_id,
                           const StoredResult& entry);

  ResultStore* store_;
  const Dfs* dfs_;
};

}  // namespace stubby

// Content-addressed identity of datasets and jobs for cross-workflow result
// reuse (the ReStore direction: Elghandour & Aboulnaga, PVLDB 2012 — the
// sharing-based transformation class Stubby's Section 8 leaves out).
//
// The store must recognize that a job appearing in today's workflow is the
// same computation as a job executed yesterday under different vertex names.
// Plan-level identifiers (job ids, dataset ids, branch tags) are therefore
// excluded from every key; what remains is exactly what determines the
// output *bits* of a deterministic execution:
//
//   dataset lineage key
//     base input:  digest of the stored content (schema, layout, scale,
//                  per-partition rows)
//     produced:    H(producer's job reuse key, output index)
//
//   job reuse key
//     per-branch structure (input lineage keys, aligned/prune read shape,
//     logical stage pipeline, merge/partition/combiner shape, output
//     schemas) + the full job configuration + the cluster compression
//     ratio. Stage statistics, profiles, annotations, and prune-fraction
//     estimates are excluded — they steer the optimizer, not the bits.
//
//   map-stream key (sub-job reuse)
//     H(input lineage key, logical stage prefix) for a chain of *stateless*
//     map stages over an unaligned, unpruned scan. Statelessness makes the
//     concatenated output stream independent of task chunking, so a stream
//     produced by one job matches a prefix of another job with different
//     split sizes, configurations, or surrounding structure.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_cache.h"
#include "dfs/dfs.h"
#include "workflow/plan.h"

namespace stubby {

class ProbeStore;  // reuse/probe_cache.h

/// Digest of the full stored content of a dataset: schema, layout,
/// logical scale, and every partition's rows (boundaries included). Two
/// datasets with equal content keys are bit-identical snapshots.
CostKey DatasetContentKey(const StoredDataset& ds);

/// Lineage key of the `index`-th entry of the producing job's
/// OutputDatasets() order.
CostKey JobOutputKey(const CostKey& job_key, size_t index);

/// Key of the output stream of `stages` (a map-only pipeline) applied to
/// the dataset with lineage key `input`. Configuration-free: valid only
/// for pipelines that pass PrefixEligible.
CostKey MapStreamKey(const CostKey& input, const std::vector<Stage>& stages,
                     size_t prefix_len);

/// Memo addressing for the tier-2b map-prefix ladder. The rewriter probes
/// MapStreamKey for every prefix length k = n..1 of every branch input of
/// every candidate plan — O(n^2) stage-name digesting per ladder, repeated
/// per RRS-configured candidate. `MapStreamMemoBase` digests the ladder's
/// invariant part (input lineage key + all n stage names) once;
/// `MapStreamMemoKey` derives each rung's memo address from the base in
/// O(1). Equal memo keys imply equal MapStreamKeys (the base covers
/// everything MapStreamKey reads), so a ProbeStore keyed this way serves
/// the resolved key once per distinct prefix instead of per candidate.
CostKey MapStreamMemoBase(const CostKey& input,
                          const std::vector<Stage>& stages);
CostKey MapStreamMemoKey(const CostKey& base, size_t prefix_len);

/// Key under which a workflow-terminal output is registered: the dataset's
/// original-plan lineage key salted with a digest of the optimizer options
/// that shaped the executed plan (optimized bits depend on the optimizer's
/// choices; recompute-equivalence is only guaranteed under equal options).
CostKey WorkflowOutputKey(const CostKey& original_lineage,
                          const CostKey& options_salt);

/// True when `stages[0..prefix_len)` of `in` within `b` form a
/// chunking-independent stream over an unaligned, unpruned scan: every
/// stage in the *whole* pipeline is a stateless, tee-free map (dropped
/// stages must replay identically; remaining stages must tolerate the new
/// task boundaries), the branch is not merge-mode, and no active combiner
/// regroups rows per task.
bool PrefixEligible(const Branch& b, const BranchInput& in,
                    const JobConfig& config, size_t prefix_len);

/// Lineage keys of every resolvable vertex of a plan. Datasets or jobs
/// whose identity cannot be established (a base input missing from `dfs`,
/// a job reading such a dataset) are simply absent — matching treats
/// absence as a miss.
struct PlanLineage {
  std::map<std::string, CostKey> datasets;  ///< dataset id -> lineage key
  std::map<std::string, CostKey> jobs;      ///< job id -> job reuse key
};

/// Optional acceleration state for ComputeLineage. Everything here is a
/// pure wall-time knob: lineage keys are bit-identical with or without it.
struct LineageMemo {
  /// Signature memo (reuse/probe_cache.h): resolved JobReuseKeys keyed by
  /// JobProbeMemoKey. Hits skip the JobReuseKey digest; misses compute and
  /// insert it. Null = no memoization.
  ProbeStore* memo = nullptr;
  /// Precomputed JobContentDigest per job id (the costing layer already
  /// holds these for a configured plan). Jobs absent from the map get
  /// their content digest computed on the fly.
  const std::map<std::string, CostDigest>* content_digests = nullptr;
  /// When set, job reuse keys are computed only for these job ids. The
  /// caller must pass an upstream-closed set (see UpstreamJobClosure):
  /// a restricted job's key computation still needs every ancestor's key.
  const std::set<std::string>* restrict_to = nullptr;

  /// Out-counters. `hits`/`misses` track the memo (untouched when `memo`
  /// is null); `computed` counts actual JobReuseKey digest computations
  /// with or without a memo attached — the memo-off baseline for the
  /// probe-memo study is this counter, measured, not inferred.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t computed = 0;
};

/// Job ids of `targets` plus every job upstream of them (through branch
/// inputs and split_points_from sample dependencies) — the exact set whose
/// reuse keys a scope-restricted rewrite probe can observe.
Result<std::set<std::string>> UpstreamJobClosure(
    const Plan& plan, const std::set<std::string>& targets);

/// Memo key of one job for the signature memo: a digest over a superset
/// of everything JobReuseKey reads — the job's content digest (structure +
/// configuration), the lineage keys of its branch inputs and
/// split-points samples, output/merge schemas, the combiner name, and the
/// cluster compression ratio. Equal memo keys therefore imply equal
/// JobReuseKeys (the converse need not hold; over-fragmentation only costs
/// a redundant computation, never a wrong key). Fails exactly when
/// JobReuseKey would: a required lineage key is missing.
Result<CostKey> JobProbeMemoKey(const JobVertex& job, const Plan& plan,
                                const std::map<std::string, CostKey>& datasets,
                                const CostDigest* content_digest = nullptr);

/// Computes lineage keys in topological order. `dfs` supplies the content
/// of base-input datasets; produced datasets derive from their producer's
/// key, so intermediates need not exist yet. `seed` (optional) pre-resolves
/// dataset keys before derivation — the session uses it to give rewritten
/// materialized vertices their *original* lineage identity so downstream
/// registrations stay comparable across rewritten and recomputed runs.
/// `accel` (optional) memoizes/prunes the per-job digest work without
/// changing a single key bit.
Result<PlanLineage> ComputeLineage(
    const Plan& plan, const Dfs& dfs,
    const std::map<std::string, CostKey>* seed = nullptr,
    LineageMemo* accel = nullptr);

/// Content keys of every base-input dataset of `plan` resolvable in `dfs`
/// (exactly what ComputeLineage would derive for them). The reuse-aware
/// search precomputes this once per Optimize call and seeds every
/// candidate-probe lineage with it, so the per-candidate rewrites never
/// re-digest base dataset rows.
std::map<std::string, CostKey> BaseInputContentSeeds(const Plan& plan,
                                                     const Dfs& dfs);

/// The job reuse key of `job` given the lineage keys of its input
/// datasets (and of any split_points_from sample datasets). Returns an
/// error if a required lineage key is missing from `datasets`.
Result<CostKey> JobReuseKey(const JobVertex& job, const Plan& plan,
                            const std::map<std::string, CostKey>& datasets);

/// Hex rendering of a 128-bit key ("0123456789abcdef:..."), used for
/// catalog display and derived dataset-vertex ids.
std::string CostKeyToHex(const CostKey& key);

}  // namespace stubby

#include "reuse/rewriter.h"

#include <algorithm>
#include <set>

#include "reuse/probe_cache.h"

namespace stubby {

Status ReuseRewriter::MaterializeVertex(Plan* plan,
                                        const std::string& dataset_id,
                                        const StoredResult& entry) const {
  STUBBY_ASSIGN_OR_RETURN(DatasetPtr snapshot,
                          store_->OpenSnapshot(entry.snapshot_id));
  STUBBY_ASSIGN_OR_RETURN(DatasetVertex * v,
                          plan->GetMutableDataset(dataset_id));
  v->is_base_input = true;
  v->materialized_from = entry.snapshot_id;
  v->layout = snapshot->layout();
  v->annotation.schema = v->schema;
  v->annotation.layout = snapshot->layout();
  v->annotation.num_records = entry.logical_rows;
  v->annotation.bytes = entry.logical_bytes;
  v->annotation.num_partitions = static_cast<int>(snapshot->num_partitions());
  return Status::OK();
}

Result<ReuseRewriteResult> ReuseRewriter::ElideWholeWorkflow(
    const Plan& plan, const CostKey& options_salt) {
  ReuseRewriteResult result;
  result.plan = plan;

  STUBBY_ASSIGN_OR_RETURN(PlanLineage lineage, ComputeLineage(plan, *dfs_));

  // Probe every terminal output first; commit nothing on a partial hit
  // (executing half a workflow from the store and half from scratch would
  // still run all the upstream jobs the stored half depended on).
  std::vector<std::pair<std::string, CostKey>> terminals;
  for (const auto& [id, v] : plan.datasets()) {
    if (!v.is_workflow_output) continue;
    auto it = lineage.datasets.find(id);
    if (it == lineage.datasets.end()) return result;  // unresolvable: miss
    CostKey key = WorkflowOutputKey(it->second, options_salt);
    ++result.stats.lookups;
    if (store_->Peek(key) == nullptr) return result;
    terminals.emplace_back(id, key);
  }
  if (terminals.empty() || plan.num_jobs() == 0) return result;

  Plan elided(plan.cluster());
  for (const auto& [id, key] : terminals) {
    const StoredResult* entry = store_->Lookup(key);
    const DatasetVertex* original = *plan.GetDataset(id);
    DatasetVertex v;
    v.id = id;
    v.schema = original->schema;
    v.is_base_input = true;
    v.is_workflow_output = true;
    Status s = elided.AddDataset(std::move(v));
    if (!s.ok()) return s;
    s = MaterializeVertex(&elided, id, *entry);
    if (!s.ok()) return s;
    store_->Pin(entry->snapshot_id);
    result.pinned_snapshots.push_back(entry->snapshot_id);
    result.materialized_lineage.emplace(id, lineage.datasets.at(id));
    ++result.stats.workflow_hits;
    result.stats.bytes_saved += entry->logical_bytes;
  }
  result.stats.jobs_elided = plan.num_jobs();
  result.plan = std::move(elided);
  result.changed = true;
  Status s = result.plan.Validate();
  if (!s.ok()) return s;
  return result;
}

Result<ReuseRewriteResult> ReuseRewriter::Rewrite(const Plan& plan,
                                                  const RewriteProbe* probe) {
  return RewriteImpl(plan, /*scope=*/nullptr, /*seeds=*/nullptr,
                     /*commit=*/true, probe);
}

Result<ReuseRewriteResult> ReuseRewriter::PlanForScope(
    const Plan& plan, const std::vector<std::string>* scope,
    const std::map<std::string, CostKey>* seeds,
    const RewriteProbe* probe) const {
  if (scope == nullptr) {
    return RewriteImpl(plan, nullptr, seeds, /*commit=*/false, probe);
  }
  std::set<std::string> scope_set(scope->begin(), scope->end());
  return RewriteImpl(plan, &scope_set, seeds, /*commit=*/false, probe);
}

Result<ReuseRewriteResult> ReuseRewriter::RewriteImpl(
    const Plan& plan, const std::set<std::string>* scope,
    const std::map<std::string, CostKey>* seeds, bool commit,
    const RewriteProbe* probe) const {
  ReuseRewriteResult result;
  result.plan = plan;
  const size_t original_jobs = plan.num_jobs();

  // Lineage acceleration: restrict key derivation to the upstream closure
  // of the scope (a scoped probe can only observe those keys — applied
  // with or without the memo so probe sequences stay identical), and
  // memoize JobReuseKey resolutions across candidates via the probe memo.
  LineageMemo accel;
  if (probe != nullptr) {
    accel.memo = probe->memo;
    accel.content_digests = probe->content_digests;
  }
  std::set<std::string> closure;
  if (scope != nullptr) {
    STUBBY_ASSIGN_OR_RETURN(closure, UpstreamJobClosure(plan, *scope));
    accel.restrict_to = &closure;
  }
  STUBBY_ASSIGN_OR_RETURN(PlanLineage lineage,
                          ComputeLineage(plan, *dfs_, seeds, &accel));
  result.stats.probe_cache_hits += accel.hits;
  result.stats.probe_cache_misses += accel.misses;
  result.stats.signature_keys_computed += accel.computed;
  STUBBY_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          plan.TopologicalOrder());

  // --- tier 2a: whole-job reuse -------------------------------------------
  // Matching runs against the *input* plan's lineage, which does not change
  // as jobs are removed: a produced dataset's key derives from its
  // producer's key whether or not the producer still exists.
  for (const std::string& jid : order) {
    if (scope != nullptr && scope->count(jid) == 0) continue;
    auto kit = lineage.jobs.find(jid);
    if (kit == lineage.jobs.end()) continue;
    const JobVertex& job = **plan.GetJob(jid);
    std::vector<std::string> outputs = job.OutputDatasets();
    std::vector<const StoredResult*> entries;
    bool all = true;
    for (size_t i = 0; i < outputs.size(); ++i) {
      ++result.stats.lookups;
      const StoredResult* e = store_->Peek(JobOutputKey(kit->second, i));
      if (e == nullptr) {
        all = false;
        break;
      }
      entries.push_back(e);
    }
    if (!all || outputs.empty()) continue;

    result.plan.RemoveJob(jid);
    for (size_t i = 0; i < outputs.size(); ++i) {
      const CostKey key = JobOutputKey(kit->second, i);
      const StoredResult* entry =
          commit ? store_->Lookup(key) : store_->Peek(key);
      Status s = MaterializeVertex(&result.plan, outputs[i], *entry);
      if (!s.ok()) return s;
      result.materialized_lineage.emplace(outputs[i], key);
      result.stats.bytes_saved += entry->logical_bytes;
    }
    ++result.stats.whole_job_hits;
  }

  // --- tier 2b: sub-job (map-prefix) reuse --------------------------------
  for (const std::string& jid : order) {
    if (!result.plan.HasJob(jid)) continue;  // removed above
    if (scope != nullptr && scope->count(jid) == 0) continue;
    STUBBY_ASSIGN_OR_RETURN(JobVertex * job, result.plan.GetMutableJob(jid));
    for (Branch& b : job->branches) {
      for (BranchInput& in : b.inputs) {
        // Inputs already rewired to a materialized scan keep their identity.
        auto lit = lineage.datasets.find(in.dataset_id);
        if (lit == lineage.datasets.end()) continue;
        const size_t n = in.map_stages.size();
        const StoredResult* hit = nullptr;
        size_t hit_len = 0;
        CostKey hit_key{0, 0};
        // Eligibility inspects the whole pipeline, not the prefix, so one
        // check at k = n decides the entire ladder.
        if (n >= 1 && PrefixEligible(b, in, job->config, n)) {
          ProbeStore* memo = probe != nullptr ? probe->memo : nullptr;
          CostKey memo_base{0, 0};
          if (memo != nullptr) {
            memo_base = MapStreamMemoBase(lit->second, in.map_stages);
          }
          for (size_t k = n; k >= 1; --k) {  // longest stored prefix wins
            CostKey key;
            if (memo != nullptr) {
              const CostKey memo_key = MapStreamMemoKey(memo_base, k);
              if (const CostKey* cached = memo->Peek(memo_key)) {
                key = *cached;
                ++result.stats.probe_cache_hits;
              } else {
                key = MapStreamKey(lit->second, in.map_stages, k);
                memo->Insert(memo_key, key);
                ++result.stats.probe_cache_misses;
                ++result.stats.signature_keys_computed;
              }
            } else {
              key = MapStreamKey(lit->second, in.map_stages, k);
              ++result.stats.signature_keys_computed;
            }
            ++result.stats.lookups;
            const StoredResult* e = store_->Peek(key);
            if (e != nullptr) {
              hit = commit ? store_->Lookup(key) : e;
              hit_len = k;
              hit_key = key;
              break;
            }
          }
        }
        if (hit == nullptr) continue;

        std::string scan_id = "reuse:" + CostKeyToHex(hit_key);
        if (!result.plan.HasDataset(scan_id)) {
          DatasetVertex v;
          v.id = scan_id;
          v.schema = in.map_stages[hit_len - 1].output_schema();
          v.is_base_input = true;
          Status s = result.plan.AddDataset(std::move(v));
          if (!s.ok()) return s;
          s = MaterializeVertex(&result.plan, scan_id, *hit);
          if (!s.ok()) return s;
          result.materialized_lineage.emplace(scan_id, hit_key);
        }
        in.dataset_id = scan_id;
        in.map_stages.erase(in.map_stages.begin(),
                            in.map_stages.begin() +
                                static_cast<long>(hit_len));
        ++result.stats.prefix_hits;
        result.stats.bytes_saved += hit->logical_bytes;
      }
    }
  }

  result.changed =
      result.stats.whole_job_hits > 0 || result.stats.prefix_hits > 0;
  if (!result.changed) return result;  // plan is bit-identical to the input

  // --- dead-code cleanup ---------------------------------------------------
  // A job all of whose outputs are unconsumed non-terminals only existed to
  // feed something now served from the store.
  bool removed = true;
  while (removed) {
    removed = false;
    std::vector<std::string> dead;
    for (const auto& [jid, job] : result.plan.jobs()) {
      bool needed = false;
      for (const std::string& out : job.OutputDatasets()) {
        auto ds = result.plan.GetDataset(out);
        if (!ds.ok() || (*ds)->is_workflow_output ||
            !result.plan.ConsumersOf(out).empty()) {
          needed = true;
          break;
        }
      }
      if (!needed) dead.push_back(jid);
    }
    for (const std::string& jid : dead) {
      result.plan.RemoveJob(jid);
      removed = true;
    }
  }
  result.plan.RemoveOrphanDatasets();

  // Drop materialized scans nothing ended up reading (a whole-job rewrite
  // can strand the scan a prefix rewrite added, or an elided consumer can
  // strand a materialized output).
  std::vector<std::string> stranded;
  for (const auto& [id, v] : result.plan.datasets()) {
    if (v.materialized_from.empty() || v.is_workflow_output) continue;
    if (result.plan.ConsumersOf(id).empty()) stranded.push_back(id);
  }
  for (const std::string& id : stranded) {
    result.plan.RemoveDataset(id);
    result.materialized_lineage.erase(id);
  }

  // Pin the snapshots the surviving plan scans (commit mode only; a
  // planning probe must leave the store untouched).
  if (commit) {
    std::set<std::string> pinned;
    for (const auto& [id, v] : result.plan.datasets()) {
      if (v.materialized_from.empty()) continue;
      if (pinned.insert(v.materialized_from).second) {
        store_->Pin(v.materialized_from);
        result.pinned_snapshots.push_back(v.materialized_from);
      }
    }
  }

  result.stats.jobs_elided = original_jobs - result.plan.num_jobs();
  Status s = result.plan.Validate();
  if (!s.ok()) return s;
  return result;
}

}  // namespace stubby

// ResultStore: the cross-workflow materialized-output catalog (ReStore's
// repository, PVLDB 2012, adapted to the simulated DFS). Executed job
// outputs are snapshotted into an internal Dfs and indexed by the
// content-addressed keys of reuse/signature.h; later workflows that contain
// a logically-equal job (or a map-only prefix of one) are rewritten to scan
// the snapshot instead of recomputing it.
//
// Determinism contract: every byte of store state — snapshot ids, catalog
// contents, hit counters, eviction victims — is a pure function of the
// sequence of Register/Lookup/Pin calls. Recency uses a logical clock, not
// wall time, so repeated sessions evict identically.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "dfs/dfs.h"
#include "reuse/signature.h"

namespace stubby {

/// What a catalog entry stands for.
enum class ReuseKind {
  kJobOutput,       ///< one output dataset of a whole executed job
  kMapStream,       ///< output stream of a stateless map-only pipeline
  kWorkflowOutput,  ///< terminal output under optimizer-salted lineage
};

const char* ReuseKindName(ReuseKind kind);

/// Counters of one optimizer run's interaction with the store.
struct ReuseStats {
  uint64_t lookups = 0;         ///< catalog probes issued by the rewriter
  uint64_t whole_job_hits = 0;  ///< jobs replaced by stored-output scans
  uint64_t prefix_hits = 0;     ///< map-prefix (sub-job) rewrites
  uint64_t workflow_hits = 0;   ///< terminal outputs served in a full elision
  uint64_t jobs_elided = 0;     ///< jobs removed (hits + dead-code cleanup)
  uint64_t bytes_saved = 0;     ///< logical bytes served from snapshots
  uint64_t registered = 0;      ///< catalog entries added after execution

  /// Reuse-aware unit search (src/optimizer/search.cc): read-only store
  /// probes issued while enumerating candidates, rewritten candidates that
  /// were costed through the what-if engine, and units whose winner was a
  /// rewritten candidate.
  uint64_t search_probes = 0;
  uint64_t search_priced = 0;
  uint64_t search_won = 0;

  /// Signature memo (reuse/probe_cache.h): signature resolutions —
  /// JobReuseKeys and tier-2b MapStreamKey ladder rungs — served from the
  /// memo vs computed fresh, plus the count of actual signature digest
  /// computations on the probe path (`signature_keys_computed` — the
  /// measured baseline when the memo is off). Pure wall-time
  /// observability — every other counter, and every key bit, is identical
  /// with the memo on or off — but still deterministic at any thread count
  /// (memo state follows the same snapshot/overlay/ordered-merge protocol
  /// as the cost cache).
  uint64_t probe_cache_hits = 0;
  uint64_t probe_cache_misses = 0;
  uint64_t signature_keys_computed = 0;

  void Add(const ReuseStats& other);
  std::string ToString() const;
};

/// One catalog entry. Entries referencing the same snapshot share its
/// bytes (a job output registered under both a job-output key and a
/// workflow-output key is stored once).
struct StoredResult {
  CostKey key{0, 0};
  ReuseKind kind = ReuseKind::kJobOutput;
  std::string snapshot_id;
  uint64_t raw_bytes = 0;      ///< physical snapshot bytes (budget unit)
  uint64_t logical_bytes = 0;  ///< scaled bytes the snapshot stands for
  uint64_t logical_rows = 0;
  uint64_t hits = 0;
  uint64_t created = 0;    ///< logical clock at registration
  uint64_t last_used = 0;  ///< logical clock at last Lookup
};

/// How EnforceBudget picks eviction victims. Both policies are pure
/// functions of the logical-clock store state, so eviction sequences are
/// deterministic and replayable.
enum class EvictionPolicy {
  /// Unpinned entry with the oldest last_used; ties break on the key.
  kLru,
  /// Benefit-weighted (ReStore §6): evict the entry with the lowest
  ///   benefit = logical_bytes * (hits + 1) / (raw_bytes * (age + 1)),
  /// age = clock - last_used — i.e. bytes_saved x hit rate / raw storage
  /// cost. Compared exactly via ExactFractionCompare (no floating point);
  /// ties break on older last_used, then on the key.
  kBenefitWeighted,
};

const char* EvictionPolicyName(EvictionPolicy policy);

/// Exact three-way comparison (-1/0/1) of a_num/a_den vs b_num/b_den for
/// nonnegative numerators and positive denominators. Each operand may fill
/// all 128 bits (the benefit fractions are 64x64-bit products), so the
/// comparison uses continued-fraction descent instead of cross-
/// multiplication, which could exceed 2^128 and wrap.
int ExactFractionCompare(unsigned __int128 a_num, unsigned __int128 a_den,
                         unsigned __int128 b_num, unsigned __int128 b_den);

/// Inverse of EvictionPolicyName ("lru" / "benefit"); InvalidArgument on
/// anything else.
Result<EvictionPolicy> EvictionPolicyFromName(const std::string& name);

/// One recorded ResultStore operation (see StoreJournal).
struct StoreOp {
  enum class Kind : uint8_t { kPeek, kLookup, kRegister, kPin, kUnpin };
  Kind kind = Kind::kPeek;
  CostKey key{0, 0};        ///< kPeek / kLookup: probed key
  bool hit = false;         ///< kPeek / kLookup: probe answer
  std::string snapshot_id;  ///< probe answer / pin target / register result
  bool fresh = false;       ///< kRegister: a new snapshot was created
  DatasetPtr dataset;       ///< kRegister: retained clone of the payload
  std::vector<std::pair<CostKey, ReuseKind>> reg_keys;  ///< kRegister
};

/// Ordered record of every public-API operation issued against a store —
/// the isolation substrate of the stubbyd service (src/service/): a request
/// speculates against a private copy of the shared store with a journal
/// attached, and at commit time the journal is replayed against the
/// authoritative store in submission order, validating every recorded probe
/// answer along the way. Appends are mutex-guarded because probes can be
/// issued from parallel search tasks; probe order within a mutation-free
/// window is not significant (probes do not mutate, so validating them is
/// order-independent there), and mutations only occur in serial sections.
class StoreJournal {
 public:
  void Append(StoreOp op) {
    std::lock_guard<std::mutex> lock(mu_);
    ops_.push_back(std::move(op));
  }
  const std::vector<StoreOp>& ops() const { return ops_; }
  void set_record_probes(bool on) { record_probes_ = on; }
  bool record_probes() const { return record_probes_; }

 private:
  std::mutex mu_;
  std::vector<StoreOp> ops_;
  bool record_probes_ = true;
};

/// Byte-budgeted, deterministically-evicting snapshot catalog.
class ResultStore {
 public:
  struct Options {
    /// Physical snapshot-byte budget; 0 = unlimited. Eviction drops
    /// unpinned entries chosen by `policy` until within budget, then
    /// garbage-collects snapshots no surviving entry references.
    uint64_t byte_budget = 0;
    EvictionPolicy policy = EvictionPolicy::kLru;
  };

  ResultStore() : ResultStore(Options{}) {}
  explicit ResultStore(Options options) : options_(options) {}

  // Copies and moves carry the full catalog state but never the attached
  // journal: a journal observes one particular store object (stubbyd's
  // speculative working copies each attach their own), and silently
  // inheriting it would interleave two stores' operation streams.
  ResultStore(const ResultStore&) = default;
  ResultStore(ResultStore&&) = default;
  ResultStore& operator=(const ResultStore&) = default;
  ResultStore& operator=(ResultStore&&) = default;

  /// Snapshots `ds` into the store and registers it under every key in
  /// `keys`. Keys already present keep their existing entry (first
  /// registration wins — deterministic under replay). Returns the snapshot
  /// id serving the keys (the existing entry's snapshot when nothing new
  /// was added), or "" when `keys` is empty.
  std::string Register(const StoredDataset& ds,
                       const std::vector<std::pair<CostKey, ReuseKind>>& keys);

  /// Read-only probe: no hit count, no recency update. Use while planning.
  const StoredResult* Peek(const CostKey& key) const;

  /// Committed lookup: bumps the hit count and LRU recency.
  const StoredResult* Lookup(const CostKey& key);

  /// The snapshot dataset behind an entry.
  Result<DatasetPtr> OpenSnapshot(const std::string& snapshot_id) const;

  /// Pin/unpin a snapshot against eviction (refcounted). Rewritten plans
  /// pin the snapshots they scan until the session has staged and executed
  /// them; eviction never collects a pinned snapshot.
  void Pin(const std::string& snapshot_id);
  void Unpin(const std::string& snapshot_id);

  /// Snapshots currently pinned (distinct ids, not refcounts). Pins are
  /// session-lifetime: a balanced Pin/Unpin discipline leaves this at zero
  /// between session runs.
  size_t num_pins() const { return pins_.size(); }

  const Options& options() const { return options_; }

  /// Swaps the budget/policy (e.g. after LoadFromFile, to apply a CLI
  /// override on top of the persisted options) and re-enforces the budget.
  void set_options(Options options);

  /// Attaches (nullptr: detaches) an operation journal; borrowed, must
  /// outlive the attachment. Every subsequent Peek/Lookup/Register/Pin/
  /// Unpin is appended (probes only while `record_probes()` is on).
  /// Internal budget enforcement is not journaled — it is a deterministic
  /// consequence of the Register that triggered it.
  void set_journal(StoreJournal* journal) { journal_.ptr = journal; }

  /// Evicts policy-ranked victims drawn only from entries whose snapshot is
  /// in `owned` until those snapshots' total raw bytes fit `budget`
  /// (0 = unlimited). The stubbyd per-tenant budget layer: `owned` is the
  /// set of snapshot ids a tenant's requests created. Returns the number of
  /// entries evicted; counts into `evictions()` like global enforcement.
  uint64_t EnforceBudgetOn(const std::set<std::string>& owned,
                           uint64_t budget);

  /// Total raw bytes of the listed snapshots (missing ids contribute 0).
  uint64_t SnapshotBytes(const std::set<std::string>& ids) const;

  bool HasSnapshot(const std::string& id) const {
    return snapshots_.Exists(id);
  }

  /// Ordinal the next created snapshot will use ("rs/<ordinal>"). Lets
  /// callers attribute snapshot creation to a window of calls without a
  /// journal: ids minted in the window are exactly rs/[before, after).
  uint64_t next_snapshot_id() const { return next_snapshot_; }

  const std::map<CostKey, StoredResult>& catalog() const { return entries_; }
  size_t num_entries() const { return entries_.size(); }
  size_t num_snapshots() const { return snapshots_.size(); }
  uint64_t stored_bytes() const { return snapshots_.TotalRawBytes(); }
  uint64_t evictions() const { return evictions_; }
  uint64_t total_hits() const;

  /// Catalog (and snapshot contents) as JSON, using the same row/layout
  /// encodings as workflow/serialize.cc so exported artifacts compose.
  Json ToJson() const;
  std::string Serialize() const;

  /// Restores a store — catalog, snapshots, clock, pins excluded (pins are
  /// session-lifetime only). Keys, ids, and counters round-trip exactly.
  static Result<ResultStore> FromJson(const Json& json);
  static Result<ResultStore> Deserialize(const std::string& text);

  /// Exact catalog persistence across processes: SaveToFile writes
  /// Serialize() to `path`; LoadFromFile restores it via Deserialize. A
  /// reloaded store produces bit-identical hit/eviction sequences.
  /// SaveToFile is crash-safe: the document is written to `path` + ".tmp"
  /// and renamed into place, so a failure mid-save leaves any existing
  /// catalog at `path` untouched and loadable.
  Status SaveToFile(const std::string& path) const;
  static Result<ResultStore> LoadFromFile(const std::string& path);

 private:
  /// Borrowed journal pointer whose copy/move semantics never transfer it
  /// between store objects (see the special-member comment above); on
  /// assignment the destination keeps its own attachment.
  struct JournalRef {
    StoreJournal* ptr = nullptr;
    JournalRef() = default;
    JournalRef(const JournalRef&) {}
    JournalRef(JournalRef&&) noexcept {}
    JournalRef& operator=(const JournalRef&) { return *this; }
    JournalRef& operator=(JournalRef&&) noexcept { return *this; }
  };

  void EnforceBudget();
  /// Lowest-ranked unpinned entry under the active policy among entries
  /// satisfying `eligible`; nullptr when none qualifies. Ties break on the
  /// (ordered) key, so victim sequences are deterministic.
  const StoredResult* PickVictim(
      const std::function<bool(const StoredResult&)>& eligible) const;
  /// Erases one entry, counts the eviction, and garbage-collects snapshots
  /// no surviving entry references and no pin holds.
  void EvictEntry(const CostKey& key);
  void RecordProbe(StoreOp::Kind kind, const CostKey& key,
                   const StoredResult* result) const;

  Options options_;
  std::map<CostKey, StoredResult> entries_;
  Dfs snapshots_;
  std::map<std::string, int> pins_;
  uint64_t clock_ = 0;
  uint64_t next_snapshot_ = 0;
  uint64_t evictions_ = 0;
  JournalRef journal_;
};

/// Deep copy of a dataset under a new id (partitions, scale, layout).
DatasetPtr CloneDataset(const StoredDataset& ds, std::string new_id);

/// Bit-exact row-sequence equality: same length, every value the same type
/// and bit pattern (doubles compared by bits, not tolerance). This is the
/// reuse subsystem's output-equivalence contract.
bool RowsBitIdentical(const std::vector<Row>& a, const std::vector<Row>& b);

}  // namespace stubby

// Profiler: the reproduction's counterpart of Starfish's Profiler [8],
// which the paper uses to generate profile annotations through dynamic
// instrumentation of unmodified MapReduce workflows. Here it runs each job
// of a plan over the (sample) data in the DFS, measures per-stage record/
// byte selectivities, CPU weights, group counts, combine selectivity, and
// key histograms, and writes them into the plan as annotations.
//
// Profiling is measurement, not magic: statistics are collected on the
// physical sample under the plan's current configuration, so the what-if
// engine's later predictions for other configurations and transformed plans
// carry realistic estimation error (Figure 14).

#pragma once

#include "common/result.h"
#include "dfs/dfs.h"
#include "mr/cluster.h"
#include "workflow/plan.h"

namespace stubby {

/// Profiling knobs.
struct ProfilerOptions {
  /// Number of buckets in collected key histograms.
  int histogram_buckets = 32;

  /// Deterministic relative perturbation applied to measured statistics
  /// (models instrumentation/measurement error; 0 = exact measurements).
  double noise = 0.0;
};

/// Collects profile annotations by instrumented execution.
class Profiler {
 public:
  explicit Profiler(ClusterSpec cluster, ProfilerOptions options = {})
      : cluster_(std::move(cluster)), options_(options) {}

  /// Profiles every job of `plan` in topological order: measures statistics
  /// for each stage against the current DFS contents, records them into the
  /// plan (stage stats + branch profile annotations), then executes the job
  /// so downstream jobs can be profiled against its real output. The DFS
  /// ends up holding all intermediate and final datasets.
  Status ProfilePlan(Plan* plan, Dfs* dfs) const;

  /// Profiles a single job in place (without executing it). Inputs must
  /// already exist in the DFS.
  Status ProfileJob(const Plan& plan, JobVertex* job, const Dfs& dfs) const;

 private:
  ClusterSpec cluster_;
  ProfilerOptions options_;
};

}  // namespace stubby

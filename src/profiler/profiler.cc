#include "profiler/profiler.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/strings.h"
#include "exec/job_runner.h"
#include "exec/wrappers.h"

namespace stubby {

namespace {

uint64_t RowsBytes(const std::vector<Row>& rows) {
  uint64_t b = 0;
  for (const Row& r : rows) b += r.SerializedSize();
  return b;
}

/// Deterministic perturbation in [-1, 1] keyed by a name.
double NoiseFor(const std::string& key) {
  uint64_t h = HashString(key);
  return (static_cast<double>(h % 2001) - 1000.0) / 1000.0;
}

/// Runs one stage over `rows` (sorting first for grouped stages) and
/// returns the output rows; fills `stats`. `sort_fields` (when non-empty)
/// orders the stream the way the real shuffle would — order-sensitive
/// reduce functions (e.g. tagged joins expecting the build row first)
/// depend on the full per-partition sort order, not just the grouping.
Result<std::vector<Row>> MeasureStage(
    const Stage& stage, const Schema& in_schema, std::vector<Row> rows,
    const ProfilerOptions& options, const std::string& noise_key,
    const std::vector<std::string>& sort_fields, StageStats* stats) {
  uint64_t in_records = rows.size();
  uint64_t in_bytes = RowsBytes(rows);

  uint64_t groups = 0;
  if (stage.kind == Stage::Kind::kReduce) {
    const std::vector<std::string>& order =
        sort_fields.empty() ? stage.group_fields : sort_fields;
    STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> sort_idx,
                            in_schema.IndicesOf(order));
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       return CompareOnFields(a, b, sort_idx) < 0;
                     });
    STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                            in_schema.IndicesOf(stage.group_fields));
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i == 0 || !EqualOnFields(rows[i - 1], rows[i], idx)) ++groups;
    }
  }

  // Execute the single stage through the standard pipeline machinery.
  Stage clean = stage;
  clean.tee_dataset.clear();  // measurement must not materialize tees
  VectorEmitter out;
  STUBBY_ASSIGN_OR_RETURN(
      std::unique_ptr<PipelineRunner> runner,
      PipelineRunner::Make({clean}, in_schema, &out, nullptr));
  for (const Row& r : rows) runner->Emit(r);
  runner->Finish();

  uint64_t out_records = out.rows().size();
  uint64_t out_bytes = RowsBytes(out.rows());

  StageStats s;
  s.record_selectivity =
      in_records > 0 ? static_cast<double>(out_records) / in_records : 1.0;
  s.byte_selectivity =
      in_bytes > 0 ? static_cast<double>(out_bytes) / in_bytes : 1.0;
  s.cpu_per_record = stage.kind == Stage::Kind::kMap
                         ? stage.map_fn->cpu_cost_per_record()
                         : stage.reduce_fn->cpu_cost_per_record();
  s.groups_per_record =
      in_records > 0 ? static_cast<double>(groups) / in_records : 1.0;

  if (options.noise > 0.0) {
    double n = 1.0 + options.noise * NoiseFor(noise_key);
    s.record_selectivity *= n;
    s.byte_selectivity *= n;
    s.cpu_per_record *= 1.0 + options.noise * NoiseFor(noise_key + "#cpu");
  }
  *stats = s;
  return std::move(out.rows());
}

/// Builds a histogram over a numeric field of `rows` (nullopt if the field
/// is non-numeric or rows are empty).
std::optional<KeyHistogram> BuildHistogram(const std::vector<Row>& rows,
                                           const Schema& schema,
                                           const std::string& field,
                                           int buckets) {
  auto idx = schema.IndexOf(field);
  if (!idx || rows.empty()) return std::nullopt;
  if (rows.front()[*idx].is_string()) return std::nullopt;

  KeyHistogram h;
  h.field = field;
  h.min = rows.front()[*idx].AsDouble();
  h.max = h.min;
  std::map<double, uint64_t> counts;
  for (const Row& r : rows) {
    double v = r[*idx].AsDouble();
    h.min = std::min(h.min, v);
    h.max = std::max(h.max, v);
    counts[v]++;
  }
  h.distinct = counts.size();

  // Extract the most frequent values as point masses (at least 2% of the
  // records each, up to 8 of them); the rest goes into equi-width buckets.
  constexpr size_t kMaxHitters = 8;
  std::vector<std::pair<uint64_t, double>> by_count;
  for (const auto& [v, c] : counts) by_count.emplace_back(c, v);
  std::sort(by_count.rbegin(), by_count.rend());
  const double n = static_cast<double>(rows.size());
  h.max_key_fraction = by_count.empty() ? 0.0 : by_count[0].first / n;
  std::set<double> hitter_values;
  for (size_t i = 0; i < by_count.size() && i < kMaxHitters; ++i) {
    double fraction = static_cast<double>(by_count[i].first) / n;
    if (fraction < 0.02) break;
    h.heavy_hitters.emplace_back(by_count[i].second, fraction);
    hitter_values.insert(by_count[i].second);
  }

  h.bucket_fractions.assign(static_cast<size_t>(buckets), 0.0);
  double width = (h.max - h.min) / buckets;
  for (const auto& [v, c] : counts) {
    if (hitter_values.count(v)) continue;
    int b = width > 0
                ? std::min(buckets - 1, static_cast<int>((v - h.min) / width))
                : 0;
    h.bucket_fractions[static_cast<size_t>(b)] += static_cast<double>(c) / n;
  }
  return h;
}

}  // namespace

Status Profiler::ProfileJob(const Plan& plan, JobVertex* job,
                            const Dfs& dfs) const {
  (void)plan;
  for (Branch& b : job->branches) {
    std::vector<Row> map_out;
    uint64_t input_records = 0;
    uint64_t input_bytes = 0;

    for (BranchInput& in : b.inputs) {
      STUBBY_ASSIGN_OR_RETURN(DatasetPtr ds, dfs.Get(in.dataset_id));
      std::vector<Row> rows;
      if (in.prune_partitions.empty()) {
        rows = ds->AllRows();
      } else {
        rows = ds->RowsOfPartitions(in.prune_partitions);
      }
      input_records += rows.size();
      input_bytes += RowsBytes(rows);

      Schema cur = ds->schema();
      for (Stage& s : in.map_stages) {
        StageStats stats;
        STUBBY_ASSIGN_OR_RETURN(
            rows, MeasureStage(s, cur, std::move(rows), options_,
                               job->id + "/" + b.tag + "/" + s.name(),
                               {}, &stats));
        s.stats = stats;
        cur = s.output_schema();
      }
      map_out.insert(map_out.end(), std::make_move_iterator(rows.begin()),
                     std::make_move_iterator(rows.end()));
    }

    if (b.merge_mode()) {
      STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                              b.merge_schema.IndicesOf(b.merge_sort_fields));
      std::stable_sort(map_out.begin(), map_out.end(),
                       [&](const Row& x, const Row& y) {
                         return CompareOnFields(x, y, idx) < 0;
                       });
      Schema cur = b.merge_schema;
      bool first_merged = true;
      for (Stage& s : b.merged_map_stages) {
        StageStats stats;
        STUBBY_ASSIGN_OR_RETURN(
            map_out, MeasureStage(s, cur, std::move(map_out), options_,
                                  job->id + "/" + b.tag + "/" + s.name(),
                                  first_merged ? b.merge_sort_fields
                                               : std::vector<std::string>{},
                                  &stats));
        first_merged = false;
        s.stats = stats;
        cur = s.output_schema();
      }
    }

    // Job-level profile: input record size, map-output key histograms, and
    // combine selectivity.
    ProfileAnnotation profile;
    if (b.annotations.profile) profile = *b.annotations.profile;
    profile.key_histograms.clear();
    profile.avg_input_record_bytes =
        input_records > 0 ? static_cast<double>(input_bytes) / input_records
                          : 100.0;
    for (const auto& field : b.map_output_schema.fields()) {
      auto h = BuildHistogram(map_out, b.map_output_schema, field,
                              options_.histogram_buckets);
      if (h) profile.key_histograms.push_back(std::move(*h));
    }

    if (!b.map_only()) {
      std::vector<std::string> group = b.GroupFields();
      STUBBY_ASSIGN_OR_RETURN(std::vector<size_t> group_idx,
                              b.map_output_schema.IndicesOf(group));
      // Distinct K2 groups and the heavy-hitter group share.
      {
        std::map<uint64_t, uint64_t> group_counts;
        for (const Row& r : map_out) {
          group_counts[HashOnFields(r, group_idx)]++;
        }
        profile.k2_distinct_groups =
            static_cast<double>(group_counts.size());
        uint64_t top = 0;
        for (const auto& [k, c] : group_counts) top = std::max(top, c);
        profile.k2_max_group_fraction =
            map_out.empty() ? 0.0
                            : static_cast<double>(top) /
                                  static_cast<double>(map_out.size());
      }
      // Combine selectivity: measured at the granularity the executor
      // applies it — per map task — under the job's current configuration.
      // (Predictions for other task counts then carry realistic profiling
      // error, as the paper's profiles do.)
      if (b.combiner != nullptr && !map_out.empty()) {
        double logical_bytes = 0.0;
        for (const BranchInput& in : b.inputs) {
          auto ds = dfs.Get(in.dataset_id);
          if (ds.ok()) logical_bytes += (*ds)->logical_bytes();
        }
        int tasks = std::max(
            1, static_cast<int>(std::ceil(
                   logical_bytes / (job->config.split_mb * 1024.0 * 1024.0))));
        tasks = std::min<int>(tasks, static_cast<int>(map_out.size()));
        size_t per = (map_out.size() + tasks - 1) / tasks;
        uint64_t combined_records = 0;
        double cpu = 0.0;
        for (size_t lo = 0; lo < map_out.size(); lo += per) {
          size_t hi = std::min(map_out.size(), lo + per);
          std::vector<Row> chunk(map_out.begin() + lo, map_out.begin() + hi);
          std::stable_sort(chunk.begin(), chunk.end(),
                           [&](const Row& x, const Row& y) {
                             return CompareOnFields(x, y, group_idx) < 0;
                           });
          combined_records +=
              RunCombiner(*b.combiner, chunk, group_idx, &cpu).size();
        }
        profile.combine_selectivity =
            static_cast<double>(combined_records) / map_out.size();
        profile.combine_cpu_per_record = b.combiner->cpu_cost_per_record();
      }

      // Reduce-side stages: profile against the grouped map output.
      std::vector<Row> rows = std::move(map_out);
      Schema cur = b.map_output_schema;
      bool first_reduce = true;
      for (Stage& s : b.reduce_stages) {
        StageStats stats;
        STUBBY_ASSIGN_OR_RETURN(
            rows, MeasureStage(s, cur, std::move(rows), options_,
                               job->id + "/" + b.tag + "/" + s.name(),
                               first_reduce ? b.partition.sort_fields
                                            : std::vector<std::string>{},
                               &stats));
        first_reduce = false;
        s.stats = stats;
        cur = s.output_schema();
      }
    }
    b.annotations.profile = std::move(profile);
  }
  return Status::OK();
}

Status Profiler::ProfilePlan(Plan* plan, Dfs* dfs) const {
  STUBBY_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          plan->TopologicalOrder());
  JobRunner runner(cluster_);
  for (const auto& jid : order) {
    STUBBY_ASSIGN_OR_RETURN(JobVertex * job, plan->GetMutableJob(jid));
    STUBBY_RETURN_NOT_OK(ProfileJob(*plan, job, *dfs));
    // Execute the job so downstream jobs profile against its real output.
    auto df = runner.Run(*plan, *job, dfs);
    if (!df.ok()) return df.status();
  }
  return Status::OK();
}

}  // namespace stubby

#include "profiler/perturb.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/strings.h"

namespace stubby {

namespace {

/// Multiplicative skew factor in [1/(1+m), 1+m], log-uniform, keyed by
/// (seed, name) through the same string hash the profiler's noise model
/// uses — stable across platforms and runs.
double FactorFor(const PerturbOptions& options, const std::string& name) {
  if (options.magnitude <= 0.0) return 1.0;
  uint64_t h = HashString(std::to_string(options.seed) + "/" + name);
  double u = (static_cast<double>(h % 2001) - 1000.0) / 1000.0;  // [-1, 1]
  return std::exp(u * std::log1p(options.magnitude));
}

void PerturbStage(const PerturbOptions& options, const std::string& key,
                  Stage* stage) {
  if (!stage->stats) return;
  StageStats& s = *stage->stats;
  const double f = FactorFor(options, "sel/" + key);
  s.record_selectivity = std::max(1e-6, s.record_selectivity * f);
  s.byte_selectivity = std::max(1e-6, s.byte_selectivity * f);
  s.cpu_per_record =
      std::max(1e-6, s.cpu_per_record * FactorFor(options, "cpu/" + key));
  s.groups_per_record = std::clamp(
      s.groups_per_record * FactorFor(options, "grp/" + key), 1e-6, 1.0);
}

}  // namespace

Status PerturbProfiles(Plan* plan, const PerturbOptions& options) {
  if (options.magnitude <= 0.0) return Status::OK();

  std::vector<std::string> dataset_ids;
  for (const auto& [id, v] : plan->datasets()) {
    if (v.is_base_input) dataset_ids.push_back(id);
  }
  for (const std::string& id : dataset_ids) {
    STUBBY_ASSIGN_OR_RETURN(DatasetVertex * v, plan->GetMutableDataset(id));
    const double f = FactorFor(options, "ds/" + id);
    if (v->annotation.num_records) {
      v->annotation.num_records = std::max<uint64_t>(
          1, static_cast<uint64_t>(
                 static_cast<double>(*v->annotation.num_records) * f));
    }
    if (v->annotation.bytes) {
      v->annotation.bytes = std::max<uint64_t>(
          1, static_cast<uint64_t>(static_cast<double>(*v->annotation.bytes) *
                                   f));
    }
  }

  std::vector<std::string> job_ids;
  for (const auto& [jid, job] : plan->jobs()) job_ids.push_back(jid);
  for (const std::string& jid : job_ids) {
    STUBBY_ASSIGN_OR_RETURN(JobVertex * jobp, plan->GetMutableJob(jid));
    for (Branch& b : jobp->branches) {
      const std::string bkey = jid + "/" + b.tag;
      for (BranchInput& in : b.inputs) {
        for (size_t i = 0; i < in.map_stages.size(); ++i) {
          PerturbStage(options, bkey + "/" + in.dataset_id + "/m" +
                                    std::to_string(i),
                       &in.map_stages[i]);
        }
      }
      for (size_t i = 0; i < b.merged_map_stages.size(); ++i) {
        PerturbStage(options, bkey + "/g" + std::to_string(i),
                     &b.merged_map_stages[i]);
      }
      for (size_t i = 0; i < b.reduce_stages.size(); ++i) {
        PerturbStage(options, bkey + "/r" + std::to_string(i),
                     &b.reduce_stages[i]);
      }
      if (b.annotations.profile) {
        ProfileAnnotation& p = *b.annotations.profile;
        p.avg_input_record_bytes = std::max(
            1.0, p.avg_input_record_bytes * FactorFor(options, "rb/" + bkey));
        if (p.k2_distinct_groups > 0.0) {
          p.k2_distinct_groups = std::max(
              1.0, p.k2_distinct_groups * FactorFor(options, "k2/" + bkey));
        }
        p.combine_selectivity = std::clamp(
            p.combine_selectivity * FactorFor(options, "cs/" + bkey), 1e-6,
            1.0);
      }
    }
  }
  return Status::OK();
}

}  // namespace stubby

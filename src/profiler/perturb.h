// Deterministic profile-perturbation injector: models a profile collected
// on a non-representative sample (or a dataset that changed since
// profiling) by applying seeded multiplicative skew factors to the plan's
// profile-derived statistics — base-input size annotations and per-stage
// selectivities/CPU weights. The data itself is untouched: execution stays
// bit-identical, only what-if predictions (and therefore the optimizer's
// choices) go wrong. This is how tests and benches manufacture the
// mis-profiled-input scenario the adaptive re-optimizer exists for.

#pragma once

#include <cstdint>

#include "common/result.h"
#include "workflow/plan.h"

namespace stubby {

struct PerturbOptions {
  uint64_t seed = 1;
  /// Skew strength: every perturbed statistic is scaled by a factor drawn
  /// log-uniformly from [1/(1+magnitude), 1+magnitude], keyed by the
  /// statistic's name and the seed. 0 disables the injector.
  double magnitude = 2.0;
};

/// Perturbs `plan` in place. Pure function of (plan, options): the same
/// plan and options always yield the same perturbed annotations.
Status PerturbProfiles(Plan* plan, const PerturbOptions& options);

}  // namespace stubby

#include "cost/adjust.h"

namespace stubby {

JobAnnotations MergeForVerticalPack(const JobAnnotations& producer,
                                    const JobAnnotations& consumer,
                                    PackDirection direction) {
  JobAnnotations merged;
  const bool producer_shuffle =
      direction == PackDirection::kConsumerIntoProducer;
  const JobAnnotations& shuffle_side =
      producer_shuffle ? producer : consumer;

  // Schema: input-side composition comes from the producer (the merged job
  // reads the producer's input); the shuffle-side composition from the job
  // whose shuffle survives; the final output composition from the consumer.
  if (producer.schema || consumer.schema) {
    SchemaAnnotation s;
    if (producer.schema) {
      s.k1 = producer.schema->k1;
      s.v1 = producer.schema->v1;
    }
    if (shuffle_side.schema) {
      s.k2 = shuffle_side.schema->k2;
      s.v2 = shuffle_side.schema->v2;
    }
    if (consumer.schema) {
      s.k3 = consumer.schema->k3;
      s.v3 = consumer.schema->v3;
    }
    merged.schema = s;
  }

  // Filter: the merged job reads the producer's input, so only the
  // producer's input filter is meaningful for upstream pruning.
  merged.filter = producer.filter;

  // Profile: shuffle-side statistics (histograms, group cardinality,
  // combine behaviour) from the surviving shuffle; input-record size from
  // the producer.
  if (producer.profile || consumer.profile) {
    ProfileAnnotation p;
    if (shuffle_side.profile) p = *shuffle_side.profile;
    if (producer.profile) {
      p.avg_input_record_bytes = producer.profile->avg_input_record_bytes;
    }
    // Keep any extra histograms the other side knows about (producer
    // priority only on name collisions with the shuffle side).
    const auto& other = producer_shuffle ? consumer : producer;
    if (other.profile) {
      for (const auto& h : other.profile->key_histograms) {
        if (p.FindHistogram(h.field) == nullptr) {
          p.key_histograms.push_back(h);
        }
      }
    }
    merged.profile = p;
  }
  return merged;
}

StageStats ComposeStats(const std::vector<Stage>& stages) {
  StageStats out;
  out.record_selectivity = 1.0;
  out.byte_selectivity = 1.0;
  out.cpu_per_record = 0.0;
  out.groups_per_record = 1.0;
  double records = 1.0;  // records per initial input record
  for (const Stage& s : stages) {
    StageStats st = s.stats.value_or(StageStats{});
    out.cpu_per_record += records * st.cpu_per_record;
    out.record_selectivity *= st.record_selectivity;
    out.byte_selectivity *= st.byte_selectivity;
    records *= st.record_selectivity;
    if (s.kind == Stage::Kind::kReduce) {
      out.groups_per_record = st.groups_per_record;
    }
  }
  return out;
}

}  // namespace stubby

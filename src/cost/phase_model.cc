#include "cost/phase_model.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace stubby {

namespace {

constexpr double kMB = 1024.0 * 1024.0;

double SafeDiv(double a, double b) { return b > 0 ? a / b : 0.0; }

double Log2Clamped(double x) { return std::log2(std::max(2.0, x)); }

}  // namespace

std::string JobTaskTimes::ToString() const {
  return StrFormat(
      "maps=%d x %.2fs (max %.2fs), reduces=%d x %.2fs (max %.2fs), "
      "overhead=%.1fs",
      map_tasks, map_avg_sec, map_max_sec, reduce_tasks, reduce_avg_sec,
      reduce_max_sec, job_overhead_sec);
}

int PhaseTimeModel::SpillCount(double map_output_bytes_per_task,
                               const JobConfig& config,
                               int pipelines_per_task) const {
  double buffer_mb = std::min(config.io_sort_mb,
                              cluster_.task_memory_mb * 0.6);
  buffer_mb /= std::max(1, pipelines_per_task);
  double buffer_bytes = std::max(1.0, buffer_mb * kMB);
  return std::max(1, static_cast<int>(
                         std::ceil(map_output_bytes_per_task / buffer_bytes)));
}

int PhaseTimeModel::MergePasses(int segments, int factor) {
  factor = std::max(2, factor);
  int passes = 0;
  while (segments > 1) {
    segments = (segments + factor - 1) / factor;
    ++passes;
  }
  return passes;
}

JobTaskTimes PhaseTimeModel::TaskTimes(const JobDataflow& df,
                                       const JobConfig& config) const {
  JobTaskTimes t;
  t.map_tasks = std::max(1, df.num_map_tasks);
  t.reduce_tasks = df.num_reduce_tasks;
  t.job_overhead_sec = cluster_.job_startup_sec;

  const double maps = static_cast<double>(t.map_tasks);
  const bool map_only = t.reduce_tasks == 0;

  const double cpu_sec_per_unit = cluster_.cpu_ns_per_record_unit * 1e-9;
  const double sort_sec_per_rec = cluster_.sort_ns_per_record * 1e-9;

  // ---- Bloom filter build pass (before the map phase) ---------------------
  // The build tasks re-scan the build input, run its map pipeline, and hash
  // the output into per-task partial filters, spread over the map slots;
  // the merged filter is then written once to the DFS. Each map task later
  // fetches the filter over the network before probing.
  if (df.bloom_build_records > 0 || df.bloom_filter_bytes > 0) {
    const double slots =
        static_cast<double>(std::max(1, cluster_.total_map_slots()));
    t.job_overhead_sec +=
        (static_cast<double>(df.bloom_build_bytes) /
             (cluster_.disk_read_mbps * kMB) +
         df.bloom_build_cpu_units * cpu_sec_per_unit) /
        slots;
    t.job_overhead_sec += static_cast<double>(df.bloom_filter_bytes) /
                          (cluster_.dfs_write_mbps * kMB);
  }

  // ---- Map task -----------------------------------------------------------
  double in_stored =
      SafeDiv(static_cast<double>(df.map_input_stored_bytes), maps);
  double in_raw = SafeDiv(static_cast<double>(df.map_input_bytes), maps);
  double map_out_recs =
      SafeDiv(static_cast<double>(df.map_output_records), maps);
  double map_out_bytes =
      SafeDiv(static_cast<double>(df.map_output_bytes), maps);
  double comb_out_bytes =
      SafeDiv(static_cast<double>(df.combine_output_bytes), maps);

  double map_sec = cluster_.task_startup_sec;
  // Fetch the Bloom filter (one copy per map task) before probing.
  map_sec += static_cast<double>(df.bloom_filter_bytes) /
             (cluster_.network_mbps * kMB);
  // Read input from the DFS; decompress if the stored form is compressed.
  map_sec += in_stored / (cluster_.disk_read_mbps * kMB);
  if (df.map_input_stored_bytes < df.map_input_bytes) {
    map_sec += in_raw / (cluster_.decompress_mbps * kMB);
  }
  // Run the map-side pipelines.
  map_sec += SafeDiv(df.map_cpu_units, maps) * cpu_sec_per_unit;

  if (!map_only) {
    // Collect + sort + spill + merge of the map output.
    int spills = SpillCount(map_out_bytes, config, df.pipelines_per_task);
    double recs_per_spill = SafeDiv(map_out_recs, spills);
    map_sec += map_out_recs * Log2Clamped(recs_per_spill) * sort_sec_per_rec;
    // Combine runs on each sorted spill.
    map_sec += SafeDiv(df.combine_cpu_units, maps) * cpu_sec_per_unit;
    // Spill the (post-combine) bytes to local disk, compressing if asked.
    double spill_bytes = comb_out_bytes;
    if (config.compress_map_output) {
      map_sec += spill_bytes / (cluster_.compress_mbps * kMB);
      spill_bytes *= cluster_.compress_ratio;
    }
    map_sec += spill_bytes / (cluster_.disk_write_mbps * kMB);
    // Extra merge passes when spills exceed the merge fan-in: each extra
    // pass re-reads and re-writes the spilled volume.
    int passes = MergePasses(spills, config.io_sort_factor);
    if (passes > 1) {
      map_sec += (passes - 1) * spill_bytes *
                 (1.0 / (cluster_.disk_read_mbps * kMB) +
                  1.0 / (cluster_.disk_write_mbps * kMB));
    }
  } else {
    // Map-only: write the final output straight to the DFS.
    double out_bytes = SafeDiv(static_cast<double>(df.output_bytes), maps);
    if (df.output_compressed) {
      map_sec += out_bytes / (cluster_.compress_mbps * kMB);
      out_bytes *= cluster_.compress_ratio;
    }
    map_sec += out_bytes / (cluster_.dfs_write_mbps * kMB);
  }
  // Side-output (tee) writes: attribute to the map side, where packing
  // places them in practice.
  map_sec += SafeDiv(static_cast<double>(df.tee_bytes), maps) /
             (cluster_.dfs_write_mbps * kMB);

  t.map_avg_sec = map_sec;
  // The slowest map task is scaled by its input share.
  double avg_in = std::max(1.0, in_raw);
  double skew = std::max(
      1.0, static_cast<double>(df.max_map_task_input_bytes) / avg_in);
  t.map_max_sec = cluster_.task_startup_sec +
                  (map_sec - cluster_.task_startup_sec) * skew;

  // ---- Reduce task --------------------------------------------------------
  if (!map_only) {
    const double reduces = static_cast<double>(std::max(1, t.reduce_tasks));
    double shuffle_raw =
        SafeDiv(static_cast<double>(df.combine_output_bytes), reduces);
    double shuffle_wire = shuffle_raw;
    double red_sec = cluster_.task_startup_sec;
    if (config.compress_map_output) {
      shuffle_wire *= cluster_.compress_ratio;
      red_sec += shuffle_raw / (cluster_.decompress_mbps * kMB);
    }
    red_sec += shuffle_wire / (cluster_.network_mbps * kMB);
    // Merge the per-map segments; multi-round merges spill through disk.
    double red_in_recs =
        SafeDiv(static_cast<double>(df.reduce_input_records), reduces);
    double red_in_bytes =
        SafeDiv(static_cast<double>(df.reduce_input_bytes), reduces);
    red_sec += red_in_recs * Log2Clamped(static_cast<double>(t.map_tasks)) *
               sort_sec_per_rec;
    int passes = MergePasses(t.map_tasks, config.io_sort_factor);
    if (passes > 1) {
      red_sec += (passes - 1) * red_in_bytes *
                 (1.0 / (cluster_.disk_read_mbps * kMB) +
                  1.0 / (cluster_.disk_write_mbps * kMB));
    }
    // Run the reduce-side pipelines.
    red_sec += SafeDiv(df.reduce_cpu_units, reduces) * cpu_sec_per_unit;
    // Write the final output to the DFS.
    double out_bytes = SafeDiv(static_cast<double>(df.output_bytes), reduces);
    if (df.output_compressed) {
      red_sec += out_bytes / (cluster_.compress_mbps * kMB);
      out_bytes *= cluster_.compress_ratio;
    }
    red_sec += out_bytes / (cluster_.dfs_write_mbps * kMB);

    t.reduce_avg_sec = red_sec;
    double avg_part = std::max(1.0, red_in_bytes);
    double rskew = std::max(
        1.0, static_cast<double>(df.max_reduce_input_bytes) / avg_part);
    t.reduce_max_sec = cluster_.task_startup_sec +
                       (red_sec - cluster_.task_startup_sec) * rskew;
  }
  return t;
}

double PhaseTimeModel::StandaloneJobTime(const JobDataflow& df,
                                         const JobConfig& config) const {
  JobTaskTimes t = TaskTimes(df, config);
  auto phase = [](int tasks, int slots, double avg, double max) {
    if (tasks <= 0) return 0.0;
    int waves = (tasks + slots - 1) / slots;
    return (waves - 1) * avg + max;
  };
  double total = t.job_overhead_sec;
  total += phase(t.map_tasks, cluster_.total_map_slots(), t.map_avg_sec,
                 t.map_max_sec);
  total += phase(t.reduce_tasks, cluster_.total_reduce_slots(),
                 t.reduce_avg_sec, t.reduce_max_sec);
  return total;
}

}  // namespace stubby

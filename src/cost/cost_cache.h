// Transparent costing cache for the what-if engine (Section 6: "Stubby
// stores and reuses the costs of the common subexpressions among
// subplans"). Two layers of memoization:
//
//   1. A whole-plan memo: CostEstimates keyed by a digest of everything the
//      what-if engine reads from a plan (job structure, stage statistics,
//      configurations, base dataset annotations). Repeated costing of the
//      same plan — the base plan of every unit, re-evaluated RRS seed
//      points, the final report costing — returns the stored estimate.
//
//   2. A per-job incremental memo: PredictJob results (dataflow, task
//      times, and the output-dataset size predictions) keyed by the job's
//      content digest plus the digests of its input PredictedDatasets. An
//      RRS point evaluation perturbs only the unit's job configurations,
//      so every job outside the unit — and outside the unit's downstream
//      cone — replays from the memo instead of being re-predicted.
//
// Both layers are transparent: cached and uncached costing produce
// bit-identical CostEstimates (entries store the exact structs that the
// engine computed, and digests cover every input the computation reads).
// Capacity-bounded with LRU eviction; an evicted entry is simply
// recomputed, which yields the same bits again.
//
// Concurrency model. CostCache is internally synchronized (the memo maps
// are sharded, each shard behind its own mutex), so stray concurrent use
// is memory-safe — but lock interleaving alone cannot make hit/miss
// counters or LRU victims deterministic. Parallel optimizer stages
// therefore use the snapshot/overlay protocol instead: the shared cache is
// frozen for the duration of a task batch (readers go through PeekPlan /
// PeekJob, which never mutate recency), each task routes its reads and
// writes through a private CostCacheOverlay, and after the batch the
// overlays merge into the shared cache serially in task submission order.
// Every task sees exactly the frozen snapshot plus its own writes, and the
// merged cache state is a pure function of the submission order — so
// costing results AND instrumentation counters are bit-identical for any
// thread count. The protocol is applied identically in single-threaded
// runs, making thread count unobservable.

#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cost/phase_model.h"
#include "cost/whatif.h"
#include "workflow/plan.h"

namespace stubby {

/// 128-bit content digest key. Wide enough that accidental collisions are
/// out of reach for any realistic optimizer run (the transparency guarantee
/// would otherwise be probabilistic in a way that matters).
using CostKey = std::pair<uint64_t, uint64_t>;

struct CostKeyHash {
  size_t operator()(const CostKey& k) const {
    // The lanes are already well-mixed; fold them.
    return static_cast<size_t>(k.first ^ (k.second * 0x9e3779b97f4a7c15ull));
  }
};

/// Incremental 128-bit mixer over the cost-relevant content of plans, jobs,
/// and predicted datasets. Order-sensitive: Mix(a), Mix(b) differs from
/// Mix(b), Mix(a).
class CostDigest {
 public:
  CostDigest& Mix(uint64_t v);
  CostDigest& Mix(double v);
  CostDigest& Mix(bool v) { return Mix(static_cast<uint64_t>(v ? 1 : 2)); }
  CostDigest& Mix(const std::string& s);
  CostDigest& Mix(const std::vector<std::string>& strings);

  CostKey value() const { return {a_, b_}; }

 private:
  uint64_t a_ = 0x6a09e667f3bcc908ull;  // arbitrary distinct seeds
  uint64_t b_ = 0xbb67ae8584caa73bull;
};

/// Digest over everything WhatIfEngine::PredictJob and the phase-time model
/// read from the job itself: id, configuration, effective reduce tasks,
/// branch structure, stage statistics, partition specs, prune lists, and
/// profile annotations. Input dataset predictions are mixed in separately
/// by the caller (they vary per plan evaluation). Equivalent to
/// JobStructureDigest followed by MixJobConfiguration.
CostDigest JobContentDigest(const JobVertex& job);

/// The configuration-independent prefix of JobContentDigest: id and branch
/// structure, but not the JobConfig or the effective reduce-task count.
/// ApplyConfiguration only changes the latter, so the RRS loop computes
/// this once per unit job and re-mixes just the configuration per point.
CostDigest JobStructureDigest(const JobVertex& job);

/// Mixes the configuration-dependent suffix (JobConfig fields and
/// EffectiveReduceTasks) into a structure digest, completing it to
/// JobContentDigest(job).
void MixJobConfiguration(CostDigest* d, const JobVertex& job);

/// Mixes one input PredictedDataset (all five fields, bit-exact) into a
/// job digest.
void MixPredictedDataset(CostDigest* d, const PredictedDataset& p);

/// Mixes one Value (type tag + payload, bit-exact for doubles). Exposed for
/// digests over row contents — the reuse subsystem's dataset content keys.
void MixValueDigest(CostDigest* d, const Value& v);

/// Mixes a PartitionSpec (type, fields, split points, split_points_from).
/// Exposed for the reuse subsystem's layout and job-identity digests.
void MixPartitionSpecDigest(CostDigest* d, const PartitionSpec& p);

/// Digest over everything WhatIfEngine::Cost reads from a plan: every
/// job's content digest plus the base datasets' size/layout annotations.
/// Graph topology is covered through the jobs' input/output dataset ids.
/// When `job_digests` is given, the per-job content digests are also
/// deposited there so the caller can reuse them for job-memo keys instead
/// of digesting every job a second time.
CostKey PlanCostDigest(const Plan& plan,
                       std::map<std::string, CostDigest>* job_digests =
                           nullptr);

/// Content digests of every job in the plan, keyed by job id. A caller
/// that re-costs many single-job variations of one plan (the RRS loop)
/// computes this once and refreshes only the perturbed jobs' entries.
std::map<std::string, CostDigest> JobContentDigests(const Plan& plan);

/// PlanCostDigest assembled from precomputed per-job digests. The caller
/// guarantees `job_digests` holds JobContentDigest(job) for every job of
/// the plan; the result is identical to PlanCostDigest(plan).
CostKey PlanCostDigestFrom(
    const Plan& plan, const std::map<std::string, CostDigest>& job_digests);

/// Counters describing what the costing layer did during one optimizer run
/// (or any other instrumented sequence of what-if calls).
struct CostInstrumentation {
  /// WhatIfEngine::Cost invocations.
  uint64_t whatif_invocations = 0;
  /// Whole-plan memo hits / misses (misses only counted when a cache is
  /// attached; without a cache every Cost call is a full computation).
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  /// Dataflow prediction passes that predicted every job from scratch vs.
  /// passes that replayed at least one job from the memo.
  uint64_t full_predictions = 0;
  uint64_t incremental_predictions = 0;
  /// Individual jobs predicted fresh vs. replayed from the memo.
  uint64_t job_predictions = 0;
  uint64_t job_cache_hits = 0;
  /// RRS configuration-point evaluations (counted by the unit optimizer).
  uint64_t rrs_evaluations = 0;
  /// Reuse-rewritten subplan candidates priced through the engine (counted
  /// by the reuse-aware unit search via the same per-task instrumentation
  /// deltas as every other counter, so the value is thread-count
  /// invariant).
  uint64_t reuse_priced_candidates = 0;

  void Add(const CostInstrumentation& other);
  std::string ToString() const;
};

/// One memoized PredictJob outcome: the dataflow, the task times derived
/// from it, and the size predictions the job recorded for its outputs.
struct CostJobEntry {
  JobDataflow dataflow;
  JobTaskTimes times;
  std::vector<std::pair<std::string, PredictedDataset>> outputs;
};

/// Read-only view of a costing memo: lookups that never change recency or
/// contents. This is how overlay tasks read the frozen shared cache (and
/// how overlays chain). Returned pointers stay valid while the source is
/// frozen (no concurrent Insert).
class CostSource {
 public:
  virtual ~CostSource() = default;
  virtual const CostEstimate* PeekPlan(const CostKey& key) const = 0;
  virtual const CostJobEntry* PeekJob(const CostKey& key) const = 0;
};

/// Mutable costing memo: what WhatIfEngine drives. Find refreshes LRU
/// recency (or records that it would have); Touch refreshes recency
/// without returning the entry (used when replaying an overlay's access
/// log during a merge).
class CostStore : public CostSource {
 public:
  virtual const CostEstimate* FindPlan(const CostKey& key) = 0;
  virtual void InsertPlan(const CostKey& key, CostEstimate est) = 0;
  virtual void TouchPlan(const CostKey& key) = 0;

  virtual const CostJobEntry* FindJob(const CostKey& key) = 0;
  virtual void InsertJob(const CostKey& key, CostJobEntry entry) = 0;
  virtual void TouchJob(const CostKey& key) = 0;
};

/// The two memo layers plus eviction bookkeeping. One instance lives for
/// the duration of one StubbyOptimizer::Optimize call, shared across
/// phases and units. Sharded: keys map to one of up to 16 shards (the
/// count derives from the capacity, never from the thread count), each an
/// independently locked LRU map — concurrent Peeks never contend across
/// shards, and caches small enough to need global LRU order (capacity
/// < 128) keep a single shard.
class CostCache final : public CostStore {
 public:
  struct Options {
    size_t plan_capacity = 1024;
    size_t job_capacity = 16384;
  };

  CostCache() : CostCache(Options{}) {}
  explicit CostCache(Options options);

  /// Whole-plan memo. Find refreshes LRU recency; the returned pointer is
  /// valid until the next Insert into the key's shard.
  const CostEstimate* FindPlan(const CostKey& key) override {
    return plans_.Find(key);
  }
  void InsertPlan(const CostKey& key, CostEstimate est) override {
    plans_.Insert(key, std::move(est));
  }
  void TouchPlan(const CostKey& key) override { plans_.Touch(key); }
  const CostEstimate* PeekPlan(const CostKey& key) const override {
    return plans_.Peek(key);
  }

  /// Backwards-compatible alias (entries were a nested type before the
  /// store interface was factored out).
  using JobEntry = CostJobEntry;

  const CostJobEntry* FindJob(const CostKey& key) override {
    return jobs_.Find(key);
  }
  void InsertJob(const CostKey& key, CostJobEntry entry) override {
    jobs_.Insert(key, std::move(entry));
  }
  void TouchJob(const CostKey& key) override { jobs_.Touch(key); }
  const CostJobEntry* PeekJob(const CostKey& key) const override {
    return jobs_.Peek(key);
  }

  size_t plan_entries() const { return plans_.size(); }
  size_t job_entries() const { return jobs_.size(); }
  uint64_t plan_evictions() const { return plans_.evictions(); }
  uint64_t job_evictions() const { return jobs_.evictions(); }

 private:
  template <typename V>
  class LruMap {
   public:
    const V* Find(const CostKey& key) {
      auto it = index_.find(key);
      if (it == index_.end()) return nullptr;
      entries_.splice(entries_.begin(), entries_, it->second);
      return &it->second->second;
    }

    const V* Peek(const CostKey& key) const {
      auto it = index_.find(key);
      return it == index_.end() ? nullptr : &it->second->second;
    }

    void Touch(const CostKey& key) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        entries_.splice(entries_.begin(), entries_, it->second);
      }
    }

    void Insert(const CostKey& key, V value, size_t capacity) {
      auto it = index_.find(key);
      if (it != index_.end()) {
        it->second->second = std::move(value);
        entries_.splice(entries_.begin(), entries_, it->second);
        return;
      }
      entries_.emplace_front(key, std::move(value));
      index_[key] = entries_.begin();
      while (entries_.size() > capacity) {
        index_.erase(entries_.back().first);
        entries_.pop_back();
        ++evictions_;
      }
    }

    size_t size() const { return entries_.size(); }
    uint64_t evictions() const { return evictions_; }

   private:
    std::list<std::pair<CostKey, V>> entries_;
    std::unordered_map<CostKey, typename std::list<std::pair<CostKey, V>>::iterator,
                       CostKeyHash>
        index_;
    uint64_t evictions_ = 0;
  };

  /// LruMap partitioned into independently locked shards. The shard of a
  /// key and the shard count depend only on the key and the capacity, so
  /// eviction behavior is identical across runs and thread counts.
  template <typename V>
  class ShardedLru {
   public:
    /// Shard count derives from the capacity: default-sized caches spread
    /// lock contention 16 ways, but below 128 entries a single shard keeps
    /// exact global LRU order. A pure function of the capacity — never of
    /// the thread count.
    explicit ShardedLru(size_t capacity) {
      size_t n = capacity / 64;
      if (n < 1) n = 1;
      if (n > 16) n = 16;
      shard_capacity_ = (capacity + n - 1) / n;
      shards_.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        shards_.push_back(std::make_unique<Shard>());
      }
    }

    const V* Find(const CostKey& key) {
      Shard& s = ShardOf(key);
      std::lock_guard<std::mutex> lock(s.mu);
      return s.map.Find(key);
    }
    const V* Peek(const CostKey& key) const {
      const Shard& s = ShardOf(key);
      std::lock_guard<std::mutex> lock(s.mu);
      return s.map.Peek(key);
    }
    void Touch(const CostKey& key) {
      Shard& s = ShardOf(key);
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.Touch(key);
    }
    void Insert(const CostKey& key, V value) {
      Shard& s = ShardOf(key);
      std::lock_guard<std::mutex> lock(s.mu);
      s.map.Insert(key, std::move(value), shard_capacity_);
    }
    size_t size() const {
      size_t total = 0;
      for (const auto& s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total += s->map.size();
      }
      return total;
    }
    uint64_t evictions() const {
      uint64_t total = 0;
      for (const auto& s : shards_) {
        std::lock_guard<std::mutex> lock(s->mu);
        total += s->map.evictions();
      }
      return total;
    }

   private:
    struct Shard {
      mutable std::mutex mu;
      LruMap<V> map;
    };
    Shard& ShardOf(const CostKey& key) const {
      return *shards_[CostKeyHash{}(key) % shards_.size()];
    }

    size_t shard_capacity_ = 0;
    std::vector<std::unique_ptr<Shard>> shards_;
  };

  ShardedLru<CostEstimate> plans_;
  ShardedLru<CostJobEntry> jobs_;
};

/// A task-private write layer over a frozen CostSource: reads fall through
/// to the parent, writes stay local, and every recency-relevant access is
/// journaled. After the parallel batch, MergeInto replays the journal into
/// the shared store serially — the shared cache ends up in the exact state
/// a single thread running the tasks in submission order would have left
/// behind (modulo the frozen snapshot: tasks of one batch do not observe
/// each other's inserts, by design, at every thread count). Overlays nest:
/// an RRS point block's overlay parents on its candidate's overlay.
///
/// Not internally synchronized — each overlay belongs to exactly one task.
class CostCacheOverlay final : public CostStore {
 public:
  /// `parent` may be null (no backing memo: all reads miss until written).
  explicit CostCacheOverlay(const CostSource* parent) : parent_(parent) {}

  const CostEstimate* PeekPlan(const CostKey& key) const override;
  const CostJobEntry* PeekJob(const CostKey& key) const override;

  const CostEstimate* FindPlan(const CostKey& key) override;
  void InsertPlan(const CostKey& key, CostEstimate est) override;
  void TouchPlan(const CostKey& key) override;

  const CostJobEntry* FindJob(const CostKey& key) override;
  void InsertJob(const CostKey& key, CostJobEntry entry) override;
  void TouchJob(const CostKey& key) override;

  /// Replays this overlay's journal into `store` in access order: touches
  /// re-assert recency, inserts write the overlay's (final) value. Call
  /// serially, in task submission order.
  void MergeInto(CostStore* store) const;

 private:
  enum class Op : uint8_t { kTouchPlan, kInsertPlan, kTouchJob, kInsertJob };

  const CostSource* parent_;
  std::unordered_map<CostKey, CostEstimate, CostKeyHash> plans_;
  std::unordered_map<CostKey, CostJobEntry, CostKeyHash> jobs_;
  std::vector<std::pair<Op, CostKey>> journal_;
};

}  // namespace stubby

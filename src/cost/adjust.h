// Annotation adjustment (Section 5): packing transformations change jobs,
// so the annotations of the new jobs must be derived from the old ones.
// Because profiles live on stages in this implementation (a stage carries
// its measured selectivity and CPU cost wherever it moves), most adjustment
// is structural; what remains is merging job-level annotations when two
// jobs become one.

#pragma once

#include <vector>

#include "workflow/annotations.h"
#include "workflow/graph.h"

namespace stubby {

/// Which job's shuffle survives an inter-job vertical packing.
enum class PackDirection {
  /// A map-only consumer moves into the producer's reduce side: the merged
  /// job's shuffle (K2, histograms, combiner behaviour) is the producer's.
  kConsumerIntoProducer,
  /// A map-only producer moves into the consumer's map side: the merged
  /// job's shuffle is the consumer's.
  kProducerIntoConsumer,
};

/// Job-level annotations for a job formed by packing `consumer` after
/// `producer` (inter-job vertical packing): the merged job's input side is
/// the producer's, its final output is the consumer's, and the shuffle-side
/// statistics come from whichever job's shuffle survives.
JobAnnotations MergeForVerticalPack(const JobAnnotations& producer,
                                    const JobAnnotations& consumer,
                                    PackDirection direction);

/// Composite statistics of a stage pipeline: record/byte selectivity is the
/// product of the stages' selectivities and CPU cost accumulates input-
/// weighted — the paper's example adjustment ("the new map-task record
/// selectivity is the product of the record selectivities of the old map
/// and reduce functions; the CPU cost is the sum").
StageStats ComposeStats(const std::vector<Stage>& stages);

}  // namespace stubby

#include "cost/cost_cache.h"

#include <bit>
#include <cstring>

#include "common/strings.h"

namespace stubby {

namespace {

/// splitmix64 finalizer — the per-word mixing step of both digest lanes.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

void MixStats(CostDigest* d, const std::optional<StageStats>& stats) {
  if (!stats) {
    d->Mix(false);
    return;
  }
  d->Mix(true);
  d->Mix(stats->record_selectivity);
  d->Mix(stats->byte_selectivity);
  d->Mix(stats->cpu_per_record);
  d->Mix(stats->groups_per_record);
}

void MixStage(CostDigest* d, const Stage& s) {
  d->Mix(static_cast<uint64_t>(s.kind == Stage::Kind::kMap ? 1 : 2));
  d->Mix(s.name());
  d->Mix(s.group_fields);
  d->Mix(s.tee_dataset);
  MixStats(d, s.stats);
}

void MixHistogram(CostDigest* d, const KeyHistogram& h) {
  d->Mix(h.field);
  d->Mix(h.min);
  d->Mix(h.max);
  d->Mix(static_cast<uint64_t>(h.bucket_fractions.size()));
  for (double f : h.bucket_fractions) d->Mix(f);
  d->Mix(h.distinct);
  d->Mix(h.max_key_fraction);
  d->Mix(static_cast<uint64_t>(h.heavy_hitters.size()));
  for (const auto& [value, fraction] : h.heavy_hitters) {
    d->Mix(value);
    d->Mix(fraction);
  }
}

void MixProfile(CostDigest* d, const std::optional<ProfileAnnotation>& p) {
  if (!p) {
    d->Mix(false);
    return;
  }
  d->Mix(true);
  d->Mix(p->avg_input_record_bytes);
  d->Mix(static_cast<uint64_t>(p->key_histograms.size()));
  for (const KeyHistogram& h : p->key_histograms) MixHistogram(d, h);
  d->Mix(p->combine_selectivity);
  d->Mix(p->combine_cpu_per_record);
  d->Mix(p->k2_distinct_groups);
  d->Mix(p->k2_max_group_fraction);
}

void MixConfig(CostDigest* d, const JobConfig& c) {
  d->Mix(static_cast<uint64_t>(c.num_reduce_tasks));
  d->Mix(c.io_sort_mb);
  d->Mix(static_cast<uint64_t>(c.io_sort_factor));
  d->Mix(c.use_combiner);
  d->Mix(c.compress_map_output);
  d->Mix(c.compress_output);
  d->Mix(c.split_mb);
}

}  // namespace

void MixValueDigest(CostDigest* d, const Value& v) {
  if (v.is_int()) {
    d->Mix(uint64_t{1}).Mix(static_cast<uint64_t>(v.AsInt()));
  } else if (v.is_double()) {
    d->Mix(uint64_t{2}).Mix(v.AsDouble());
  } else {
    d->Mix(uint64_t{3}).Mix(v.AsString());
  }
}

void MixPartitionSpecDigest(CostDigest* d, const PartitionSpec& p) {
  d->Mix(static_cast<uint64_t>(p.type));
  d->Mix(p.partition_fields);
  d->Mix(p.sort_fields);
  d->Mix(static_cast<uint64_t>(p.split_points.size()));
  for (const Row& r : p.split_points) {
    d->Mix(static_cast<uint64_t>(r.size()));
    for (const Value& v : r.values()) MixValueDigest(d, v);
  }
  d->Mix(p.split_points_from);
}

CostDigest& CostDigest::Mix(uint64_t v) {
  a_ = Mix64(a_ ^ v);
  b_ = Mix64(b_ + (v ^ 0xa5a5a5a5a5a5a5a5ull));
  return *this;
}

CostDigest& CostDigest::Mix(double v) {
  return Mix(std::bit_cast<uint64_t>(v));
}

CostDigest& CostDigest::Mix(const std::string& s) {
  Mix(static_cast<uint64_t>(s.size()));
  size_t i = 0;
  for (; i + 8 <= s.size(); i += 8) {
    uint64_t word;
    std::memcpy(&word, s.data() + i, 8);
    Mix(word);
  }
  if (i < s.size()) {
    uint64_t word = 0;
    std::memcpy(&word, s.data() + i, s.size() - i);
    Mix(word);
  }
  return *this;
}

CostDigest& CostDigest::Mix(const std::vector<std::string>& strings) {
  Mix(static_cast<uint64_t>(strings.size()));
  for (const std::string& s : strings) Mix(s);
  return *this;
}

CostDigest JobStructureDigest(const JobVertex& job) {
  CostDigest d;
  d.Mix(job.id);
  d.Mix(static_cast<uint64_t>(job.branches.size()));
  for (const Branch& b : job.branches) {
    d.Mix(b.tag);
    d.Mix(static_cast<uint64_t>(b.inputs.size()));
    for (const BranchInput& in : b.inputs) {
      d.Mix(in.dataset_id);
      d.Mix(in.aligned);
      d.Mix(in.prune_fraction);
      d.Mix(static_cast<uint64_t>(in.prune_partitions.size()));
      for (int p : in.prune_partitions) d.Mix(static_cast<uint64_t>(p));
      d.Mix(static_cast<uint64_t>(in.map_stages.size()));
      for (const Stage& s : in.map_stages) MixStage(&d, s);
    }
    d.Mix(static_cast<uint64_t>(b.merged_map_stages.size()));
    for (const Stage& s : b.merged_map_stages) MixStage(&d, s);
    d.Mix(b.merge_sort_fields);
    d.Mix(static_cast<uint64_t>(b.reduce_stages.size()));
    for (const Stage& s : b.reduce_stages) MixStage(&d, s);
    MixPartitionSpecDigest(&d, b.partition);
    d.Mix(b.bloom.has_value());
    if (b.bloom) {
      d.Mix(static_cast<uint64_t>(b.bloom->build_input));
      d.Mix(static_cast<uint64_t>(b.bloom->probe_inputs.size()));
      for (size_t p : b.bloom->probe_inputs) d.Mix(static_cast<uint64_t>(p));
      d.Mix(b.bloom->key_fields);
      d.Mix(static_cast<uint64_t>(b.bloom->bits_log2));
      d.Mix(static_cast<uint64_t>(b.bloom->num_hashes));
      d.Mix(b.bloom->est_pass_fraction);
    }
    d.Mix(b.combiner != nullptr);
    d.Mix(b.output_dataset);
    MixProfile(&d, b.annotations.profile);
  }
  return d;
}

void MixJobConfiguration(CostDigest* d, const JobVertex& job) {
  MixConfig(d, job.config);
  // EffectiveReduceTasks folds in conditions and range-partition overrides.
  d->Mix(static_cast<uint64_t>(job.EffectiveReduceTasks()));
}

CostDigest JobContentDigest(const JobVertex& job) {
  CostDigest d = JobStructureDigest(job);
  MixJobConfiguration(&d, job);
  return d;
}

void MixPredictedDataset(CostDigest* d, const PredictedDataset& p) {
  d->Mix(p.records);
  d->Mix(p.bytes);
  d->Mix(p.stored_bytes);
  d->Mix(static_cast<uint64_t>(p.partitions));
  d->Mix(p.max_partition_fraction);
}

namespace {

/// Mixes the base datasets' size/layout annotations (everything
/// PredictDataflow seeds from) into the plan digest.
void MixBaseDatasets(CostDigest* d, const Plan& plan) {
  for (const auto& [id, ds] : plan.datasets()) {
    if (!ds.is_base_input) continue;
    d->Mix(id);
    const DatasetAnnotation& a = ds.annotation;
    d->Mix(a.num_records.has_value());
    if (a.num_records) d->Mix(*a.num_records);
    d->Mix(a.bytes.has_value());
    if (a.bytes) d->Mix(*a.bytes);
    d->Mix(a.num_partitions.has_value());
    if (a.num_partitions) d->Mix(static_cast<uint64_t>(*a.num_partitions));
    const Layout* layout = a.layout ? &*a.layout : &ds.layout;
    d->Mix(layout->compressed);
    d->Mix(layout->block_mb);
  }
}

}  // namespace

CostKey PlanCostDigest(const Plan& plan,
                       std::map<std::string, CostDigest>* job_digests) {
  CostDigest d;
  d.Mix(static_cast<uint64_t>(plan.num_jobs()));
  for (const auto& [jid, job] : plan.jobs()) {
    CostDigest jd = JobContentDigest(job);
    CostKey k = jd.value();
    d.Mix(k.first);
    d.Mix(k.second);
    if (job_digests != nullptr) job_digests->emplace(jid, jd);
  }
  MixBaseDatasets(&d, plan);
  return d.value();
}

std::map<std::string, CostDigest> JobContentDigests(const Plan& plan) {
  std::map<std::string, CostDigest> out;
  for (const auto& [jid, job] : plan.jobs()) {
    out.emplace(jid, JobContentDigest(job));
  }
  return out;
}

CostKey PlanCostDigestFrom(
    const Plan& plan, const std::map<std::string, CostDigest>& job_digests) {
  CostDigest d;
  d.Mix(static_cast<uint64_t>(plan.num_jobs()));
  for (const auto& [jid, job] : plan.jobs()) {
    auto it = job_digests.find(jid);
    CostKey k = it != job_digests.end() ? it->second.value()
                                        : JobContentDigest(job).value();
    d.Mix(k.first);
    d.Mix(k.second);
  }
  MixBaseDatasets(&d, plan);
  return d.value();
}

void CostInstrumentation::Add(const CostInstrumentation& other) {
  whatif_invocations += other.whatif_invocations;
  plan_cache_hits += other.plan_cache_hits;
  plan_cache_misses += other.plan_cache_misses;
  full_predictions += other.full_predictions;
  incremental_predictions += other.incremental_predictions;
  job_predictions += other.job_predictions;
  job_cache_hits += other.job_cache_hits;
  rrs_evaluations += other.rrs_evaluations;
  reuse_priced_candidates += other.reuse_priced_candidates;
}

std::string CostInstrumentation::ToString() const {
  return StrFormat(
      "whatif=%llu plan_hits=%llu plan_misses=%llu full=%llu incr=%llu "
      "job_pred=%llu job_hits=%llu rrs=%llu reuse_priced=%llu",
      (unsigned long long)whatif_invocations,
      (unsigned long long)plan_cache_hits,
      (unsigned long long)plan_cache_misses,
      (unsigned long long)full_predictions,
      (unsigned long long)incremental_predictions,
      (unsigned long long)job_predictions,
      (unsigned long long)job_cache_hits,
      (unsigned long long)rrs_evaluations,
      (unsigned long long)reuse_priced_candidates);
}

CostCache::CostCache(Options options)
    : plans_(options.plan_capacity), jobs_(options.job_capacity) {}

const CostEstimate* CostCacheOverlay::PeekPlan(const CostKey& key) const {
  auto it = plans_.find(key);
  if (it != plans_.end()) return &it->second;
  return parent_ != nullptr ? parent_->PeekPlan(key) : nullptr;
}

const CostJobEntry* CostCacheOverlay::PeekJob(const CostKey& key) const {
  auto it = jobs_.find(key);
  if (it != jobs_.end()) return &it->second;
  return parent_ != nullptr ? parent_->PeekJob(key) : nullptr;
}

const CostEstimate* CostCacheOverlay::FindPlan(const CostKey& key) {
  const CostEstimate* hit = PeekPlan(key);
  if (hit != nullptr) journal_.emplace_back(Op::kTouchPlan, key);
  return hit;
}

void CostCacheOverlay::InsertPlan(const CostKey& key, CostEstimate est) {
  journal_.emplace_back(Op::kInsertPlan, key);
  plans_[key] = std::move(est);
}

void CostCacheOverlay::TouchPlan(const CostKey& key) {
  journal_.emplace_back(Op::kTouchPlan, key);
}

const CostJobEntry* CostCacheOverlay::FindJob(const CostKey& key) {
  const CostJobEntry* hit = PeekJob(key);
  if (hit != nullptr) journal_.emplace_back(Op::kTouchJob, key);
  return hit;
}

void CostCacheOverlay::InsertJob(const CostKey& key, CostJobEntry entry) {
  journal_.emplace_back(Op::kInsertJob, key);
  jobs_[key] = std::move(entry);
}

void CostCacheOverlay::TouchJob(const CostKey& key) {
  journal_.emplace_back(Op::kTouchJob, key);
}

void CostCacheOverlay::MergeInto(CostStore* store) const {
  for (const auto& [op, key] : journal_) {
    switch (op) {
      case Op::kTouchPlan:
        store->TouchPlan(key);
        break;
      case Op::kInsertPlan:
        // Repeated inserts of one key replay the final value each time —
        // transparency makes them bit-identical anyway.
        store->InsertPlan(key, plans_.at(key));
        break;
      case Op::kTouchJob:
        store->TouchJob(key);
        break;
      case Op::kInsertJob:
        store->InsertJob(key, jobs_.at(key));
        break;
    }
  }
}

}  // namespace stubby

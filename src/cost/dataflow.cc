#include "cost/dataflow.h"

#include <sstream>

#include "common/strings.h"

namespace stubby {

std::string JobDataflow::ToString() const {
  std::string out = StrFormat(
      "%s: maps=%d reduces=%d in=%llu recs/%s mapout=%llu recs/%s "
      "redin=%llu recs/%s out=%llu recs/%s",
      job_id.c_str(), num_map_tasks, num_reduce_tasks,
      (unsigned long long)map_input_records,
      HumanBytes(map_input_bytes).c_str(),
      (unsigned long long)map_output_records,
      HumanBytes(map_output_bytes).c_str(),
      (unsigned long long)reduce_input_records,
      HumanBytes(reduce_input_bytes).c_str(),
      (unsigned long long)output_records,
      HumanBytes(output_bytes).c_str());
  if (bloom_build_records > 0 || bloom_filter_bytes > 0) {
    out += StrFormat(" bloom=%llu recs/%s filter=%s",
                     (unsigned long long)bloom_build_records,
                     HumanBytes(bloom_build_bytes).c_str(),
                     HumanBytes(bloom_filter_bytes).c_str());
  }
  return out;
}

const JobDataflow* WorkflowDataflow::FindJob(const std::string& id) const {
  for (const auto& j : jobs) {
    if (j.job_id == id) return &j;
  }
  return nullptr;
}

std::string WorkflowDataflow::ToString() const {
  std::ostringstream os;
  os << "Workflow dataflow (makespan " << HumanSeconds(makespan_sec)
     << "):\n";
  for (const auto& j : jobs) os << "  " << j.ToString() << "\n";
  return os.str();
}

}  // namespace stubby

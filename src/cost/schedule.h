// Cluster scheduler: a discrete-event simulation of slot-based task
// execution over a workflow DAG. Jobs contribute map tasks (runnable once
// all upstream jobs finish) and reduce tasks (runnable once the job's own
// maps finish); tasks occupy map/reduce slots FIFO. This captures the
// concurrency effects the paper leans on — e.g. two small sibling jobs
// running concurrently can beat one horizontally-packed job when the
// cluster has spare slots (the PJ workflow of Section 7.2).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/phase_model.h"
#include "mr/cluster.h"

namespace stubby {

/// One job as seen by the scheduler.
struct ScheduledJob {
  std::string id;
  std::vector<std::string> deps;  ///< upstream job ids
  JobTaskTimes times;
};

/// Outcome of a simulated run.
struct ScheduleResult {
  double makespan_sec = 0.0;
  std::map<std::string, double> job_finish_sec;
};

/// Simulates the execution of `jobs` (any order; dependencies resolved by
/// id) on the cluster. Fails if dependencies reference unknown jobs or form
/// a cycle.
Result<ScheduleResult> SimulateCluster(const std::vector<ScheduledJob>& jobs,
                                       const ClusterSpec& cluster);

}  // namespace stubby
